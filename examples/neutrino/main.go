// Collective neutrino oscillation scaling study: the momentum-lattice
// Hamiltonians of §V-A3 are dense with quartic couplings, which is where
// Hamiltonian-adaptive mappings gain the most; this example reproduces the
// Table III trend on the smaller lattices and reports HATT's construction
// time to illustrate the O(N³) scaling. Every mapping is compiled through
// the pkg/compiler facade.
//
//	go run ./examples/neutrino
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/models"
	"repro/pkg/compiler"
)

func main() {
	ctx := context.Background()
	fmt.Println("Collective neutrino oscillations (µ=1), 2 directions per site/flavor")
	fmt.Printf("%-7s %-6s %-7s | %9s %9s %9s %9s | %12s\n",
		"lattice", "modes", "terms", "JW", "BK", "BTT", "HATT", "HATT time")
	for _, spec := range [][2]int{{3, 2}, {4, 2}, {3, 3}, {5, 2}} {
		h := models.NeutrinoOscillation(spec[0], spec[1], 1.0)
		mh := h.Majorana(1e-12)
		weights := make(map[string]int)
		for _, name := range []string{"jw", "bk", "btt"} {
			res, err := compiler.Compile(ctx, name, mh)
			if err != nil {
				panic(err)
			}
			weights[name] = res.PredictedWeight
		}
		t0 := time.Now()
		res, err := compiler.Compile(ctx, "hatt", mh)
		if err != nil {
			panic(err)
		}
		dt := time.Since(t0)
		fmt.Printf("%dx%dF    %-6d %-7d | %9d %9d %9d %9d | %12s\n",
			spec[0], spec[1], h.Modes, len(mh.Terms),
			weights["jw"], weights["bk"], weights["btt"], res.PredictedWeight, dt)
	}
	fmt.Println("\nHATT exploits the momentum-conserving coupling structure the")
	fmt.Println("constructive mappings cannot see.")
}
