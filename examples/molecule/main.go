// Molecule walkthrough: the full H₂/STO-3G pipeline — published integrals,
// every mapping compiled through pkg/compiler, circuit compilation, exact
// ground energy, and a noisy simulation with the IonQ Forte 1 noise
// profile (the Fig. 11 experiment).
//
//	go run ./examples/molecule
package main

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/linalg"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/pkg/compiler"
)

func main() {
	ctx := context.Background()
	h := models.H2STO3G()
	mh := h.Majorana(1e-12)
	fmt.Printf("H2/STO-3G: %d spin-orbitals, %d Majorana monomials\n", h.Modes, len(mh.Terms))

	jw, err := compiler.Compile(ctx, "jw", mh)
	if err != nil {
		panic(err)
	}
	theory := linalg.GroundEnergy(jw.Mapping.Apply(mh))
	fmt.Printf("FCI ground-state energy: %.6f Ha (literature: -1.1373 Ha)\n\n", theory)

	// "fh:0" lifts the visit budget: H2 is small enough for the true
	// optimum.
	specs := []string{"jw", "bk", "btt", "fh:0", "hatt"}
	nm := sim.IonQForte1()
	fmt.Printf("%-6s %7s %6s %6s | %10s %10s %10s\n",
		"map", "weight", "CX", "depth", "noiseless", "mean", "variance")
	for _, spec := range specs {
		res, err := compiler.Compile(ctx, spec, mh)
		if err != nil {
			panic(err)
		}
		m := res.Mapping
		hq := m.Apply(mh)
		cc := circuit.Compile(hq, circuit.OrderLexicographic)
		init, err := sim.PrepareOccupied(m, []int{0, 1}) // Hartree–Fock state
		if err != nil {
			panic(err)
		}
		sr := sim.EstimateFrom(init, cc, hq, nm, 1000, 7)
		fmt.Printf("%-6s %7d %6d %6d | %10.4f %10.4f %10.4f\n",
			m.Name, hq.Weight(), cc.CNOTCount(), cc.Depth(),
			sr.Ideal, sr.Mean, sr.Variance)
	}
	fmt.Println("\nLower-weight mappings run shallower circuits and degrade less under noise.")
}
