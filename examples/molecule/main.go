// Molecule walkthrough: the full H₂/STO-3G pipeline — published integrals,
// every mapping, circuit compilation, exact ground energy, and a noisy
// simulation with the IonQ Forte 1 noise profile (the Fig. 11 experiment).
//
//	go run ./examples/molecule
package main

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/sim"
)

func main() {
	h := models.H2STO3G()
	mh := h.Majorana(1e-12)
	fmt.Printf("H2/STO-3G: %d spin-orbitals, %d Majorana monomials\n", h.Modes, len(mh.Terms))

	theory := linalg.GroundEnergy(mapping.JordanWigner(4).Apply(mh))
	fmt.Printf("FCI ground-state energy: %.6f Ha (literature: -1.1373 Ha)\n\n", theory)

	maps := []*mapping.Mapping{
		mapping.JordanWigner(4),
		mapping.BravyiKitaev(4),
		mapping.BalancedTernaryTree(4),
		core.Exhaustive(mh, 0).Mapping, // small enough for the true optimum
		core.Build(mh).Mapping,
	}
	nm := sim.IonQForte1()
	fmt.Printf("%-6s %7s %6s %6s | %10s %10s %10s\n",
		"map", "weight", "CX", "depth", "noiseless", "mean", "variance")
	for _, m := range maps {
		hq := m.Apply(mh)
		cc := circuit.Compile(hq, circuit.OrderLexicographic)
		init, err := sim.PrepareOccupied(m, []int{0, 1}) // Hartree–Fock state
		if err != nil {
			panic(err)
		}
		res := sim.EstimateFrom(init, cc, hq, nm, 1000, 7)
		fmt.Printf("%-6s %7d %6d %6d | %10.4f %10.4f %10.4f\n",
			m.Name, hq.Weight(), cc.CNOTCount(), cc.Depth(),
			res.Ideal, res.Mean, res.Variance)
	}
	fmt.Println("\nLower-weight mappings run shallower circuits and degrade less under noise.")
}
