// Service example: compilation-as-a-service end to end.
//
// By default this program is fully self-contained — it boots the hattd
// service stack (store + job manager + HTTP API) in-process on an
// ephemeral port, then talks to it the way any remote client would:
// plain JSON over HTTP. Point it at an already-running daemon instead
// with -addr:
//
//	go run ./examples/service                     # self-contained
//	hattd -addr 127.0.0.1:7707 &
//	go run ./examples/service -addr 127.0.0.1:7707
//
// It demonstrates the three service behaviors the daemon exists for:
// the sync endpoint with a content-addressed cache hit on the second
// call, the async job flow (submit → poll → result) with in-flight
// deduplication, and the stats counters behind /v1/stats.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", "", "address of a running hattd (empty = start the service in-process)")
	flag.Parse()

	base := *addr
	if base == "" {
		var shutdown func()
		var err error
		base, shutdown, err = startInProcess()
		if err != nil {
			panic(err)
		}
		defer shutdown()
		fmt.Printf("started in-process service on %s\n\n", base)
	}
	url := "http://" + base

	// 1) Synchronous compilation, twice. The second call is served from
	// the content-addressed store: same Hamiltonian fingerprint, same
	// method spec, same options digest → same entry, no search.
	req := `{"model":"hubbard:2x2","method":"hatt","include_strings":true}`
	for i := 1; i <= 2; i++ {
		var resp struct {
			Method      string   `json:"method"`
			Qubits      int      `json:"qubits"`
			PauliWeight int      `json:"pauli_weight"`
			Cached      bool     `json:"cached"`
			ElapsedMS   float64  `json:"elapsed_ms"`
			Mapping     []string `json:"mapping"`
		}
		post(url+"/v1/compile", req, &resp)
		fmt.Printf("compile #%d: %s on %d qubits, weight %d, cached=%v (%.2f ms)\n",
			i, resp.Method, resp.Qubits, resp.PauliWeight, resp.Cached, resp.ElapsedMS)
		if i == 2 {
			fmt.Printf("  M0 = %s\n", resp.Mapping[0])
		}
	}

	// 2) Async jobs: submit the same problem twice, back to back. The
	// second submission attaches to the first in-flight job instead of
	// queueing a duplicate search.
	// A schedule long enough that the duplicate lands while the first
	// job is still searching.
	jobReq := `{"model":"molecule:8","method":"anneal","options":{"seed":11,"anneal_iters":400000}}`
	var first, second struct {
		ID      string `json:"id"`
		Deduped bool   `json:"deduped"`
		URL     string `json:"url"`
	}
	post(url+"/v1/jobs", jobReq, &first)
	post(url+"/v1/jobs", jobReq, &second)
	fmt.Printf("\njob submitted: %s; duplicate submission deduped=%v (same id: %v)\n",
		first.ID, second.Deduped, first.ID == second.ID)

	var job struct {
		State  string `json:"state"`
		Result *struct {
			PauliWeight int `json:"pauli_weight"`
		} `json:"result"`
	}
	for {
		get(url+first.URL, &job)
		if job.State == "done" || job.State == "failed" || job.State == "canceled" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if job.State != "done" { // result is only attached to done jobs
		fmt.Printf("job %s ended %s without a result\n", first.ID, job.State)
		return
	}
	fmt.Printf("job %s finished: %s, weight %d\n", first.ID, job.State, job.Result.PauliWeight)

	// 3) The daemon's own accounting.
	var stats struct {
		Store struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"store"`
		Jobs map[string]int `json:"jobs"`
	}
	get(url+"/v1/stats", &stats)
	fmt.Printf("\nstats: store %d hits / %d misses, jobs done: %d\n",
		stats.Store.Hits, stats.Store.Misses, stats.Jobs["done"])
}

// startInProcess wires the same stack cmd/hattd serves and returns its
// address: an in-memory store, the job manager, and the HTTP API on an
// ephemeral port.
func startInProcess() (addr string, shutdown func(), err error) {
	st, err := store.Open(0, "")
	if err != nil {
		return "", nil, err
	}
	mgr := service.New(service.Config{Store: st})
	srv := &http.Server{Handler: service.NewAPI(mgr, st).Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		mgr.Shutdown(ctx)
	}, nil
}

func post(url, body string, out any) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		panic(fmt.Sprintf("POST %s: %d %s", url, resp.StatusCode, e.Error))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}
