// Routing: reproduce a Table-IV-style row — the same molecular
// Hamiltonian compiled with Jordan–Wigner and with HATT, each
// synthesized into a Trotter circuit and routed onto IBM Montreal's
// 27-qubit heavy-hex coupling graph with the tetris-lite pass. The
// whole hardware-aware chain runs through one facade call:
// compiler.Compile + WithDevice.
//
//	go run ./examples/routing
package main

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/models"
	"repro/pkg/compiler"
)

func main() {
	// A 6-mode synthetic molecule (the LiH-sized Table-IV case): small
	// enough to run instantly, large enough that routing overhead shows.
	h, err := models.Resolve("molecule:6")
	if err != nil {
		panic(err)
	}
	mh := h.Majorana(1e-12)
	ctx := context.Background()

	fmt.Printf("molecule:6 (%d modes) routed onto IBM Montreal (27 qubits, heavy-hex)\n\n", h.Modes)
	fmt.Printf("%-8s | %8s %8s %8s %8s %8s\n", "Method", "Weight", "Swaps", "CX", "U3", "Depth")
	for _, method := range []string{"jw", "hatt"} {
		res, err := compiler.Compile(ctx, method, mh, compiler.WithDevice("montreal"))
		if err != nil {
			panic(err)
		}
		r := res.Routed
		fmt.Printf("%-8s | %8d %8d %8d %8d %8d\n",
			method, res.PredictedWeight, r.SwapsAdded, r.CNOTs, r.Singles, r.Depth)
	}

	// The routed circuit is an ordinary circuit over physical qubits:
	// independently verifiable against the coupling graph, exportable as
	// OpenQASM, byte-identical on every run (and on store cache hits).
	res, err := compiler.Compile(ctx, "hatt", mh, compiler.WithDevice("montreal"))
	if err != nil {
		panic(err)
	}
	d, _ := arch.Lookup("montreal")
	if err := arch.CheckCoupling(res.Routed.Circuit, d); err != nil {
		panic(err)
	}
	fmt.Printf("\ncoupling audit: every CNOT respects %s's %d couplers\n", d.Name, len(d.Edges()))
	fmt.Printf("final layout (logical -> physical): %v\n", res.Routed.FinalLayout)

	// Custom topologies come from a JSON edge list — the same schema
	// hattc -device-file and the service's custom_device field accept.
	ring, err := arch.ParseDeviceJSON([]byte(
		`{"name":"ring8","qubits":8,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,0]]}`))
	if err != nil {
		panic(err)
	}
	res, err = compiler.Compile(ctx, "hatt", mh, compiler.WithDeviceSpec(ring))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsame problem on a custom 8-qubit ring: %d swaps, %d CNOTs, depth %d\n",
		res.Routed.SwapsAdded, res.Routed.CNOTs, res.Routed.Depth)
}
