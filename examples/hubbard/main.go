// Fermi–Hubbard study: sweep lattice geometries and compare the Pauli
// weight and circuit cost of every mapping, reproducing the Table II
// trend lines on the small-to-medium lattices. Each mapping is compiled
// through the pkg/compiler registry by spec name.
//
//	go run ./examples/hubbard
package main

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/models"
	"repro/pkg/compiler"
)

func main() {
	ctx := context.Background()
	fmt.Println("Fermi-Hubbard model (t=1, U=4), open boundaries")
	fmt.Printf("%-6s %-6s | %8s %8s %8s %8s | %s\n",
		"grid", "modes", "JW", "BK", "BTT", "HATT", "HATT circuit (CX/depth)")
	for _, g := range [][2]int{{2, 2}, {2, 3}, {2, 4}, {3, 3}, {2, 5}, {3, 4}} {
		h := models.FermiHubbard(g[0], g[1], 1.0, 4.0)
		mh := h.Majorana(1e-12)
		weights := make(map[string]int)
		for _, spec := range []string{"jw", "bk", "btt"} {
			res, err := compiler.Compile(ctx, spec, mh)
			if err != nil {
				panic(err)
			}
			weights[spec] = res.PredictedWeight
		}
		res, err := compiler.Compile(ctx, "hatt", mh)
		if err != nil {
			panic(err)
		}
		if err := res.Mapping.Verify(); err != nil {
			panic(err)
		}
		cc := circuit.Compile(res.Mapping.Apply(mh), circuit.OrderLexicographic)
		fmt.Printf("%dx%-4d %-6d | %8d %8d %8d %8d | %d/%d\n",
			g[0], g[1], h.Modes, weights["jw"], weights["bk"], weights["btt"],
			res.PredictedWeight, cc.CNOTCount(), cc.Depth())
	}
	fmt.Println("\nLower is better; HATT adapts the ternary tree to the lattice structure.")
}
