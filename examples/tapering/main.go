// Tapering: combine HATT with Z₂-symmetry qubit tapering — the mapped
// Hamiltonian's spin-parity symmetries let qubits be removed outright
// after a Clifford rotation, shrinking the simulation further than any
// mapping choice alone.
//
//	go run ./examples/tapering
package main

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/taper"
)

func main() {
	h := models.H2STO3G()
	mh := h.Majorana(1e-12)

	for _, m := range []*mapping.Mapping{
		mapping.JordanWigner(4),
		core.Build(mh).Mapping,
	} {
		hq := m.Apply(mh)
		full := linalg.GroundEnergy(hq)
		cc := circuit.Compile(hq, circuit.OrderLexicographic)
		fmt.Printf("%s: %d qubits, weight %d, %d CNOTs, E0 = %.6f Ha\n",
			m.Name, hq.N(), hq.Weight(), cc.CNOTCount(), full)

		taus := taper.FindSymmetries(hq)
		fmt.Printf("  Z2 symmetries found: %d\n", len(taus))
		for _, tau := range taus {
			fmt.Printf("    %s\n", tau)
		}
		res, e, err := taper.GroundSector(hq, linalg.GroundEnergy)
		if err != nil {
			fmt.Println("  tapering unavailable:", err)
			continue
		}
		rc := circuit.Compile(res.Reduced, circuit.OrderLexicographic)
		fmt.Printf("  tapered: %d qubits, weight %d, %d CNOTs, E0 = %.6f Ha\n",
			res.Reduced.N(), res.Reduced.Weight(), rc.CNOTCount(), e)
		for _, s := range res.Symmetries {
			fmt.Printf("    %s → X on q%d, sector %+d\n", s.Tau, s.Qubit, s.Sector)
		}
		fmt.Println()
	}
	fmt.Println("The ground energy is preserved exactly while qubit count and")
	fmt.Println("circuit size drop — tapering composes with any mapping.")
}
