// Tapering: combine HATT with Z₂-symmetry qubit tapering — the mapped
// Hamiltonian's spin-parity symmetries let qubits be removed outright
// after a Clifford rotation, shrinking the simulation further than any
// mapping choice alone. The whole chain (model, mapping, synthesis,
// tapering) is one compiler.Pipeline call per mapping.
//
//	go run ./examples/tapering
package main

import (
	"context"
	"fmt"

	"repro/pkg/compiler"
)

func main() {
	ctx := context.Background()
	for _, method := range []string{"jw", "hatt"} {
		rep, err := compiler.Pipeline{Model: "h2", Method: method, Taper: true}.Run(ctx)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d qubits, weight %d, %d CNOTs\n",
			rep.Result.Mapping.Name, rep.Qubit.N(), rep.Weight, rep.CNOTs)
		t := rep.Tapered
		fmt.Printf("  tapered: %d qubits, weight %d, %d CNOTs, E0 = %.6f Ha (%d symmetries)\n\n",
			t.Qubits, t.Weight, t.CNOTs, t.GroundEnergy, t.Symmetries)
	}
	fmt.Println("The ground energy is preserved exactly while qubit count and")
	fmt.Println("circuit size drop — tapering composes with any mapping.")
}
