// Export: compile a HATT-mapped Trotter circuit and hand it to the rest of
// the toolchain world — OpenQASM 2.0 for transpilers and hardware, the
// JSON Hamiltonian schema for interchange, and a text diagram for humans.
// The circuit comes straight out of a compiler.Pipeline report.
//
//	go run ./examples/export
package main

import (
	"context"
	"fmt"
	"os"

	"repro/internal/fermion"
	"repro/pkg/compiler"
)

func main() {
	// A 2-mode system: the paper's Equation (1) with c0=1, c1=2, c2=3.
	h := fermion.NewHamiltonian(2)
	h.Add(1, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 0})
	h.Add(2, fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 1})
	h.Add(3,
		fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1, Dagger: true},
		fermion.Op{Mode: 0}, fermion.Op{Mode: 1})

	fmt.Println("--- Hamiltonian (JSON interchange schema) ---")
	if err := h.WriteJSON(os.Stdout); err != nil {
		panic(err)
	}
	fmt.Println()

	rep, err := compiler.Pipeline{Hamiltonian: h, Method: "hatt"}.Run(context.Background())
	if err != nil {
		panic(err)
	}

	fmt.Println("\n--- Circuit diagram ---")
	fmt.Print(rep.Circuit.Diagram())

	fmt.Println("--- OpenQASM 2.0 ---")
	if err := rep.Circuit.WriteQASM(os.Stdout); err != nil {
		panic(err)
	}
}
