// Quickstart: build a small fermionic Hamiltonian, compile a
// Hamiltonian-adaptive ternary tree (HATT) fermion-to-qubit mapping
// through the pkg/compiler facade, and compare it against Jordan–Wigner.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/fermion"
	"repro/pkg/compiler"
)

func main() {
	// A 3-mode toy system: hopping between neighboring modes plus an
	// interaction — the paper's Eq. (3) flavor.
	h := fermion.NewHamiltonian(3)
	h.Add(1.0, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 0})
	h.AddHermitian(0.5, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1})
	h.Add(2.0,
		fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 2, Dagger: true},
		fermion.Op{Mode: 1}, fermion.Op{Mode: 2})
	fmt.Println("Fermionic Hamiltonian:")
	fmt.Println(" ", h)

	// Step 1: expand into Majorana monomials (the preprocess step).
	mh := h.Majorana(1e-12)
	fmt.Println("\nMajorana form:")
	fmt.Println(" ", mh)

	// Step 2: compile the HATT mapping (Algorithms 2+3: Hamiltonian-aware,
	// vacuum-preserving, O(N³)). Any registered method spec works here —
	// try "beam:8" or "anneal".
	ctx := context.Background()
	res, err := compiler.Compile(ctx, "hatt", mh)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nHATT Majorana strings:")
	for j, s := range res.Mapping.Majoranas {
		fmt.Printf("  M%d = %s\n", j, s)
	}
	fmt.Println("vacuum preserved:", res.Mapping.VacuumPreserved())

	// Step 3: map the Hamiltonian and compare with Jordan–Wigner.
	jw, err := compiler.Compile(ctx, "jw", mh)
	if err != nil {
		panic(err)
	}
	hattH := res.Mapping.Apply(mh)
	fmt.Printf("\nPauli weight: HATT = %d, JW = %d\n", res.PredictedWeight, jw.PredictedWeight)
	fmt.Println("\nHATT qubit Hamiltonian:")
	fmt.Println(" ", hattH)

	// Step 4: compile one Trotter step into a {CNOT, U3} circuit.
	cc := circuit.Compile(hattH, circuit.OrderLexicographic)
	st := cc.Stats()
	fmt.Printf("\nTrotter circuit: %d CNOTs, %d single-qubit gates, depth %d\n",
		st.CNOTs, st.Singles, st.Depth)
}
