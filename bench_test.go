// Package repro's root benchmarks regenerate a scaled version of every
// table and figure in the paper's evaluation (one benchmark per
// experiment), plus ablation benches for the design choices DESIGN.md
// calls out. Full-scale regeneration is cmd/benchtab's job; these keep
// each experiment exercised by `go test -bench`.
package repro

import (
	"bytes"
	"context"
	"io"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/pauli"
	"repro/internal/sim"
	"repro/internal/taper"
	"repro/pkg/compiler"
)

// benchOptions keeps the testing.B experiments at smoke scale.
func benchOptions() bench.Options {
	return bench.Options{
		MaxModes:   14,
		FHMaxModes: 4,
		FHBudget:   100_000,
		Shots:      50,
		GridSteps:  2,
		MaxN:       10,
		FHMaxN:     4,
	}
}

func BenchmarkTable1Electronic(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := bench.Table1(opt)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable2Hubbard(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := bench.Table2(opt)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable3Neutrino(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := bench.Table3(opt)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable4TetrisRouting(b *testing.B) {
	opt := benchOptions()
	opt.MaxModes = 6
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable5RustiqSynthesis(b *testing.B) {
	opt := benchOptions()
	opt.MaxModes = 12
	for i := 0; i < b.N; i++ {
		rows := bench.Table5(opt)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable6UnoptVsOpt(b *testing.B) {
	opt := benchOptions()
	opt.MaxModes = 12
	for i := 0; i < b.N; i++ {
		rows := bench.Table6(opt)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFigure10NoisyGrid(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		cells, err := bench.Figure10(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) == 0 {
			b.Fatal("no cells")
		}
	}
}

func BenchmarkFigure11IonQ(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure11(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Scalability(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := bench.Figure12(opt)
		bench.PrintFigure12(io.Discard, rows)
	}
}

// --- Ablation benches -----------------------------------------------------

func BenchmarkHATTConstruction3x3(b *testing.B) {
	// NoMemo: time the greedy search itself, not a build-memo replay.
	mh := models.FermiHubbard(3, 3, 1, 4).Majorana(1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.BuildWithOptions(mh, core.BuildOptions{NoMemo: true}).PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkHATTConstruction4x4(b *testing.B) {
	mh := models.FermiHubbard(4, 4, 1, 4).Majorana(1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.BuildWithOptions(mh, core.BuildOptions{NoMemo: true}).PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkHATTMemoHit3x3(b *testing.B) {
	// The batch-serving fast path: every call after the first replays the
	// memoized merge schedule. The delta vs BenchmarkHATTConstruction3x3
	// is what the memo saves a multi-tenant batch.
	mh := models.FermiHubbard(3, 3, 1, 4).Majorana(1e-12)
	core.ResetBuildCache()
	core.Build(mh) // warm the memo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.Build(mh).PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkCompilerCompileHATT3x3(b *testing.B) {
	// End-to-end facade path over the same workload as
	// BenchmarkHATTConstruction3x3; the memo is reset every iteration so
	// the delta between the two is the registry + options + boundary
	// overhead of pkg/compiler, not a cache hit.
	mh := models.FermiHubbard(3, 3, 1, 4).Majorana(1e-12)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ResetBuildCache()
		res, err := compiler.Compile(ctx, "hatt", mh)
		if err != nil {
			b.Fatal(err)
		}
		if res.PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkCompilerPipelineH2(b *testing.B) {
	// Full pipeline: model build, Majorana expansion, mapping, synthesis,
	// and metrics in one facade call.
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rep, err := compiler.Pipeline{Model: "h2", Method: "hatt"}.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if rep.CNOTs <= 0 {
			b.Fatal("bad circuit")
		}
	}
}

func BenchmarkHATTUnoptConstruction3x3(b *testing.B) {
	mh := models.FermiHubbard(3, 3, 1, 4).Majorana(1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.BuildUnopt(mh).PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkHATTUncached3x3(b *testing.B) {
	// Ablation: Algorithm 2 without the Algorithm 3 caches (O(N⁴)).
	mh := models.FermiHubbard(3, 3, 1, 4).Majorana(1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.BuildUncached(mh).PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkExhaustiveSearch2x2Budget(b *testing.B) {
	mh := models.FermiHubbard(2, 2, 1, 4).Majorana(1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.Exhaustive(mh, 50_000).PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkAnneal2x3(b *testing.B) {
	mh := models.FermiHubbard(2, 3, 1, 4).Majorana(1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.Anneal(mh, core.AnnealOptions{Iters: 500, Seed: int64(i + 1)})
		if res.PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkMappingApplyNeutrino(b *testing.B) {
	// Cost of mapping application (string multiplication) in isolation.
	mh := models.NeutrinoOscillation(4, 2, 1).Majorana(1e-12)
	m := mapping.JordanWigner(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Apply(mh).Weight() <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkCircuitCompileH2O(b *testing.B) {
	mh := models.SyntheticMolecule("H2O", 14, 103, 0.56).Majorana(1e-12)
	hq := mapping.JordanWigner(14).Apply(mh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if circuit.Compile(hq, circuit.OrderLexicographic).CNOTCount() <= 0 {
			b.Fatal("bad circuit")
		}
	}
}

func BenchmarkBeamSearch2x2Width8(b *testing.B) {
	mh := models.FermiHubbard(2, 2, 1, 4).Majorana(1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.BuildBeam(mh, 8).PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkTieBreakSupport2x3(b *testing.B) {
	mh := models.FermiHubbard(2, 3, 1, 4).Majorana(1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := core.BuildWithOptions(mh, core.BuildOptions{TieBreak: core.TieSupport})
		if res.PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

// --- Parallel engine benches ----------------------------------------------
//
// The BenchmarkCompile*Parallel pairs measure the same search at
// WithParallelism(1) and WithParallelism(4); on a multi-core host the
// wall-time ratio is the parallel engine's speedup (the mappings are
// byte-identical either way — asserted in pkg/compiler tests). On a
// single-core host the pair documents the pool's overhead instead.

func benchCompileParallel(b *testing.B, spec string, par int) {
	mh := models.FermiHubbard(2, 3, 1, 4).Majorana(1e-12)
	ctx := context.Background()
	opts := []compiler.Option{
		compiler.WithParallelism(par),
		compiler.WithSeed(1),
		compiler.WithAnnealRestarts(4),
		compiler.WithAnnealSchedule(2000, 0, 0),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ResetBuildCache()
		res, err := compiler.Compile(ctx, spec, mh, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if res.PredictedWeight <= 0 {
			b.Fatal("bad weight")
		}
	}
}

func BenchmarkCompileBeamHubbardParallel1(b *testing.B) { benchCompileParallel(b, "beam:6", 1) }
func BenchmarkCompileBeamHubbardParallel4(b *testing.B) { benchCompileParallel(b, "beam:6", 4) }

func BenchmarkCompileAnnealHubbardParallel1(b *testing.B) { benchCompileParallel(b, "anneal", 1) }
func BenchmarkCompileAnnealHubbardParallel4(b *testing.B) { benchCompileParallel(b, "anneal", 4) }

func BenchmarkCompileHATTHubbardParallel1(b *testing.B) { benchCompileParallel(b, "hatt", 1) }
func BenchmarkCompileHATTHubbardParallel4(b *testing.B) { benchCompileParallel(b, "hatt", 4) }

func BenchmarkCompileBatch8xH2(b *testing.B) {
	// Eight tenants requesting the same model: the batch fans out across
	// items and the build memo collapses the duplicate searches.
	items := make([]compiler.BatchItem, 8)
	for i := range items {
		items[i] = compiler.BatchItem{Model: "h2", Spec: "hatt"}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ResetBuildCache()
		for _, br := range compiler.CompileBatch(ctx, items, compiler.WithParallelism(4)) {
			if br.Err != nil {
				b.Fatal(br.Err)
			}
		}
	}
}

func BenchmarkPerfSuiteJSON(b *testing.B) {
	// Regenerates the machine-readable sequential-vs-parallel sweep and
	// writes it to BENCH_perf.json; CI runs this at -benchtime=1x and
	// uploads every BENCH_*.json as the per-PR perf artifact.
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		rep := bench.PerfSuite(opt, 4)
		var buf bytes.Buffer
		if err := bench.WritePerfJSON(&buf, rep); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_perf.json", buf.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDensityNoisyH2(b *testing.B) {
	mh := models.H2STO3G().Majorana(1e-12)
	m := mapping.JordanWigner(4)
	hq := m.Apply(mh)
	cc := circuit.Compile(hq, circuit.OrderLexicographic)
	nm := sim.IonQForte1()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.ExactNoisyEnergy(nil, cc, hq, nm)
	}
}

func BenchmarkTaperH2(b *testing.B) {
	hq := mapping.JordanWigner(4).ApplyFermionic(models.H2STO3G())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := taper.GroundSector(hq, linalg.GroundEnergy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQWCGroupingNeutrino(b *testing.B) {
	mh := models.NeutrinoOscillation(3, 2, 1).Majorana(1e-12)
	hq := mapping.JordanWigner(12).Apply(mh)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(pauli.GroupQWC(hq)) == 0 {
			b.Fatal("no groups")
		}
	}
}

func BenchmarkHeadlineSummary(b *testing.B) {
	opt := benchOptions()
	opt.MaxModes = 8
	opt.FHMaxModes = 0
	for i := 0; i < b.N; i++ {
		if len(bench.HeadlineSummaries(opt)) != 3 {
			b.Fatal("bad summary")
		}
	}
}
