// Command hattlint is the repository's multichecker: it runs the eight
// invariant-enforcing analysis passes (noalloc, detrand, ctxflow,
// locksafe, apierr, pkgdoc, faultsafe, obslog) plus the lint-ignore
// hygiene check over the named packages and exits non-zero on any
// finding.
//
// Usage:
//
//	go run ./cmd/hattlint ./...
//	go run ./cmd/hattlint -list            # describe the passes
//	go run ./cmd/hattlint ./internal/...   # subset of the tree
//
// Findings print one per line as file:line:col: [pass] message. A
// finding is suppressed by a trailing or directly-preceding comment
// //hatt:lint-ignore <pass> <reason> — the reason is mandatory and
// unexplained or stale directives are findings themselves.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/apierr"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/faultsafe"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/locksafe"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/obslog"
	"repro/internal/analysis/pkgdoc"
)

// analyzers is the hattlint suite, in documentation order.
var analyzers = []*framework.Analyzer{
	noalloc.Analyzer,
	detrand.Analyzer,
	ctxflow.Analyzer,
	locksafe.Analyzer,
	apierr.Analyzer,
	pkgdoc.Analyzer,
	faultsafe.Analyzer,
	obslog.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the passes and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hattlint [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hattlint:", err)
		os.Exit(2)
	}
	findings, err := framework.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hattlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hattlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
