// Command benchtab regenerates the paper's tables and figures.
//
// Usage:
//
//	benchtab -table 1          # Table I  (electronic structure)
//	benchtab -table 2          # Table II (Fermi–Hubbard)
//	benchtab -table 3          # Table III (neutrino oscillations)
//	benchtab -table 4          # Table IV (tetris-lite routing)
//	benchtab -table 5          # Table V  (rustiq-lite synthesis)
//	benchtab -table 6          # Table VI (HATT unopt vs opt)
//	benchtab -figure 10        # noisy-simulation heat maps
//	benchtab -figure 11        # IonQ Forte-1 noise profile study
//	benchtab -figure 12        # scalability curves
//	benchtab -all              # everything
//	benchtab -list             # the pkg/compiler methods the tables use
//	benchtab -perf -json BENCH_perf.json -workers 4
//	                           # sequential-vs-parallel sweep, JSON artifact
//
// Scale knobs: -max-modes, -shots, -grid, -fh-modes, -fh-budget, -max-n.
//
// Mapping construction inside every table goes through the pkg/compiler
// registry, so the columns stay in lockstep with what `hattc -list`
// reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/prof"
	"repro/internal/version"
	"repro/pkg/compiler"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-6)")
	figure := flag.Int("figure", 0, "figure number to regenerate (10-12)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	maxModes := flag.Int("max-modes", 0, "skip cases larger than this (0 = no limit)")
	shots := flag.Int("shots", 1000, "noisy-simulation shots")
	grid := flag.Int("grid", 4, "noise grid steps per axis (figure 10)")
	fhModes := flag.Int("fh-modes", 10, "largest case for the exhaustive FH search")
	fhBudget := flag.Int64("fh-budget", 2_000_000, "FH search visit budget")
	maxN := flag.Int("max-n", 20, "figure 12 maximum size")
	fhMaxN := flag.Int("fh-max-n", 5, "figure 12 maximum FH size")
	ablation := flag.String("ablation", "", "run an ablation study: beam | ordering | cache | tiebreak")
	routed := flag.Bool("routed", false, "Table-IV-style routed comparison through pkg/compiler WithDevice")
	routedDevices := flag.String("devices", strings.Join(bench.DefaultRoutedDevices, ","), "with -routed: comma-separated device specs")
	routedMethods := flag.String("methods", strings.Join(bench.DefaultRoutedMethods, ","), "with -routed: comma-separated mapping methods")
	perf := flag.Bool("perf", false, "run the sequential-vs-parallel compilation sweep")
	jsonPath := flag.String("json", "", "with -perf: also write the sweep as JSON to this path (BENCH_*.json)")
	workers := flag.Int("workers", 0, "with -perf: parallel worker count (0 = GOMAXPROCS)")
	summary := flag.Bool("summary", false, "print the headline HATT-vs-baseline reductions across Tables I-III")
	exact := flag.Bool("exact", false, "figure 10: use the density-matrix simulator (exact bias, no shots)")
	list := flag.Bool("list", false, "list the compiler methods the tables draw from and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("benchtab"))
		return
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	// Error paths below exit through os.Exit and skip this; profiles are
	// written for runs that complete.
	defer stopProf()

	if *list {
		// The tables compile every mapping through pkg/compiler; this is
		// the registry they resolve against.
		fmt.Println(strings.Join(compiler.Methods(), "\n"))
		return
	}

	opt := bench.DefaultOptions()
	opt.MaxModes = *maxModes
	opt.Shots = *shots
	opt.GridSteps = *grid
	opt.FHMaxModes = *fhModes
	opt.FHBudget = *fhBudget
	opt.MaxN = *maxN
	opt.FHMaxN = *fhMaxN

	w := os.Stdout
	run := func(n int) {
		switch n {
		case 1:
			bench.PrintRows(w, "Table I: electronic structure", bench.Table1(opt), bench.MappingNames)
		case 2:
			bench.PrintRows(w, "Table II: Fermi–Hubbard", bench.Table2(opt), bench.MappingNames)
		case 3:
			bench.PrintRows(w, "Table III: collective neutrino oscillation", bench.Table3(opt), bench.MappingNames)
		case 4:
			rows, err := bench.Table4(opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			bench.PrintTable4(w, rows)
		case 5:
			bench.PrintTable5(w, bench.Table5(opt))
		case 6:
			bench.PrintTable6(w, bench.Table6(opt))
		case 10:
			if *exact {
				cells, err := bench.Figure10Exact(opt)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchtab:", err)
					os.Exit(1)
				}
				bench.PrintFigure10Exact(w, cells)
				return
			}
			cells, err := bench.Figure10(opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			bench.PrintFigure10(w, cells)
		case 11:
			res, err := bench.Figure11(opt)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			bench.PrintFigure11(w, res)
		case 12:
			bench.PrintFigure12(w, bench.Figure12(opt))
		default:
			fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %d\n", n)
			os.Exit(2)
		}
	}
	if *all {
		for _, n := range []int{1, 2, 3, 4, 5, 6, 10, 11, 12} {
			run(n)
		}
		bench.PrintBeamAblation(w, bench.BeamAblation(nil, opt))
		bench.PrintOrderingAblation(w, bench.OrderingAblation(opt))
		bench.PrintCacheAblation(w, bench.CacheAblation(opt))
		return
	}
	switch {
	case *routed:
		rows, err := bench.RoutedComparison(opt,
			strings.Split(*routedDevices, ","), strings.Split(*routedMethods, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		bench.PrintRouted(w, rows)
	case *perf:
		rep := bench.PerfSuite(opt, *workers)
		bench.PrintPerf(w, rep)
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			if err := bench.WritePerfJSON(f, rep); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
			fmt.Fprintln(w, "wrote", *jsonPath)
		}
	case *summary:
		bench.PrintSummary(w, bench.HeadlineSummaries(opt))
	case *ablation != "":
		switch *ablation {
		case "beam":
			bench.PrintBeamAblation(w, bench.BeamAblation(nil, opt))
		case "ordering":
			bench.PrintOrderingAblation(w, bench.OrderingAblation(opt))
		case "cache":
			bench.PrintCacheAblation(w, bench.CacheAblation(opt))
		case "tiebreak":
			bench.PrintTieBreakAblation(w, bench.TieBreakAblation(opt))
		default:
			fmt.Fprintf(os.Stderr, "benchtab: unknown ablation %q\n", *ablation)
			os.Exit(2)
		}
	case *table != 0:
		run(*table)
	case *figure != 0:
		run(*figure)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
