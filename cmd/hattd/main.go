// Command hattd is the HATT compilation daemon: compilation-as-a-service
// over the pkg/compiler facade. It serves a JSON HTTP API with a
// content-addressed result store (in-memory LRU plus optional disk
// tier), an async job manager with deduplication and backpressure, and
// live stats.
//
//	hattd -addr 127.0.0.1:7707 -store-dir /var/lib/hattd
//
// Endpoints (see docs/api.md for the full reference):
//
//	POST   /v1/compile          synchronous compile (cache-aware)
//	POST   /v1/jobs             submit an async job (429 when the queue is full)
//	GET    /v1/jobs/{id}        poll job status / result
//	DELETE /v1/jobs/{id}        cancel a job (?result=partial keeps the best-so-far)
//	GET    /v1/portfolio/stats  portfolio race counters and the win/loss ledger
//	GET    /v1/methods          registered mapping methods
//	GET    /v1/devices          device catalog
//	GET    /v1/store/{address}  fleet peer cache-fill (stored entry by content address)
//	GET    /v1/healthz          liveness + version
//	GET    /v1/readyz           readiness (503 + reasons while degraded)
//	GET    /v1/stats            cache/fleet counters and queue depth
//	GET    /v1/traces/{id}      recent request trace (spans + timings)
//	GET    /debug/vars          the same stats via expvar
//	GET    /metrics             Prometheus text exposition of the same counters
//
// Every response carries a Trace-Id header; requests may supply a W3C
// traceparent header to join an existing trace (propagated across fleet
// peer fetches). Structured logs (JSON by default) go to stderr with
// -log-level / -log-format; -debug-addr opens a second listener serving
// /debug/pprof/* so profiling never shares the public socket.
//
// Several daemons form a fleet with -self plus -peers (or -fleet-config):
// each node keeps serving everything, but a local store miss is first
// routed by consistent hash to the peers and filled from whoever already
// compiled it, so the fleet compiles each distinct problem once. A down
// peer costs one bounded fetch (-peer-timeout) and the node degrades to
// compiling locally. See docs/operations.md for topology guidance.
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight
// jobs (bounded by -drain-timeout), and exits.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/version"
	"repro/pkg/compiler"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hattd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7707", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "concurrent compile jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", service.DefaultQueueDepth, "pending-job queue depth (submissions beyond it get 429)")
	storeCap := flag.Int("store-cap", store.DefaultCapacity, "in-memory result-store entries (LRU-evicted)")
	storeDir := flag.String("store-dir", "", "enable the on-disk result-store tier rooted at this directory")
	maxModes := flag.Int("max-modes", service.DefaultMaxModes, "largest model a request may name")
	syncTimeout := flag.Duration("timeout", service.DefaultTimeout, "synchronous /v1/compile compile budget")
	jobTimeout := flag.Duration("job-timeout", service.DefaultMaxJobTime, "ceiling on any async job's compile time")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
	selfURL := flag.String("self", "", "this node's advertised base URL in the fleet (e.g. http://10.0.0.1:7707)")
	peers := flag.String("peers", "", "comma-separated base URLs of the other fleet nodes (enables peer cache-fill)")
	fleetConfig := flag.String("fleet-config", "", "JSON fleet topology file ({self, peers, timeout_ms, retries}); overrides -self/-peers")
	peerTimeout := flag.Duration("peer-timeout", fleet.DefaultTimeout, "per-attempt budget for one peer cache-fill fetch")
	peerRetries := flag.Int("peer-retries", fleet.DefaultRetries, "extra attempts per failing peer fetch before falling back")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent synchronous compiles before shedding 429 (0 = 4×GOMAXPROCS)")
	ledgerEps := flag.Float64("portfolio-epsilon", store.DefaultLedgerEpsilon,
		"portfolio ledger exploration rate in [0,1] (0 = always launch the best-ranked method first)")
	faultPlan := flag.String("fault-plan", "", "arm a failpoint injection plan (chaos testing; also "+fault.EnvVar+" env)")
	logLevel := flag.String("log-level", "info", "structured log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "json", "structured log format: json | text")
	traceBuffer := flag.Int("trace-buffer", obs.DefaultTraceCapacity, "recent traces kept for GET /v1/traces/{id}")
	debugAddr := flag.String("debug-addr", "", "separate listener for /debug/pprof/* (empty = profiling endpoints off)")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("hattd"))
		return nil
	}

	// Structured logs go to stderr so stdout keeps the few load-bearing
	// plain lines (listen address, fleet size, drain notices) scripts and
	// the CI smoke jobs grep for.
	if _, err := obs.InitLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		return err
	}

	// Fault injection arms before anything that can hit a failpoint. The
	// flag wins over the environment so a supervisor-exported plan can be
	// overridden per invocation.
	if *faultPlan != "" {
		if err := fault.Arm(*faultPlan); err != nil {
			return err
		}
	} else if _, err := fault.ArmFromEnv(); err != nil {
		return err
	}
	if plan := fault.Active(); plan != "" {
		fmt.Printf("hattd: fault plan armed: %s\n", plan)
	}

	st, err := store.Open(*storeCap, *storeDir)
	if err != nil {
		return err
	}

	// The portfolio win/loss ledger lives beside the result store: disk
	// tier configured → it survives restarts, memory-only otherwise.
	ledgerPath := ""
	if *storeDir != "" {
		ledgerPath = filepath.Join(*storeDir, "portfolio_ledger.json")
	}
	ledger, err := store.OpenLedger(ledgerPath, *ledgerEps)
	if err != nil {
		return err
	}

	// Fleet wiring: with peers configured, the manager and the sync
	// compile path see the fleet-wrapped store (local tiers first, then
	// peer cache-fill); the API keeps the raw local store for the
	// /v1/store peer endpoint so fills never cascade across nodes.
	fleetCfg := fleet.Config{Self: *selfURL, Peers: fleet.ParsePeers(*peers), Timeout: *peerTimeout, Retries: *peerRetries}
	if *fleetConfig != "" {
		fleetCfg, err = fleet.LoadConfigFile(*fleetConfig)
		if err != nil {
			return err
		}
	}
	var (
		compileStore compiler.Store = st
		fleetStore   *fleet.Store
	)
	if len(fleetCfg.Peers) > 0 {
		fleetStore, err = fleet.NewStore(st, fleetCfg)
		if err != nil {
			return err
		}
		compileStore = fleetStore
	}

	mgr := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		Store:      compileStore,
		Ledger:     ledger,
		MaxJobTime: *jobTimeout,
	})
	apiOpts := []service.APIOption{
		service.WithMaxModes(*maxModes),
		service.WithSyncTimeout(*syncTimeout),
		service.WithMaxInFlight(*maxInFlight),
		service.WithLedger(ledger),
	}
	if fleetStore != nil {
		apiOpts = append(apiOpts, service.WithFleet(fleetStore))
	}
	apiOpts = append(apiOpts, service.WithObservability(obs.NewRegistry(), obs.NewTracer(*traceBuffer)))
	api := service.NewAPI(mgr, st, apiOpts...)

	// One snapshot path feeds every introspection surface: /v1/stats,
	// expvar's /debug/vars, and the registry collectors behind /metrics
	// all read the same counters, so the three views cannot drift.
	expvar.Publish("hattd", expvar.Func(func() any { return api.StatsSnapshot() }))
	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.Handle("GET /metrics", api.MetricsHandler())

	// Live profiling gets its own listener: /debug/pprof/* never shares
	// the serving socket, so an exposed -addr cannot leak profiles.
	if *debugAddr != "" {
		dln, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			return derr
		}
		fmt.Printf("hattd: debug listener on %s (pprof)\n", dln.Addr())
		dsrv := &http.Server{Handler: prof.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = dsrv.Serve(dln) }()
		defer dsrv.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Request contexts descend from serveCtx so shutdown can force-cancel
	// in-flight synchronous compiles once the drain budget runs out.
	serveCtx, stopServe := context.WithCancel(context.Background())
	defer stopServe()
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return serveCtx },
	}

	// The printed address is load-bearing: with -addr :0 it is how
	// callers (the CI smoke job included) learn the real port.
	fmt.Printf("hattd %s listening on %s (store: mem cap %d, disk %q)\n",
		version.Version, ln.Addr(), *storeCap, *storeDir)
	if fleetStore != nil {
		fmt.Printf("hattd: fleet of %d peers (self %q)\n", len(fleetStore.Stats().Peers), fleetCfg.Self)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	fmt.Println("hattd: shutting down, draining in-flight jobs")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// First pass waits the drain budget for in-flight requests to finish
	// on their own; if any are still running, cancel their contexts
	// (aborting the compiles) and collect the connections briefly.
	httpErr := srv.Shutdown(shutdownCtx)
	if httpErr != nil {
		stopServe()
		forceCtx, forceCancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpErr = srv.Shutdown(forceCtx)
		forceCancel()
	}
	// The job manager always gets its drain (and force-cancel) pass,
	// even when the HTTP side misbehaved.
	if err := mgr.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("job drain: %w", err)
	}
	if httpErr != nil {
		return fmt.Errorf("http shutdown: %w", httpErr)
	}
	fmt.Println("hattd: drained cleanly")
	return nil
}
