// Command hattload is a closed-loop load generator for hattd fleets. It
// drives mixed cache-hit/cache-miss compile traffic over a ramp of
// concurrency levels and writes a machine-readable throughput/latency
// report (BENCH_load.json) suitable for regression tracking.
//
//	hattload -targets http://127.0.0.1:7707 -ramp 1,4,16 -duration 5s -out BENCH_load.json
//
// Traffic model: a deterministic stream (pure function of -seed and the
// request index) cycling a model × method pool. A -hit-ratio fraction of
// requests repeat pool entries verbatim — after the warmup pass these
// are cache hits, served from the local store or filled from a fleet
// peer. The rest carry a unique options.seed, which lands on a fresh
// content address and forces a genuine compile. Multiple -targets are
// consulted round-robin, so a fleet sees interleaved traffic and the
// report reflects cross-node cache-fill behaviour.
//
// Closed loop means each worker waits for its response before sending
// the next request: measured RPS is what the service actually sustains
// at that concurrency, not an open-loop arrival rate. See
// docs/operations.md for how to read the report.
//
// With -chaos the generator becomes a chaos-drill client, meant to run
// against a fleet with an armed failpoint plan (hattd -fault-plan): 429
// and 503 responses are treated as backpressure — the Retry-After
// header is honored (capped at 2s) for up to 5 retries before a request
// counts as an error — and after the last phase every target's
// /v1/readyz must answer 200. The report gains a "chaos" block with the
// retry count and per-target readiness; residual errors or a degraded
// node make the run exit nonzero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hattload:", err)
		os.Exit(1)
	}
}

func run() error {
	targets := flag.String("targets", "http://127.0.0.1:7707", "comma-separated hattd base URLs (round-robin)")
	rampFlag := flag.String("ramp", "1,2,4", "comma-separated concurrency levels, one phase each")
	duration := flag.Duration("duration", 5*time.Second, "measured duration of each phase")
	hitRatio := flag.Float64("hit-ratio", 0.7, "fraction of requests that repeat cached work (0..1)")
	modelsFlag := flag.String("models", "h2,hubbard:2x2", "comma-separated model specs to cycle")
	methodsFlag := flag.String("methods", "jw,bk,hatt", "comma-separated mapping methods to cycle")
	device := flag.String("device", "", "optional device spec added to every request (routed compiles)")
	seed := flag.Uint64("seed", 1, "stream seed; same flags + same seed = identical request sequence")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request budget")
	warm := flag.Bool("warm", true, "issue each hit combo once before measuring, so hits are hits")
	chaos := flag.Bool("chaos", false, "chaos-drill mode: retry 429/503 per Retry-After, then require readyz 200 on every target")
	out := flag.String("out", "BENCH_load.json", "report path (- for stdout)")
	logLevel := flag.String("log-level", "warn", "structured log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "structured log format: json | text")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("hattload"))
		return nil
	}
	if _, err := obs.InitLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		return err
	}

	targetList := splitList(*targets)
	if len(targetList) == 0 {
		return fmt.Errorf("no targets")
	}
	ramp, err := parseRamp(*rampFlag)
	if err != nil {
		return err
	}
	gen, err := newMix(splitList(*modelsFlag), splitList(*methodsFlag), *device, *hitRatio, *seed)
	if err != nil {
		return err
	}

	client := &http.Client{Timeout: *timeout}
	ctx := context.Background()
	var cs *chaosState
	if *chaos {
		cs = &chaosState{}
	}

	if *warm {
		combos := gen.hitCombos()
		fmt.Fprintf(os.Stderr, "hattload: warming %d combos against %s\n", len(combos), targetList[0])
		for _, body := range combos {
			var err error
			if cs != nil {
				_, _, err = postCompileChaos(ctx, client, targetList[0], body, cs)
			} else {
				_, _, err = postCompile(ctx, client, targetList[0], body)
			}
			if err != nil {
				return fmt.Errorf("warmup: %w", err)
			}
		}
	}

	rep := report{
		Tool:     "hattload",
		Version:  version.Version,
		Targets:  targetList,
		Models:   splitList(*modelsFlag),
		Methods:  splitList(*methodsFlag),
		Device:   *device,
		HitRatio: *hitRatio,
		Seed:     *seed,
	}
	for _, c := range ramp {
		fmt.Fprintf(os.Stderr, "hattload: phase c=%d for %s\n", c, *duration)
		ph := runPhase(ctx, client, targetList, gen, c, *duration, cs)
		fmt.Fprintf(os.Stderr, "hattload:   %d reqs, %d errors, %.1f rps, p50 %.2fms p99 %.2fms\n",
			ph.Requests, ph.Errors, ph.RPS, ph.Latency.P50, ph.Latency.P99)
		rep.Phases = append(rep.Phases, ph)
		rep.TotalReqs += ph.Requests
		rep.TotalErrs += ph.Errors
		for _, st := range ph.Slowest {
			rep.Traces = topSlow(rep.Traces, st)
		}
	}
	if len(rep.Traces) > 0 {
		fmt.Fprintf(os.Stderr, "hattload: slowest requests (GET <target>/v1/traces/<trace_id> for the span timeline):\n")
		for _, st := range rep.Traces {
			fmt.Fprintf(os.Stderr, "hattload:   %8.2fms  %s  %s\n", st.LatencyMS, st.TraceID, st.Target)
		}
	}

	// The chaos verdict: the storm is over, so every target must report
	// ready — breakers re-closed, disk tier healed, nothing draining.
	var degraded []string
	if cs != nil {
		cr := &chaosReport{BackpressureRetries: cs.retries.Load(), Readyz: make(map[string]int)}
		for _, target := range targetList {
			code, err := getStatus(ctx, client, target+"/v1/readyz")
			if err != nil {
				return fmt.Errorf("chaos readyz sweep: %w", err)
			}
			cr.Readyz[target] = code
			if code != http.StatusOK {
				degraded = append(degraded, target)
			}
		}
		rep.Chaos = cr
		fmt.Fprintf(os.Stderr, "hattload: chaos: %d backpressure retries, readyz %v\n",
			cr.BackpressureRetries, cr.Readyz)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "-" {
		if _, err = os.Stdout.Write(enc); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hattload: report written to %s\n", *out)
	}
	if cs != nil {
		if rep.TotalErrs > 0 {
			return fmt.Errorf("chaos: %d requests failed after retries", rep.TotalErrs)
		}
		if len(degraded) > 0 {
			return fmt.Errorf("chaos: still degraded after the run: %v", degraded)
		}
	}
	return nil
}
