package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// mix deterministically generates the request stream: a fixed pool of
// (model, method) combinations for cache-hit traffic, and the same pool
// with a unique options.seed per request for cache-miss traffic (the
// seed is folded into the store's options digest, so every miss request
// lands on a fresh content address and forces a real compile).
//
// The stream is a pure function of (seed, request index): two hattload
// runs with the same flags issue byte-identical request sequences, which
// is what makes BENCH_load.json comparable across commits.
type mix struct {
	models   []string
	methods  []string
	device   string
	hitPct   int // hits per 1000 requests
	seed     uint64
	counter  atomic.Uint64 // request index, shared by all workers
	missSeed atomic.Int64  // unique seed source for miss traffic
}

func newMix(models, methods []string, device string, hitRatio float64, seed uint64) (*mix, error) {
	if len(models) == 0 || len(methods) == 0 {
		return nil, fmt.Errorf("hattload: need at least one model and one method")
	}
	if hitRatio < 0 || hitRatio > 1 {
		return nil, fmt.Errorf("hattload: hit ratio %v out of range [0, 1]", hitRatio)
	}
	m := &mix{
		models:  models,
		methods: methods,
		device:  device,
		hitPct:  int(math.Round(hitRatio * 1000)),
		seed:    seed,
	}
	m.missSeed.Store(1) // seed 0 means "unset" on the wire; never emit it
	return m, nil
}

// next claims the next request index. Indices are globally unique across
// workers so the hit/miss decision and combo choice stay deterministic
// regardless of scheduling.
func (m *mix) next() uint64 { return m.counter.Add(1) - 1 }

// request builds the /v1/compile body for request index i and reports
// whether it is miss traffic. Hit requests cycle the combo pool with no
// options (stable content address); miss requests add a never-repeated
// options.seed.
func (m *mix) request(i uint64) (body []byte, miss bool) {
	h := splitmix64(m.seed + i)
	combo := h >> 16 // independent bits from the hit/miss decision
	model := m.models[combo%uint64(len(m.models))]
	method := m.methods[(combo/uint64(len(m.models)))%uint64(len(m.methods))]

	req := map[string]any{"model": model, "method": method}
	if m.device != "" {
		req["device"] = m.device
	}
	if int(h%1000) >= m.hitPct {
		miss = true
		req["options"] = map[string]any{"seed": m.missSeed.Add(1)}
	}
	body, err := json.Marshal(req)
	if err != nil {
		// Impossible for map[string]any of strings/ints; keep the
		// closed loop alive regardless.
		panic(err)
	}
	return body, miss
}

// hitCombos returns one request body per distinct (model, method) pair —
// the warmup set. Issuing each against any node fills the fleet-visible
// cache so the measured phases see genuine hit traffic.
func (m *mix) hitCombos() [][]byte {
	var out [][]byte
	for _, model := range m.models {
		for _, method := range m.methods {
			req := map[string]any{"model": model, "method": method}
			if m.device != "" {
				req["device"] = m.device
			}
			b, _ := json.Marshal(req)
			out = append(out, b)
		}
	}
	return out
}

// splitmix64 is the standard 64-bit mix (Vigna); a full-period bijection
// whose outputs pass statistical tests, so consecutive indices give
// independent-looking hit/miss decisions without any shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// phaseResult is one concurrency step of the ramp, as written to
// BENCH_load.json.
type phaseResult struct {
	Concurrency int            `json:"concurrency"`
	DurationMS  float64        `json:"duration_ms"`
	Requests    int            `json:"requests"`
	Errors      int            `json:"errors"`
	CacheHits   int            `json:"cache_hits"`
	MissIssued  int            `json:"miss_requests_issued"`
	RPS         float64        `json:"rps"`
	Latency     latencySummary `json:"latency_ms"`
	Slowest     []slowTrace    `json:"slowest,omitempty"`
}

// slowTrace identifies one of the slowest requests of a run: the
// target that served it, the Trace-Id it answered with, and its
// latency. Feeding the ID to GET /v1/traces/{id} on that target breaks
// the tail latency down into pipeline stages.
type slowTrace struct {
	Target    string  `json:"target"`
	TraceID   string  `json:"trace_id"`
	LatencyMS float64 `json:"latency_ms"`
}

// slowCap bounds every slowest-request list (per worker, per phase, and
// the report's run-level traces block).
const slowCap = 5

// topSlow inserts t into a descending-by-latency list bounded at
// slowCap, returning the updated list.
func topSlow(list []slowTrace, t slowTrace) []slowTrace {
	i := sort.Search(len(list), func(i int) bool { return list[i].LatencyMS < t.LatencyMS })
	list = append(list, slowTrace{})
	copy(list[i+1:], list[i:])
	list[i] = t
	if len(list) > slowCap {
		list = list[:slowCap]
	}
	return list
}

// latencySummary reports request latency in milliseconds.
type latencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// report is the full BENCH_load.json document.
type report struct {
	Tool      string        `json:"tool"`
	Version   string        `json:"version"`
	Targets   []string      `json:"targets"`
	Models    []string      `json:"models"`
	Methods   []string      `json:"methods"`
	Device    string        `json:"device,omitempty"`
	HitRatio  float64       `json:"hit_ratio"`
	Seed      uint64        `json:"seed"`
	Phases    []phaseResult `json:"phases"`
	TotalReqs int           `json:"total_requests"`
	TotalErrs int           `json:"total_errors"`
	// Traces lists the run's slowest requests with their Trace-Id, so a
	// tail-latency regression in the report links straight to the span
	// timelines that explain it.
	Traces []slowTrace  `json:"traces,omitempty"`
	Chaos  *chaosReport `json:"chaos,omitempty"`
}

// chaosReport is the -chaos block of the report: how much backpressure
// the run absorbed and what each target's readiness probe said once the
// storm was over.
type chaosReport struct {
	BackpressureRetries int64          `json:"backpressure_retries"`
	Readyz              map[string]int `json:"readyz"`
}

// chaosState accumulates backpressure accounting across workers.
type chaosState struct {
	retries atomic.Int64 // 429/503 responses retried after their Retry-After
}

// Client-side backpressure contract for -chaos runs: bounded retries,
// Retry-After honored but capped so one pathological header cannot
// stall a worker for the whole phase.
const (
	chaosMaxRetries    = 5
	chaosMaxRetryDelay = 2 * time.Second
)

// runPhase drives one closed-loop phase: `concurrency` workers each
// issue a request, wait for the response, and repeat until the phase
// deadline. Targets are consulted round-robin by request index, so a
// multi-node fleet sees interleaved traffic and cross-node cache fills.
func runPhase(ctx context.Context, client *http.Client, targets []string, m *mix, concurrency int, duration time.Duration, cs *chaosState) phaseResult {
	ctx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	type workerTally struct {
		latencies []float64
		errors    int
		hits      int
		misses    int
		slow      []slowTrace
	}
	tallies := make([]workerTally, concurrency)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(tally *workerTally) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := m.next()
				body, miss := m.request(i)
				if miss {
					tally.misses++
				}
				target := targets[i%uint64(len(targets))]
				t0 := time.Now()
				var (
					cached  bool
					traceID string
					err     error
				)
				if cs != nil {
					cached, traceID, err = postCompileChaos(ctx, client, target, body, cs)
				} else {
					cached, traceID, err = postCompile(ctx, client, target, body)
				}
				if ctx.Err() != nil {
					return // deadline mid-request: do not count the cut-off request
				}
				lat := float64(time.Since(t0).Microseconds()) / 1000
				tally.latencies = append(tally.latencies, lat)
				if traceID != "" {
					tally.slow = topSlow(tally.slow, slowTrace{Target: target, TraceID: traceID, LatencyMS: lat})
				}
				if err != nil {
					tally.errors++
					continue
				}
				if cached {
					tally.hits++
				}
			}
		}(&tallies[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []float64
	res := phaseResult{Concurrency: concurrency, DurationMS: float64(elapsed.Microseconds()) / 1000}
	for _, t := range tallies {
		all = append(all, t.latencies...)
		res.Errors += t.errors
		res.CacheHits += t.hits
		res.MissIssued += t.misses
		for _, st := range t.slow {
			res.Slowest = topSlow(res.Slowest, st)
		}
	}
	res.Requests = len(all)
	if sec := elapsed.Seconds(); sec > 0 {
		res.RPS = float64(res.Requests) / sec
	}
	res.Latency = summarize(all)
	return res
}

// postCompile issues one synchronous compile and reports whether the
// daemon served it from cache. Any non-200 status is an error for load
// accounting (the generator only sends well-formed requests).
func postCompile(ctx context.Context, client *http.Client, target string, body []byte) (cached bool, traceID string, err error) {
	cached, _, _, traceID, err = postCompileOnce(ctx, client, target, body)
	return cached, traceID, err
}

// postCompileChaos is postCompile under the documented client contract
// for backpressure: a 429 or 503 honors the server's Retry-After
// (capped at chaosMaxRetryDelay) and retries up to chaosMaxRetries
// times. A request that eventually succeeds is not a client error —
// shedding worked; only exhausted retries count against the run.
func postCompileChaos(ctx context.Context, client *http.Client, target string, body []byte, cs *chaosState) (bool, string, error) {
	for attempt := 0; ; attempt++ {
		cached, status, retryAfter, traceID, err := postCompileOnce(ctx, client, target, body)
		backpressure := status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
		if err == nil || !backpressure || attempt >= chaosMaxRetries {
			return cached, traceID, err
		}
		cs.retries.Add(1)
		delay := retryAfter
		if delay <= 0 {
			delay = 100 * time.Millisecond
		}
		if delay > chaosMaxRetryDelay {
			delay = chaosMaxRetryDelay
		}
		select {
		case <-ctx.Done():
			return false, traceID, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// postCompileOnce issues exactly one compile attempt, surfacing the
// status code and any Retry-After guidance so callers can implement
// retry policy.
func postCompileOnce(ctx context.Context, client *http.Client, target string, body []byte) (cached bool, status int, retryAfter time.Duration, traceID string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		return false, 0, 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false, 0, 0, "", err
	}
	defer resp.Body.Close()
	traceID = resp.Header.Get("Trace-Id")
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		if s := resp.Header.Get("Retry-After"); s != "" {
			if sec, perr := strconv.Atoi(s); perr == nil && sec > 0 {
				retryAfter = time.Duration(sec) * time.Second
			}
		}
		return false, resp.StatusCode, retryAfter, traceID, fmt.Errorf("%s: status %d", target, resp.StatusCode)
	}
	var out struct {
		Cached bool `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return false, resp.StatusCode, 0, traceID, fmt.Errorf("%s: bad response: %v", target, err)
	}
	return out.Cached, http.StatusOK, 0, traceID, nil
}

// getStatus issues a GET and returns the response status, draining the
// body. Used for the end-of-run readiness sweep.
func getStatus(ctx context.Context, client *http.Client, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode, nil
}

// summarize computes the latency digest. The input is consumed (sorted
// in place).
func summarize(latencies []float64) latencySummary {
	if len(latencies) == 0 {
		return latencySummary{}
	}
	sort.Float64s(latencies)
	var sum float64
	for _, l := range latencies {
		sum += l
	}
	return latencySummary{
		Mean: sum / float64(len(latencies)),
		P50:  percentile(latencies, 50),
		P95:  percentile(latencies, 95),
		P99:  percentile(latencies, 99),
		Max:  latencies[len(latencies)-1],
	}
}

// percentile is the nearest-rank percentile of an ascending-sorted
// slice: the smallest value such that at least p% of samples are ≤ it.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// parseRamp turns "1,4,16" into the phase concurrency ladder.
func parseRamp(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(part, "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("hattload: bad ramp step %q (want a positive integer)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("hattload: empty concurrency ramp")
	}
	return out, nil
}

// splitList parses a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
