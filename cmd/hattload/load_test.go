package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func mustMix(t *testing.T, hitRatio float64, seed uint64) *mix {
	t.Helper()
	m, err := newMix([]string{"h2", "hubbard:2x2"}, []string{"jw", "hatt"}, "", hitRatio, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMixDeterministic pins the core reproducibility property: the
// request stream is a pure function of (seed, index) — except for the
// miss seeds, which must never repeat.
func TestMixDeterministic(t *testing.T) {
	a, b := mustMix(t, 0.5, 42), mustMix(t, 0.5, 42)
	for i := uint64(0); i < 200; i++ {
		ba, missA := a.request(i)
		bb, missB := b.request(i)
		if missA != missB {
			t.Fatalf("index %d: hit/miss decision diverged", i)
		}
		if missA {
			continue // miss bodies differ by design (unique seeds)
		}
		if string(ba) != string(bb) {
			t.Fatalf("index %d: hit bodies diverged:\n%s\n%s", i, ba, bb)
		}
	}
}

func TestMixHitRatioAndCombos(t *testing.T) {
	m := mustMix(t, 0.7, 1)
	combos := map[string]bool{}
	hits := 0
	const n = 2000
	seenSeeds := map[int64]bool{}
	for i := uint64(0); i < n; i++ {
		body, miss := m.request(i)
		var req struct {
			Model   string `json:"model"`
			Method  string `json:"method"`
			Options *struct {
				Seed int64 `json:"seed"`
			} `json:"options"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatalf("index %d: body %s: %v", i, body, err)
		}
		combos[req.Model+"/"+req.Method] = true
		if !miss {
			hits++
			if req.Options != nil {
				t.Fatalf("hit request carries options: %s", body)
			}
			continue
		}
		if req.Options == nil || req.Options.Seed == 0 {
			t.Fatalf("miss request lacks a nonzero seed: %s", body)
		}
		if seenSeeds[req.Options.Seed] {
			t.Fatalf("miss seed %d repeated — would be a spurious cache hit", req.Options.Seed)
		}
		seenSeeds[req.Options.Seed] = true
	}
	// All four model×method combos appear.
	if len(combos) != 4 {
		t.Errorf("combo coverage = %v, want all 4", combos)
	}
	// Hit fraction within 5 points of the requested 70%.
	if frac := float64(hits) / n; frac < 0.65 || frac > 0.75 {
		t.Errorf("hit fraction = %.3f, want ≈ 0.70", frac)
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := newMix(nil, []string{"jw"}, "", 0.5, 1); err == nil {
		t.Error("empty model list accepted")
	}
	if _, err := newMix([]string{"h2"}, nil, "", 0.5, 1); err == nil {
		t.Error("empty method list accepted")
	}
	if _, err := newMix([]string{"h2"}, []string{"jw"}, "", 1.5, 1); err == nil {
		t.Error("hit ratio > 1 accepted")
	}
}

func TestHitCombos(t *testing.T) {
	m := mustMix(t, 0.5, 1)
	combos := m.hitCombos()
	if len(combos) != 4 {
		t.Fatalf("hitCombos = %d bodies, want 4", len(combos))
	}
	for _, b := range combos {
		var req map[string]any
		if err := json.Unmarshal(b, &req); err != nil {
			t.Fatalf("combo %s: %v", b, err)
		}
		if _, has := req["options"]; has {
			t.Errorf("warmup combo carries options: %s", b)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{{50, 5}, {95, 10}, {99, 10}, {100, 10}, {10, 1}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	one := []float64{7}
	for _, p := range []float64{1, 50, 99} {
		if got := percentile(one, p); got != 7 {
			t.Errorf("percentile(single, %v) = %v, want 7", p, got)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]float64{4, 2, 6, 8})
	if s.Mean != 5 || s.Max != 8 || s.P50 != 4 {
		t.Errorf("summarize = %+v", s)
	}
	if z := summarize(nil); z != (latencySummary{}) {
		t.Errorf("summarize(nil) = %+v, want zero", z)
	}
}

func TestParseRamp(t *testing.T) {
	got, err := parseRamp(" 1, 4 ,16,")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Errorf("parseRamp = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "-2", "x", "1,nope"} {
		if _, err := parseRamp(bad); err == nil {
			t.Errorf("parseRamp(%q): want error", bad)
		}
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Error("splitList(\"\") should be nil")
	}
}

// fakeDaemon mimics hattd's /v1/compile closely enough for phase
// accounting: 200 with {"cached": <bool>} and a request counter.
func fakeDaemon(t *testing.T, cached bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var count atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/compile" {
			http.NotFound(w, r)
			return
		}
		count.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"cached": cached})
	}))
	t.Cleanup(srv.Close)
	return srv, &count
}

func TestRunPhase(t *testing.T) {
	srv, count := fakeDaemon(t, true)
	m := mustMix(t, 1.0, 1) // all hits: no compile cost in the fake
	client := &http.Client{Timeout: 5 * time.Second}

	ph := runPhase(context.Background(), client, []string{srv.URL}, m, 4, 300*time.Millisecond, nil)
	if ph.Requests == 0 {
		t.Fatal("phase recorded no requests")
	}
	if ph.Errors != 0 {
		t.Fatalf("phase errors = %d against a healthy server", ph.Errors)
	}
	if ph.CacheHits != ph.Requests {
		t.Errorf("cache hits %d != requests %d with an all-cached server", ph.CacheHits, ph.Requests)
	}
	if ph.RPS <= 0 {
		t.Errorf("rps = %v", ph.RPS)
	}
	if ph.Concurrency != 4 {
		t.Errorf("concurrency = %d", ph.Concurrency)
	}
	if ph.Latency.P50 <= 0 || ph.Latency.P99 < ph.Latency.P50 || ph.Latency.Max < ph.Latency.P99 {
		t.Errorf("latency digest not monotone: %+v", ph.Latency)
	}
	// The recorded count is within the fake's own accounting (cut-off
	// requests at the deadline may be counted by the server but not the
	// phase, never the reverse).
	if got := count.Load(); got < int64(ph.Requests) {
		t.Errorf("server saw %d requests, phase claims %d", got, ph.Requests)
	}
}

func TestRunPhaseCountsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"boom","status":500}`, http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	m := mustMix(t, 1.0, 1)
	client := &http.Client{Timeout: 5 * time.Second}
	ph := runPhase(context.Background(), client, []string{srv.URL}, m, 2, 200*time.Millisecond, nil)
	if ph.Requests == 0 || ph.Errors != ph.Requests {
		t.Errorf("errors = %d of %d requests, want all errored", ph.Errors, ph.Requests)
	}
	if ph.CacheHits != 0 {
		t.Errorf("cache hits = %d from an erroring server", ph.CacheHits)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := report{
		Tool: "hattload", Version: "test", Targets: []string{"http://a"},
		Models: []string{"h2"}, Methods: []string{"jw"}, HitRatio: 0.7, Seed: 1,
		Phases: []phaseResult{{
			Concurrency: 2, DurationMS: 1000, Requests: 10, RPS: 10,
			Latency: latencySummary{Mean: 1, P50: 1, P95: 2, P99: 2, Max: 3},
		}},
		TotalReqs: 10,
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Phases[0].Latency.P99 != 2 || back.TotalReqs != 10 {
		t.Errorf("report did not round-trip: %+v", back)
	}
}

// TestChaosBackpressureRetry pins the -chaos client contract: 429/503
// responses are retried (tallied per retry) and an eventual success is
// not an error, while genuine 4xx failures are surfaced immediately.
func TestChaosBackpressureRetry(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			http.Error(w, `{"error":"shed","status":429}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"cached": true})
	}))
	t.Cleanup(srv.Close)
	cs := &chaosState{}
	client := &http.Client{Timeout: 5 * time.Second}
	cached, _, err := postCompileChaos(context.Background(), client, srv.URL, []byte(`{"model":"h2"}`), cs)
	if err != nil || !cached {
		t.Fatalf("chaos retry: cached=%v err=%v", cached, err)
	}
	if got := cs.retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad","status":400}`, http.StatusBadRequest)
	}))
	t.Cleanup(bad.Close)
	before := cs.retries.Load()
	if _, _, err := postCompileChaos(context.Background(), client, bad.URL, []byte(`{}`), cs); err == nil {
		t.Fatal("400 retried as backpressure")
	}
	if cs.retries.Load() != before {
		t.Fatal("non-backpressure error consumed a retry")
	}
}
