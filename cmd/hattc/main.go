// Command hattc is the HATT compiler CLI: it builds a benchmark fermionic
// Hamiltonian, compiles a fermion-to-qubit mapping with the selected
// method, and reports the Majorana strings, Pauli weight, and simulation
// circuit metrics.
//
// Usage examples:
//
//	hattc -model h2 -mapping hatt -strings
//	hattc -model hubbard:3x3 -mapping jw
//	hattc -model neutrino:4x2 -mapping btt
//	hattc -model molecule:12 -mapping hatt -compare
//	hattc -model hubbard:2x2 -mapping fh -fh-budget 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/taper"
)

func main() {
	model := flag.String("model", "h2", "h2 | molecule:<modes> | hubbard:<R>x<C> | neutrino:<N>x<F>")
	input := flag.String("input", "", "read the fermionic Hamiltonian from a JSON file instead of -model")
	method := flag.String("mapping", "hatt", "jw | bk | btt | parity | hatt | hatt-unopt | beam:<width> | fh | anneal")
	showStrings := flag.Bool("strings", false, "print the Majorana Pauli strings")
	compare := flag.Bool("compare", false, "compare all mappings on this model")
	fhBudget := flag.Int64("fh-budget", 2_000_000, "exhaustive search visit budget for -mapping fh")
	trotter := flag.Int("trotter", 1, "Trotter steps for the compiled circuit")
	qasmOut := flag.String("qasm", "", "write the compiled circuit as OpenQASM 2.0 to this file ('-' for stdout)")
	doTaper := flag.Bool("taper", false, "additionally report the Z2-tapered Hamiltonian (small systems only)")
	flag.Parse()

	var h *fermion.Hamiltonian
	var err error
	if *input != "" {
		f, ferr := os.Open(*input)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "hattc:", ferr)
			os.Exit(1)
		}
		h, err = fermion.ReadJSON(f)
		f.Close()
		*model = *input
	} else {
		h, err = buildModel(*model)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hattc:", err)
		os.Exit(1)
	}
	mh := h.Majorana(1e-12)
	fmt.Printf("model %s: %d modes, %d second-quantized terms, %d Majorana monomials\n",
		*model, h.Modes, h.NumTerms(), len(mh.Terms))

	if *compare {
		for _, name := range []string{"jw", "bk", "parity", "btt", "hatt-unopt", "hatt"} {
			m, err := buildMapping(name, h.Modes, mh, *fhBudget)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hattc:", err)
				os.Exit(1)
			}
			report(m, mh, *trotter, false, "")
		}
		return
	}
	m, err := buildMapping(*method, h.Modes, mh, *fhBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hattc:", err)
		os.Exit(1)
	}
	report(m, mh, *trotter, *showStrings, *qasmOut)
	if *doTaper {
		if m.Qubits() > 12 {
			fmt.Fprintln(os.Stderr, "hattc: -taper limited to ≤ 12 qubits (needs the dense eigensolver)")
			os.Exit(1)
		}
		hq := m.Apply(mh)
		res, e, err := taper.GroundSector(hq, linalg.GroundEnergy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hattc: tapering failed:", err)
			os.Exit(1)
		}
		cc := circuit.Compile(res.Reduced, circuit.OrderLexicographic)
		fmt.Printf("tapered     qubits=%d  pauli-weight=%-8d cnot=%-8d depth=%-8d E0=%.6f (%d symmetries)\n",
			res.Reduced.N(), res.Reduced.Weight(), cc.CNOTCount(), cc.Depth(), e, len(res.Symmetries))
	}
}

func buildModel(spec string) (*fermion.Hamiltonian, error) {
	switch {
	case spec == "h2":
		return models.H2STO3G(), nil
	case strings.HasPrefix(spec, "molecule:"):
		modes, err := strconv.Atoi(spec[len("molecule:"):])
		if err != nil || modes < 2 || modes%2 != 0 {
			return nil, fmt.Errorf("bad molecule spec %q (want molecule:<even modes>)", spec)
		}
		return models.SyntheticMolecule("synthetic", modes, 100+int64(modes), 0.4), nil
	case strings.HasPrefix(spec, "hubbard:"):
		r, c, err := parsePair(spec[len("hubbard:"):])
		if err != nil {
			return nil, fmt.Errorf("bad hubbard spec %q: %v", spec, err)
		}
		return models.FermiHubbard(r, c, 1.0, 4.0), nil
	case strings.HasPrefix(spec, "neutrino:"):
		n, f, err := parsePair(spec[len("neutrino:"):])
		if err != nil {
			return nil, fmt.Errorf("bad neutrino spec %q: %v", spec, err)
		}
		return models.NeutrinoOscillation(n, f, 1.0), nil
	}
	return nil, fmt.Errorf("unknown model %q", spec)
}

func parsePair(s string) (int, int, error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want <A>x<B>")
	}
	a, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func buildMapping(name string, n int, mh *fermion.MajoranaHamiltonian, fhBudget int64) (*mapping.Mapping, error) {
	switch name {
	case "jw":
		return mapping.JordanWigner(n), nil
	case "bk":
		return mapping.BravyiKitaev(n), nil
	case "btt":
		return mapping.BalancedTernaryTree(n), nil
	case "parity":
		return mapping.Parity(n), nil
	case "hatt":
		return core.Build(mh).Mapping, nil
	case "hatt-unopt":
		return core.BuildUnopt(mh).Mapping, nil
	case "fh":
		res := core.Exhaustive(mh, fhBudget)
		if !res.Optimal {
			fmt.Println("note: FH search hit its visit budget; result is approximate (*)")
		}
		return res.Mapping, nil
	case "anneal":
		return core.Anneal(mh, core.AnnealOptions{}).Mapping, nil
	}
	if strings.HasPrefix(name, "beam:") {
		width, err := strconv.Atoi(name[len("beam:"):])
		if err != nil || width < 1 {
			return nil, fmt.Errorf("bad beam width in %q", name)
		}
		return core.BuildBeam(mh, width).Mapping, nil
	}
	return nil, fmt.Errorf("unknown mapping %q", name)
}

func report(m *mapping.Mapping, mh *fermion.MajoranaHamiltonian, trotter int, showStrings bool, qasmOut string) {
	if err := m.VerifyIndependent(); err != nil {
		fmt.Fprintln(os.Stderr, "hattc: mapping failed verification:", err)
		os.Exit(1)
	}
	hq := m.Apply(mh)
	cc := circuit.Optimize(circuit.SynthesizeTrotter(hq, 1.0, trotter, circuit.OrderLexicographic))
	fmt.Printf("%-11s qubits=%d  pauli-weight=%-8d terms=%-7d cnot=%-8d u3=%-8d depth=%-8d vacuum=%v\n",
		m.Name, m.Qubits(), hq.Weight(), hq.NonIdentityTerms(),
		cc.CNOTCount(), cc.SingleCount(), cc.Depth(), m.VacuumPreserved())
	if showStrings {
		for j, s := range m.Majoranas {
			fmt.Printf("  M%-3d = %s\n", j, s)
		}
	}
	if qasmOut != "" {
		var w *os.File
		if qasmOut == "-" {
			w = os.Stdout
		} else {
			f, err := os.Create(qasmOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hattc:", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := cc.WriteQASM(w); err != nil {
			fmt.Fprintln(os.Stderr, "hattc:", err)
			os.Exit(1)
		}
	}
}
