// Command hattc is the HATT compiler CLI: it builds a benchmark fermionic
// Hamiltonian, compiles a fermion-to-qubit mapping with the selected
// method, and reports the Majorana strings, Pauli weight, and simulation
// circuit metrics. It is a thin shell over pkg/compiler — every method it
// accepts is whatever the compiler registry exposes.
//
// Usage examples:
//
//	hattc -model h2 -mapping hatt -strings
//	hattc -model hubbard:3x3 -mapping jw
//	hattc -model neutrino:4x2 -mapping btt
//	hattc -model molecule:12 -mapping hatt -compare
//	hattc -model hubbard:2x2 -mapping fh -fh-budget 2000000
//	hattc -model hubbard:3x3 -mapping anneal -timeout 5s -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fermion"
	"repro/internal/models"
	"repro/internal/prof"
	"repro/internal/store"
	"repro/internal/version"
	"repro/pkg/compiler"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hattc:", err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "h2", "model spec: "+models.SpecHelp)
	input := flag.String("input", "", "read the fermionic Hamiltonian from a JSON file instead of -model")
	method := flag.String("mapping", "hatt", "mapping method spec: "+strings.Join(compiler.Methods(), " | ")+" (beam:<width>, fh:<budget>)")
	showStrings := flag.Bool("strings", false, "print the Majorana Pauli strings")
	compare := flag.Bool("compare", false, "compare all mappings on this model")
	fhBudget := flag.Int64("fh-budget", 2_000_000, "exhaustive search visit budget for -mapping fh")
	trotter := flag.Int("trotter", 1, "Trotter steps for the compiled circuit")
	order := flag.String("order", "lex", "Trotter term order: natural | lex | greedy")
	qasmOut := flag.String("qasm", "", "write the compiled circuit as OpenQASM 2.0 to this file ('-' for stdout)")
	doTaper := flag.Bool("taper", false, "additionally report the Z2-tapered Hamiltonian (small systems only)")
	timeout := flag.Duration("timeout", 0, "abort compilation after this long (0 = no limit)")
	progress := flag.Bool("progress", false, "print search progress to stderr")
	list := flag.Bool("list", false, "list the registered mapping methods (and the service/store options) and exit")
	storeDir := flag.String("store-dir", "", "reuse compiled mappings from this content-addressed store directory (shared with hattd -store-dir)")
	storeCap := flag.Int("store-cap", store.DefaultCapacity, "in-memory entries for -store-dir's LRU tier")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("hattc"))
		return nil
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()

	if *list {
		fmt.Println("methods:")
		for _, name := range compiler.Methods() {
			fmt.Println(" ", name)
		}
		fmt.Println("store/service options:")
		fmt.Println("  -store-dir <dir>   content-addressed mapping reuse across runs (keyed by")
		fmt.Println("                     Hamiltonian fingerprint, method spec, and options digest;")
		fmt.Println("                     shared with a hattd -store-dir pointing at the same path)")
		fmt.Println("  -store-cap <n>     LRU capacity of the store's in-memory tier")
		fmt.Println("  (hattd adds: -addr, -workers, -queue, -max-modes, -timeout, -drain-timeout)")
		return nil
	}

	var opts []compiler.Option
	if *storeDir != "" {
		st, err := store.Open(*storeCap, *storeDir)
		if err != nil {
			return err
		}
		opts = append(opts, compiler.WithStore(st))
	}

	ord, err := parseOrderOption(*order)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts = append(opts,
		compiler.WithVisitBudget(*fhBudget),
		compiler.WithTrotterSteps(*trotter),
		ord,
	)
	if *progress {
		opts = append(opts, compiler.WithProgress(func(ev compiler.ProgressEvent) {
			if ev.Stage == compiler.StageSearch {
				fmt.Fprintf(os.Stderr, "hattc: %s %d/%d best=%d\n", ev.Method, ev.Step, ev.Total, ev.BestWeight)
			}
		}))
	}

	pipe := compiler.Pipeline{Model: *model, Taper: *doTaper, Options: opts}
	if *input != "" {
		h, err := readInput(*input)
		if err != nil {
			return err
		}
		pipe.Model = *input
		pipe.Hamiltonian = h
	}

	if *compare {
		for i, spec := range []string{"jw", "bk", "parity", "btt", "hatt-unopt", "hatt"} {
			p := pipe
			p.Method = spec
			p.Taper = false
			rep, err := p.Run(ctx)
			if err != nil {
				return err
			}
			if i == 0 {
				fmt.Printf("model %s: %d modes, %d second-quantized terms, %d Majorana monomials\n",
					rep.Model, rep.Modes, rep.FermionTerms, rep.MajoranaTerms)
			}
			if err := report(rep, false, ""); err != nil {
				return err
			}
		}
		return nil
	}

	pipe.Method = *method
	rep, err := pipe.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("model %s: %d modes, %d second-quantized terms, %d Majorana monomials\n",
		rep.Model, rep.Modes, rep.FermionTerms, rep.MajoranaTerms)
	if rep.Result.Method == "fh" && !rep.Result.Optimal {
		fmt.Println("note: FH search hit its visit budget; result is approximate (*)")
	}
	return report(rep, *showStrings, *qasmOut)
}

func readInput(path string) (*fermion.Hamiltonian, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fermion.ReadJSON(f)
}

func parseOrderOption(spec string) (compiler.Option, error) {
	ord, err := compiler.ParseTermOrder(spec)
	if err != nil {
		return nil, err
	}
	return compiler.WithTermOrder(ord), nil
}

func report(rep *compiler.Report, showStrings bool, qasmOut string) error {
	m := rep.Result.Mapping
	fmt.Printf("%-11s qubits=%d  pauli-weight=%-8d terms=%-7d cnot=%-8d u3=%-8d depth=%-8d vacuum=%v\n",
		m.Name, m.Qubits(), rep.Weight, rep.Terms,
		rep.CNOTs, rep.Singles, rep.Depth, rep.VacuumPreserved)
	if showStrings {
		for j, s := range m.Majoranas {
			fmt.Printf("  M%-3d = %s\n", j, s)
		}
	}
	if t := rep.Tapered; t != nil {
		fmt.Printf("tapered     qubits=%d  pauli-weight=%-8d cnot=%-8d depth=%-8d E0=%.6f (%d symmetries)\n",
			t.Qubits, t.Weight, t.CNOTs, t.Depth, t.GroundEnergy, t.Symmetries)
	}
	if qasmOut != "" {
		w := os.Stdout
		if qasmOut != "-" {
			f, err := os.Create(qasmOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := rep.Circuit.WriteQASM(w); err != nil {
			return err
		}
	}
	return nil
}
