// Command hattc is the HATT compiler CLI: it builds a benchmark fermionic
// Hamiltonian, compiles a fermion-to-qubit mapping with the selected
// method, and reports the Majorana strings, Pauli weight, and simulation
// circuit metrics. It is a thin shell over pkg/compiler — every method it
// accepts is whatever the compiler registry exposes.
//
// Usage examples:
//
//	hattc -model h2 -mapping hatt -strings
//	hattc -model hubbard:3x3 -mapping jw
//	hattc -model neutrino:4x2 -mapping btt
//	hattc -model molecule:12 -mapping hatt -compare
//	hattc -model hubbard:2x2 -mapping fh -fh-budget 2000000
//	hattc -model hubbard:3x3 -mapping anneal -timeout 5s -progress
//	hattc -m h2 -method hatt -device montreal
//	hattc -m h2 -device-file ring6.json -qasm routed.qasm
//	hattc -model molecule:14 -method portfolio:hatt+beam:8+anneal
//	hattc -watch job-000001 -daemon http://127.0.0.1:7707
//
// -m and -method are short aliases for -model and -mapping. A -device
// (catalog spec) or -device-file (custom JSON edge list) additionally
// routes the synthesized circuit onto that coupling graph and reports
// the routed metrics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/fermion"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/store"
	"repro/internal/version"
	"repro/pkg/compiler"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hattc:", err)
		os.Exit(1)
	}
}

func run() error {
	model := flag.String("model", "h2", "model spec: "+models.SpecHelp)
	flag.StringVar(model, "m", "h2", "short for -model")
	input := flag.String("input", "", "read the fermionic Hamiltonian from a JSON file instead of -model")
	method := flag.String("mapping", "hatt", "mapping method spec: "+strings.Join(compiler.Methods(), " | ")+" (beam:<width>, fh:<budget>)")
	flag.StringVar(method, "method", "hatt", "short for -mapping")
	device := flag.String("device", "", "route onto this catalog device: manhattan | sycamore | montreal | linear:<n> | grid:<r>x<c>")
	deviceFile := flag.String("device-file", "", "route onto a custom device loaded from this JSON edge-list file")
	showStrings := flag.Bool("strings", false, "print the Majorana Pauli strings")
	compare := flag.Bool("compare", false, "compare all mappings on this model")
	fhBudget := flag.Int64("fh-budget", 2_000_000, "exhaustive search visit budget for -mapping fh")
	trotter := flag.Int("trotter", 1, "Trotter steps for the compiled circuit")
	order := flag.String("order", "lex", "Trotter term order: natural | lex | greedy")
	qasmOut := flag.String("qasm", "", "write the compiled circuit as OpenQASM 2.0 to this file ('-' for stdout); with a device set this is the routed circuit")
	doTaper := flag.Bool("taper", false, "additionally report the Z2-tapered Hamiltonian (small systems only)")
	timeout := flag.Duration("timeout", 0, "abort compilation after this long (0 = no limit)")
	progress := flag.Bool("progress", false, "print search progress to stderr")
	list := flag.Bool("list", false, "list the registered mapping methods (and the service/store options) and exit")
	watch := flag.String("watch", "", "watch a daemon job: poll its status and print best-so-far weight/method lines as they improve")
	daemon := flag.String("daemon", "http://127.0.0.1:7707", "base URL of the hattd daemon -watch polls")
	storeDir := flag.String("store-dir", "", "reuse compiled mappings from this content-addressed store directory (shared with hattd -store-dir)")
	storeCap := flag.Int("store-cap", store.DefaultCapacity, "in-memory entries for -store-dir's LRU tier")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	logLevel := flag.String("log-level", "warn", "structured log level: debug | info | warn | error")
	logFormat := flag.String("log-format", "text", "structured log format: json | text")
	showVersion := flag.Bool("version", false, "print the version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(version.String("hattc"))
		return nil
	}
	// A CLI defaults to quiet, human-readable logs on stderr; -log-level
	// debug surfaces store/fault events during local debugging.
	if _, err := obs.InitLogger(os.Stderr, *logLevel, *logFormat); err != nil {
		return err
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()

	if *list {
		fmt.Println("methods:")
		for _, mi := range compiler.MethodTable() {
			spec := mi.Spec
			if mi.Param != "" {
				spec += ", " + mi.Param
			}
			fmt.Printf("  %-22s %s\n", spec, mi.Description)
		}
		fmt.Println("devices (-device):")
		for _, in := range arch.Catalog() {
			if in.Qubits > 0 {
				fmt.Printf("  %-14s %s (%d qubits, %d couplers)\n", in.Spec, in.Description, in.Qubits, in.Couplers)
			} else {
				fmt.Printf("  %-14s %s\n", in.Spec, in.Description)
			}
		}
		fmt.Println("store/service options:")
		fmt.Println("  -store-dir <dir>   content-addressed mapping reuse across runs (keyed by")
		fmt.Println("                     Hamiltonian fingerprint, method spec, and options digest;")
		fmt.Println("                     shared with a hattd -store-dir pointing at the same path)")
		fmt.Println("  -store-cap <n>     LRU capacity of the store's in-memory tier")
		fmt.Println("  (hattd adds: -addr, -workers, -queue, -max-modes, -timeout, -drain-timeout)")
		return nil
	}

	if *watch != "" {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		return watchJob(ctx, *daemon, *watch)
	}

	var opts []compiler.Option
	if *storeDir != "" {
		st, err := store.Open(*storeCap, *storeDir)
		if err != nil {
			return err
		}
		opts = append(opts, compiler.WithStore(st))
	}
	switch {
	case *device != "" && *deviceFile != "":
		return fmt.Errorf("-device and -device-file are mutually exclusive")
	case *device != "":
		// Validate eagerly for a prompt CLI error; the spec itself is what
		// flows into the options (and the store content address).
		if _, err := arch.Lookup(*device); err != nil {
			return err
		}
		opts = append(opts, compiler.WithDevice(*device))
	case *deviceFile != "":
		d, err := arch.LoadDeviceFile(*deviceFile)
		if err != nil {
			return err
		}
		opts = append(opts, compiler.WithDeviceSpec(d))
	}

	ord, err := parseOrderOption(*order)
	if err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts = append(opts,
		compiler.WithVisitBudget(*fhBudget),
		compiler.WithTrotterSteps(*trotter),
		ord,
	)
	if *progress {
		opts = append(opts, compiler.WithProgress(func(ev compiler.ProgressEvent) {
			if ev.Stage == compiler.StageSearch {
				fmt.Fprintf(os.Stderr, "hattc: %s %d/%d best=%d\n", ev.Method, ev.Step, ev.Total, ev.BestWeight)
			}
		}))
	}

	pipe := compiler.Pipeline{Model: *model, Taper: *doTaper, Options: opts}
	if *input != "" {
		h, err := readInput(*input)
		if err != nil {
			return err
		}
		pipe.Model = *input
		pipe.Hamiltonian = h
	}

	if *compare {
		for i, spec := range []string{"jw", "bk", "parity", "btt", "hatt-unopt", "hatt"} {
			p := pipe
			p.Method = spec
			p.Taper = false
			rep, err := p.Run(ctx)
			if err != nil {
				return err
			}
			if i == 0 {
				fmt.Printf("model %s: %d modes, %d second-quantized terms, %d Majorana monomials\n",
					rep.Model, rep.Modes, rep.FermionTerms, rep.MajoranaTerms)
			}
			if err := report(rep, false, ""); err != nil {
				return err
			}
		}
		return nil
	}

	pipe.Method = *method
	rep, err := pipe.Run(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("model %s: %d modes, %d second-quantized terms, %d Majorana monomials\n",
		rep.Model, rep.Modes, rep.FermionTerms, rep.MajoranaTerms)
	if rep.Result.Method == "fh" && !rep.Result.Optimal {
		fmt.Println("note: FH search hit its visit budget; result is approximate (*)")
	}
	return report(rep, *showStrings, *qasmOut)
}

// watchStatus is the slice of the job-status payload -watch reads: the
// lifecycle fields plus the anytime partial block.
type watchStatus struct {
	State   string `json:"state"`
	Error   string `json:"error"`
	Partial *struct {
		Method      string `json:"method"`
		PauliWeight int    `json:"pauli_weight"`
	} `json:"partial"`
	Result *struct {
		Method      string `json:"method"`
		PauliWeight int    `json:"pauli_weight"`
		Qubits      int    `json:"qubits"`
	} `json:"result"`
}

// watchJob polls one daemon job with include_partial until it reaches a
// terminal state, printing a line each time the validated best-so-far
// improves. The weights it prints can only go down — the daemon's
// partial is monotone — so the output reads as the anytime trajectory
// of the search.
func watchJob(ctx context.Context, base, id string) error {
	url := strings.TrimRight(base, "/") + "/v1/jobs/" + id + "?include_partial=true"
	best := 0
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		st, err := fetchStatus(ctx, url)
		if err != nil {
			return err
		}
		if p := st.Partial; p != nil && (best == 0 || p.PauliWeight < best) {
			best = p.PauliWeight
			fmt.Printf("hattc: job %s best=%d method=%s\n", id, p.PauliWeight, p.Method)
		}
		switch st.State {
		case "done":
			if st.Result == nil {
				return fmt.Errorf("job %s done without a result", id)
			}
			fmt.Printf("hattc: job %s done weight=%d qubits=%d method=%s\n",
				id, st.Result.PauliWeight, st.Result.Qubits, st.Result.Method)
			return nil
		case "failed":
			return fmt.Errorf("job %s failed: %s", id, st.Error)
		case "canceled":
			fmt.Printf("hattc: job %s canceled\n", id)
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func fetchStatus(ctx context.Context, url string) (*watchStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("daemon answered %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var st watchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func readInput(path string) (*fermion.Hamiltonian, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return fermion.ReadJSON(f)
}

func parseOrderOption(spec string) (compiler.Option, error) {
	ord, err := compiler.ParseTermOrder(spec)
	if err != nil {
		return nil, err
	}
	return compiler.WithTermOrder(ord), nil
}

func report(rep *compiler.Report, showStrings bool, qasmOut string) error {
	m := rep.Result.Mapping
	fmt.Printf("%-11s qubits=%d  pauli-weight=%-8d terms=%-7d cnot=%-8d u3=%-8d depth=%-8d vacuum=%v\n",
		m.Name, m.Qubits(), rep.Weight, rep.Terms,
		rep.CNOTs, rep.Singles, rep.Depth, rep.VacuumPreserved)
	if showStrings {
		for j, s := range m.Majoranas {
			fmt.Printf("  M%-3d = %s\n", j, s)
		}
	}
	if r := rep.Routed; r != nil {
		fmt.Printf("routed      device=%s (%d qubits)  swaps=%-6d cnot=%-8d u3=%-8d depth=%-8d cached=%v\n",
			r.Device, r.PhysQubits, r.SwapsAdded, r.CNOTs, r.Singles, r.Depth, rep.Result.Cached)
	}
	if t := rep.Tapered; t != nil {
		fmt.Printf("tapered     qubits=%d  pauli-weight=%-8d cnot=%-8d depth=%-8d E0=%.6f (%d symmetries)\n",
			t.Qubits, t.Weight, t.CNOTs, t.Depth, t.GroundEnergy, t.Symmetries)
	}
	if qasmOut != "" {
		w := os.Stdout
		if qasmOut != "-" {
			f, err := os.Create(qasmOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		cc := rep.Circuit
		if rep.Routed != nil {
			cc = rep.Routed.Circuit
		}
		if err := cc.WriteQASM(w); err != nil {
			return err
		}
	}
	return nil
}
