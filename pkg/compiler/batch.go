package compiler

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fermion"
	"repro/internal/models"
	"repro/internal/parallel"
)

// BatchItem is one compilation request in a CompileBatch call. Either
// Model (a spec for models.Resolve, e.g. "hubbard:2x3") or Hamiltonian
// must be set; Hamiltonian wins when both are. An empty Spec compiles
// with "hatt".
type BatchItem struct {
	Spec        string
	Model       string
	Hamiltonian *fermion.MajoranaHamiltonian
}

// BatchResult is the outcome of one BatchItem. Exactly one of Result and
// Err is non-nil.
type BatchResult struct {
	Index  int // position of the item in the batch
	Item   BatchItem
	Result *Result
	Err    error
}

// CompileBatch compiles every item concurrently — the serving primitive
// for multi-tenant traffic — and returns the results in input order.
// Options.Parallelism bounds how many items are in flight at once; each
// item itself compiles single-threaded, so a batch never oversubscribes
// the host. Failures are per-item: one bad spec or cancelled search
// lands in that item's Err and the rest of the batch completes (after
// ctx is cancelled, remaining items fail fast with ctx.Err()).
//
// Identical items deduplicate work naturally: the hatt construction is
// memoized in internal/core, so a batch of requests naming the same
// model pays for one search.
//
// A WithProgress callback is invoked from whichever worker is compiling;
// with a batch in flight that means concurrently — wrap the callback in
// a lock if it touches shared state.
func CompileBatch(ctx context.Context, items []BatchItem, opts ...Option) []BatchResult {
	out := make([]BatchResult, len(items))
	for br := range CompileBatchStream(ctx, items, opts...) {
		out[br.Index] = br
	}
	return out
}

// CompileBatchStream is CompileBatch with streaming delivery: results are
// sent in completion order as they finish, and the channel is closed once
// every item has been reported. The channel is buffered to the batch
// size, so the consumer can never stall the workers.
func CompileBatchStream(ctx context.Context, items []BatchItem, opts ...Option) <-chan BatchResult {
	o := NewOptions(opts...)
	// The batch fans out across items; each item compiles sequentially.
	item := o
	item.Parallelism = 1
	ch := make(chan BatchResult, len(items))
	go func() {
		defer close(ch)
		// The pool itself runs uncancelled so that every item emits a
		// result; cancellation is consulted per item inside the task.
		_ = parallel.ForEach(context.WithoutCancel(ctx), len(items), o.Parallelism, func(i int) error {
			ch <- compileBatchItem(ctx, i, items[i], item)
			return nil
		})
	}()
	return ch
}

func compileBatchItem(ctx context.Context, i int, it BatchItem, o Options) (br BatchResult) {
	br = BatchResult{Index: i, Item: it}
	// Failures stay per-item, panics included: a panic escaping one item
	// (e.g. from model construction, which runs outside the method
	// boundary's recover) must not take down the rest of the batch.
	defer func() {
		if r := recover(); r != nil {
			br.Result, br.Err = nil, fmt.Errorf("compiler: batch item %d panicked: %v", i, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		br.Err = err
		return br
	}
	mh := it.Hamiltonian
	if mh == nil {
		if it.Model == "" {
			br.Err = errors.New("compiler: batch item needs a Model spec or a Hamiltonian")
			return br
		}
		h, err := models.Resolve(it.Model)
		if err != nil {
			br.Err = err
			return br
		}
		mh = h.Majorana(1e-12)
	}
	spec := it.Spec
	if spec == "" {
		spec = "hatt"
	}
	br.Result, br.Err = compileWith(ctx, spec, mh, o)
	return br
}

// PipelineResult is the outcome of one Pipeline in a PipelineBatch call.
type PipelineResult struct {
	Index  int
	Report *Report
	Err    error
}

// PipelineBatch runs full compilation pipelines (model → mapping →
// synthesis → metrics) concurrently and returns the reports in input
// order. The shared opts are applied before each pipeline's own Options,
// so per-pipeline settings win; Options.Parallelism sets the batch
// width, with each pipeline forced single-threaded (override inside a
// pipeline's own Options to change that). Failures are per-pipeline.
func PipelineBatch(ctx context.Context, pipes []Pipeline, opts ...Option) []PipelineResult {
	o := NewOptions(opts...)
	out := make([]PipelineResult, len(pipes))
	// The pool runs uncancelled so every pipeline reports a result;
	// cancellation is consulted per item inside runPipelineItem.
	_ = parallel.ForEach(context.WithoutCancel(ctx), len(pipes), o.Parallelism, func(i int) error {
		out[i] = runPipelineItem(ctx, i, pipes[i], opts)
		return nil
	})
	return out
}

func runPipelineItem(ctx context.Context, i int, p Pipeline, opts []Option) (pr PipelineResult) {
	pr = PipelineResult{Index: i}
	// Per-pipeline failure isolation, panics included: Pipeline.Run
	// stages beyond the method boundary (mapping application, synthesis)
	// have no recover of their own.
	defer func() {
		if r := recover(); r != nil {
			pr.Report, pr.Err = nil, fmt.Errorf("compiler: pipeline %d panicked: %v", i, r)
		}
	}()
	if err := ctx.Err(); err != nil {
		pr.Err = err
		return pr
	}
	shared := make([]Option, 0, len(opts)+1+len(p.Options))
	shared = append(shared, opts...)
	shared = append(shared, func(po *Options) { po.Parallelism = 1 })
	p.Options = append(shared, p.Options...)
	pr.Report, pr.Err = p.Run(ctx)
	return pr
}
