package compiler

import (
	"context"
	"testing"

	"repro/internal/models"
	"repro/internal/store"
)

func TestOptionsDigestSemantics(t *testing.T) {
	base := NewOptions()
	if base.Digest() != NewOptions().Digest() {
		t.Fatal("default digests differ")
	}
	// Result-invariant knobs must not perturb the digest.
	for name, o := range map[string]Options{
		"parallelism": NewOptions(WithParallelism(7)),
		"progress":    NewOptions(WithProgress(func(ProgressEvent) {})),
		"trotter":     NewOptions(WithTrotterSteps(5), WithTrotterTime(2.5)),
	} {
		if o.Digest() != base.Digest() {
			t.Fatalf("%s changed the digest: %s vs %s", name, o.Digest(), base.Digest())
		}
	}
	// Result-affecting knobs must.
	for name, o := range map[string]Options{
		"beam width": NewOptions(WithBeamWidth(9)),
		"budget":     NewOptions(WithVisitBudget(123)),
		"anneal":     NewOptions(WithAnnealSchedule(10, 1.5, 0.1)),
		"tiebreak":   NewOptions(WithTieBreak(TieDepth)),
		"seed":       NewOptions(WithSeed(42)),
		"restarts":   NewOptions(WithAnnealRestarts(3)),
	} {
		if o.Digest() == base.Digest() {
			t.Fatalf("%s did not change the digest", name)
		}
	}
}

func TestCompileConsultsStore(t *testing.T) {
	s, err := store.Open(16, "")
	if err != nil {
		t.Fatal(err)
	}
	h, err := models.Resolve("hubbard:2x2")
	if err != nil {
		t.Fatal(err)
	}
	mh := h.Majorana(1e-12)
	ctx := context.Background()

	r1, err := Compile(ctx, "hatt", mh, WithStore(s))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first compile reported Cached")
	}
	if r1.Tree == nil {
		t.Fatal("fresh hatt compile should carry its tree")
	}

	r2, err := Compile(ctx, "hatt", mh, WithStore(s))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second compile not served from the store")
	}
	if r2.Tree != nil {
		t.Fatal("cached result should not carry a tree")
	}
	for j := range r1.Mapping.Majoranas {
		if !r1.Mapping.Majoranas[j].Equal(r2.Mapping.Majoranas[j]) {
			t.Fatalf("M%d differs between fresh and cached results", j)
		}
	}
	if r2.PredictedWeight != r1.PredictedWeight || r2.Method != r1.Method {
		t.Fatalf("cached scalars differ: %+v vs %+v", r2, r1)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}

	// A different method spec is a different content address.
	r3, err := Compile(ctx, "jw", mh, WithStore(s))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Fatal("jw shared hatt's cache entry")
	}
	// So is a result-affecting option change on the same spec.
	r4, err := Compile(ctx, "anneal", mh, WithStore(s), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cached {
		t.Fatal("anneal seed=1 hit an unpopulated entry")
	}
	r5, err := Compile(ctx, "anneal", mh, WithStore(s), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if r5.Cached {
		t.Fatal("anneal seed=2 incorrectly shared seed=1's entry")
	}
}

func TestCompileBatchConsultsStore(t *testing.T) {
	s, err := store.Open(16, "")
	if err != nil {
		t.Fatal(err)
	}
	items := []BatchItem{
		{Model: "hubbard:2x2", Spec: "jw"},
		{Model: "hubbard:2x2", Spec: "bk"},
	}
	for _, br := range CompileBatch(context.Background(), items, WithStore(s)) {
		if br.Err != nil {
			t.Fatalf("item %d: %v", br.Index, br.Err)
		}
		if br.Result.Cached {
			t.Fatalf("item %d cached on a cold store", br.Index)
		}
	}
	for _, br := range CompileBatch(context.Background(), items, WithStore(s)) {
		if br.Err != nil {
			t.Fatalf("item %d: %v", br.Index, br.Err)
		}
		if !br.Result.Cached {
			t.Fatalf("item %d not served from the store on the second batch", br.Index)
		}
	}
}
