package compiler

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/circuit"
	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/pauli"
	"repro/internal/taper"
)

// MaxTaperQubits bounds the tapering stage: the ground-sector sweep needs
// the dense eigensolver, which is only feasible on small systems.
const MaxTaperQubits = 12

// Pipeline runs the full compilation chain — model construction, Majorana
// expansion, mapping, circuit synthesis, metrics, and optional Z₂
// tapering — in one call:
//
//	rep, err := compiler.Pipeline{Model: "hubbard:2x3", Method: "hatt"}.Run(ctx)
//
// Either Model (a spec for models.Resolve) or Hamiltonian must be set;
// Hamiltonian wins when both are. Method defaults to "hatt".
type Pipeline struct {
	Model       string               // model spec, e.g. "h2", "hubbard:3x3"
	Hamiltonian *fermion.Hamiltonian // pre-built system, overrides Model
	Method      string               // mapping method spec, e.g. "beam:8"
	Taper       bool                 // additionally taper (≤ MaxTaperQubits)
	Options     []Option
}

// TaperReport summarizes the optional tapering stage.
type TaperReport struct {
	Qubits       int
	Weight       int
	CNOTs        int
	Depth        int
	GroundEnergy float64
	Symmetries   int
}

// Report is the outcome of one Pipeline run.
type Report struct {
	Model         string
	Modes         int
	FermionTerms  int
	MajoranaTerms int

	Result  *Result            // the compiled mapping
	Qubit   *pauli.Hamiltonian // the mapped qubit Hamiltonian
	Circuit *circuit.Circuit   // the synthesized, peephole-optimized circuit

	Weight          int // Pauli weight of the qubit Hamiltonian
	Terms           int // its non-identity term count
	CNOTs           int
	Singles         int
	Depth           int
	VacuumPreserved bool

	// Routed mirrors Result.Routed: the hardware-mapped circuit and its
	// metrics when the options target a device, nil otherwise.
	Routed *Routed

	Tapered *TaperReport // nil unless Taper was requested
	Elapsed time.Duration
}

// Run executes the pipeline. The context bounds every long-running stage:
// the mapping search and the tapering sector sweep.
func (p Pipeline) Run(ctx context.Context) (*Report, error) {
	start := time.Now()
	h := p.Hamiltonian
	name := p.Model
	if h == nil {
		if p.Model == "" {
			return nil, errors.New("compiler: pipeline needs a Model spec or a Hamiltonian")
		}
		var err error
		_, modelSpan := obs.StartSpan(ctx, "model.build")
		modelSpan.SetAttr("model", p.Model)
		h, err = models.Resolve(p.Model)
		modelSpan.End()
		if err != nil {
			return nil, err
		}
	} else if name == "" {
		name = "custom"
	}
	spec := p.Method
	if spec == "" {
		spec = "hatt"
	}

	mh := h.Majorana(1e-12)
	o := NewOptions(p.Options...)
	res, err := compileWith(ctx, spec, mh, o)
	if err != nil {
		return nil, err
	}
	if err := res.Mapping.VerifyIndependent(); err != nil {
		return nil, fmt.Errorf("compiler: mapping failed verification: %w", err)
	}

	// With a device targeted, compileWith already applied the mapping and
	// synthesized the logical circuit on the way to routing — reuse those
	// instead of paying for synthesis twice.
	var hq *pauli.Hamiltonian
	var cc *circuit.Circuit
	if r := res.Routed; r != nil && r.qubitH != nil && r.logical != nil {
		hq, cc = r.qubitH, r.logical
	} else {
		_, synthSpan := obs.StartSpan(ctx, "circuit.synthesis")
		synthSpan.SetAttr("method", res.Method)
		hq = res.Mapping.Apply(mh)
		cc = circuit.Optimize(circuit.SynthesizeTrotter(hq, o.TrotterTime, o.TrotterSteps, o.TermOrder))
		synthSpan.End()
	}
	rep := &Report{
		Model:           name,
		Modes:           h.Modes,
		FermionTerms:    h.NumTerms(),
		MajoranaTerms:   len(mh.Terms),
		Result:          res,
		Qubit:           hq,
		Circuit:         cc,
		Weight:          hq.Weight(),
		Terms:           hq.NonIdentityTerms(),
		CNOTs:           cc.CNOTCount(),
		Singles:         cc.SingleCount(),
		Depth:           cc.Depth(),
		VacuumPreserved: res.Mapping.VacuumPreserved(),
		Routed:          res.Routed,
	}

	if p.Taper {
		if hq.N() > MaxTaperQubits {
			return nil, fmt.Errorf("compiler: tapering limited to ≤ %d qubits (mapping uses %d)", MaxTaperQubits, hq.N())
		}
		tctx, taperSpan := obs.StartSpan(ctx, "taper.ground")
		taperSpan.SetAttr("method", res.Method)
		tres, e, err := taper.GroundSectorCtx(tctx, hq, linalg.GroundEnergy)
		taperSpan.End()
		if err != nil {
			return nil, fmt.Errorf("compiler: tapering failed: %w", err)
		}
		tc := circuit.Compile(tres.Reduced, o.TermOrder)
		rep.Tapered = &TaperReport{
			Qubits:       tres.Reduced.N(),
			Weight:       tres.Reduced.Weight(),
			CNOTs:        tc.CNOTCount(),
			Depth:        tc.Depth(),
			GroundEnergy: e,
			Symmetries:   len(tres.Symmetries),
		}
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
