package compiler

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/models"
)

// TestPreCancelledContext checks that every long-running method refuses a
// context that is already dead.
func TestPreCancelledContext(t *testing.T) {
	mh := testMajorana(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, spec := range []string{"anneal", "fh", "beam:4", "hatt"} {
		res, err := Compile(ctx, spec, mh)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Compile(%q) with cancelled ctx: res=%v err=%v, want context.Canceled", spec, res, err)
		}
	}
}

// cancelPromptly runs a compilation that would take far longer than the
// context deadline and asserts it returns ctx.Err() within the grace
// window rather than running to completion.
func cancelPromptly(t *testing.T, spec string, opts ...Option) {
	t.Helper()
	mh := models.FermiHubbard(2, 3, 1.0, 4.0).Majorana(1e-12)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Compile(ctx, spec, mh, opts...)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Compile(%q): res=%v err=%v, want context.DeadlineExceeded", spec, res, err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("Compile(%q): took %v after cancellation, want prompt return", spec, elapsed)
	}
}

func TestCancelMidAnneal(t *testing.T) {
	// ~10M mutation attempts would run for minutes; the deadline must cut
	// the schedule off within one iteration.
	cancelPromptly(t, "anneal", WithAnnealSchedule(10_000_000, 0, 0))
}

func TestCancelMidExhaustive(t *testing.T) {
	// An unlimited-budget exhaustive search on 12 modes is intractable;
	// the deadline must unwind the recursion within one state expansion.
	cancelPromptly(t, "fh", WithVisitBudget(0))
}

func TestCancelMidBeam(t *testing.T) {
	mh := models.FermiHubbard(3, 4, 1.0, 4.0).Majorana(1e-12)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Compile(ctx, "beam:64", mh)
	elapsed := time.Since(start)
	// A wide beam on 24 modes takes far longer than 20ms; but if this
	// machine somehow finishes in time, a valid result is also correct.
	if err == nil {
		if res.PredictedWeight <= 0 {
			t.Fatal("beam finished but returned a bad result")
		}
		t.Skip("beam finished before the deadline on this machine")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Compile(beam): err=%v, want context.DeadlineExceeded", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("Compile(beam): took %v after cancellation, want prompt return", elapsed)
	}
}
