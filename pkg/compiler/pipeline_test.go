package compiler

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestPipelineH2WithTapering(t *testing.T) {
	rep, err := Pipeline{Model: "h2", Method: "hatt", Taper: true}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Modes != 4 || rep.MajoranaTerms == 0 {
		t.Fatalf("bad model stats: %+v", rep)
	}
	if rep.Weight <= 0 || rep.CNOTs <= 0 || rep.Depth <= 0 {
		t.Fatalf("bad circuit metrics: weight=%d cnot=%d depth=%d", rep.Weight, rep.CNOTs, rep.Depth)
	}
	if !rep.VacuumPreserved {
		t.Error("HATT mapping should preserve the vacuum state")
	}
	if rep.Tapered == nil {
		t.Fatal("no tapering report")
	}
	if rep.Tapered.Qubits >= 4 {
		t.Errorf("tapering removed no qubits: %d", rep.Tapered.Qubits)
	}
	if math.Abs(rep.Tapered.GroundEnergy-(-1.1373)) > 1e-3 {
		t.Errorf("tapered ground energy %.6f, want ≈ -1.1373", rep.Tapered.GroundEnergy)
	}
}

func TestPipelineDefaultsToHATT(t *testing.T) {
	rep, err := Pipeline{Model: "hubbard:2x2"}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Method != "hatt" {
		t.Fatalf("default method = %q, want hatt", rep.Result.Method)
	}
	if rep.Modes != 8 {
		t.Fatalf("hubbard:2x2 modes = %d, want 8", rep.Modes)
	}
}

func TestPipelineErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := (Pipeline{Method: "hatt"}).Run(ctx); err == nil {
		t.Error("no model: expected error")
	}
	if _, err := (Pipeline{Model: "nosuch", Method: "hatt"}).Run(ctx); err == nil {
		t.Error("unknown model: expected error")
	}
	if _, err := (Pipeline{Model: "h2", Method: "nosuch"}).Run(ctx); err == nil {
		t.Error("unknown method: expected error")
	}
	_, err := (Pipeline{Model: "hubbard:3x3", Method: "hatt", Taper: true}).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "tapering limited") {
		t.Errorf("oversized tapering: got %v, want qubit-guard error", err)
	}
}

func TestOptionDefaults(t *testing.T) {
	o := NewOptions()
	if o.BeamWidth != 4 || o.VisitBudget != 2_000_000 || o.TrotterSteps != 1 || o.TrotterTime != 1.0 {
		t.Fatalf("bad defaults: %+v", o)
	}
	o = NewOptions(WithBeamWidth(9), WithVisitBudget(5), WithTrotterSteps(3), WithSeed(42))
	if o.BeamWidth != 9 || o.VisitBudget != 5 || o.TrotterSteps != 3 || o.Seed != 42 {
		t.Fatalf("options not applied: %+v", o)
	}
}

func TestParseTermOrder(t *testing.T) {
	for _, spec := range []string{"natural", "lex", "lexicographic", "greedy", "overlap"} {
		if _, err := ParseTermOrder(spec); err != nil {
			t.Errorf("ParseTermOrder(%q): %v", spec, err)
		}
	}
	if _, err := ParseTermOrder("zigzag"); err == nil {
		t.Error("ParseTermOrder(zigzag): expected error")
	}
}
