package compiler

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/fermion"
	"repro/internal/obs"
	"repro/internal/pauli"
)

// WithDevice targets a catalog device by spec — "manhattan", "sycamore",
// "montreal", "linear:<n>", or "grid:<r>x<c>" — making hardware
// awareness part of the compilation: Compile (and every batch/pipeline
// path over it) synthesizes the Trotter circuit for the mapping, routes
// it onto the device with the tetris-lite pass, and reports the routed
// metrics in Result.Routed. An unknown spec surfaces as an error from
// Compile, not here, so options stay infallible to construct.
func WithDevice(spec string) Option {
	return func(o *Options) { o.DeviceName = spec; o.Device = nil }
}

// WithDeviceSpec targets an explicitly constructed device — typically a
// custom coupling graph loaded from a JSON edge list (arch.DeviceSpec /
// hattc -device-file). It overrides any WithDevice catalog spec.
func WithDeviceSpec(d *arch.Device) Option {
	return func(o *Options) { o.Device = d; o.DeviceName = "" }
}

// deviceDigest is the device component of Options.Digest: the
// canonical catalog spec for named devices, a content fingerprint for
// custom ones, "" when compilation is hardware-oblivious. Routed and
// unrouted compilations of the same problem therefore occupy separate
// store entries. Resolvable specs canonicalize through the device's own
// name, so equivalent spellings ("linear:08", "LINEAR:8") share one
// content address; an unresolvable spec falls back to its normalized
// text — harmless, since compileWith rejects it before any store access.
func (o Options) deviceDigest() string {
	switch {
	case o.Device != nil:
		return "custom:" + o.Device.Fingerprint()
	case o.DeviceName != "":
		if d, err := arch.Lookup(o.DeviceName); err == nil {
			return arch.Normalize(d.Name)
		}
		return arch.Normalize(o.DeviceName)
	}
	return ""
}

// routingDevice resolves the targeted device, or (nil, nil) when none
// is configured.
func (o Options) routingDevice() (*arch.Device, error) {
	if o.Device != nil {
		return o.Device, nil
	}
	if o.DeviceName == "" {
		return nil, nil
	}
	return arch.Lookup(o.DeviceName)
}

// Routed is the hardware-mapped view of a compilation: the synthesized
// Trotter circuit after tetris-lite routing onto a coupling graph. The
// routing pass is deterministic, so for a fixed mapping and synthesis
// options the routed circuit is byte-identical on every run — including
// runs served from a Store, which re-derive it from the cached mapping.
type Routed struct {
	Device      string           // device name, e.g. "Montreal"
	PhysQubits  int              // device size; the routed circuit spans all of it
	SwapsAdded  int              // SWAPs inserted (3 CNOTs each, pre-peephole)
	CNOTs       int              // routed two-qubit gate count
	Singles     int              // routed single-qubit (U3) gate count
	Depth       int              // routed circuit depth
	FinalLayout []int            // logical qubit → physical qubit after routing
	Circuit     *circuit.Circuit // the routed, peephole-optimized circuit

	// The synthesis intermediates, stashed so Pipeline.Run doesn't pay
	// for mapping application and Trotter synthesis a second time.
	qubitH  *pauli.Hamiltonian
	logical *circuit.Circuit
}

// attachRouted synthesizes the mapping's Trotter circuit with the
// options' synthesis knobs and routes it onto dev, filling res.Routed.
// It runs after the cache boundary on hits and misses alike: the store
// persists only mappings, and re-deriving the routed circuit from one
// is deterministic. ctx feeds the tracing seam only — synthesis and
// routing are fast deterministic passes that do not check cancellation.
func attachRouted(ctx context.Context, res *Result, mh *fermion.MajoranaHamiltonian, dev *arch.Device, o Options) error {
	if res.Mapping == nil {
		return fmt.Errorf("compiler: method %s produced no mapping to route", res.Method)
	}
	_, synthSpan := obs.StartSpan(ctx, "circuit.synthesis")
	synthSpan.SetAttr("method", res.Method)
	hq := res.Mapping.Apply(mh)
	logical := circuit.Optimize(circuit.SynthesizeTrotter(hq, o.TrotterTime, o.TrotterSteps, o.TermOrder))
	synthSpan.End()
	_, routeSpan := obs.StartSpan(ctx, "circuit.route")
	routeSpan.SetAttr("method", res.Method)
	routeSpan.SetAttr("device", dev.Name)
	rr, err := arch.Route(logical, dev)
	routeSpan.End()
	if err != nil {
		return fmt.Errorf("compiler: routing onto %s: %w", dev.Name, err)
	}
	res.Routed = &Routed{
		Device:      dev.Name,
		PhysQubits:  dev.N,
		SwapsAdded:  rr.SwapsAdded,
		CNOTs:       rr.Circuit.CNOTCount(),
		Singles:     rr.Circuit.SingleCount(),
		Depth:       rr.Circuit.Depth(),
		FinalLayout: rr.FinalLayout,
		Circuit:     rr.Circuit,
		qubitH:      hq,
		logical:     logical,
	}
	return nil
}
