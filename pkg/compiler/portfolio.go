package compiler

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// maxPortfolioRacers bounds the field size; the packed incumbent bound
// reserves 16 bits for the racer position, so the real ceiling is far
// higher — this is a sanity cap on the spec surface.
const maxPortfolioRacers = 64

// defaultRacers is the field a bare "portfolio" spec races: the greedy
// HATT construction, beam search at the configured width, and simulated
// annealing — the three searches with complementary cost/quality
// profiles.
func defaultRacers() []string { return []string{"hatt", "beam", "anneal"} }

func init() {
	MustRegister(method{
		name: "portfolio",
		run: func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
			return runPortfolio(ctx, mh, opts, defaultRacers())
		},
		parse: func(base method, arg string) (Method, error) {
			racers, err := parsePortfolioSpec(arg)
			if err != nil {
				return nil, err
			}
			base.run = func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
				return runPortfolio(ctx, mh, opts, racers)
			}
			base.parse = nil
			return base, nil
		},
	})
}

// parsePortfolioSpec parses the '+'-separated racer list of a
// "portfolio:<m1+m2+…>" spec. Each racer must itself resolve against
// the registry (parameters included, e.g. "beam:8"), portfolios may not
// nest, and duplicate racer specs are rejected because the canonical
// racer order doubles as the race's tie-break key.
func parsePortfolioSpec(arg string) ([]string, error) {
	parts := strings.Split(arg, "+")
	if len(parts) > maxPortfolioRacers {
		return nil, fmt.Errorf("compiler: portfolio with %d racers (max %d)", len(parts), maxPortfolioRacers)
	}
	seen := make(map[string]bool, len(parts))
	racers := make([]string, 0, len(parts))
	for _, spec := range parts {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			return nil, fmt.Errorf("compiler: empty racer in portfolio spec %q (want portfolio:<m1+m2+…>)", arg)
		}
		if name, _, _ := strings.Cut(spec, ":"); name == "portfolio" {
			return nil, fmt.Errorf("compiler: portfolio racer %q: portfolios do not nest", spec)
		}
		if seen[spec] {
			return nil, fmt.Errorf("compiler: duplicate portfolio racer %q", spec)
		}
		seen[spec] = true
		if _, err := Resolve(spec); err != nil {
			return nil, fmt.Errorf("compiler: portfolio racer %q: %w", spec, err)
		}
		racers = append(racers, spec)
	}
	return racers, nil
}

// PortfolioShape is the model-shape key portfolio races are ledgered
// under: mode count and non-identity term count, the two cheap knobs
// that dominate which search method wins.
func PortfolioShape(mh *fermion.MajoranaHamiltonian) string {
	return fmt.Sprintf("m%d.t%d", mh.Modes, len(mh.IndexSets()))
}

// runPortfolio races the given specs concurrently under a shared
// incumbent bound and returns the deterministic winner: the completed
// result with the lexicographically smallest (weight, racer position)
// in the spec's declared order. The ledger, when attached, reorders
// which racer launches first when the pool is narrower than the field
// — scheduling only, never selection — and receives the outcome.
func runPortfolio(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options, racers []string) (*Result, error) {
	if opts.bound != nil {
		return nil, errors.New("compiler: portfolio cannot race inside another portfolio")
	}
	n := len(racers)
	methods := make([]Method, n)
	for i, spec := range racers {
		m, err := Resolve(spec)
		if err != nil {
			return nil, fmt.Errorf("compiler: portfolio racer %q: %w", spec, err)
		}
		methods[i] = m
	}
	portfolioRaces.Add(1)

	// Bandit ordering: the ledger may move its favorite to the front of
	// the launch queue, which matters when Parallelism < n. Canonical
	// positions (and with them the winner tie-break) are untouched.
	launch := make([]int, n)
	for i := range launch {
		launch[i] = i
	}
	if opts.Ledger != nil {
		ranked := opts.Ledger.Rank(PortfolioShape(mh), append([]string(nil), racers...))
		launch = launchOrder(racers, ranked)
	}

	bound := core.NewBound()
	inner := max(1, opts.Parallelism/n)
	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, n)

	// Portfolio-wide monotone gate for partial deliveries: racers (and
	// anneal improvements inside them) report concurrently, the consumer
	// sees strictly decreasing weights. Emission stays under the mutex so
	// deliveries cannot reorder.
	var pmu sync.Mutex
	bestPartial := int(^uint(0) >> 1)
	emitPartial := func(spec string, w int, m *mapping.Mapping) {
		if opts.Partial == nil {
			return
		}
		pmu.Lock()
		defer pmu.Unlock()
		if w >= bestPartial {
			return
		}
		bestPartial = w
		opts.Partial(PartialResult{Method: spec, Weight: w, Mapping: m})
	}

	rctx, raceSpan := obs.StartSpan(ctx, "portfolio.race")
	raceSpan.SetAttr("racers", strings.Join(racers, "+"))
	defer raceSpan.End()

	err := parallel.ForEach(rctx, n, min(n, max(1, opts.Parallelism)), func(li int) error {
		c := launch[li]
		spec := racers[c]
		sub := opts
		sub.bound = bound
		sub.boundPos = c
		sub.Parallelism = inner
		sub.Store = nil // the race caches at the portfolio level only
		sub.Ledger = nil
		sub.DeviceName, sub.Device = "", nil // routing attaches to the winner once
		sub.Partial = func(p PartialResult) {
			bound.Offer(p.Weight, c)
			emitPartial(spec, p.Weight, p.Mapping)
		}
		if opts.Partial == nil {
			// Anytime racers still feed the bound even when nobody is
			// watching partials.
			sub.Partial = func(p PartialResult) { bound.Offer(p.Weight, c) }
		}
		sctx, span := obs.StartSpan(rctx, "portfolio.racer")
		span.SetAttr("method", spec)
		sub.emit(ProgressEvent{Method: spec, Stage: StageStart})
		res, rerr := methods[c].Compile(sctx, mh, sub)
		switch {
		case rerr == nil:
			span.SetAttr("outcome", "completed")
			span.End()
			bound.Offer(res.PredictedWeight, c)
			emitPartial(spec, res.PredictedWeight, res.Mapping)
			sub.emit(ProgressEvent{Method: spec, Stage: StageDone, BestWeight: res.PredictedWeight})
			outcomes[c] = outcome{res: res}
		case errors.Is(rerr, core.ErrBounded):
			span.SetAttr("outcome", "bounded")
			span.End()
			outcomes[c] = outcome{err: rerr}
		case rctx.Err() != nil:
			span.SetAttr("outcome", "canceled")
			span.End()
			return rctx.Err() // abort the whole race
		default:
			span.SetAttr("outcome", "error")
			span.End()
			outcomes[c] = outcome{err: rerr}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Winner reduction in canonical order: strict < keeps the earliest
	// racer on weight ties, matching the bound's lexicographic packing.
	var win *Result
	winIdx := -1
	for c := 0; c < n; c++ {
		r := outcomes[c].res
		if r == nil {
			continue
		}
		if win == nil || r.PredictedWeight < win.PredictedWeight {
			win, winIdx = r, c
		}
	}
	if win == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for c := 0; c < n; c++ {
			if e := outcomes[c].err; e != nil && !errors.Is(e, core.ErrBounded) {
				return nil, fmt.Errorf("compiler: portfolio racer %q: %w", racers[c], e)
			}
		}
		// Unreachable when the bound contract holds: the eventual winner
		// never observes itself as unbeatable.
		return nil, errors.New("compiler: every portfolio racer was bounded out")
	}

	var losers []string
	for c := 0; c < n; c++ {
		switch {
		case c == winIdx:
			recordPortfolioOutcome(racers[c], "win")
		case outcomes[c].res != nil:
			recordPortfolioOutcome(racers[c], "loss")
			losers = append(losers, racers[c])
		case errors.Is(outcomes[c].err, core.ErrBounded):
			recordPortfolioOutcome(racers[c], "bounded")
			losers = append(losers, racers[c])
		default:
			recordPortfolioOutcome(racers[c], "error")
		}
	}
	if opts.Ledger != nil {
		opts.Ledger.Record(PortfolioShape(mh), racers[winIdx], losers)
	}
	raceSpan.SetAttr("winner", racers[winIdx])
	win.Method = racers[winIdx]
	return win, nil
}

// launchOrder maps the ledger's ranking back onto canonical indices,
// ignoring anything the ledger invented and appending anything it
// dropped (in canonical order), so a misbehaving ledger can reorder but
// never exclude a racer.
func launchOrder(racers, ranked []string) []int {
	idx := make(map[string]int, len(racers))
	for i, spec := range racers {
		idx[spec] = i
	}
	used := make([]bool, len(racers))
	order := make([]int, 0, len(racers))
	for _, spec := range ranked {
		if i, ok := idx[spec]; ok && !used[i] {
			used[i] = true
			order = append(order, i)
		}
	}
	for i := range racers {
		if !used[i] {
			order = append(order, i)
		}
	}
	return order
}

// Package-level portfolio counters feeding the service's /metrics
// surface. They register unconditionally there, so they live here with
// the races themselves rather than behind an optional ledger.
var (
	portfolioRaces    atomic.Int64
	portfolioOutcomes = struct {
		sync.Mutex
		m map[[2]string]int64
	}{m: make(map[[2]string]int64)}
)

// recordPortfolioOutcome bumps the (base method, outcome) counter; racer
// parameters are stripped to keep the label cardinality bounded.
func recordPortfolioOutcome(spec, outcome string) {
	name, _, _ := strings.Cut(spec, ":")
	portfolioOutcomes.Lock()
	portfolioOutcomes.m[[2]string{name, outcome}]++
	portfolioOutcomes.Unlock()
}

// PortfolioRaceCount reports how many portfolio races this process has
// started.
func PortfolioRaceCount() int64 { return portfolioRaces.Load() }

// PortfolioOutcome is one (method, outcome) counter reading; Outcome is
// "win", "loss", "bounded", or "error".
type PortfolioOutcome struct {
	Method  string
	Outcome string
	Count   int64
}

// PortfolioOutcomes snapshots the per-(method, outcome) race counters,
// sorted by method then outcome.
func PortfolioOutcomes() []PortfolioOutcome {
	portfolioOutcomes.Lock()
	out := make([]PortfolioOutcome, 0, len(portfolioOutcomes.m))
	for k, v := range portfolioOutcomes.m {
		out = append(out, PortfolioOutcome{Method: k[0], Outcome: k[1], Count: v})
	}
	portfolioOutcomes.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Method != out[j].Method {
			return out[i].Method < out[j].Method
		}
		return out[i].Outcome < out[j].Outcome
	})
	return out
}
