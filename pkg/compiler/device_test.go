package compiler

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/fermion"
	"repro/internal/models"
	"repro/internal/store"
)

func deviceTestMH(t *testing.T, spec string) *fermion.MajoranaHamiltonian {
	t.Helper()
	h, err := models.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	return h.Majorana(1e-12)
}

func TestCompileWithDevice(t *testing.T) {
	mh := deviceTestMH(t, "hubbard:2x2")
	res, err := Compile(context.Background(), "hatt", mh, WithDevice("montreal"))
	if err != nil {
		t.Fatal(err)
	}
	r := res.Routed
	if r == nil {
		t.Fatal("no routed metrics")
	}
	if r.Device != "Montreal" || r.PhysQubits != 27 {
		t.Errorf("routed onto %q (%d qubits)", r.Device, r.PhysQubits)
	}
	if r.CNOTs <= 0 || r.Depth <= 0 || r.Circuit == nil {
		t.Errorf("routed metrics empty: %+v", r)
	}
	if len(r.FinalLayout) != res.Mapping.Qubits() {
		t.Errorf("layout covers %d logical qubits, want %d", len(r.FinalLayout), res.Mapping.Qubits())
	}
	d, _ := arch.Lookup("montreal")
	if err := arch.CheckCoupling(r.Circuit, d); err != nil {
		t.Errorf("routed circuit violates coupling: %v", err)
	}
}

func TestCompileWithoutDeviceHasNoRouted(t *testing.T) {
	res, err := Compile(context.Background(), "hatt", deviceTestMH(t, "h2"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed != nil {
		t.Error("unrouted compile carries routed metrics")
	}
}

func TestCompileRejectsUnknownDevice(t *testing.T) {
	_, err := Compile(context.Background(), "hatt", deviceTestMH(t, "h2"), WithDevice("ibmq-nope"))
	if err == nil || !strings.Contains(err.Error(), "unknown device") {
		t.Fatalf("err = %v, want unknown-device error", err)
	}
}

func TestCompileRejectsTooSmallDevice(t *testing.T) {
	_, err := Compile(context.Background(), "hatt", deviceTestMH(t, "hubbard:2x2"), WithDevice("linear:4"))
	if err == nil {
		t.Fatal("8-qubit problem routed onto 4-qubit device")
	}
}

func TestCompileWithDeviceSpec(t *testing.T) {
	d, err := arch.ParseDeviceJSON([]byte(`{"name":"ring6","qubits":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(context.Background(), "jw", deviceTestMH(t, "h2"), WithDeviceSpec(d))
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed == nil || res.Routed.Device != "ring6" {
		t.Fatalf("routed = %+v", res.Routed)
	}
	if err := arch.CheckCoupling(res.Routed.Circuit, d); err != nil {
		t.Error(err)
	}
}

func TestDigestFoldsDevice(t *testing.T) {
	plain := NewOptions()
	routed := NewOptions(WithDevice("Montreal"))
	if plain.Digest() == routed.Digest() {
		t.Error("device not folded into digest")
	}
	if strings.Contains(plain.Digest(), "dev=") {
		t.Error("unrouted digest mentions a device")
	}
	// Equivalent spellings share the digest (and therefore cache entries).
	other := NewOptions(WithDevice(" montreal "))
	if routed.Digest() != other.Digest() {
		t.Errorf("digest not canonical: %q vs %q", routed.Digest(), other.Digest())
	}
	// Parametric specs canonicalize through the resolved device name.
	if a, b := NewOptions(WithDevice("linear:08")).Digest(), NewOptions(WithDevice("LINEAR:8")).Digest(); a != b {
		t.Errorf("parametric spellings diverge: %q vs %q", a, b)
	}
	// Custom devices digest by content fingerprint.
	d1, _ := arch.Lookup("linear:5")
	d2, _ := arch.Lookup("linear:6")
	c1 := NewOptions(WithDeviceSpec(d1))
	c2 := NewOptions(WithDeviceSpec(d2))
	if c1.Digest() == c2.Digest() {
		t.Error("different custom devices share a digest")
	}
	if !strings.Contains(c1.Digest(), "dev=custom:") {
		t.Errorf("custom device digest = %q", c1.Digest())
	}
}

// TestStoreServesRoutedByteIdentical is the acceptance property: a
// repeated routed compile is served from the store and re-derives a
// byte-identical routed circuit from the cached mapping.
func TestStoreServesRoutedByteIdentical(t *testing.T) {
	st, err := store.Open(16, "")
	if err != nil {
		t.Fatal(err)
	}
	mh := deviceTestMH(t, "hubbard:2x2")
	opts := []Option{WithStore(st), WithDevice("montreal")}
	first, err := Compile(context.Background(), "hatt", mh, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Routed == nil {
		t.Fatalf("first compile: cached=%v routed=%v", first.Cached, first.Routed != nil)
	}
	second, err := Compile(context.Background(), "hatt", mh, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Routed == nil {
		t.Fatalf("second compile: cached=%v routed=%v", second.Cached, second.Routed != nil)
	}
	if a, b := first.Routed.Circuit.QASM(), second.Routed.Circuit.QASM(); a != b {
		t.Error("cached routed circuit not byte-identical")
	}
	if first.Routed.SwapsAdded != second.Routed.SwapsAdded ||
		first.Routed.Depth != second.Routed.Depth {
		t.Errorf("cached routed metrics differ: %+v vs %+v", first.Routed, second.Routed)
	}

	// Routed and unrouted compilations are distinct content addresses:
	// an unrouted request after two routed ones is a store miss.
	plain, err := Compile(context.Background(), "hatt", mh, WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cached {
		t.Error("unrouted compile hit the routed entry")
	}
	s := st.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Puts != 2 {
		t.Errorf("store stats = %+v, want 1 hit / 2 misses / 2 puts", s)
	}
}

func TestPipelineReportsRouted(t *testing.T) {
	rep, err := Pipeline{
		Model:   "h2",
		Method:  "hatt",
		Options: []Option{WithDevice("grid:2x3")},
	}.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Routed == nil || rep.Routed.Device != "grid:2x3" {
		t.Fatalf("report routed = %+v", rep.Routed)
	}
	if rep.Routed != rep.Result.Routed {
		t.Error("report and result disagree on routed metrics")
	}
	// The routed circuit is the logical one pushed through routing: it
	// can only gain CNOTs.
	if rep.Routed.CNOTs < rep.CNOTs-rep.Routed.SwapsAdded*3 {
		t.Errorf("routed CNOTs %d implausible vs logical %d", rep.Routed.CNOTs, rep.CNOTs)
	}
}

func TestCompileBatchRoutes(t *testing.T) {
	items := []BatchItem{
		{Model: "h2", Spec: "jw"},
		{Model: "h2", Spec: "hatt"},
		{Model: "hubbard:2x2", Spec: "hatt"},
	}
	for _, br := range CompileBatch(context.Background(), items, WithDevice("montreal")) {
		if br.Err != nil {
			t.Fatalf("item %d: %v", br.Index, br.Err)
		}
		if br.Result.Routed == nil || br.Result.Routed.Device != "Montreal" {
			t.Errorf("item %d missing routed metrics", br.Index)
		}
	}
}
