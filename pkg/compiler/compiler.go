// Package compiler is the public facade over the repository's
// fermion-to-qubit compilation machinery. It is the single supported way
// to turn a fermionic Hamiltonian into a mapped, synthesized result:
//
//	mh := h.Majorana(1e-12)
//	res, err := compiler.Compile(ctx, "hatt", mh)
//
// Every mapping method — the constructive baselines (jw, bk, parity,
// btt), the paper's HATT constructions (hatt, hatt-unopt, beam), and the
// Fermihedral substitutes (fh, anneal) — is a Method registered under a
// string name, resolvable with parameters embedded in the spec
// ("beam:8", "fh:500000"). Long-running methods honor context
// cancellation, panics inside a method are converted to errors at the
// boundary, and the Pipeline type runs the whole
// model → mapping → synthesis → metrics chain in one call.
package compiler

import (
	"context"
	"runtime"
	"strconv"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/tree"
)

// TieBreak re-exports the core tie-breaking policy for the hatt method.
type TieBreak = core.TieBreak

// Tie-breaking policies for WithTieBreak.
const (
	TieFirst   = core.TieFirst
	TieDepth   = core.TieDepth
	TieSupport = core.TieSupport
)

// Options carries every tunable a Method may consult. Construct it with
// NewOptions so zero fields get their documented defaults; methods ignore
// options that do not apply to them.
type Options struct {
	BeamWidth    int               // beam search width (beam)
	VisitBudget  int64             // exhaustive search state budget, ≤0 unlimited (fh)
	AnnealIters  int               // mutation attempts, 0 = 2000·N (anneal)
	AnnealTStart float64           // initial temperature, 0 = 2.0 (anneal)
	AnnealTEnd   float64           // final temperature, 0 = 0.01 (anneal)
	TrotterSteps int               // Trotter steps synthesized by Pipeline
	TrotterTime  float64           // total evolution time synthesized by Pipeline
	TermOrder    circuit.TermOrder // term ordering used by Pipeline synthesis
	TieBreak     TieBreak          // equal-weight candidate policy (hatt)
	Seed         int64             // RNG seed, 0 = 1 (anneal)
	// Parallelism bounds the worker pool each method fans its search out
	// over (hatt candidate scoring, beam candidate scoring, anneal
	// restart chains) and the batch width of CompileBatch/PipelineBatch.
	// It never changes a method's result: a fixed Seed produces a
	// byte-identical mapping at every Parallelism value.
	Parallelism int
	// AnnealRestarts runs that many independent annealing chains (seeded
	// Seed, Seed+1, …) and keeps the lowest-weight result, earliest chain
	// on ties (anneal).
	AnnealRestarts int
	Progress       func(ProgressEvent)
	// Store, when non-nil, is consulted before and after every compile:
	// hits skip the search, misses populate it. See WithStore.
	Store Store
	// DeviceName targets a catalog device by spec; Device targets an
	// explicitly built (custom) one and wins when both are set. Either
	// makes Compile synthesize and route the Trotter circuit, reporting
	// hardware metrics in Result.Routed. See WithDevice/WithDeviceSpec.
	DeviceName string
	Device     *arch.Device
	// Partial, when non-nil, receives best-so-far results from anytime
	// methods (anneal improvements, portfolio racer completions) while
	// the compile is still running. Deliveries are strictly
	// weight-decreasing per compile and synchronous with the search; keep
	// the callback cheap and concurrency-safe. See WithPartial.
	Partial func(PartialResult)
	// Ledger, when non-nil, records portfolio race outcomes and orders
	// racer launch for future portfolio compiles. It influences
	// scheduling only — never the compiled result — so cached results
	// remain valid whatever the ledger held. See WithMethodLedger.
	Ledger MethodLedger
	// bound and boundPos thread a portfolio's shared incumbent into the
	// racer sub-compiles; they are never set outside a portfolio race.
	bound    *core.Bound
	boundPos int
}

// Option mutates Options; see the With* constructors.
type Option func(*Options)

// NewOptions applies the given options on top of the defaults:
// beam width 4, visit budget 2,000,000, one Trotter step of time 1.0,
// lexicographic term order, one annealing chain, and parallelism equal
// to runtime.GOMAXPROCS.
func NewOptions(opts ...Option) Options {
	o := Options{
		BeamWidth:      4,
		VisitBudget:    2_000_000,
		TrotterSteps:   1,
		TrotterTime:    1.0,
		TermOrder:      circuit.OrderLexicographic,
		Parallelism:    runtime.GOMAXPROCS(0),
		AnnealRestarts: 1,
	}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// WithBeamWidth sets the beam search width (methods: beam).
func WithBeamWidth(width int) Option { return func(o *Options) { o.BeamWidth = width } }

// WithVisitBudget bounds the exhaustive search's explored states;
// budget ≤ 0 means unlimited (methods: fh).
func WithVisitBudget(budget int64) Option { return func(o *Options) { o.VisitBudget = budget } }

// WithAnnealSchedule sets the simulated-annealing schedule; zero values
// keep the method defaults (methods: anneal).
func WithAnnealSchedule(iters int, tStart, tEnd float64) Option {
	return func(o *Options) { o.AnnealIters, o.AnnealTStart, o.AnnealTEnd = iters, tStart, tEnd }
}

// WithTrotterSteps sets how many Trotter steps Pipeline synthesizes.
func WithTrotterSteps(steps int) Option { return func(o *Options) { o.TrotterSteps = steps } }

// WithTrotterTime sets the total evolution time Pipeline synthesizes.
func WithTrotterTime(t float64) Option { return func(o *Options) { o.TrotterTime = t } }

// WithTermOrder sets the Trotter term ordering Pipeline synthesizes with.
func WithTermOrder(ord circuit.TermOrder) Option { return func(o *Options) { o.TermOrder = ord } }

// WithTieBreak sets the equal-weight candidate policy (methods: hatt).
func WithTieBreak(tb TieBreak) Option { return func(o *Options) { o.TieBreak = tb } }

// WithSeed seeds the stochastic methods (methods: anneal).
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithParallelism bounds the worker pool the search methods and the
// batch APIs fan out over; n < 1 restores the default
// (runtime.GOMAXPROCS). Parallelism trades wall time only — for a fixed
// seed the compiled mapping is byte-identical at every value.
func WithParallelism(n int) Option {
	return func(o *Options) {
		if n < 1 {
			n = runtime.GOMAXPROCS(0)
		}
		o.Parallelism = n
	}
}

// WithAnnealRestarts runs n independent annealing chains — seeded Seed,
// Seed+1, … — concurrently (bounded by Parallelism) and keeps the
// lowest-weight result, earliest chain on ties (methods: anneal).
func WithAnnealRestarts(n int) Option {
	return func(o *Options) {
		if n < 1 {
			n = 1
		}
		o.AnnealRestarts = n
	}
}

// WithProgress registers a callback for ProgressEvents. Every method
// emits StageStart/StageDone; per-iteration StageSearch events currently
// come from the anneal method, and a portfolio emits StageStart/StageDone
// per racer under the racer's spec. Events are delivered synchronously
// from the compiling goroutine; keep the callback cheap.
func WithProgress(fn func(ProgressEvent)) Option { return func(o *Options) { o.Progress = fn } }

// PartialResult is a validated best-so-far mapping delivered to a
// WithPartial callback while an anytime compile is still running. Weight
// is the Pauli weight of Mapping on the compiled Hamiltonian and Method
// names the producing spec (the racer spec inside a portfolio).
type PartialResult struct {
	Method  string
	Weight  int
	Mapping *mapping.Mapping
}

// WithPartial registers a callback for best-so-far results from anytime
// methods (methods: anneal, portfolio). Deliveries are strictly
// weight-decreasing within one compile and may come from worker
// goroutines; the callback must be concurrency-safe and cheap. The final
// Result is always at least as good as the last delivery.
func WithPartial(fn func(PartialResult)) Option { return func(o *Options) { o.Partial = fn } }

// MethodLedger records portfolio race outcomes keyed by a model-shape
// string and suggests a racer ordering for future races. Rank returns
// the given specs reordered by expected strength (unknown specs keep
// their relative order); Record logs one race. Implementations must be
// safe for concurrent use. The ledger steers which racer launches first
// when the worker pool is narrower than the field — it never changes the
// race's deterministic winner.
type MethodLedger interface {
	Rank(shape string, specs []string) []string
	Record(shape, winner string, losers []string)
}

// WithMethodLedger attaches a ledger consulted and updated by portfolio
// compiles (methods: portfolio). See MethodLedger for the contract.
func WithMethodLedger(l MethodLedger) Option { return func(o *Options) { o.Ledger = l } }

// Progress stages.
const (
	// StageStart is emitted once when a method begins compiling.
	StageStart = "start"
	// StageSearch is emitted periodically from iterative searches with
	// Step/Total and the best weight found so far.
	StageSearch = "search"
	// StageDone is emitted once when a method finishes, with the final
	// weight in BestWeight.
	StageDone = "done"
)

// ProgressEvent reports compilation progress to a WithProgress callback.
type ProgressEvent struct {
	Method     string // method name, e.g. "anneal"
	Stage      string // one of the Stage* constants
	Step       int    // current iteration (StageSearch)
	Total      int    // total iterations (StageSearch)
	BestWeight int    // best Pauli weight found so far
}

func (o Options) emit(ev ProgressEvent) {
	if o.Progress != nil {
		o.Progress(ev)
	}
}

// Result is a compiled fermion-to-qubit mapping. PredictedWeight is the
// Pauli weight of the Hamiltonian under the mapping (for tree
// constructions it is the settled weight the build accumulated, which
// equals the applied weight). Tree is nil for the constructive baselines,
// which are not tree-derived, and for results served from a Store, which
// persists only the mapping. Optimal and Visited are populated by the
// exhaustive fh search. Cached reports that the result came from an
// attached Store rather than a fresh search.
type Result struct {
	Method          string
	Mapping         *mapping.Mapping
	Tree            *tree.Tree
	PredictedWeight int
	Optimal         bool
	Visited         int64
	Cached          bool
	// Routed carries the hardware-mapped circuit and its metrics when a
	// device was targeted with WithDevice/WithDeviceSpec; nil otherwise.
	Routed *Routed
}

// ParseTermOrder parses a term-order spec ("natural", "lex", "greedy")
// into the value WithTermOrder accepts.
func ParseTermOrder(s string) (circuit.TermOrder, error) { return circuit.ParseOrder(s) }

// Compile resolves spec against the registry and compiles mh with it.
// It is the one-call form of Resolve + Method.Compile:
//
//	res, err := compiler.Compile(ctx, "beam:8", mh)
//
// Cancelling ctx makes the long-running methods (beam, fh, anneal) return
// promptly with ctx.Err().
func Compile(ctx context.Context, spec string, mh *fermion.MajoranaHamiltonian, opts ...Option) (*Result, error) {
	return compileWith(ctx, spec, mh, NewOptions(opts...))
}

// compileWith is Compile over already-resolved Options, shared with
// Pipeline.Run so both stages see the same resolved values. With a Store
// attached it is the cache boundary: a content-address hit short-circuits
// the method (the progress callback still sees StageStart/StageDone, so
// observers need no cache awareness), a miss populates the store.
func compileWith(ctx context.Context, spec string, mh *fermion.MajoranaHamiltonian, o Options) (*Result, error) {
	m, err := Resolve(spec)
	if err != nil {
		return nil, err
	}
	// Resolve the target device up front so a bad spec fails before any
	// search work (and before the store is consulted — the device spec is
	// part of the content address).
	dev, err := o.routingDevice()
	if err != nil {
		return nil, err
	}
	cacheable := o.Store != nil && mh != nil
	if cacheable {
		gctx, getSpan := obs.StartSpan(ctx, "store.get")
		getSpan.SetAttr("method", m.Name())
		res, _, ok := storeLookup(gctx, spec, mh, o)
		getSpan.SetAttr("hit", strconv.FormatBool(ok))
		getSpan.End()
		if ok {
			if dev != nil {
				if err := attachRouted(ctx, res, mh, dev, o); err != nil {
					return nil, err
				}
			}
			o.emit(ProgressEvent{Method: m.Name(), Stage: StageStart})
			o.emit(ProgressEvent{Method: m.Name(), Stage: StageDone, BestWeight: res.PredictedWeight})
			return res, nil
		}
	}
	o.emit(ProgressEvent{Method: m.Name(), Stage: StageStart})
	sctx, searchSpan := obs.StartSpan(ctx, "compile.search")
	searchSpan.SetAttr("method", m.Name())
	res, err := m.Compile(sctx, mh, o)
	searchSpan.End()
	if err != nil {
		return nil, err
	}
	if cacheable {
		_, putSpan := obs.StartSpan(ctx, "store.put")
		putSpan.SetAttr("method", m.Name())
		storeSave(storeKey(spec, mh, o), res, o)
		putSpan.End()
	}
	if dev != nil {
		if err := attachRouted(ctx, res, mh, dev, o); err != nil {
			return nil, err
		}
	}
	o.emit(ProgressEvent{Method: m.Name(), Stage: StageDone, BestWeight: res.PredictedWeight})
	return res, nil
}
