package compiler

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMethodTableMatchesRegistry holds the human-facing table to the
// live registry: same set of specs, no placeholder descriptions, no
// stale rows for methods that no longer exist.
func TestMethodTableMatchesRegistry(t *testing.T) {
	table := MethodTable()
	names := Methods()
	if len(table) != len(names) {
		t.Fatalf("MethodTable has %d rows, registry has %d methods", len(table), len(names))
	}
	for i, mi := range table {
		if mi.Spec != names[i] {
			t.Errorf("row %d: spec %q, want %q (registry order)", i, mi.Spec, names[i])
		}
		if mi.Description == "" || strings.Contains(mi.Description, "undescribed method") {
			t.Errorf("method %q has no real description", mi.Spec)
		}
		if mi.Param != "" && !strings.HasPrefix(mi.Param, mi.Spec+":") {
			t.Errorf("method %q: param form %q does not extend the spec", mi.Spec, mi.Param)
		}
	}
	for name := range methodDescriptions {
		if _, err := Resolve(name); err != nil {
			t.Errorf("methodDescriptions has a row for %q, which is not registered", name)
		}
	}
}

// methodTableMarkdown renders the README's method table from
// MethodTable — the same rows `hattc -list` prints.
func methodTableMarkdown() string {
	var b strings.Builder
	b.WriteString("| Spec | Method |\n|---|---|\n")
	for _, mi := range MethodTable() {
		spec := "`" + mi.Spec + "`"
		if mi.Param != "" {
			spec += ", `" + mi.Param + "`"
		}
		fmt.Fprintf(&b, "| %s | %s |\n", spec, mi.Description)
	}
	return b.String()
}

// TestReadmeMethodTable is the golden sync check: the block between the
// methods:begin/end markers in README.md must be exactly the markdown
// rendering of MethodTable. Registering, renaming, or re-describing a
// method without regenerating the README fails the build; the failure
// message carries the expected block to paste in.
func TestReadmeMethodTable(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatalf("README.md unreadable: %v", err)
	}
	const begin, end = "<!-- methods:begin -->", "<!-- methods:end -->"
	readme := string(raw)
	i := strings.Index(readme, begin)
	j := strings.Index(readme, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s / %s markers", begin, end)
	}
	got := strings.TrimSpace(readme[i+len(begin) : j])
	want := strings.TrimSpace(methodTableMarkdown())
	if got != want {
		t.Errorf("README method table is out of sync with compiler.MethodTable().\nWant between the markers:\n\n%s\n\nGot:\n\n%s", want, got)
	}
}
