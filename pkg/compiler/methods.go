package compiler

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/mapping"
)

// method is the built-in Method implementation: a named run function plus
// an optional spec-parameter parser.
type method struct {
	name  string
	run   func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error)
	parse func(base method, arg string) (Method, error)
}

func (m method) Name() string { return m.name }

// Compile validates inputs, converts panics escaping the method into
// errors, and delegates to the run function.
func (m method) Compile(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (res *Result, err error) {
	if mh == nil {
		return nil, errors.New("compiler: nil Hamiltonian")
	}
	if mh.Modes < 1 {
		return nil, fmt.Errorf("compiler: Hamiltonian with %d modes", mh.Modes)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("compiler: method %s panicked: %v", m.name, r)
		}
	}()
	return m.run(ctx, mh, opts)
}

func (m method) WithParam(arg string) (Method, error) {
	if m.parse == nil {
		return nil, fmt.Errorf("compiler: method %q takes no parameter", m.name)
	}
	return m.parse(m, arg)
}

// constructive wraps the Hamiltonian-oblivious baselines, whose mappings
// depend only on the mode count.
func constructive(name string, build func(n int) *mapping.Mapping) method {
	return method{name: name, run: func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
		m := build(mh.Modes)
		return &Result{Method: name, Mapping: m, PredictedWeight: m.HamiltonianWeight(mh)}, nil
	}}
}

func fromCore(name string, r *core.Result) *Result {
	return &Result{Method: name, Mapping: r.Mapping, Tree: r.Tree, PredictedWeight: r.PredictedWeight}
}

func init() {
	MustRegister(constructive("jw", mapping.JordanWigner))
	MustRegister(constructive("bk", mapping.BravyiKitaev))
	MustRegister(constructive("parity", mapping.Parity))
	MustRegister(constructive("btt", mapping.BalancedTernaryTree))

	MustRegister(method{name: "hatt", run: func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
		r, err := core.BuildWithOptionsCtx(ctx, mh, core.BuildOptions{
			TieBreak: opts.TieBreak,
			Workers:  opts.Parallelism,
			Bound:    opts.bound,
			BoundPos: opts.boundPos,
		})
		if err != nil {
			return nil, err
		}
		return fromCore("hatt", r), nil
	}})

	MustRegister(method{name: "hatt-unopt", run: func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
		r, err := core.BuildUnoptCtx(ctx, mh, core.UnoptOptions{
			Bound:    opts.bound,
			BoundPos: opts.boundPos,
		})
		if err != nil {
			return nil, err
		}
		return fromCore("hatt-unopt", r), nil
	}})

	MustRegister(method{
		name: "beam",
		run: func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
			r, err := core.BuildBeamOpts(ctx, mh, core.BeamOptions{
				Width:    opts.BeamWidth,
				Workers:  opts.Parallelism,
				Bound:    opts.bound,
				BoundPos: opts.boundPos,
			})
			if err != nil {
				return nil, err
			}
			return fromCore("beam", r), nil
		},
		parse: func(base method, arg string) (Method, error) {
			width, err := strconv.Atoi(arg)
			if err != nil || width < 1 {
				return nil, fmt.Errorf("compiler: bad beam width %q (want beam:<width ≥ 1>)", arg)
			}
			inner := base.run
			base.run = func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
				opts.BeamWidth = width
				return inner(ctx, mh, opts)
			}
			base.parse = nil
			return base, nil
		},
	})

	MustRegister(method{
		name: "fh",
		run: func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
			r, err := core.ExhaustiveCtx(ctx, mh, opts.VisitBudget)
			if err != nil {
				return nil, err
			}
			res := fromCore("fh", &r.Result)
			res.Optimal = r.Optimal
			res.Visited = r.Visited
			return res, nil
		},
		parse: func(base method, arg string) (Method, error) {
			budget, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || budget < 0 {
				return nil, fmt.Errorf("compiler: bad fh visit budget %q (want fh:<budget ≥ 0>)", arg)
			}
			inner := base.run
			base.run = func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
				opts.VisitBudget = budget
				return inner(ctx, mh, opts)
			}
			base.parse = nil
			return base, nil
		},
	})

	MustRegister(method{name: "anneal", run: func(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error) {
		aopts := core.AnnealOptions{
			Iters:    opts.AnnealIters,
			TStart:   opts.AnnealTStart,
			TEnd:     opts.AnnealTEnd,
			Seed:     opts.Seed,
			Restarts: opts.AnnealRestarts,
			Workers:  opts.Parallelism,
			Bound:    opts.bound,
			BoundPos: opts.boundPos,
		}
		if opts.Progress != nil {
			aopts.Progress = func(iter, iters, best int) {
				opts.emit(ProgressEvent{Method: "anneal", Stage: StageSearch, Step: iter, Total: iters, BestWeight: best})
			}
		}
		if opts.Partial != nil {
			// Chains report improvements that are only monotone per chain;
			// gate deliveries behind a compile-wide incumbent so the
			// WithPartial contract (strictly decreasing weights) holds at
			// any restart count. The emit stays under the mutex to keep
			// deliveries ordered.
			var mu sync.Mutex
			best := int(^uint(0) >> 1)
			aopts.OnImprove = func(r *core.Result) {
				mu.Lock()
				defer mu.Unlock()
				if r.PredictedWeight >= best {
					return
				}
				best = r.PredictedWeight
				opts.Partial(PartialResult{Method: "anneal", Weight: r.PredictedWeight, Mapping: r.Mapping})
			}
		}
		r, err := core.AnnealCtx(ctx, mh, aopts)
		if err != nil {
			return nil, err
		}
		return fromCore("anneal", r), nil
	}})
}
