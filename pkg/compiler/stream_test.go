package compiler

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/fermion"
)

// streamWorkerCounts is the sweep the satellite task pins down: the
// inline single-worker path, a fixed mid-size pool, and whatever the
// host defaults to.
func streamWorkerCounts() []int {
	counts := []int{1, 4}
	if gm := runtime.GOMAXPROCS(0); gm != 1 && gm != 4 {
		counts = append(counts, gm)
	}
	return counts
}

// streamItems builds a batch mixing valid items with three distinct
// failure shapes: a bad method spec, a bad model spec, and an item with
// neither model nor Hamiltonian.
func streamItems() []BatchItem {
	h := fermion.NewHamiltonian(2)
	h.AddHermitian(1, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1})
	return []BatchItem{
		{Model: "h2", Spec: "jw"},
		{Model: "h2", Spec: "definitely-not-a-method"},
		{Model: "hubbard:1x2", Spec: "bk"},
		{Model: "not-a-model", Spec: "jw"},
		{Hamiltonian: h.Majorana(1e-12), Spec: "parity"},
		{},            // neither model nor Hamiltonian
		{Model: "h2"}, // empty spec defaults to hatt
	}
}

func TestCompileBatchStreamDeliveryAndErrorIsolation(t *testing.T) {
	items := streamItems()
	wantErr := map[int]bool{1: true, 3: true, 5: true}

	for _, workers := range streamWorkerCounts() {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			seen := make(map[int]int)
			var order []int
			for br := range CompileBatchStream(context.Background(), items, WithParallelism(workers)) {
				seen[br.Index]++
				order = append(order, br.Index)
				if br.Index < 0 || br.Index >= len(items) {
					t.Fatalf("out-of-range index %d", br.Index)
				}
				if wantErr[br.Index] {
					if br.Err == nil || br.Result != nil {
						t.Errorf("item %d: want an error, got result=%v err=%v", br.Index, br.Result, br.Err)
					}
					continue
				}
				if br.Err != nil {
					t.Errorf("item %d: unexpected error %v (a bad neighbor must not leak)", br.Index, br.Err)
					continue
				}
				if br.Result == nil || br.Result.Mapping == nil {
					t.Errorf("item %d: missing result", br.Index)
				}
			}
			// Completeness: every index delivered exactly once, channel
			// closed afterwards (the range loop exiting proves closure).
			if len(seen) != len(items) {
				t.Fatalf("delivered %d distinct indices, want %d", len(seen), len(items))
			}
			for i, n := range seen {
				if n != 1 {
					t.Fatalf("index %d delivered %d times", i, n)
				}
			}
			// With one worker the pool runs inline in index order, so
			// completion order must equal submission order.
			if workers == 1 {
				for pos, idx := range order {
					if pos != idx {
						t.Fatalf("single-worker delivery out of order: %v", order)
					}
				}
			}
		})
	}
}

func TestCompileBatchStreamMatchesCompileBatch(t *testing.T) {
	items := streamItems()
	for _, workers := range streamWorkerCounts() {
		batch := CompileBatch(context.Background(), items, WithParallelism(workers))
		if len(batch) != len(items) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(batch), len(items))
		}
		for i, br := range batch {
			if br.Index != i {
				t.Fatalf("workers=%d: result %d carries index %d", workers, i, br.Index)
			}
			if (br.Err != nil) != map[int]bool{1: true, 3: true, 5: true}[i] {
				t.Fatalf("workers=%d item %d: err=%v", workers, i, br.Err)
			}
		}
		// The default spec really is hatt.
		if batch[6].Err != nil || batch[6].Result.Method != "hatt" {
			t.Fatalf("empty-spec item compiled as %+v err=%v", batch[6].Result, batch[6].Err)
		}
	}
}

func TestCompileBatchStreamMappingsWorkerInvariant(t *testing.T) {
	// The reproducibility guarantee extends through the stream: the same
	// item compiles to byte-identical mappings at every worker count.
	items := []BatchItem{
		{Model: "hubbard:2x2", Spec: "hatt"},
		{Model: "h2", Spec: "anneal"},
	}
	var ref []*Result
	for _, workers := range streamWorkerCounts() {
		out := make([]*Result, len(items))
		for br := range CompileBatchStream(context.Background(), items, WithParallelism(workers), WithSeed(7)) {
			if br.Err != nil {
				t.Fatalf("workers=%d item %d: %v", workers, br.Index, br.Err)
			}
			out[br.Index] = br.Result
		}
		if ref == nil {
			ref = out
			continue
		}
		for i := range items {
			for j := range ref[i].Mapping.Majoranas {
				if !ref[i].Mapping.Majoranas[j].Equal(out[i].Mapping.Majoranas[j]) {
					t.Fatalf("workers=%d item %d: M%d differs from reference", workers, i, j)
				}
			}
		}
	}
}
