package compiler

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/fermion"
)

// Method compiles a Majorana-form fermionic Hamiltonian into a mapping.
// Implementations must honor context cancellation in long-running loops
// and must be safe for concurrent use.
type Method interface {
	Name() string
	Compile(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts Options) (*Result, error)
}

// Parameterized is implemented by methods that accept a spec parameter
// after a colon, e.g. "beam:8". WithParam returns a configured copy.
type Parameterized interface {
	Method
	WithParam(arg string) (Method, error)
}

var registry = struct {
	sync.RWMutex
	m map[string]Method
}{m: make(map[string]Method)}

// Register adds a method to the registry under m.Name(). Registering an
// empty name, a name containing ':', or a name already taken is an error.
func Register(m Method) error {
	name := m.Name()
	if name == "" {
		return fmt.Errorf("compiler: method with empty name")
	}
	if strings.Contains(name, ":") {
		return fmt.Errorf("compiler: method name %q must not contain ':'", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[name]; dup {
		return fmt.Errorf("compiler: method %q already registered", name)
	}
	registry.m[name] = m
	return nil
}

// MustRegister is Register, panicking on error. It is intended for
// package-init registration of a program's method set.
func MustRegister(m Method) {
	if err := Register(m); err != nil {
		panic(err)
	}
}

// Resolve parses a method spec of the form "name" or "name:param" and
// returns the registered method, configured with the parameter when one
// is given. Unknown names, parameters on parameterless methods, and
// malformed parameters all return errors.
func Resolve(spec string) (Method, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	registry.RLock()
	m, ok := registry.m[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("compiler: unknown method %q (have %s)", name, strings.Join(Methods(), ", "))
	}
	if !hasArg {
		return m, nil
	}
	pm, ok := m.(Parameterized)
	if !ok {
		return nil, fmt.Errorf("compiler: method %q takes no parameter (got %q)", name, spec)
	}
	return pm.WithParam(arg)
}

// Methods returns the registered method names, sorted.
func Methods() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.m))
	for name := range registry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
