package compiler

import "fmt"

// MethodInfo is one row of the human-facing method table: the registry
// spec, the parameterized form when the method takes one, and a one-line
// description.
type MethodInfo struct {
	Spec        string // registry name, e.g. "beam"
	Param       string // parameterized spec grammar, e.g. "beam:<width>"; "" if none
	Description string
}

// methodDescriptions is the single source of the per-method prose. Both
// `hattc -list` and the README's method table render from MethodTable,
// and tests hold the set of rows equal to the live registry — so the
// docs cannot drift from what Resolve actually accepts.
var methodDescriptions = map[string]MethodInfo{
	"jw":         {Description: "Jordan–Wigner (constructive baseline)"},
	"bk":         {Description: "Bravyi–Kitaev (constructive baseline)"},
	"parity":     {Description: "parity encoding (constructive baseline)"},
	"btt":        {Description: "balanced ternary tree (constructive baseline)"},
	"hatt":       {Description: "optimized HATT construction (Algorithms 2+3, O(N³))"},
	"hatt-unopt": {Description: "plain bottom-up HATT construction (Algorithm 1, O(N⁴))"},
	"beam":       {Param: "beam:<width>", Description: "vacuum-preserving beam search over HATT space"},
	"fh":         {Param: "fh:<budget>", Description: "exhaustive branch-and-bound (Fermihedral substitute)"},
	"anneal":     {Description: "simulated annealing over tree space"},
	"portfolio":  {Param: "portfolio:<m1+m2+…>", Description: "races methods under a shared incumbent bound, anytime best-so-far"},
}

// MethodTable returns one row per registered method, in Methods() order
// (sorted by spec). A method registered without a description row gets a
// placeholder description rather than being dropped, so new methods are
// visible immediately — and the sync test fails until a real description
// is added.
func MethodTable() []MethodInfo {
	names := Methods()
	out := make([]MethodInfo, len(names))
	for i, name := range names {
		info, ok := methodDescriptions[name]
		if !ok {
			info = MethodInfo{Description: fmt.Sprintf("(undescribed method %q — add it to methodDescriptions)", name)}
		}
		info.Spec = name
		out[i] = info
	}
	return out
}
