package compiler

import (
	"context"
	"strings"
	"testing"

	"repro/internal/fermion"
	"repro/internal/models"
)

// allSpecs is the full built-in method set, one spec per method,
// parameterized where a parameter keeps the test fast.
var allSpecs = []string{
	"jw", "bk", "parity", "btt",
	"hatt", "hatt-unopt", "beam:2", "fh:50000", "anneal",
	"portfolio", "portfolio:hatt+anneal",
}

func testMajorana(t testing.TB) *fermion.MajoranaHamiltonian {
	t.Helper()
	return models.H2STO3G().Majorana(1e-12)
}

func TestAllMethodsResolvable(t *testing.T) {
	want := []string{"anneal", "beam", "bk", "btt", "fh", "hatt", "hatt-unopt", "jw", "parity", "portfolio"}
	got := Methods()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Methods() = %v, want %v", got, want)
	}
	for _, name := range want {
		if _, err := Resolve(name); err != nil {
			t.Errorf("Resolve(%q): %v", name, err)
		}
	}
}

func TestCompileEveryMethod(t *testing.T) {
	mh := testMajorana(t)
	ctx := context.Background()
	for _, spec := range allSpecs {
		res, err := Compile(ctx, spec, mh, WithAnnealSchedule(500, 0, 0))
		if err != nil {
			t.Fatalf("Compile(%q): %v", spec, err)
		}
		if res.Mapping == nil || res.PredictedWeight <= 0 {
			t.Fatalf("Compile(%q): bad result %+v", spec, res)
		}
		if err := res.Mapping.Verify(); err != nil {
			t.Errorf("Compile(%q): mapping invalid: %v", spec, err)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	for _, spec := range []string{"", "nope", "nope:3"} {
		if _, err := Resolve(spec); err == nil {
			t.Errorf("Resolve(%q): expected error", spec)
		}
	}
}

func TestResolveBadParams(t *testing.T) {
	for _, spec := range []string{"jw:3", "hatt:fast", "beam:", "beam:x", "beam:0", "fh:-1", "fh:много"} {
		if _, err := Resolve(spec); err == nil {
			t.Errorf("Resolve(%q): expected error", spec)
		}
	}
}

func TestResolveParamConfigures(t *testing.T) {
	mh := testMajorana(t)
	m, err := Resolve("beam:2")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "beam" {
		t.Fatalf("Name() = %q, want beam", m.Name())
	}
	// The spec parameter must win over the option default.
	res, err := m.Compile(context.Background(), mh, NewOptions(WithBeamWidth(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedWeight <= 0 {
		t.Fatal("bad weight")
	}
}

func TestDuplicateRegisterRejected(t *testing.T) {
	dummy := method{name: "dup-test", run: nil}
	t.Cleanup(func() {
		// Drop the probe entry so the global registry stays pristine for
		// tests running after this one (e.g. under -shuffle).
		registry.Lock()
		delete(registry.m, dummy.name)
		registry.Unlock()
	})
	if err := Register(dummy); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := Register(dummy); err == nil {
		t.Fatal("second Register: expected duplicate error")
	}
	if err := Register(method{name: ""}); err == nil {
		t.Fatal("empty name: expected error")
	}
	if err := Register(method{name: "a:b"}); err == nil {
		t.Fatal("name with colon: expected error")
	}
}

func TestPanicConvertedToError(t *testing.T) {
	m := method{name: "boom", run: func(context.Context, *fermion.MajoranaHamiltonian, Options) (*Result, error) {
		panic("kaboom")
	}}
	_, err := m.Compile(context.Background(), testMajorana(t), NewOptions())
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic converted to error, got %v", err)
	}
}

func TestNilHamiltonian(t *testing.T) {
	if _, err := Compile(context.Background(), "jw", nil); err == nil {
		t.Fatal("expected error for nil Hamiltonian")
	}
}

func TestProgressEvents(t *testing.T) {
	mh := testMajorana(t)
	var stages []string
	_, err := Compile(context.Background(), "anneal", mh,
		WithAnnealSchedule(300, 0, 0),
		WithSeed(7),
		WithProgress(func(ev ProgressEvent) { stages = append(stages, ev.Stage) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) < 3 || stages[0] != StageStart || stages[len(stages)-1] != StageDone {
		t.Fatalf("bad event sequence: %v", stages)
	}
	sawSearch := false
	for _, s := range stages {
		if s == StageSearch {
			sawSearch = true
		}
	}
	if !sawSearch {
		t.Fatalf("no %s events in %v", StageSearch, stages)
	}
}
