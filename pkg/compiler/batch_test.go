package compiler

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

func TestCompileBatchOrderAndResults(t *testing.T) {
	core.ResetBuildCache()
	items := []BatchItem{
		{Model: "h2"},
		{Model: "h2", Spec: "jw"},
		{Model: "hubbard:2x2", Spec: "hatt"},
		{Model: "hubbard:2x2", Spec: "bk"},
	}
	results := CompileBatch(context.Background(), items, WithParallelism(4))
	if len(results) != len(items) {
		t.Fatalf("got %d results, want %d", len(results), len(items))
	}
	for i, br := range results {
		if br.Index != i {
			t.Fatalf("result %d has index %d (input order violated)", i, br.Index)
		}
		if br.Err != nil {
			t.Fatalf("item %d: %v", i, br.Err)
		}
		if br.Result == nil || br.Result.PredictedWeight <= 0 {
			t.Fatalf("item %d: bad result %+v", i, br.Result)
		}
	}
	// hatt (default spec) must beat or match JW on the same model.
	if results[0].Result.PredictedWeight > results[1].Result.PredictedWeight {
		t.Fatalf("hatt weight %d worse than jw %d",
			results[0].Result.PredictedWeight, results[1].Result.PredictedWeight)
	}
}

func TestCompileBatchMatchesSequentialCompile(t *testing.T) {
	core.ResetBuildCache()
	mh := models.H2STO3G().Majorana(1e-12)
	want, err := Compile(context.Background(), "hatt", mh, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	items := make([]BatchItem, 8)
	for i := range items {
		items[i] = BatchItem{Hamiltonian: mh, Spec: "hatt"}
	}
	for _, br := range CompileBatch(context.Background(), items, WithParallelism(8)) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		var a, b bytes.Buffer
		if err := want.Mapping.WriteText(&a); err != nil {
			t.Fatal(err)
		}
		if err := br.Result.Mapping.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("item %d: batch mapping differs from sequential compile", br.Index)
		}
	}
}

func TestCompileBatchPerItemErrors(t *testing.T) {
	items := []BatchItem{
		{Model: "h2"},
		{Model: "no-such-model"},
		{},                                  // neither model nor Hamiltonian
		{Model: "h2", Spec: "no-such-spec"}, // bad method
		{Model: "hubbard:2x2"},
	}
	results := CompileBatch(context.Background(), items, WithParallelism(3))
	if results[0].Err != nil || results[4].Err != nil {
		t.Fatalf("good items failed: %v / %v", results[0].Err, results[4].Err)
	}
	for _, i := range []int{1, 2, 3} {
		if results[i].Err == nil {
			t.Fatalf("item %d: expected an error", i)
		}
		if results[i].Result != nil {
			t.Fatalf("item %d: result and error both set", i)
		}
	}
	if !strings.Contains(results[2].Err.Error(), "Model spec or a Hamiltonian") {
		t.Fatalf("item 2 error = %v", results[2].Err)
	}
}

func TestCompileBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := []BatchItem{{Model: "h2"}, {Model: "hubbard:2x2"}}
	for i, br := range CompileBatch(ctx, items, WithParallelism(2)) {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, br.Err)
		}
	}
}

func TestCompileBatchStreamDeliversAll(t *testing.T) {
	items := []BatchItem{
		{Model: "h2", Spec: "jw"},
		{Model: "h2", Spec: "bk"},
		{Model: "h2", Spec: "parity"},
	}
	seen := make(map[int]bool)
	for br := range CompileBatchStream(context.Background(), items, WithParallelism(3)) {
		if br.Err != nil {
			t.Fatal(br.Err)
		}
		if seen[br.Index] {
			t.Fatalf("index %d delivered twice", br.Index)
		}
		seen[br.Index] = true
	}
	if len(seen) != len(items) {
		t.Fatalf("stream delivered %d results, want %d", len(seen), len(items))
	}
}

func TestPipelineBatch(t *testing.T) {
	pipes := []Pipeline{
		{Model: "h2", Method: "hatt"},
		{Model: "h2", Method: "jw"},
		{Model: "bad-model", Method: "hatt"},
	}
	results := PipelineBatch(context.Background(), pipes, WithParallelism(3))
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for _, i := range []int{0, 1} {
		if results[i].Err != nil {
			t.Fatalf("pipeline %d: %v", i, results[i].Err)
		}
		if results[i].Report == nil || results[i].Report.CNOTs <= 0 {
			t.Fatalf("pipeline %d: bad report", i)
		}
	}
	if results[2].Err == nil {
		t.Fatal("bad model pipeline did not fail")
	}
}

func TestCompileParallelismDeterministic(t *testing.T) {
	// Facade-level reproducibility guarantee: same seed ⇒ byte-identical
	// mapping at any WithParallelism value, for every search method.
	core.ResetBuildCache()
	mh := models.FermiHubbard(2, 2, 1, 4).Majorana(1e-12)
	for _, spec := range []string{"hatt", "beam:4", "anneal"} {
		var want []byte
		for _, par := range []int{1, 2, 8} {
			core.ResetBuildCache()
			res, err := Compile(context.Background(), spec, mh,
				WithParallelism(par), WithSeed(3), WithAnnealRestarts(4),
				WithAnnealSchedule(300, 0, 0))
			if err != nil {
				t.Fatalf("%s par=%d: %v", spec, par, err)
			}
			var buf bytes.Buffer
			if err := res.Mapping.WriteText(&buf); err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = buf.Bytes()
			} else if !bytes.Equal(want, buf.Bytes()) {
				t.Fatalf("%s: mapping differs between parallelism 1 and %d", spec, par)
			}
		}
	}
}
