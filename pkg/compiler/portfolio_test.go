package compiler

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/fermion"
	"repro/internal/models"
)

func portfolioModel(t testing.TB, spec string) *fermion.MajoranaHamiltonian {
	t.Helper()
	h, err := models.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	return h.Majorana(1e-12)
}

func portfolioMappingText(t *testing.T, res *Result) string {
	t.Helper()
	var sb strings.Builder
	if err := res.Mapping.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestPortfolioDeterministicAcrossWorkers is the acceptance criterion:
// portfolio on molecule:14 with a fixed seed returns a byte-identical
// winner at workers 1, 4, and GOMAXPROCS, despite bound-driven
// abandonment firing at different moments on every run.
func TestPortfolioDeterministicAcrossWorkers(t *testing.T) {
	mh := portfolioModel(t, "molecule:14")
	ctx := context.Background()
	var wantText, wantMethod string
	var wantWeight int
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		res, err := Compile(ctx, "portfolio", mh,
			WithSeed(11),
			WithAnnealSchedule(3000, 0, 0),
			WithParallelism(workers),
		)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := res.Mapping.Verify(); err != nil {
			t.Fatalf("workers=%d: invalid winner: %v", workers, err)
		}
		text := portfolioMappingText(t, res)
		if wantText == "" {
			wantText, wantMethod, wantWeight = text, res.Method, res.PredictedWeight
			continue
		}
		if text != wantText {
			t.Errorf("workers=%d: winner mapping diverged from workers=1", workers)
		}
		if res.Method != wantMethod || res.PredictedWeight != wantWeight {
			t.Errorf("workers=%d: winner (%s, %d), want (%s, %d)",
				workers, res.Method, res.PredictedWeight, wantMethod, wantWeight)
		}
	}
}

// TestPortfolioPartialsMonotone pins the anytime contract: partial
// weights strictly decrease, every partial passes the same algebra
// re-validation the fleet fill uses, and the final winner is at least
// as good as the last partial.
func TestPortfolioPartialsMonotone(t *testing.T) {
	mh := portfolioModel(t, "molecule:10")
	var mu sync.Mutex
	var weights []int
	res, err := Compile(context.Background(), "portfolio:hatt+anneal", mh,
		WithSeed(3),
		WithAnnealSchedule(20000, 0, 0),
		WithPartial(func(p PartialResult) {
			mu.Lock()
			defer mu.Unlock()
			if p.Mapping == nil || p.Method == "" {
				t.Errorf("partial missing mapping or method: %+v", p)
				return
			}
			if err := p.Mapping.Verify(); err != nil {
				t.Errorf("partial from %s fails anticommutation validation: %v", p.Method, err)
			}
			if got := p.Mapping.HamiltonianWeight(mh); got != p.Weight {
				t.Errorf("partial from %s reports weight %d, mapping weighs %d", p.Method, p.Weight, got)
			}
			weights = append(weights, p.Weight)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) == 0 {
		t.Fatal("expected at least one partial delivery")
	}
	for i := 1; i < len(weights); i++ {
		if weights[i] >= weights[i-1] {
			t.Fatalf("partial weights not strictly decreasing: %v", weights)
		}
	}
	if res.PredictedWeight > weights[len(weights)-1] {
		t.Fatalf("final weight %d worse than last partial %d", res.PredictedWeight, weights[len(weights)-1])
	}
}

func TestPortfolioSpecParsing(t *testing.T) {
	for _, spec := range []string{
		"portfolio:",
		"portfolio:+",
		"portfolio:hatt+",
		"portfolio:nope",
		"portfolio:beam:0",
		"portfolio:hatt+hatt",
		"portfolio:portfolio",
		"portfolio:portfolio:hatt+anneal",
	} {
		if _, err := Resolve(spec); err == nil {
			t.Errorf("Resolve(%q): expected error", spec)
		}
	}
	for _, spec := range []string{
		"portfolio",
		"portfolio:hatt",
		"portfolio:hatt+beam:8+anneal",
		"portfolio:jw+bk",
	} {
		if _, err := Resolve(spec); err != nil {
			t.Errorf("Resolve(%q): %v", spec, err)
		}
	}
}

// orderHungryLedger ranks adversarially (reverse order) and records
// what it saw, proving the ledger steers scheduling without touching
// the result.
type orderHungryLedger struct {
	mu      sync.Mutex
	ranks   int
	winners []string
	losers  [][]string
}

func (l *orderHungryLedger) Rank(shape string, specs []string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	rev := make([]string, len(specs))
	for i, s := range specs {
		rev[len(specs)-1-i] = s
	}
	l.ranks++
	return rev
}

func (l *orderHungryLedger) Record(shape, winner string, losers []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.winners = append(l.winners, winner)
	l.losers = append(l.losers, losers)
}

// TestPortfolioLedgerSchedulingOnly proves the bandit layer cannot
// change the compiled bytes: an adversarial reverse-ranking ledger
// yields the identical winner, and the race outcome is recorded.
func TestPortfolioLedgerSchedulingOnly(t *testing.T) {
	mh := portfolioModel(t, "molecule:10")
	ctx := context.Background()
	plain, err := Compile(ctx, "portfolio:hatt+beam:2+anneal", mh,
		WithSeed(5), WithAnnealSchedule(2000, 0, 0), WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	led := &orderHungryLedger{}
	steered, err := Compile(ctx, "portfolio:hatt+beam:2+anneal", mh,
		WithSeed(5), WithAnnealSchedule(2000, 0, 0), WithParallelism(2),
		WithMethodLedger(led))
	if err != nil {
		t.Fatal(err)
	}
	if portfolioMappingText(t, plain) != portfolioMappingText(t, steered) {
		t.Fatal("ledger ranking changed the compiled mapping")
	}
	if plain.Method != steered.Method {
		t.Fatalf("ledger ranking changed the winner: %s vs %s", plain.Method, steered.Method)
	}
	led.mu.Lock()
	defer led.mu.Unlock()
	if led.ranks != 1 || len(led.winners) != 1 {
		t.Fatalf("ledger saw %d ranks, %d records; want 1 and 1", led.ranks, len(led.winners))
	}
	if led.winners[0] != steered.Method {
		t.Fatalf("ledger recorded winner %q, race returned %q", led.winners[0], steered.Method)
	}
}

// TestPortfolioCountersAdvance sanity-checks the metrics feed: races
// increment the package counter and outcomes accumulate per method.
func TestPortfolioCountersAdvance(t *testing.T) {
	before := PortfolioRaceCount()
	mh := portfolioModel(t, "molecule:8")
	if _, err := Compile(context.Background(), "portfolio:hatt+jw", mh); err != nil {
		t.Fatal(err)
	}
	if after := PortfolioRaceCount(); after <= before {
		t.Fatalf("race count %d -> %d, want increase", before, after)
	}
	total := int64(0)
	for _, o := range PortfolioOutcomes() {
		if o.Count < 1 {
			t.Errorf("non-positive outcome counter %+v", o)
		}
		total += o.Count
	}
	if total < 2 {
		t.Fatalf("expected at least 2 recorded outcomes, got %d", total)
	}
}

// TestPortfolioWinnerMethodIsRacerSpec pins the anytime API surface:
// the winner's Method is the racer spec, usable directly as a method
// spec for a follow-up compile.
func TestPortfolioWinnerMethodIsRacerSpec(t *testing.T) {
	mh := portfolioModel(t, "molecule:8")
	res, err := Compile(context.Background(), "portfolio:hatt+beam:2", mh)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "hatt" && res.Method != "beam:2" {
		t.Fatalf("winner method %q is not one of the racer specs", res.Method)
	}
	if _, err := Resolve(res.Method); err != nil {
		t.Fatalf("winner method %q does not resolve: %v", res.Method, err)
	}
}
