package compiler

import (
	"context"
	"fmt"

	"repro/internal/fermion"
	"repro/internal/store"
)

// Store is the content-addressed result cache Compile and CompileBatch
// consult when one is attached with WithStore. *store.Store is the
// production implementation (bounded LRU plus optional disk tier); the
// interface is narrow so tests can fake it.
//
// Implementations must be safe for concurrent use: a batch compiles many
// items at once and every one of them consults the store.
type Store interface {
	Get(key store.Key) (*store.Entry, bool)
	Put(key store.Key, entry *store.Entry)
}

// ContextStore is the optional context-aware extension of Store. A
// store whose Get may leave the process — the fleet wrapper dials peers
// — implements GetContext so the compile request's cancellation reaches
// the remote fetch; Compile type-asserts for it and falls back to plain
// Get. In-memory stores have no reason to implement it.
type ContextStore interface {
	Store
	GetContext(ctx context.Context, key store.Key) (*store.Entry, bool)
}

// WithStore attaches a content-addressed result store. Before running a
// method, Compile looks up (Hamiltonian fingerprint, method spec,
// Options.Digest) and returns the stored mapping on a hit — skipping the
// search entirely and marking the Result as Cached; on a miss the
// compiled result is stored for the next caller. Results served from a
// store carry a nil Tree: only the mapping and its scalar outcome fields
// cross the cache boundary.
func WithStore(s Store) Option { return func(o *Options) { o.Store = s } }

// Digest returns a canonical encoding of the options that can change a
// compiled mapping, used as the third component of the store key. Two
// Options values with equal digests are guaranteed to compile every
// (Hamiltonian, spec) pair identically, so they may share cache entries.
//
// Deliberately excluded: Parallelism (the engine's reproducibility
// guarantee — a fixed seed compiles byte-identically at every worker
// count), Progress (an observer), Store itself, and the Pipeline
// synthesis knobs (TrotterSteps, TrotterTime, TermOrder), which shape the
// synthesized circuit downstream of the mapping, not the mapping.
//
// The target device IS folded in (as ";dev=<spec-or-fingerprint>",
// omitted when no device is set so pre-existing unrouted entries stay
// addressable): routed and unrouted compilations of the same problem
// occupy separate store entries, even though the entry payload is the
// mapping either way — the routed circuit is re-derived
// deterministically from it on every hit.
func (o Options) Digest() string {
	d := fmt.Sprintf("v1;bw=%d;vb=%d;ai=%d;ats=%g;ate=%g;tb=%d;seed=%d;ar=%d",
		o.BeamWidth, o.VisitBudget, o.AnnealIters, o.AnnealTStart, o.AnnealTEnd,
		o.TieBreak, o.Seed, o.AnnealRestarts)
	if dev := o.deviceDigest(); dev != "" {
		d += ";dev=" + dev
	}
	return d
}

// storeKey assembles the content address of one compilation.
func storeKey(spec string, mh *fermion.MajoranaHamiltonian, o Options) store.Key {
	return store.Key{Hamiltonian: mh.Fingerprint(), Spec: spec, Options: o.Digest()}
}

// storeLookup consults the attached store, converting a stored entry
// back into a Result. The caller's context rides along when the store
// supports it (ContextStore), so cancelling the compile aborts an
// in-flight peer fetch too.
func storeLookup(ctx context.Context, spec string, mh *fermion.MajoranaHamiltonian, o Options) (*Result, store.Key, bool) {
	key := storeKey(spec, mh, o)
	var (
		e  *store.Entry
		ok bool
	)
	if cs, hasCtx := o.Store.(ContextStore); hasCtx {
		e, ok = cs.GetContext(ctx, key)
	} else {
		e, ok = o.Store.Get(key)
	}
	if !ok {
		return nil, key, false
	}
	return &Result{
		Method:          e.Method,
		Mapping:         e.Mapping,
		PredictedWeight: e.PredictedWeight,
		Optimal:         e.Optimal,
		Visited:         e.Visited,
		Cached:          true,
	}, key, true
}

// storeSave records a freshly compiled result under the precomputed key.
func storeSave(key store.Key, res *Result, o Options) {
	o.Store.Put(key, &store.Entry{
		Method:          res.Method,
		Mapping:         res.Mapping,
		PredictedWeight: res.PredictedWeight,
		Optimal:         res.Optimal,
		Visited:         res.Visited,
	})
}
