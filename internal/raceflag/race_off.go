//go:build !race

// Package raceflag reports whether the race detector is compiled in.
// Allocation-gate tests skip under -race: the instrumented runtime may
// allocate on paths that are allocation-free in normal builds, and the
// race job's purpose is the equivalence fuzz seeds, not alloc counting.
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = false
