package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/pkg/compiler"
)

// fuzzAPI builds an API whose expensive compile stage is stubbed out, so
// the fuzzer exercises exactly the surface under test — HTTP decode,
// validation, and error shaping — at full speed. The model cap is small
// so decode-time model construction stays cheap even for valid inputs.
func fuzzAPI(t testing.TB) (*API, func()) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	a := NewAPI(mgr, nil, WithMaxModes(8))
	a.compile = func(ctx context.Context, req *compileRequest) (*compiler.Result, int, error) {
		m := mapping.JordanWigner(req.mh.Modes)
		return &compiler.Result{Method: req.Method, Mapping: m}, http.StatusOK, nil
	}
	return a, func() { _ = mgr.Shutdown(context.Background()) }
}

// FuzzCompileRequestDecoder holds POST /v1/compile to its contract:
// whatever bytes arrive — malformed JSON, truncated bodies, absurd
// option values, oversized models — the server answers with structured
// JSON and never a 5xx (which would mean a panic or an unclassified
// failure escaped the decoder).
func FuzzCompileRequestDecoder(f *testing.F) {
	seeds := []string{
		`{"model":"h2","method":"hatt"}`,
		`{"model":"hubbard:2x2","method":"beam:8","include_strings":true}`,
		`{"model":"hubbard:2x2","options":{"beam_width":4,"seed":7}}`,
		`{"model":"molecule:4","method":"anneal","options":{"anneal_iters":10,"anneal_t_start":2,"anneal_t_end":0.1}}`,
		`{"hamiltonian":{"modes":2,"terms":[{"coeff":[1,0],"ops":[{"mode":0,"dagger":true},{"mode":0,"dagger":false}]}]}}`,
		// Malformed and truncated bodies.
		`{"model":"h2"`,
		`{`,
		``,
		`null`,
		`[]`,
		`42`,
		`"model"`,
		`{"model":"h2"} trailing`,
		`{"model":"h2","method":"hatt","options":`,
		// Unknown fields and wrong types.
		`{"modell":"h2"}`,
		`{"model":12}`,
		`{"model":"h2","options":{"beam_width":"wide"}}`,
		`{"model":"h2","options":[1,2,3]}`,
		`{"hamiltonian":"not an object"}`,
		// Absurd values.
		`{"model":"hubbard:999999x999999"}`,
		`{"model":"hubbard:-3x2"}`,
		`{"model":"molecule:7"}`,
		`{"model":"h2","method":"beam:0"}`,
		`{"model":"h2","method":"fh:-5"}`,
		`{"model":"h2","options":{"beam_width":2147483647}}`,
		`{"model":"h2","options":{"visit_budget":-9223372036854775808}}`,
		`{"model":"h2","options":{"anneal_iters":999999999999}}`,
		`{"model":"h2","options":{"anneal_t_start":1e308,"anneal_t_end":-1}}`,
		`{"model":"h2","options":{"anneal_restarts":-1}}`,
		`{"model":"h2","options":{"parallelism":1000000}}`,
		`{"model":"h2","options":{"tie_break":"diagonal"}}`,
		`{"model":"h2","timeout_ms":-4}`,
		`{"hamiltonian":{"modes":0,"terms":[]}}`,
		`{"hamiltonian":{"modes":2,"terms":[{"coeff":[1,0],"ops":[{"mode":9,"dagger":true}]}]}}`,
		`{"hamiltonian":{"modes":1000000,"terms":[]}}`,
		// Deep nesting probes the JSON decoder's recursion guard.
		`{"model":` + strings.Repeat(`[`, 500) + strings.Repeat(`]`, 500) + `}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	a, stop := fuzzAPI(f)
	defer stop()
	handler := a.Handler()

	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/compile", strings.NewReader(body))
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)

		if rr.Code >= 500 {
			t.Fatalf("5xx (%d) for body %q: %s", rr.Code, body, rr.Body.String())
		}
		var payload map[string]any
		if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
			t.Fatalf("non-JSON response (%d) for body %q: %s", rr.Code, body, rr.Body.String())
		}
		if rr.Code >= 400 {
			msg, _ := payload["error"].(string)
			if msg == "" {
				t.Fatalf("unstructured %d error for body %q: %s", rr.Code, body, rr.Body.String())
			}
			if payload["status"] != float64(rr.Code) {
				t.Fatalf("error body status %v != header %d for body %q", payload["status"], rr.Code, body)
			}
		}
	})
}
