package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/mapping"
	"repro/internal/pauli"
	"repro/internal/store"
	"repro/pkg/compiler"
)

// ledgerServer is testServer plus an attached portfolio ledger.
func ledgerServer(t *testing.T, led *store.Ledger) *httptest.Server {
	t.Helper()
	st, err := store.Open(64, "")
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(Config{Workers: 2, QueueDepth: 8, Store: st, Ledger: led})
	srv := httptest.NewServer(NewAPI(mgr, st, WithLedger(led)).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	return srv
}

// remapPartial re-runs the partial block's mapping through the same
// anticommutation validation the fleet fill applies to arriving entries.
func remapPartial(t *testing.T, partial map[string]any) *mapping.Mapping {
	t.Helper()
	modes := int(partial["modes"].(float64))
	raw, ok := partial["mapping"].([]any)
	if !ok || len(raw) != 2*modes {
		t.Fatalf("partial mapping has %d strings, want %d", len(raw), 2*modes)
	}
	m := &mapping.Mapping{Name: "partial", Modes: modes, Majoranas: make([]pauli.String, len(raw))}
	for i, v := range raw {
		s, err := pauli.Parse(v.(string))
		if err != nil {
			t.Fatalf("partial string %d: %v", i, err)
		}
		m.Majoranas[i] = s
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("partial mapping fails anticommutation validation: %v", err)
	}
	return m
}

// submitLongPortfolio submits an anneal-heavy portfolio job that runs
// long enough for pollers to observe the race mid-flight.
func submitLongPortfolio(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, body := postJSON(t, srv.URL+"/v1/jobs",
		`{"model":"molecule:12","method":"portfolio:hatt+anneal",
		  "options":{"anneal_iters":2000000,"seed":7}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit payload = %v", body)
	}
	return id
}

// TestJobPartialMonotoneAcrossPolls is the anytime property test: the
// partial weight a poller sees never increases from poll to poll, every
// partial passes algebra re-validation, and the final result is at
// least as good as the last partial.
func TestJobPartialMonotoneAcrossPolls(t *testing.T) {
	srv, _, _ := testServer(t, "")
	id := submitLongPortfolio(t, srv)

	var weights []int
	sawMidRun := false
	deadline := time.After(60 * time.Second)
	for {
		_, job := getJSON(t, srv.URL+"/v1/jobs/"+id+"?include_partial=true")
		if partial, ok := job["partial"].(map[string]any); ok {
			w := int(partial["pauli_weight"].(float64))
			m := remapPartial(t, partial)
			if got := len(m.Majoranas); got == 0 {
				t.Fatal("empty partial mapping")
			}
			if partial["method"] == "" {
				t.Fatalf("partial without producing method: %v", partial)
			}
			if len(weights) == 0 || w != weights[len(weights)-1] {
				weights = append(weights, w)
			}
			if job["state"] == string(StateRunning) {
				sawMidRun = true
			}
		}
		switch job["state"] {
		case "done":
			if len(weights) == 0 {
				t.Fatal("no partial observed on any poll")
			}
			for i := 1; i < len(weights); i++ {
				if weights[i] > weights[i-1] {
					t.Fatalf("partial weight increased across polls: %v", weights)
				}
			}
			result := job["result"].(map[string]any)
			if fw := int(result["pauli_weight"].(float64)); fw > weights[len(weights)-1] {
				t.Fatalf("final weight %d worse than last partial %d", fw, weights[len(weights)-1])
			}
			if !sawMidRun {
				t.Log("job finished before a running-state partial was observed (fast machine); monotonicity still held")
			}
			return
		case "failed", "canceled":
			t.Fatalf("job ended %v: %v", job["state"], job)
		}
		select {
		case <-deadline:
			t.Fatal("job never finished")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestCancelWithPartialReturnsIncumbent pins the anytime bail-out:
// DELETE ?result=partial cancels the job and hands back the validated
// best-so-far mapping in the shared result envelope.
func TestCancelWithPartialReturnsIncumbent(t *testing.T) {
	srv, _, _ := testServer(t, "")
	id := submitLongPortfolio(t, srv)

	// Wait for a validated incumbent to exist before bailing out.
	deadline := time.After(60 * time.Second)
	for {
		_, job := getJSON(t, srv.URL+"/v1/jobs/"+id+"?include_partial=true")
		if job["state"] == "done" {
			t.Skip("job finished before cancel could race it")
		}
		if _, ok := job["partial"].(map[string]any); ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no partial ever appeared")
		case <-time.After(2 * time.Millisecond):
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id+"?result=partial", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	partial, ok := body["partial"].(map[string]any)
	if !ok {
		t.Fatalf("cancel-with-partial returned no partial block: %v", body)
	}
	m := remapPartial(t, partial)
	if w := int(partial["pauli_weight"].(float64)); w <= 0 {
		t.Fatalf("partial weight %d", w)
	}
	if m.Qubits() != int(partial["qubits"].(float64)) {
		t.Fatalf("qubits mismatch: mapping %d, envelope %v", m.Qubits(), partial["qubits"])
	}

	// The incumbent survives the terminal state: a later poll still
	// serves it under include_partial.
	_, job := getJSON(t, srv.URL+"/v1/jobs/"+id+"?include_partial=true")
	if _, ok := job["partial"].(map[string]any); !ok {
		t.Fatalf("partial gone after cancel: %v", job)
	}
	// ...but a plain DELETE response keeps the bare status wire shape.
	req2, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var plain map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&plain); err != nil {
		t.Fatal(err)
	}
	if _, has := plain["partial"]; has {
		t.Fatalf("plain DELETE grew a partial field: %v", plain)
	}
}

// TestJobProgressKeyedByMethod pins the satellite fix: a portfolio
// job's racers no longer clobber each other's progress snapshots, and
// the aggregate best weight is the minimum across methods.
func TestJobProgressKeyedByMethod(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	st, _, err := mgr.Submit(Request{
		Model: "molecule:8",
		Spec:  "portfolio:hatt+anneal",
		Options: []compiler.Option{
			compiler.WithSeed(3),
			compiler.WithAnnealSchedule(5000, 0, 0),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fin, err := mgr.Wait(ctx, st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("job ended %v err=%v", fin.State, err)
	}
	if len(fin.ProgressByMethod) < 2 {
		t.Fatalf("progress_by_method = %v, want entries for both racers", fin.ProgressByMethod)
	}
	minBest := 0
	for spec, p := range fin.ProgressByMethod {
		if p.BestWeight <= 0 {
			t.Errorf("racer %q finished with best_weight %d", spec, p.BestWeight)
		}
		if minBest == 0 || p.BestWeight < minBest {
			minBest = p.BestWeight
		}
	}
	for _, spec := range []string{"hatt", "anneal"} {
		if _, ok := fin.ProgressByMethod[spec]; !ok {
			t.Errorf("progress_by_method missing racer %q: %v", spec, fin.ProgressByMethod)
		}
	}
	if fin.Progress.BestWeight != minBest {
		t.Errorf("aggregate best_weight %d, want min across methods %d", fin.Progress.BestWeight, minBest)
	}
}

// TestPortfolioStatsEndpoint drives a sync portfolio compile through a
// ledger-wired API and checks GET /v1/portfolio/stats reports the win —
// then proves the ledger (and so the stats) survives a daemon restart.
func TestPortfolioStatsEndpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "portfolio_ledger.json")
	led, err := store.OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := ledgerServer(t, led)

	resp, body := postJSON(t, srv.URL+"/v1/compile",
		`{"model":"molecule:8","method":"portfolio:hatt+jw","options":{"seed":5}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %v", resp.StatusCode, body)
	}

	rs, stats := getJSON(t, srv.URL+"/v1/portfolio/stats")
	if rs.StatusCode != http.StatusOK {
		t.Fatalf("portfolio stats: %d", rs.StatusCode)
	}
	ledger, ok := stats["ledger"].(map[string]any)
	if !ok || ledger["plays"].(float64) < 1 {
		t.Fatalf("stats ledger block = %v, want ≥ 1 play", stats)
	}
	shapes, _ := ledger["shapes"].([]any)
	if len(shapes) == 0 {
		t.Fatalf("ledger has no shapes: %v", ledger)
	}
	wins := 0.0
	for _, s := range shapes {
		for _, m := range s.(map[string]any)["methods"].([]any) {
			wins += m.(map[string]any)["wins"].(float64)
		}
	}
	if wins < 1 {
		t.Fatalf("no wins recorded: %v", ledger)
	}
	if stats["races"].(float64) < 1 {
		t.Fatalf("races counter = %v", stats["races"])
	}

	// "Restart": a fresh stack over the same ledger file reports the
	// same rows before running anything.
	led2, err := store.OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := ledgerServer(t, led2)
	_, stats2 := getJSON(t, srv2.URL+"/v1/portfolio/stats")
	ledger2 := stats2["ledger"].(map[string]any)
	if ledger2["plays"] != ledger["plays"] {
		t.Fatalf("ledger plays lost across restart: %v vs %v", ledger2["plays"], ledger["plays"])
	}
	b1, _ := json.Marshal(ledger["shapes"])
	b2, _ := json.Marshal(ledger2["shapes"])
	if !bytes.Equal(b1, b2) {
		t.Fatalf("ledger rows changed across restart:\n%s\n%s", b1, b2)
	}
}

// TestPortfolioStatsWithoutLedger: the route serves an empty—but
// well-formed—payload when the daemon runs without a ledger.
func TestPortfolioStatsWithoutLedger(t *testing.T) {
	srv, _, _ := testServer(t, "")
	rs, stats := getJSON(t, srv.URL+"/v1/portfolio/stats")
	if rs.StatusCode != http.StatusOK {
		t.Fatalf("portfolio stats: %d", rs.StatusCode)
	}
	ledger, ok := stats["ledger"].(map[string]any)
	if !ok {
		t.Fatalf("no ledger block: %v", stats)
	}
	if _, ok := ledger["shapes"].([]any); !ok {
		t.Fatalf("ledger shapes not an array: %v", ledger)
	}
}

// strictDecode proves a payload decodes into a struct with
// DisallowUnknownFields — i.e. the wire carries no fields beyond the
// declared shape.
func strictDecode(t *testing.T, data []byte, v any) {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		t.Fatalf("wire shape drifted: %v\npayload: %s", err, data)
	}
}

// TestResponseWireShapes is the envelope-unification decoder test: the
// sync compile response and the job response decode — unknown fields
// disallowed — into mirrors of the documented shapes, proving the
// refactor onto one shared envelope changed no existing field and added
// only the documented ones.
func TestResponseWireShapes(t *testing.T) {
	type routedShape struct {
		Device      string `json:"device"`
		PhysQubits  int    `json:"physical_qubits"`
		SwapsAdded  int    `json:"swaps_added"`
		CNOTs       int    `json:"cnots"`
		Singles     int    `json:"u3s"`
		Depth       int    `json:"depth"`
		FinalLayout []int  `json:"final_layout"`
		QASM        string `json:"qasm"`
	}
	type envelopeShape struct {
		Model       string          `json:"model"`
		Method      string          `json:"method"`
		Modes       int             `json:"modes"`
		Qubits      int             `json:"qubits"`
		PauliWeight int             `json:"pauli_weight"`
		Optimal     bool            `json:"optimal"`
		Cached      bool            `json:"cached"`
		ElapsedMS   float64         `json:"elapsed_ms"`
		Mapping     []string        `json:"mapping"`
		Routed      *routedShape    `json:"routed"`
		TraceID     string          `json:"trace_id"`
		Trace       json.RawMessage `json:"trace"`
	}
	type jobShape struct {
		ID               string              `json:"id"`
		State            string              `json:"state"`
		Model            string              `json:"model"`
		Spec             string              `json:"spec"`
		Attached         int                 `json:"attached"`
		Progress         Progress            `json:"progress"`
		ProgressByMethod map[string]Progress `json:"progress_by_method"`
		Error            string              `json:"error"`
		Created          time.Time           `json:"created"`
		Elapsed          int64               `json:"elapsed"`
		TraceID          string              `json:"trace_id"`
		Result           *envelopeShape      `json:"result"`
		Partial          *envelopeShape      `json:"partial"`
		Trace            json.RawMessage     `json:"trace"`
	}

	srv, _, _ := testServer(t, "")
	resp, err := http.Post(srv.URL+"/v1/compile", "application/json",
		bytes.NewReader([]byte(`{"model":"h2","method":"hatt","include_strings":true,"device":"linear:4"}`)))
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, raw)
	}
	var env envelopeShape
	strictDecode(t, []byte(raw), &env)
	if env.Model != "h2" || env.Method != "hatt" || env.PauliWeight == 0 || len(env.Mapping) == 0 || env.Routed == nil {
		t.Fatalf("sync envelope missing fields: %+v", env)
	}

	_, sub := postJSON(t, srv.URL+"/v1/jobs", `{"model":"h2","method":"portfolio:hatt+jw"}`)
	id, _ := sub["id"].(string)
	deadline := time.After(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + id + "?include_partial=true")
		if err != nil {
			t.Fatal(err)
		}
		raw := readAll(t, r)
		var job jobShape
		strictDecode(t, []byte(raw), &job)
		if job.State == string(StateDone) {
			if job.Result == nil || len(job.Result.Mapping) == 0 {
				t.Fatalf("done job result incomplete: %s", raw)
			}
			return
		}
		if job.State == string(StateFailed) || job.State == string(StateCanceled) {
			t.Fatalf("job ended %s: %s", job.State, raw)
		}
		select {
		case <-deadline:
			t.Fatal("job never finished")
		case <-time.After(2 * time.Millisecond):
		}
	}
}
