package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// testServer wires a full stack — store (optionally disk-backed),
// manager, API — and tears it down with the test.
func testServer(t *testing.T, dir string) (*httptest.Server, *store.Store, *Manager) {
	t.Helper()
	st, err := store.Open(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(Config{Workers: 2, QueueDepth: 8, Store: st})
	srv := httptest.NewServer(NewAPI(mgr, st).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	return srv, st, mgr
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	return resp, m
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	return resp, m
}

// TestCompileEndToEndCacheHit is the PR's acceptance path: the same
// Hamiltonian + spec + options compiled twice returns byte-identical
// mappings with the second served from the store, and the disk tier
// carries the entry across a process restart.
func TestCompileEndToEndCacheHit(t *testing.T) {
	dir := t.TempDir()
	srv, st, _ := testServer(t, dir)
	req := `{"model":"hubbard:2x2","method":"hatt","include_strings":true}`

	r1, b1 := postJSON(t, srv.URL+"/v1/compile", req)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first compile: %d %v", r1.StatusCode, b1)
	}
	if b1["cached"] != false {
		t.Fatalf("first compile cached = %v", b1["cached"])
	}
	r2, b2 := postJSON(t, srv.URL+"/v1/compile", req)
	if r2.StatusCode != http.StatusOK || b2["cached"] != true {
		t.Fatalf("second compile: %d cached=%v", r2.StatusCode, b2["cached"])
	}
	m1, _ := json.Marshal(b1["mapping"])
	m2, _ := json.Marshal(b2["mapping"])
	if len(m1) == 0 || !bytes.Equal(m1, m2) {
		t.Fatalf("mappings differ between fresh and cached responses:\n%s\n%s", m1, m2)
	}
	if b1["pauli_weight"] != b2["pauli_weight"] || b1["qubits"] != b2["qubits"] {
		t.Fatalf("scalars differ: %v vs %v", b1, b2)
	}
	if got := st.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Fatalf("store stats = %+v, want exactly one hit and one miss", got)
	}

	// /v1/stats reflects the same counters.
	rs, stats := getJSON(t, srv.URL+"/v1/stats")
	if rs.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", rs.StatusCode)
	}
	storeStats, ok := stats["store"].(map[string]any)
	if !ok || storeStats["hits"] != float64(1) {
		t.Fatalf("stats payload = %v, want store.hits = 1", stats)
	}

	// "Process restart": a fresh stack over the same disk tier serves the
	// entry without recompiling.
	srv2, st2, _ := testServer(t, dir)
	r3, b3 := postJSON(t, srv2.URL+"/v1/compile", req)
	if r3.StatusCode != http.StatusOK || b3["cached"] != true {
		t.Fatalf("post-restart compile: %d cached=%v", r3.StatusCode, b3["cached"])
	}
	m3, _ := json.Marshal(b3["mapping"])
	if !bytes.Equal(m1, m3) {
		t.Fatalf("mapping changed across restart:\n%s\n%s", m1, m3)
	}
	if got := st2.Stats(); got.DiskHits != 1 {
		t.Fatalf("restart stats = %+v, want the hit attributed to disk", got)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	srv, _, _ := testServer(t, "")

	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{"model":"h2","method":"jw"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}
	id, _ := body["id"].(string)
	url, _ := body["url"].(string)
	if id == "" || url != "/v1/jobs/"+id {
		t.Fatalf("submit payload = %v", body)
	}

	deadline := time.After(5 * time.Second)
	for {
		r, job := getJSON(t, srv.URL+url)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %v", r.StatusCode, job)
		}
		switch job["state"] {
		case "done":
			result, ok := job["result"].(map[string]any)
			if !ok {
				t.Fatalf("done without result: %v", job)
			}
			if result["method"] != "jw" || result["mapping"] == nil {
				t.Fatalf("result payload = %v", result)
			}
			return
		case "failed", "canceled":
			t.Fatalf("job ended %v: %v", job["state"], job)
		}
		select {
		case <-deadline:
			t.Fatal("job never finished")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestAsyncDedupOverHTTP(t *testing.T) {
	b := newBlocking(t)
	srv, _, _ := testServer(t, "")
	defer close(b.release)

	req := fmt.Sprintf(`{"model":"h2","method":%q}`, b.name)
	_, first := postJSON(t, srv.URL+"/v1/jobs", req)
	<-b.started
	_, second := postJSON(t, srv.URL+"/v1/jobs", req)
	if second["deduped"] != true || second["id"] != first["id"] {
		t.Fatalf("in-flight duplicate not attached: %v vs %v", second, first)
	}
}

func TestJobCancelOverHTTP(t *testing.T) {
	b := newBlocking(t)
	srv, _, _ := testServer(t, "")

	_, sub := postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(`{"model":"h2","method":%q}`, b.name))
	id, _ := sub["id"].(string)
	<-b.started

	reqDel, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	deadline := time.After(5 * time.Second)
	for {
		_, job := getJSON(t, srv.URL+"/v1/jobs/"+id)
		if job["state"] == "canceled" {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job not canceled: %v", job)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestQueueFullIs429(t *testing.T) {
	b := newBlocking(t)
	st, err := store.Open(8, "")
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(Config{Workers: 1, QueueDepth: 1, Store: st})
	srv := httptest.NewServer(NewAPI(mgr, st).Handler())
	defer func() {
		srv.Close()
		close(b.release)
		_ = mgr.Shutdown(context.Background())
	}()

	// One running, one queued, then backpressure.
	postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(`{"model":"h2","method":%q}`, b.name))
	<-b.started
	postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(`{"model":"hubbard:1x2","method":%q}`, b.name))
	resp, body := postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(`{"model":"hubbard:1x3","method":%q}`, b.name))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull submit: %d %v", resp.StatusCode, body)
	}
	if body["error"] == nil || body["status"] != float64(429) {
		t.Fatalf("429 body not structured: %v", body)
	}
}

func TestMethodsHealthzAndErrors(t *testing.T) {
	srv, _, _ := testServer(t, "")

	r, body := getJSON(t, srv.URL+"/v1/methods")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("methods: %d", r.StatusCode)
	}
	methods, _ := body["methods"].([]any)
	found := false
	for _, m := range methods {
		if m == "hatt" {
			found = true
		}
	}
	if !found {
		t.Fatalf("methods payload missing hatt: %v", body)
	}

	if r, body := getJSON(t, srv.URL+"/v1/healthz"); r.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: %d %v", r.StatusCode, body)
	}

	for name, tc := range map[string]struct {
		body string
		code int
	}{
		"bad json":         {`{not json`, http.StatusBadRequest},
		"unknown field":    {`{"modell":"h2"}`, http.StatusBadRequest},
		"unknown method":   {`{"model":"h2","method":"nope"}`, http.StatusBadRequest},
		"unknown model":    {`{"model":"nope"}`, http.StatusBadRequest},
		"no model":         {`{"method":"hatt"}`, http.StatusBadRequest},
		"oversized model":  {`{"model":"hubbard:10x10"}`, http.StatusUnprocessableEntity},
		"absurd beam":      {`{"model":"h2","method":"beam","options":{"beam_width":100000}}`, http.StatusBadRequest},
		"negative budget":  {`{"model":"h2","options":{"visit_budget":-1}}`, http.StatusBadRequest},
		"bad tiebreak":     {`{"model":"h2","options":{"tie_break":"sideways"}}`, http.StatusBadRequest},
		"trailing garbage": {`{"model":"h2"} extra`, http.StatusBadRequest},
		"bad hamiltonian":  {`{"hamiltonian":{"modes":-3}}`, http.StatusBadRequest},
	} {
		resp, body := postJSON(t, srv.URL+"/v1/compile", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%v)", name, resp.StatusCode, tc.code, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("%s: error body not structured: %v", name, body)
		}
	}

	if r, _ := getJSON(t, srv.URL+"/v1/jobs/job-424242"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", r.StatusCode)
	}
}

func TestCustomHamiltonianRequest(t *testing.T) {
	srv, _, _ := testServer(t, "")
	req := `{"hamiltonian":{"modes":2,"terms":[{"coeff":[1,0],"ops":[{"mode":0,"dagger":true},{"mode":0,"dagger":false}]}]},"method":"jw","include_strings":true}`
	resp, body := postJSON(t, srv.URL+"/v1/compile", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("custom hamiltonian compile: %d %v", resp.StatusCode, body)
	}
	if body["model"] != "custom" || body["qubits"] != float64(2) {
		t.Fatalf("payload = %v", body)
	}
}

func TestSyncCompileTimeout(t *testing.T) {
	b := newBlocking(t)
	srv, _, _ := testServer(t, "")
	defer close(b.release)

	resp, body := postJSON(t, srv.URL+"/v1/compile",
		fmt.Sprintf(`{"model":"h2","method":%q,"timeout_ms":50}`, b.name))
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("timed-out compile: %d %v", resp.StatusCode, body)
	}
}
