package service

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/version"
	"repro/pkg/compiler"
)

// WithObservability attaches a metrics registry and a trace buffer to
// the API. NewAPI creates private defaults when the option is absent, so
// the middleware and /v1/traces always work; hattd passes shared
// instances so the daemon can also mount GET /metrics and expvar off
// the same registry.
func WithObservability(reg *obs.Registry, tracer *obs.Tracer) APIOption {
	return func(a *API) {
		if reg != nil {
			a.reg = reg
		}
		if tracer != nil {
			a.tracer = tracer
		}
	}
}

// Registry exposes the API's metrics registry (always non-nil after
// NewAPI) so the daemon can register process-level collectors on it.
func (a *API) Registry() *obs.Registry { return a.reg }

// Tracer exposes the API's trace buffer (always non-nil after NewAPI).
func (a *API) Tracer() *obs.Tracer { return a.tracer }

// MetricsHandler serves the registry in Prometheus text exposition
// format; hattd mounts it at GET /metrics beside the /v1 surface.
func (a *API) MetricsHandler() http.Handler { return a.reg.Handler() }

// registerMetrics declares the API's metric families. Everything here
// reads the same underlying counters /v1/stats reports — the atomics on
// the API, the manager's queue and job table, store.Stats, fleet.Stats,
// fault.Stats — so the two surfaces cannot drift (the stats-vs-metrics
// equality test holds them together).
func (a *API) registerMetrics() {
	reg := a.reg
	a.reqHist = reg.Histogram("hatt_http_request_duration_seconds",
		"HTTP request latency by route and status.", obs.DefLatencyBuckets, "route", "status")
	stage := reg.Histogram("hatt_stage_duration_seconds",
		"Compilation pipeline stage duration by stage and method.", obs.DefLatencyBuckets, "stage", "method")
	a.tracer.SetStageHistogram(stage)

	reg.GaugeFunc("hatt_http_inflight_sync", "Synchronous compiles currently in flight.", nil,
		func() []obs.Sample { return []obs.Sample{{Value: float64(a.inflight.Load())}} })
	reg.CounterFunc("hatt_http_shed_total", "Synchronous compiles shed by the in-flight cap.", nil,
		func() []obs.Sample { return []obs.Sample{{Value: float64(a.shedSync.Load())}} })
	reg.GaugeFunc("hatt_uptime_seconds", "Seconds since the API started.", nil,
		func() []obs.Sample { return []obs.Sample{{Value: time.Since(a.started).Seconds()}} })
	reg.GaugeFunc("hatt_build_info", "Build metadata; value is always 1.", []string{"version"},
		func() []obs.Sample { return []obs.Sample{{Labels: []string{version.Version}, Value: 1}} })

	reg.GaugeFunc("hatt_traces_buffered", "Traces currently held in the span buffer.", nil,
		func() []obs.Sample { return []obs.Sample{{Value: float64(a.tracer.Len())}} })
	reg.CounterFunc("hatt_traces_evicted_total", "Traces evicted from the span buffer.", nil,
		func() []obs.Sample { return []obs.Sample{{Value: float64(a.tracer.Evicted())}} })

	if a.mgr != nil {
		reg.GaugeFunc("hatt_jobs_queue_depth", "Pending jobs in the manager queue.", nil,
			func() []obs.Sample {
				n, _ := a.mgr.QueueDepth()
				return []obs.Sample{{Value: float64(n)}}
			})
		reg.GaugeFunc("hatt_jobs_queue_capacity", "Capacity of the manager queue.", nil,
			func() []obs.Sample {
				_, c := a.mgr.QueueDepth()
				return []obs.Sample{{Value: float64(c)}}
			})
		reg.GaugeFunc("hatt_jobs", "Retained jobs by lifecycle state.", []string{"state"},
			func() []obs.Sample {
				counts := a.mgr.Counts()
				out := make([]obs.Sample, 0, len(counts))
				for state, n := range counts {
					out = append(out, obs.Sample{Labels: []string{string(state)}, Value: float64(n)})
				}
				return out
			})
	}
	if a.store != nil {
		reg.CounterFunc("hatt_store_lookups_total", "Store lookups by result.", []string{"result"},
			func() []obs.Sample {
				st := a.store.Stats()
				return []obs.Sample{
					{Labels: []string{"hit"}, Value: float64(st.Hits)},
					{Labels: []string{"miss"}, Value: float64(st.Misses)},
				}
			})
		reg.CounterFunc("hatt_store_puts_total", "Entries stored.", nil,
			func() []obs.Sample { return []obs.Sample{{Value: float64(a.store.Stats().Puts)}} })
		reg.CounterFunc("hatt_store_evictions_total", "Memory-tier LRU evictions.", nil,
			func() []obs.Sample { return []obs.Sample{{Value: float64(a.store.Stats().Evictions)}} })
		reg.GaugeFunc("hatt_store_entries", "Current memory-tier entry count.", nil,
			func() []obs.Sample { return []obs.Sample{{Value: float64(a.store.Stats().Entries)}} })
		reg.CounterFunc("hatt_store_disk_total", "Disk-tier events by kind.", []string{"kind"},
			func() []obs.Sample {
				st := a.store.Stats()
				return []obs.Sample{
					{Labels: []string{"hit"}, Value: float64(st.DiskHits)},
					{Labels: []string{"write"}, Value: float64(st.DiskWrites)},
					{Labels: []string{"error"}, Value: float64(st.DiskErrors)},
					{Labels: []string{"quarantine"}, Value: float64(st.DiskQuarantines)},
				}
			})
	}
	if a.fleet != nil {
		reg.CounterFunc("hatt_fleet_peer_fetch_total", "Peer cache-fill attempts by outcome.", []string{"outcome"},
			func() []obs.Sample {
				st := a.fleet.Stats()
				return []obs.Sample{
					{Labels: []string{"hit"}, Value: float64(st.PeerHits)},
					{Labels: []string{"miss"}, Value: float64(st.PeerMiss)},
					{Labels: []string{"error"}, Value: float64(st.PeerError)},
					{Labels: []string{"skip"}, Value: float64(st.PeerSkips)},
				}
			})
		reg.GaugeFunc("hatt_fleet_breaker_state", "Per-peer breaker state (0 closed, 1 half-open, 2 open).", []string{"peer"},
			func() []obs.Sample {
				st := a.fleet.Stats()
				out := make([]obs.Sample, 0, len(st.Breakers))
				for peer, b := range st.Breakers {
					v := 0.0
					switch b.State {
					case "half_open":
						v = 1
					case "open":
						v = 2
					}
					out = append(out, obs.Sample{Labels: []string{peer}, Value: v})
				}
				return out
			})
		reg.CounterFunc("hatt_fleet_breaker_transitions_total", "Breaker state transitions by peer and kind.",
			[]string{"peer", "transition"},
			func() []obs.Sample {
				st := a.fleet.Stats()
				out := make([]obs.Sample, 0, 3*len(st.Breakers))
				for peer, b := range st.Breakers {
					out = append(out,
						obs.Sample{Labels: []string{peer, "open"}, Value: float64(b.Opens)},
						obs.Sample{Labels: []string{peer, "half_open"}, Value: float64(b.HalfOpens)},
						obs.Sample{Labels: []string{peer, "close"}, Value: float64(b.Closes)},
					)
				}
				return out
			})
	}
	// Portfolio race counters read the compiler's package-level counters
	// directly, so they report whether or not a ledger is attached.
	reg.CounterFunc("hatt_portfolio_races_total", "Portfolio races started.", nil,
		func() []obs.Sample { return []obs.Sample{{Value: float64(compiler.PortfolioRaceCount())}} })
	reg.CounterFunc("hatt_portfolio_outcomes_total", "Portfolio racer outcomes by method and outcome.",
		[]string{"method", "outcome"},
		func() []obs.Sample {
			outcomes := compiler.PortfolioOutcomes()
			out := make([]obs.Sample, 0, len(outcomes))
			for _, o := range outcomes {
				out = append(out, obs.Sample{Labels: []string{o.Method, o.Outcome}, Value: float64(o.Count)})
			}
			return out
		})

	reg.CounterFunc("hatt_fault_injections_total", "Fault injections fired by site.", []string{"site"},
		func() []obs.Sample {
			fired := fault.Stats()
			out := make([]obs.Sample, 0, len(fired))
			for site, n := range fired {
				out = append(out, obs.Sample{Labels: []string{site}, Value: float64(n)})
			}
			return out
		})
}

// statusWriter captures the response status for the access log and the
// request-latency histogram.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// quietRoutes are polled by probes and scrapers; their access-log lines
// go out at debug so steady-state logs stay readable.
var quietRoutes = map[string]bool{
	"GET /v1/healthz": true,
	"GET /v1/readyz":  true,
	"GET /v1/stats":   true,
}

// observe is the edge middleware: it adopts an incoming W3C traceparent
// (or mints a fresh trace), opens the http.request root span, echoes the
// trace ID in the Trace-Id response header, and feeds the route/status
// latency histogram and the structured access log. It wraps the route
// mux, so every /v1 handler — and everything the compile paths call
// below it — sees the trace context in the request context.
func (a *API) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := obs.WithTracer(r.Context(), a.tracer)
		if sc, ok := obs.TraceparentFrom(r.Header); ok {
			ctx = obs.WithSpanContext(ctx, sc)
		}
		ctx, span := obs.StartSpan(ctx, "http.request")
		if span != nil {
			w.Header().Set("Trace-Id", span.Context().TraceID.String())
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		r2 := r.WithContext(ctx)
		start := time.Now()
		next.ServeHTTP(sw, r2)
		elapsed := time.Since(start)

		// The mux assigns the matched pattern on the request it routed, so
		// after ServeHTTP the label is the route shape ("GET /v1/jobs/{id}"),
		// never a high-cardinality concrete path.
		route := r2.Pattern
		if route == "" {
			route = "unmatched"
		}
		status := strconv.Itoa(sw.code)
		span.SetAttr("route", route)
		span.SetAttr("status", status)
		span.End()
		a.reqHist.Observe(elapsed.Seconds(), route, status)

		logger := obs.L(ctx)
		if quietRoutes[route] {
			logger.Debug("http request", "route", route, "status", sw.code,
				"duration_ms", float64(elapsed.Microseconds())/1000)
			return
		}
		logger.Info("http request", "route", route, "status", sw.code,
			"duration_ms", float64(elapsed.Microseconds())/1000)
	})
}

// handleTraces serves one buffered trace: the spans recorded under the
// trace ID a compile responded with (Trace-Id header, trace_id field).
// 400 for a malformed ID, 404 once the trace has aged out of the buffer.
func (a *API) handleTraces(w http.ResponseWriter, r *http.Request) {
	id, err := obs.ParseTraceID(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	snap, ok := a.tracer.Snapshot(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "service: no buffered trace with this ID")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}
