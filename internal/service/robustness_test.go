package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/pkg/compiler"
)

// TestRetryAfterOnBackpressure holds the 429 and 503 paths to the
// documented contract: both carry a Retry-After header so clients know
// how long to back off.
func TestRetryAfterOnBackpressure(t *testing.T) {
	b := newBlocking(t)
	mgr := New(Config{Workers: 1, QueueDepth: 1})
	srv := httptest.NewServer(NewAPI(mgr, nil).Handler())
	defer srv.Close()

	postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(`{"model":"h2","method":%q}`, b.name))
	<-b.started
	postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(`{"model":"hubbard:1x2","method":%q}`, b.name))
	resp, _ := postJSON(t, srv.URL+"/v1/jobs", fmt.Sprintf(`{"model":"hubbard:1x3","method":%q}`, b.name))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != retryAfterBackpressure {
		t.Fatalf("429 Retry-After = %q, want %q", resp.Header.Get("Retry-After"), retryAfterBackpressure)
	}

	close(b.release)
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, srv.URL+"/v1/jobs", `{"model":"h2"}`)
	if resp.StatusCode != http.StatusServiceUnavailable || body["error"] == nil {
		t.Fatalf("draining submit: %d %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != retryAfterDraining {
		t.Fatalf("503 Retry-After = %q, want %q", resp.Header.Get("Retry-After"), retryAfterDraining)
	}
}

// TestReadyzDrainingDegrades checks the liveness/readiness split: a
// draining node keeps answering healthz 200 while readyz flips to 503
// with the reason named.
func TestReadyzDrainingDegrades(t *testing.T) {
	srv, _, mgr := testServer(t, "")

	if r, body := getJSON(t, srv.URL+"/v1/readyz"); r.StatusCode != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("idle readyz: %d %v", r.StatusCode, body)
	}
	if err := mgr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	r, body := getJSON(t, srv.URL+"/v1/readyz")
	if r.StatusCode != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("draining readyz: %d %v", r.StatusCode, body)
	}
	if !strings.Contains(fmt.Sprint(body["reasons"]), "draining") {
		t.Fatalf("reasons missing draining: %v", body["reasons"])
	}
	if r, body := getJSON(t, srv.URL+"/v1/healthz"); r.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("draining node failed liveness: %d %v", r.StatusCode, body)
	}
}

// TestReadyzDiskDegradation drives the whole loop over HTTP: an
// injected disk-write failure flips readyz to degraded (the compile
// itself still succeeds — the memory tier masks the loss), the next
// successful write heals it, and /v1/stats carries the fault block
// while the plan is armed.
func TestReadyzDiskDegradation(t *testing.T) {
	srv, _, _ := testServer(t, t.TempDir())
	if err := fault.Arm("seed=1;store.disk.write=error*1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disarm)

	if resp, body := postJSON(t, srv.URL+"/v1/compile", `{"model":"h2"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile under disk fault: %d %v", resp.StatusCode, body)
	}
	r, body := getJSON(t, srv.URL+"/v1/readyz")
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after disk-write failure: %d %v", r.StatusCode, body)
	}
	if !strings.Contains(fmt.Sprint(body["reasons"]), "disk") {
		t.Fatalf("reasons missing disk tier: %v", body["reasons"])
	}
	if _, stats := getJSON(t, srv.URL+"/v1/stats"); stats["fault"] == nil || stats["overload"] == nil {
		t.Fatalf("stats missing fault/overload blocks: %v", stats)
	}

	// The fault burst is spent; the next disk write succeeds and heals.
	if resp, _ := postJSON(t, srv.URL+"/v1/compile", `{"model":"hubbard:1x2"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("healing compile: %d", resp.StatusCode)
	}
	if r, body := getJSON(t, srv.URL+"/v1/readyz"); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz after heal: %d %v", r.StatusCode, body)
	}
}

// TestSyncInFlightCapSheds pins the admission gate on POST /v1/compile:
// past the cap, requests shed with 429 + Retry-After without entering
// the compile path, and the slot frees once the request finishes.
func TestSyncInFlightCapSheds(t *testing.T) {
	st, err := store.Open(8, "")
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(Config{Workers: 1, QueueDepth: 4, Store: st})
	defer mgr.Shutdown(context.Background())
	api := NewAPI(mgr, st, WithMaxInFlight(1))

	var once sync.Once
	started := make(chan struct{})
	release := make(chan struct{})
	api.compile = func(ctx context.Context, req *compileRequest) (*compiler.Result, int, error) {
		once.Do(func() { close(started) })
		<-release
		return nil, http.StatusBadRequest, errors.New("stub finished")
	}
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postJSON(t, srv.URL+"/v1/compile", `{"model":"h2"}`)
	}()
	<-started
	resp, body := postJSON(t, srv.URL+"/v1/compile", `{"model":"h2"}`)
	if resp.StatusCode != http.StatusTooManyRequests || body["error"] == nil {
		t.Fatalf("over-cap compile: %d %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != retryAfterBackpressure {
		t.Fatalf("shed Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	close(release)
	wg.Wait()
	if resp, _ := postJSON(t, srv.URL+"/v1/compile", `{"model":"h2"}`); resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("in-flight slot not released after request finished")
	}
}

// TestWorkerPanicFailsJobOnly injects service.worker.panic: the job
// fails with the panic message, the worker survives, and the next job
// on the same (single-worker) pool compiles normally.
func TestWorkerPanicFailsJobOnly(t *testing.T) {
	if err := fault.Arm("seed=1;service.worker.panic=error*1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disarm)
	mgr := New(Config{Workers: 1, QueueDepth: 4})
	defer mgr.Shutdown(context.Background())

	doomed, _, err := mgr.Submit(Request{Model: "h2"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := mgr.Wait(context.Background(), doomed.ID)
	if err != nil || st.State != StateFailed || !strings.Contains(st.Error, "panicked") {
		t.Fatalf("doomed job: %+v err=%v", st, err)
	}

	next, _, err := mgr.Submit(Request{Model: "hubbard:1x2"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := mgr.Wait(context.Background(), next.ID); err != nil || st.State != StateDone {
		t.Fatalf("worker did not survive the panic: %+v err=%v", st, err)
	}
}
