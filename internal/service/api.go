package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/fermion"
	"repro/internal/fleet"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/version"
	"repro/pkg/compiler"
)

// API is the JSON-over-HTTP surface hattd mounts. Every error response
// is a structured JSON object ({"error": ..., "status": ...}); malformed
// or absurd input is always a 4xx, never a panic.
type API struct {
	mgr      *Manager
	store    *store.Store  // may be nil; used for /v1/stats and /v1/store/{address}
	fleet    *fleet.Store  // may be nil; used for the /v1/stats fleet block
	ledger   *store.Ledger // may be nil; behind GET /v1/portfolio/stats
	maxModes int
	timeout  time.Duration
	started  time.Time

	// maxInFlight caps concurrent synchronous compiles; excess requests
	// are shed with 429 + Retry-After instead of queueing behind each
	// other until every worker thread is pinned.
	maxInFlight int
	inflight    atomic.Int64
	shedSync    atomic.Int64

	// compile is the sync-compile entry point, indirect so tests (and
	// the request-decoder fuzzer) can stub the expensive part out.
	compile func(ctx context.Context, req *compileRequest) (*compiler.Result, int, error)

	// Observability: the metric registry behind GET /metrics, the span
	// buffer behind GET /v1/traces/{id}, and the request-latency
	// histogram the observe middleware feeds. NewAPI always populates
	// them (see WithObservability).
	reg     *obs.Registry
	tracer  *obs.Tracer
	reqHist *obs.Histogram
}

// Request-size guardrails, tuned to keep one malicious request from
// monopolizing the daemon.
const (
	DefaultMaxModes   = 64
	DefaultTimeout    = 5 * time.Minute
	maxBodyBytes      = 1 << 20 // 1 MiB request bodies
	maxBeamWidth      = 4096
	maxAnnealIters    = 100_000_000
	maxAnnealRestarts = 4096
	maxParallelism    = 4096
)

// Retry-After guidance (seconds) attached to shed and draining
// responses so well-behaved clients back off the right amount: shed
// work clears in about a queue-drain interval, a draining node needs
// its replacement to come up.
const (
	retryAfterBackpressure = "1"
	retryAfterDraining     = "5"
)

// APIOption configures NewAPI.
type APIOption func(*API)

// WithMaxModes caps the model size a request may name (≤ 0 keeps
// DefaultMaxModes).
func WithMaxModes(n int) APIOption {
	return func(a *API) {
		if n > 0 {
			a.maxModes = n
		}
	}
}

// WithSyncTimeout bounds each synchronous /v1/compile call (≤ 0 keeps
// DefaultTimeout).
func WithSyncTimeout(d time.Duration) APIOption {
	return func(a *API) {
		if d > 0 {
			a.timeout = d
		}
	}
}

// WithFleet attaches the node's fleet store so /v1/stats reports the
// peer cache-fill counters. The compile paths pick the fleet store up
// through the manager's Config.Store; this option only feeds
// observability.
func WithFleet(f *fleet.Store) APIOption {
	return func(a *API) { a.fleet = f }
}

// WithLedger attaches the portfolio win/loss ledger so GET
// /v1/portfolio/stats can serve it. Compile paths pick the ledger up
// through the manager's Config.Ledger (async) and directly here (sync);
// this option also feeds the sync path when the manager has none.
func WithLedger(l *store.Ledger) APIOption {
	return func(a *API) { a.ledger = l }
}

// WithMaxInFlight caps how many synchronous /v1/compile requests run
// concurrently; requests beyond the cap are shed with 429 and a
// Retry-After header (≤ 0 keeps the default, 4 × GOMAXPROCS).
func WithMaxInFlight(n int) APIOption {
	return func(a *API) {
		if n > 0 {
			a.maxInFlight = n
		}
	}
}

// NewAPI wires the HTTP surface over a job manager and an optional
// store (the same one the manager's jobs consult, surfaced in
// /v1/stats).
func NewAPI(mgr *Manager, st *store.Store, opts ...APIOption) *API {
	a := &API{
		mgr:         mgr,
		store:       st,
		maxModes:    DefaultMaxModes,
		timeout:     DefaultTimeout,
		maxInFlight: 4 * runtime.GOMAXPROCS(0),
		started:     time.Now(),
	}
	a.compile = a.compileSync
	for _, o := range opts {
		o(a)
	}
	if a.reg == nil {
		a.reg = obs.NewRegistry()
	}
	if a.tracer == nil {
		a.tracer = obs.NewTracer(obs.DefaultTraceCapacity) //hatt:lint-ignore apierr 512 is a trace-buffer capacity, not a status code
	}
	// Async jobs trace through the manager; give it the same buffer so a
	// job's spans land in the trace of the request that submitted it.
	if mgr != nil {
		mgr.setTracer(a.tracer)
	}
	a.registerMetrics()
	return a
}

// routeTable returns every registered route pattern paired with its
// handler. Handler and Routes both consume this one table, so the served
// mux and the documented route list cannot drift apart — which is what
// lets the doc-sync test hold docs/api.md to the real surface.
func (a *API) routeTable() []struct {
	pattern string
	handler http.HandlerFunc
} {
	return []struct {
		pattern string
		handler http.HandlerFunc
	}{
		{"POST /v1/compile", a.handleCompile},
		{"POST /v1/jobs", a.handleSubmit},
		{"GET /v1/jobs/{id}", a.handleJobStatus},
		{"DELETE /v1/jobs/{id}", a.handleJobCancel},
		{"GET /v1/portfolio/stats", a.handlePortfolioStats},
		{"GET /v1/methods", a.handleMethods},
		{"GET /v1/devices", a.handleDevices},
		{"GET /v1/store/{address}", a.handleStoreExport},
		{"GET /v1/traces/{id}", a.handleTraces},
		{"GET /v1/healthz", a.handleHealthz},
		{"GET /v1/readyz", a.handleReadyz},
		{"GET /v1/stats", a.handleStats},
	}
}

// Routes lists every registered route pattern ("METHOD /v1/path"). The
// doc-sync test asserts docs/api.md documents exactly this set.
func Routes() []string {
	var a API
	table := a.routeTable()
	routes := make([]string, len(table))
	for i, r := range table {
		routes[i] = r.pattern
	}
	return routes
}

// Handler returns the route table as an http.Handler. Method mismatches
// get 405 from the mux's pattern matching; everything else lands in a
// handler that only writes JSON.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range a.routeTable() {
		mux.HandleFunc(r.pattern, r.handler)
	}
	return a.observe(recoverJSON(mux))
}

// recoverJSON is the outermost safety net: a panic escaping any handler
// becomes a structured 500 instead of a torn connection. Handlers are
// written not to panic — the fuzzer holds them to "4xx on bad input" —
// so this exists for defense in depth, not control flow.
func recoverJSON(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeErr(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// apiError carries a status code with its message.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg, "status": code})
}

func writeAPIErr(w http.ResponseWriter, err error) {
	var ae *apiError
	if errors.As(err, &ae) {
		writeErr(w, ae.code, ae.msg)
		return
	}
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", retryAfterBackpressure)
		writeErr(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", retryAfterDraining)
		//hatt:lint-ignore apierr 503 is the contract for a draining daemon, not a handler bug
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err.Error())
	default:
		writeErr(w, http.StatusBadRequest, err.Error())
	}
}

// compileRequest is the wire shape of POST /v1/compile and POST
// /v1/jobs. Unknown fields are rejected so typos fail loudly instead of
// silently compiling with defaults.
type compileRequest struct {
	Model       string          `json:"model,omitempty"`
	Hamiltonian json.RawMessage `json:"hamiltonian,omitempty"` // fermion JSON, alternative to Model
	Method      string          `json:"method,omitempty"`
	Options     *requestOptions `json:"options,omitempty"`
	TimeoutMS   int64           `json:"timeout_ms,omitempty"`
	Strings     bool            `json:"include_strings,omitempty"`
	// Device targets a catalog coupling graph by spec (montreal,
	// sycamore, manhattan, linear:<n>, grid:<r>x<c>); CustomDevice is an
	// arch.DeviceSpec JSON edge list. Either makes the compile route the
	// synthesized circuit and report routed metrics.
	Device       string          `json:"device,omitempty"`
	CustomDevice json.RawMessage `json:"custom_device,omitempty"`
	// Trace asks the response to embed the request's span timeline (the
	// trace ID is always surfaced via the Trace-Id header regardless).
	Trace bool `json:"trace,omitempty"`

	mh      *fermion.MajoranaHamiltonian // resolved by decodeCompileRequest
	devOpts []compiler.Option            // resolved device options
	// routedQASM gates embedding the routed circuit text in responses.
	// For sync compiles it mirrors Strings; for job polls it is the
	// submission's include_strings (mapping strings stay unconditional
	// there — the async flow has no other endpoint to fetch them from,
	// but the routed QASM can be hundreds of KB per poll).
	routedQASM bool
}

// requestOptions is the JSON mirror of the compiler's result-affecting
// options plus parallelism.
type requestOptions struct {
	BeamWidth      int     `json:"beam_width,omitempty"`
	VisitBudget    int64   `json:"visit_budget,omitempty"`
	AnnealIters    int     `json:"anneal_iters,omitempty"`
	AnnealTStart   float64 `json:"anneal_t_start,omitempty"`
	AnnealTEnd     float64 `json:"anneal_t_end,omitempty"`
	TieBreak       string  `json:"tie_break,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	AnnealRestarts int     `json:"anneal_restarts,omitempty"`
	Parallelism    int     `json:"parallelism,omitempty"`
}

// compilerOptions validates the wire options and lowers them onto the
// facade's functional options.
func (ro *requestOptions) compilerOptions() ([]compiler.Option, *apiError) {
	if ro == nil {
		return nil, nil
	}
	var opts []compiler.Option
	switch {
	case ro.BeamWidth < 0 || ro.BeamWidth > maxBeamWidth:
		return nil, badRequest("beam_width %d out of range [0, %d]", ro.BeamWidth, maxBeamWidth)
	case ro.BeamWidth > 0:
		opts = append(opts, compiler.WithBeamWidth(ro.BeamWidth))
	}
	if ro.VisitBudget < 0 {
		return nil, badRequest("visit_budget %d must be ≥ 0", ro.VisitBudget)
	}
	if ro.VisitBudget > 0 {
		opts = append(opts, compiler.WithVisitBudget(ro.VisitBudget))
	}
	switch {
	case ro.AnnealIters < 0 || ro.AnnealIters > maxAnnealIters:
		return nil, badRequest("anneal_iters %d out of range [0, %d]", ro.AnnealIters, maxAnnealIters)
	case !finiteNonNeg(ro.AnnealTStart) || !finiteNonNeg(ro.AnnealTEnd):
		return nil, badRequest("anneal temperatures must be finite and ≥ 0")
	case ro.AnnealIters > 0 || ro.AnnealTStart > 0 || ro.AnnealTEnd > 0:
		opts = append(opts, compiler.WithAnnealSchedule(ro.AnnealIters, ro.AnnealTStart, ro.AnnealTEnd))
	}
	if ro.TieBreak != "" {
		tb, err := parseTieBreak(ro.TieBreak)
		if err != nil {
			return nil, err
		}
		opts = append(opts, compiler.WithTieBreak(tb))
	}
	if ro.Seed != 0 {
		opts = append(opts, compiler.WithSeed(ro.Seed))
	}
	switch {
	case ro.AnnealRestarts < 0 || ro.AnnealRestarts > maxAnnealRestarts:
		return nil, badRequest("anneal_restarts %d out of range [0, %d]", ro.AnnealRestarts, maxAnnealRestarts)
	case ro.AnnealRestarts > 0:
		opts = append(opts, compiler.WithAnnealRestarts(ro.AnnealRestarts))
	}
	switch {
	case ro.Parallelism < 0 || ro.Parallelism > maxParallelism:
		return nil, badRequest("parallelism %d out of range [0, %d]", ro.Parallelism, maxParallelism)
	case ro.Parallelism > 0:
		opts = append(opts, compiler.WithParallelism(ro.Parallelism))
	}
	return opts, nil
}

func finiteNonNeg(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0) && f >= 0
}

func parseTieBreak(s string) (compiler.TieBreak, *apiError) {
	switch s {
	case "first":
		return compiler.TieFirst, nil
	case "depth":
		return compiler.TieDepth, nil
	case "support":
		return compiler.TieSupport, nil
	}
	return 0, badRequest("tie_break %q unknown (want first | depth | support)", s)
}

// decodeCompileRequest reads, parses, and validates one request body.
// Every failure is an *apiError in the 4xx family. On success the
// request carries a resolved Majorana Hamiltonian.
func (a *API) decodeCompileRequest(r *http.Request) (*compileRequest, *apiError) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		if _, ok := err.(*http.MaxBytesError); ok {
			return nil, &apiError{code: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes)}
		}
		return nil, badRequest("reading request body: %v", err)
	}
	var req compileRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid JSON request: %v", err)
	}
	// Reject trailing garbage after the JSON object.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, badRequest("trailing data after JSON request")
	}

	if req.Method == "" {
		req.Method = "hatt"
	}
	if _, err := compiler.Resolve(req.Method); err != nil {
		return nil, badRequest("%v", err)
	}
	if req.TimeoutMS < 0 {
		return nil, badRequest("timeout_ms must be ≥ 0")
	}

	// Device targeting: validated here so a bad spec or malformed custom
	// JSON is a structured 4xx before any compilation work.
	req.routedQASM = req.Strings
	switch {
	case req.Device != "" && len(req.CustomDevice) > 0:
		return nil, badRequest("device and custom_device are mutually exclusive")
	case req.Device != "":
		if _, err := arch.Lookup(req.Device); err != nil {
			return nil, badRequest("%v", err)
		}
		req.devOpts = []compiler.Option{compiler.WithDevice(req.Device)}
	case len(req.CustomDevice) > 0:
		d, err := arch.ParseDeviceJSON(req.CustomDevice)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		req.devOpts = []compiler.Option{compiler.WithDeviceSpec(d)}
	}

	switch {
	case len(req.Hamiltonian) > 0:
		h, err := fermion.ReadJSON(bytes.NewReader(req.Hamiltonian))
		if err != nil {
			return nil, badRequest("invalid hamiltonian: %v", err)
		}
		if h.Modes > a.maxModes {
			return nil, &apiError{code: http.StatusUnprocessableEntity,
				msg: fmt.Sprintf("hamiltonian has %d modes, server caps requests at %d", h.Modes, a.maxModes)}
		}
		req.mh = h.Majorana(1e-12)
		if req.Model == "" {
			req.Model = "custom"
		}
	case req.Model != "":
		// Price the spec before building it so absurd lattices are
		// rejected at parse cost, not construction cost.
		n, err := models.Modes(req.Model)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		if n > a.maxModes {
			return nil, &apiError{code: http.StatusUnprocessableEntity,
				msg: fmt.Sprintf("model %q has %d modes, server caps requests at %d", req.Model, n, a.maxModes)}
		}
		_, modelSpan := obs.StartSpan(r.Context(), "model.build")
		modelSpan.SetAttr("model", req.Model)
		h, err := models.Resolve(req.Model)
		if err != nil {
			modelSpan.End()
			return nil, badRequest("%v", err)
		}
		req.mh = h.Majorana(1e-12)
		modelSpan.End()
	default:
		return nil, badRequest("request needs a model spec or a hamiltonian")
	}
	return &req, nil
}

// compileResponse is the one result envelope every surface shares: the
// body of POST /v1/compile, the result block of GET /v1/jobs/{id}, and
// the anytime partial block (include_partial, ?result=partial). A
// partial envelope carries model/method/modes/qubits/pauli_weight and
// the mapping strings; cached/optimal/routed only apply to completed
// results.
type compileResponse struct {
	Model       string          `json:"model"`
	Method      string          `json:"method"`
	Modes       int             `json:"modes"`
	Qubits      int             `json:"qubits"`
	PauliWeight int             `json:"pauli_weight"`
	Optimal     bool            `json:"optimal,omitempty"`
	Cached      bool            `json:"cached"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	Mapping     []string        `json:"mapping,omitempty"`
	Routed      *routedResponse `json:"routed,omitempty"`
	// TraceID names the request's trace (also in the Trace-Id header);
	// Trace is the buffered span timeline, embedded when the request set
	// "trace": true.
	TraceID string             `json:"trace_id,omitempty"`
	Trace   *obs.TraceSnapshot `json:"trace,omitempty"`
}

// routedResponse is the hardware-mapped view of a compile when the
// request targeted a device.
type routedResponse struct {
	Device      string `json:"device"`
	PhysQubits  int    `json:"physical_qubits"`
	SwapsAdded  int    `json:"swaps_added"`
	CNOTs       int    `json:"cnots"`
	Singles     int    `json:"u3s"`
	Depth       int    `json:"depth"`
	FinalLayout []int  `json:"final_layout"`
	// QASM is the routed circuit itself (OpenQASM 2.0), included under
	// include_strings so the CI route-smoke job can independently audit
	// coupling validity and byte-identical cache replay.
	QASM string `json:"qasm,omitempty"`
}

// mappingStrings renders a mapping's 2N Majorana Pauli strings for the
// wire. Shared by the sync, job-result, and partial envelopes so the
// three surfaces cannot drift in how they spell a mapping.
func mappingStrings(m *mapping.Mapping) []string {
	out := make([]string, len(m.Majoranas))
	for j, s := range m.Majoranas {
		out[j] = s.String()
	}
	return out
}

// resultEnvelope renders a completed compile into the shared envelope.
// withMapping gates the mapping strings, withQASM the routed circuit
// text (orders of magnitude larger). Modes come from the mapping itself,
// so job polls need no access to the original Hamiltonian.
func resultEnvelope(model string, res *compiler.Result, elapsed time.Duration, withMapping, withQASM bool) compileResponse {
	resp := compileResponse{
		Model:       model,
		Method:      res.Method,
		Modes:       res.Mapping.Modes,
		Qubits:      res.Mapping.Qubits(),
		PauliWeight: res.PredictedWeight,
		Optimal:     res.Optimal,
		Cached:      res.Cached,
		ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
	}
	if withMapping {
		resp.Mapping = mappingStrings(res.Mapping)
	}
	if r := res.Routed; r != nil {
		resp.Routed = &routedResponse{
			Device:      r.Device,
			PhysQubits:  r.PhysQubits,
			SwapsAdded:  r.SwapsAdded,
			CNOTs:       r.CNOTs,
			Singles:     r.Singles,
			Depth:       r.Depth,
			FinalLayout: r.FinalLayout,
		}
		if withQASM && r.Circuit != nil {
			resp.Routed.QASM = r.Circuit.QASM()
		}
	}
	return resp
}

// partialEnvelope renders a job's validated best-so-far into the same
// envelope a finished result uses. Method is the producing racer spec;
// the mapping strings are always included — the whole point of a
// partial is walking away with the incumbent mapping.
func partialEnvelope(model string, p compiler.PartialResult, elapsed time.Duration) *compileResponse {
	return &compileResponse{
		Model:       model,
		Method:      p.Method,
		Modes:       p.Mapping.Modes,
		Qubits:      p.Mapping.Qubits(),
		PauliWeight: p.Weight,
		ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
		Mapping:     mappingStrings(p.Mapping),
	}
}

// compileSync is the production sync-compile path behind POST
// /v1/compile: the search is bounded by the request's own timeout
// (capped by the server default) and by ctx — the HTTP request context,
// so a client that disconnects stops paying for its search instead of
// burning a worker until the timeout.
func (a *API) compileSync(ctx context.Context, req *compileRequest) (*compiler.Result, int, error) {
	var opts []compiler.Option
	if req.Options != nil {
		o, aerr := req.Options.compilerOptions()
		if aerr != nil {
			return nil, aerr.code, aerr
		}
		opts = o
	}
	opts = append(opts, req.devOpts...)
	if a.mgr != nil && a.mgr.cfg.Store != nil {
		opts = append(opts, compiler.WithStore(a.mgr.cfg.Store))
	}
	switch {
	case a.mgr != nil && a.mgr.cfg.Ledger != nil:
		opts = append(opts, compiler.WithMethodLedger(a.mgr.cfg.Ledger))
	case a.ledger != nil:
		opts = append(opts, compiler.WithMethodLedger(a.ledger))
	}
	timeout := a.timeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	res, err := compiler.Compile(ctx, req.Method, req.mh, opts...)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, http.StatusRequestTimeout, fmt.Errorf("compilation exceeded %s", timeout)
		}
		if errors.Is(err, context.Canceled) {
			// 499 in nginx's vocabulary; the client is gone either way.
			return nil, http.StatusRequestTimeout, fmt.Errorf("request canceled: %w", err)
		}
		return nil, http.StatusBadRequest, err
	}
	return res, http.StatusOK, nil
}

func (a *API) handleCompile(w http.ResponseWriter, r *http.Request) {
	// Admission control before any decode work: past the in-flight cap,
	// another sync compile would only pile onto already-saturated
	// workers, so shed it immediately with retry guidance.
	if n := a.inflight.Add(1); a.maxInFlight > 0 && n > int64(a.maxInFlight) {
		a.inflight.Add(-1)
		a.shedSync.Add(1)
		w.Header().Set("Retry-After", retryAfterBackpressure)
		writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("service: %d synchronous compiles already in flight, retry later", a.maxInFlight))
		return
	}
	defer a.inflight.Add(-1)
	req, aerr := a.decodeCompileRequest(r)
	if aerr != nil {
		writeErr(w, aerr.code, aerr.msg)
		return
	}
	start := time.Now()
	res, code, err := a.compile(r.Context(), req)
	if err != nil {
		writeErr(w, code, err.Error())
		return
	}
	resp := resultEnvelope(req.Model, res, time.Since(start), req.Strings, req.routedQASM)
	if sc := obs.SpanContextFrom(r.Context()); sc.Valid() {
		resp.TraceID = sc.TraceID.String()
		if req.Trace {
			// The root http.request span is still open here, so the embedded
			// timeline holds the pipeline stages; the root lands in the
			// buffer for GET /v1/traces/{id} once the response is written.
			if snap, ok := a.tracer.Snapshot(sc.TraceID); ok {
				resp.Trace = &snap
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// submitResponse is the wire shape of POST /v1/jobs.
type submitResponse struct {
	ID      string `json:"id"`
	State   State  `json:"state"`
	Deduped bool   `json:"deduped"`
	URL     string `json:"url"`
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, aerr := a.decodeCompileRequest(r)
	if aerr != nil {
		writeErr(w, aerr.code, aerr.msg)
		return
	}
	var opts []compiler.Option
	if req.Options != nil {
		o, aerr := req.Options.compilerOptions()
		if aerr != nil {
			writeErr(w, aerr.code, aerr.msg)
			return
		}
		opts = o
	}
	opts = append(opts, req.devOpts...)
	sreq := Request{
		Model:       req.Model,
		Hamiltonian: req.mh,
		Spec:        req.Method,
		Options:     opts,
		Timeout:     time.Duration(req.TimeoutMS) * time.Millisecond,
		Strings:     req.Strings,
	}
	if req.Trace {
		// Tie the job's spans to the submitting request's trace so the
		// poller (and GET /v1/traces/{id}) can see the async compile's
		// timeline under the Trace-Id this response carries.
		sreq.Trace = obs.SpanContextFrom(r.Context())
	}
	st, deduped, err := a.mgr.Submit(sreq)
	if err != nil {
		writeAPIErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: st.ID, State: st.State, Deduped: deduped, URL: "/v1/jobs/" + st.ID,
	})
}

// jobResponse is the wire shape of GET /v1/jobs/{id}: the status
// snapshot plus, once done, the result — and under include_partial the
// validated best-so-far block while the search is still running.
type jobResponse struct {
	Status
	Result *compileResponse `json:"result,omitempty"`
	// Partial is the job's validated best-so-far mapping, rendered in
	// the same envelope as a finished result. Present only when the
	// caller asked (include_partial=true on GET, result=partial on
	// DELETE) and a method has produced a validated incumbent.
	Partial *compileResponse `json:"partial,omitempty"`
	// Trace is the job's buffered span timeline, present when the
	// submission asked for tracing and the trace is still buffered.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

func (a *API) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := a.mgr.Status(id)
	if err != nil {
		writeAPIErr(w, err)
		return
	}
	resp := jobResponse{Status: st}
	if st.State == StateDone {
		if res, err := a.mgr.Result(id); err == nil {
			// Jobs always include the mapping strings (the async flow has
			// no second endpoint to fetch them from); the routed QASM —
			// orders of magnitude larger — only when the submission asked
			// for include_strings.
			withQASM := false
			if j, jerr := a.mgr.lookup(id); jerr == nil {
				withQASM = j.req.Strings
			}
			cr := resultEnvelope(st.Model, res, st.Elapsed, true, withQASM)
			resp.Result = &cr
		}
	}
	if boolParam(r, "include_partial") {
		if p, ok, _ := a.mgr.Partial(id); ok {
			resp.Partial = partialEnvelope(st.Model, p, st.Elapsed)
		}
	}
	if st.TraceID != "" {
		if id, err := obs.ParseTraceID(st.TraceID); err == nil {
			if snap, ok := a.tracer.Snapshot(id); ok {
				resp.Trace = &snap
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// boolParam reads a query flag: present counts as true unless set to an
// explicit false value.
func boolParam(r *http.Request, name string) bool {
	if !r.URL.Query().Has(name) {
		return false
	}
	switch strings.ToLower(r.URL.Query().Get(name)) {
	case "0", "false", "no":
		return false
	}
	return true
}

// handleJobCancel aborts a job. The default response is the bare status
// snapshot (unchanged wire shape); with ?result=partial the job is
// canceled *and* its validated best-so-far comes back in the shared
// envelope — the anytime bail-out: stop paying, keep the incumbent.
func (a *API) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wantPartial := strings.EqualFold(r.URL.Query().Get("result"), "partial")
	st, err := a.mgr.Cancel(id)
	if err != nil {
		writeAPIErr(w, err)
		return
	}
	if !wantPartial {
		writeJSON(w, http.StatusOK, st)
		return
	}
	resp := jobResponse{Status: st}
	if p, ok, _ := a.mgr.Partial(id); ok {
		resp.Partial = partialEnvelope(st.Model, p, st.Elapsed)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePortfolioStats serves the portfolio ledger: per-(model-shape,
// method) win/loss rows plus the race counters feeding /metrics. With no
// ledger attached the counters still report; the ledger block is empty.
func (a *API) handlePortfolioStats(w http.ResponseWriter, r *http.Request) {
	snap := store.LedgerSnapshot{Shapes: []store.LedgerShapeStats{}}
	if a.ledger != nil {
		snap = a.ledger.Snapshot()
		if snap.Shapes == nil {
			snap.Shapes = []store.LedgerShapeStats{}
		}
	}
	outcomes := compiler.PortfolioOutcomes()
	oc := make([]map[string]any, 0, len(outcomes))
	for _, o := range outcomes {
		oc = append(oc, map[string]any{"method": o.Method, "outcome": o.Outcome, "count": o.Count})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"races":    compiler.PortfolioRaceCount(),
		"outcomes": oc,
		"ledger":   snap,
	})
}

func (a *API) handleMethods(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"methods": compiler.Methods()})
}

func (a *API) handleDevices(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"devices": arch.Catalog()})
}

// handleStoreExport is the fleet peer cache-fill endpoint: it serves the
// canonical wire encoding of one stored entry, addressed by the URL form
// of its content key (store.Key.Address). Responses come from this
// node's own store tiers only — a node answers fleet traffic from what
// it holds, never by fanning out again, so fills cannot cascade.
//
// 400 for a malformed address, 404 when the store is disabled or the
// entry is absent. The 200 body is the store's disk-entry JSON, which
// the requesting peer re-validates (key match + mapping algebra) before
// trusting.
func (a *API) handleStoreExport(w http.ResponseWriter, r *http.Request) {
	key, err := store.ParseAddress(r.PathValue("address"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if a.store == nil {
		writeErr(w, http.StatusNotFound, "service: no store attached")
		return
	}
	raw, ok := a.store.Export(key)
	if !ok {
		writeErr(w, http.StatusNotFound, "service: no entry at this address")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(raw)
}

// handleHealthz is the liveness probe: the process is up and serving
// HTTP. It deliberately checks nothing else — a degraded node must
// still answer 200 here so orchestrators don't restart a process that
// is alive but shedding, which is /v1/readyz's distinction to draw.
func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"version": version.Version,
		"uptime":  time.Since(a.started).String(),
	})
}

// handleReadyz is the readiness probe. A live process can still be in
// no shape to take traffic: draining for shutdown, its disk tier
// failing writes, or with circuit breakers open to its peers. Those
// answer 503 with the reasons listed, so load balancers steer around
// the node while it recovers; 200 {"status":"ready"} otherwise.
func (a *API) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if a.mgr != nil && a.mgr.Draining() {
		reasons = append(reasons, "draining: manager is shutting down")
	}
	if a.store != nil && !a.store.DiskHealthy() {
		reasons = append(reasons, "store: disk tier failing writes")
	}
	if a.fleet != nil {
		if open := a.fleet.OpenBreakers(); len(open) > 0 {
			reasons = append(reasons, "fleet: breaker open for "+strings.Join(open, ", "))
		}
	}
	if len(reasons) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	//hatt:lint-ignore apierr 503 is the readiness contract for a degraded node, not a handler bug
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "degraded", "reasons": reasons})
}

// StatsSnapshot assembles the /v1/stats payload. It is exported (and
// JSON-marshalable) so hattd can additionally publish it through expvar.
func (a *API) StatsSnapshot() map[string]any {
	pending, capacity := a.mgr.QueueDepth()
	jobs := map[string]any{
		"queue_depth":    pending,
		"queue_capacity": capacity,
	}
	for state, n := range a.mgr.Counts() {
		jobs[string(state)] = n
	}
	out := map[string]any{
		"jobs":      jobs,
		"uptime_ms": time.Since(a.started).Milliseconds(),
		"version":   version.Version,
		"overload": map[string]any{
			"inflight_sync":     a.inflight.Load(),
			"max_inflight_sync": a.maxInFlight,
			"shed_sync":         a.shedSync.Load(),
		},
	}
	if a.store != nil {
		out["store"] = a.store.Stats()
	}
	if a.fleet != nil {
		out["fleet"] = a.fleet.Stats()
	}
	portfolio := map[string]any{
		"races":    compiler.PortfolioRaceCount(),
		"outcomes": compiler.PortfolioOutcomes(),
	}
	if a.ledger != nil {
		portfolio["ledger"] = a.ledger.Snapshot()
	}
	out["portfolio"] = portfolio
	if fault.Enabled() {
		out["fault"] = map[string]any{
			"plan":     fault.Active(),
			"injected": fault.Stats(),
		}
	}
	return out
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.StatsSnapshot())
}
