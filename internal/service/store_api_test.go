package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/mapping"
	"repro/internal/store"
)

// TestStoreExportEndpoint pins the peer cache-fill endpoint's contract:
// 200 with the canonical wire entry for a stored address, 404 for an
// absent one, 400 (structured) for malformed addresses.
func TestStoreExportEndpoint(t *testing.T) {
	srv, st, _ := testServer(t, "")
	key := store.Key{Hamiltonian: "cafe", Spec: "jw", Options: "v1"}
	st.Put(key, &store.Entry{Method: "jw", Mapping: mapping.JordanWigner(2), PredictedWeight: 5})

	resp, err := http.Get(srv.URL + "/v1/store/" + key.Address())
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stored address: %d %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	// The body must round-trip through Import on another store.
	other, _ := store.Open(4, "")
	if _, err := other.Import(key, raw); err != nil {
		t.Fatalf("served payload does not import: %v", err)
	}

	// Absent entry: 404 with the error envelope.
	missing := store.Key{Hamiltonian: "beef", Spec: "jw", Options: "v1"}
	r404, body := getJSON(t, srv.URL+"/v1/store/"+missing.Address())
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("missing address: %d %v", r404.StatusCode, body)
	}
	if body["error"] == nil || body["status"] != float64(http.StatusNotFound) {
		t.Errorf("404 body not a structured envelope: %v", body)
	}
}

func TestStoreExportMalformedAddress(t *testing.T) {
	srv, _, _ := testServer(t, "")
	for _, addr := range []string{"notbase64!!!", "one.two", "a.b.c.d", "YQ==.YQ.YQ"} {
		resp, body := getJSON(t, srv.URL+"/v1/store/"+addr)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("address %q: status %d, want 400 (%v)", addr, resp.StatusCode, body)
		}
		if body["error"] == nil || body["status"] != float64(http.StatusBadRequest) {
			t.Errorf("address %q: body %v is not the structured error envelope", addr, body)
		}
	}
}

func TestStoreExportNoStore(t *testing.T) {
	mgr := New(Config{Workers: 1, QueueDepth: 2})
	srv := httptest.NewServer(NewAPI(mgr, nil).Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	key := store.Key{Hamiltonian: "cafe", Spec: "jw", Options: "v1"}
	resp, _ := getJSON(t, srv.URL+"/v1/store/"+key.Address())
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no-store daemon: %d, want 404", resp.StatusCode)
	}
}

// fleetNode is one in-process hattd equivalent: local store, manager
// compiling through the fleet wrapper, API serving the peer endpoint.
type fleetNode struct {
	srv   *httptest.Server
	local *store.Store
	fleet *fleet.Store
}

// startFleetNode boots a node. peers may be filled in later via join
// (the URL isn't known until the listener is up), so the node starts
// solo and is rewired by joinFleet.
func startFleetNode(t *testing.T) *fleetNode {
	t.Helper()
	local, err := store.Open(64, "")
	if err != nil {
		t.Fatal(err)
	}
	n := &fleetNode{local: local}
	return n
}

// joinFleet wires the node into a fleet and starts its HTTP surface.
func (n *fleetNode) joinFleet(t *testing.T, self string, peers []string) {
	t.Helper()
	f, err := fleet.NewStore(n.local, fleet.Config{Self: self, Peers: peers, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	n.fleet = f
	mgr := New(Config{Workers: 2, QueueDepth: 8, Store: f})
	n.srv.Config.Handler = NewAPI(mgr, n.local, WithFleet(f)).Handler()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
}

// TestFleetCrossNodeCacheHit is the in-process version of the CI
// fleet-smoke job: a mapping compiled on node A is served by node B as a
// peer cache hit — cached:true, byte-identical mapping — and B keeps
// compiling locally when A dies.
func TestFleetCrossNodeCacheHit(t *testing.T) {
	a, b := startFleetNode(t), startFleetNode(t)
	// Two-phase boot: listeners first (so URLs exist), then fleet wiring.
	a.srv = httptest.NewUnstartedServer(http.NotFoundHandler())
	b.srv = httptest.NewUnstartedServer(http.NotFoundHandler())
	a.srv.Start()
	b.srv.Start()
	t.Cleanup(a.srv.Close)
	t.Cleanup(b.srv.Close)
	peers := []string{a.srv.URL, b.srv.URL}
	a.joinFleet(t, a.srv.URL, peers)
	b.joinFleet(t, b.srv.URL, peers)

	req := `{"model":"hubbard:2x2","method":"hatt","include_strings":true}`

	// Compile on A: a genuine search.
	r1, b1 := postJSON(t, a.srv.URL+"/v1/compile", req)
	if r1.StatusCode != http.StatusOK || b1["cached"] != false {
		t.Fatalf("compile on A: %d cached=%v", r1.StatusCode, b1["cached"])
	}

	// Same request on B: peer cache-fill from A, served as a hit.
	r2, b2 := postJSON(t, b.srv.URL+"/v1/compile", req)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("compile on B: %d %v", r2.StatusCode, b2)
	}
	if b2["cached"] != true {
		t.Fatalf("compile on B not served as a cache hit: cached=%v", b2["cached"])
	}
	if !reflect.DeepEqual(b1["mapping"], b2["mapping"]) {
		t.Fatalf("cross-node mapping not byte-identical:\nA: %v\nB: %v", b1["mapping"], b2["mapping"])
	}
	if st := b.fleet.Stats(); st.PeerHits != 1 {
		t.Errorf("node B fleet stats = %+v, want 1 peer hit", st)
	}

	// B's /v1/stats surfaces the fleet block.
	_, stats := getJSON(t, b.srv.URL+"/v1/stats")
	fl, ok := stats["fleet"].(map[string]any)
	if !ok {
		t.Fatalf("/v1/stats has no fleet block: %v", stats)
	}
	if fl["peer_hits"] != float64(1) {
		t.Errorf("stats fleet block = %v, want peer_hits 1", fl)
	}

	// Kill A. B must degrade to local compilation, not fail.
	a.srv.Close()
	req2 := `{"model":"h2","method":"jw","include_strings":true}`
	r3, b3 := postJSON(t, b.srv.URL+"/v1/compile", req2)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("compile on B with A dead: %d %v", r3.StatusCode, b3)
	}
	if b3["cached"] != false {
		t.Errorf("degraded compile should be a local miss, got cached=%v", b3["cached"])
	}
	if st := b.fleet.Stats(); st.PeerError == 0 {
		t.Errorf("expected peer errors after killing A, stats = %+v", st)
	}
}
