package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/pkg/compiler"
)

// blockingMethod is a registry method whose Compile parks until the test
// releases it (or the job's context is canceled), so tests can hold jobs
// in the running state deterministically.
type blockingMethod struct {
	name    string
	release chan struct{}
	started chan struct{} // receives one token per Compile entry
}

func (b *blockingMethod) Name() string { return b.name }

func (b *blockingMethod) Compile(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts compiler.Options) (*compiler.Result, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	if opts.Progress != nil {
		opts.Progress(compiler.ProgressEvent{Method: b.name, Stage: compiler.StageSearch, Step: 1, Total: 2, BestWeight: 41})
	}
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	m := mapping.JordanWigner(mh.Modes)
	return &compiler.Result{Method: b.name, Mapping: m, PredictedWeight: m.HamiltonianWeight(mh)}, nil
}

var blockSeq int

// newBlocking registers a fresh blocking method (names are global and
// single-registration, so each call mints a new one).
func newBlocking(t *testing.T) *blockingMethod {
	t.Helper()
	blockSeq++
	b := &blockingMethod{
		name:    fmt.Sprintf("testblock%d", blockSeq),
		release: make(chan struct{}),
		started: make(chan struct{}, 64),
	}
	if err := compiler.Register(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func waitState(t *testing.T, m *Manager, id string, want State) Status {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		st, err := m.Status(id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestSubmitRunResult(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 8})
	defer m.Shutdown(context.Background())

	st, deduped, err := m.Submit(Request{Model: "h2", Spec: "jw"})
	if err != nil || deduped {
		t.Fatalf("submit: err=%v deduped=%v", err, deduped)
	}
	if st.State != StateQueued || st.ID == "" {
		t.Fatalf("fresh job status = %+v", st)
	}
	fin, err := m.Wait(context.Background(), st.ID)
	if err != nil || fin.State != StateDone {
		t.Fatalf("wait: %+v err=%v", fin, err)
	}
	res, err := m.Result(st.ID)
	if err != nil || res == nil || res.Mapping == nil || res.Method != "jw" {
		t.Fatalf("result: %+v err=%v", res, err)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := New(Config{Workers: 1})
	defer m.Shutdown(context.Background())
	if _, _, err := m.Submit(Request{Model: "h2", Spec: "no-such-method"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, _, err := m.Submit(Request{Model: "no-such-model"}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, _, err := m.Submit(Request{}); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := m.Status("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: %v, want ErrNotFound", err)
	}
}

func TestDeduplicationOfInflightJobs(t *testing.T) {
	b := newBlocking(t)
	m := New(Config{Workers: 2, QueueDepth: 8})
	defer m.Shutdown(context.Background())

	first, deduped, err := m.Submit(Request{Model: "h2", Spec: b.name})
	if err != nil || deduped {
		t.Fatalf("first submit: err=%v deduped=%v", err, deduped)
	}
	<-b.started // running now

	second, deduped, err := m.Submit(Request{Model: "h2", Spec: b.name})
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if !deduped || second.ID != first.ID {
		t.Fatalf("identical in-flight submit not deduplicated: %+v vs %+v", second, first)
	}
	if second.Attached != 1 {
		t.Fatalf("attached = %d, want 1", second.Attached)
	}

	// A different model is a different content address — no dedup.
	other, deduped, err := m.Submit(Request{Model: "hubbard:1x2", Spec: b.name})
	if err != nil || deduped || other.ID == first.ID {
		t.Fatalf("distinct problem deduplicated: %+v err=%v deduped=%v", other, err, deduped)
	}

	close(b.release)
	if st, err := m.Wait(context.Background(), first.ID); err != nil || st.State != StateDone {
		t.Fatalf("wait first: %+v err=%v", st, err)
	}

	// Once finished, the content address is free again: a new submission
	// is a fresh job (it will hit the store/memo, but it is not attached).
	again, deduped, err := m.Submit(Request{Model: "h2", Spec: b.name})
	if err != nil || deduped || again.ID == first.ID {
		t.Fatalf("finished job still captured dedup: %+v err=%v deduped=%v", again, err, deduped)
	}
	if st, err := m.Wait(context.Background(), again.ID); err != nil || st.State != StateDone {
		t.Fatalf("wait again: %+v err=%v", st, err)
	}
}

func TestQueueBackpressure(t *testing.T) {
	b := newBlocking(t)
	m := New(Config{Workers: 1, QueueDepth: 1})
	defer func() {
		close(b.release)
		m.Shutdown(context.Background())
	}()

	running, _, err := m.Submit(Request{Model: "h2", Spec: b.name})
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	// Distinct problems so dedup cannot absorb them.
	if _, _, err := m.Submit(Request{Model: "hubbard:1x2", Spec: b.name}); err != nil {
		t.Fatalf("queue slot submit: %v", err)
	}
	// With QueueDepth 1 the shed depth coincides with hard-full, so the
	// refusal is the graceful ErrOverloaded (both map to 429).
	_, _, err = m.Submit(Request{Model: "hubbard:1x3", Spec: b.name})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overfull submit: %v, want ErrOverloaded", err)
	}
	_ = running
}

func TestShedBeforeHardFull(t *testing.T) {
	b := newBlocking(t)
	m := New(Config{Workers: 1, QueueDepth: 8, ShedDepth: 2})
	defer func() {
		close(b.release)
		m.Shutdown(context.Background())
	}()

	if _, _, err := m.Submit(Request{Model: "h2", Spec: b.name}); err != nil {
		t.Fatal(err)
	}
	<-b.started
	// Two jobs fit under the shed depth; distinct problems defeat dedup.
	for _, model := range []string{"hubbard:1x2", "hubbard:1x3"} {
		if _, _, err := m.Submit(Request{Model: model, Spec: b.name}); err != nil {
			t.Fatalf("submit %s under shed depth: %v", model, err)
		}
	}
	// The queue still has six free slots, but the shed depth refuses
	// net-new work here — before the cliff.
	if _, _, err := m.Submit(Request{Model: "hubbard:2x2", Spec: b.name}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("beyond shed depth: %v, want ErrOverloaded", err)
	}
	if pending, capacity := m.QueueDepth(); pending >= capacity {
		t.Fatalf("shed only fired at hard-full: %d/%d", pending, capacity)
	}
	// Deduplicated attaches are always admitted, even while shedding.
	if _, deduped, err := m.Submit(Request{Model: "hubbard:1x2", Spec: b.name}); err != nil || !deduped {
		t.Fatalf("dedup attach while shedding: deduped=%v err=%v", deduped, err)
	}
}

func TestCancelRunningAndQueued(t *testing.T) {
	b := newBlocking(t)
	m := New(Config{Workers: 1, QueueDepth: 4})
	defer m.Shutdown(context.Background())

	run, _, err := m.Submit(Request{Model: "h2", Spec: b.name})
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	queued, _, err := m.Submit(Request{Model: "hubbard:1x2", Spec: b.name})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job first: its state flips immediately, the
	// running job is untouched.
	if st, err := m.Cancel(queued.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("cancel queued: %+v err=%v", st, err)
	}
	if st, _ := m.Status(run.ID); st.State != StateRunning {
		t.Fatalf("running job disturbed by neighbor cancel: %+v", st)
	}

	// Cancel the running job: its blocked Compile sees ctx.Done.
	if _, err := m.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), run.ID)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("wait canceled: %+v err=%v", st, err)
	}
	if _, err := m.Result(run.ID); err == nil {
		t.Fatal("canceled job yielded a result")
	}

	// Progress snapshot captured before the block is still visible.
	if st.Progress.BestWeight != 41 || st.Progress.Stage != compiler.StageSearch {
		t.Fatalf("progress snapshot lost: %+v", st.Progress)
	}
}

func TestCanceledJobDoesNotCaptureDedup(t *testing.T) {
	// A canceled job must leave the dedup index immediately: identical
	// submissions arriving after the cancel get a fresh job, not a
	// doomed attachment.
	b := newBlocking(t)
	m := New(Config{Workers: 1, QueueDepth: 4})
	defer func() {
		close(b.release)
		m.Shutdown(context.Background())
	}()

	// Occupy the only worker so the target job stays queued.
	if _, _, err := m.Submit(Request{Model: "hubbard:1x2", Spec: b.name}); err != nil {
		t.Fatal(err)
	}
	<-b.started
	target, _, err := m.Submit(Request{Model: "h2", Spec: b.name})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Cancel(target.ID); err != nil {
		t.Fatal(err)
	}
	fresh, deduped, err := m.Submit(Request{Model: "h2", Spec: b.name})
	if err != nil {
		t.Fatal(err)
	}
	if deduped || fresh.ID == target.ID {
		t.Fatalf("submission after cancel attached to the canceled job: %+v (canceled %s)", fresh, target.ID)
	}
	if fresh.State == StateCanceled {
		t.Fatalf("fresh job born canceled: %+v", fresh)
	}
}

func TestAsyncJobTimeout(t *testing.T) {
	// Request.Timeout bounds the job once it runs; expiry is a failure,
	// not a cancellation (nobody canceled it).
	b := newBlocking(t)
	m := New(Config{Workers: 1, QueueDepth: 4})
	defer m.Shutdown(context.Background())

	st, _, err := m.Submit(Request{Model: "h2", Spec: b.name, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := m.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("timed-out job = %+v, want failed with a deadline error", fin)
	}
}

func TestMaxJobTimeCapsEveryJob(t *testing.T) {
	// The server-side ceiling applies even when the client asked for no
	// timeout (or a longer one): a job can never pin a worker forever.
	b := newBlocking(t)
	m := New(Config{Workers: 1, QueueDepth: 4, MaxJobTime: 30 * time.Millisecond})
	defer m.Shutdown(context.Background())

	for name, req := range map[string]Request{
		"no client timeout":     {Model: "h2", Spec: b.name},
		"longer client timeout": {Model: "hubbard:1x2", Spec: b.name, Timeout: time.Hour},
	} {
		st, _, err := m.Submit(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fin, err := m.Wait(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fin.State != StateFailed || !strings.Contains(fin.Error, "deadline") {
			t.Fatalf("%s: job = %+v, want failed on the server ceiling", name, fin)
		}
	}
}

func TestShutdownDrains(t *testing.T) {
	m := New(Config{Workers: 2, QueueDepth: 8})
	var ids []string
	for _, model := range []string{"h2", "hubbard:1x2", "hubbard:1x3"} {
		st, _, err := m.Submit(Request{Model: model, Spec: "jw"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := m.Status(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("job %s after drain: %+v err=%v", id, st, err)
		}
	}
	if _, _, err := m.Submit(Request{Model: "h2", Spec: "jw"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown submit: %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownDeadlineCancelsStuckJobs(t *testing.T) {
	b := newBlocking(t)
	m := New(Config{Workers: 1, QueueDepth: 4})
	st, _, err := m.Submit(Request{Model: "h2", Spec: b.name})
	if err != nil {
		t.Fatal(err)
	}
	<-b.started

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown: %v, want DeadlineExceeded", err)
	}
	fin, err := m.Status(st.ID)
	if err != nil || fin.State != StateCanceled {
		t.Fatalf("stuck job after forced shutdown: %+v err=%v", fin, err)
	}
}

func TestConcurrentSubmitters(t *testing.T) {
	m := New(Config{Workers: 4, QueueDepth: 64})
	defer m.Shutdown(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				st, _, err := m.Submit(Request{Model: "h2", Spec: "jw"})
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				if _, err := m.Wait(context.Background(), st.ID); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
