package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// sampleTraceparent is a fixed W3C traceparent a caller might inject;
// the trace ID half is what every response and span must carry.
const (
	sampleTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sampleTraceID     = "4bf92f3577b34da6a3ce929d0e0e4736"
)

// postTraced posts a compile request with an injected traceparent and
// returns the response plus decoded body.
func postTraced(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", sampleTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	return resp, m
}

// spanNames flattens a trace payload's spans to their names.
func spanNames(t *testing.T, trace map[string]any) []string {
	t.Helper()
	raw, ok := trace["spans"].([]any)
	if !ok {
		t.Fatalf("trace has no spans array: %v", trace)
	}
	names := make([]string, 0, len(raw))
	for _, s := range raw {
		names = append(names, s.(map[string]any)["name"].(string))
	}
	return names
}

func containsName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestTraceparentAdoptionAndTraceEndpoint pins the single-node tracing
// contract: an injected traceparent's trace ID is echoed in the Trace-Id
// header and trace_id field, "trace":true embeds the pipeline span
// timeline, and GET /v1/traces/{id} replays the buffered trace
// (including the http.request root) after the response.
func TestTraceparentAdoptionAndTraceEndpoint(t *testing.T) {
	srv, _, _ := testServer(t, "")

	resp, body := postTraced(t, srv.URL+"/v1/compile",
		`{"model":"h2","method":"jw","trace":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %v", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Trace-Id"); got != sampleTraceID {
		t.Fatalf("Trace-Id header = %q, want the injected trace %q", got, sampleTraceID)
	}
	if body["trace_id"] != sampleTraceID {
		t.Fatalf("trace_id field = %v, want %q", body["trace_id"], sampleTraceID)
	}

	// The embedded timeline carries the pipeline stages that already
	// completed (the root http.request span is still open at marshal
	// time; it lands in the buffer for the follow-up GET).
	trace, ok := body["trace"].(map[string]any)
	if !ok {
		t.Fatalf(`"trace":true did not embed a trace block: %v`, body)
	}
	names := spanNames(t, trace)
	for _, want := range []string{"model.build", "store.get", "compile.search", "store.put"} {
		if !containsName(names, want) {
			t.Errorf("embedded trace missing span %q (have %v)", want, names)
		}
	}

	// Replay through the traces endpoint: same spans plus the root.
	r2, replay := getJSON(t, srv.URL+"/v1/traces/"+sampleTraceID)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces/{id}: %d %v", r2.StatusCode, replay)
	}
	if replay["trace_id"] != sampleTraceID {
		t.Errorf("replayed trace_id = %v", replay["trace_id"])
	}
	if names := spanNames(t, replay); !containsName(names, "http.request") {
		t.Errorf("buffered trace missing the http.request root (have %v)", names)
	}

	// Malformed and unknown IDs answer structured 400/404.
	if r, b := getJSON(t, srv.URL+"/v1/traces/nothex"); r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed trace ID: %d %v, want 400", r.StatusCode, b)
	}
	if r, b := getJSON(t, srv.URL+"/v1/traces/"+strings.Repeat("ab", 16)); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace ID: %d %v, want 404", r.StatusCode, b)
	}
}

// TestFleetPeerFetchSpanCarriesTraceID is the two-node propagation
// proof: a compile on node B that fills from peer A must record B's
// fleet.peer.fetch span under the trace ID the caller injected, and A
// must see the same trace ID arrive on the peer fetch it served.
func TestFleetPeerFetchSpanCarriesTraceID(t *testing.T) {
	a, b := startFleetNode(t), startFleetNode(t)
	a.srv = httptest.NewUnstartedServer(http.NotFoundHandler())
	b.srv = httptest.NewUnstartedServer(http.NotFoundHandler())
	a.srv.Start()
	b.srv.Start()
	t.Cleanup(a.srv.Close)
	t.Cleanup(b.srv.Close)
	peers := []string{a.srv.URL, b.srv.URL}
	a.joinFleet(t, a.srv.URL, peers)
	b.joinFleet(t, b.srv.URL, peers)

	req := `{"model":"hubbard:2x2","method":"jw"}`

	// Seed node A's store with a genuine compile.
	if r, body := postJSON(t, a.srv.URL+"/v1/compile", req); r.StatusCode != http.StatusOK || body["cached"] != false {
		t.Fatalf("seed compile on A: %d cached=%v", r.StatusCode, body["cached"])
	}

	// Same request on B with the caller's traceparent: peer fill from A.
	resp, body := postTraced(t, b.srv.URL+"/v1/compile", req)
	if resp.StatusCode != http.StatusOK || body["cached"] != true {
		t.Fatalf("compile on B: %d cached=%v (%v)", resp.StatusCode, body["cached"], body)
	}
	if got := resp.Header.Get("Trace-Id"); got != sampleTraceID {
		t.Fatalf("node B Trace-Id = %q, want the injected %q", got, sampleTraceID)
	}

	// B's buffered trace must hold the peer fetch span, attributed to
	// the peer it hit, under the originating trace ID.
	r2, trace := getJSON(t, b.srv.URL+"/v1/traces/"+sampleTraceID)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces on B: %d %v", r2.StatusCode, trace)
	}
	names := spanNames(t, trace)
	if !containsName(names, "fleet.peer.fetch") {
		t.Fatalf("node B trace has no fleet.peer.fetch span (have %v)", names)
	}
	for _, s := range trace["spans"].([]any) {
		span := s.(map[string]any)
		if span["name"] != "fleet.peer.fetch" {
			continue
		}
		attrs, _ := span["attrs"].(map[string]any)
		if attrs["outcome"] != "hit" {
			t.Errorf("fleet.peer.fetch outcome = %v, want hit (attrs %v)", attrs["outcome"], attrs)
		}
	}

	// The outgoing fetch carried the traceparent onward: node A's
	// /v1/store request recorded its own root span under the same trace.
	r3, remote := getJSON(t, a.srv.URL+"/v1/traces/"+sampleTraceID)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/traces on A: %d %v (peer fetch did not propagate the trace)", r3.StatusCode, remote)
	}
	if names := spanNames(t, remote); !containsName(names, "http.request") {
		t.Errorf("node A's trace missing the http.request span for the peer fetch (have %v)", names)
	}
}

// scrapeMetrics renders the registry and parses every sample line into
// a map keyed by the full sample identity ('name{labels}').
func scrapeMetrics(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestStatsMatchesMetrics holds the anti-drift satellite: /v1/stats and
// /metrics are two renderings of the same counters, so corresponding
// values must be equal when read back-to-back on a quiesced server.
func TestStatsMatchesMetrics(t *testing.T) {
	st, err := store.Open(8, "")
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(Config{Workers: 1, QueueDepth: 4, Store: st})
	defer shutdownManager(t, mgr)
	api := NewAPI(mgr, st)
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)

	// One miss-then-hit pair plus a store put gives every store counter
	// a nonzero reading to compare.
	req := `{"model":"h2","method":"jw"}`
	if r, _ := postJSON(t, srv.URL+"/v1/compile", req); r.StatusCode != http.StatusOK {
		t.Fatalf("compile 1: %d", r.StatusCode)
	}
	if r, body := postJSON(t, srv.URL+"/v1/compile", req); r.StatusCode != http.StatusOK || body["cached"] != true {
		t.Fatalf("compile 2: %d cached=%v", r.StatusCode, body["cached"])
	}

	snap := api.StatsSnapshot()
	metrics := scrapeMetrics(t, api.Registry())

	stats := snap["store"].(store.Stats)
	for key, want := range map[string]float64{
		`hatt_store_lookups_total{result="hit"}`:  float64(stats.Hits),
		`hatt_store_lookups_total{result="miss"}`: float64(stats.Misses),
		`hatt_store_puts_total`:                   float64(stats.Puts),
		`hatt_store_evictions_total`:              float64(stats.Evictions),
		`hatt_store_entries`:                      float64(stats.Entries),
	} {
		if metrics[key] != want {
			t.Errorf("%s = %v, /v1/stats says %v", key, metrics[key], want)
		}
	}

	jobs := snap["jobs"].(map[string]any)
	if got := metrics["hatt_jobs_queue_depth"]; got != float64(jobs["queue_depth"].(int)) {
		t.Errorf("hatt_jobs_queue_depth = %v, stats %v", got, jobs["queue_depth"])
	}
	if got := metrics["hatt_jobs_queue_capacity"]; got != float64(jobs["queue_capacity"].(int)) {
		t.Errorf("hatt_jobs_queue_capacity = %v, stats %v", got, jobs["queue_capacity"])
	}

	overload := snap["overload"].(map[string]any)
	if got := metrics["hatt_http_shed_total"]; got != float64(overload["shed_sync"].(int64)) {
		t.Errorf("hatt_http_shed_total = %v, stats %v", got, overload["shed_sync"])
	}

	// The request histogram observed both compiles.
	count := 0.0
	for key, v := range metrics {
		if strings.HasPrefix(key, `hatt_http_request_duration_seconds_count{route="POST /v1/compile"`) {
			count += v
		}
	}
	if count != 2 {
		t.Errorf("request histogram count for POST /v1/compile = %v, want 2", count)
	}
}

func shutdownManager(t *testing.T, mgr *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := mgr.Shutdown(ctx); err != nil {
		t.Errorf("manager shutdown: %v", err)
	}
}

// TestMetricsEndpointScrapes pins the exposition contract end to end:
// text/plain version 0.0.4, HELP/TYPE lines, and a nonzero request
// histogram after traffic — the same checks the CI trace-smoke job runs
// against a live daemon.
func TestMetricsEndpointScrapes(t *testing.T) {
	st, err := store.Open(8, "")
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(Config{Workers: 1, QueueDepth: 4, Store: st})
	defer shutdownManager(t, mgr)
	api := NewAPI(mgr, st)
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	msrv := httptest.NewServer(api.MetricsHandler())
	t.Cleanup(msrv.Close)

	if r, _ := postJSON(t, srv.URL+"/v1/compile", `{"model":"h2","method":"jw"}`); r.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d", r.StatusCode)
	}
	resp, err := http.Get(msrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain version 0.0.4", ct)
	}
	body := readAll(t, resp)
	for _, want := range []string{
		"# HELP hatt_http_request_duration_seconds",
		"# TYPE hatt_http_request_duration_seconds histogram",
		"# TYPE hatt_stage_duration_seconds histogram",
		"hatt_build_info{",
		`hatt_http_request_duration_seconds_count{route="POST /v1/compile",status="200"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
