package service

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// routeRE matches anything in the docs that looks like a route spec:
// an HTTP method followed by a /v1 path. The reverse direction of the
// sync check — the docs may not name a route that isn't registered.
var routeRE = regexp.MustCompile(`(GET|POST|PUT|DELETE|PATCH) /v1/[A-Za-z0-9/{}_.-]*`)

// TestDocsMatchRoutes holds docs/api.md to the daemon's registered
// route table in both directions: every registered route pattern must
// appear literally in the docs, and every route-shaped string in the
// docs must be a registered pattern. Renaming, adding, or removing an
// endpoint without updating the reference fails the build.
func TestDocsMatchRoutes(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "api.md"))
	if err != nil {
		t.Fatalf("docs/api.md unreadable: %v", err)
	}
	docs := string(raw)

	registered := make(map[string]bool)
	for _, pattern := range Routes() {
		registered[pattern] = true
		if !strings.Contains(docs, pattern) {
			t.Errorf("registered route %q is not documented in docs/api.md", pattern)
		}
	}

	for _, m := range routeRE.FindAllString(docs, -1) {
		if !registered[m] {
			t.Errorf("docs/api.md documents %q, which is not a registered route", m)
		}
	}
}

// TestRoutesAreWellFormed pins the shape doc tooling relies on: every
// pattern is "METHOD /v1/..." with no duplicates.
func TestRoutesAreWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, pattern := range Routes() {
		if seen[pattern] {
			t.Errorf("duplicate route pattern %q", pattern)
		}
		seen[pattern] = true
		if !routeRE.MatchString(pattern) {
			t.Errorf("route %q does not match the documented METHOD /v1/path shape", pattern)
		}
	}
	if len(seen) == 0 {
		t.Fatal("Routes() returned nothing")
	}
}
