package service

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/store"
)

// routeRE matches anything in the docs that looks like a route spec:
// an HTTP method followed by a /v1 path. The reverse direction of the
// sync check — the docs may not name a route that isn't registered.
var routeRE = regexp.MustCompile(`(GET|POST|PUT|DELETE|PATCH) /v1/[A-Za-z0-9/{}_.-]*`)

// TestDocsMatchRoutes holds docs/api.md to the daemon's registered
// route table in both directions: every registered route pattern must
// appear literally in the docs, and every route-shaped string in the
// docs must be a registered pattern. Renaming, adding, or removing an
// endpoint without updating the reference fails the build.
func TestDocsMatchRoutes(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "api.md"))
	if err != nil {
		t.Fatalf("docs/api.md unreadable: %v", err)
	}
	docs := string(raw)

	registered := make(map[string]bool)
	for _, pattern := range Routes() {
		registered[pattern] = true
		if !strings.Contains(docs, pattern) {
			t.Errorf("registered route %q is not documented in docs/api.md", pattern)
		}
	}

	for _, m := range routeRE.FindAllString(docs, -1) {
		if !registered[m] {
			t.Errorf("docs/api.md documents %q, which is not a registered route", m)
		}
	}
}

// TestRoutesAreWellFormed pins the shape doc tooling relies on: every
// pattern is "METHOD /v1/..." with no duplicates.
func TestRoutesAreWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, pattern := range Routes() {
		if seen[pattern] {
			t.Errorf("duplicate route pattern %q", pattern)
		}
		seen[pattern] = true
		if !routeRE.MatchString(pattern) {
			t.Errorf("route %q does not match the documented METHOD /v1/path shape", pattern)
		}
	}
	if len(seen) == 0 {
		t.Fatal("Routes() returned nothing")
	}
}

// metricRE matches anything in the docs that looks like a metric name.
// Histogram series suffixes are normalized away before comparison.
var metricRE = regexp.MustCompile(`hatt_[a-z][a-z0-9_]*`)

// TestDocsMatchMetrics holds docs/observability.md's metric inventory
// to the registry in both directions, the same way TestDocsMatchRoutes
// holds docs/api.md to the route table: every family a fully-wired API
// registers must be documented, and every metric-shaped name in the
// docs must resolve to a registered family (allowing the standard
// _bucket/_sum/_count histogram series suffixes).
func TestDocsMatchMetrics(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "observability.md"))
	if err != nil {
		t.Fatalf("docs/observability.md unreadable: %v", err)
	}
	docs := string(raw)

	// A fleet-wired API registers the full inventory (store, jobs, and
	// fleet families included); the fleet needs no live peers for that.
	st, err := store.Open(4, "")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fleet.NewStore(st, fleet.Config{
		Self:  "http://127.0.0.1:1",
		Peers: []string{"http://127.0.0.1:1", "http://127.0.0.1:2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(Config{Workers: 1, QueueDepth: 1, Store: f})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = mgr.Shutdown(ctx)
	})
	api := NewAPI(mgr, st, WithFleet(f))

	registered := make(map[string]bool)
	for _, fam := range api.Registry().Families() {
		registered[fam.Name] = true
		if !strings.Contains(docs, fam.Name) {
			t.Errorf("registered metric %q is not documented in docs/observability.md", fam.Name)
		}
	}
	if len(registered) == 0 {
		t.Fatal("Families() returned nothing")
	}

	for _, m := range metricRE.FindAllString(docs, -1) {
		base := m
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if s, ok := strings.CutSuffix(m, suffix); ok && registered[s] {
				base = s
				break
			}
		}
		if !registered[base] {
			t.Errorf("docs/observability.md names %q, which is not a registered metric", m)
		}
	}
}
