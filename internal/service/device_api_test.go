package service

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// TestCompileWithDeviceOverHTTP is the route-smoke path in miniature:
// a device-targeted compile returns routed metrics whose QASM respects
// the coupling graph, and a repeat is served cached with a
// byte-identical routed circuit.
func TestCompileWithDeviceOverHTTP(t *testing.T) {
	srv, st, _ := testServer(t, "")
	req := `{"model":"hubbard:2x2","method":"hatt","device":"montreal","include_strings":true}`

	r1, b1 := postJSON(t, srv.URL+"/v1/compile", req)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %v", r1.StatusCode, b1)
	}
	routed, ok := b1["routed"].(map[string]any)
	if !ok {
		t.Fatalf("no routed block in %v", b1)
	}
	if routed["device"] != "Montreal" || routed["physical_qubits"] != float64(27) {
		t.Errorf("routed = %v", routed)
	}
	qasm, _ := routed["qasm"].(string)
	if qasm == "" {
		t.Fatal("routed QASM missing under include_strings")
	}
	cc, err := circuit.ReadQASM(strings.NewReader(qasm))
	if err != nil {
		t.Fatal(err)
	}
	d, _ := arch.Lookup("montreal")
	if err := arch.CheckCoupling(cc, d); err != nil {
		t.Errorf("routed circuit violates coupling: %v", err)
	}

	r2, b2 := postJSON(t, srv.URL+"/v1/compile", req)
	if r2.StatusCode != http.StatusOK || b2["cached"] != true {
		t.Fatalf("repeat compile: %d cached=%v", r2.StatusCode, b2["cached"])
	}
	routed2 := b2["routed"].(map[string]any)
	if routed2["qasm"] != qasm {
		t.Error("cached routed circuit not byte-identical")
	}
	if got := st.Stats(); got.Hits != 1 || got.Misses != 1 {
		t.Errorf("store stats = %+v", got)
	}

	// Without include_strings the metrics come back but not the circuit.
	r3, b3 := postJSON(t, srv.URL+"/v1/compile",
		`{"model":"h2","method":"hatt","device":"montreal"}`)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("bare compile: %d %v", r3.StatusCode, b3)
	}
	bare := b3["routed"].(map[string]any)
	if _, has := bare["qasm"]; has {
		t.Error("QASM leaked without include_strings")
	}
}

func TestCompileWithCustomDeviceOverHTTP(t *testing.T) {
	srv, _, _ := testServer(t, "")
	req := `{"model":"h2","method":"jw","include_strings":true,
	         "custom_device":{"name":"ring6","qubits":6,"edges":[[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}}`
	r, b := postJSON(t, srv.URL+"/v1/compile", req)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %v", r.StatusCode, b)
	}
	routed := b["routed"].(map[string]any)
	if routed["device"] != "ring6" || routed["physical_qubits"] != float64(6) {
		t.Errorf("routed = %v", routed)
	}
}

func TestDeviceRequestValidation(t *testing.T) {
	srv, _, _ := testServer(t, "")
	cases := []struct {
		body string
		code int
	}{
		// Unknown catalog device.
		{`{"model":"h2","device":"ibmq-rome"}`, http.StatusBadRequest},
		// Malformed custom-device JSON: structured 4xx, never a 500.
		{`{"model":"h2","custom_device":"ring"}`, http.StatusBadRequest},
		{`{"model":"h2","custom_device":{"name":"x","qubits":2,"edges":[[0,5]]}}`, http.StatusBadRequest},
		{`{"model":"h2","custom_device":{"name":"x","qubits":-1,"edges":[]}}`, http.StatusBadRequest},
		{`{"model":"h2","custom_device":{"qubits":2,"edges":[[0,1]]}}`, http.StatusBadRequest},
		// Both targeting forms at once.
		{`{"model":"h2","device":"montreal","custom_device":{"name":"x","qubits":2,"edges":[[0,1]]}}`, http.StatusBadRequest},
		// Device too small for the problem: compile-time 4xx.
		{`{"model":"hubbard:2x2","device":"linear:4"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		r, b := postJSON(t, srv.URL+"/v1/compile", c.body)
		if r.StatusCode != c.code {
			t.Errorf("%s → %d (%v), want %d", c.body, r.StatusCode, b["error"], c.code)
		}
		if _, ok := b["error"].(string); !ok {
			t.Errorf("%s → unstructured error payload %v", c.body, b)
		}
	}
}

func TestAsyncJobCarriesRoutedMetrics(t *testing.T) {
	srv, _, mgr := testServer(t, "")
	r, b := postJSON(t, srv.URL+"/v1/jobs",
		`{"model":"h2","method":"hatt","device":"grid:2x3"}`)
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", r.StatusCode, b)
	}
	id := b["id"].(string)
	if _, err := mgr.Wait(t.Context(), id); err != nil {
		t.Fatal(err)
	}
	rs, body := getJSON(t, srv.URL+"/v1/jobs/"+id)
	if rs.StatusCode != http.StatusOK || body["state"] != "done" {
		t.Fatalf("job status: %d %v", rs.StatusCode, body)
	}
	result := body["result"].(map[string]any)
	routed, ok := result["routed"].(map[string]any)
	if !ok {
		t.Fatalf("job result missing routed block: %v", result)
	}
	if routed["device"] != "grid:2x3" {
		t.Errorf("routed = %v", routed)
	}
	if _, has := routed["qasm"]; has {
		t.Error("routed QASM embedded without include_strings")
	}

	// With include_strings the poll carries the routed circuit too.
	r2, b2 := postJSON(t, srv.URL+"/v1/jobs",
		`{"model":"h2","method":"jw","device":"grid:2x3","include_strings":true}`)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", r2.StatusCode, b2)
	}
	id2 := b2["id"].(string)
	if _, err := mgr.Wait(t.Context(), id2); err != nil {
		t.Fatal(err)
	}
	_, body2 := getJSON(t, srv.URL+"/v1/jobs/"+id2)
	routed2 := body2["result"].(map[string]any)["routed"].(map[string]any)
	if qasm, _ := routed2["qasm"].(string); qasm == "" {
		t.Error("routed QASM missing despite include_strings")
	}
}

func TestDevicesEndpoint(t *testing.T) {
	srv, _, _ := testServer(t, "")
	r, b := getJSON(t, srv.URL+"/v1/devices")
	if r.StatusCode != http.StatusOK {
		t.Fatalf("devices: %d", r.StatusCode)
	}
	devices, ok := b["devices"].([]any)
	if !ok || len(devices) < 5 {
		t.Fatalf("devices payload = %v", b)
	}
	seen := map[string]bool{}
	for _, d := range devices {
		entry := d.(map[string]any)
		seen[entry["spec"].(string)] = true
	}
	for _, want := range []string{"manhattan", "sycamore", "montreal"} {
		if !seen[want] {
			t.Errorf("catalog listing missing %s (got %v)", want, seen)
		}
	}
}
