// Package service turns the pkg/compiler facade into a long-running
// compilation service: a job manager executing async compile jobs over a
// bounded worker pool (manager.go) and the JSON-over-HTTP API the hattd
// daemon mounts (api.go).
//
// The manager's contract mirrors what a multi-tenant front end needs:
//   - Submit is non-blocking with backpressure — a nearly-full queue
//     sheds new work with ErrOverloaded and a hard-full queue returns
//     ErrQueueFull (the HTTP layer maps both to 429 with a Retry-After)
//     instead of stalling the caller.
//   - Identical in-flight jobs deduplicate: a submission whose content
//     address (Hamiltonian fingerprint, method spec, options digest)
//     matches a queued or running job attaches to that job instead of
//     enqueueing a duplicate search.
//   - Every job compiles under its own context; Cancel aborts a queued
//     or running job without touching its neighbors.
//   - Progress snapshots come straight from the facade's WithProgress
//     events, so pollers see live search iteration counts.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/fermion"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/pkg/compiler"
)

// Sentinel errors the HTTP layer translates into status codes.
var (
	ErrQueueFull  = errors.New("service: job queue full")
	ErrOverloaded = errors.New("service: queue nearly full, shedding load")
	ErrClosed     = errors.New("service: manager shut down")
	ErrNotFound   = errors.New("service: no such job")
	ErrNotDone    = errors.New("service: job not finished")
)

// Config sizes the manager.
type Config struct {
	// Workers is the number of jobs compiled concurrently (each job runs
	// single-threaded search parallelism unless its options say
	// otherwise). Non-positive means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the pending-job queue; submissions beyond it get
	// ErrQueueFull. Non-positive means DefaultQueueDepth.
	QueueDepth int
	// ShedDepth is the queue depth at which Submit starts refusing new
	// (non-deduplicated) work with ErrOverloaded — graceful load
	// shedding with client guidance before the queue is hard-full.
	// Non-positive or > QueueDepth means 7/8 of QueueDepth, minimum 1.
	ShedDepth int
	// Store, when non-nil, is attached to every job via WithStore.
	Store compiler.Store
	// Ledger, when non-nil, is attached to every job via
	// WithMethodLedger: completed portfolio races record their outcome
	// and future races consult it for launch ordering.
	Ledger compiler.MethodLedger
	// KeepFinished bounds how many finished jobs remain pollable; the
	// oldest are forgotten first. Non-positive means DefaultKeepFinished.
	KeepFinished int
	// MaxJobTime is the server-side ceiling on any single job's compile
	// time — the async counterpart of the sync endpoint's timeout, so a
	// handful of pathological requests can never pin the worker pool
	// forever. A request's own Timeout may only tighten it.
	// Non-positive means DefaultMaxJobTime.
	MaxJobTime time.Duration
	// Tracer, when non-nil, records a job.run span (plus the compile
	// pipeline's stage spans beneath it) for every job whose Request
	// carries a valid trace context. NewAPI injects its own tracer here
	// when none is configured.
	Tracer *obs.Tracer
}

// Defaults for Config's non-positive fields.
const (
	DefaultQueueDepth   = 64
	DefaultKeepFinished = 1024
	DefaultMaxJobTime   = time.Hour
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Request describes one compilation. Either Model (a models.Resolve
// spec) or Hamiltonian must be set; Hamiltonian wins when both are.
type Request struct {
	Model       string
	Hamiltonian *fermion.MajoranaHamiltonian
	Spec        string // method spec; "" means "hatt"
	Options     []compiler.Option
	// Timeout bounds the job's compile once it starts running; ≤ 0
	// means unbounded (until Cancel or Shutdown).
	Timeout time.Duration
	// Strings records whether the submission asked for include_strings;
	// the HTTP layer uses it to decide if job polls embed the routed
	// circuit's QASM text.
	Strings bool
	// Trace, when valid, is the trace context of the submitting request:
	// the job's run records its spans under that trace ID, and Status
	// reports it so pollers can fetch the timeline.
	Trace obs.SpanContext
}

// Progress is a point-in-time snapshot of a running job's search.
type Progress struct {
	Stage      string `json:"stage,omitempty"`
	Step       int    `json:"step,omitempty"`
	Total      int    `json:"total,omitempty"`
	BestWeight int    `json:"best_weight,omitempty"`
}

// Status is the pollable view of a job.
type Status struct {
	ID       string        `json:"id"`
	State    State         `json:"state"`
	Model    string        `json:"model"`
	Spec     string        `json:"spec"`
	Attached int           `json:"attached"` // submissions deduplicated onto this job
	Progress Progress      `json:"progress"`
	Error    string        `json:"error,omitempty"`
	Created  time.Time     `json:"created"`
	Elapsed  time.Duration `json:"elapsed"`
	// ProgressByMethod breaks Progress down per reporting method, which
	// matters for portfolio jobs where several racers report
	// concurrently: the aggregate Progress carries the best (lowest)
	// weight any method reached, this map carries each racer's own view.
	ProgressByMethod map[string]Progress `json:"progress_by_method,omitempty"`
	// TraceID names the trace the job's spans record under, when the
	// submission carried one.
	TraceID string `json:"trace_id,omitempty"`
}

// job is the manager's internal record.
type job struct {
	id    string
	key   string // content address for dedup
	model string
	spec  string
	req   Request

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed when the job reaches a terminal state

	mu       sync.Mutex
	state    State
	progress map[string]Progress // keyed by reporting method (racer spec)
	lastEv   string              // method of the most recent progress event
	partial  *compiler.PartialResult
	result   *compiler.Result
	err      error
	attached int
	created  time.Time
	started  time.Time
	finished time.Time
}

// Manager owns the queue, the worker pool, and the job table.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // dedup key → queued/running job
	order    []string        // finished-job retention ring, oldest first
	seq      int64
	closed   bool

	queue  chan *job
	root   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a manager and starts its workers.
func New(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.KeepFinished <= 0 {
		cfg.KeepFinished = DefaultKeepFinished
	}
	if cfg.ShedDepth <= 0 || cfg.ShedDepth > cfg.QueueDepth {
		cfg.ShedDepth = max(1, cfg.QueueDepth*7/8)
	}
	if cfg.MaxJobTime <= 0 {
		cfg.MaxJobTime = DefaultMaxJobTime
	}
	//hatt:lint-ignore ctxflow daemon root context: the manager owns its own lifetime, not a request's
	root, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
		queue:    make(chan *job, cfg.QueueDepth),
		root:     root,
		cancel:   cancel,
	}
	m.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go m.worker()
	}
	return m
}

// setTracer installs a span buffer when the config has none; NewAPI
// calls it so the HTTP layer and the job manager share one trace store.
// Must run before the first traced submission.
func (m *Manager) setTracer(tr *obs.Tracer) {
	m.mu.Lock()
	if m.cfg.Tracer == nil {
		m.cfg.Tracer = tr
	}
	m.mu.Unlock()
}

// resolve normalizes a request into the pieces the manager keys on.
func resolve(req Request) (mh *fermion.MajoranaHamiltonian, spec, model, key string, err error) {
	spec = req.Spec
	if spec == "" {
		spec = "hatt"
	}
	if _, err = compiler.Resolve(spec); err != nil {
		return nil, "", "", "", err
	}
	mh = req.Hamiltonian
	model = req.Model
	if mh == nil {
		if model == "" {
			return nil, "", "", "", errors.New("service: request needs a Model spec or a Hamiltonian")
		}
		h, rerr := models.Resolve(model)
		if rerr != nil {
			return nil, "", "", "", rerr
		}
		mh = h.Majorana(1e-12)
	} else if model == "" {
		model = "custom"
	}
	o := compiler.NewOptions(req.Options...)
	// The dedup key is the content address plus the time budget: a
	// submitter with a generous timeout must not attach to a job about
	// to be killed by a stingy one.
	key = fmt.Sprintf("%s|%s|%s|t=%d", mh.Fingerprint(), spec, o.Digest(), req.Timeout)
	return mh, spec, model, key, nil
}

// Submit validates the request and enqueues a job, returning its status.
// If an identical job (same content address) is already queued or
// running, the submission attaches to it instead and deduped is true.
// A full queue fails fast with ErrQueueFull.
func (m *Manager) Submit(req Request) (st Status, deduped bool, err error) {
	mh, spec, model, key, err := resolve(req)
	if err != nil {
		return Status{}, false, err
	}
	req.Hamiltonian = mh
	req.Spec = spec

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, false, ErrClosed
	}
	if j, ok := m.inflight[key]; ok {
		j.mu.Lock()
		j.attached++
		j.mu.Unlock()
		st = j.status()
		m.mu.Unlock()
		return st, true, nil
	}
	// Shed before the queue is hard-full: deduplicated attaches above are
	// free and always admitted, but net-new work beyond the shed depth is
	// refused while there is still headroom, so the answer is a prompt
	// 429 with retry guidance rather than a cliff.
	if len(m.queue) >= m.cfg.ShedDepth {
		m.mu.Unlock()
		return Status{}, false, ErrOverloaded
	}
	m.seq++
	jctx, jcancel := context.WithCancel(m.root)
	j := &job{
		id:      fmt.Sprintf("job-%06d", m.seq),
		key:     key,
		model:   model,
		spec:    spec,
		req:     req,
		ctx:     jctx,
		cancel:  jcancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		jcancel()
		return Status{}, false, ErrQueueFull
	}
	m.jobs[j.id] = j
	m.inflight[key] = j
	m.mu.Unlock()
	return j.status(), false, nil
}

// worker drains the queue until Shutdown closes it.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.run(j)
	}
}

// run executes one job to a terminal state.
func (m *Manager) run(j *job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		m.finish(j)
		return
	}
	if err := j.ctx.Err(); err != nil {
		j.state = StateCanceled
		j.err = err
		j.mu.Unlock()
		m.finish(j)
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	opts := append([]compiler.Option(nil), j.req.Options...)
	// Progress snapshots key by the reporting method: a portfolio's
	// racers report concurrently, and a single map slot would let
	// whichever racer spoke last overwrite the best weight seen so far.
	opts = append(opts, compiler.WithProgress(func(ev compiler.ProgressEvent) {
		j.mu.Lock()
		if j.progress == nil {
			j.progress = make(map[string]Progress)
		}
		j.progress[ev.Method] = Progress{Stage: ev.Stage, Step: ev.Step, Total: ev.Total, BestWeight: ev.BestWeight}
		j.lastEv = ev.Method
		j.mu.Unlock()
	}))
	// Anytime best-so-far: partials are re-validated (the same
	// anticommutation check the fleet fill runs on arriving entries)
	// before they become pollable, and only a strict improvement
	// replaces the incumbent — a poller's partial weight never rises.
	opts = append(opts, compiler.WithPartial(func(p compiler.PartialResult) {
		if p.Mapping == nil || p.Mapping.Verify() != nil {
			return
		}
		j.mu.Lock()
		if j.partial == nil || p.Weight < j.partial.Weight {
			pc := p
			j.partial = &pc
		}
		j.mu.Unlock()
	}))
	if m.cfg.Store != nil {
		opts = append(opts, compiler.WithStore(m.cfg.Store))
	}
	if m.cfg.Ledger != nil {
		opts = append(opts, compiler.WithMethodLedger(m.cfg.Ledger))
	}
	timeout := m.cfg.MaxJobTime
	if j.req.Timeout > 0 && j.req.Timeout < timeout {
		timeout = j.req.Timeout
	}
	ctx, cancel := context.WithTimeout(j.ctx, timeout)
	defer cancel()
	// A submission that carried a trace context records the whole run —
	// the job.run span plus the compile pipeline's stage spans beneath it
	// — under the submitting request's trace ID.
	var span *obs.Span
	if m.cfg.Tracer != nil && j.req.Trace.Valid() {
		ctx = obs.WithTracer(ctx, m.cfg.Tracer)
		ctx = obs.WithSpanContext(ctx, j.req.Trace)
		ctx, span = obs.StartSpan(ctx, "job.run")
		span.SetAttr("job_id", j.id)
		span.SetAttr("method", j.spec)
	}
	res, err := m.execute(ctx, j, opts)
	span.End()

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case errors.Is(err, context.Canceled) && j.ctx.Err() != nil:
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	state, elapsed := j.state, j.finished.Sub(j.started)
	j.mu.Unlock()
	logger := obs.L(ctx).With("job_id", j.id, "model", j.model, "method", j.spec,
		"state", string(state), "elapsed_ms", float64(elapsed.Microseconds())/1000)
	if state == StateFailed {
		logger.Warn("job finished", "error", err.Error())
	} else {
		logger.Info("job finished")
	}
	m.finish(j)
}

// execute runs one job's compile under a panic shield: a worker that
// panics — from a method bug or an injected service.worker.panic fault
// — fails its own job instead of crashing the daemon and silently
// shrinking the pool. The service.queue.stall failpoint holds the
// worker here first, simulating a wedged dequeue path so overload
// shedding and readiness can be exercised under a stalled queue.
func (m *Manager) execute(ctx context.Context, j *job, opts []compiler.Option) (res *compiler.Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			res, err = nil, fmt.Errorf("service: compile worker panicked: %v", rec)
		}
	}()
	if serr := fault.PointCtx(ctx, "service.queue.stall"); serr != nil {
		return nil, serr
	}
	if ferr := fault.Point("service.worker.panic"); ferr != nil {
		panic(ferr)
	}
	return compiler.Compile(ctx, j.spec, j.req.Hamiltonian, opts...)
}

// finish retires a job from the dedup index, closes its done channel,
// and trims the retention ring.
func (m *Manager) finish(j *job) {
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	m.order = append(m.order, j.id)
	for len(m.order) > m.cfg.KeepFinished {
		delete(m.jobs, m.order[0])
		m.order = m.order[1:]
	}
	m.mu.Unlock()
	j.cancel() // release the context regardless of how the job ended
	close(j.done)
}

// status snapshots a job; callers must not hold j.mu.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.id,
		State:    j.state,
		Model:    j.model,
		Spec:     j.spec,
		Attached: j.attached,
		Error:    "",
		Created:  j.created,
	}
	if len(j.progress) > 0 {
		st.ProgressByMethod = make(map[string]Progress, len(j.progress))
		for m, p := range j.progress {
			st.ProgressByMethod[m] = p
		}
		// Aggregate view: the stage/step of whichever method reported
		// last, carrying the best (lowest) weight any method reached.
		st.Progress = j.progress[j.lastEv]
		for _, p := range j.progress {
			if p.BestWeight > 0 && (st.Progress.BestWeight == 0 || p.BestWeight < st.Progress.BestWeight) {
				st.Progress.BestWeight = p.BestWeight
			}
		}
	}
	if j.req.Trace.Valid() {
		st.TraceID = j.req.Trace.TraceID.String()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch {
	case !j.finished.IsZero() && !j.started.IsZero():
		st.Elapsed = j.finished.Sub(j.started)
	case !j.started.IsZero():
		st.Elapsed = time.Since(j.started)
	}
	return st
}

// lookup fetches a job by ID.
func (m *Manager) lookup(id string) (*job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Status returns the pollable snapshot of a job.
func (m *Manager) Status(id string) (Status, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	return j.status(), nil
}

// Result returns a finished job's compiled result. ErrNotDone while the
// job is queued or running; the job's own error once it failed or was
// canceled.
func (m *Manager) Result(id string) (*compiler.Result, error) {
	j, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateDone:
		return j.result, nil
	case StateFailed, StateCanceled:
		return nil, j.err
	default:
		return nil, ErrNotDone
	}
}

// Partial returns a job's validated best-so-far result, when any method
// has produced one. The snapshot is monotone — successive calls never
// report a worse weight — and survives the job's terminal state, so a
// canceled anytime job still serves its incumbent. ok is false while no
// partial has been validated yet.
func (m *Manager) Partial(id string) (p compiler.PartialResult, ok bool, err error) {
	j, lerr := m.lookup(id)
	if lerr != nil {
		return compiler.PartialResult{}, false, lerr
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.partial == nil {
		return compiler.PartialResult{}, false, nil
	}
	return *j.partial, true, nil
}

// Cancel aborts a queued or running job. Canceling a finished job is a
// no-op; an unknown ID is ErrNotFound.
func (m *Manager) Cancel(id string) (Status, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	// Retire the job from the dedup index right away: a canceled job
	// must not capture later identical submissions (they would inherit
	// its doom instead of compiling).
	m.mu.Lock()
	if m.inflight[j.key] == j {
		delete(m.inflight, j.key)
	}
	m.mu.Unlock()
	j.mu.Lock()
	if j.state == StateQueued {
		// Mark immediately so a poll never sees "queued" on a canceled
		// job; the worker will skip it when it surfaces.
		j.state = StateCanceled
		j.err = context.Canceled
	}
	j.mu.Unlock()
	j.cancel()
	return j.status(), nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	j, err := m.lookup(id)
	if err != nil {
		return Status{}, err
	}
	select {
	case <-j.done:
		return j.status(), nil
	case <-ctx.Done():
		return j.status(), ctx.Err()
	}
}

// QueueDepth returns (pending, capacity).
func (m *Manager) QueueDepth() (int, int) { return len(m.queue), cap(m.queue) }

// Draining reports whether Shutdown has begun: new submissions are
// refused and the readiness probe should steer traffic elsewhere while
// queued and running jobs finish.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Counts tallies jobs by state across the retained table.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	counts := make(map[State]int)
	for _, j := range m.jobs {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	return counts
}

// Shutdown stops accepting submissions and drains: queued and running
// jobs finish normally unless ctx expires first, at which point every
// remaining job is canceled and Shutdown returns ctx.Err(). Idempotent.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		m.cancel()
		return nil
	case <-ctx.Done():
		m.cancel() // abort in-flight jobs
		<-drained
		return ctx.Err()
	}
}
