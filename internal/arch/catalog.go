package arch

import (
	"fmt"
	"strconv"
	"strings"
)

// Linear returns an n-qubit nearest-neighbor chain — the simplest
// constrained topology and the worst case for routing overhead.
func Linear(n int) (*Device, error) {
	edges := make([][2]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return NewDevice(fmt.Sprintf("linear:%d", n), n, edges)
}

// Grid returns an r×c square-lattice device (degree ≤ 4, no diagonals).
func Grid(r, c int) (*Device, error) {
	if r <= 0 || c <= 0 {
		return nil, fmt.Errorf("arch: grid needs positive dimensions, got %dx%d", r, c)
	}
	if r > maxGridDim || c > maxGridDim || r*c > MaxSpecQubits {
		return nil, fmt.Errorf("arch: grid %dx%d too large (max %d qubits)", r, c, MaxSpecQubits)
	}
	var edges [][2]int
	idx := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				edges = append(edges, [2]int{idx(i, j), idx(i, j+1)})
			}
			if i+1 < r {
				edges = append(edges, [2]int{idx(i, j), idx(i+1, j)})
			}
		}
	}
	return NewDevice(fmt.Sprintf("grid:%dx%d", r, c), r*c, edges)
}

// Size guardrails for the parametric device families, so a spec like
// "linear:1000000000" is rejected at parse cost instead of allocating.
const (
	// MaxSpecQubits bounds linear:N / grid:RxC and custom JSON devices.
	MaxSpecQubits = 1 << 16
	maxGridDim    = 1 << 12
)

// Info describes one catalog entry for listings (hattc -list-devices,
// the service's /v1/devices).
type Info struct {
	Spec        string `json:"spec"`   // what Lookup accepts
	Name        string `json:"name"`   // the device's display name
	Qubits      int    `json:"qubits"` // 0 for parametric families
	Couplers    int    `json:"couplers,omitempty"`
	Description string `json:"description"`
}

// Catalog lists every device spec Lookup resolves: the three fixed
// coupling graphs the paper evaluates plus the two parametric families.
func Catalog() []Info {
	fixed := []struct {
		spec string
		d    *Device
		desc string
	}{
		{"manhattan", Manhattan(), "IBM Manhattan, 65-qubit heavy-hex (Table IV)"},
		{"sycamore", Sycamore(), "Google Sycamore, 54-qubit grid with woven diagonals (Table IV)"},
		{"montreal", Montreal(), "IBM Montreal, 27-qubit heavy-hex (Table IV)"},
	}
	out := make([]Info, 0, len(fixed)+2)
	for _, f := range fixed {
		out = append(out, Info{
			Spec: f.spec, Name: f.d.Name, Qubits: f.d.N,
			Couplers: len(f.d.Edges()), Description: f.desc,
		})
	}
	out = append(out,
		Info{Spec: "linear:<n>", Name: "linear chain", Description: "n-qubit nearest-neighbor line"},
		Info{Spec: "grid:<r>x<c>", Name: "square grid", Description: "r×c lattice, degree ≤ 4"},
	)
	return out
}

// Normalize canonicalizes a catalog spec (trim, lower-case) without
// resolving it, so equivalent spellings share cache keys.
func Normalize(spec string) string {
	return strings.ToLower(strings.TrimSpace(spec))
}

// Lookup resolves a device spec from the catalog: "manhattan",
// "sycamore", "montreal", "linear:<n>", or "grid:<r>x<c>"
// (case-insensitive). Unknown or malformed specs are errors.
func Lookup(spec string) (*Device, error) {
	s := Normalize(spec)
	switch s {
	case "manhattan":
		return Manhattan(), nil
	case "sycamore":
		return Sycamore(), nil
	case "montreal":
		return Montreal(), nil
	}
	if arg, ok := strings.CutPrefix(s, "linear:"); ok {
		n, err := strconv.Atoi(arg)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("arch: bad linear spec %q (want linear:<n>)", spec)
		}
		if n > MaxSpecQubits {
			return nil, fmt.Errorf("arch: linear:%d too large (max %d qubits)", n, MaxSpecQubits)
		}
		return Linear(n)
	}
	if arg, ok := strings.CutPrefix(s, "grid:"); ok {
		rs, cs, ok := strings.Cut(arg, "x")
		if !ok {
			return nil, fmt.Errorf("arch: bad grid spec %q (want grid:<r>x<c>)", spec)
		}
		r, err1 := strconv.Atoi(rs)
		c, err2 := strconv.Atoi(cs)
		if err1 != nil || err2 != nil || r <= 0 || c <= 0 {
			return nil, fmt.Errorf("arch: bad grid spec %q (want grid:<r>x<c>)", spec)
		}
		return Grid(r, c)
	}
	return nil, fmt.Errorf("arch: unknown device %q (want manhattan | sycamore | montreal | linear:<n> | grid:<r>x<c>)", spec)
}
