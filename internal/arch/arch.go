// Package arch models superconducting device topologies and implements the
// "tetris-lite" routing pass used for Table IV: compiling a logical
// {CNOT, U3} circuit onto a constrained coupling graph by greedy initial
// placement and BFS SWAP insertion. It ships the three coupling graphs the
// paper evaluates: IBM Manhattan (65 qubits, heavy-hex), Google Sycamore
// (54 qubits, 2D grid with diagonal couplers), and IBM Montreal (27
// qubits, heavy-hex).
package arch

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// Device is an undirected coupling graph over physical qubits.
type Device struct {
	Name  string
	N     int
	adj   map[int]map[int]bool
	edges [][2]int
}

// NewDevice builds a device from an edge list. Construction is the
// validation boundary: a non-positive qubit count, a self-loop, or an
// out-of-range endpoint is an error here (never a panic), so malformed
// input — e.g. a custom device JSON — surfaces as a structured failure
// to whoever supplied it.
func NewDevice(name string, n int, edges [][2]int) (*Device, error) {
	if n <= 0 {
		return nil, fmt.Errorf("arch: device %q needs a positive qubit count, got %d", name, n)
	}
	d := &Device{Name: name, N: n, adj: make(map[int]map[int]bool)}
	for i := 0; i < n; i++ {
		d.adj[i] = make(map[int]bool)
	}
	for _, e := range edges {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// mustDevice builds one of the package's own catalog devices, whose edge
// lists are program constants: a failure is an internal invariant
// violation, the one place a panic is still appropriate.
func mustDevice(name string, n int, edges [][2]int) *Device {
	d, err := NewDevice(name, n, edges)
	if err != nil {
		panic("arch: invalid built-in device: " + err.Error())
	}
	return d
}

// AddEdge inserts an undirected coupling. Self-loops and out-of-range
// endpoints are errors; inserting an existing edge is a no-op.
func (d *Device) AddEdge(a, b int) error {
	if a == b {
		return fmt.Errorf("arch: self-loop edge (%d,%d) on %s", a, b, d.Name)
	}
	if a < 0 || b < 0 || a >= d.N || b >= d.N {
		return fmt.Errorf("arch: edge (%d,%d) out of range on %s (%d qubits)", a, b, d.Name, d.N)
	}
	if d.adj[a][b] {
		return nil
	}
	d.adj[a][b] = true
	d.adj[b][a] = true
	d.edges = append(d.edges, [2]int{a, b})
	return nil
}

// Fingerprint returns a stable content hash of the device — name, qubit
// count, and the sorted edge set — used to content-address compilation
// results routed onto custom devices.
func (d *Device) Fingerprint() string {
	edges := make([][2]int, len(d.edges))
	for i, e := range d.edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		edges[i] = [2]int{a, b}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(d.Name)))
	h.Write(buf[:])
	h.Write([]byte(d.Name))
	binary.LittleEndian.PutUint64(buf[:], uint64(d.N))
	h.Write(buf[:])
	for _, e := range edges {
		binary.LittleEndian.PutUint64(buf[:], uint64(e[0]))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(e[1]))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Coupled reports whether physical qubits a and b share a coupler.
func (d *Device) Coupled(a, b int) bool { return d.adj[a][b] }

// Edges returns the coupler list.
func (d *Device) Edges() [][2]int { return d.edges }

// Degree returns the coupler count of physical qubit p.
func (d *Device) Degree(p int) int { return len(d.adj[p]) }

// Neighbors returns the sorted neighbor list of p.
func (d *Device) Neighbors(p int) []int {
	out := make([]int, 0, len(d.adj[p]))
	for q := range d.adj[p] {
		out = append(out, q)
	}
	sort.Ints(out)
	return out
}

// ShortestPath returns a BFS shortest path between physical qubits, both
// endpoints included. Returns nil if disconnected.
func (d *Device) ShortestPath(a, b int) []int {
	if a == b {
		return []int{a}
	}
	prev := make([]int, d.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[a] = a
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range d.Neighbors(cur) {
			if prev[nb] != -1 {
				continue
			}
			prev[nb] = cur
			if nb == b {
				var path []int
				for v := b; v != a; v = prev[v] {
					path = append(path, v)
				}
				path = append(path, a)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// Connected reports whether the coupling graph is connected.
func (d *Device) Connected() bool {
	if d.N == 0 {
		return true
	}
	seen := make([]bool, d.N)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range d.Neighbors(cur) {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == d.N
}

// heavyHex builds an IBM-style heavy-hex lattice with the given number of
// rows of d-qubit chains, matching the qubit counts of the named devices.
func heavyHex(rows, rowLen, bridge, oddOff int) (int, [][2]int) {
	// Rows of `rowLen` qubits connected linearly; between consecutive rows,
	// bridge qubits connect every `bridge` columns, with odd row pairs
	// offset by oddOff — the simplified heavy-hex used here.
	var edges [][2]int
	id := 0
	rowStart := make([]int, rows)
	for r := 0; r < rows; r++ {
		rowStart[r] = id
		for c := 0; c+1 < rowLen; c++ {
			edges = append(edges, [2]int{id + c, id + c + 1})
		}
		id += rowLen
	}
	for r := 0; r+1 < rows; r++ {
		off := 0
		if r%2 == 1 {
			off = oddOff
		}
		for c := off; c < rowLen; c += bridge {
			b := id
			id++
			edges = append(edges, [2]int{rowStart[r] + c, b})
			edges = append(edges, [2]int{b, rowStart[r+1] + c})
		}
	}
	return id, edges
}

// Manhattan returns the 65-qubit IBM Manhattan heavy-hex coupling graph
// (simplified layout with the correct qubit count and max degree 3).
func Manhattan() *Device {
	n, edges := heavyHex(5, 11, 4, 3)
	return mustDevice("Manhattan", n, edges)
}

// Montreal returns the 27-qubit IBM Montreal coupling graph (simplified
// heavy-hex with the correct qubit count; a few junction qubits reach
// degree 4 in this abstraction).
func Montreal() *Device {
	n, edges := heavyHex(3, 7, 3, 0)
	return mustDevice("Montreal", n, edges)
}

// Sycamore returns the 54-qubit Google Sycamore coupling graph: a 6×9
// grid where each qubit couples to its diagonal neighbors in the woven
// Sycamore pattern (simplified to the standard degree-4 grid-diagonal
// abstraction).
func Sycamore() *Device {
	const rows, cols = 6, 9
	var edges [][2]int
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				edges = append(edges, [2]int{idx(r, c), idx(r+1, c)})
				if c+1 < cols && (r+c)%2 == 0 {
					edges = append(edges, [2]int{idx(r, c), idx(r+1, c+1)})
				}
			}
		}
	}
	return mustDevice("Sycamore", rows*cols, edges)
}
