package arch

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/pauli"
	"repro/internal/sim"
)

// randomLogical synthesizes a Trotter circuit for a seeded random
// Hamiltonian on n qubits — the same kind of workload the compiler
// routes in production.
func randomLogical(seed int64, n, terms int) *circuit.Circuit {
	r := rand.New(rand.NewSource(seed))
	h := pauli.NewHamiltonian(n)
	for t := 0; t < terms; t++ {
		s := pauli.Identity(n)
		support := 0
		for q := 0; q < n; q++ {
			if r.Intn(3) == 0 {
				s.SetLetter(q, pauli.Letter(1+r.Intn(3)))
				support++
			}
		}
		if support == 0 {
			s.SetLetter(r.Intn(n), pauli.X)
		}
		h.Add(complex(0.1+r.Float64(), 0), s)
	}
	return circuit.Compile(h, circuit.OrderLexicographic)
}

// TestRoutePropertyCatalog routes random workloads onto every catalog
// device and checks the structural invariants that hold at any size:
// the routed circuit respects the coupling graph, the final layout is a
// valid injection, and the CNOT accounting matches — at most
// logical + 3·swaps CNOTs survive the peephole pass, with the same
// parity (cancellation removes pairs).
func TestRoutePropertyCatalog(t *testing.T) {
	devices := []string{"manhattan", "sycamore", "montreal", "linear:12", "grid:4x5"}
	for _, spec := range devices {
		d, err := Lookup(spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			n := 4 + int(seed)*2 // 6..10 logical qubits
			if n > d.N {
				n = d.N
			}
			logical := randomLogical(seed, n, 8)
			res, err := Route(logical, d)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, err)
			}
			if err := CheckCoupling(res.Circuit, d); err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, err)
			}
			seen := map[int]bool{}
			for l, p := range res.FinalLayout {
				if p < 0 || p >= d.N || seen[p] {
					t.Fatalf("%s seed %d: bad layout %v at logical %d", spec, seed, res.FinalLayout, l)
				}
				seen[p] = true
			}
			preOpt := logical.CNOTCount() + 3*res.SwapsAdded
			got := res.Circuit.CNOTCount()
			if got > preOpt {
				t.Fatalf("%s seed %d: routed CNOTs %d exceed accounting bound %d", spec, seed, got, preOpt)
			}
			if (preOpt-got)%2 != 0 {
				t.Fatalf("%s seed %d: peephole removed an odd CNOT count (%d → %d)", spec, seed, preOpt, got)
			}
		}
	}
}

// TestRoutePropertySemantics checks full unitary-action equivalence on
// devices small enough to state-vector simulate: the routed circuit,
// read back through the final layout, must act identically to the
// logical circuit on every seed tried.
func TestRoutePropertySemantics(t *testing.T) {
	devices := []string{"linear:5", "linear:6", "grid:2x3", "grid:3x3"}
	for _, spec := range devices {
		d, err := Lookup(spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 4; seed++ {
			n := d.N - int(seed)%2 // exercise both full and partial occupancy
			logical := randomLogical(seed*31, n, 6)
			res, err := Route(logical, d)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, err)
			}
			assertSameAction(t, fmt.Sprintf("%s seed %d", spec, seed), logical, res)
		}
	}
}

// assertSameAction simulates both circuits from |0…0⟩ and compares the
// routed state, read back through FinalLayout, against the logical one
// up to a global phase.
func assertSameAction(t *testing.T, label string, logical *circuit.Circuit, res *RouteResult) {
	t.Helper()
	ls := sim.NewState(logical.N)
	ls.ApplyCircuit(logical)
	ps := sim.NewState(res.Circuit.N)
	ps.ApplyCircuit(res.Circuit)

	physIndex := func(b int) int {
		pb := 0
		for q := 0; q < logical.N; q++ {
			if b>>uint(q)&1 == 1 {
				pb |= 1 << uint(res.FinalLayout[q])
			}
		}
		return pb
	}
	var phase complex128
	total := 0.0
	for b := 0; b < 1<<logical.N; b++ {
		la, pa := ls.Amp[b], ps.Amp[physIndex(b)]
		total += real(pa)*real(pa) + imag(pa)*imag(pa)
		if cmplx.Abs(la) < 1e-10 && cmplx.Abs(pa) < 1e-10 {
			continue
		}
		if cmplx.Abs(la) < 1e-10 || cmplx.Abs(pa) < 1e-10 {
			t.Fatalf("%s: amplitude support mismatch at %b", label, b)
		}
		if phase == 0 {
			phase = pa / la
			if math.Abs(cmplx.Abs(phase)-1) > 1e-9 {
				t.Fatalf("%s: non-unit relative phase %v", label, phase)
			}
			continue
		}
		if cmplx.Abs(la*phase-pa) > 1e-9 {
			t.Fatalf("%s: routed amplitude differs at %b", label, b)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("%s: routed state leaks outside the layout subspace: %v", label, total)
	}
}

func TestCheckCouplingCatchesViolations(t *testing.T) {
	d := testDevice(t, "line", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	good := circuit.New(4)
	good.Append(circuit.H(0), circuit.CNOT(1, 2))
	if err := CheckCoupling(good, d); err != nil {
		t.Errorf("valid circuit rejected: %v", err)
	}
	bad := circuit.New(4)
	bad.Append(circuit.CNOT(0, 3))
	if err := CheckCoupling(bad, d); err == nil {
		t.Error("uncoupled CNOT accepted")
	}
	big := circuit.New(5)
	if err := CheckCoupling(big, d); err == nil {
		t.Error("oversized circuit accepted")
	}
}
