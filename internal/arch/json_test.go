package arch

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseDeviceJSON(t *testing.T) {
	d, err := ParseDeviceJSON([]byte(`{"name":"ring4","qubits":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "ring4" || d.N != 4 || len(d.Edges()) != 4 {
		t.Errorf("parsed device %q N=%d edges=%d", d.Name, d.N, len(d.Edges()))
	}
	if !d.Coupled(3, 0) {
		t.Error("edge (3,0) missing")
	}
}

func TestParseDeviceJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":         `ring`,
		"unknown field":    `{"name":"x","qubits":2,"edges":[[0,1]],"frequency":5}`,
		"trailing garbage": `{"name":"x","qubits":2,"edges":[[0,1]]} {"more":1}`,
		"missing name":     `{"qubits":2,"edges":[[0,1]]}`,
		"zero qubits":      `{"name":"x","qubits":0,"edges":[]}`,
		"self loop":        `{"name":"x","qubits":2,"edges":[[1,1]]}`,
		"out of range":     `{"name":"x","qubits":2,"edges":[[0,2]]}`,
		"negative":         `{"name":"x","qubits":2,"edges":[[-1,0]]}`,
		"oversized":        `{"name":"x","qubits":99999999,"edges":[]}`,
		"edge arity":       `{"name":"x","qubits":3,"edges":[[0,1,2]]}`,
	}
	for label, raw := range cases {
		if _, err := ParseDeviceJSON([]byte(raw)); err == nil {
			t.Errorf("%s: accepted %s", label, raw)
		}
	}
}

func TestLoadDeviceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.json")
	if err := os.WriteFile(path, []byte(`{"name":"pair","qubits":2,"edges":[[0,1]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDeviceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "pair" || d.N != 2 {
		t.Errorf("loaded %q N=%d", d.Name, d.N)
	}
	if _, err := LoadDeviceFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// FuzzParseDeviceJSON pins the loader's contract: arbitrary bytes never
// panic, and anything it does accept satisfies the device invariants.
func FuzzParseDeviceJSON(f *testing.F) {
	f.Add([]byte(`{"name":"ring4","qubits":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}`))
	f.Add([]byte(`{"name":"x","qubits":2,"edges":[[0,1]]}`))
	f.Add([]byte(`{"name":"x","qubits":0,"edges":[]}`))
	f.Add([]byte(`{"qubits":1e9}`))
	f.Add([]byte(`[[0,1]]`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := ParseDeviceJSON(raw)
		if err != nil {
			return
		}
		if d.Name == "" || d.N <= 0 || d.N > MaxSpecQubits {
			t.Fatalf("accepted device violates invariants: %q N=%d", d.Name, d.N)
		}
		for _, e := range d.Edges() {
			if e[0] == e[1] || e[0] < 0 || e[1] < 0 || e[0] >= d.N || e[1] >= d.N {
				t.Fatalf("accepted bad edge %v on %d qubits", e, d.N)
			}
			if !d.Coupled(e[0], e[1]) || !d.Coupled(e[1], e[0]) {
				t.Fatalf("edge %v not symmetric", e)
			}
		}
	})
}
