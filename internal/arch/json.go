package arch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// DeviceSpec is the JSON wire/file schema for a custom device:
//
//	{"name": "ring6", "qubits": 6, "edges": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,0]]}
//
// Edges are undirected; duplicates are tolerated, self-loops and
// out-of-range endpoints are errors.
type DeviceSpec struct {
	Name   string  `json:"name"`
	Qubits int     `json:"qubits"`
	Edges  [][]int `json:"edges"` // each entry exactly [a, b]
}

// Device validates the spec and builds the coupling graph.
func (s *DeviceSpec) Device() (*Device, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("arch: custom device needs a name")
	}
	if s.Qubits > MaxSpecQubits {
		return nil, fmt.Errorf("arch: custom device %q has %d qubits (max %d)", s.Name, s.Qubits, MaxSpecQubits)
	}
	edges := make([][2]int, len(s.Edges))
	for i, e := range s.Edges {
		if len(e) != 2 {
			return nil, fmt.Errorf("arch: custom device %q edge %d has %d endpoints, want 2", s.Name, i, len(e))
		}
		edges[i] = [2]int{e[0], e[1]}
	}
	return NewDevice(s.Name, s.Qubits, edges)
}

// ParseDeviceJSON decodes and validates a custom-device JSON document.
// Unknown fields and trailing garbage are rejected so a typo'd schema
// fails loudly; every failure is an error, never a panic — the service
// maps these straight to structured 4xx responses.
func ParseDeviceJSON(raw []byte) (*Device, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var spec DeviceSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("arch: invalid device JSON: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("arch: trailing data after device JSON")
	}
	return spec.Device()
}

// LoadDeviceFile reads a custom device from a JSON edge-list file
// (hattc -device-file).
func LoadDeviceFile(path string) (*Device, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseDeviceJSON(raw)
}
