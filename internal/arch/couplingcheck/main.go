// Command couplingcheck is the independent auditor the CI route-smoke
// job runs: given a device and a routed circuit in OpenQASM 2.0, it
// verifies every two-qubit gate respects the device's coupling graph and
// prints the gate accounting. It exits non-zero on any violation, so
// `go run ./internal/arch/couplingcheck -device montreal -qasm routed.qasm`
// is a one-line hardware-validity gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/arch"
	"repro/internal/circuit"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "couplingcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	device := flag.String("device", "", "catalog device spec (manhattan | sycamore | montreal | linear:<n> | grid:<r>x<c>)")
	deviceFile := flag.String("device-file", "", "custom device JSON edge-list file instead of -device")
	qasm := flag.String("qasm", "-", "routed circuit in OpenQASM 2.0 ('-' = stdin)")
	flag.Parse()

	var d *arch.Device
	var err error
	switch {
	case *device != "" && *deviceFile != "":
		return fmt.Errorf("-device and -device-file are mutually exclusive")
	case *device != "":
		d, err = arch.Lookup(*device)
	case *deviceFile != "":
		d, err = arch.LoadDeviceFile(*deviceFile)
	default:
		return fmt.Errorf("need -device or -device-file")
	}
	if err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *qasm != "-" {
		f, err := os.Open(*qasm)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	c, err := circuit.ReadQASM(r)
	if err != nil {
		return err
	}
	if err := arch.CheckCoupling(c, d); err != nil {
		return err
	}
	fmt.Printf("ok: %d gates (%d cx, %d u3, depth %d) on %s (%d qubits, %d couplers)\n",
		len(c.Gates), c.CNOTCount(), c.SingleCount(), c.Depth(), d.Name, d.N, len(d.Edges()))
	return nil
}
