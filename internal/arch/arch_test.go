package arch

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/pauli"
)

// testDevice builds a device, failing the test on construction errors —
// the test-side counterpart of the error-returning public boundary.
func testDevice(t *testing.T, name string, n int, edges [][2]int) *Device {
	t.Helper()
	d, err := NewDevice(name, n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDevicesWellFormed(t *testing.T) {
	cases := []struct {
		d    *Device
		want int
	}{
		{Manhattan(), 65},
		{Sycamore(), 54},
		{Montreal(), 27},
	}
	for _, c := range cases {
		if c.d.N != c.want {
			t.Errorf("%s has %d qubits, want %d", c.d.Name, c.d.N, c.want)
		}
		if !c.d.Connected() {
			t.Errorf("%s coupling graph disconnected", c.d.Name)
		}
		for _, e := range c.d.Edges() {
			if !c.d.Coupled(e[0], e[1]) || !c.d.Coupled(e[1], e[0]) {
				t.Errorf("%s edge %v not symmetric", c.d.Name, e)
			}
		}
	}
}

func TestHeavyHexDegreeProfile(t *testing.T) {
	// Manhattan's heavy-hex abstraction keeps max degree 3; the simplified
	// Montreal reaches degree 4 at a few junctions.
	for p := 0; p < Manhattan().N; p++ {
		if Manhattan().Degree(p) > 3 {
			t.Errorf("Manhattan qubit %d degree %d > 3", p, Manhattan().Degree(p))
		}
	}
	for p := 0; p < Montreal().N; p++ {
		if Montreal().Degree(p) > 4 {
			t.Errorf("Montreal qubit %d degree %d > 4", p, Montreal().Degree(p))
		}
	}
	// Sycamore grid-diagonal abstraction: max degree ≤ 4.
	s := Sycamore()
	for p := 0; p < s.N; p++ {
		if s.Degree(p) > 4 {
			t.Errorf("Sycamore qubit %d degree %d > 4", p, s.Degree(p))
		}
	}
}

func TestShortestPath(t *testing.T) {
	d := testDevice(t, "line", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	p := d.ShortestPath(0, 3)
	if len(p) != 4 || p[0] != 0 || p[3] != 3 {
		t.Errorf("path = %v", p)
	}
	if q := d.ShortestPath(2, 2); len(q) != 1 {
		t.Errorf("self path = %v", q)
	}
	d2 := testDevice(t, "split", 4, [][2]int{{0, 1}, {2, 3}})
	if d2.ShortestPath(0, 3) != nil {
		t.Error("disconnected path should be nil")
	}
	if d2.Connected() {
		t.Error("split device reported connected")
	}
}

func TestRouteRespectsCoupling(t *testing.T) {
	d := testDevice(t, "line", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	c := circuit.New(4)
	c.Append(circuit.H(0), circuit.CNOT(0, 3), circuit.CNOT(1, 2), circuit.CNOT(0, 3))
	res, err := Route(c, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range res.Circuit.Gates {
		if g.Kind == circuit.KindCNOT && !d.Coupled(g.Q, g.Q2) {
			t.Fatalf("routed CNOT %d→%d violates coupling", g.Q2, g.Q)
		}
	}
}

func TestRouteAdjacentNeedsNoSwaps(t *testing.T) {
	d := testDevice(t, "line", 3, [][2]int{{0, 1}, {1, 2}})
	c := circuit.New(2)
	c.Append(circuit.CNOT(0, 1), circuit.CNOT(0, 1), circuit.CNOT(0, 1))
	res, err := Route(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsAdded != 0 {
		t.Errorf("swaps = %d, want 0", res.SwapsAdded)
	}
	// Routed + optimized: odd CX count collapses to one.
	if res.Circuit.CNOTCount() != 1 {
		t.Errorf("CNOTs = %d, want 1", res.Circuit.CNOTCount())
	}
}

func TestRouteTooLarge(t *testing.T) {
	d := testDevice(t, "tiny", 2, [][2]int{{0, 1}})
	c := circuit.New(3)
	if _, err := Route(c, d); err == nil {
		t.Error("oversized circuit accepted")
	}
}

func TestRouteRealWorkload(t *testing.T) {
	// Route a small Trotter circuit onto Montreal and check metrics are
	// sane: routing can only add CNOTs, never remove logical ones.
	h := pauli.NewHamiltonian(6)
	h.Add(0.5, pauli.MustParse("XXIIII"))
	h.Add(0.4, pauli.MustParse("IIZZII"))
	h.Add(0.3, pauli.MustParse("ZIIIIZ"))
	h.Add(0.2, pauli.MustParse("IYYIII"))
	logical := circuit.Compile(h, circuit.OrderLexicographic)
	res, err := Route(logical, Montreal())
	if err != nil {
		t.Fatal(err)
	}
	if res.Circuit.CNOTCount() < logical.CNOTCount() {
		t.Errorf("routing lost CNOTs: %d < %d", res.Circuit.CNOTCount(), logical.CNOTCount())
	}
	for _, g := range res.Circuit.Gates {
		if g.Kind == circuit.KindCNOT && !Montreal().Coupled(g.Q, g.Q2) {
			t.Fatal("coupling violation on Montreal")
		}
	}
}

func TestInitialLayoutCoLocatesPartners(t *testing.T) {
	d := Montreal()
	c := circuit.New(4)
	for i := 0; i < 10; i++ {
		c.Append(circuit.CNOT(0, 1))
	}
	c.Append(circuit.CNOT(2, 3))
	layout := initialLayout(c, d)
	// The hot pair (0,1) should be physically adjacent.
	if !d.Coupled(layout[0], layout[1]) {
		t.Errorf("hot pair placed apart: %d, %d", layout[0], layout[1])
	}
	seen := map[int]bool{}
	for _, p := range layout {
		if seen[p] {
			t.Fatal("layout reuses a physical qubit")
		}
		seen[p] = true
	}
}

func TestNearestFree(t *testing.T) {
	d := testDevice(t, "line", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	used := []bool{true, true, false, false}
	if p := nearestFree(d, 0, used); p != 2 {
		t.Errorf("nearestFree = %d, want 2", p)
	}
	if p := nearestFree(d, 2, used); p != 2 {
		t.Errorf("nearestFree from free = %d, want 2", p)
	}
}
