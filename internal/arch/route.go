package arch

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
)

// RouteResult is a routed circuit plus bookkeeping.
type RouteResult struct {
	Circuit    *circuit.Circuit // over physical qubits
	SwapsAdded int
	// FinalLayout maps logical qubit -> physical qubit after routing.
	FinalLayout []int
}

// Route compiles a logical circuit onto a device ("tetris-lite"): logical
// qubits get an initial greedy placement that co-locates frequently
// interacting pairs on high-degree physical qubits, then each CNOT between
// non-adjacent qubits is routed by moving the control along a BFS shortest
// path with SWAPs (3 CNOTs each). Single-qubit gates pass through. The
// result is optimized with the peephole pass.
func Route(c *circuit.Circuit, d *Device) (*RouteResult, error) {
	if c.N > d.N {
		return nil, fmt.Errorf("arch: circuit needs %d qubits, %s has %d", c.N, d.Name, d.N)
	}
	layout := initialLayout(c, d) // logical -> physical
	phys := make([]int, d.N)      // physical -> logical (-1 = free)
	for i := range phys {
		phys[i] = -1
	}
	for l, p := range layout {
		phys[p] = l
	}
	out := circuit.New(d.N)
	swaps := 0
	emitSwap := func(a, b int) {
		out.Append(circuit.CNOT(a, b), circuit.CNOT(b, a), circuit.CNOT(a, b))
		la, lb := phys[a], phys[b]
		phys[a], phys[b] = lb, la
		if la >= 0 {
			layout[la] = b
		}
		if lb >= 0 {
			layout[lb] = a
		}
		swaps++
	}
	for _, g := range c.Gates {
		if g.Kind == circuit.KindSingle {
			ng := g
			ng.Q = layout[g.Q]
			out.Append(ng)
			continue
		}
		pc, pt := layout[g.Q2], layout[g.Q]
		if !d.Coupled(pc, pt) {
			path := d.ShortestPath(pc, pt)
			if path == nil {
				return nil, fmt.Errorf("arch: %s disconnected between %d and %d", d.Name, pc, pt)
			}
			// Swap the control along the path until adjacent to the target.
			for i := 0; i+2 < len(path); i++ {
				emitSwap(path[i], path[i+1])
			}
			pc = layout[g.Q2]
			pt = layout[g.Q]
		}
		out.Append(circuit.CNOT(pc, pt))
	}
	return &RouteResult{
		Circuit:     circuit.Optimize(out),
		SwapsAdded:  swaps,
		FinalLayout: layout,
	}, nil
}

// initialLayout places the most-interacting logical qubits on a
// high-degree connected region: logical qubits are sorted by CNOT
// activity, the busiest is placed on the highest-degree physical qubit,
// and each subsequent qubit goes to the free physical qubit adjacent to
// (or nearest) its strongest already-placed partner.
func initialLayout(c *circuit.Circuit, d *Device) []int {
	inter := make(map[[2]int]int)
	activity := make([]int, c.N)
	for _, g := range c.Gates {
		if g.Kind != circuit.KindCNOT {
			continue
		}
		a, b := g.Q2, g.Q
		if a > b {
			a, b = b, a
		}
		inter[[2]int{a, b}]++
		activity[g.Q]++
		activity[g.Q2]++
	}
	order := make([]int, c.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return activity[order[i]] > activity[order[j]] })

	layout := make([]int, c.N)
	for i := range layout {
		layout[i] = -1
	}
	used := make([]bool, d.N)
	// Seed: busiest logical qubit on the highest-degree physical one.
	bestP := 0
	for p := 1; p < d.N; p++ {
		if d.Degree(p) > d.Degree(bestP) {
			bestP = p
		}
	}
	place := func(l, p int) {
		layout[l] = p
		used[p] = true
	}
	place(order[0], bestP)
	for _, l := range order[1:] {
		// Strongest placed partner.
		bestPartner, bestW := -1, -1
		for o := 0; o < c.N; o++ {
			if layout[o] < 0 || o == l {
				continue
			}
			a, b := l, o
			if a > b {
				a, b = b, a
			}
			if w := inter[[2]int{a, b}]; w > bestW {
				bestW, bestPartner = w, o
			}
		}
		target := bestP
		if bestPartner >= 0 {
			target = layout[bestPartner]
		}
		// Nearest free physical qubit to target (BFS).
		p := nearestFree(d, target, used)
		place(l, p)
	}
	return layout
}

func nearestFree(d *Device, from int, used []bool) int {
	if !used[from] {
		return from
	}
	seen := make([]bool, d.N)
	seen[from] = true
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range d.Neighbors(cur) {
			if seen[nb] {
				continue
			}
			if !used[nb] {
				return nb
			}
			seen[nb] = true
			queue = append(queue, nb)
		}
	}
	panic("arch: no free physical qubit")
}
