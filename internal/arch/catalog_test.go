package arch

import (
	"strings"
	"testing"
)

func TestLookupCatalog(t *testing.T) {
	cases := []struct {
		spec   string
		qubits int
	}{
		{"manhattan", 65},
		{"sycamore", 54},
		{"montreal", 27},
		{"Montreal", 27},   // case-insensitive
		{" MONTREAL ", 27}, // and whitespace-tolerant
		{"linear:7", 7},
		{"grid:3x4", 12},
		{"grid:1x2", 2},
	}
	for _, c := range cases {
		d, err := Lookup(c.spec)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", c.spec, err)
		}
		if d.N != c.qubits {
			t.Errorf("Lookup(%q).N = %d, want %d", c.spec, d.N, c.qubits)
		}
		if !d.Connected() {
			t.Errorf("Lookup(%q) disconnected", c.spec)
		}
	}
}

func TestLookupRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"", "ibmq", "linear:", "linear:0", "linear:-3", "linear:x",
		"grid:", "grid:3", "grid:0x4", "grid:3x", "grid:ax2",
		"linear:999999999", "grid:99999x99999",
	} {
		if _, err := Lookup(spec); err == nil {
			t.Errorf("Lookup(%q) succeeded, want error", spec)
		}
	}
}

func TestCatalogListsEveryFixedDevice(t *testing.T) {
	infos := Catalog()
	want := map[string]int{"manhattan": 65, "sycamore": 54, "montreal": 27}
	for _, in := range infos {
		if n, ok := want[in.Spec]; ok {
			if in.Qubits != n || in.Couplers == 0 || in.Description == "" {
				t.Errorf("catalog entry %+v malformed", in)
			}
			delete(want, in.Spec)
		}
	}
	if len(want) != 0 {
		t.Errorf("catalog missing fixed devices: %v", want)
	}
	// The parametric families are advertised too.
	var families int
	for _, in := range infos {
		if strings.Contains(in.Spec, "<") {
			families++
		}
	}
	if families != 2 {
		t.Errorf("catalog advertises %d parametric families, want 2", families)
	}
}

func TestConstructionErrors(t *testing.T) {
	if _, err := NewDevice("bad", 0, nil); err == nil {
		t.Error("zero-qubit device accepted")
	}
	if _, err := NewDevice("bad", -2, nil); err == nil {
		t.Error("negative-qubit device accepted")
	}
	if _, err := NewDevice("bad", 3, [][2]int{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewDevice("bad", 3, [][2]int{{0, 3}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := NewDevice("bad", 3, [][2]int{{-1, 1}}); err == nil {
		t.Error("negative endpoint accepted")
	}
	d := testDevice(t, "ok", 3, [][2]int{{0, 1}})
	if err := d.AddEdge(1, 1); err == nil {
		t.Error("AddEdge self-loop accepted")
	}
	if err := d.AddEdge(2, 5); err == nil {
		t.Error("AddEdge out-of-range accepted")
	}
	// Duplicate insertion stays a silent no-op.
	if err := d.AddEdge(1, 0); err != nil {
		t.Errorf("duplicate edge: %v", err)
	}
	if len(d.Edges()) != 1 {
		t.Errorf("duplicate edge appended: %v", d.Edges())
	}
}

func TestFingerprintStability(t *testing.T) {
	// Edge order must not matter; name, size, and edge set must.
	a := testDevice(t, "ring", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	b := testDevice(t, "ring", 4, [][2]int{{3, 0}, {2, 3}, {1, 2}, {1, 0}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("edge order changed fingerprint")
	}
	c := testDevice(t, "ring", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different edge sets share a fingerprint")
	}
	e := testDevice(t, "ring2", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if a.Fingerprint() == e.Fingerprint() {
		t.Error("different names share a fingerprint")
	}
	f := testDevice(t, "ring", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if a.Fingerprint() == f.Fingerprint() {
		t.Error("different sizes share a fingerprint")
	}
}
