package arch

import (
	"fmt"

	"repro/internal/circuit"
)

// CheckCoupling verifies that a routed circuit is executable on the
// device: it fits the qubit count and every two-qubit gate acts on a
// coupled pair. It is the independent auditor behind the CI route-smoke
// job (via internal/arch/couplingcheck) and the routing property tests —
// deliberately dumb, so a router bug cannot hide in shared logic.
func CheckCoupling(c *circuit.Circuit, d *Device) error {
	if c.N > d.N {
		return fmt.Errorf("arch: circuit uses %d qubits, %s has %d", c.N, d.Name, d.N)
	}
	for i, g := range c.Gates {
		if g.Kind != circuit.KindCNOT {
			continue
		}
		if !d.Coupled(g.Q2, g.Q) {
			return fmt.Errorf("arch: gate %d: CNOT %d→%d not coupled on %s", i, g.Q2, g.Q, d.Name)
		}
	}
	return nil
}
