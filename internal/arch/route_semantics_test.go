package arch

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/pauli"
	"repro/internal/sim"
)

// TestRoutePreservesSemantics simulates a logical circuit and its routed
// version and checks they produce the same state once the routed
// amplitudes are read back through the final layout permutation.
func TestRoutePreservesSemantics(t *testing.T) {
	d := testDevice(t, "line5", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	h := pauli.NewHamiltonian(4)
	h.Add(0.4, pauli.MustParse("XIIX"))
	h.Add(0.3, pauli.MustParse("IZZI"))
	h.Add(-0.6, pauli.MustParse("YIXI"))
	logical := circuit.Compile(h, circuit.OrderLexicographic)

	res, err := Route(logical, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapsAdded == 0 {
		t.Fatal("expected routing to insert swaps on a line device")
	}

	ls := sim.NewState(4)
	ls.ApplyCircuit(logical)
	ps := sim.NewState(d.N)
	ps.ApplyCircuit(res.Circuit)

	// Read back: logical basis index b corresponds to physical index with
	// bit layout[q] = bit q of b; all other physical qubits must be 0.
	var phase complex128
	for b := 0; b < 1<<4; b++ {
		pb := 0
		for q := 0; q < 4; q++ {
			if b>>uint(q)&1 == 1 {
				pb |= 1 << uint(res.FinalLayout[q])
			}
		}
		la, pa := ls.Amp[b], ps.Amp[pb]
		if cmplx.Abs(la) < 1e-10 && cmplx.Abs(pa) < 1e-10 {
			continue
		}
		if cmplx.Abs(la) < 1e-10 || cmplx.Abs(pa) < 1e-10 {
			t.Fatalf("amplitude support mismatch at %04b: %v vs %v", b, la, pa)
		}
		if phase == 0 {
			phase = pa / la
			if math.Abs(cmplx.Abs(phase)-1) > 1e-9 {
				t.Fatalf("non-unit relative phase %v", phase)
			}
			continue
		}
		if cmplx.Abs(la*phase-pa) > 1e-9 {
			t.Fatalf("routed amplitude differs at %04b", b)
		}
	}
	// Any amplitude outside the mapped subspace must vanish.
	total := 0.0
	for b := 0; b < 1<<4; b++ {
		pb := 0
		for q := 0; q < 4; q++ {
			if b>>uint(q)&1 == 1 {
				pb |= 1 << uint(res.FinalLayout[q])
			}
		}
		total += real(ps.Amp[pb])*real(ps.Amp[pb]) + imag(ps.Amp[pb])*imag(ps.Amp[pb])
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("routed state leaks outside the layout subspace: %v", total)
	}
}
