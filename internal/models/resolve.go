package models

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fermion"
)

// SpecHelp is the one-line grammar of the model specs Resolve accepts,
// suitable for CLI usage strings.
const SpecHelp = "h2 | molecule:<even modes> | hubbard:<R>x<C> | neutrino:<N>x<F>"

// Resolve parses a benchmark model spec and builds the corresponding
// fermionic Hamiltonian:
//
//	h2               H₂/STO-3G with the published integrals
//	molecule:<M>     synthetic molecule on M (even) spin-orbitals
//	hubbard:<R>x<C>  Fermi–Hubbard lattice, t=1, U=4, open boundaries
//	neutrino:<N>x<F> collective neutrino oscillation, N sites, F flavors
//
// Unknown or malformed specs return an error.
func Resolve(spec string) (*fermion.Hamiltonian, error) {
	switch {
	case spec == "h2":
		return H2STO3G(), nil
	case strings.HasPrefix(spec, "molecule:"):
		modes, err := strconv.Atoi(spec[len("molecule:"):])
		if err != nil || modes < 2 || modes%2 != 0 {
			return nil, fmt.Errorf("models: bad molecule spec %q (want molecule:<even modes>)", spec)
		}
		return SyntheticMolecule("synthetic", modes, 100+int64(modes), 0.4), nil
	case strings.HasPrefix(spec, "hubbard:"):
		r, c, err := parsePair(spec[len("hubbard:"):])
		if err != nil {
			return nil, fmt.Errorf("models: bad hubbard spec %q: %v", spec, err)
		}
		return FermiHubbard(r, c, 1.0, 4.0), nil
	case strings.HasPrefix(spec, "neutrino:"):
		n, f, err := parsePair(spec[len("neutrino:"):])
		if err != nil {
			return nil, fmt.Errorf("models: bad neutrino spec %q: %v", spec, err)
		}
		return NeutrinoOscillation(n, f, 1.0), nil
	}
	return nil, fmt.Errorf("models: unknown model %q (want %s)", spec, SpecHelp)
}

func parsePair(s string) (int, int, error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want <A>x<B>")
	}
	a, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	if a < 1 || b < 1 {
		return 0, 0, fmt.Errorf("want positive dimensions")
	}
	return a, b, nil
}
