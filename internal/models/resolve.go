package models

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fermion"
)

// SpecHelp is the one-line grammar of the model specs Resolve accepts,
// suitable for CLI usage strings.
const SpecHelp = "h2 | molecule:<even modes> | hubbard:<R>x<C> | neutrino:<N>x<F>"

// maxLatticeDim bounds each lattice dimension a spec may name, keeping
// the 2·A·B mode products safely inside int range even where int is 32
// bits (2·(2¹⁴)² = 2²⁹ < 2³¹−1).
const maxLatticeDim = 1 << 14

// specInfo is a parsed-but-not-built spec: the mode count it would
// resolve to, priced at parse cost, and the deferred builder. One parser
// produces it so Resolve and Modes can never drift.
type specInfo struct {
	modes int
	build func() *fermion.Hamiltonian
}

// parseSpec is the single grammar for benchmark model specs:
//
//	h2               H₂/STO-3G with the published integrals
//	molecule:<M>     synthetic molecule on M (even) spin-orbitals
//	hubbard:<R>x<C>  Fermi–Hubbard lattice, t=1, U=4, open boundaries
//	neutrino:<N>x<F> collective neutrino oscillation, N sites, F flavors
//
// Unknown or malformed specs return an error.
func parseSpec(spec string) (specInfo, error) {
	switch {
	case spec == "h2":
		return specInfo{modes: 4, build: H2STO3G}, nil
	case strings.HasPrefix(spec, "molecule:"):
		modes, err := strconv.Atoi(spec[len("molecule:"):])
		if err != nil || modes < 2 || modes%2 != 0 {
			return specInfo{}, fmt.Errorf("models: bad molecule spec %q (want molecule:<even modes>)", spec)
		}
		return specInfo{modes: modes, build: func() *fermion.Hamiltonian {
			return SyntheticMolecule("synthetic", modes, 100+int64(modes), 0.4)
		}}, nil
	case strings.HasPrefix(spec, "hubbard:"):
		r, c, err := parsePair(spec[len("hubbard:"):])
		if err != nil {
			return specInfo{}, fmt.Errorf("models: bad hubbard spec %q: %v", spec, err)
		}
		return specInfo{modes: 2 * r * c, build: func() *fermion.Hamiltonian {
			return FermiHubbard(r, c, 1.0, 4.0)
		}}, nil
	case strings.HasPrefix(spec, "neutrino:"):
		n, f, err := parsePair(spec[len("neutrino:"):])
		if err != nil {
			return specInfo{}, fmt.Errorf("models: bad neutrino spec %q: %v", spec, err)
		}
		return specInfo{modes: 2 * n * f, build: func() *fermion.Hamiltonian {
			return NeutrinoOscillation(n, f, 1.0)
		}}, nil
	}
	return specInfo{}, fmt.Errorf("models: unknown model %q (want %s)", spec, SpecHelp)
}

// Resolve parses a benchmark model spec (see parseSpec for the grammar)
// and builds the corresponding fermionic Hamiltonian.
func Resolve(spec string) (*fermion.Hamiltonian, error) {
	si, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	return si.build(), nil
}

// Modes returns the mode count a spec would resolve to without building
// the Hamiltonian. Servers use it to reject oversized requests before
// paying the construction cost (a hubbard:1000x1000 spec allocates
// millions of terms in Resolve; Modes prices it at parse cost).
func Modes(spec string) (int, error) {
	si, err := parseSpec(spec)
	if err != nil {
		return 0, err
	}
	return si.modes, nil
}

func parsePair(s string) (int, int, error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want <A>x<B>")
	}
	a, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, err
	}
	if a < 1 || b < 1 {
		return 0, 0, fmt.Errorf("want positive dimensions")
	}
	if a > maxLatticeDim || b > maxLatticeDim {
		return 0, 0, fmt.Errorf("dimensions exceed %d", maxLatticeDim)
	}
	return a, b, nil
}
