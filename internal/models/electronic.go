package models

import (
	"math"
	"math/rand"

	"repro/internal/fermion"
)

// MolecularIntegrals holds spatial-orbital integrals: One[p][q] is h_pq and
// Two[p][q][r][s] is the chemists'-notation two-electron integral (pq|rs).
// The spin-orbital Hamiltonian built from them is
//
//	H = Σ_{pqσ} h_pq a†_{pσ} a_{qσ}
//	  + ½ Σ_{pqrs,στ} (pq|rs) a†_{pσ} a†_{rτ} a_{sτ} a_{qσ}
//
// with spin-orbital mode indexing mode(p,σ) = 2p+σ.
type MolecularIntegrals struct {
	Name     string
	Orbitals int
	One      [][]float64
	Two      [][][][]float64
	// Nuclear is the constant nuclear-repulsion energy (added as an
	// identity term so simulated energies are physical).
	Nuclear float64
}

// Modes returns the spin-orbital count 2·Orbitals.
func (m *MolecularIntegrals) Modes() int { return 2 * m.Orbitals }

// Hamiltonian assembles the second-quantized Hamiltonian, dropping
// integrals below eps.
func (m *MolecularIntegrals) Hamiltonian(eps float64) *fermion.Hamiltonian {
	n := m.Modes()
	h := fermion.NewHamiltonian(n)
	if m.Nuclear != 0 {
		// A constant shows up as an empty operator product; represent it as
		// Σ_j (a†_j a_j + a_j a†_j)·c/n = c·identity — instead we simply add
		// the pair (a a† + a† a) on mode 0 scaled by the constant.
		h.Add(complex(m.Nuclear, 0), fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 0})
		h.Add(complex(m.Nuclear, 0), fermion.Op{Mode: 0}, fermion.Op{Mode: 0, Dagger: true})
	}
	mode := func(p, s int) int { return 2*p + s }
	for p := 0; p < m.Orbitals; p++ {
		for q := 0; q < m.Orbitals; q++ {
			if math.Abs(m.One[p][q]) <= eps {
				continue
			}
			for s := 0; s < 2; s++ {
				h.Add(complex(m.One[p][q], 0),
					fermion.Op{Mode: mode(p, s), Dagger: true},
					fermion.Op{Mode: mode(q, s)})
			}
		}
	}
	for p := 0; p < m.Orbitals; p++ {
		for q := 0; q < m.Orbitals; q++ {
			for r := 0; r < m.Orbitals; r++ {
				for s := 0; s < m.Orbitals; s++ {
					v := m.Two[p][q][r][s]
					if math.Abs(v) <= eps {
						continue
					}
					for s1 := 0; s1 < 2; s1++ {
						for s2 := 0; s2 < 2; s2++ {
							a, b := mode(p, s1), mode(r, s2)
							c, d := mode(s, s2), mode(q, s1)
							if a == b || c == d {
								continue // a†a† or aa on the same mode vanishes
							}
							h.Add(complex(0.5*v, 0),
								fermion.Op{Mode: a, Dagger: true},
								fermion.Op{Mode: b, Dagger: true},
								fermion.Op{Mode: c},
								fermion.Op{Mode: d})
						}
					}
				}
			}
		}
	}
	return h
}

// H2Integrals returns the published STO-3G integrals for H₂ at the
// equilibrium bond length 0.7414 Å (Hartree units), as tabulated in
// Seeley, Richard & Love and used throughout the BK/JW literature.
func H2Integrals() *MolecularIntegrals {
	one := [][]float64{
		{-1.252477, 0},
		{0, -0.475934},
	}
	g0000 := 0.674493
	g1111 := 0.697397
	g0011 := 0.663472
	g0110 := 0.181287
	two := make([][][][]float64, 2)
	for p := range two {
		two[p] = make([][][]float64, 2)
		for q := range two[p] {
			two[p][q] = make([][]float64, 2)
			for r := range two[p][q] {
				two[p][q][r] = make([]float64, 2)
			}
		}
	}
	// Chemists' notation (pq|rs) with 8-fold symmetry.
	two[0][0][0][0] = g0000
	two[1][1][1][1] = g1111
	two[0][0][1][1] = g0011
	two[1][1][0][0] = g0011
	two[0][1][0][1] = g0110
	two[1][0][1][0] = g0110
	two[0][1][1][0] = g0110
	two[1][0][0][1] = g0110
	return &MolecularIntegrals{
		Name:     "H2_sto3g",
		Orbitals: 2,
		One:      one,
		Two:      two,
		Nuclear:  0.713754,
	}
}

// H2STO3G builds the 4-spin-orbital H₂ Hamiltonian from the published
// integrals.
func H2STO3G() *fermion.Hamiltonian {
	return H2Integrals().Hamiltonian(1e-10)
}

// SyntheticIntegrals generates seeded synthetic molecular integrals on
// modes/2 spatial orbitals with the exact symmetries of real integrals
// (Hermitian one-body, 8-fold symmetric two-body) and magnitudes decaying
// with orbital distance, mimicking localized basis sets. Integrals below
// the built-in cutoff are zeroed, giving realistic sparsity for the larger
// Table-I molecules. locality scales the decay exponents: larger values
// give sparser, more local Hamiltonians; it is calibrated per molecule so
// the Jordan–Wigner Pauli weights land near the paper's Table I.
func SyntheticIntegrals(name string, modes int, seed int64, locality float64) *MolecularIntegrals {
	if modes%2 != 0 {
		panic("models: synthetic molecule needs an even mode count")
	}
	if locality <= 0 {
		locality = 0.4
	}
	norb := modes / 2
	r := rand.New(rand.NewSource(seed))
	one := make([][]float64, norb)
	for p := range one {
		one[p] = make([]float64, norb)
	}
	for p := 0; p < norb; p++ {
		for q := p; q < norb; q++ {
			decay := math.Exp(-1.4 * locality * float64(q-p))
			v := r.NormFloat64() * decay
			if p == q {
				v = -1.0 - r.Float64() // diagonal dominance: orbital energies
			}
			one[p][q] = v
			one[q][p] = v
		}
	}
	two := make([][][][]float64, norb)
	for p := range two {
		two[p] = make([][][]float64, norb)
		for q := range two[p] {
			two[p][q] = make([][]float64, norb)
			for rr := range two[p][q] {
				two[p][q][rr] = make([]float64, norb)
			}
		}
	}
	const cutoff = 0.004
	spread := func(a, b, c, d int) float64 {
		s := math.Abs(float64(a-b)) + math.Abs(float64(c-d)) + math.Abs(float64(a-c))
		return math.Exp(-locality * s)
	}
	for p := 0; p < norb; p++ {
		for q := p; q < norb; q++ {
			for rr := p; rr < norb; rr++ {
				for s := rr; s < norb; s++ {
					v := r.NormFloat64() * 0.6 * spread(p, q, rr, s)
					if p == q && rr == s {
						v = 0.3 + 0.5*r.Float64()*spread(p, q, rr, s) // Coulomb-like positive
					}
					if math.Abs(v) < cutoff {
						v = 0
					}
					// 8-fold symmetry: (pq|rs) = (qp|rs) = (pq|sr) = (qp|sr)
					//                = (rs|pq) = (sr|pq) = (rs|qp) = (sr|qp).
					for _, idx := range [][4]int{
						{p, q, rr, s}, {q, p, rr, s}, {p, q, s, rr}, {q, p, s, rr},
						{rr, s, p, q}, {s, rr, p, q}, {rr, s, q, p}, {s, rr, q, p},
					} {
						two[idx[0]][idx[1]][idx[2]][idx[3]] = v
					}
				}
			}
		}
	}
	return &MolecularIntegrals{Name: name, Orbitals: norb, One: one, Two: two}
}

// SyntheticMolecule builds the Hamiltonian of a synthetic molecule with
// the given locality calibration.
func SyntheticMolecule(name string, modes int, seed int64, locality float64) *fermion.Hamiltonian {
	return SyntheticIntegrals(name, modes, seed, locality).Hamiltonian(1e-8)
}
