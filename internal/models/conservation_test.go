package models

import (
	"math/cmplx"
	"testing"

	"repro/internal/linalg"
	"repro/internal/mapping"
	"repro/internal/pauli"
)

// totalNumberOperator builds Σ_j n_j as a qubit Hamiltonian under m.
func totalNumberOperator(m *mapping.Mapping) *pauli.Hamiltonian {
	h := pauli.NewHamiltonian(m.Qubits())
	for j := 0; j < m.Modes; j++ {
		h.AddHamiltonian(1, m.OccupationOperator(j))
	}
	return h
}

func TestHubbardConservesParticleNumber(t *testing.T) {
	// [H, N] = 0: the Hubbard Hamiltonian conserves total particle number.
	mh := FermiHubbard(1, 2, 1, 4).Majorana(1e-12)
	m := mapping.JordanWigner(4)
	hq := m.Apply(mh)
	nOp := totalNumberOperator(m)
	comm := hq.Mul(nOp)
	rev := nOp.Mul(hq)
	rev2 := pauli.NewHamiltonian(4)
	rev2.AddHamiltonian(-1, rev)
	comm.AddHamiltonian(1, rev2)
	comm.Prune(1e-10)
	if comm.Len() != 0 {
		t.Errorf("[H, N] ≠ 0: %s", comm)
	}
}

func TestNeutrinoConservesParticleNumber(t *testing.T) {
	mh := NeutrinoOscillation(2, 2, 1).Majorana(1e-12)
	m := mapping.JordanWigner(8)
	hq := m.Apply(mh)
	nOp := totalNumberOperator(m)
	ab := hq.Mul(nOp)
	ba := nOp.Mul(hq)
	diff := pauli.NewHamiltonian(8)
	diff.AddHamiltonian(1, ab)
	diff.AddHamiltonian(-1, ba)
	diff.Prune(1e-9)
	if diff.Len() != 0 {
		t.Errorf("neutrino [H, N] ≠ 0 (%d residual terms)", diff.Len())
	}
}

func TestH2ConservesSpin(t *testing.T) {
	// H2 commutes with the spin-up particle count (modes 0 and 2 in the
	// interleaved convention).
	m := mapping.JordanWigner(4)
	hq := m.ApplyFermionic(H2STO3G())
	spinUp := pauli.NewHamiltonian(4)
	spinUp.AddHamiltonian(1, m.OccupationOperator(0))
	spinUp.AddHamiltonian(1, m.OccupationOperator(2))
	ab := hq.Mul(spinUp)
	ba := spinUp.Mul(hq)
	diff := pauli.NewHamiltonian(4)
	diff.AddHamiltonian(1, ab)
	diff.AddHamiltonian(-1, ba)
	diff.Prune(1e-9)
	if diff.Len() != 0 {
		t.Errorf("[H2, N↑] ≠ 0 (%d residual terms)", diff.Len())
	}
}

func TestExtendedCatalog(t *testing.T) {
	ext := ElectronicExtended()
	if len(ext) != len(Electronic())+4 {
		t.Fatalf("extended catalog size %d", len(ext))
	}
	seen := map[string]bool{}
	for _, c := range ext {
		if seen[c.Name] {
			t.Fatalf("duplicate case %s", c.Name)
		}
		seen[c.Name] = true
		if c.Modes%2 != 0 || c.Modes <= 0 {
			t.Errorf("%s: bad mode count %d", c.Name, c.Modes)
		}
	}
	// Smoke-build one extended case and check Hermiticity.
	h := ext[len(ext)-1].Build()
	if !h.Majorana(1e-12).IsHermitian(1e-9) {
		t.Error("extended molecule not Hermitian")
	}
}

func TestSyntheticGroundEnergyFinite(t *testing.T) {
	// Small synthetic molecule must have a finite, negative ground energy
	// (diagonal-dominant one-body part).
	h := SyntheticMolecule("t", 6, 5, 0.4)
	hq := mapping.JordanWigner(6).ApplyFermionic(h)
	e := linalg.GroundEnergy(hq)
	if e >= 0 || cmplx.IsNaN(complex(e, 0)) {
		t.Errorf("synthetic ground energy = %v", e)
	}
}
