package models

import (
	"math"

	"repro/internal/fermion"
)

// NeutrinoOscillation builds the collective neutrino oscillation
// Hamiltonian (§V-A 3) on a 1D momentum lattice with `sites` momentum
// modes, `flavors` neutrino flavors, and two propagation directions —
// 2·sites·flavors modes total, matching Table III (e.g. 3×2F → 12 modes).
//
//	H = Σ_{i,a,d} √(p_i² + m_a²) · n_{i,a,d}
//	  + Σ_{i1,i2,i3; a,b; d,d'} C_{i1,i2,i3} ·
//	        a†_{a,i1,d} a_{a,i3,d} a†_{b,i2,d'} a_{b,i4,d'}  + h.c.
//
// with momentum conservation i4 = i1 + i2 − i3 and the paper's coupling
// C_{i1,i2,i3} = µ·(p_{i2} − p_{i1})·(p_{i4} − p_{i3}). Momenta are the
// lattice values p_i = i+1 and masses m_a = 0.1·(a+1).
func NeutrinoOscillation(sites, flavors int, mu float64) *fermion.Hamiltonian {
	if sites <= 0 || flavors <= 0 {
		panic("models: non-positive neutrino lattice")
	}
	const dirs = 2
	n := dirs * sites * flavors
	h := fermion.NewHamiltonian(n)
	mode := func(i, a, d int) int { return (i*flavors+a)*dirs + d }
	p := func(i int) float64 { return float64(i + 1) }
	m := func(a int) float64 { return 0.1 * float64(a+1) }
	// Kinetic terms.
	for i := 0; i < sites; i++ {
		for a := 0; a < flavors; a++ {
			e := math.Sqrt(p(i)*p(i) + m(a)*m(a))
			for d := 0; d < dirs; d++ {
				h.Add(complex(e, 0),
					fermion.Op{Mode: mode(i, a, d), Dagger: true},
					fermion.Op{Mode: mode(i, a, d)})
			}
		}
	}
	// Momentum-conserving two-body couplings.
	for i1 := 0; i1 < sites; i1++ {
		for i2 := 0; i2 < sites; i2++ {
			for i3 := 0; i3 < sites; i3++ {
				i4 := i1 + i2 - i3
				if i4 < 0 || i4 >= sites {
					continue
				}
				c := mu * (p(i2) - p(i1)) * (p(i4) - p(i3))
				if math.Abs(c) < 1e-12 {
					continue
				}
				for a := 0; a < flavors; a++ {
					for b := 0; b < flavors; b++ {
						for d := 0; d < dirs; d++ {
							for dp := 0; dp < dirs; dp++ {
								m1 := mode(i1, a, d)
								m3 := mode(i3, a, d)
								m2 := mode(i2, b, dp)
								m4 := mode(i4, b, dp)
								if m1 == m3 && m2 == m4 {
									// Density-density term: self-conjugate.
									h.Add(complex(c, 0),
										fermion.Op{Mode: m1, Dagger: true}, fermion.Op{Mode: m3},
										fermion.Op{Mode: m2, Dagger: true}, fermion.Op{Mode: m4})
									continue
								}
								h.AddHermitian(complex(0.5*c, 0),
									fermion.Op{Mode: m1, Dagger: true}, fermion.Op{Mode: m3},
									fermion.Op{Mode: m2, Dagger: true}, fermion.Op{Mode: m4})
							}
						}
					}
				}
			}
		}
	}
	return h
}
