package models

import (
	"math"
	"testing"

	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/mapping"
)

func TestH2GroundEnergy(t *testing.T) {
	// The H₂/STO-3G FCI ground-state energy at 0.7414 Å is ≈ −1.137 Ha
	// (electronic −1.851 Ha + nuclear 0.714 Ha). This validates the
	// integrals, the spin-orbital assembly, and the whole mapping stack.
	h := H2STO3G()
	hq := mapping.JordanWigner(4).ApplyFermionic(h)
	e := linalg.GroundEnergy(hq)
	if math.Abs(e-(-1.137)) > 0.01 {
		t.Errorf("H2 ground energy = %.4f Ha, want ≈ -1.137", e)
	}
}

func TestH2HamiltonianShape(t *testing.T) {
	h := H2STO3G()
	if h.Modes != 4 {
		t.Fatalf("modes = %d, want 4", h.Modes)
	}
	mh := h.Majorana(1e-12)
	if !mh.IsHermitian(1e-10) {
		t.Error("H2 not Hermitian in Majorana form")
	}
	// JW Pauli weight should be in the ballpark of Table I's 32.
	w := mapping.JordanWigner(4).Apply(mh).Weight()
	if w < 20 || w > 50 {
		t.Errorf("H2 JW weight = %d, expected near 32", w)
	}
}

func TestSyntheticIntegralSymmetries(t *testing.T) {
	mi := SyntheticIntegrals("test", 8, 42, 0.4)
	n := mi.Orbitals
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if mi.One[p][q] != mi.One[q][p] {
				t.Fatalf("one-body not symmetric at (%d,%d)", p, q)
			}
			for r := 0; r < n; r++ {
				for s := 0; s < n; s++ {
					v := mi.Two[p][q][r][s]
					for _, w := range []float64{
						mi.Two[q][p][r][s], mi.Two[p][q][s][r],
						mi.Two[r][s][p][q], mi.Two[s][r][q][p],
					} {
						if v != w {
							t.Fatalf("two-body symmetry broken at (%d%d|%d%d)", p, q, r, s)
						}
					}
				}
			}
		}
	}
}

func TestSyntheticMoleculeHermitian(t *testing.T) {
	h := SyntheticMolecule("x", 8, 7, 0.4)
	mh := h.Majorana(1e-12)
	if !mh.IsHermitian(1e-9) {
		t.Error("synthetic molecule not Hermitian")
	}
	if len(mh.Terms) == 0 {
		t.Error("synthetic molecule is empty")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := SyntheticMolecule("x", 6, 9, 0.4).Majorana(1e-12)
	b := SyntheticMolecule("x", 6, 9, 0.4).Majorana(1e-12)
	if len(a.Terms) != len(b.Terms) {
		t.Fatal("same seed gave different Hamiltonians")
	}
	for i := range a.Terms {
		if a.Terms[i].Coeff != b.Terms[i].Coeff {
			t.Fatal("same seed gave different coefficients")
		}
	}
}

func TestFermiHubbardShape(t *testing.T) {
	h := FermiHubbard(2, 2, 1, 4)
	if h.Modes != 8 {
		t.Fatalf("2x2 modes = %d, want 8", h.Modes)
	}
	// Edges: 2x2 grid has 4 edges × 2 spins × 2 (h.c.) = 16 hopping terms,
	// plus 4 interaction terms.
	if h.NumTerms() != 20 {
		t.Errorf("2x2 terms = %d, want 20", h.NumTerms())
	}
	if !h.Majorana(1e-12).IsHermitian(1e-10) {
		t.Error("Hubbard not Hermitian")
	}
}

func TestFermiHubbardHalfFillingSymmetry(t *testing.T) {
	// Particle-hole-ish sanity: the 1×2 Hubbard model (2 sites, 4 modes)
	// has known spectrum features; check ground energy of the t=1, U=0
	// case: free fermions on 2 sites → E0 = -2t (both spins bonding).
	h := FermiHubbard(1, 2, 1, 0)
	hq := mapping.JordanWigner(4).ApplyFermionic(h)
	e := linalg.GroundEnergy(hq)
	if math.Abs(e-(-2)) > 1e-6 {
		t.Errorf("U=0 two-site ground energy = %v, want -2", e)
	}
}

func TestFermiHubbardUPenalty(t *testing.T) {
	// With t=0, U=4 the spectrum is {0, 4, 8, …}: ground energy 0 and the
	// doubly-occupied site costs 4.
	h := FermiHubbard(1, 2, 0, 4)
	hq := mapping.JordanWigner(4).ApplyFermionic(h)
	ev := linalg.EigenvaluesHermitian(linalg.Matrix(hq))
	if math.Abs(ev[0]) > 1e-9 {
		t.Errorf("t=0 ground energy = %v, want 0", ev[0])
	}
	if math.Abs(ev[len(ev)-1]-8) > 1e-9 {
		t.Errorf("t=0 max energy = %v, want 8", ev[len(ev)-1])
	}
}

func TestNeutrinoShape(t *testing.T) {
	h := NeutrinoOscillation(3, 2, 1.0)
	if h.Modes != 12 {
		t.Fatalf("3x2F modes = %d, want 12", h.Modes)
	}
	mh := h.Majorana(1e-12)
	if !mh.IsHermitian(1e-9) {
		t.Error("neutrino Hamiltonian not Hermitian")
	}
	if len(mh.Terms) < 12 {
		t.Errorf("suspiciously few terms: %d", len(mh.Terms))
	}
}

func TestNeutrinoKineticOnly(t *testing.T) {
	// With µ=0 only number terms remain: every Majorana monomial is a
	// quadratic (2j, 2j+1) pair.
	mh := NeutrinoOscillation(2, 2, 0).Majorana(1e-12)
	for _, term := range mh.Terms {
		if len(term.Indices) == 0 {
			continue
		}
		if len(term.Indices) != 2 || term.Indices[1] != term.Indices[0]+1 || term.Indices[0]%2 != 0 {
			t.Fatalf("unexpected monomial %v for kinetic-only model", term.Indices)
		}
	}
}

func TestCatalogModeCounts(t *testing.T) {
	for _, c := range Electronic() {
		h := c.Build()
		if h.Modes != c.Modes {
			t.Errorf("%s: modes %d, want %d", c.Name, h.Modes, c.Modes)
		}
		break // building every molecule here is slow; smoke-test the first
	}
	for _, c := range Hubbard() {
		h := c.Build()
		if h.Modes != c.Modes {
			t.Errorf("%s: modes %d, want %d", c.Name, h.Modes, c.Modes)
		}
		if c.Modes > 16 {
			break
		}
	}
	for _, c := range Neutrino() {
		if c.Modes != 0 && c.Modes%2 != 0 {
			t.Errorf("%s: odd mode count %d", c.Name, c.Modes)
		}
	}
	// Table parity: catalog names and sizes match the paper.
	el := Electronic()
	if el[0].Name != "H2_sto3g" || el[0].Modes != 4 {
		t.Error("electronic catalog head mismatch")
	}
	hu := Hubbard()
	if hu[len(hu)-1].Name != "4x5" || hu[len(hu)-1].Modes != 40 {
		t.Error("hubbard catalog tail mismatch")
	}
	ne := Neutrino()
	if ne[len(ne)-1].Name != "7x3F" || ne[len(ne)-1].Modes != 42 {
		t.Error("neutrino catalog tail mismatch")
	}
}

func TestH2VacuumExpectation(t *testing.T) {
	// ⟨vac|H|vac⟩ = nuclear repulsion (no electrons).
	h := H2STO3G()
	for _, m := range []*mapping.Mapping{mapping.JordanWigner(4), mapping.BravyiKitaev(4)} {
		hq := m.ApplyFermionic(h)
		e := real(hq.ExpectationOnBasis(0))
		if math.Abs(e-0.713754) > 1e-6 {
			t.Errorf("%s: vacuum energy = %v, want nuclear 0.713754", m.Name, e)
		}
	}
}

func mustMajorana(t *testing.T, h *fermion.Hamiltonian) *fermion.MajoranaHamiltonian {
	t.Helper()
	mh := h.Majorana(1e-12)
	if len(mh.Terms) == 0 {
		t.Fatal("empty Hamiltonian")
	}
	return mh
}

func TestHubbardJWWeightScale(t *testing.T) {
	// Table II reports JW weight 80 for the 2×2 lattice. Our construction
	// should land in that neighborhood (exact value depends on mode
	// ordering conventions).
	mh := mustMajorana(t, FermiHubbard(2, 2, 1, 4))
	w := mapping.JordanWigner(8).Apply(mh).Weight()
	if w < 40 || w > 160 {
		t.Errorf("2x2 JW weight = %d, expected near 80", w)
	}
}
