package models

import "repro/internal/fermion"

// FermiHubbard builds the rows×cols Fermi–Hubbard model (§V-A 2):
//
//	H = Σ_{⟨i,j⟩,σ} t·(a†_{iσ} a_{jσ} + h.c.) + U Σ_i n_{i↑} n_{i↓}
//
// on a rectangular lattice with nearest-neighbor hopping t and on-site
// interaction U. Mode indexing: mode(site, σ) = 2·site + σ with
// site = row·cols + col, giving 2·rows·cols modes (Table II geometries).
func FermiHubbard(rows, cols int, t, u float64) *fermion.Hamiltonian {
	if rows <= 0 || cols <= 0 {
		panic("models: non-positive lattice dimension")
	}
	sites := rows * cols
	h := fermion.NewHamiltonian(2 * sites)
	site := func(r, c int) int { return r*cols + c }
	mode := func(s, spin int) int { return 2*s + spin }
	// Hopping on lattice edges, both spins.
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			s := site(r, c)
			if c+1 < cols {
				for spin := 0; spin < 2; spin++ {
					h.AddHermitian(complex(-t, 0),
						fermion.Op{Mode: mode(s, spin), Dagger: true},
						fermion.Op{Mode: mode(site(r, c+1), spin)})
				}
			}
			if r+1 < rows {
				for spin := 0; spin < 2; spin++ {
					h.AddHermitian(complex(-t, 0),
						fermion.Op{Mode: mode(s, spin), Dagger: true},
						fermion.Op{Mode: mode(site(r+1, c), spin)})
				}
			}
		}
	}
	// On-site interaction U·n↑n↓.
	for s := 0; s < sites; s++ {
		h.Add(complex(u, 0),
			fermion.Op{Mode: mode(s, 0), Dagger: true}, fermion.Op{Mode: mode(s, 0)},
			fermion.Op{Mode: mode(s, 1), Dagger: true}, fermion.Op{Mode: mode(s, 1)})
	}
	return h
}
