// Package models generates the three families of benchmark fermionic
// Hamiltonians used in the paper's evaluation (§V-A):
//
//  1. electronic-structure models of molecules (quantum chemistry),
//  2. the Fermi–Hubbard lattice model (condensed matter), and
//  3. collective neutrino oscillations on a 1D momentum lattice
//     (astroparticle physics).
//
// The Fermi–Hubbard and neutrino models follow the paper's formulas
// exactly. For electronic structure the paper pulls molecular geometry from
// PubChem and integrals from PySCF; this repository is offline, so H₂
// STO-3G uses the published integral values and the larger molecules use
// seeded synthetic integrals with correct Hermitian/8-fold symmetries, mode
// counts matching Table I, and physically shaped magnitude decay. The
// optimization problem HATT solves depends on the *support structure* of
// the Hamiltonian, which these generators preserve.
package models

import "repro/internal/fermion"

// Case names a benchmark instance and its generator.
type Case struct {
	Name  string
	Modes int
	Build func() *fermion.Hamiltonian
}

// Electronic returns the Table-I molecule catalog.
func Electronic() []Case {
	// Locality values calibrate each synthetic molecule's sparsity so its
	// Jordan–Wigner Pauli weight lands near the paper's Table I, including
	// the table's non-monotonicity (CH4 denser than O2).
	return []Case{
		{"H2_sto3g", 4, func() *fermion.Hamiltonian { return H2STO3G() }},
		{"LiH_sto3g_frz", 6, func() *fermion.Hamiltonian { return SyntheticMolecule("LiH_frz", 6, 101, 0.35) }},
		{"LiH_sto3g", 12, func() *fermion.Hamiltonian { return SyntheticMolecule("LiH", 12, 102, 0.52) }},
		{"H2O_sto3g", 14, func() *fermion.Hamiltonian { return SyntheticMolecule("H2O", 14, 103, 0.56) }},
		{"CH4_sto3g", 18, func() *fermion.Hamiltonian { return SyntheticMolecule("CH4", 18, 104, 0.33) }},
		{"O2_sto3g", 20, func() *fermion.Hamiltonian { return SyntheticMolecule("O2", 20, 105, 0.63) }},
		{"NaF_sto3g", 28, func() *fermion.Hamiltonian { return SyntheticMolecule("NaF", 28, 106, 0.37) }},
		{"CO2_sto3g", 30, func() *fermion.Hamiltonian { return SyntheticMolecule("CO2", 30, 107, 0.45) }},
	}
}

// ElectronicExtended returns the additional molecule/basis variants the
// workflow tables (IV and V) evaluate: larger 6-31G bases and freeze-core
// variants, all synthetic with calibrated locality (H2 STO-3G stays real).
func ElectronicExtended() []Case {
	base := Electronic()
	extra := []Case{
		{"H2_631g", 8, func() *fermion.Hamiltonian { return SyntheticMolecule("H2_631g", 8, 201, 0.4) }},
		{"NH_sto3g_frz", 10, func() *fermion.Hamiltonian { return SyntheticMolecule("NH_frz", 10, 202, 0.4) }},
		{"BeH2_sto3g_frz", 12, func() *fermion.Hamiltonian { return SyntheticMolecule("BeH2_frz", 12, 203, 0.45) }},
		{"NH_sto3g", 16, func() *fermion.Hamiltonian { return SyntheticMolecule("NH", 16, 204, 0.45) }},
	}
	return append(base, extra...)
}

// Hubbard returns the Table-II lattice catalog.
func Hubbard() []Case {
	geoms := [][2]int{{2, 2}, {2, 3}, {2, 4}, {3, 3}, {2, 5}, {3, 4}, {2, 7}, {3, 5}, {4, 4}, {3, 6}, {4, 5}}
	out := make([]Case, 0, len(geoms))
	for _, g := range geoms {
		g := g
		out = append(out, Case{
			Name:  hubbardName(g[0], g[1]),
			Modes: 2 * g[0] * g[1],
			Build: func() *fermion.Hamiltonian { return FermiHubbard(g[0], g[1], 1.0, 4.0) },
		})
	}
	return out
}

func hubbardName(r, c int) string {
	return itoa(r) + "x" + itoa(c)
}

// Neutrino returns the Table-III catalog.
func Neutrino() []Case {
	specs := [][2]int{{3, 2}, {4, 2}, {3, 3}, {5, 2}, {4, 3}, {6, 2}, {7, 2}, {5, 3}, {6, 3}, {7, 3}}
	out := make([]Case, 0, len(specs))
	for _, s := range specs {
		s := s
		out = append(out, Case{
			Name:  itoa(s[0]) + "x" + itoa(s[1]) + "F",
			Modes: 2 * s[0] * s[1],
			Build: func() *fermion.Hamiltonian { return NeutrinoOscillation(s[0], s[1], 1.0) },
		})
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
