package circuit

import (
	"repro/internal/pauli"
)

// SynthesizeRustiq is the "rustiq-lite" synthesis pass: a simplified
// re-implementation of the idea behind Rustiq (de Brugière & Martiel) —
// shorter Pauli-evolution circuits through balanced parity-accumulation
// trees instead of linear CNOT ladders, with greedy term chaining so that
// consecutive terms share basis changes. The output is over the same
// {CNOT, U3} basis and is followed by the standard peephole pass.
//
// This is a stand-in for the paper's external Rustiq toolchain: absolute
// gate counts differ from the published tool, but the JW-vs-HATT
// comparison it supports is preserved (both mappings are compiled by the
// same pass).
func SynthesizeRustiq(h *pauli.Hamiltonian, t float64) *Circuit {
	c := New(h.N())
	for _, term := range OrderTerms(h, OrderGreedyOverlap) {
		theta := 2 * real(term.Coeff) * t
		appendEvolutionBalanced(c, term.S, theta)
	}
	return Optimize(c)
}

// appendEvolutionBalanced emits exp(−i·θ/2·P) using a balanced CNOT
// reduction tree: supports are pairwise folded until one qubit holds the
// parity, halving the ladder depth from |support| to log₂|support|.
func appendEvolutionBalanced(c *Circuit, p pauli.String, theta float64) {
	sup := p.Support()
	if len(sup) == 0 {
		return
	}
	var in, out []Gate
	for _, q := range sup {
		switch p.Letter(q) {
		case pauli.X:
			in = append(in, H(q))
			out = append(out, H(q))
		case pauli.Y:
			in = append(in, RxPlus(q))
			out = append(out, RxMinus(q))
		}
	}
	c.Append(in...)
	// Balanced fold: at each round, fold the first half onto the second.
	var fold func(qs []int) int
	var ladder []Gate
	fold = func(qs []int) int {
		if len(qs) == 1 {
			return qs[0]
		}
		mid := len(qs) / 2
		a := fold(qs[:mid])
		b := fold(qs[mid:])
		ladder = append(ladder, CNOT(a, b))
		return b
	}
	target := fold(sup)
	c.Append(ladder...)
	c.Append(Rz(target, theta))
	for i := len(ladder) - 1; i >= 0; i-- {
		c.Append(ladder[i])
	}
	c.Append(out...)
}
