package circuit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pauli"
)

func matricesEqualUpToPhase(a, b [2][2]complex128) bool {
	// Find the first entry of significant magnitude and align phases.
	var phase complex128
	found := false
	for i := 0; i < 2 && !found; i++ {
		for j := 0; j < 2 && !found; j++ {
			if cmplx.Abs(a[i][j]) > 1e-8 {
				if cmplx.Abs(b[i][j]) < 1e-10 {
					return false
				}
				phase = b[i][j] / a[i][j]
				found = true
			}
		}
	}
	if !found {
		return true
	}
	if math.Abs(cmplx.Abs(phase)-1) > 1e-8 {
		return false
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if cmplx.Abs(a[i][j]*phase-b[i][j]) > 1e-8 {
				return false
			}
		}
	}
	return true
}

func TestU3AnglesRoundTrip(t *testing.T) {
	gates := []Gate{H(0), RxPlus(0), RxMinus(0), X(0), Rz(0, 0.7), Rz(0, -2.1)}
	for _, g := range gates {
		th, ph, la := U3Angles(g.M)
		back := u3Matrix(th, ph, la)
		if !matricesEqualUpToPhase(g.M, back) {
			t.Errorf("%s: round trip failed: %v vs %v", g.Label, g.M, back)
		}
	}
}

func TestU3AnglesRoundTripRandomProducts(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	base := []Gate{H(0), RxPlus(0), Rz(0, 0.3), X(0), Rz(0, 1.2)}
	for trial := 0; trial < 50; trial++ {
		m := [2][2]complex128{{1, 0}, {0, 1}}
		for k := 0; k < 4; k++ {
			m = mulMat(base[r.Intn(len(base))].M, m)
		}
		th, ph, la := U3Angles(m)
		if !matricesEqualUpToPhase(m, u3Matrix(th, ph, la)) {
			t.Fatalf("random product round trip failed: %v", m)
		}
	}
}

func TestQASMOutput(t *testing.T) {
	c := New(2)
	c.Append(H(0), CNOT(0, 1), Rz(1, 0.5))
	q := c.QASM()
	for _, want := range []string{
		"OPENQASM 2.0;",
		"qreg q[2];",
		"cx q[0],q[1];",
		"u3(",
	} {
		if !strings.Contains(q, want) {
			t.Errorf("QASM missing %q:\n%s", want, q)
		}
	}
	if strings.Count(q, "u3(") != 2 {
		t.Errorf("expected 2 u3 gates:\n%s", q)
	}
}

func TestDiagramRendering(t *testing.T) {
	c := New(2)
	c.Append(H(0), CNOT(0, 1))
	d := c.Diagram()
	if !strings.Contains(d, "●") || !strings.Contains(d, "⊕") {
		t.Errorf("diagram missing CNOT glyphs:\n%s", d)
	}
	if !strings.Contains(d, "[H") {
		t.Errorf("diagram missing H label:\n%s", d)
	}
	if lines := strings.Count(d, "\n"); lines != 2 {
		t.Errorf("diagram has %d lines, want 2", lines)
	}
}

func TestTrotter2MatchesExactBetterThanTrotter1(t *testing.T) {
	// Non-commuting 2-term Hamiltonian: the symmetric splitting must track
	// the exact evolution more closely than first order at the same step
	// count.
	// XX and ZI anticommute, so the splitting order matters.
	h := pauli.NewHamiltonian(2)
	h.Add(0.6, pauli.MustParse("XX"))
	h.Add(0.5, pauli.MustParse("ZI"))
	tEvo := 0.4
	psi0 := randomState(rand.New(rand.NewSource(3)), 2)

	run := func(c *Circuit) []complex128 {
		v := append([]complex128{}, psi0...)
		runCircuit(c, v)
		return v
	}
	exact := append([]complex128{}, psi0...)
	exactEvolve(&exact, h, tEvo)

	t1 := run(SynthesizeTrotter(h, tEvo, 2, OrderNatural))
	t2 := run(SynthesizeTrotter2(h, tEvo, 2, OrderNatural))
	e1 := stateDistance(t1, exact)
	e2 := stateDistance(t2, exact)
	if e2 >= e1 {
		t.Errorf("2nd order error %v not better than 1st order %v", e2, e1)
	}
	if e2 > 1e-3 {
		t.Errorf("2nd order error %v too large", e2)
	}
}

// exactEvolve applies exp(−iHt) by Taylor series.
func exactEvolve(psi *[]complex128, h *pauli.Hamiltonian, t float64) {
	applyH := func(in []complex128) []complex128 {
		out := make([]complex128, len(in))
		for _, term := range h.Terms() {
			tmp := append([]complex128{}, in...)
			// Apply the Pauli string to tmp.
			n := 0
			for 1<<uint(n) < len(in) {
				n++
			}
			applyPauliVec(term.S, tmp)
			for i := range out {
				out[i] += term.Coeff * tmp[i]
			}
		}
		return out
	}
	result := append([]complex128{}, *psi...)
	cur := append([]complex128{}, *psi...)
	for k := 1; k <= 30; k++ {
		cur = applyH(cur)
		f := complex(0, -t) / complex(float64(k), 0)
		for i := range cur {
			cur[i] *= f
			result[i] += cur[i]
		}
	}
	*psi = result
}

func applyPauliVec(p pauli.String, psi []complex128) {
	out := applyPauli(p, psi)
	copy(psi, out)
}

func stateDistance(a, b []complex128) float64 {
	d := 0.0
	for i := range a {
		d += cmplx.Abs(a[i]-b[i]) * cmplx.Abs(a[i]-b[i])
	}
	return math.Sqrt(d)
}

func TestTrotter2PalindromeOptimizes(t *testing.T) {
	// The mirrored second-order structure should let the optimizer cancel
	// at least the junction basis changes: optimized CX count strictly
	// below raw.
	h := pauli.NewHamiltonian(3)
	h.Add(0.4, pauli.MustParse("XXI"))
	h.Add(0.3, pauli.MustParse("IZZ"))
	raw := SynthesizeTrotter2(h, 1.0, 1, OrderLexicographic)
	opt := Optimize(raw)
	if opt.CNOTCount() >= raw.CNOTCount() {
		t.Errorf("no cancellation at the palindrome junction: %d vs %d",
			opt.CNOTCount(), raw.CNOTCount())
	}
}
