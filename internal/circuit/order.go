package circuit

import "fmt"

// String returns the canonical spec name of a term order, matching what
// ParseOrder accepts.
func (o TermOrder) String() string {
	switch o {
	case OrderNatural:
		return "natural"
	case OrderLexicographic:
		return "lex"
	case OrderGreedyOverlap:
		return "greedy"
	}
	return fmt.Sprintf("TermOrder(%d)", int(o))
}

// ParseOrder parses a term-order spec: "natural", "lex" (or
// "lexicographic"), or "greedy" (or "overlap").
func ParseOrder(s string) (TermOrder, error) {
	switch s {
	case "natural":
		return OrderNatural, nil
	case "lex", "lexicographic":
		return OrderLexicographic, nil
	case "greedy", "overlap":
		return OrderGreedyOverlap, nil
	}
	return 0, fmt.Errorf("circuit: unknown term order %q (want natural | lex | greedy)", s)
}
