package circuit

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

func TestInverseUndoesCircuit(t *testing.T) {
	h := pauli.NewHamiltonian(3)
	h.Add(0.4, pauli.MustParse("XYZ"))
	h.Add(-0.7, pauli.MustParse("ZZX"))
	c := Compile(h, circuitOrderLex())
	inv := c.Inverse()
	r := rand.New(rand.NewSource(2))
	psi := randomState(r, 3)
	v := append([]complex128{}, psi...)
	runCircuit(c, v)
	runCircuit(inv, v)
	for i := range psi {
		if cmplx.Abs(v[i]-psi[i]) > 1e-9 {
			t.Fatalf("U†U ≠ I at amplitude %d", i)
		}
	}
}

func circuitOrderLex() TermOrder { return OrderLexicographic }

func TestValidateAcceptsAndRejects(t *testing.T) {
	c := New(2)
	c.Append(H(0), CNOT(0, 1), Rz(1, 0.4))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a matrix: no longer unitary.
	bad := New(1)
	bad.Append(H(0))
	bad.Gates[0].M[0][0] = 5
	if err := bad.Validate(); err == nil {
		t.Error("non-unitary gate accepted")
	}
	// Corrupt a CNOT after construction.
	bad2 := New(2)
	bad2.Append(CNOT(0, 1))
	bad2.Gates[0].Q2 = 1
	if err := bad2.Validate(); err == nil {
		t.Error("control==target accepted")
	}
}

func TestGateHistogram(t *testing.T) {
	c := New(2)
	c.Append(H(0), H(1), CNOT(0, 1), Rz(1, 0.3), Rz(0, 0.5))
	hist := c.GateHistogram()
	if hist["CX"] != 1 || hist["H"] != 2 || hist["RZ"] != 2 {
		t.Errorf("histogram = %v", hist)
	}
}

func TestInverseOfOptimizedStillInverse(t *testing.T) {
	h := pauli.NewHamiltonian(2)
	h.Add(0.3, pauli.MustParse("XX"))
	h.Add(0.6, pauli.MustParse("ZZ"))
	c := Optimize(SynthesizeTrotter2(h, 0.7, 1, OrderLexicographic))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	if err := inv.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	psi := randomState(r, 2)
	v := append([]complex128{}, psi...)
	runCircuit(c, v)
	runCircuit(inv, v)
	for i := range psi {
		if cmplx.Abs(v[i]-psi[i]) > 1e-9 {
			t.Fatalf("optimized inverse broken at %d", i)
		}
	}
}
