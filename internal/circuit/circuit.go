// Package circuit provides the quantum-circuit IR and the Trotter-step
// synthesis used to turn qubit Hamiltonians into gate sequences (§II-B2,
// Fig. 2 of the paper), together with the light-weight optimization passes
// standing in for the paper's Paulihedral/Rustiq/Qiskit-L3 toolchain:
// adjacency-aware term ordering, CNOT-ladder sharing via peephole
// cancellation, and single-qubit gate merging into the {CNOT, U3} basis.
package circuit

import (
	"fmt"
	"math"
	"math/cmplx"
	"strings"
)

// Kind distinguishes the two basis-gate classes.
type Kind int

// Gate kinds: arbitrary single-qubit unitaries (U3) and CNOT.
const (
	KindSingle Kind = iota
	KindCNOT
)

// Gate is one basis gate. For KindSingle, Q is the qubit and M the 2×2
// unitary; for KindCNOT, Q2 is the control and Q the target.
type Gate struct {
	Kind  Kind
	Q     int // target qubit
	Q2    int // control qubit (CNOT only; -1 otherwise)
	Label string
	M     [2][2]complex128
}

// Single-qubit gate matrices.
var (
	matH = [2][2]complex128{
		{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)},
	}
	matRxPlus = [2][2]complex128{ // Rx(+π/2)
		{complex(1/math.Sqrt2, 0), complex(0, -1/math.Sqrt2)},
		{complex(0, -1/math.Sqrt2), complex(1/math.Sqrt2, 0)},
	}
	matRxMinus = [2][2]complex128{ // Rx(−π/2)
		{complex(1/math.Sqrt2, 0), complex(0, 1/math.Sqrt2)},
		{complex(0, 1/math.Sqrt2), complex(1/math.Sqrt2, 0)},
	}
	matX = [2][2]complex128{{0, 1}, {1, 0}}
)

// H returns a Hadamard gate on q.
func H(q int) Gate { return Gate{Kind: KindSingle, Q: q, Q2: -1, Label: "H", M: matH} }

// RxPlus returns Rx(π/2) on q (Y-basis change in).
func RxPlus(q int) Gate {
	return Gate{Kind: KindSingle, Q: q, Q2: -1, Label: "RX+", M: matRxPlus}
}

// RxMinus returns Rx(−π/2) on q (Y-basis change out).
func RxMinus(q int) Gate {
	return Gate{Kind: KindSingle, Q: q, Q2: -1, Label: "RX-", M: matRxMinus}
}

// X returns a Pauli-X gate on q.
func X(q int) Gate { return Gate{Kind: KindSingle, Q: q, Q2: -1, Label: "X", M: matX} }

// Rz returns Rz(θ) = diag(e^{−iθ/2}, e^{iθ/2}) on q.
func Rz(q int, theta float64) Gate {
	return Gate{
		Kind: KindSingle, Q: q, Q2: -1, Label: fmt.Sprintf("RZ(%.4g)", theta),
		M: [2][2]complex128{
			{cmplx.Exp(complex(0, -theta/2)), 0},
			{0, cmplx.Exp(complex(0, theta/2))},
		},
	}
}

// CNOT returns a CNOT with the given control and target.
func CNOT(control, target int) Gate {
	return Gate{Kind: KindCNOT, Q: target, Q2: control, Label: "CX"}
}

// Circuit is an ordered gate list on N qubits.
type Circuit struct {
	N     int
	Gates []Gate
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit { return &Circuit{N: n} }

// Append adds gates to the end of the circuit.
func (c *Circuit) Append(gs ...Gate) {
	for _, g := range gs {
		if g.Q < 0 || g.Q >= c.N || (g.Kind == KindCNOT && (g.Q2 < 0 || g.Q2 >= c.N || g.Q2 == g.Q)) {
			panic(fmt.Sprintf("circuit: bad gate %+v on %d qubits", g, c.N))
		}
		c.Gates = append(c.Gates, g)
	}
}

// CNOTCount returns the number of CNOT gates.
func (c *Circuit) CNOTCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == KindCNOT {
			n++
		}
	}
	return n
}

// SingleCount returns the number of single-qubit (U3) gates.
func (c *Circuit) SingleCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == KindSingle {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth under ASAP scheduling: each gate occupies
// one layer on every qubit it touches.
func (c *Circuit) Depth() int {
	level := make([]int, c.N)
	depth := 0
	for _, g := range c.Gates {
		l := level[g.Q]
		if g.Kind == KindCNOT && level[g.Q2] > l {
			l = level[g.Q2]
		}
		l++
		level[g.Q] = l
		if g.Kind == KindCNOT {
			level[g.Q2] = l
		}
		if l > depth {
			depth = l
		}
	}
	return depth
}

// String renders a short textual form, e.g. "H q0; CX q0→q1; RZ(0.5) q1".
func (c *Circuit) String() string {
	parts := make([]string, len(c.Gates))
	for i, g := range c.Gates {
		if g.Kind == KindCNOT {
			parts[i] = fmt.Sprintf("CX q%d→q%d", g.Q2, g.Q)
		} else {
			parts[i] = fmt.Sprintf("%s q%d", g.Label, g.Q)
		}
	}
	return strings.Join(parts, "; ")
}

// Stats bundles the three circuit metrics the paper reports.
type Stats struct {
	CNOTs   int
	Singles int
	Depth   int
}

// Stats returns the metric bundle.
func (c *Circuit) Stats() Stats {
	return Stats{CNOTs: c.CNOTCount(), Singles: c.SingleCount(), Depth: c.Depth()}
}

// mulMat multiplies two 2×2 complex matrices.
func mulMat(a, b [2][2]complex128) [2][2]complex128 {
	var r [2][2]complex128
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = a[i][0]*b[0][j] + a[i][1]*b[1][j]
		}
	}
	return r
}

// isIdentityMat reports whether m is the identity up to global phase.
func isIdentityMat(m [2][2]complex128) bool {
	if cmplx.Abs(m[0][1]) > 1e-10 || cmplx.Abs(m[1][0]) > 1e-10 {
		return false
	}
	// Diagonal: equal phases ⇒ global phase only.
	return cmplx.Abs(m[0][0]-m[1][1]) < 1e-10 && math.Abs(cmplx.Abs(m[0][0])-1) < 1e-10
}
