package circuit

import "repro/internal/pauli"

// SynthesizeTrotter2 compiles second-order (symmetric Suzuki–Trotter)
// steps of exp(−i·H·t): each step applies the ordered terms at half angle
// forward then in reverse, giving O(t³/steps²) error per step instead of
// first order's O(t²/steps). The palindrome structure also lets the
// peephole pass cancel the mirrored basis changes and ladder ends.
func SynthesizeTrotter2(h *pauli.Hamiltonian, t float64, steps int, ord TermOrder) *Circuit {
	if steps < 1 {
		steps = 1
	}
	c := New(h.N())
	ts := OrderTerms(h, ord)
	for s := 0; s < steps; s++ {
		for _, term := range ts {
			AppendEvolution(c, term.S, real(term.Coeff)*t/float64(steps))
		}
		for i := len(ts) - 1; i >= 0; i-- {
			AppendEvolution(c, ts[i].S, real(ts[i].Coeff)*t/float64(steps))
		}
	}
	return c
}
