package circuit

import (
	"math/cmplx"
	"strings"
	"testing"
)

func TestReadQASMRoundTrip(t *testing.T) {
	c := New(3)
	c.Append(H(0), CNOT(0, 1), Rz(1, 0.7), RxPlus(2), CNOT(2, 0), X(1))
	back, err := ReadQASM(strings.NewReader(c.QASM()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N != c.N || len(back.Gates) != len(c.Gates) {
		t.Fatalf("round trip: %d qubits / %d gates, want %d / %d",
			back.N, len(back.Gates), c.N, len(c.Gates))
	}
	for i, g := range c.Gates {
		bg := back.Gates[i]
		if g.Kind != bg.Kind || g.Q != bg.Q {
			t.Fatalf("gate %d: %+v vs %+v", i, g, bg)
		}
		if g.Kind == KindCNOT {
			if g.Q2 != bg.Q2 {
				t.Fatalf("gate %d: control %d vs %d", i, g.Q2, bg.Q2)
			}
			continue
		}
		// Single-qubit matrices agree up to the global phase u3 drops.
		var phase complex128
		for r := 0; r < 2; r++ {
			for col := 0; col < 2; col++ {
				a, b := g.M[r][col], bg.M[r][col]
				if cmplx.Abs(a) < 1e-8 && cmplx.Abs(b) < 1e-8 {
					continue
				}
				if cmplx.Abs(a) < 1e-8 || cmplx.Abs(b) < 1e-8 {
					t.Fatalf("gate %d: matrix support differs", i)
				}
				if phase == 0 {
					phase = b / a
					continue
				}
				if cmplx.Abs(a*phase-b) > 1e-7 {
					t.Fatalf("gate %d: matrices differ beyond global phase", i)
				}
			}
		}
	}
}

func TestReadQASMRejects(t *testing.T) {
	cases := map[string]string{
		"no qreg":          "OPENQASM 2.0;\ncx q[0],q[1];\n",
		"double qreg":      "qreg q[2];\nqreg r[2];\n",
		"bad statement":    "qreg q[2];\nh q[0];\n",
		"cx arity":         "qreg q[2];\ncx q[0];\n",
		"cx self":          "qreg q[2];\ncx q[1],q[1];\n",
		"cx out of range":  "qreg q[2];\ncx q[0],q[2];\n",
		"u3 angle":         "qreg q[2];\nu3(a,0,0) q[0];\n",
		"u3 out of range":  "qreg q[1];\nu3(1,2,3) q[4];\n",
		"zero-size qreg":   "qreg q[0];\n",
		"malformed index":  "qreg q[x];\n",
		"empty":            "",
		"garbage operands": "qreg q[2];\ncx foo,bar;\n",
	}
	for label, src := range cases {
		if _, err := ReadQASM(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", label, src)
		}
	}
}

func TestReadQASMSkipsCommentsAndBlanks(t *testing.T) {
	src := "// header\nOPENQASM 2.0;\ninclude \"qelib1.inc\";\n\nqreg q[2];\ncx q[0],q[1]; // tail comment\n"
	c, err := ReadQASM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 2 || c.CNOTCount() != 1 {
		t.Errorf("parsed %d qubits, %d CNOTs", c.N, c.CNOTCount())
	}
}
