package circuit

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadQASM parses the OpenQASM 2.0 subset WriteQASM emits — one qreg,
// cx, and u3 over it — back into a Circuit, so routed circuits shipped
// across process boundaries (service responses, CI artifacts) can be
// independently re-checked. Comments and blank lines are skipped;
// anything else is an error.
func ReadQASM(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var c *Circuit
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if i := strings.Index(s, "//"); i >= 0 {
			s = strings.TrimSpace(s[:i])
		}
		if s == "" {
			continue
		}
		switch {
		case strings.HasPrefix(s, "OPENQASM"), strings.HasPrefix(s, "include"):
			continue
		case strings.HasPrefix(s, "qreg"):
			if c != nil {
				return nil, fmt.Errorf("circuit: line %d: multiple qreg declarations", line)
			}
			n, err := parseQASMIndex(strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(s, "qreg")), ";"))
			if err != nil {
				return nil, fmt.Errorf("circuit: line %d: %v", line, err)
			}
			if n <= 0 {
				return nil, fmt.Errorf("circuit: line %d: qreg needs a positive size", line)
			}
			c = New(n)
		case strings.HasPrefix(s, "cx"):
			if c == nil {
				return nil, fmt.Errorf("circuit: line %d: gate before qreg", line)
			}
			args := strings.Split(strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(s, "cx")), ";"), ",")
			if len(args) != 2 {
				return nil, fmt.Errorf("circuit: line %d: cx needs two operands", line)
			}
			ctrl, err1 := parseQASMIndex(args[0])
			tgt, err2 := parseQASMIndex(args[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("circuit: line %d: bad cx operands %q", line, s)
			}
			if err := appendChecked(c, CNOT(ctrl, tgt)); err != nil {
				return nil, fmt.Errorf("circuit: line %d: %v", line, err)
			}
		case strings.HasPrefix(s, "u3"):
			if c == nil {
				return nil, fmt.Errorf("circuit: line %d: gate before qreg", line)
			}
			rest := strings.TrimPrefix(s, "u3")
			open := strings.Index(rest, "(")
			close := strings.Index(rest, ")")
			if open != 0 || close < 0 {
				return nil, fmt.Errorf("circuit: line %d: bad u3 syntax %q", line, s)
			}
			angles := strings.Split(rest[1:close], ",")
			if len(angles) != 3 {
				return nil, fmt.Errorf("circuit: line %d: u3 needs three angles", line)
			}
			var tpl [3]float64
			for i, a := range angles {
				v, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
				if err != nil {
					return nil, fmt.Errorf("circuit: line %d: bad u3 angle %q", line, a)
				}
				tpl[i] = v
			}
			q, err := parseQASMIndex(strings.TrimSuffix(strings.TrimSpace(rest[close+1:]), ";"))
			if err != nil {
				return nil, fmt.Errorf("circuit: line %d: %v", line, err)
			}
			g := Gate{Kind: KindSingle, Q: q, Q2: -1, Label: "U3", M: u3Matrix(tpl[0], tpl[1], tpl[2])}
			if err := appendChecked(c, g); err != nil {
				return nil, fmt.Errorf("circuit: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("circuit: line %d: unsupported QASM statement %q", line, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("circuit: QASM input has no qreg declaration")
	}
	return c, nil
}

// appendChecked is Circuit.Append with the bad-gate panic converted to
// an error, since ReadQASM consumes untrusted input.
func appendChecked(c *Circuit, g Gate) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	c.Append(g)
	return nil
}

// parseQASMIndex extracts i from an operand like "q[i]".
func parseQASMIndex(s string) (int, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "[")
	if open < 0 || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("bad operand %q", s)
	}
	n, err := strconv.Atoi(s[open+1 : len(s)-1])
	if err != nil {
		return 0, fmt.Errorf("bad operand %q", s)
	}
	return n, nil
}
