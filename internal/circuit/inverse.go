package circuit

import (
	"fmt"
	"math/cmplx"
)

// Inverse returns the circuit implementing U†: gates reversed, each
// single-qubit matrix conjugate-transposed (CNOTs are self-inverse).
func (c *Circuit) Inverse() *Circuit {
	inv := New(c.N)
	for i := len(c.Gates) - 1; i >= 0; i-- {
		g := c.Gates[i]
		if g.Kind == KindSingle {
			g.M = dagger(g.M)
			g.Label = g.Label + "†"
		}
		inv.Append(g)
	}
	return inv
}

func dagger(m [2][2]complex128) [2][2]complex128 {
	return [2][2]complex128{
		{cmplx.Conj(m[0][0]), cmplx.Conj(m[1][0])},
		{cmplx.Conj(m[0][1]), cmplx.Conj(m[1][1])},
	}
}

// Validate checks structural well-formedness: qubit indices in range,
// CNOT control ≠ target, and unitary single-qubit matrices.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if g.Q < 0 || g.Q >= c.N {
			return fmt.Errorf("circuit: gate %d target %d out of range", i, g.Q)
		}
		switch g.Kind {
		case KindCNOT:
			if g.Q2 < 0 || g.Q2 >= c.N {
				return fmt.Errorf("circuit: gate %d control %d out of range", i, g.Q2)
			}
			if g.Q2 == g.Q {
				return fmt.Errorf("circuit: gate %d control equals target", i)
			}
		case KindSingle:
			if !isUnitary(g.M) {
				return fmt.Errorf("circuit: gate %d (%s) matrix not unitary", i, g.Label)
			}
		default:
			return fmt.Errorf("circuit: gate %d unknown kind %d", i, g.Kind)
		}
	}
	return nil
}

func isUnitary(m [2][2]complex128) bool {
	p := mulMat(m, dagger(m))
	return cmplx.Abs(p[0][0]-1) < 1e-9 && cmplx.Abs(p[1][1]-1) < 1e-9 &&
		cmplx.Abs(p[0][1]) < 1e-9 && cmplx.Abs(p[1][0]) < 1e-9
}

// GateHistogram counts gates by label class: "CX" plus each single-qubit
// label (merged gates count as "U3").
func (c *Circuit) GateHistogram() map[string]int {
	h := make(map[string]int)
	for _, g := range c.Gates {
		if g.Kind == KindCNOT {
			h["CX"]++
			continue
		}
		label := g.Label
		if len(label) >= 2 && label[:2] == "RZ" {
			label = "RZ"
		}
		h[label]++
	}
	return h
}
