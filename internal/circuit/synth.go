package circuit

import (
	"math/cmplx"
	"sort"

	"repro/internal/pauli"
)

// TermOrder selects how Hamiltonian terms are sequenced in a Trotter step.
type TermOrder int

const (
	// OrderNatural keeps the deterministic Hamiltonian term order.
	OrderNatural TermOrder = iota
	// OrderLexicographic sorts terms by their string keys, grouping terms
	// with similar supports so the peephole pass can cancel shared ladders.
	OrderLexicographic
	// OrderGreedyOverlap greedily chains terms by maximum shared support
	// with the previous term (Paulihedral-flavoured scheduling).
	OrderGreedyOverlap
)

// OrderTerms returns the Hamiltonian's non-identity real-coefficient terms
// in the requested order.
func OrderTerms(h *pauli.Hamiltonian, ord TermOrder) []pauli.Term {
	var ts []pauli.Term
	for _, t := range h.Terms() {
		if t.S.IsIdentity() || cmplx.Abs(t.Coeff) < 1e-12 {
			continue
		}
		ts = append(ts, t)
	}
	switch ord {
	case OrderLexicographic:
		sort.Slice(ts, func(i, j int) bool { return ts[i].S.Key() < ts[j].S.Key() })
	case OrderGreedyOverlap:
		ts = greedyChain(ts)
	}
	return ts
}

// greedyChain reorders terms so that consecutive terms share as much
// support as possible, starting from the largest-coefficient term.
func greedyChain(ts []pauli.Term) []pauli.Term {
	if len(ts) <= 2 {
		return ts
	}
	used := make([]bool, len(ts))
	out := make([]pauli.Term, 0, len(ts))
	cur := 0
	used[0] = true
	out = append(out, ts[0])
	for len(out) < len(ts) {
		bestJ, bestScore := -1, -1
		for j := range ts {
			if used[j] {
				continue
			}
			score := overlap(ts[cur].S, ts[j].S)
			if score > bestScore {
				bestScore, bestJ = score, j
			}
		}
		used[bestJ] = true
		out = append(out, ts[bestJ])
		cur = bestJ
	}
	return out
}

// overlap counts qubits where both strings have the same non-identity
// letter (those survive ladder/basis sharing) plus a smaller credit for
// shared support with different letters.
func overlap(a, b pauli.String) int {
	score := 0
	for _, q := range a.Support() {
		lb := b.Letter(q)
		if lb == pauli.I {
			continue
		}
		if lb == a.Letter(q) {
			score += 2
		} else {
			score++
		}
	}
	return score
}

// AppendEvolution appends the circuit snippet implementing
// exp(−i·θ/2·P) for a single Pauli string P (Fig. 2): basis changes into Z,
// a CNOT ladder onto the last support qubit, Rz(θ), and the inverse ladder
// and basis changes.
func AppendEvolution(c *Circuit, p pauli.String, theta float64) {
	sup := p.Support()
	if len(sup) == 0 {
		return // global phase only
	}
	target := sup[len(sup)-1]
	var in, out []Gate
	for _, q := range sup {
		switch p.Letter(q) {
		case pauli.X:
			in = append(in, H(q))
			out = append(out, H(q))
		case pauli.Y:
			in = append(in, RxPlus(q))
			out = append(out, RxMinus(q))
		}
	}
	c.Append(in...)
	for i := 0; i+1 < len(sup); i++ {
		c.Append(CNOT(sup[i], target))
	}
	c.Append(Rz(target, theta))
	for i := len(sup) - 2; i >= 0; i-- {
		c.Append(CNOT(sup[i], target))
	}
	c.Append(out...)
}

// SynthesizeTrotter compiles one or more first-order Trotter steps of
// exp(−i·H·t): each term c_j·S_j becomes exp(−i·c_j·t/steps·S_j) repeated
// `steps` times. Coefficients must be real (Hermitian H).
func SynthesizeTrotter(h *pauli.Hamiltonian, t float64, steps int, ord TermOrder) *Circuit {
	if steps < 1 {
		steps = 1
	}
	c := New(h.N())
	ts := OrderTerms(h, ord)
	for s := 0; s < steps; s++ {
		for _, term := range ts {
			theta := 2 * real(term.Coeff) * t / float64(steps)
			AppendEvolution(c, term.S, theta)
		}
	}
	return c
}

// Optimize runs the peephole passes to a fixpoint: adjacent CNOT pairs with
// identical control/target cancel, adjacent single-qubit gates on the same
// qubit merge into one U3 (dropped if the product is the identity up to
// global phase). Gates commute past gates on disjoint qubits, which the
// scan handles by tracking the previous gate touching each qubit. Returns
// a new circuit; the input is unchanged.
func Optimize(c *Circuit) *Circuit {
	gates := make([]Gate, len(c.Gates))
	copy(gates, c.Gates)
	// A handful of passes reaches the fixpoint on Trotter circuits; the cap
	// bounds worst-case cost on very large inputs.
	for pass := 0; pass < 6; pass++ {
		next, changed := optimizePass(gates, c.N)
		gates = next
		if !changed {
			break
		}
	}
	out := New(c.N)
	out.Gates = gates
	return out
}

// scanWindow bounds the backward commutation scan per gate, keeping the
// pass near-linear on large circuits.
const scanWindow = 128

func optimizePass(gates []Gate, n int) ([]Gate, bool) {
	alive := make([]bool, len(gates))
	for i := range alive {
		alive[i] = true
	}
	changed := false
	for i := range gates {
		g := gates[i]
		if g.Kind == KindCNOT {
			// Walk backwards past gates that commute with this CNOT; an
			// identical CNOT encountered that way cancels with it.
			steps := 0
			for j := i - 1; j >= 0 && steps < scanWindow; j-- {
				if !alive[j] {
					continue
				}
				steps++
				pg := gates[j]
				if pg.Kind == KindCNOT && pg.Q == g.Q && pg.Q2 == g.Q2 {
					alive[i] = false
					alive[j] = false
					changed = true
					break
				}
				if !commutesWithCNOT(pg, g) {
					break
				}
			}
			continue
		}
		// Single-qubit gate: merge with the previous alive gate on this
		// qubit when that gate is also single-qubit.
		for j := i - 1; j >= 0; j-- {
			if !alive[j] {
				continue
			}
			pg := gates[j]
			if pg.Q != g.Q && !(pg.Kind == KindCNOT && pg.Q2 == g.Q) {
				continue // different qubits: keep scanning
			}
			if pg.Kind != KindSingle {
				break
			}
			merged := mulMat(g.M, pg.M) // g applied after pg ⇒ g·pg
			alive[j] = false
			changed = true
			if isIdentityMat(merged) {
				alive[i] = false
			} else {
				gates[i] = Gate{Kind: KindSingle, Q: g.Q, Q2: -1, Label: "U3", M: merged}
			}
			break
		}
	}
	if !changed {
		return gates, false
	}
	out := gates[:0:0]
	for i, g := range gates {
		if alive[i] {
			out = append(out, g)
		}
	}
	return out, true
}

// commutesWithCNOT reports (conservatively) whether gate pg commutes with
// the CNOT g: gates on disjoint qubits always do; CNOTs sharing only the
// target, or only the control, commute; a diagonal single-qubit gate on the
// control commutes; an X gate on the target commutes.
func commutesWithCNOT(pg, g Gate) bool {
	if pg.Kind == KindCNOT {
		if pg.Q == g.Q && pg.Q2 == g.Q2 {
			return true // identical (handled by caller, but commutes anyway)
		}
		sharesTarget := pg.Q == g.Q
		sharesControl := pg.Q2 == g.Q2
		crossesTC := pg.Q == g.Q2 || pg.Q2 == g.Q
		if crossesTC {
			return false
		}
		return !sharesTarget && !sharesControl || sharesTarget != sharesControl
	}
	if pg.Q != g.Q && pg.Q != g.Q2 {
		return true
	}
	if pg.Q == g.Q2 { // on the control: diagonal gates commute
		return cmplxAbs(pg.M[0][1]) < 1e-12 && cmplxAbs(pg.M[1][0]) < 1e-12
	}
	// On the target: X-like (pure bit-flip with equal off-diagonals)
	// commutes.
	return cmplxAbs(pg.M[0][0]) < 1e-12 && cmplxAbs(pg.M[1][1]) < 1e-12 &&
		cmplxAbs(pg.M[0][1]-pg.M[1][0]) < 1e-12
}

func cmplxAbs(c complex128) float64 {
	re, im := real(c), imag(c)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re+im == 0 {
		return 0
	}
	return re + im // 1-norm is fine for thresholding
}

// Compile is the end-to-end pipeline the evaluation uses: order terms,
// synthesize one Trotter step at t = 1, and optimize.
func Compile(h *pauli.Hamiltonian, ord TermOrder) *Circuit {
	return Optimize(SynthesizeTrotter(h, 1.0, 1, ord))
}
