package circuit

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

// applyGate is a minimal reference statevector applier for tests only
// (the full simulator lives in internal/sim and is tested against this
// package's circuits as well).
func applyGate(psi []complex128, g Gate, n int) {
	switch g.Kind {
	case KindSingle:
		stride := 1 << uint(g.Q)
		for base := 0; base < len(psi); base += stride * 2 {
			for i := base; i < base+stride; i++ {
				a, b := psi[i], psi[i+stride]
				psi[i] = g.M[0][0]*a + g.M[0][1]*b
				psi[i+stride] = g.M[1][0]*a + g.M[1][1]*b
			}
		}
	case KindCNOT:
		cm := 1 << uint(g.Q2)
		tm := 1 << uint(g.Q)
		for i := range psi {
			if i&cm != 0 && i&tm == 0 {
				psi[i], psi[i|tm] = psi[i|tm], psi[i]
			}
		}
	}
}

func runCircuit(c *Circuit, psi []complex128) {
	for _, g := range c.Gates {
		applyGate(psi, g, c.N)
	}
}

// applyPauli computes P|ψ⟩ directly from the string action.
func applyPauli(p pauli.String, psi []complex128) []complex128 {
	out := make([]complex128, len(psi))
	coeff := p.LetterCoeff()
	var flip int
	for _, q := range p.Support() {
		if l := p.Letter(q); l == pauli.X || l == pauli.Y {
			flip |= 1 << uint(q)
		}
	}
	for i, a := range psi {
		amp := coeff * a
		for _, q := range p.Support() {
			bit := i >> uint(q) & 1
			switch p.Letter(q) {
			case pauli.Z:
				if bit == 1 {
					amp = -amp
				}
			case pauli.Y:
				if bit == 0 {
					amp *= complex(0, 1)
				} else {
					amp *= complex(0, -1)
				}
			}
		}
		out[i^flip] = amp
	}
	return out
}

func randomState(r *rand.Rand, n int) []complex128 {
	psi := make([]complex128, 1<<uint(n))
	norm := 0.0
	for i := range psi {
		psi[i] = complex(r.NormFloat64(), r.NormFloat64())
		norm += real(psi[i])*real(psi[i]) + imag(psi[i])*imag(psi[i])
	}
	s := complex(1/math.Sqrt(norm), 0)
	for i := range psi {
		psi[i] *= s
	}
	return psi
}

func statesClose(a, b []complex128, tol float64) bool {
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// expectEvolution computes exp(−i·θ/2·P)|ψ⟩ = cos(θ/2)|ψ⟩ − i·sin(θ/2)·P|ψ⟩.
func expectEvolution(p pauli.String, theta float64, psi []complex128) []complex128 {
	pp := applyPauli(p, psi)
	out := make([]complex128, len(psi))
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	for i := range psi {
		out[i] = c*psi[i] + s*pp[i]
	}
	return out
}

func TestEvolutionMatchesExactExponential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cases := []string{"Z", "X", "Y", "ZZ", "XY", "YX", "XYZ", "ZIZ", "YYXX", "IXIY"}
	for _, sstr := range cases {
		p := pauli.MustParse(sstr)
		theta := 0.37
		c := New(p.N())
		AppendEvolution(c, p, theta)
		psi := randomState(r, p.N())
		want := expectEvolution(p, theta, psi)
		got := make([]complex128, len(psi))
		copy(got, psi)
		runCircuit(c, got)
		if !statesClose(got, want, 1e-9) {
			t.Errorf("evolution circuit for %s wrong", sstr)
		}
	}
}

func TestEvolutionBalancedMatchesExact(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, sstr := range []string{"XXXX", "ZYXZ", "XYZIX", "ZZ"} {
		p := pauli.MustParse(sstr)
		theta := -0.81
		c := New(p.N())
		appendEvolutionBalanced(c, p, theta)
		psi := randomState(r, p.N())
		want := expectEvolution(p, theta, psi)
		got := make([]complex128, len(psi))
		copy(got, psi)
		runCircuit(c, got)
		if !statesClose(got, want, 1e-9) {
			t.Errorf("balanced evolution for %s wrong", sstr)
		}
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h := pauli.NewHamiltonian(4)
	h.Add(0.5, pauli.MustParse("XXII"))
	h.Add(0.3, pauli.MustParse("XXZI"))
	h.Add(-0.2, pauli.MustParse("IYZX"))
	h.Add(0.7, pauli.MustParse("IYZZ"))
	raw := SynthesizeTrotter(h, 1.0, 1, OrderLexicographic)
	opt := Optimize(raw)
	if opt.CNOTCount() > raw.CNOTCount() {
		t.Errorf("optimizer increased CNOTs: %d -> %d", raw.CNOTCount(), opt.CNOTCount())
	}
	psi := randomState(r, 4)
	a := make([]complex128, len(psi))
	copy(a, psi)
	runCircuit(raw, a)
	b := make([]complex128, len(psi))
	copy(b, psi)
	runCircuit(opt, b)
	// Allow a global phase between the two.
	var phase complex128
	for i := range a {
		if cmplx.Abs(a[i]) > 1e-8 {
			phase = b[i] / a[i]
			break
		}
	}
	if math.Abs(cmplx.Abs(phase)-1) > 1e-9 {
		t.Fatalf("global phase magnitude %v", cmplx.Abs(phase))
	}
	for i := range a {
		if cmplx.Abs(a[i]*phase-b[i]) > 1e-9 {
			t.Fatalf("optimized circuit changed semantics at amplitude %d", i)
		}
	}
}

func TestOptimizeCancelsCNOTPairs(t *testing.T) {
	c := New(2)
	c.Append(CNOT(0, 1), CNOT(0, 1))
	opt := Optimize(c)
	if len(opt.Gates) != 0 {
		t.Errorf("CX·CX not cancelled: %s", opt)
	}
	// With an interposed gate on another qubit the pair still cancels.
	c2 := New(3)
	c2.Append(CNOT(0, 1), H(2), CNOT(0, 1))
	opt2 := Optimize(c2)
	if opt2.CNOTCount() != 0 || opt2.SingleCount() != 1 {
		t.Errorf("interposed cancel failed: %s", opt2)
	}
	// A gate touching one of the pair's qubits blocks cancellation.
	c3 := New(2)
	c3.Append(CNOT(0, 1), H(1), CNOT(0, 1))
	opt3 := Optimize(c3)
	if opt3.CNOTCount() != 2 {
		t.Errorf("blocked pair wrongly cancelled: %s", opt3)
	}
}

func TestOptimizeMergesSingles(t *testing.T) {
	c := New(1)
	c.Append(H(0), H(0))
	if opt := Optimize(c); len(opt.Gates) != 0 {
		t.Errorf("H·H not removed: %s", opt)
	}
	c2 := New(1)
	c2.Append(H(0), Rz(0, 0.5), H(0))
	opt2 := Optimize(c2)
	if opt2.SingleCount() != 1 {
		t.Errorf("merge chain = %s, want single U3", opt2)
	}
}

func TestDepthAndCounts(t *testing.T) {
	c := New(3)
	c.Append(H(0), H(1), CNOT(0, 1), Rz(1, 0.3), CNOT(0, 1), H(2))
	if got := c.CNOTCount(); got != 2 {
		t.Errorf("CNOTs = %d", got)
	}
	if got := c.SingleCount(); got != 4 {
		t.Errorf("singles = %d", got)
	}
	// Depth: q0/q1 path: H(1), CX(2), RZ(3), CX(4); H(2) parallel at 1.
	if got := c.Depth(); got != 4 {
		t.Errorf("depth = %d, want 4", got)
	}
	st := c.Stats()
	if st.CNOTs != 2 || st.Singles != 4 || st.Depth != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOrderTermsModes(t *testing.T) {
	h := pauli.NewHamiltonian(3)
	h.Add(0.1, pauli.MustParse("XXI"))
	h.Add(0.9, pauli.MustParse("IZZ"))
	h.Add(0.5, pauli.MustParse("XXZ"))
	h.Add(0.2, pauli.Identity(3)) // dropped
	for _, ord := range []TermOrder{OrderNatural, OrderLexicographic, OrderGreedyOverlap} {
		ts := OrderTerms(h, ord)
		if len(ts) != 3 {
			t.Fatalf("order %d: %d terms, want 3", ord, len(ts))
		}
	}
	// Greedy overlap should chain XXZ next to XXI or IZZ (shared support),
	// starting from the largest coefficient IZZ.
	ts := OrderTerms(h, OrderGreedyOverlap)
	if ts[0].S.Compact() != "Z1Z0" {
		t.Errorf("greedy start = %s, want Z1Z0", ts[0].S.Compact())
	}
}

func TestTrotterStepsScaleAngles(t *testing.T) {
	h := pauli.NewHamiltonian(1)
	h.Add(0.5, pauli.MustParse("Z"))
	one := SynthesizeTrotter(h, 2.0, 1, OrderNatural)
	two := SynthesizeTrotter(h, 2.0, 2, OrderNatural)
	if len(one.Gates) != 1 || len(two.Gates) != 2 {
		t.Fatalf("unexpected gate counts %d, %d", len(one.Gates), len(two.Gates))
	}
	// For a diagonal H the two must agree exactly on a random state.
	r := rand.New(rand.NewSource(5))
	psi := randomState(r, 1)
	a := append([]complex128{}, psi...)
	b := append([]complex128{}, psi...)
	runCircuit(one, a)
	runCircuit(two, b)
	if !statesClose(a, b, 1e-12) {
		t.Error("split Trotter steps of commuting terms differ")
	}
}

func TestCompilePipeline(t *testing.T) {
	h := pauli.NewHamiltonian(3)
	h.Add(0.4, pauli.MustParse("XZI"))
	h.Add(0.2, pauli.MustParse("XZZ"))
	c := Compile(h, OrderLexicographic)
	if c.CNOTCount() == 0 || c.Depth() == 0 {
		t.Error("empty compile result")
	}
	// Shared prefix: the two terms share X2 Z1 ⇒ optimized circuit should
	// use fewer CNOTs than naive 2·(w−1) sum = 2·1 + 2·2 = 6.
	if c.CNOTCount() >= 6 {
		t.Errorf("no ladder sharing: %d CNOTs", c.CNOTCount())
	}
}

func TestRustiqDepthAdvantageOnWideTerm(t *testing.T) {
	// For a single weight-8 term, the balanced tree halves ladder depth.
	h := pauli.NewHamiltonian(8)
	h.Add(0.3, pauli.MustParse("ZZZZZZZZ"))
	ladder := Compile(h, OrderNatural)
	tree := SynthesizeRustiq(h, 1.0)
	if tree.Depth() >= ladder.Depth() {
		t.Errorf("balanced tree depth %d not better than ladder %d", tree.Depth(), ladder.Depth())
	}
	if tree.CNOTCount() != ladder.CNOTCount() {
		t.Errorf("CNOT counts differ: %d vs %d", tree.CNOTCount(), ladder.CNOTCount())
	}
}

func TestAppendPanicsOnBadGate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad gate accepted")
		}
	}()
	c := New(2)
	c.Append(CNOT(0, 5))
}
