package circuit

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"strings"
)

// U3Angles decomposes a 2×2 unitary into the OpenQASM u3(θ, φ, λ) angles,
// up to global phase:
//
//	u3 = [[cos(θ/2),            −e^{iλ} sin(θ/2)],
//	      [e^{iφ} sin(θ/2),  e^{i(φ+λ)} cos(θ/2)]]
func U3Angles(m [2][2]complex128) (theta, phi, lambda float64) {
	c := cmplx.Abs(m[0][0])
	if c > 1 {
		c = 1
	}
	theta = 2 * math.Acos(c)
	s := math.Sin(theta / 2)
	if cmplx.Abs(m[0][0]) > 1e-12 {
		// Normalize away the global phase of the (0,0) entry.
		g := m[0][0] / complex(cmplx.Abs(m[0][0]), 0)
		if s > 1e-12 {
			phi = cmplx.Phase(m[1][0] / g)
			lambda = cmplx.Phase(-m[0][1] / g)
		} else {
			// Diagonal gate: fold everything into λ.
			phi = 0
			lambda = cmplx.Phase(m[1][1] / g)
		}
	} else {
		// Anti-diagonal gate (θ = π): align the global phase with the
		// (1,0) entry, then λ follows from the (0,1) entry.
		phi = cmplx.Phase(m[1][0])
		lambda = cmplx.Phase(-m[0][1])
	}
	return theta, phi, lambda
}

// u3Matrix rebuilds the unitary from angles (for round-trip tests).
func u3Matrix(theta, phi, lambda float64) [2][2]complex128 {
	ct := complex(math.Cos(theta/2), 0)
	st := complex(math.Sin(theta/2), 0)
	return [2][2]complex128{
		{ct, -cmplx.Exp(complex(0, lambda)) * st},
		{cmplx.Exp(complex(0, phi)) * st, cmplx.Exp(complex(0, phi+lambda)) * ct},
	}
}

// WriteQASM emits the circuit as OpenQASM 2.0 over the {u3, cx} basis.
func (c *Circuit) WriteQASM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\n", c.N); err != nil {
		return err
	}
	for _, g := range c.Gates {
		switch g.Kind {
		case KindCNOT:
			if _, err := fmt.Fprintf(w, "cx q[%d],q[%d];\n", g.Q2, g.Q); err != nil {
				return err
			}
		case KindSingle:
			t, p, l := U3Angles(g.M)
			if _, err := fmt.Fprintf(w, "u3(%.10g,%.10g,%.10g) q[%d];\n", t, p, l, g.Q); err != nil {
				return err
			}
		}
	}
	return nil
}

// QASM returns the OpenQASM 2.0 text.
func (c *Circuit) QASM() string {
	var b strings.Builder
	_ = c.WriteQASM(&b)
	return b.String()
}

// Diagram renders a fixed-width text diagram, one row per qubit, time
// flowing left to right. Intended for small circuits (examples, debugging).
func (c *Circuit) Diagram() string {
	type col struct {
		cells map[int]string
		qs    []int
	}
	var cols []col
	level := make([]int, c.N)
	place := func(qs []int, cells map[int]string) {
		l := 0
		for _, q := range qs {
			if level[q] > l {
				l = level[q]
			}
		}
		for len(cols) <= l {
			cols = append(cols, col{cells: map[int]string{}})
		}
		for q, s := range cells {
			cols[l].cells[q] = s
		}
		for _, q := range qs {
			level[q] = l + 1
		}
	}
	for _, g := range c.Gates {
		switch g.Kind {
		case KindCNOT:
			place([]int{g.Q, g.Q2}, map[int]string{g.Q2: "─●─", g.Q: "─⊕─"})
		case KindSingle:
			lbl := g.Label
			if len(lbl) > 3 {
				lbl = lbl[:3]
			}
			place([]int{g.Q}, map[int]string{g.Q: fmt.Sprintf("[%s]", lbl)})
		}
	}
	var b strings.Builder
	for q := c.N - 1; q >= 0; q-- {
		fmt.Fprintf(&b, "q%-2d ", q)
		for _, cl := range cols {
			cell, ok := cl.cells[q]
			if !ok {
				cell = "───"
			}
			b.WriteString(cell)
			for len([]rune(cell)) < 5 {
				b.WriteString("─")
				cell += "─"
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
