package pauli

// QWCGroup is a set of qubit-wise commuting terms: on every qubit, all
// members act with the same non-identity letter or the identity, so one
// measurement basis serves the whole group.
type QWCGroup struct {
	Terms []Term
	// Basis[q] is the shared letter on qubit q (I where every member is
	// identity).
	Basis []Letter
}

// qwcCompatible reports whether s fits the partial basis, and extends it.
func qwcCompatible(basis []Letter, s String) bool {
	for _, q := range s.Support() {
		l := s.Letter(q)
		if basis[q] != I && basis[q] != l {
			return false
		}
	}
	return true
}

// GroupQWC partitions the non-identity terms of h into qubit-wise
// commuting groups with first-fit greedy assignment over terms in
// descending coefficient order (the standard measurement-grouping
// heuristic). Identity terms are excluded; add their coefficients
// directly. The number of groups equals the number of distinct
// measurement settings needed to estimate ⟨h⟩.
func GroupQWC(h *Hamiltonian) []QWCGroup {
	var groups []QWCGroup
	for _, t := range h.Terms() {
		if t.S.IsIdentity() {
			continue
		}
		placed := false
		for gi := range groups {
			if qwcCompatible(groups[gi].Basis, t.S) {
				groups[gi].Terms = append(groups[gi].Terms, t)
				for _, q := range t.S.Support() {
					groups[gi].Basis[q] = t.S.Letter(q)
				}
				placed = true
				break
			}
		}
		if !placed {
			g := QWCGroup{Basis: make([]Letter, h.N())}
			for _, q := range t.S.Support() {
				g.Basis[q] = t.S.Letter(q)
			}
			g.Terms = []Term{t}
			groups = append(groups, g)
		}
	}
	return groups
}
