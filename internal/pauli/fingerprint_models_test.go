package pauli_test

// External test package: exercises Fingerprint against the real term
// populations this repository produces — every bundled model family, mapped
// to qubits with Jordan–Wigner, Bravyi–Kitaev, and HATT — without creating
// an import cycle (models → fermion → pauli).

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/pauli"
)

// TestFingerprintCollisionFreeAcrossModels asserts that within every
// mapped model Hamiltonian, distinct letter patterns never share a
// fingerprint (and identical patterns always do): the property the
// fingerprint-keyed Hamiltonian map relies on for its fast path.
func TestFingerprintCollisionFreeAcrossModels(t *testing.T) {
	specs := []string{
		"h2", "molecule:8", "molecule:12",
		"hubbard:2x2", "hubbard:2x3", "hubbard:3x3",
		"neutrino:3x2", "neutrino:4x2",
	}
	for _, spec := range specs {
		h, err := models.Resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		mh := h.Majorana(1e-12)
		maps := []*mapping.Mapping{
			mapping.JordanWigner(h.Modes),
			mapping.BravyiKitaev(h.Modes),
			core.Build(mh).Mapping,
		}
		for _, m := range maps {
			hq := m.Apply(mh)
			byFP := map[pauli.Fingerprint]string{}
			for _, term := range hq.Terms() {
				fp := term.S.Fingerprint()
				key := term.S.Key()
				if prev, ok := byFP[fp]; ok && prev != key {
					t.Fatalf("%s/%s: fingerprint collision between distinct terms", spec, m.Name)
				}
				byFP[fp] = key
			}
			// Majorana strings too: the build memo and dedup paths
			// fingerprint these directly.
			for j, s := range m.Majoranas {
				for k := j + 1; k < len(m.Majoranas); k++ {
					same := s.EqualUpToPhase(m.Majoranas[k])
					if (s.Fingerprint() == m.Majoranas[k].Fingerprint()) != same {
						t.Fatalf("%s/%s: Majorana fingerprint mismatch at (%d,%d)", spec, m.Name, j, k)
					}
				}
			}
		}
	}
}
