package pauli

import (
	"math/cmplx"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/analysis/annotations"
)

// stringFromWords builds a test string directly from symplectic words,
// used by the fuzz harnesses to reach arbitrary bit patterns.
func stringFromWords(n int, x, z []uint64, phase uint8) String {
	s := Identity(n)
	w := words(n)
	var mask uint64 = ^uint64(0)
	if n%64 != 0 {
		mask = 1<<uint(n%64) - 1
	}
	for i := 0; i < w && i < len(x); i++ {
		s.x[i] = x[i]
		s.z[i] = z[i]
	}
	if w > 0 {
		s.x[w-1] &= mask
		s.z[w-1] &= mask
	}
	s.phase = phase & 3
	return s
}

func checkMulVariants(t *testing.T, a, b String) {
	t.Helper()
	want := a.Mul(b)

	var dst String
	a.MulInto(&dst, b)
	if !dst.Equal(want) {
		t.Fatalf("MulInto: %s, want %s", dst, want)
	}
	// Warm destination: result must be identical and buffers reused.
	a.MulInto(&dst, b)
	if !dst.Equal(want) {
		t.Fatalf("warm MulInto: %s, want %s", dst, want)
	}

	acc := a.Clone()
	acc.MulAssign(b)
	if !acc.Equal(want) {
		t.Fatalf("MulAssign: %s, want %s", acc, want)
	}

	// XorAssign matches the letters of the product but keeps a's phase.
	xa := a.Clone()
	xa.XorAssign(b)
	if !xa.EqualUpToPhase(want) {
		t.Fatalf("XorAssign letters: %s, want %s", xa, want)
	}
	if xa.Phase() != a.Phase() {
		t.Fatalf("XorAssign phase changed: %d, want %d", xa.Phase(), a.Phase())
	}

	// Aliased destination: dst == receiver.
	self := a.Clone()
	self.MulInto(&self, b)
	if !self.Equal(want) {
		t.Fatalf("aliased MulInto: %s, want %s", self, want)
	}
}

func TestMulVariantsEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(140) // exercises 1, 2, and 3-word strings
		checkMulVariants(t, randomString(r, n), randomString(r, n))
	}
}

func FuzzMulIntoEquivalence(f *testing.F) {
	f.Add(uint8(4), uint64(0b1010), uint64(0b0110), uint64(0b0011), uint64(0b1001), uint8(1), uint8(2))
	f.Add(uint8(64), ^uint64(0), uint64(0), uint64(0), ^uint64(0), uint8(0), uint8(3))
	f.Add(uint8(1), uint64(1), uint64(1), uint64(1), uint64(0), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, n uint8, xa, za, xb, zb uint64, pa, pb uint8) {
		qubits := 1 + int(n)%64
		a := stringFromWords(qubits, []uint64{xa}, []uint64{za}, pa)
		b := stringFromWords(qubits, []uint64{xb}, []uint64{zb}, pb)
		checkMulVariants(t, a, b)
	})
}

func TestSupportAppend(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	buf := make([]int, 0, 256)
	for trial := 0; trial < 200; trial++ {
		s := randomString(r, 1+r.Intn(130))
		want := s.Support()
		got := s.SupportAppend(buf[:0])
		if len(got) != len(want) {
			t.Fatalf("len %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("support[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
}

func TestFingerprintMatchesKeyEquality(t *testing.T) {
	// Within one qubit count, Fingerprint equality must coincide with
	// letter (Key) equality; for n ≤ 64 this is exact by construction,
	// wider strings are exercised through the hash path.
	r := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 7, 63, 64, 65, 130, 200} {
		seen := map[Fingerprint]string{}
		for trial := 0; trial < 400; trial++ {
			s := randomString(r, n)
			fp := s.Fingerprint()
			if k, ok := seen[fp]; ok && k != s.Key() {
				t.Fatalf("n=%d: fingerprint collision between distinct strings", n)
			}
			seen[fp] = s.Key()
		}
	}
}

func TestCompareSymplecticIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(100)
		a, b := randomString(r, n), randomString(r, n)
		ab, ba := a.CompareSymplectic(b), b.CompareSymplectic(a)
		if ab != -ba {
			t.Fatalf("antisymmetry violated: %d vs %d", ab, ba)
		}
		if (ab == 0) != a.EqualUpToPhase(b) {
			t.Fatalf("zero iff equal letters violated")
		}
	}
}

func TestResetKeepsBuffers(t *testing.T) {
	s := MustParse("XYZI")
	s.Reset()
	if !s.IsIdentity() || s.Phase() != 0 {
		t.Fatalf("Reset left %s (phase %d)", s, s.Phase())
	}
	if s.N() != 4 {
		t.Fatalf("Reset changed qubit count to %d", s.N())
	}
}

func TestTermsCacheInvalidation(t *testing.T) {
	h := NewHamiltonian(3)
	h.Add(1, MustParse("XII"))
	first := h.Terms()
	if len(first) != 1 {
		t.Fatalf("len %d", len(first))
	}
	if &first[0] != &h.Terms()[0] {
		t.Fatal("Terms() not cached between calls")
	}
	h.Add(2, MustParse("IZI"))
	second := h.Terms()
	if len(second) != 2 {
		t.Fatalf("cache not invalidated by Add: len %d", len(second))
	}
	h.Prune(10)
	if len(h.Terms()) != 0 {
		t.Fatal("cache not invalidated by Prune")
	}
}

// TestCollisionSpillInvariants simulates a 128-bit fingerprint collision
// (unreachable through honest hashing in a test's lifetime) by planting a
// term in the exact-keyed overflow map the way Add's collision branch
// does, then checks the invariants the spill exists for: the overflow
// entry stays authoritative for its key through Coeff, repeated Add,
// Prune of the colliding primary, and aggregate accounting.
func TestCollisionSpillInvariants(t *testing.T) {
	a := MustParse("XZIY")
	bs := MustParse("IYZX")
	h := NewHamiltonian(4)
	h.Add(2, a)
	// Plant bs as if bs.Fingerprint() == a.Fingerprint() != letters(a).
	h.invalidate()
	h.extra = map[string]Term{bs.Key(): {Coeff: 3, S: canonical(bs)}}

	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	if c := h.Coeff(bs); cmplx.Abs(c-3) > 1e-12 {
		t.Fatalf("spilled Coeff = %v, want 3", c)
	}
	// Accumulating onto the spilled term must hit the overflow, not
	// create a duplicate primary entry.
	h.Add(1, bs)
	if h.Len() != 2 {
		t.Fatalf("Add duplicated a spilled term: Len = %d", h.Len())
	}
	if c := h.Coeff(bs); cmplx.Abs(c-4) > 1e-12 {
		t.Fatalf("spilled Coeff after Add = %v, want 4", c)
	}
	// Pruning the primary away must leave the spill readable and still
	// authoritative for future Adds.
	h.Add(-2, a) // a's coefficient → 0
	h.Prune(1e-12)
	if h.Len() != 1 {
		t.Fatalf("Len after prune = %d, want 1", h.Len())
	}
	if c := h.Coeff(bs); cmplx.Abs(c-4) > 1e-12 {
		t.Fatalf("spilled Coeff after prune = %v, want 4", c)
	}
	h.Add(1, bs)
	if h.Len() != 1 || len(h.terms) != 0 {
		t.Fatalf("orphaned spill re-entered the primary map: Len=%d primaries=%d", h.Len(), len(h.terms))
	}
	if c := h.Coeff(bs); cmplx.Abs(c-5) > 1e-12 {
		t.Fatalf("spilled Coeff after orphaned Add = %v, want 5", c)
	}
	ts := h.Terms()
	if len(ts) != 1 || !ts[0].S.EqualUpToPhase(bs) {
		t.Fatalf("Terms() lost the spilled entry: %v", ts)
	}
}

// --- Allocation gates -------------------------------------------------------

func TestZeroAllocMulInto(t *testing.T) {
	if annotations.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	r := rand.New(rand.NewSource(3))
	a, b := randomString(r, 48), randomString(r, 48)
	dst := Identity(48)
	if n := testing.AllocsPerRun(200, func() {
		a.MulInto(&dst, b)
	}); n != 0 {
		t.Fatalf("MulInto allocates %.1f/op, want 0", n)
	}
	acc := a.Clone()
	if n := testing.AllocsPerRun(200, func() {
		acc.MulAssign(b)
	}); n != 0 {
		t.Fatalf("MulAssign allocates %.1f/op, want 0", n)
	}
}

func TestZeroAllocHamiltonianAddWarm(t *testing.T) {
	if annotations.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	r := rand.New(rand.NewSource(5))
	h := NewHamiltonian(32)
	ss := make([]String, 64)
	for i := range ss {
		ss[i] = randomString(r, 32)
		h.Add(complex(float64(i), 0), ss[i])
	}
	i := 0
	if n := testing.AllocsPerRun(500, func() {
		h.Add(0.25, ss[i%len(ss)])
		i++
	}); n != 0 {
		t.Fatalf("warm Hamiltonian.Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(500, func() {
		_ = h.Coeff(ss[i%len(ss)])
		i++
	}); n != 0 {
		t.Fatalf("Hamiltonian.Coeff allocates %.1f/op, want 0", n)
	}
}

// TestNoAllocAnnotationCoverage pins the gates above to the static
// contract: every function they exercise must carry the //hatt:noalloc
// annotation the noalloc analysis pass enforces, so the runtime gate
// and the lint rule can never drift apart.
func TestNoAllocAnnotationCoverage(t *testing.T) {
	annotated, err := annotations.NoAllocFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"String.MulAssign", "String.MulInto", "String.XorAssign", "Hamiltonian.Add", "Hamiltonian.Coeff"} {
		if !slices.Contains(annotated, fn) {
			t.Errorf("%s lacks the %s annotation the zero-alloc gates rely on (annotated: %v)",
				fn, annotations.Directive, annotated)
		}
	}
}
