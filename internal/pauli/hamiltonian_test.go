package pauli

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestHamiltonianAddMerges(t *testing.T) {
	h := NewHamiltonian(2)
	h.Add(0.5, MustParse("XZ"))
	h.Add(0.25, MustParse("XZ"))
	if h.Len() != 1 {
		t.Fatalf("len = %d, want 1", h.Len())
	}
	if c := h.Coeff(MustParse("XZ")); cmplx.Abs(c-0.75) > 1e-12 {
		t.Fatalf("coeff = %v, want 0.75", c)
	}
}

func TestHamiltonianPhaseFolding(t *testing.T) {
	h := NewHamiltonian(1)
	s := MustParse("Y") // stored as (1,1) with i phase
	h.Add(1, s)
	if c := h.Coeff(s); cmplx.Abs(c-1) > 1e-12 {
		t.Fatalf("coeff of Y = %v, want 1", c)
	}
	// Adding i·(-i·XZ form) should still merge with the letter form.
	neg := s.Clone()
	h.Add(-1, neg)
	h.Prune(1e-14)
	if h.Len() != 0 {
		t.Fatalf("terms did not cancel: %s", h)
	}
}

func TestHamiltonianWeight(t *testing.T) {
	h := NewHamiltonian(4)
	h.Add(1, MustParse("XYIZ"))   // weight 3
	h.Add(0.5, MustParse("IIII")) // identity contributes 0
	h.Add(2, MustParse("ZIII"))   // weight 1
	if w := h.Weight(); w != 4 {
		t.Fatalf("weight = %d, want 4", w)
	}
	if n := h.NonIdentityTerms(); n != 2 {
		t.Fatalf("non-identity terms = %d, want 2", n)
	}
}

func TestHamiltonianMulAgainstPaperExample(t *testing.T) {
	// HQ = c1(X0X1)(Y0Z2) + c2(X0Y1)(Y0X2) = c1'·Z0X1Z2 + c2'·Z0Y1X2
	// from the motivation example (Fig. 4a). Weight must be 6.
	c1, c2 := complex(0.3, 0), complex(0.7, 0)
	h := NewHamiltonian(3)
	h.Add(c1, New(3, []int{0, 1}, []Letter{X, X}).Mul(New(3, []int{0, 2}, []Letter{Y, Z})))
	h.Add(c2, New(3, []int{0, 1}, []Letter{X, Y}).Mul(New(3, []int{0, 2}, []Letter{Y, X})))
	if h.Weight() != 6 {
		t.Fatalf("weight = %d, want 6", h.Weight())
	}
	// Unbalanced tree version (Fig. 4b): c1(X0)(Y0Z1) + c2(Y0X1X2)(Y0X1Z2)
	// = c1'·Z0Z1 + c2'·Y2 with weight 3.
	h2 := NewHamiltonian(3)
	h2.Add(c1, New(3, []int{0}, []Letter{X}).Mul(New(3, []int{0, 1}, []Letter{Y, Z})))
	h2.Add(c2, New(3, []int{0, 1, 2}, []Letter{Y, X, X}).Mul(New(3, []int{0, 1, 2}, []Letter{Y, X, Z})))
	if h2.Weight() != 3 {
		t.Fatalf("unbalanced weight = %d, want 3", h2.Weight())
	}
}

func TestHamiltonianHermiticity(t *testing.T) {
	h := NewHamiltonian(2)
	h.Add(1.5, MustParse("XZ"))
	if !h.IsHermitian(1e-12) {
		t.Error("real-coefficient sum should be Hermitian")
	}
	h.Add(complex(0, 0.5), MustParse("ZZ"))
	if h.IsHermitian(1e-12) {
		t.Error("imaginary coefficient should break Hermiticity")
	}
}

func TestHamiltonianMulOperator(t *testing.T) {
	// (X)(Z) = -iY as an operator product of Hamiltonians.
	a := NewHamiltonian(1)
	a.Add(1, MustParse("X"))
	b := NewHamiltonian(1)
	b.Add(1, MustParse("Z"))
	p := a.Mul(b)
	if p.Len() != 1 {
		t.Fatalf("len = %d", p.Len())
	}
	c := p.Coeff(MustParse("Y"))
	if cmplx.Abs(c-complex(0, -1)) > 1e-12 {
		t.Fatalf("coeff = %v, want -i", c)
	}
}

func TestExpectationOnBasis(t *testing.T) {
	h := NewHamiltonian(2)
	h.Add(1, MustParse("ZI")) // Z on qubit 1
	h.Add(2, MustParse("IZ")) // Z on qubit 0
	h.Add(5, MustParse("XX")) // off-diagonal: no contribution
	h.Add(3, MustParse("II"))
	// |00⟩: 1+2+3 = 6
	if e := h.ExpectationOnBasis(0); cmplx.Abs(e-6) > 1e-12 {
		t.Fatalf("E(00) = %v", e)
	}
	// |01⟩ (qubit 0 set): 1-2+3 = 2
	if e := h.ExpectationOnBasis(1); cmplx.Abs(e-2) > 1e-12 {
		t.Fatalf("E(01) = %v", e)
	}
	// |11⟩: -1-2+3 = 0
	if e := h.ExpectationOnBasis(3); cmplx.Abs(e) > 1e-12 {
		t.Fatalf("E(11) = %v", e)
	}
}

func TestTermsDeterministicOrder(t *testing.T) {
	mk := func() *Hamiltonian {
		h := NewHamiltonian(3)
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 20; i++ {
			h.Add(complex(r.Float64(), 0), randomString(r, 3))
		}
		return h
	}
	a, b := mk().Terms(), mk().Terms()
	if len(a) != len(b) {
		t.Fatal("nondeterministic construction")
	}
	for i := range a {
		if !a[i].S.Equal(b[i].S) || a[i].Coeff != b[i].Coeff {
			t.Fatal("Terms() order not deterministic")
		}
	}
}

func TestTraceAndAddHamiltonian(t *testing.T) {
	h := NewHamiltonian(2)
	h.Add(4, Identity(2))
	h.Add(1, MustParse("XZ"))
	if tr := h.Trace(); cmplx.Abs(tr-4) > 1e-12 {
		t.Fatalf("trace = %v", tr)
	}
	g := NewHamiltonian(2)
	g.AddHamiltonian(0.5, h)
	if tr := g.Trace(); cmplx.Abs(tr-2) > 1e-12 {
		t.Fatalf("scaled trace = %v", tr)
	}
	if c := g.Coeff(MustParse("XZ")); cmplx.Abs(c-0.5) > 1e-12 {
		t.Fatalf("scaled coeff = %v", c)
	}
}
