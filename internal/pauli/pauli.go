// Package pauli implements the Pauli-string algebra that underlies every
// fermion-to-qubit mapping in this repository.
//
// A Pauli string on N qubits is stored in the symplectic representation: two
// bitsets X and Z plus a global phase that is a power of the imaginary unit i.
// The value represented is
//
//	i^Phase * Π_q X_q^{x_q} · Z_q^{z_q}
//
// where the product runs over qubits q = 0 … N-1 (qubit 0 is the rightmost
// operator when the string is printed, matching the paper's convention).
// The single-qubit letter Y is represented as x=z=1 with a phase bump of one
// because Y = i·X·Z.
//
// This representation makes multiplication, commutation checks, and weight
// computation O(N/64) with exact phase bookkeeping.
package pauli

import (
	"fmt"
	"math/bits"
	"strings"
)

// Letter identifies a single-qubit Pauli operator.
type Letter byte

// The four single-qubit Pauli operators.
const (
	I Letter = iota
	X
	Z
	Y
)

// String returns the conventional one-character name of the letter.
func (l Letter) String() string {
	switch l {
	case I:
		return "I"
	case X:
		return "X"
	case Y:
		return "Y"
	case Z:
		return "Z"
	}
	return "?"
}

// String is an N-qubit Pauli string with a global i^Phase prefactor.
// The zero value is not usable; construct strings with Identity, New,
// FromLetters, or Parse.
type String struct {
	n     int
	x, z  []uint64
	phase uint8 // power of i, mod 4
}

func words(n int) int { return (n + 63) / 64 }

// Identity returns the N-qubit identity string (phase 0).
func Identity(n int) String {
	if n < 0 {
		panic("pauli: negative qubit count")
	}
	return String{n: n, x: make([]uint64, words(n)), z: make([]uint64, words(n))}
}

// New builds a string from explicit letter placements. qubits and letters
// must have the same length; later entries act on the left (they multiply
// onto the accumulated string), so placing two letters on the same qubit
// composes them.
func New(n int, qubits []int, letters []Letter) String {
	if len(qubits) != len(letters) {
		panic("pauli: qubits/letters length mismatch")
	}
	s := Identity(n)
	for i, q := range qubits {
		s = s.Mul(single(n, q, letters[i]))
	}
	return s
}

// single returns the string with one letter at qubit q.
func single(n, q int, l Letter) String {
	s := Identity(n)
	s.SetLetter(q, l)
	return s
}

// N returns the number of qubits the string acts on.
func (s String) N() int { return s.n }

// Phase returns the power of i in the global prefactor (0..3).
func (s String) Phase() uint8 { return s.phase }

// PhaseCoeff returns the complex value i^Phase.
func (s String) PhaseCoeff() complex128 { return phaseCoeff(s.phase) }

func phaseCoeff(p uint8) complex128 {
	switch p & 3 {
	case 0:
		return 1
	case 1:
		return complex(0, 1)
	case 2:
		return -1
	default:
		return complex(0, -1)
	}
}

// yCount returns the number of Y letters (x=z=1 positions).
func (s String) yCount() int {
	c := 0
	for i := range s.x {
		c += bits.OnesCount64(s.x[i] & s.z[i])
	}
	return c
}

// LetterPhase returns the phase exponent of i relative to the plain
// letter-product form: value(s) = i^LetterPhase · Π letters. A string built
// purely from letters has LetterPhase 0.
func (s String) LetterPhase() uint8 {
	return (s.phase + 4 - uint8(s.yCount()&3)) & 3
}

// LetterCoeff returns i^LetterPhase as a complex number.
func (s String) LetterCoeff() complex128 { return phaseCoeff(s.LetterPhase()) }

// Clone returns an independent deep copy of s.
func (s String) Clone() String {
	c := String{n: s.n, phase: s.phase, x: make([]uint64, len(s.x)), z: make([]uint64, len(s.z))}
	copy(c.x, s.x)
	copy(c.z, s.z)
	return c
}

// Letter reports the Pauli letter acting on qubit q, ignoring phase.
func (s String) Letter(q int) Letter {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("pauli: qubit %d out of range [0,%d)", q, s.n))
	}
	w, b := q/64, uint(q%64)
	xb := s.x[w]>>b&1 == 1
	zb := s.z[w]>>b&1 == 1
	switch {
	case xb && zb:
		return Y
	case xb:
		return X
	case zb:
		return Z
	}
	return I
}

// SetLetter overwrites the letter on qubit q in place, adjusting the global
// phase so that the represented operator carries the standard letter (e.g.
// setting Y stores x=z=1 and bumps the phase by i). Any previous letter on q
// is discarded, including its Y-phase contribution.
func (s *String) SetLetter(q int, l Letter) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("pauli: qubit %d out of range [0,%d)", q, s.n))
	}
	if s.Letter(q) == Y {
		s.phase = (s.phase + 3) & 3 // undo previous Y phase
	}
	w, b := q/64, uint(q%64)
	s.x[w] &^= 1 << b
	s.z[w] &^= 1 << b
	switch l {
	case X:
		s.x[w] |= 1 << b
	case Z:
		s.z[w] |= 1 << b
	case Y:
		s.x[w] |= 1 << b
		s.z[w] |= 1 << b
		s.phase = (s.phase + 1) & 3
	}
}

// Weight returns the number of non-identity letters in the string.
func (s String) Weight() int {
	w := 0
	for i := range s.x {
		w += bits.OnesCount64(s.x[i] | s.z[i])
	}
	return w
}

// IsIdentity reports whether the string has no non-identity letters
// (the phase may still be nontrivial).
func (s String) IsIdentity() bool {
	for i := range s.x {
		if s.x[i]|s.z[i] != 0 {
			return false
		}
	}
	return true
}

// Support returns the sorted list of qubits with non-identity letters.
// SupportAppend is the allocation-free variant.
func (s String) Support() []int {
	return s.SupportAppend(nil)
}

// Mul returns the product s·t (s applied after t in operator order), with
// exact phase tracking. Panics if the qubit counts differ.
// Reordering X^xa Z^za · X^xb Z^zb → X^(xa^xb) Z^(za^zb) picks up
// (-1)^{za·xb}; squared factors X², Z² are identity with no phase.
// MulInto and MulAssign are the allocation-free variants.
func (s String) Mul(t String) String {
	var r String
	s.MulInto(&r, t)
	return r
}

// Commutes reports whether s and t commute as operators. Two Pauli strings
// either commute or anticommute; they anticommute iff the symplectic form
// Σ (x_s·z_t + z_s·x_t) is odd.
func (s String) Commutes(t String) bool {
	if s.n != t.n {
		panic(fmt.Sprintf("pauli: size mismatch %d vs %d", s.n, t.n))
	}
	sym := 0
	for i := range s.x {
		sym += bits.OnesCount64(s.x[i]&t.z[i]) + bits.OnesCount64(s.z[i]&t.x[i])
	}
	return sym%2 == 0
}

// Anticommutes reports whether s and t anticommute.
func (s String) Anticommutes(t String) bool { return !s.Commutes(t) }

// EqualUpToPhase reports whether s and t have the same letters on every
// qubit, ignoring the global phase.
func (s String) EqualUpToPhase(t String) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.x {
		if s.x[i] != t.x[i] || s.z[i] != t.z[i] {
			return false
		}
	}
	return true
}

// Equal reports whether s and t are identical operators including phase.
func (s String) Equal(t String) bool {
	return s.EqualUpToPhase(t) && s.phase == t.phase
}

// Key returns a compact map key identifying the letters of the string
// (phase excluded). Strings on different qubit counts have distinct keys.
func (s String) Key() string {
	var b strings.Builder
	b.Grow(len(s.x)*16 + 4)
	b.WriteByte(byte(s.n))
	b.WriteByte(byte(s.n >> 8))
	for i := range s.x {
		for k := 0; k < 8; k++ {
			b.WriteByte(byte(s.x[i] >> (8 * k)))
		}
		for k := 0; k < 8; k++ {
			b.WriteByte(byte(s.z[i] >> (8 * k)))
		}
	}
	return b.String()
}

// String renders the string in N-length form, qubit N-1 first (leftmost),
// matching the paper's convention, with a phase prefix when nontrivial.
// The prefix reflects LetterPhase so that prefix·letters equals the value.
func (s String) String() string {
	var b strings.Builder
	switch s.LetterPhase() {
	case 1:
		b.WriteString("i·")
	case 2:
		b.WriteString("-")
	case 3:
		b.WriteString("-i·")
	}
	for q := s.n - 1; q >= 0; q-- {
		b.WriteString(s.Letter(q).String())
	}
	return b.String()
}

// Compact renders the string in compact form (identities omitted, each
// letter subscripted with its qubit), e.g. "X3Y2Z0". The identity renders
// as "I".
func (s String) Compact() string {
	var b strings.Builder
	switch s.LetterPhase() {
	case 1:
		b.WriteString("i·")
	case 2:
		b.WriteString("-")
	case 3:
		b.WriteString("-i·")
	}
	any := false
	for q := s.n - 1; q >= 0; q-- {
		if l := s.Letter(q); l != I {
			fmt.Fprintf(&b, "%s%d", l, q)
			any = true
		}
	}
	if !any {
		b.WriteString("I")
	}
	return b.String()
}

// Parse reads an N-length string such as "XYIZ" (qubit 0 rightmost).
// An optional prefix of "-", "i", or "-i" (optionally followed by "·" or
// "*") sets the phase.
func Parse(text string) (String, error) {
	rest := text
	var phase uint8
	switch {
	case strings.HasPrefix(rest, "-i"):
		phase, rest = 3, rest[2:]
	case strings.HasPrefix(rest, "i"):
		phase, rest = 1, rest[1:]
	case strings.HasPrefix(rest, "-"):
		phase, rest = 2, rest[1:]
	}
	rest = strings.TrimPrefix(rest, "·")
	rest = strings.TrimPrefix(rest, "*")
	n := len(rest)
	s := Identity(n)
	for i, c := range rest {
		q := n - 1 - i
		switch c {
		case 'I':
			// identity: nothing to set
		case 'X':
			s.SetLetter(q, X)
		case 'Y':
			s.SetLetter(q, Y)
		case 'Z':
			s.SetLetter(q, Z)
		default:
			return String{}, fmt.Errorf("pauli: invalid letter %q in %q", c, text)
		}
	}
	s.phase = (s.phase + phase) & 3
	return s, nil
}

// MustParse is Parse that panics on error; intended for tests and literals.
func MustParse(text string) String {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// FromLetters builds a string from a slice indexed by qubit
// (letters[0] acts on qubit 0).
func FromLetters(letters []Letter) String {
	s := Identity(len(letters))
	for q, l := range letters {
		if l != I {
			s.SetLetter(q, l)
		}
	}
	return s
}

// Extend returns a copy of s widened to n qubits (new qubits get identity).
// Panics if n is smaller than s.N().
func (s String) Extend(n int) String {
	if n < s.n {
		panic("pauli: Extend cannot shrink a string")
	}
	r := Identity(n)
	copy(r.x, s.x)
	copy(r.z, s.z)
	r.phase = s.phase
	return r
}

// ActsOnZeroAs reports how the letter on qubit q transforms |0⟩:
// both I and Z fix |0⟩ (eigenvalue +1 or −1 has no effect on which basis
// state results), X and Y flip it. Used by vacuum-preservation checks.
func (s String) ActsOnZeroAs(q int) byte {
	switch s.Letter(q) {
	case I, Z:
		return 0 // diagonal on |0⟩
	default:
		return 1 // flips |0⟩
	}
}
