package pauli

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 65, 130} {
		s := Identity(n)
		if s.N() != n {
			t.Errorf("Identity(%d).N() = %d", n, s.N())
		}
		if !s.IsIdentity() {
			t.Errorf("Identity(%d) not identity", n)
		}
		if s.Weight() != 0 {
			t.Errorf("Identity(%d) weight %d", n, s.Weight())
		}
		if s.PhaseCoeff() != 1 {
			t.Errorf("Identity(%d) phase %v", n, s.PhaseCoeff())
		}
	}
}

func TestSetAndGetLetter(t *testing.T) {
	for _, l := range []Letter{I, X, Y, Z} {
		s := Identity(70)
		for _, q := range []int{0, 1, 63, 64, 69} {
			s.SetLetter(q, l)
			if got := s.Letter(q); got != l {
				t.Errorf("SetLetter(%d,%v) readback %v", q, l, got)
			}
		}
	}
}

func TestSetLetterOverwriteYPhase(t *testing.T) {
	s := Identity(3)
	s.SetLetter(1, Y)
	if s.Phase() != 1 {
		t.Fatalf("Y phase = %d, want 1", s.Phase())
	}
	s.SetLetter(1, X)
	if s.Phase() != 0 {
		t.Fatalf("after overwrite phase = %d, want 0", s.Phase())
	}
	if s.Letter(1) != X {
		t.Fatalf("letter = %v, want X", s.Letter(1))
	}
	// Overwriting Y with Y keeps a single Y phase.
	s.SetLetter(1, Y)
	s.SetLetter(1, Y)
	if s.Phase() != 1 {
		t.Fatalf("double-Y phase = %d, want 1", s.Phase())
	}
}

func TestParseAndString(t *testing.T) {
	cases := []string{"XYIZ", "IIII", "ZZZZ", "X", "YX", "-XY", "i·XZ", "-i·YY"}
	for _, c := range cases {
		s := MustParse(c)
		if got := s.String(); got != normalize(c) {
			t.Errorf("Parse(%q).String() = %q, want %q", c, got, normalize(c))
		}
	}
	if _, err := Parse("XQ"); err == nil {
		t.Error("Parse accepted invalid letter")
	}
}

// normalize canonicalizes the expected rendering of a parse input.
func normalize(c string) string {
	switch {
	case len(c) > 2 && c[:3] == "-i·":
		return c
	case len(c) > 1 && c[:2] == "i·":
		return c
	}
	return c
}

func TestParseQubitOrder(t *testing.T) {
	s := MustParse("XYIZ") // X on q3, Y on q2, I on q1, Z on q0
	want := map[int]Letter{3: X, 2: Y, 1: I, 0: Z}
	for q, l := range want {
		if got := s.Letter(q); got != l {
			t.Errorf("letter(q%d) = %v, want %v", q, got, l)
		}
	}
	if s.Compact() != "X3Y2Z0" {
		t.Errorf("Compact = %q, want X3Y2Z0", s.Compact())
	}
}

// mulTable is the full single-qubit multiplication table with phases.
func mulTable() map[[2]Letter]struct {
	l     Letter
	phase complex128
} {
	type res = struct {
		l     Letter
		phase complex128
	}
	i := complex(0, 1)
	return map[[2]Letter]res{
		{I, I}: {I, 1}, {I, X}: {X, 1}, {I, Y}: {Y, 1}, {I, Z}: {Z, 1},
		{X, I}: {X, 1}, {X, X}: {I, 1}, {X, Y}: {Z, i}, {X, Z}: {Y, -i},
		{Y, I}: {Y, 1}, {Y, X}: {Z, -i}, {Y, Y}: {I, 1}, {Y, Z}: {X, i},
		{Z, I}: {Z, 1}, {Z, X}: {Y, i}, {Z, Y}: {X, -i}, {Z, Z}: {I, 1},
	}
}

func TestMulSingleQubitTable(t *testing.T) {
	for pair, want := range mulTable() {
		a := single(1, 0, pair[0])
		b := single(1, 0, pair[1])
		p := a.Mul(b)
		if p.Letter(0) != want.l {
			t.Errorf("%v·%v letter = %v, want %v", pair[0], pair[1], p.Letter(0), want.l)
		}
		// The stored phase must equal want.phase once the Y storage
		// convention is accounted for: compare full complex prefactors of
		// the letter form.
		gotCoeff := p.PhaseCoeff()
		if p.Letter(0) == Y {
			gotCoeff *= complex(0, -1) // stored (1,1) = -i·Y ⇒ letter-Y coeff
		}
		if cmplx.Abs(gotCoeff-want.phase) > 1e-12 {
			t.Errorf("%v·%v phase = %v, want %v", pair[0], pair[1], gotCoeff, want.phase)
		}
	}
}

func TestMulMultiQubit(t *testing.T) {
	// Paper motivation example: (X0X1)·(Y0Z2) = ... should have letters
	// Z0 X1 Z2 (up to phase).
	a := New(3, []int{0, 1}, []Letter{X, X})
	b := New(3, []int{0, 2}, []Letter{Y, Z})
	p := a.Mul(b)
	if p.Letter(0) != Z || p.Letter(1) != X || p.Letter(2) != Z {
		t.Errorf("product letters = %s, want Z2X1Z0 pattern", p)
	}
	// (X0Y1X2)·(X0Y1Z2): X² = I, Y² = I, X·Z = -iY ⇒ letters Y2 only.
	c := New(3, []int{0, 1, 2}, []Letter{X, Y, X})
	d := New(3, []int{0, 1, 2}, []Letter{X, Y, Z})
	p2 := c.Mul(d)
	if p2.Letter(0) != I || p2.Letter(1) != I || p2.Letter(2) != Y {
		t.Errorf("product = %s, want Y2", p2.Compact())
	}
}

func TestXYZProductIsPhaseTimesIdentity(t *testing.T) {
	x := single(1, 0, X)
	y := single(1, 0, Y)
	z := single(1, 0, Z)
	p := x.Mul(y).Mul(z)
	if !p.IsIdentity() {
		t.Fatalf("XYZ not identity: %s", p)
	}
	if p.PhaseCoeff() != complex(0, 1) {
		t.Fatalf("XYZ phase = %v, want i", p.PhaseCoeff())
	}
}

func TestSquareIsIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		s := randomString(r, 1+r.Intn(80))
		sq := s.Mul(s)
		if !sq.IsIdentity() {
			t.Fatalf("s² not identity for %s", s)
		}
		// Hermitian strings square to exactly +I: i^phase·P squares to
		// (-1)^phase·P² — for strings built from letters (phase balanced by
		// Y count) the square is +1.
		if sq.PhaseCoeff() != 1 {
			t.Fatalf("s² phase = %v for %s", sq.PhaseCoeff(), s)
		}
	}
}

func randomString(r *rand.Rand, n int) String {
	s := Identity(n)
	for q := 0; q < n; q++ {
		s.SetLetter(q, Letter(r.Intn(4)))
	}
	return s
}

func TestCommutesMatchesDefinition(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(20)
		a := randomString(r, n)
		b := randomString(r, n)
		ab := a.Mul(b)
		ba := b.Mul(a)
		if !ab.EqualUpToPhase(ba) {
			t.Fatal("ab and ba differ beyond phase")
		}
		commute := ab.Phase() == ba.Phase()
		if got := a.Commutes(b); got != commute {
			t.Fatalf("Commutes(%s,%s) = %v, product phases %d,%d", a, b, got, ab.Phase(), ba.Phase())
		}
		if a.Anticommutes(b) == commute {
			t.Fatal("Anticommutes inconsistent with Commutes")
		}
	}
}

func TestWeightAndSupport(t *testing.T) {
	s := MustParse("XIIYZ")
	if s.Weight() != 3 {
		t.Errorf("weight = %d, want 3", s.Weight())
	}
	sup := s.Support()
	want := []int{0, 1, 4}
	if len(sup) != len(want) {
		t.Fatalf("support = %v", sup)
	}
	for i := range want {
		if sup[i] != want[i] {
			t.Fatalf("support = %v, want %v", sup, want)
		}
	}
}

func TestExtend(t *testing.T) {
	s := MustParse("XY")
	e := s.Extend(5)
	if e.N() != 5 || e.Letter(0) != Y || e.Letter(1) != X || e.Letter(4) != I {
		t.Errorf("Extend wrong: %s", e)
	}
	if e.Phase() != s.Phase() {
		t.Errorf("Extend dropped phase")
	}
}

func TestKeyDistinguishesStrings(t *testing.T) {
	a := MustParse("XZ")
	b := MustParse("ZX")
	c := MustParse("XZ")
	if a.Key() == b.Key() {
		t.Error("distinct strings share a key")
	}
	if a.Key() != c.Key() {
		t.Error("equal strings have distinct keys")
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a, b, c := randomString(r, n), randomString(r, n), randomString(r, n)
		left := a.Mul(b).Mul(c)
		right := a.Mul(b.Mul(c))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulPhaseConsistencyProperty(t *testing.T) {
	// i^phase bookkeeping: (i·a)·b = i·(a·b).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a, b := randomString(r, n), randomString(r, n)
		ai := a.Clone()
		ai.phase = (ai.phase + 1) & 3
		p1 := ai.Mul(b)
		p2 := a.Mul(b)
		return p1.EqualUpToPhase(p2) && p1.Phase() == (p2.Phase()+1)&3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestActsOnZeroAs(t *testing.T) {
	s := MustParse("XYZI")
	if s.ActsOnZeroAs(0) != 0 { // I
		t.Error("I should be diagonal on |0⟩")
	}
	if s.ActsOnZeroAs(1) != 0 { // Z
		t.Error("Z should be diagonal on |0⟩")
	}
	if s.ActsOnZeroAs(2) != 1 { // Y
		t.Error("Y should flip |0⟩")
	}
	if s.ActsOnZeroAs(3) != 1 { // X
		t.Error("X should flip |0⟩")
	}
}

func BenchmarkMul64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	s1 := randomString(r, 64)
	s2 := randomString(r, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s1.Mul(s2)
	}
}

func BenchmarkWeight256(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	s := randomString(r, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Weight()
	}
}
