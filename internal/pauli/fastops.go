package pauli

import (
	"fmt"
	"math/bits"
)

// This file holds the allocation-free counterparts of the String algebra:
// in-place and destination-buffer products, support iteration into a
// caller-owned slice, word-level mask accessors for simulators, and a
// 128-bit letter fingerprint that replaces the string-building Key() on
// hot map paths. The original allocating API remains and delegates here
// where possible.

// Reset clears s to the identity (phase 0) on its qubit count, keeping
// its buffers. Useful as an accumulator between MulAssign chains.
func (s *String) Reset() {
	for i := range s.x {
		s.x[i] = 0
		s.z[i] = 0
	}
	s.phase = 0
}

// MulAssign sets s ← s·t in place with exact phase tracking, allocating
// nothing. Panics if the qubit counts differ.
//
//hatt:noalloc
func (s *String) MulAssign(t String) {
	if s.n != t.n {
		panic(fmt.Sprintf("pauli: size mismatch %d vs %d", s.n, t.n))
	}
	anti := 0
	for i := range s.x {
		anti += bits.OnesCount64(s.z[i] & t.x[i])
		s.x[i] ^= t.x[i]
		s.z[i] ^= t.z[i]
	}
	s.phase = (s.phase + t.phase + uint8(anti&1)*2) & 3
}

// MulInto writes the product s·t into dst, reusing dst's buffers when they
// are large enough (so a warm dst makes the call allocation-free). dst may
// alias s or t. Panics if the qubit counts of s and t differ.
//
//hatt:noalloc
func (s String) MulInto(dst *String, t String) {
	if s.n != t.n {
		panic(fmt.Sprintf("pauli: size mismatch %d vs %d", s.n, t.n))
	}
	w := len(s.x)
	if cap(dst.x) < w {
		dst.x = make([]uint64, w) //hatt:lint-ignore noalloc cold path: warms dst once, then the branch never retriggers
	} else {
		dst.x = dst.x[:w]
	}
	if cap(dst.z) < w {
		dst.z = make([]uint64, w) //hatt:lint-ignore noalloc cold path: warms dst once, then the branch never retriggers
	} else {
		dst.z = dst.z[:w]
	}
	anti := 0
	for i := 0; i < w; i++ {
		anti += bits.OnesCount64(s.z[i] & t.x[i])
		dst.x[i] = s.x[i] ^ t.x[i]
		dst.z[i] = s.z[i] ^ t.z[i]
	}
	dst.n = s.n
	dst.phase = (s.phase + t.phase + uint8(anti&1)*2) & 3
}

// XorAssign xors t's symplectic bits into s letter-wise, with no phase
// bookkeeping: the result has the letters of s·t but keeps s's phase.
// This is the parity update used by subtree/term-membership bookkeeping
// where only the letter pattern matters; use MulAssign when the phase is
// significant.
//
//hatt:noalloc
func (s *String) XorAssign(t String) {
	if s.n != t.n {
		panic(fmt.Sprintf("pauli: size mismatch %d vs %d", s.n, t.n))
	}
	for i := range s.x {
		s.x[i] ^= t.x[i]
		s.z[i] ^= t.z[i]
	}
}

// SupportAppend appends the sorted qubits with non-identity letters to dst
// and returns the extended slice; with a pre-sized dst the call does not
// allocate.
func (s String) SupportAppend(dst []int) []int {
	for w := range s.x {
		m := s.x[w] | s.z[w]
		for m != 0 {
			b := bits.TrailingZeros64(m)
			dst = append(dst, w*64+b)
			m &= m - 1
		}
	}
	return dst
}

// Masks64 returns the symplectic bit masks of a string on at most 64
// qubits: bit q of x is set where the letter is X or Y, bit q of z where
// it is Z or Y. Together with Phase() this determines the full action on
// basis states: value·|b⟩ = i^Phase · (−1)^{popcount(z&b)} · |b ⊕ x⟩.
// Panics for wider strings.
func (s String) Masks64() (x, z uint64) {
	if s.n > 64 {
		panic(fmt.Sprintf("pauli: Masks64 on %d qubits (max 64)", s.n))
	}
	if len(s.x) == 0 {
		return 0, 0
	}
	return s.x[0], s.z[0]
}

// SupportMask64 returns the support as a bit mask (bit q set where the
// letter is non-identity) for strings on at most 64 qubits.
func (s String) SupportMask64() uint64 {
	x, z := s.Masks64()
	return x | z
}

// Fingerprint is a compact, comparable identifier of a string's letters
// (phase excluded), usable as a map key with no per-call allocation.
// For strings on at most 64 qubits it is the exact symplectic pair (x, z),
// so it is collision-free among strings of equal qubit count; wider
// strings get a mixed 128-bit hash, and exact-match callers (such as
// Hamiltonian) verify letters on lookup so a collision can never corrupt
// a result. Strings on different qubit counts may share a fingerprint;
// use Key() when cross-count uniqueness matters.
type Fingerprint struct{ Hi, Lo uint64 }

// fpMix is a murmur3-style 64-bit finalizer used to fold wide bitsets
// into the two fingerprint lanes.
func fpMix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Fingerprint returns the letter fingerprint of s.
func (s String) Fingerprint() Fingerprint {
	if len(s.x) == 1 {
		return Fingerprint{Hi: s.x[0], Lo: s.z[0]}
	}
	hi := uint64(0x9e3779b97f4a7c15)
	lo := uint64(0xc2b2ae3d27d4eb4f)
	for i := range s.x {
		hi = fpMix(hi ^ s.x[i])
		lo = fpMix(lo ^ s.z[i])
		// Cross-feed the lanes so (x, z) and (z, x) fingerprints differ.
		hi, lo = hi+lo, lo^(hi>>17)
	}
	return Fingerprint{Hi: hi, Lo: lo}
}

// CompareSymplectic is a total order on the letters of equal-length
// strings (phase ignored): it compares the symplectic words from the
// highest qubit down, X bits before Z bits, returning -1, 0, or +1.
// Strings on fewer qubits order first. It is the allocation-free
// replacement for comparing Key() strings.
func (s String) CompareSymplectic(t String) int {
	if s.n != t.n {
		if s.n < t.n {
			return -1
		}
		return 1
	}
	for i := len(s.x) - 1; i >= 0; i-- {
		if s.x[i] != t.x[i] {
			if s.x[i] < t.x[i] {
				return -1
			}
			return 1
		}
		if s.z[i] != t.z[i] {
			if s.z[i] < t.z[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
