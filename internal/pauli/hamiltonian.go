package pauli

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"strings"
)

// Term is one weighted Pauli string of a qubit Hamiltonian. The phase of S
// is always folded into Coeff, so S.Phase() is 0 for terms stored in a
// Hamiltonian.
type Term struct {
	Coeff complex128
	S     String
}

// Hamiltonian is a weighted sum of Pauli strings on a fixed qubit count.
// Terms with coincident letters are merged. The zero value is unusable;
// construct with NewHamiltonian.
type Hamiltonian struct {
	n     int
	terms map[string]Term
}

// NewHamiltonian returns an empty Hamiltonian on n qubits.
func NewHamiltonian(n int) *Hamiltonian {
	return &Hamiltonian{n: n, terms: make(map[string]Term)}
}

// N returns the number of qubits.
func (h *Hamiltonian) N() int { return h.n }

// Add accumulates c·s into the Hamiltonian. The stored term is the
// letter-form string (LetterPhase 0); any excess phase of s is folded into
// the coefficient so that Σ Coeff·letters reproduces c·s exactly.
func (h *Hamiltonian) Add(c complex128, s String) {
	if s.N() != h.n {
		panic(fmt.Sprintf("pauli: term on %d qubits added to %d-qubit Hamiltonian", s.N(), h.n))
	}
	c *= s.LetterCoeff()
	canon := s.Clone()
	canon.phase = uint8(canon.yCount() & 3) // LetterPhase 0
	k := canon.Key()
	t, ok := h.terms[k]
	if !ok {
		h.terms[k] = Term{Coeff: c, S: canon}
		return
	}
	t.Coeff += c
	h.terms[k] = t
}

// AddHamiltonian accumulates c·g into h.
func (h *Hamiltonian) AddHamiltonian(c complex128, g *Hamiltonian) {
	for _, t := range g.terms {
		h.Add(c*t.Coeff, t.S)
	}
}

// Prune removes terms whose coefficient magnitude is at most eps.
func (h *Hamiltonian) Prune(eps float64) {
	for k, t := range h.terms {
		if cmplx.Abs(t.Coeff) <= eps {
			delete(h.terms, k)
		}
	}
}

// Len returns the number of stored terms (including a possible identity
// term).
func (h *Hamiltonian) Len() int { return len(h.terms) }

// Terms returns the terms sorted by descending |coeff| then by string form,
// giving deterministic iteration order.
func (h *Hamiltonian) Terms() []Term {
	ts := make([]Term, 0, len(h.terms))
	for _, t := range h.terms {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool {
		ai, aj := cmplx.Abs(ts[i].Coeff), cmplx.Abs(ts[j].Coeff)
		if math.Abs(ai-aj) > 1e-15 {
			return ai > aj
		}
		return ts[i].S.Key() < ts[j].S.Key()
	})
	return ts
}

// Weight returns the total Pauli weight: the sum of weights of all terms
// with non-negligible coefficients. Identity terms contribute zero, matching
// the paper's metric.
func (h *Hamiltonian) Weight() int {
	w := 0
	for _, t := range h.terms {
		if cmplx.Abs(t.Coeff) > 1e-12 {
			w += t.S.Weight()
		}
	}
	return w
}

// NonIdentityTerms returns the number of terms with nonzero weight and
// non-negligible coefficient.
func (h *Hamiltonian) NonIdentityTerms() int {
	c := 0
	for _, t := range h.terms {
		if cmplx.Abs(t.Coeff) > 1e-12 && !t.S.IsIdentity() {
			c++
		}
	}
	return c
}

// Coeff returns the coefficient of the letter form of s in h, scaled by any
// excess phase of s, so that h.Coeff(s)·s is the stored contribution. For a
// plain letter-form query this is simply the stored coefficient.
func (h *Hamiltonian) Coeff(s String) complex128 {
	t, ok := h.terms[s.Key()]
	if !ok {
		return 0
	}
	// The stored term is c·(letters). The query contributes relative to its
	// own letter form: coefficient of s in h is c / i^LetterPhase(s).
	return t.Coeff * phaseCoeff((4-s.LetterPhase())&3)
}

// IsHermitian reports whether every coefficient is real to within eps
// (a Pauli-string sum is Hermitian iff all coefficients are real).
func (h *Hamiltonian) IsHermitian(eps float64) bool {
	for _, t := range h.terms {
		if math.Abs(imag(t.Coeff)) > eps {
			return false
		}
	}
	return true
}

// Mul returns the operator product h·g expanded into Pauli terms.
func (h *Hamiltonian) Mul(g *Hamiltonian) *Hamiltonian {
	if h.n != g.n {
		panic("pauli: Hamiltonian size mismatch")
	}
	r := NewHamiltonian(h.n)
	for _, a := range h.terms {
		for _, b := range g.terms {
			r.Add(a.Coeff*b.Coeff, a.S.Mul(b.S))
		}
	}
	r.Prune(1e-14)
	return r
}

// Trace returns tr(h) / 2^n, i.e. the identity component of h.
func (h *Hamiltonian) Trace() complex128 {
	return h.Coeff(Identity(h.n))
}

// ExpectationOnBasis returns ⟨b|h|b⟩ for a computational-basis state given
// as bit i of b = occupation of qubit i. Only diagonal (I/Z-only) terms
// contribute.
func (h *Hamiltonian) ExpectationOnBasis(b uint64) complex128 {
	var e complex128
	for _, t := range h.terms {
		sign := complex128(1)
		diag := true
		for _, q := range t.S.Support() {
			switch t.S.Letter(q) {
			case Z:
				if b>>uint(q)&1 == 1 {
					sign = -sign
				}
			default:
				diag = false
			}
			if !diag {
				break
			}
		}
		if diag {
			e += t.Coeff * sign
		}
	}
	return e
}

// String renders the Hamiltonian as a sum of compact terms in deterministic
// order, e.g. "(0.5+0i)·Z1Z0 + …".
func (h *Hamiltonian) String() string {
	ts := h.Terms()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("(%.6g%+.6gi)·%s", real(t.Coeff), imag(t.Coeff), t.S.Compact())
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}
