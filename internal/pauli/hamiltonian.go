package pauli

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sort"
	"strings"
	"sync"
)

// Term is one weighted Pauli string of a qubit Hamiltonian. The phase of S
// is always folded into Coeff, so S.Phase() is 0 for terms stored in a
// Hamiltonian.
type Term struct {
	Coeff complex128
	S     String
}

// Hamiltonian is a weighted sum of Pauli strings on a fixed qubit count.
// Terms with coincident letters are merged. The zero value is unusable;
// construct with NewHamiltonian.
//
// Terms are keyed by the 128-bit letter Fingerprint, which is exact for
// n ≤ 64 and verified on every lookup beyond that: a hash collision
// between distinct letter patterns spills the newcomer into an overflow
// map keyed by the exact Key() string, so results are always correct and
// the hot path (warm Add, Coeff) never builds a key string.
//
// Mutation (Add, Prune, …) is not safe for concurrent use; read-side
// methods, including the lazily cached Terms(), are.
type Hamiltonian struct {
	n     int
	terms map[Fingerprint]Term
	// extra holds true 128-bit collisions (same fingerprint, different
	// letters); nil until one occurs, which for n ≤ 64 is never.
	extra map[string]Term

	// sorted caches the Terms() slice until the next mutation; mu guards
	// its lazy fill so concurrent readers are safe.
	mu     sync.Mutex
	sorted []Term
}

// NewHamiltonian returns an empty Hamiltonian on n qubits.
func NewHamiltonian(n int) *Hamiltonian {
	return &Hamiltonian{n: n, terms: make(map[Fingerprint]Term)}
}

// N returns the number of qubits.
func (h *Hamiltonian) N() int { return h.n }

// invalidate drops the cached sorted slice after a mutation.
func (h *Hamiltonian) invalidate() {
	if h.sorted != nil {
		h.mu.Lock()
		h.sorted = nil
		h.mu.Unlock()
	}
}

// Add accumulates c·s into the Hamiltonian. The stored term is the
// letter-form string (LetterPhase 0); any excess phase of s is folded into
// the coefficient so that Σ Coeff·letters reproduces c·s exactly. Adding
// to an existing term allocates nothing.
//
//hatt:noalloc
func (h *Hamiltonian) Add(c complex128, s String) {
	if s.N() != h.n {
		panic(fmt.Sprintf("pauli: term on %d qubits added to %d-qubit Hamiltonian", s.N(), h.n))
	}
	h.invalidate()
	c *= s.LetterCoeff()
	fp := s.Fingerprint()
	if t, ok := h.terms[fp]; ok {
		if t.S.EqualUpToPhase(s) {
			t.Coeff += c
			h.terms[fp] = t
			return
		}
		// Fingerprint collision with different letters: exact-keyed spill.
		if h.extra == nil {
			h.extra = make(map[string]Term) //hatt:lint-ignore noalloc collision spill map allocated once, off the warm path
		}
		k := s.Key()
		if t, ok := h.extra[k]; ok {
			t.Coeff += c
			h.extra[k] = t
			return
		}
		h.extra[k] = Term{Coeff: c, S: canonical(s)}
		return
	}
	// A primary-slot miss may still be a spilled term whose colliding
	// primary was pruned away; the overflow map stays authoritative for
	// its keys so the term is never stored twice.
	if h.extra != nil {
		k := s.Key()
		if t, ok := h.extra[k]; ok {
			t.Coeff += c
			h.extra[k] = t
			return
		}
	}
	h.terms[fp] = Term{Coeff: c, S: canonical(s)}
}

// canonical deep-copies s with its phase normalized to LetterPhase 0.
func canonical(s String) String {
	c := s.Clone()
	c.phase = uint8(c.yCount() & 3)
	return c
}

// AddHamiltonian accumulates c·g into h.
func (h *Hamiltonian) AddHamiltonian(c complex128, g *Hamiltonian) {
	for _, t := range g.terms {
		h.Add(c*t.Coeff, t.S)
	}
	for _, t := range g.extra {
		h.Add(c*t.Coeff, t.S)
	}
}

// Prune removes terms whose coefficient magnitude is at most eps.
func (h *Hamiltonian) Prune(eps float64) {
	h.invalidate()
	for k, t := range h.terms {
		if cmplx.Abs(t.Coeff) <= eps {
			delete(h.terms, k)
		}
	}
	for k, t := range h.extra {
		if cmplx.Abs(t.Coeff) <= eps {
			delete(h.extra, k)
		}
	}
}

// Len returns the number of stored terms (including a possible identity
// term).
func (h *Hamiltonian) Len() int { return len(h.terms) + len(h.extra) }

// Terms returns the terms sorted by descending |coeff| then by symplectic
// letter order, giving deterministic iteration order. The slice is cached
// until the next mutation and shared between callers: treat it as
// read-only.
func (h *Hamiltonian) Terms() []Term {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.sorted == nil {
		ts := make([]Term, 0, len(h.terms)+len(h.extra))
		for _, t := range h.terms {
			ts = append(ts, t)
		}
		for _, t := range h.extra {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool {
			ai, aj := cmplx.Abs(ts[i].Coeff), cmplx.Abs(ts[j].Coeff)
			if math.Abs(ai-aj) > 1e-15 {
				return ai > aj
			}
			return ts[i].S.CompareSymplectic(ts[j].S) < 0
		})
		h.sorted = ts
	}
	return h.sorted
}

// Weight returns the total Pauli weight: the sum of weights of all terms
// with non-negligible coefficients. Identity terms contribute zero, matching
// the paper's metric.
func (h *Hamiltonian) Weight() int {
	w := 0
	for _, t := range h.terms {
		if cmplx.Abs(t.Coeff) > 1e-12 {
			w += t.S.Weight()
		}
	}
	for _, t := range h.extra {
		if cmplx.Abs(t.Coeff) > 1e-12 {
			w += t.S.Weight()
		}
	}
	return w
}

// NonIdentityTerms returns the number of terms with nonzero weight and
// non-negligible coefficient.
func (h *Hamiltonian) NonIdentityTerms() int {
	c := 0
	for _, t := range h.terms {
		if cmplx.Abs(t.Coeff) > 1e-12 && !t.S.IsIdentity() {
			c++
		}
	}
	for _, t := range h.extra {
		if cmplx.Abs(t.Coeff) > 1e-12 && !t.S.IsIdentity() {
			c++
		}
	}
	return c
}

// Coeff returns the coefficient of the letter form of s in h, scaled by any
// excess phase of s, so that h.Coeff(s)·s is the stored contribution. For a
// plain letter-form query this is simply the stored coefficient. The
// lookup allocates nothing.
//
//hatt:noalloc
func (h *Hamiltonian) Coeff(s String) complex128 {
	t, ok := h.terms[s.Fingerprint()]
	if ok && !t.S.EqualUpToPhase(s) {
		ok = false
	}
	if !ok && h.extra != nil {
		// Spilled collision entries stay valid even after their primary
		// counterpart is pruned, so consult the overflow on any miss.
		t, ok = h.extra[s.Key()]
	}
	if !ok {
		return 0
	}
	// The stored term is c·(letters). The query contributes relative to its
	// own letter form: coefficient of s in h is c / i^LetterPhase(s).
	return t.Coeff * phaseCoeff((4-s.LetterPhase())&3)
}

// IsHermitian reports whether every coefficient is real to within eps
// (a Pauli-string sum is Hermitian iff all coefficients are real).
func (h *Hamiltonian) IsHermitian(eps float64) bool {
	for _, t := range h.terms {
		if math.Abs(imag(t.Coeff)) > eps {
			return false
		}
	}
	for _, t := range h.extra {
		if math.Abs(imag(t.Coeff)) > eps {
			return false
		}
	}
	return true
}

// Mul returns the operator product h·g expanded into Pauli terms.
func (h *Hamiltonian) Mul(g *Hamiltonian) *Hamiltonian {
	if h.n != g.n {
		panic("pauli: Hamiltonian size mismatch")
	}
	r := NewHamiltonian(h.n)
	scratch := Identity(h.n)
	for _, a := range h.Terms() {
		for _, b := range g.Terms() {
			a.S.MulInto(&scratch, b.S)
			r.Add(a.Coeff*b.Coeff, scratch)
		}
	}
	r.Prune(1e-14)
	return r
}

// Trace returns tr(h) / 2^n, i.e. the identity component of h.
func (h *Hamiltonian) Trace() complex128 {
	return h.Coeff(Identity(h.n))
}

// ExpectationOnBasis returns ⟨b|h|b⟩ for a computational-basis state given
// as bit i of b = occupation of qubit i. Only diagonal (I/Z-only) terms
// contribute: those with no X bits anywhere, whose sign is the parity of
// the occupied Z positions (positions ≥ 64 read b as unoccupied, matching
// the uint64 argument).
func (h *Hamiltonian) ExpectationOnBasis(b uint64) complex128 {
	var e complex128
	h.forEachUnsorted(func(t Term) {
		diag := true
		for _, w := range t.S.x {
			if w != 0 {
				diag = false
				break
			}
		}
		if !diag {
			return
		}
		if len(t.S.z) > 0 && bits.OnesCount64(t.S.z[0]&b)&1 == 1 {
			e -= t.Coeff
		} else {
			e += t.Coeff
		}
	})
	return e
}

// forEachUnsorted visits every term in unspecified order without building
// the sorted cache.
func (h *Hamiltonian) forEachUnsorted(f func(Term)) {
	for _, t := range h.terms {
		f(t)
	}
	for _, t := range h.extra {
		f(t)
	}
}

// String renders the Hamiltonian as a sum of compact terms in deterministic
// order, e.g. "(0.5+0i)·Z1Z0 + …".
func (h *Hamiltonian) String() string {
	ts := h.Terms()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("(%.6g%+.6gi)·%s", real(t.Coeff), imag(t.Coeff), t.S.Compact())
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}
