package pauli

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Tests targeting the multi-word (>64 qubit) bitset paths.

func TestWideStringsBasics(t *testing.T) {
	for _, n := range []int{63, 64, 65, 127, 128, 129, 200} {
		s := Identity(n)
		s.SetLetter(0, X)
		s.SetLetter(n-1, Y)
		wantW := 2
		if n > 65 { // qubit 64 distinct from both ends
			s.SetLetter(64, Z)
			wantW = 3
		}
		if s.Weight() != wantW {
			t.Errorf("n=%d: weight %d, want %d", n, s.Weight(), wantW)
		}
		if s.Letter(n-1) != Y || s.Letter(0) != X {
			t.Errorf("n=%d: boundary letters wrong", n)
		}
		sq := s.Mul(s)
		if !sq.IsIdentity() || sq.PhaseCoeff() != 1 {
			t.Errorf("n=%d: square not +I", n)
		}
	}
}

func TestWideMulCrossesWordBoundary(t *testing.T) {
	n := 130
	a := Identity(n)
	b := Identity(n)
	for q := 60; q < 70; q++ {
		a.SetLetter(q, X)
		b.SetLetter(q, Z)
	}
	p := a.Mul(b)
	for q := 60; q < 70; q++ {
		if p.Letter(q) != Y {
			t.Fatalf("product letter at %d = %v, want Y", q, p.Letter(q))
		}
	}
	// X·Z = −iY per qubit: 10 qubits ⇒ phase (−i)^10 = −1... verify via
	// LetterCoeff: a.Mul(b) should equal (−i)^10 × (letters).
	if c := p.LetterCoeff(); c != -1 {
		t.Fatalf("phase = %v, want -1", c)
	}
}

func TestWideCommutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 65 + r.Intn(120)
		a := randomString(r, n)
		b := randomString(r, n)
		// Commutes must be symmetric and consistent with product phases.
		if a.Commutes(b) != b.Commutes(a) {
			return false
		}
		ab, ba := a.Mul(b), b.Mul(a)
		return a.Commutes(b) == (ab.Phase() == ba.Phase())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSupportWeightConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(150)
		s := randomString(r, n)
		sup := s.Support()
		if len(sup) != s.Weight() {
			return false
		}
		for _, q := range sup {
			if s.Letter(q) == I {
				return false
			}
		}
		// Support is strictly increasing.
		for i := 1; i < len(sup); i++ {
			if sup[i] <= sup[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestParseStringRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		s := randomString(r, n)
		back := MustParse(s.String())
		return back.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHamiltonianWideQubits(t *testing.T) {
	h := NewHamiltonian(100)
	s := Identity(100)
	s.SetLetter(99, X)
	s.SetLetter(3, Z)
	h.Add(1.5, s)
	h.Add(1.5, s)
	if h.Len() != 1 {
		t.Fatal("wide strings did not merge")
	}
	if h.Weight() != 2 {
		t.Fatalf("weight = %d", h.Weight())
	}
}
