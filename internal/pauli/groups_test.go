package pauli

import (
	"math/rand"
	"testing"
)

func TestGroupQWCBasics(t *testing.T) {
	h := NewHamiltonian(3)
	h.Add(1, MustParse("ZZI"))
	h.Add(1, MustParse("IZZ")) // shares Z on q1 with the first: compatible
	h.Add(1, MustParse("XXI")) // conflicts on q1/q2
	h.Add(0.5, Identity(3))    // excluded
	groups := GroupQWC(h)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g.Terms)
	}
	if total != 3 {
		t.Fatalf("grouped %d terms, want 3", total)
	}
}

func TestGroupQWCMembersPairwiseCompatible(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	h := NewHamiltonian(5)
	for i := 0; i < 40; i++ {
		h.Add(complex(r.NormFloat64(), 0), randomString(r, 5))
	}
	for gi, g := range GroupQWC(h) {
		for i := 0; i < len(g.Terms); i++ {
			for j := i + 1; j < len(g.Terms); j++ {
				a, b := g.Terms[i].S, g.Terms[j].S
				for q := 0; q < 5; q++ {
					la, lb := a.Letter(q), b.Letter(q)
					if la != I && lb != I && la != lb {
						t.Fatalf("group %d: %s and %s clash on qubit %d", gi, a, b, q)
					}
				}
			}
		}
		// The basis must cover every member.
		for _, term := range g.Terms {
			for _, q := range term.S.Support() {
				if g.Basis[q] != term.S.Letter(q) {
					t.Fatalf("basis does not cover %s at qubit %d", term.S, q)
				}
			}
		}
	}
}

func TestGroupQWCSingleGroupForCommutingFamily(t *testing.T) {
	// All-Z diagonal Hamiltonians need exactly one measurement setting.
	h := NewHamiltonian(4)
	h.Add(1, MustParse("ZIII"))
	h.Add(1, MustParse("IZZI"))
	h.Add(1, MustParse("ZZZZ"))
	if g := GroupQWC(h); len(g) != 1 {
		t.Fatalf("diagonal family needs 1 group, got %d", len(g))
	}
}
