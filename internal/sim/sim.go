// Package sim is a dense state-vector quantum simulator with the
// depolarizing-noise and shot-sampling machinery used for the paper's noisy
// simulations (Fig. 10) and the IonQ-profile real-system stand-in
// (Fig. 11). It executes the {CNOT, U3} circuits produced by
// internal/circuit on up to ~20 qubits.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/mapping"
	"repro/internal/pauli"
)

// State is a normalized pure state on N qubits. Amplitude index b has qubit
// q occupied iff bit q of b is set.
type State struct {
	N   int
	Amp []complex128
}

// NewState returns |0…0⟩ on n qubits.
func NewState(n int) *State {
	if n < 0 || n > 28 {
		panic(fmt.Sprintf("sim: unsupported qubit count %d", n))
	}
	s := &State{N: n, Amp: make([]complex128, 1<<uint(n))}
	s.Amp[0] = 1
	return s
}

// BasisState returns |mask⟩.
func BasisState(n int, mask uint64) *State {
	s := NewState(n)
	s.Amp[0] = 0
	s.Amp[mask] = 1
	return s
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := &State{N: s.N, Amp: make([]complex128, len(s.Amp))}
	copy(c.Amp, s.Amp)
	return c
}

// Norm returns ⟨ψ|ψ⟩.
func (s *State) Norm() float64 {
	n := 0.0
	for _, a := range s.Amp {
		n += real(a)*real(a) + imag(a)*imag(a)
	}
	return n
}

// ApplyGate applies one gate in place.
func (s *State) ApplyGate(g circuit.Gate) {
	switch g.Kind {
	case circuit.KindSingle:
		stride := 1 << uint(g.Q)
		for base := 0; base < len(s.Amp); base += stride * 2 {
			for i := base; i < base+stride; i++ {
				a, b := s.Amp[i], s.Amp[i+stride]
				s.Amp[i] = g.M[0][0]*a + g.M[0][1]*b
				s.Amp[i+stride] = g.M[1][0]*a + g.M[1][1]*b
			}
		}
	case circuit.KindCNOT:
		cm := 1 << uint(g.Q2)
		tm := 1 << uint(g.Q)
		for i := range s.Amp {
			if i&cm != 0 && i&tm == 0 {
				s.Amp[i], s.Amp[i|tm] = s.Amp[i|tm], s.Amp[i]
			}
		}
	}
}

// ApplyCircuit applies all gates in order.
func (s *State) ApplyCircuit(c *circuit.Circuit) {
	if c.N != s.N {
		panic("sim: circuit/state size mismatch")
	}
	for _, g := range c.Gates {
		s.ApplyGate(g)
	}
}

// ApplyPauli applies a Pauli string (with its phase) in place, allocating
// nothing: the X-type mask pairs amplitudes i ↔ i⊕flip and the Z-type mask
// supplies each side's sign through one popcount parity.
//
//hatt:noalloc
func (s *State) ApplyPauli(p pauli.String) {
	if p.N() != s.N {
		panic("sim: pauli/state size mismatch")
	}
	m := masksFor(p)
	amp := s.Amp
	if m.flip == 0 {
		if m.zmask == 0 && m.coeff == 1 {
			return
		}
		for i := range amp {
			amp[i] *= m.amp(i)
		}
		return
	}
	pair := m.pairBit()
	for i := range amp {
		if uint64(i)&pair != 0 {
			continue
		}
		j := i ^ int(m.flip)
		a, b := amp[i], amp[j]
		amp[j] = m.amp(i) * a
		amp[i] = m.amp(j) * b
	}
}

// ApplyPauliSlow is the pre-mask reference implementation of ApplyPauli:
// per-letter dispatch per amplitude into a freshly allocated vector. It is
// retained for differential tests and before/after benchmarks and must not
// be used on hot paths.
func (s *State) ApplyPauliSlow(p pauli.String) {
	if p.N() != s.N {
		panic("sim: pauli/state size mismatch")
	}
	coeff := p.LetterCoeff()
	var flip int
	sup := p.Support()
	for _, q := range sup {
		if l := p.Letter(q); l == pauli.X || l == pauli.Y {
			flip |= 1 << uint(q)
		}
	}
	out := make([]complex128, len(s.Amp))
	for i, a := range s.Amp {
		amp := coeff * a
		for _, q := range sup {
			bit := i >> uint(q) & 1
			switch p.Letter(q) {
			case pauli.Z:
				if bit == 1 {
					amp = -amp
				}
			case pauli.Y:
				if bit == 0 {
					amp *= complex(0, 1)
				} else {
					amp *= complex(0, -1)
				}
			}
		}
		out[i^flip] = amp
	}
	s.Amp = out
}

// ExpectationString returns ⟨ψ|P|ψ⟩ in one streaming pass with no clone:
// ⟨ψ|P|ψ⟩ = Σ_j conj(ψ_j)·(Pψ)_j with (Pψ)_j read off the masks.
//
//hatt:noalloc
func (s *State) ExpectationString(p pauli.String) complex128 {
	if p.N() != s.N {
		panic("sim: pauli/state size mismatch")
	}
	m := masksFor(p)
	amp := s.Amp
	var e complex128
	for j := range amp {
		src := j ^ int(m.flip)
		e += cmplx.Conj(amp[j]) * m.amp(src) * amp[src]
	}
	return e
}

// Expectation returns ⟨ψ|H|ψ⟩ (real part; H should be Hermitian).
// Evaluating a T-term Hamiltonian on a 2^n state is T×O(2^n) bit-ops with
// zero heap allocations once the Hamiltonian's term cache is warm.
//
//hatt:noalloc
func (s *State) Expectation(h *pauli.Hamiltonian) float64 {
	if h.N() != s.N {
		panic("sim: hamiltonian/state size mismatch")
	}
	e := 0.0
	for _, t := range h.Terms() {
		e += real(t.Coeff * s.ExpectationString(t.S))
	}
	return e
}

// Fidelity returns |⟨a|b⟩|².
func Fidelity(a, b *State) float64 {
	var ov complex128
	for i := range a.Amp {
		ov += cmplx.Conj(a.Amp[i]) * b.Amp[i]
	}
	m := cmplx.Abs(ov)
	return m * m
}

// NoiseModel is the depolarizing + readout error model of §V-B4/5.
type NoiseModel struct {
	P1      float64 // depolarizing probability after each single-qubit gate
	P2      float64 // depolarizing probability after each CNOT
	Readout float64 // per-qubit readout bit-flip probability
}

// IonQForte1 returns the noise profile of the paper's real-system study:
// 99.98% single-qubit fidelity, 98.99% two-qubit fidelity, 99.02% readout.
func IonQForte1() NoiseModel {
	return NoiseModel{P1: 1 - 0.9998, P2: 1 - 0.9899, Readout: 1 - 0.9902}
}

var pauliLetters = []pauli.Letter{pauli.X, pauli.Y, pauli.Z}

// applyRandomPauli injects a uniform non-identity Pauli on one qubit.
func (s *State) applyRandomPauli(q int, r *rand.Rand) {
	p := pauli.Identity(s.N)
	p.SetLetter(q, pauliLetters[r.Intn(3)])
	s.ApplyPauli(p)
}

// Trajectory executes the circuit under one Monte-Carlo noise realization:
// after each gate, with the model's probability, a uniform random
// non-identity Pauli hits the gate's qubit(s).
func (s *State) Trajectory(c *circuit.Circuit, nm NoiseModel, r *rand.Rand) {
	for _, g := range c.Gates {
		s.ApplyGate(g)
		switch g.Kind {
		case circuit.KindSingle:
			if nm.P1 > 0 && r.Float64() < nm.P1 {
				s.applyRandomPauli(g.Q, r)
			}
		case circuit.KindCNOT:
			if nm.P2 > 0 && r.Float64() < nm.P2 {
				// Uniform over the 15 non-II two-qubit Paulis.
				k := 1 + r.Intn(15)
				p := pauli.Identity(s.N)
				if k%4 != 0 {
					p.SetLetter(g.Q, pauli.Letter(k%4))
				}
				if k/4 != 0 {
					p.SetLetter(g.Q2, pauli.Letter(k/4))
				}
				s.ApplyPauli(p)
			}
		}
	}
}

// SampleEnergy draws one "shot": for every Hamiltonian term it samples a
// ±1 measurement outcome from the term's expectation value on the state,
// flips the outcome through per-qubit readout errors, and sums
// coefficient-weighted outcomes (plus the identity component). This is the
// standard simplification that measures all terms per shot.
func SampleEnergy(s *State, h *pauli.Hamiltonian, nm NoiseModel, r *rand.Rand) float64 {
	e := 0.0
	for _, t := range h.Terms() {
		c := real(t.Coeff)
		if t.S.IsIdentity() {
			e += c
			continue
		}
		exp := real(s.ExpectationString(t.S))
		if exp > 1 {
			exp = 1
		}
		if exp < -1 {
			exp = -1
		}
		outcome := -1.0
		if r.Float64() < (1+exp)/2 {
			outcome = 1.0
		}
		if nm.Readout > 0 {
			// Each measured qubit's bit flips independently; the outcome
			// sign flips when an odd number flip.
			w := t.S.Weight()
			pFlip := (1 - math.Pow(1-2*nm.Readout, float64(w))) / 2
			if r.Float64() < pFlip {
				outcome = -outcome
			}
		}
		e += c * outcome
	}
	return e
}

// EstimateResult summarizes a noisy shot-sampled energy estimation.
type EstimateResult struct {
	Mean     float64 // mean energy over shots
	Variance float64 // variance of the per-shot energies
	Bias     float64 // |Mean − Ideal|
	Ideal    float64 // noiseless expectation of the same circuit
}

// Estimate runs `shots` noisy trajectories of the circuit from |0…0⟩,
// drawing one energy sample per trajectory, and reports mean, variance, and
// bias against the noiseless circuit expectation.
func Estimate(c *circuit.Circuit, h *pauli.Hamiltonian, nm NoiseModel, shots int, seed int64) EstimateResult {
	return EstimateFrom(NewState(c.N), c, h, nm, shots, seed)
}

// EstimateFrom is Estimate with an explicit initial state (e.g. a prepared
// Hartree–Fock state).
func EstimateFrom(init *State, c *circuit.Circuit, h *pauli.Hamiltonian, nm NoiseModel, shots int, seed int64) EstimateResult {
	ideal := init.Clone()
	ideal.ApplyCircuit(c)
	idealE := ideal.Expectation(h)

	r := rand.New(rand.NewSource(seed))
	sum, sumSq := 0.0, 0.0
	for s := 0; s < shots; s++ {
		st := init.Clone()
		st.Trajectory(c, nm, r)
		e := SampleEnergy(st, h, nm, r)
		sum += e
		sumSq += e * e
	}
	mean := sum / float64(shots)
	variance := sumSq/float64(shots) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return EstimateResult{
		Mean:     mean,
		Variance: variance,
		Bias:     math.Abs(mean - idealE),
		Ideal:    idealE,
	}
}

// PrepareOccupied returns the qubit state realizing the fermionic Fock
// state with the given occupied modes under the mapping:
// |ψ⟩ ∝ Π_j a†_j |vac⟩ with a†_j = (S_{2j} − i·S_{2j+1})/2 and |vac⟩ =
// |0…0⟩ (valid for vacuum-preserving mappings; for others this still
// produces the correctly mapped Fock state as long as the result is
// nonzero).
func PrepareOccupied(m *mapping.Mapping, occupied []int) (*State, error) {
	s := NewState(m.Qubits())
	for i := len(occupied) - 1; i >= 0; i-- {
		j := occupied[i]
		t1 := s.Clone()
		t1.ApplyPauli(m.Majorana(2 * j))
		t2 := s.Clone()
		t2.ApplyPauli(m.Majorana(2*j + 1))
		for k := range s.Amp {
			s.Amp[k] = (t1.Amp[k] - complex(0, 1)*t2.Amp[k]) / 2
		}
	}
	n := s.Norm()
	if n < 1e-12 {
		return nil, fmt.Errorf("sim: occupied-state preparation vanished (mode list %v)", occupied)
	}
	scale := complex(1/math.Sqrt(n), 0)
	for k := range s.Amp {
		s.Amp[k] *= scale
	}
	return s, nil
}
