package sim

import (
	"fmt"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/pauli"
)

// Density is a density-matrix simulator: it evolves ρ exactly under gates
// and depolarizing channels, giving noise-averaged expectations with no
// Monte-Carlo shot noise. Memory is 4^N amplitudes — intended for the
// small systems of the Fig. 10/11 experiments (N ≤ ~10).
type Density struct {
	N   int
	dim int
	Rho []complex128 // row-major dim×dim
	// scratch is the reused channel-sum buffer of the depolarizing
	// channels, so noisy circuit evolution allocates nothing per gate.
	scratch []complex128
}

// NewDensity returns ρ = |0…0⟩⟨0…0| on n qubits.
func NewDensity(n int) *Density {
	if n < 0 || n > 13 {
		panic(fmt.Sprintf("sim: unsupported density qubit count %d", n))
	}
	dim := 1 << uint(n)
	d := &Density{N: n, dim: dim, Rho: make([]complex128, dim*dim)}
	d.Rho[0] = 1
	return d
}

// FromState returns the pure-state density matrix |ψ⟩⟨ψ|.
func FromState(s *State) *Density {
	d := &Density{N: s.N, dim: len(s.Amp), Rho: make([]complex128, len(s.Amp)*len(s.Amp))}
	for i := range s.Amp {
		for j := range s.Amp {
			d.Rho[i*d.dim+j] = s.Amp[i] * cmplx.Conj(s.Amp[j])
		}
	}
	return d
}

// Trace returns tr(ρ).
func (d *Density) Trace() complex128 {
	var t complex128
	for i := 0; i < d.dim; i++ {
		t += d.Rho[i*d.dim+i]
	}
	return t
}

// applyGateLeft computes ρ ← Uρ for a gate (acting on row indices).
func (d *Density) applyGateLeft(g circuit.Gate) {
	switch g.Kind {
	case circuit.KindSingle:
		stride := 1 << uint(g.Q)
		for base := 0; base < d.dim; base += stride * 2 {
			for i := base; i < base+stride; i++ {
				r0, r1 := i*d.dim, (i+stride)*d.dim
				for c := 0; c < d.dim; c++ {
					a, b := d.Rho[r0+c], d.Rho[r1+c]
					d.Rho[r0+c] = g.M[0][0]*a + g.M[0][1]*b
					d.Rho[r1+c] = g.M[1][0]*a + g.M[1][1]*b
				}
			}
		}
	case circuit.KindCNOT:
		cm := 1 << uint(g.Q2)
		tm := 1 << uint(g.Q)
		for i := 0; i < d.dim; i++ {
			if i&cm != 0 && i&tm == 0 {
				r0, r1 := i*d.dim, (i|tm)*d.dim
				for c := 0; c < d.dim; c++ {
					d.Rho[r0+c], d.Rho[r1+c] = d.Rho[r1+c], d.Rho[r0+c]
				}
			}
		}
	}
}

// applyGateRight computes ρ ← ρU† (acting on column indices).
func (d *Density) applyGateRight(g circuit.Gate) {
	switch g.Kind {
	case circuit.KindSingle:
		// (ρU†)_{rc} = Σ_k ρ_{rk} conj(U_{ck}).
		stride := 1 << uint(g.Q)
		for r := 0; r < d.dim; r++ {
			row := r * d.dim
			for base := 0; base < d.dim; base += stride * 2 {
				for c := base; c < base+stride; c++ {
					a, b := d.Rho[row+c], d.Rho[row+c+stride]
					d.Rho[row+c] = a*cmplx.Conj(g.M[0][0]) + b*cmplx.Conj(g.M[0][1])
					d.Rho[row+c+stride] = a*cmplx.Conj(g.M[1][0]) + b*cmplx.Conj(g.M[1][1])
				}
			}
		}
	case circuit.KindCNOT:
		cm := 1 << uint(g.Q2)
		tm := 1 << uint(g.Q)
		for r := 0; r < d.dim; r++ {
			row := r * d.dim
			for c := 0; c < d.dim; c++ {
				if c&cm != 0 && c&tm == 0 {
					d.Rho[row+c], d.Rho[row+(c|tm)] = d.Rho[row+(c|tm)], d.Rho[row+c]
				}
			}
		}
	}
}

// ApplyGate conjugates ρ ← UρU†.
func (d *Density) ApplyGate(g circuit.Gate) {
	d.applyGateLeft(g)
	d.applyGateRight(g)
}

// conjugatePauli computes ρ ← PρP† for a Hermitian Pauli string, in place.
func (d *Density) conjugatePauli(p pauli.String) {
	m := masksFor(p)
	d.pauliLeft(m)
	d.pauliRight(m)
}

// pauliLeft computes ρ ← Pρ in place: row i moves to row i⊕flip scaled by
// the source row's phase, so rows are processed in (i, i⊕flip) pairs.
func (d *Density) pauliLeft(m pauliMasks) {
	if m.flip == 0 {
		for i := 0; i < d.dim; i++ {
			ph := m.amp(i)
			row := i * d.dim
			for c := 0; c < d.dim; c++ {
				d.Rho[row+c] *= ph
			}
		}
		return
	}
	pair := m.pairBit()
	for i := 0; i < d.dim; i++ {
		if uint64(i)&pair != 0 {
			continue
		}
		j := i ^ int(m.flip)
		phI, phJ := m.amp(i), m.amp(j)
		ri, rj := i*d.dim, j*d.dim
		for c := 0; c < d.dim; c++ {
			a, b := d.Rho[ri+c], d.Rho[rj+c]
			d.Rho[rj+c] = phI * a
			d.Rho[ri+c] = phJ * b
		}
	}
}

// pauliRight computes ρ ← ρP† in place: column c moves to column c⊕flip
// scaled by conj of the source column's phase.
func (d *Density) pauliRight(m pauliMasks) {
	if m.flip == 0 {
		for c := 0; c < d.dim; c++ {
			ph := cmplx.Conj(m.amp(c))
			for r := 0; r < d.dim; r++ {
				d.Rho[r*d.dim+c] *= ph
			}
		}
		return
	}
	pair := m.pairBit()
	for r := 0; r < d.dim; r++ {
		row := r * d.dim
		for c := 0; c < d.dim; c++ {
			if uint64(c)&pair != 0 {
				continue
			}
			j := c ^ int(m.flip)
			a, b := d.Rho[row+c], d.Rho[row+j]
			d.Rho[row+j] = a * cmplx.Conj(m.amp(c))
			d.Rho[row+c] = b * cmplx.Conj(m.amp(j))
		}
	}
}

// accumulateConjugations sums PρP over the given Pauli strings into the
// reused scratch buffer and returns it, leaving ρ unchanged. Conjugation by
// a Hermitian Pauli is exactly involutory in floating point (every factor
// is ±1 or ±i), so each term is applied in place and then undone instead
// of restoring from a copy.
func (d *Density) accumulateConjugations(ps []pauli.String) []complex128 {
	if cap(d.scratch) < len(d.Rho) {
		d.scratch = make([]complex128, len(d.Rho))
	}
	acc := d.scratch[:len(d.Rho)]
	for i := range acc {
		acc[i] = 0
	}
	for _, p := range ps {
		d.conjugatePauli(p)
		for i := range acc {
			acc[i] += d.Rho[i]
		}
		d.conjugatePauli(p) // exact undo
	}
	return acc
}

// mixChannel applies ρ ← (1−p)ρ + (p/k)·acc for k-term channel sum acc.
func (d *Density) mixChannel(p float64, k int, acc []complex128) {
	cp, ca := complex(1-p, 0), complex(p/float64(k), 0)
	for i := range d.Rho {
		d.Rho[i] = cp*d.Rho[i] + ca*acc[i]
	}
}

// Depolarize1 applies the single-qubit depolarizing channel on qubit q:
// ρ ← (1−p)ρ + p/3·(XρX + YρY + ZρZ).
func (d *Density) Depolarize1(q int, p float64) {
	if p <= 0 {
		return
	}
	ps := make([]pauli.String, 0, 3)
	for _, l := range []pauli.Letter{pauli.X, pauli.Y, pauli.Z} {
		s := pauli.Identity(d.N)
		s.SetLetter(q, l)
		ps = append(ps, s)
	}
	d.mixChannel(p, 3, d.accumulateConjugations(ps))
}

// Depolarize2 applies the two-qubit depolarizing channel on qubits a, b:
// ρ ← (1−p)ρ + p/15·Σ_{P≠II} PρP.
func (d *Density) Depolarize2(a, b int, p float64) {
	if p <= 0 {
		return
	}
	ps := make([]pauli.String, 0, 15)
	letters := []pauli.Letter{pauli.I, pauli.X, pauli.Y, pauli.Z}
	for _, la := range letters {
		for _, lb := range letters {
			if la == pauli.I && lb == pauli.I {
				continue
			}
			s := pauli.Identity(d.N)
			if la != pauli.I {
				s.SetLetter(a, la)
			}
			if lb != pauli.I {
				s.SetLetter(b, lb)
			}
			ps = append(ps, s)
		}
	}
	d.mixChannel(p, 15, d.accumulateConjugations(ps))
}

// ApplyNoisyCircuit runs the circuit with the depolarizing channels of the
// noise model applied exactly after every gate.
func (d *Density) ApplyNoisyCircuit(c *circuit.Circuit, nm NoiseModel) {
	if c.N != d.N {
		panic("sim: circuit/density size mismatch")
	}
	for _, g := range c.Gates {
		d.ApplyGate(g)
		switch g.Kind {
		case circuit.KindSingle:
			d.Depolarize1(g.Q, nm.P1)
		case circuit.KindCNOT:
			d.Depolarize2(g.Q, g.Q2, nm.P2)
		}
	}
}

// ExpectationString returns tr(ρ·P) in one pass over the anti-diagonal
// band the X-mask selects.
func (d *Density) ExpectationString(p pauli.String) complex128 {
	m := masksFor(p)
	var e complex128
	for i := 0; i < d.dim; i++ {
		e += m.amp(i) * d.Rho[i*d.dim+(i^int(m.flip))]
	}
	return e
}

// Expectation returns tr(ρ·H), the exact noise-averaged energy.
func (d *Density) Expectation(h *pauli.Hamiltonian) float64 {
	e := 0.0
	for _, t := range h.Terms() {
		e += real(t.Coeff * d.ExpectationString(t.S))
	}
	return e
}

// ExactNoisyEnergy runs the circuit from |0…0⟩ (or init if non-nil) under
// the exact depolarizing channel and returns tr(ρH): the infinite-shot
// limit of Estimate's mean (readout error excluded).
func ExactNoisyEnergy(init *State, c *circuit.Circuit, h *pauli.Hamiltonian, nm NoiseModel) float64 {
	var d *Density
	if init != nil {
		d = FromState(init)
	} else {
		d = NewDensity(c.N)
	}
	d.ApplyNoisyCircuit(c, nm)
	return d.Expectation(h)
}
