package sim

import (
	"math/cmplx"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/analysis/annotations"
	"repro/internal/pauli"
)

func randomState(r *rand.Rand, n int) *State {
	s := NewState(n)
	norm := 0.0
	for i := range s.Amp {
		s.Amp[i] = complex(r.NormFloat64(), r.NormFloat64())
		norm += real(s.Amp[i])*real(s.Amp[i]) + imag(s.Amp[i])*imag(s.Amp[i])
	}
	scale := complex(1/sqrt(norm), 0)
	for i := range s.Amp {
		s.Amp[i] *= scale
	}
	return s
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 1
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func randomPauli(r *rand.Rand, n int) pauli.String {
	s := pauli.Identity(n)
	for q := 0; q < n; q++ {
		s.SetLetter(q, pauli.Letter(r.Intn(4)))
	}
	return s
}

func statesClose(t *testing.T, a, b *State, context string) {
	t.Helper()
	for i := range a.Amp {
		if cmplx.Abs(a.Amp[i]-b.Amp[i]) > 1e-12 {
			t.Fatalf("%s: amplitude %d diverges: %v vs %v", context, i, a.Amp[i], b.Amp[i])
		}
	}
}

// TestApplyPauliMatchesSlow is the differential oracle for the mask-based
// fast path: on random states and strings (including phased ones) the
// in-place masked ApplyPauli must reproduce the per-letter reference.
func TestApplyPauliMatchesSlow(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(8)
		p := randomPauli(r, n)
		st := randomState(r, n)
		fast := st.Clone()
		slow := st.Clone()
		fast.ApplyPauli(p)
		slow.ApplyPauliSlow(p)
		statesClose(t, fast, slow, p.String())
	}
}

func FuzzApplyPauliEquivalence(f *testing.F) {
	f.Add(uint8(3), uint64(0b101), uint64(0b011), int64(1))
	f.Add(uint8(6), uint64(0), uint64(0b111111), int64(2))
	f.Add(uint8(1), uint64(1), uint64(1), int64(3))
	f.Fuzz(func(t *testing.T, nRaw uint8, xm, zm uint64, seed int64) {
		n := 1 + int(nRaw)%8
		mask := uint64(1)<<uint(n) - 1
		p := pauli.Identity(n)
		for q := 0; q < n; q++ {
			xb := xm & mask >> uint(q) & 1
			zb := zm & mask >> uint(q) & 1
			switch {
			case xb == 1 && zb == 1:
				p.SetLetter(q, pauli.Y)
			case xb == 1:
				p.SetLetter(q, pauli.X)
			case zb == 1:
				p.SetLetter(q, pauli.Z)
			}
		}
		st := randomState(rand.New(rand.NewSource(seed)), n)
		fast := st.Clone()
		slow := st.Clone()
		fast.ApplyPauli(p)
		slow.ApplyPauliSlow(p)
		for i := range fast.Amp {
			if cmplx.Abs(fast.Amp[i]-slow.Amp[i]) > 1e-12 {
				t.Fatalf("amplitude %d diverges: %v vs %v", i, fast.Amp[i], slow.Amp[i])
			}
		}
	})
}

// TestExpectationStringMatchesClone checks the streaming expectation
// against the clone-and-apply definition it replaced.
func TestExpectationStringMatchesClone(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(8)
		p := randomPauli(r, n)
		st := randomState(r, n)
		got := st.ExpectationString(p)
		ref := st.Clone()
		ref.ApplyPauliSlow(p)
		var want complex128
		for i := range st.Amp {
			want += cmplx.Conj(st.Amp[i]) * ref.Amp[i]
		}
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("⟨%s⟩ = %v, want %v", p, got, want)
		}
	}
}

// --- Allocation gates -------------------------------------------------------

func TestZeroAllocApplyPauli(t *testing.T) {
	if annotations.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	r := rand.New(rand.NewSource(31))
	st := randomState(r, 10)
	p := randomPauli(r, 10)
	if n := testing.AllocsPerRun(100, func() {
		st.ApplyPauli(p)
	}); n != 0 {
		t.Fatalf("ApplyPauli allocates %.1f/op, want 0", n)
	}
}

func TestZeroAllocExpectation(t *testing.T) {
	if annotations.RaceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	r := rand.New(rand.NewSource(37))
	st := randomState(r, 8)
	p := randomPauli(r, 8)
	if n := testing.AllocsPerRun(100, func() {
		_ = st.ExpectationString(p)
	}); n != 0 {
		t.Fatalf("ExpectationString allocates %.1f/op, want 0", n)
	}

	h := pauli.NewHamiltonian(8)
	for i := 0; i < 24; i++ {
		h.Add(complex(r.NormFloat64(), 0), randomPauli(r, 8))
	}
	_ = st.Expectation(h) // warm the term cache
	if n := testing.AllocsPerRun(100, func() {
		_ = st.Expectation(h)
	}); n != 0 {
		t.Fatalf("warm Expectation allocates %.1f/op, want 0", n)
	}
}

// --- Before/after kernel benchmarks ----------------------------------------

func benchApplyPauli(b *testing.B, slow bool) {
	r := rand.New(rand.NewSource(41))
	st := randomState(r, 14)
	p := randomPauli(r, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if slow {
			st.ApplyPauliSlow(p)
		} else {
			st.ApplyPauli(p)
		}
	}
}

func BenchmarkApplyPauliFast(b *testing.B) { benchApplyPauli(b, false) }
func BenchmarkApplyPauliSlow(b *testing.B) { benchApplyPauli(b, true) }

func benchExpectation(b *testing.B, slow bool) {
	r := rand.New(rand.NewSource(43))
	st := randomState(r, 12)
	h := pauli.NewHamiltonian(12)
	for i := 0; i < 40; i++ {
		h.Add(complex(r.NormFloat64(), 0), randomPauli(r, 12))
	}
	_ = st.Expectation(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if slow {
			// The pre-mask path: clone per term, apply, inner product.
			e := 0.0
			for _, t := range h.Terms() {
				c := st.Clone()
				c.ApplyPauliSlow(t.S)
				var te complex128
				for k := range st.Amp {
					te += cmplx.Conj(st.Amp[k]) * c.Amp[k]
				}
				e += real(t.Coeff * te)
			}
			_ = e
		} else {
			_ = st.Expectation(h)
		}
	}
}

func BenchmarkExpectationFast(b *testing.B) { benchExpectation(b, false) }
func BenchmarkExpectationSlow(b *testing.B) { benchExpectation(b, true) }

// TestNoAllocAnnotationCoverage pins the gates above to the static
// contract: every function they exercise must carry the //hatt:noalloc
// annotation the noalloc analysis pass enforces, so the runtime gate
// and the lint rule can never drift apart.
func TestNoAllocAnnotationCoverage(t *testing.T) {
	annotated, err := annotations.NoAllocFuncs(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"State.ApplyPauli", "State.Expectation", "State.ExpectationString"} {
		if !slices.Contains(annotated, fn) {
			t.Errorf("%s lacks the %s annotation the zero-alloc gates rely on (annotated: %v)",
				fn, annotations.Directive, annotated)
		}
	}
}
