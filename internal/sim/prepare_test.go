package sim

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/models"
)

func TestPrepareOccupiedMatchesFockMask(t *testing.T) {
	// For vacuum-preserving mappings the operator-applied Fock state must
	// be exactly the basis state FockMask predicts (up to global phase).
	mh := models.H2STO3G().Majorana(1e-12)
	maps := []*mapping.Mapping{
		mapping.JordanWigner(4),
		mapping.BravyiKitaev(4),
		mapping.Parity(4),
		mapping.BalancedTernaryTree(4),
		core.Build(mh).Mapping,
	}
	occs := [][]int{{0}, {0, 1}, {1, 3}, {0, 1, 2, 3}}
	for _, m := range maps {
		for _, occ := range occs {
			st, err := PrepareOccupied(m, occ)
			if err != nil {
				t.Fatalf("%s occ %v: %v", m.Name, occ, err)
			}
			mask, err := m.FockMask(occ)
			if err != nil {
				t.Fatalf("%s occ %v: FockMask: %v", m.Name, occ, err)
			}
			if a := cmplx.Abs(st.Amp[mask]); math.Abs(a-1) > 1e-9 {
				t.Errorf("%s occ %v: |amp[mask]| = %v, want 1", m.Name, occ, a)
			}
		}
	}
}

func TestPrepareOccupiedParticleNumber(t *testing.T) {
	// The prepared state is an eigenstate of every occupation operator
	// with the right eigenvalue.
	m := mapping.BravyiKitaev(5)
	occ := []int{0, 2, 4}
	st, err := PrepareOccupied(m, occ)
	if err != nil {
		t.Fatal(err)
	}
	inOcc := map[int]bool{0: true, 2: true, 4: true}
	for j := 0; j < 5; j++ {
		e := st.Expectation(m.OccupationOperator(j))
		want := 0.0
		if inOcc[j] {
			want = 1.0
		}
		if math.Abs(e-want) > 1e-9 {
			t.Errorf("⟨n_%d⟩ = %v, want %v", j, e, want)
		}
	}
}

func TestPrepareOccupiedRepeatedModeFails(t *testing.T) {
	m := mapping.JordanWigner(3)
	if _, err := PrepareOccupied(m, []int{1, 1}); err == nil {
		t.Error("double occupation should vanish and error")
	}
}
