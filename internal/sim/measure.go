package sim

import (
	mbits "math/bits"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/pauli"
)

// SampleBits draws one computational-basis measurement outcome from the
// state's Born distribution.
func (s *State) SampleBits(r *rand.Rand) uint64 {
	x := r.Float64()
	acc := 0.0
	for i, a := range s.Amp {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if x < acc {
			return uint64(i)
		}
	}
	return uint64(len(s.Amp) - 1)
}

// basisChange returns the single-qubit gates rotating the group basis into
// the computational (Z) basis.
func basisChange(basis []pauli.Letter) []circuit.Gate {
	var gs []circuit.Gate
	for q, l := range basis {
		switch l {
		case pauli.X:
			gs = append(gs, circuit.H(q))
		case pauli.Y:
			gs = append(gs, circuit.RxPlus(q))
		}
	}
	return gs
}

// SampleEnergyQWC draws one shot per qubit-wise commuting group: the state
// is rotated into the group basis, a bitstring is sampled (with per-qubit
// readout flips), and every term's ±1 eigenvalue is read off the bits.
// This is the physically faithful measurement model — terms in the same
// group share one shot, as on hardware.
func SampleEnergyQWC(s *State, h *pauli.Hamiltonian, groups []pauli.QWCGroup, nm NoiseModel, r *rand.Rand) float64 {
	e := real(h.Trace()) // identity component
	for _, g := range groups {
		rot := s.Clone()
		for _, gate := range basisChange(g.Basis) {
			rot.ApplyGate(gate)
		}
		bits := rot.SampleBits(r)
		if nm.Readout > 0 {
			for q := 0; q < s.N; q++ {
				if r.Float64() < nm.Readout {
					bits ^= 1 << uint(q)
				}
			}
		}
		for _, t := range g.Terms {
			sign := 1.0
			if mbits.OnesCount64(bits&t.S.SupportMask64())&1 == 1 {
				sign = -1.0
			}
			e += real(t.Coeff) * sign
		}
	}
	return e
}

// EstimateQWC is Estimate with grouped (hardware-style) measurement: each
// shot runs one noisy trajectory and then one basis-rotated sample per
// commuting group.
func EstimateQWC(init *State, c *circuit.Circuit, h *pauli.Hamiltonian, nm NoiseModel, shots int, seed int64) EstimateResult {
	ideal := init.Clone()
	ideal.ApplyCircuit(c)
	idealE := ideal.Expectation(h)
	groups := pauli.GroupQWC(h)

	r := rand.New(rand.NewSource(seed))
	sum, sumSq := 0.0, 0.0
	for s := 0; s < shots; s++ {
		st := init.Clone()
		st.Trajectory(c, nm, r)
		e := SampleEnergyQWC(st, h, groups, nm, r)
		sum += e
		sumSq += e * e
	}
	mean := sum / float64(shots)
	variance := sumSq/float64(shots) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return EstimateResult{
		Mean:     mean,
		Variance: variance,
		Bias:     abs(mean - idealE),
		Ideal:    idealE,
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
