package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/pauli"
)

func TestDensityPureStateAgreesWithStateVector(t *testing.T) {
	h := pauli.NewHamiltonian(3)
	h.Add(0.5, pauli.MustParse("XYZ"))
	h.Add(-0.3, pauli.MustParse("ZZI"))
	h.Add(0.8, pauli.MustParse("IXX"))
	c := circuit.Compile(h, circuit.OrderLexicographic)

	s := NewState(3)
	s.ApplyCircuit(c)
	d := NewDensity(3)
	for _, g := range c.Gates {
		d.ApplyGate(g)
	}
	if tr := d.Trace(); cmplx.Abs(tr-1) > 1e-10 {
		t.Fatalf("trace = %v", tr)
	}
	for _, p := range []string{"ZII", "XYZ", "IXX", "YIZ"} {
		ps := pauli.MustParse(p)
		ev := s.ExpectationString(ps)
		ed := d.ExpectationString(ps)
		if cmplx.Abs(ev-ed) > 1e-9 {
			t.Errorf("⟨%s⟩: state %v vs density %v", p, ev, ed)
		}
	}
	if math.Abs(s.Expectation(h)-d.Expectation(h)) > 1e-9 {
		t.Error("energies differ between simulators")
	}
}

func TestFromState(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(circuit.H(0))
	s.ApplyGate(circuit.CNOT(0, 1))
	d := FromState(s)
	if cmplx.Abs(d.Trace()-1) > 1e-12 {
		t.Fatalf("trace = %v", d.Trace())
	}
	if e := d.ExpectationString(pauli.MustParse("XX")); cmplx.Abs(e-1) > 1e-10 {
		t.Errorf("Bell ⟨XX⟩ = %v", e)
	}
}

func TestDepolarize1FullyMixes(t *testing.T) {
	// p = 3/4 single-qubit depolarizing is the completely depolarizing
	// channel: ⟨Z⟩ → (1 − 4p/3)·⟨Z⟩ = 0.
	d := NewDensity(1)
	d.Depolarize1(0, 0.75)
	if e := d.ExpectationString(pauli.MustParse("Z")); cmplx.Abs(e) > 1e-10 {
		t.Errorf("⟨Z⟩ = %v after full depolarization", e)
	}
	if tr := d.Trace(); cmplx.Abs(tr-1) > 1e-10 {
		t.Errorf("channel not trace preserving: %v", tr)
	}
}

func TestDepolarize1ShrinksBlochVector(t *testing.T) {
	// ⟨Z⟩ shrinks by exactly (1 − 4p/3).
	p := 0.3
	d := NewDensity(1)
	d.Depolarize1(0, p)
	want := 1 - 4*p/3
	if e := real(d.ExpectationString(pauli.MustParse("Z"))); math.Abs(e-want) > 1e-10 {
		t.Errorf("⟨Z⟩ = %v, want %v", e, want)
	}
}

func TestDepolarize2TracePreservingAndShrinking(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(circuit.H(0))
	s.ApplyGate(circuit.CNOT(0, 1))
	d := FromState(s)
	d.Depolarize2(0, 1, 0.2)
	if tr := d.Trace(); cmplx.Abs(tr-1) > 1e-10 {
		t.Fatalf("trace = %v", tr)
	}
	// ⟨XX⟩ shrinks by (1 − 16p/15) under two-qubit depolarizing.
	want := 1 - 16*0.2/15
	if e := real(d.ExpectationString(pauli.MustParse("XX"))); math.Abs(e-want) > 1e-10 {
		t.Errorf("⟨XX⟩ = %v, want %v", e, want)
	}
}

func TestExactNoisyEnergyMatchesTrajectoryAverage(t *testing.T) {
	// The density-matrix result is the infinite-shot limit of the
	// Monte-Carlo trajectory estimate (without readout error): with many
	// trajectories they must agree within sampling error.
	h := pauli.NewHamiltonian(2)
	h.Add(1, pauli.MustParse("ZZ"))
	h.Add(0.5, pauli.MustParse("XI"))
	c := circuit.Compile(h, circuit.OrderLexicographic)
	nm := NoiseModel{P1: 0.02, P2: 0.05}
	exact := ExactNoisyEnergy(nil, c, h, nm)

	r := rand.New(rand.NewSource(12))
	sum := 0.0
	const traj = 6000
	for i := 0; i < traj; i++ {
		st := NewState(2)
		st.Trajectory(c, nm, r)
		sum += st.Expectation(h)
	}
	mc := sum / traj
	if math.Abs(exact-mc) > 0.02 {
		t.Errorf("density %v vs Monte-Carlo %v", exact, mc)
	}
}

func TestExactNoisyEnergyZeroNoiseIsIdeal(t *testing.T) {
	h := pauli.NewHamiltonian(2)
	h.Add(0.7, pauli.MustParse("ZI"))
	h.Add(0.2, pauli.MustParse("XX"))
	c := circuit.Compile(h, circuit.OrderLexicographic)
	s := NewState(2)
	s.ApplyCircuit(c)
	want := s.Expectation(h)
	got := ExactNoisyEnergy(nil, c, h, NoiseModel{})
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("zero-noise density energy %v vs %v", got, want)
	}
}

func TestDensityNoiseMonotone(t *testing.T) {
	// More noise ⇒ energy closer to the maximally-mixed value (0 for a
	// traceless H).
	h := pauli.NewHamiltonian(2)
	h.Add(1, pauli.MustParse("ZZ"))
	c := circuit.New(2)
	for i := 0; i < 10; i++ {
		c.Append(circuit.CNOT(0, 1))
	}
	prev := 1.0
	for _, p := range []float64{0.01, 0.05, 0.2} {
		e := ExactNoisyEnergy(nil, c, h, NoiseModel{P2: p})
		if e >= prev {
			t.Errorf("p=%v: energy %v did not shrink from %v", p, e, prev)
		}
		prev = e
	}
}
