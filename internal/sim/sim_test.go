package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/pauli"
)

func TestHadamardSuperposition(t *testing.T) {
	s := NewState(1)
	s.ApplyGate(circuit.H(0))
	w := complex(1/math.Sqrt2, 0)
	if cmplx.Abs(s.Amp[0]-w) > 1e-12 || cmplx.Abs(s.Amp[1]-w) > 1e-12 {
		t.Errorf("H|0⟩ = %v", s.Amp)
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.ApplyGate(circuit.H(0))
	s.ApplyGate(circuit.CNOT(0, 1))
	w := 1 / math.Sqrt2
	if cmplx.Abs(s.Amp[0]-complex(w, 0)) > 1e-12 || cmplx.Abs(s.Amp[3]-complex(w, 0)) > 1e-12 {
		t.Fatalf("Bell amplitudes = %v", s.Amp)
	}
	// Correlations: ⟨XX⟩ = ⟨ZZ⟩ = 1, ⟨ZI⟩ = 0.
	if e := real(s.ExpectationString(pauli.MustParse("XX"))); math.Abs(e-1) > 1e-12 {
		t.Errorf("⟨XX⟩ = %v", e)
	}
	if e := real(s.ExpectationString(pauli.MustParse("ZZ"))); math.Abs(e-1) > 1e-12 {
		t.Errorf("⟨ZZ⟩ = %v", e)
	}
	if e := real(s.ExpectationString(pauli.MustParse("ZI"))); math.Abs(e) > 1e-12 {
		t.Errorf("⟨ZI⟩ = %v", e)
	}
}

func TestApplyPauliAction(t *testing.T) {
	s := NewState(1)
	s.ApplyPauli(pauli.MustParse("X"))
	if cmplx.Abs(s.Amp[1]-1) > 1e-12 {
		t.Errorf("X|0⟩ = %v", s.Amp)
	}
	s2 := NewState(1)
	s2.ApplyPauli(pauli.MustParse("Y"))
	if cmplx.Abs(s2.Amp[1]-complex(0, 1)) > 1e-12 {
		t.Errorf("Y|0⟩ = %v, want i|1⟩", s2.Amp)
	}
	s3 := BasisState(1, 1)
	s3.ApplyPauli(pauli.MustParse("Z"))
	if cmplx.Abs(s3.Amp[1]+1) > 1e-12 {
		t.Errorf("Z|1⟩ = %v, want -|1⟩", s3.Amp)
	}
}

func TestNormPreservation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	h := pauli.NewHamiltonian(4)
	h.Add(0.5, pauli.MustParse("XYZI"))
	h.Add(-0.3, pauli.MustParse("ZZXX"))
	h.Add(0.2, pauli.MustParse("IIYX"))
	c := circuit.Compile(h, circuit.OrderLexicographic)
	s := NewState(4)
	s.ApplyCircuit(c)
	if math.Abs(s.Norm()-1) > 1e-10 {
		t.Errorf("norm = %v", s.Norm())
	}
	// Trajectories also preserve norm (Pauli errors are unitary).
	st := NewState(4)
	st.Trajectory(c, NoiseModel{P1: 0.5, P2: 0.5}, r)
	if math.Abs(st.Norm()-1) > 1e-10 {
		t.Errorf("noisy norm = %v", st.Norm())
	}
}

func TestTrajectoryZeroNoiseIsExact(t *testing.T) {
	h := pauli.NewHamiltonian(3)
	h.Add(0.4, pauli.MustParse("XXZ"))
	h.Add(0.1, pauli.MustParse("ZYI"))
	c := circuit.Compile(h, circuit.OrderNatural)
	exact := NewState(3)
	exact.ApplyCircuit(c)
	noisy := NewState(3)
	noisy.Trajectory(c, NoiseModel{}, rand.New(rand.NewSource(2)))
	if f := Fidelity(exact, noisy); math.Abs(f-1) > 1e-12 {
		t.Errorf("zero-noise fidelity = %v", f)
	}
}

func TestExpectationMatchesBasisFormula(t *testing.T) {
	h := pauli.NewHamiltonian(3)
	h.Add(0.7, pauli.MustParse("ZIZ"))
	h.Add(0.2, pauli.MustParse("IZI"))
	h.Add(1.1, pauli.Identity(3))
	for mask := uint64(0); mask < 8; mask++ {
		s := BasisState(3, mask)
		want := real(h.ExpectationOnBasis(mask))
		if got := s.Expectation(h); math.Abs(got-want) > 1e-10 {
			t.Errorf("mask %b: %v vs %v", mask, got, want)
		}
	}
}

func TestVacuumPreservationEndToEnd(t *testing.T) {
	// A HATT-mapped number operator must annihilate |0…0⟩ exactly: the
	// expectation of every n_j on the all-zero state is 0.
	hf := fermion.NewHamiltonian(4)
	hf.AddHermitian(0.8, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 2})
	hf.Add(1.5, fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 1})
	hf.Add(0.6,
		fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 3, Dagger: true},
		fermion.Op{Mode: 0}, fermion.Op{Mode: 3})
	m := core.Build(hf.Majorana(1e-14)).Mapping
	for j := 0; j < 4; j++ {
		hq := m.ApplyFermionic(fermion.Number(4, j))
		s := NewState(m.Qubits())
		if e := s.Expectation(hq); math.Abs(e) > 1e-10 {
			t.Errorf("⟨0|n_%d|0⟩ = %v under HATT", j, e)
		}
	}
}

func TestEstimateZeroNoiseUnbiased(t *testing.T) {
	h := pauli.NewHamiltonian(2)
	h.Add(0.5, pauli.MustParse("ZI"))
	h.Add(0.25, pauli.MustParse("IZ"))
	h.Add(-0.75, pauli.Identity(2))
	c := circuit.New(2)
	c.Append(circuit.X(0)) // |01⟩: E = 0.5·1 + 0.25·(−1) − 0.75 = −0.5
	res := Estimate(c, h, NoiseModel{}, 4000, 7)
	if math.Abs(res.Ideal-(-0.5)) > 1e-10 {
		t.Fatalf("ideal = %v, want -0.5", res.Ideal)
	}
	if res.Bias > 0.05 {
		t.Errorf("zero-noise bias = %v too large", res.Bias)
	}
}

func TestEstimateNoiseIncreasesBias(t *testing.T) {
	// Deep circuit + diagonal Hamiltonian: depolarizing noise pulls the
	// estimate toward the maximally mixed value.
	h := pauli.NewHamiltonian(2)
	h.Add(1, pauli.MustParse("ZZ"))
	c := circuit.New(2)
	for i := 0; i < 30; i++ {
		c.Append(circuit.CNOT(0, 1))
	}
	clean := Estimate(c, h, NoiseModel{}, 2000, 3)
	noisy := Estimate(c, h, NoiseModel{P1: 0.01, P2: 0.05}, 2000, 3)
	if noisy.Bias <= clean.Bias {
		t.Errorf("noise did not increase bias: %v vs %v", noisy.Bias, clean.Bias)
	}
	if noisy.Variance <= 0 {
		t.Error("noisy variance should be positive")
	}
}

func TestReadoutErrorFlipsOutcomes(t *testing.T) {
	// With readout error 0.5 on a single measured qubit, outcomes are coin
	// flips and the mean collapses toward 0.
	h := pauli.NewHamiltonian(1)
	h.Add(1, pauli.MustParse("Z"))
	c := circuit.New(1)
	c.Append(circuit.H(0), circuit.H(0)) // identity-ish, keeps |0⟩: ⟨Z⟩ = 1
	res := Estimate(c, h, NoiseModel{Readout: 0.5}, 4000, 5)
	if math.Abs(res.Mean) > 0.06 {
		t.Errorf("fully randomized readout mean = %v, want ≈ 0", res.Mean)
	}
}

func TestIonQProfile(t *testing.T) {
	nm := IonQForte1()
	if nm.P2 < nm.P1 {
		t.Error("two-qubit error should dominate")
	}
	if math.Abs(nm.P2-0.0101) > 1e-10 {
		t.Errorf("P2 = %v", nm.P2)
	}
}

func TestTrotterEvolutionAgainstExactSmallAngle(t *testing.T) {
	// One Trotter step at small t approximates exp(−iHt): fidelity with
	// the exact evolution should be ≈ 1 − O(t⁴) for a 2-term H.
	h := pauli.NewHamiltonian(2)
	h.Add(0.3, pauli.MustParse("XZ"))
	h.Add(0.4, pauli.MustParse("ZX"))
	tEvo := 0.05
	c := circuit.SynthesizeTrotter(h, tEvo, 1, circuit.OrderNatural)
	trot := NewState(2)
	trot.ApplyGate(circuit.H(0))
	trot.ApplyGate(circuit.CNOT(0, 1))
	trot.ApplyCircuit(c)
	// Exact evolution via series on the same initial Bell state.
	exact := NewState(2)
	exact.ApplyGate(circuit.H(0))
	exact.ApplyGate(circuit.CNOT(0, 1))
	applyExpSeries(exact, h, tEvo)
	if f := Fidelity(trot, exact); f < 1-1e-5 {
		t.Errorf("Trotter fidelity = %v", f)
	}
}

// applyExpSeries applies exp(−iHt) by Taylor series (converges for small
// ‖Ht‖).
func applyExpSeries(s *State, h *pauli.Hamiltonian, t float64) {
	applyH := func(in []complex128) []complex128 {
		out := make([]complex128, len(in))
		for _, term := range h.Terms() {
			tmp := &State{N: s.N, Amp: append([]complex128{}, in...)}
			tmp.ApplyPauli(term.S)
			for i := range out {
				out[i] += term.Coeff * tmp.Amp[i]
			}
		}
		return out
	}
	result := append([]complex128{}, s.Amp...)
	cur := append([]complex128{}, s.Amp...)
	for k := 1; k <= 25; k++ {
		cur = applyH(cur)
		f := complex(0, -t) / complex(float64(k), 0)
		for i := range cur {
			cur[i] *= f
			result[i] += cur[i]
		}
	}
	s.Amp = result
}

func TestCloneIndependence(t *testing.T) {
	s := NewState(2)
	c := s.Clone()
	c.ApplyGate(circuit.X(0))
	if cmplx.Abs(s.Amp[0]-1) > 1e-12 {
		t.Error("Clone shares amplitude storage")
	}
}

func TestMappingsAgreeOnNoiselessEnergy(t *testing.T) {
	// The same fermionic Hamiltonian compiled through JW and HATT must
	// give identical noiseless Trotter energies when each starts from its
	// own vacuum (both vacuum-preserving ⇒ both start at |0…0⟩).
	hf := fermion.NewHamiltonian(3)
	hf.AddHermitian(0.7, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1})
	hf.Add(1.1, fermion.Op{Mode: 2, Dagger: true}, fermion.Op{Mode: 2})
	mh := hf.Majorana(1e-14)
	var energies []float64
	for _, m := range []*mapping.Mapping{mapping.JordanWigner(3), core.Build(mh).Mapping} {
		hq := m.Apply(mh)
		c := circuit.Compile(hq, circuit.OrderLexicographic)
		s := NewState(3)
		s.ApplyCircuit(c)
		energies = append(energies, s.Expectation(hq))
	}
	if math.Abs(energies[0]-energies[1]) > 1e-8 {
		t.Errorf("JW %v vs HATT %v", energies[0], energies[1])
	}
}
