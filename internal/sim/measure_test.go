package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/pauli"
)

func TestSampleBitsDistribution(t *testing.T) {
	s := NewState(1)
	s.ApplyGate(circuit.H(0))
	r := rand.New(rand.NewSource(4))
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ones += int(s.SampleBits(r) & 1)
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("|+⟩ sampled 1 with frequency %v", frac)
	}
}

func TestSampleEnergyQWCUnbiased(t *testing.T) {
	// Bell state: H = XX + ZZ has ⟨H⟩ = 2; grouped sampling must agree.
	h := pauli.NewHamiltonian(2)
	h.Add(1, pauli.MustParse("XX"))
	h.Add(1, pauli.MustParse("ZZ"))
	s := NewState(2)
	s.ApplyGate(circuit.H(0))
	s.ApplyGate(circuit.CNOT(0, 1))
	groups := pauli.GroupQWC(h)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (XX and ZZ settings)", len(groups))
	}
	r := rand.New(rand.NewSource(5))
	sum := 0.0
	const shots = 4000
	for i := 0; i < shots; i++ {
		sum += SampleEnergyQWC(s, h, groups, NoiseModel{}, r)
	}
	if mean := sum / shots; math.Abs(mean-2) > 0.05 {
		t.Errorf("grouped estimate = %v, want 2", mean)
	}
}

func TestSampleEnergyQWCYBasis(t *testing.T) {
	// |+i⟩ = RxMinus... prepare the Y=+1 eigenstate: Rx(−π/2)|0⟩ has
	// ⟨Y⟩ = +1? Verify via exact expectation first, then grouped sampling
	// must match its sign.
	s := NewState(1)
	s.ApplyGate(circuit.RxMinus(0))
	h := pauli.NewHamiltonian(1)
	h.Add(1, pauli.MustParse("Y"))
	exact := s.Expectation(h)
	groups := pauli.GroupQWC(h)
	r := rand.New(rand.NewSource(9))
	sum := 0.0
	const shots = 3000
	for i := 0; i < shots; i++ {
		sum += SampleEnergyQWC(s, h, groups, NoiseModel{}, r)
	}
	mean := sum / shots
	if math.Abs(mean-exact) > 0.05 {
		t.Errorf("grouped Y estimate %v vs exact %v", mean, exact)
	}
	if math.Abs(math.Abs(exact)-1) > 1e-9 {
		t.Errorf("Rx eigenstate has |⟨Y⟩| = %v, want 1", math.Abs(exact))
	}
}

func TestEstimateQWCAgainstPerTermEstimate(t *testing.T) {
	// Both estimators are unbiased for the same circuit; their means must
	// agree within sampling error.
	h := pauli.NewHamiltonian(2)
	h.Add(0.8, pauli.MustParse("ZI"))
	h.Add(0.4, pauli.MustParse("XX"))
	c := circuit.New(2)
	c.Append(circuit.H(0), circuit.CNOT(0, 1))
	init := NewState(2)
	a := EstimateFrom(init, c, h, NoiseModel{}, 4000, 3)
	b := EstimateQWC(init, c, h, NoiseModel{}, 4000, 4)
	if math.Abs(a.Mean-b.Mean) > 0.06 {
		t.Errorf("estimators disagree: %v vs %v", a.Mean, b.Mean)
	}
	if math.Abs(a.Ideal-b.Ideal) > 1e-12 {
		t.Errorf("ideal values disagree: %v vs %v", a.Ideal, b.Ideal)
	}
}

func TestEstimateQWCReadoutDegrades(t *testing.T) {
	h := pauli.NewHamiltonian(1)
	h.Add(1, pauli.MustParse("Z"))
	c := circuit.New(1)
	c.Append(circuit.H(0), circuit.H(0))
	clean := EstimateQWC(NewState(1), c, h, NoiseModel{}, 3000, 5)
	noisy := EstimateQWC(NewState(1), c, h, NoiseModel{Readout: 0.2}, 3000, 5)
	// ⟨Z⟩ = 1 clean; readout 0.2 shrinks it toward (1−2r) = 0.6.
	if clean.Mean < 0.95 {
		t.Errorf("clean mean %v", clean.Mean)
	}
	if math.Abs(noisy.Mean-0.6) > 0.06 {
		t.Errorf("readout-degraded mean %v, want ≈ 0.6", noisy.Mean)
	}
}
