package sim

import (
	"math/bits"

	"repro/internal/pauli"
)

// pauliMasks is the precomputed symplectic action of a Pauli string on
// computational-basis indices:
//
//	P|b⟩ = coeff · (−1)^{popcount(b & zmask)} · |b ⊕ flip⟩
//
// where flip is the X-type mask, zmask the Z-type mask, and coeff = i^Phase
// of the string's symplectic form. One popcount parity and one xor replace
// the per-letter dispatch the simulators used to run per amplitude; the
// state-vector, density-matrix, and measurement paths all share it.
type pauliMasks struct {
	flip  uint64
	zmask uint64
	coeff complex128
}

func masksFor(p pauli.String) pauliMasks {
	x, z := p.Masks64()
	return pauliMasks{flip: x, zmask: z, coeff: p.PhaseCoeff()}
}

// amp returns the amplitude factor for source basis index b:
// coeff negated when b hits an odd number of Z positions.
func (m pauliMasks) amp(b int) complex128 {
	if bits.OnesCount64(uint64(b)&m.zmask)&1 == 1 {
		return -m.coeff
	}
	return m.coeff
}

// pairBit returns a single set bit of flip, used to enumerate each
// (i, i^flip) index pair exactly once. Only valid when flip != 0.
func (m pauliMasks) pairBit() uint64 {
	return m.flip & -m.flip
}
