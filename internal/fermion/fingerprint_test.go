package fermion

import "testing"

func fpTestSystem() *Hamiltonian {
	h := NewHamiltonian(3)
	h.Add(1.0, Op{Mode: 0, Dagger: true}, Op{Mode: 0})
	h.AddHermitian(0.5, Op{Mode: 0, Dagger: true}, Op{Mode: 1})
	h.Add(2.0,
		Op{Mode: 1, Dagger: true}, Op{Mode: 2, Dagger: true},
		Op{Mode: 1}, Op{Mode: 2})
	return h
}

func TestFingerprintDeterministic(t *testing.T) {
	a := fpTestSystem().Majorana(1e-12)
	b := fpTestSystem().Majorana(1e-12)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical systems fingerprint differently: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	if got := len(a.Fingerprint()); got != 32 {
		t.Fatalf("fingerprint length = %d, want 32 hex chars (128 bits)", got)
	}
}

func TestFingerprintSeparatesContent(t *testing.T) {
	base := fpTestSystem().Majorana(1e-12)

	// Different coefficient on one term.
	h2 := NewHamiltonian(3)
	h2.Add(1.0, Op{Mode: 0, Dagger: true}, Op{Mode: 0})
	h2.AddHermitian(0.5, Op{Mode: 0, Dagger: true}, Op{Mode: 1})
	h2.Add(2.5,
		Op{Mode: 1, Dagger: true}, Op{Mode: 2, Dagger: true},
		Op{Mode: 1}, Op{Mode: 2})
	if base.Fingerprint() == h2.Majorana(1e-12).Fingerprint() {
		t.Fatal("coefficient change not reflected in fingerprint")
	}

	// Different mode count, same (empty) term list.
	e4 := &MajoranaHamiltonian{Modes: 4}
	e5 := &MajoranaHamiltonian{Modes: 5}
	if e4.Fingerprint() == e5.Fingerprint() {
		t.Fatal("mode count not reflected in fingerprint")
	}

	// Self-delimiting encoding: terms {0,1},{2} vs {0},{1,2} must differ
	// even though the flattened index streams coincide.
	a := &MajoranaHamiltonian{Modes: 2, Terms: []MajoranaTerm{
		{Coeff: 1, Indices: []int{0, 1}}, {Coeff: 1, Indices: []int{2}},
	}}
	b := &MajoranaHamiltonian{Modes: 2, Terms: []MajoranaTerm{
		{Coeff: 1, Indices: []int{0}}, {Coeff: 1, Indices: []int{1, 2}},
	}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("term boundaries not reflected in fingerprint")
	}
}
