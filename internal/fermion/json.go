package fermion

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonHamiltonian is the interchange schema:
//
//	{
//	  "modes": 4,
//	  "terms": [
//	    {"coeff": [1.5, 0.0], "ops": [{"mode": 0, "dagger": true},
//	                                  {"mode": 1, "dagger": false}]}
//	  ]
//	}
type jsonHamiltonian struct {
	Modes int        `json:"modes"`
	Terms []jsonTerm `json:"terms"`
}

type jsonTerm struct {
	Coeff [2]float64 `json:"coeff"`
	Ops   []jsonOp   `json:"ops"`
}

type jsonOp struct {
	Mode   int  `json:"mode"`
	Dagger bool `json:"dagger"`
}

// MarshalJSON encodes the Hamiltonian in the interchange schema.
func (h *Hamiltonian) MarshalJSON() ([]byte, error) {
	out := jsonHamiltonian{Modes: h.Modes}
	for _, t := range h.Terms {
		jt := jsonTerm{Coeff: [2]float64{real(t.Coeff), imag(t.Coeff)}}
		for _, o := range t.Ops {
			jt.Ops = append(jt.Ops, jsonOp{Mode: o.Mode, Dagger: o.Dagger})
		}
		out.Terms = append(out.Terms, jt)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the interchange schema with validation.
func (h *Hamiltonian) UnmarshalJSON(data []byte) error {
	var in jsonHamiltonian
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if in.Modes <= 0 {
		return fmt.Errorf("fermion: invalid mode count %d", in.Modes)
	}
	dec := NewHamiltonian(in.Modes)
	for ti, t := range in.Terms {
		ops := make([]Op, len(t.Ops))
		for i, o := range t.Ops {
			if o.Mode < 0 || o.Mode >= in.Modes {
				return fmt.Errorf("fermion: term %d: mode %d out of range [0,%d)", ti, o.Mode, in.Modes)
			}
			ops[i] = Op{Mode: o.Mode, Dagger: o.Dagger}
		}
		dec.Add(complex(t.Coeff[0], t.Coeff[1]), ops...)
	}
	*h = *dec
	return nil
}

// WriteJSON writes the Hamiltonian as indented JSON.
func (h *Hamiltonian) WriteJSON(w io.Writer) error {
	b, err := h.MarshalJSON()
	if err != nil {
		return err
	}
	var buf []byte
	buf, err = indentJSON(b)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

func indentJSON(b []byte) ([]byte, error) {
	var v interface{}
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, err
	}
	return json.MarshalIndent(v, "", "  ")
}

// ReadJSON parses a Hamiltonian from a reader.
func ReadJSON(r io.Reader) (*Hamiltonian, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	h := &Hamiltonian{}
	if err := h.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return h, nil
}
