package fermion

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Canonical anticommutation relations, verified through the Majorana
// expansion: {a_i, a_j} = 0, {a†_i, a†_j} = 0, {a_i, a†_j} = δ_ij.

func antiCommutatorVanishes(n int, op1, op2 Op, wantIdentity bool) bool {
	h := NewHamiltonian(n)
	h.Add(1, op1, op2)
	h.Add(1, op2, op1)
	m := h.Majorana(1e-12)
	if !wantIdentity {
		return len(m.Terms) == 0
	}
	if len(m.Terms) != 1 || len(m.Terms[0].Indices) != 0 {
		return false
	}
	return cmplx.Abs(m.Terms[0].Coeff-1) < 1e-12
}

func TestCARProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		i, j := r.Intn(n), r.Intn(n)
		// {a_i, a_j} = 0 always (even i == j).
		if !antiCommutatorVanishes(n, Op{i, false}, Op{j, false}, false) {
			return false
		}
		// {a†_i, a†_j} = 0.
		if !antiCommutatorVanishes(n, Op{i, true}, Op{j, true}, false) {
			return false
		}
		// {a_i, a†_j} = δ_ij.
		return antiCommutatorVanishes(n, Op{i, false}, Op{j, true}, i == j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNumberOperatorIdempotentProperty(t *testing.T) {
	// n_j² = n_j: the Majorana expansions of a†a a†a and a†a must match.
	for n := 1; n <= 4; n++ {
		for j := 0; j < n; j++ {
			sq := NewHamiltonian(n)
			sq.Add(1, Op{j, true}, Op{j, false}, Op{j, true}, Op{j, false})
			lin := Number(n, j)
			a, b := sq.Majorana(1e-12), lin.Majorana(1e-12)
			if len(a.Terms) != len(b.Terms) {
				t.Fatalf("n_%d² term count %d vs %d", j, len(a.Terms), len(b.Terms))
			}
			for i := range a.Terms {
				if cmplx.Abs(a.Terms[i].Coeff-b.Terms[i].Coeff) > 1e-12 {
					t.Fatalf("n_%d² coeff mismatch", j)
				}
			}
		}
	}
}

func TestPauliExclusionProperty(t *testing.T) {
	// (a†_j)² = 0 for every mode.
	for n := 1; n <= 5; n++ {
		for j := 0; j < n; j++ {
			h := NewHamiltonian(n)
			h.Add(1, Op{j, true}, Op{j, true})
			if m := h.Majorana(1e-12); len(m.Terms) != 0 {
				t.Fatalf("(a†_%d)² ≠ 0: %s", j, m)
			}
		}
	}
}

func TestQuadraticHermitianProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		h := NewHamiltonian(n)
		for k := 0; k < 5; k++ {
			i, j := r.Intn(n), r.Intn(n)
			c := complex(r.NormFloat64(), r.NormFloat64())
			if i == j {
				c = complex(real(c), 0)
			}
			h.AddHermitian(c, Op{i, true}, Op{j, false})
		}
		return h.Majorana(1e-12).IsHermitian(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMajoranaTermOrderingInvariance(t *testing.T) {
	// Writing the same physical term with operators in different orders
	// (with the fermionic sign) gives the same expansion.
	a := NewHamiltonian(3)
	a.Add(1, Op{0, true}, Op{2, false})
	b := NewHamiltonian(3)
	b.Add(-1, Op{2, false}, Op{0, true}) // anticommute: a†_0 a_2 = −a_2 a†_0 (distinct modes)
	am, bm := a.Majorana(1e-12), b.Majorana(1e-12)
	if len(am.Terms) != len(bm.Terms) {
		t.Fatal("expansions differ in shape")
	}
	for i := range am.Terms {
		if cmplx.Abs(am.Terms[i].Coeff-bm.Terms[i].Coeff) > 1e-12 {
			t.Fatal("expansions differ in coefficients")
		}
	}
}
