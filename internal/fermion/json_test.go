package fermion

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	h := NewHamiltonian(3)
	h.Add(complex(1.5, -0.5), Op{0, true}, Op{1, false})
	h.AddHermitian(0.7, Op{2, true}, Op{0, false})
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Hamiltonian
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Modes != h.Modes || back.NumTerms() != h.NumTerms() {
		t.Fatalf("round trip shape mismatch: %d/%d vs %d/%d",
			back.Modes, back.NumTerms(), h.Modes, h.NumTerms())
	}
	for i := range h.Terms {
		if back.Terms[i].Coeff != h.Terms[i].Coeff {
			t.Fatalf("term %d coeff mismatch", i)
		}
		if !opsEqual(back.Terms[i].Ops, h.Terms[i].Ops) {
			t.Fatalf("term %d ops mismatch", i)
		}
	}
	// Majorana expansions must agree exactly.
	a, b := h.Majorana(1e-14), back.Majorana(1e-14)
	if len(a.Terms) != len(b.Terms) {
		t.Fatal("Majorana expansions differ")
	}
}

func TestJSONReadWrite(t *testing.T) {
	h := Number(2, 1)
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"modes\"") {
		t.Errorf("missing modes field:\n%s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Modes != 2 || back.NumTerms() != 1 {
		t.Fatalf("read back %d modes %d terms", back.Modes, back.NumTerms())
	}
}

func TestJSONValidation(t *testing.T) {
	cases := []string{
		`{"modes": 0, "terms": []}`,
		`{"modes": 2, "terms": [{"coeff": [1,0], "ops": [{"mode": 5, "dagger": true}]}]}`,
		`{"modes": 2, "terms": [{`,
	}
	for _, c := range cases {
		var h Hamiltonian
		if err := json.Unmarshal([]byte(c), &h); err == nil {
			t.Errorf("accepted invalid input %q", c)
		}
	}
}

func TestJSONEmptyTermList(t *testing.T) {
	var h Hamiltonian
	if err := json.Unmarshal([]byte(`{"modes": 3, "terms": []}`), &h); err != nil {
		t.Fatal(err)
	}
	if h.Modes != 3 || h.NumTerms() != 0 {
		t.Fatalf("empty Hamiltonian wrong: %d/%d", h.Modes, h.NumTerms())
	}
}
