// Package fermion implements second-quantized fermionic operators and
// Hamiltonians, plus their expansion into Majorana monomials (Eq. 2 of the
// paper):
//
//	a†_j = (M_{2j} − i·M_{2j+1}) / 2
//	a_j  = (M_{2j} + i·M_{2j+1}) / 2
//
// A fermionic Hamiltonian is a weighted sum of products of creation and
// annihilation operators. The Majorana expansion normal-orders Majorana
// monomials using M_i² = 1 and M_i M_j = −M_j M_i (i≠j) and collects equal
// monomials, producing the preprocessed Hamiltonian H_Q that the HATT
// construction (and every other mapping) consumes.
package fermion

import (
	"fmt"
	"math/cmplx"
	"sort"
	"strings"
)

// Op is a single creation (Dagger) or annihilation operator on a mode.
type Op struct {
	Mode   int
	Dagger bool
}

// String renders the operator, e.g. "a†3" or "a1".
func (o Op) String() string {
	if o.Dagger {
		return fmt.Sprintf("a†%d", o.Mode)
	}
	return fmt.Sprintf("a%d", o.Mode)
}

// Term is a weighted product of creation/annihilation operators, applied
// right-to-left (Ops[0] is the leftmost operator, matching written order).
type Term struct {
	Coeff complex128
	Ops   []Op
}

// Hamiltonian is a second-quantized fermionic Hamiltonian on Modes modes.
type Hamiltonian struct {
	Modes int
	Terms []Term
}

// NewHamiltonian returns an empty Hamiltonian on n modes.
func NewHamiltonian(n int) *Hamiltonian {
	if n <= 0 {
		panic("fermion: mode count must be positive")
	}
	return &Hamiltonian{Modes: n}
}

// Add appends the term c·ops to the Hamiltonian. Ops are given in written
// (left-to-right) order. Panics if a mode is out of range.
func (h *Hamiltonian) Add(c complex128, ops ...Op) {
	for _, o := range ops {
		if o.Mode < 0 || o.Mode >= h.Modes {
			panic(fmt.Sprintf("fermion: mode %d out of range [0,%d)", o.Mode, h.Modes))
		}
	}
	cp := make([]Op, len(ops))
	copy(cp, ops)
	h.Terms = append(h.Terms, Term{Coeff: c, Ops: cp})
}

// AddHermitian adds c·ops plus its Hermitian conjugate conj(c)·ops†
// (operators reversed, daggers flipped). If the term is its own conjugate
// — same operator sequence after conjugation and real coefficient — it is
// added only once.
func (h *Hamiltonian) AddHermitian(c complex128, ops ...Op) {
	h.Add(c, ops...)
	conj := make([]Op, len(ops))
	for i, o := range ops {
		conj[len(ops)-1-i] = Op{Mode: o.Mode, Dagger: !o.Dagger}
	}
	if opsEqual(ops, conj) && imag(c) == 0 {
		return
	}
	h.Add(cmplx.Conj(c), conj...)
}

func opsEqual(a, b []Op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NumTerms returns the number of stored second-quantized terms.
func (h *Hamiltonian) NumTerms() int { return len(h.Terms) }

// String renders the Hamiltonian in written form.
func (h *Hamiltonian) String() string {
	parts := make([]string, 0, len(h.Terms))
	for _, t := range h.Terms {
		var b strings.Builder
		fmt.Fprintf(&b, "(%.4g%+.4gi)", real(t.Coeff), imag(t.Coeff))
		for _, o := range t.Ops {
			b.WriteString(" ")
			b.WriteString(o.String())
		}
		parts = append(parts, b.String())
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

// MajoranaTerm is a weighted normal-ordered Majorana monomial: Coeff times
// the ordered product Π M_i over the strictly increasing Indices.
type MajoranaTerm struct {
	Coeff   complex128
	Indices []int // strictly increasing; empty means the identity
}

// MajoranaHamiltonian is the Majorana-monomial form of a fermionic
// Hamiltonian on 2·Modes Majorana operators.
type MajoranaHamiltonian struct {
	Modes int
	Terms []MajoranaTerm
}

// NumMajoranas returns 2·Modes.
func (m *MajoranaHamiltonian) NumMajoranas() int { return 2 * m.Modes }

// monomial is a mutable Majorana monomial during expansion.
type monomial struct {
	coeff   complex128
	indices []int // arbitrary order until normalized
}

// normalize sorts indices with anticommutation sign tracking and cancels
// adjacent equal pairs (M² = 1). Returns the strictly-increasing index set
// and the signed coefficient.
func (m monomial) normalize() MajoranaTerm {
	idx := make([]int, len(m.indices))
	copy(idx, m.indices)
	sign := 1
	// Insertion sort, counting inversions (each adjacent swap flips sign).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j-1] > idx[j]; j-- {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			sign = -sign
		}
	}
	// Cancel equal adjacent pairs: M_i·M_i = 1.
	out := idx[:0]
	for i := 0; i < len(idx); {
		if i+1 < len(idx) && idx[i] == idx[i+1] {
			i += 2
			continue
		}
		out = append(out, idx[i])
		i++
	}
	c := m.coeff
	if sign < 0 {
		c = -c
	}
	res := make([]int, len(out))
	copy(res, out)
	return MajoranaTerm{Coeff: c, Indices: res}
}

func indexKey(idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		fmt.Fprintf(&b, "%d,", i)
	}
	return b.String()
}

// Majorana expands the Hamiltonian into normal-ordered Majorana monomials,
// merging equal monomials and dropping those whose coefficients cancel
// below eps. This is the "preprocess" step of Algorithm 1.
func (h *Hamiltonian) Majorana(eps float64) *MajoranaHamiltonian {
	acc := make(map[string]MajoranaTerm)
	for _, t := range h.Terms {
		// Expand each op into its two Majorana components:
		// a†_j = (M_{2j} − i·M_{2j+1})/2 ; a_j = (M_{2j} + i·M_{2j+1})/2.
		monos := []monomial{{coeff: t.Coeff}}
		for _, o := range t.Ops {
			next := make([]monomial, 0, 2*len(monos))
			sgn := complex(0, 0.5) // +i/2 for a
			if o.Dagger {
				sgn = complex(0, -0.5) // −i/2 for a†
			}
			for _, m := range monos {
				m1 := monomial{coeff: m.coeff * 0.5, indices: appendCopy(m.indices, 2*o.Mode)}
				m2 := monomial{coeff: m.coeff * sgn, indices: appendCopy(m.indices, 2*o.Mode+1)}
				next = append(next, m1, m2)
			}
			monos = next
		}
		for _, m := range monos {
			nt := m.normalize()
			k := indexKey(nt.Indices)
			prev, ok := acc[k]
			if ok {
				nt.Coeff += prev.Coeff
			}
			acc[k] = nt
		}
	}
	out := &MajoranaHamiltonian{Modes: h.Modes}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t := acc[k]
		if cmplx.Abs(t.Coeff) <= eps {
			continue
		}
		out.Terms = append(out.Terms, t)
	}
	return out
}

func appendCopy(s []int, v int) []int {
	r := make([]int, len(s), len(s)+1)
	copy(r, s)
	return append(r, v)
}

// IsHermitian reports whether the Majorana Hamiltonian is Hermitian within
// eps: a monomial of k Majoranas conjugates to itself times (−1)^{k(k−1)/2},
// so Hermiticity requires Coeff·(−1)^{k(k−1)/2} to equal conj(Coeff).
func (m *MajoranaHamiltonian) IsHermitian(eps float64) bool {
	for _, t := range m.Terms {
		k := len(t.Indices)
		sign := complex128(1)
		if (k*(k-1)/2)%2 == 1 {
			sign = -1
		}
		if cmplx.Abs(t.Coeff*sign-cmplx.Conj(t.Coeff)) > eps {
			return false
		}
	}
	return true
}

// String renders the Majorana Hamiltonian.
func (m *MajoranaHamiltonian) String() string {
	parts := make([]string, 0, len(m.Terms))
	for _, t := range m.Terms {
		var b strings.Builder
		fmt.Fprintf(&b, "(%.4g%+.4gi)", real(t.Coeff), imag(t.Coeff))
		if len(t.Indices) == 0 {
			b.WriteString("·1")
		}
		for _, i := range t.Indices {
			fmt.Fprintf(&b, "·M%d", i)
		}
		parts = append(parts, b.String())
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

// IndexSets returns the non-identity monomial index sets, used to seed the
// HATT weight oracle. Identity monomials (constants) are skipped: they
// contribute no Pauli weight.
func (m *MajoranaHamiltonian) IndexSets() [][]int {
	var out [][]int
	for _, t := range m.Terms {
		if len(t.Indices) == 0 {
			continue
		}
		out = append(out, t.Indices)
	}
	return out
}

// A convenience constructor set for tests and examples.

// Number returns the number operator a†_j a_j as a Hamiltonian fragment.
func Number(n, j int) *Hamiltonian {
	h := NewHamiltonian(n)
	h.Add(1, Op{j, true}, Op{j, false})
	return h
}

// Hop returns the Hermitian hopping term t·(a†_i a_j + a†_j a_i).
func Hop(n int, t float64, i, j int) *Hamiltonian {
	h := NewHamiltonian(n)
	h.AddHermitian(complex(t, 0), Op{i, true}, Op{j, false})
	return h
}

// Merge appends all terms of g into h (same mode count required).
func (h *Hamiltonian) Merge(g *Hamiltonian) {
	if g.Modes != h.Modes {
		panic("fermion: Merge mode mismatch")
	}
	h.Terms = append(h.Terms, g.Terms...)
}
