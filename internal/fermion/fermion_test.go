package fermion

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func coeffOf(m *MajoranaHamiltonian, idx ...int) complex128 {
	k := indexKey(idx)
	for _, t := range m.Terms {
		if indexKey(t.Indices) == k {
			return t.Coeff
		}
	}
	return 0
}

func TestNumberOperatorExpansion(t *testing.T) {
	// a†_0 a_0 = 1/2 + (i/2)·M0M1
	m := Number(1, 0).Majorana(1e-14)
	if c := coeffOf(m); cmplx.Abs(c-0.5) > 1e-12 {
		t.Errorf("identity coeff = %v, want 0.5", c)
	}
	if c := coeffOf(m, 0, 1); cmplx.Abs(c-complex(0, 0.5)) > 1e-12 {
		t.Errorf("M0M1 coeff = %v, want 0.5i", c)
	}
	if len(m.Terms) != 2 {
		t.Errorf("terms = %d, want 2", len(m.Terms))
	}
}

func TestPaperEquation3(t *testing.T) {
	// HF = a†0a0 + 2·a†1a†2a1a2
	//    = const + 0.5i·M0M1 − 0.5i·M2M3 − 0.5i·M4M5 + 0.5·M2M3M4M5
	h := NewHamiltonian(3)
	h.Add(1, Op{0, true}, Op{0, false})
	h.Add(2, Op{1, true}, Op{2, true}, Op{1, false}, Op{2, false})
	m := h.Majorana(1e-14)
	checks := []struct {
		idx  []int
		want complex128
	}{
		{[]int{0, 1}, complex(0, 0.5)},
		{[]int{2, 3}, complex(0, -0.5)},
		{[]int{4, 5}, complex(0, -0.5)},
		{[]int{2, 3, 4, 5}, complex(0.5, 0)},
	}
	for _, c := range checks {
		if got := coeffOf(m, c.idx...); cmplx.Abs(got-c.want) > 1e-12 {
			t.Errorf("coeff%v = %v, want %v", c.idx, got, c.want)
		}
	}
	sets := m.IndexSets()
	if len(sets) != 4 {
		t.Errorf("IndexSets = %d entries, want 4 (identity dropped)", len(sets))
	}
	if !m.IsHermitian(1e-12) {
		t.Error("Eq. 3 Hamiltonian should be Hermitian")
	}
}

func TestNormalizeAnticommutation(t *testing.T) {
	// M1·M0 = −M0·M1
	m := monomial{coeff: 1, indices: []int{1, 0}}
	nt := m.normalize()
	if cmplx.Abs(nt.Coeff+1) > 1e-12 {
		t.Errorf("coeff = %v, want -1", nt.Coeff)
	}
	if len(nt.Indices) != 2 || nt.Indices[0] != 0 || nt.Indices[1] != 1 {
		t.Errorf("indices = %v", nt.Indices)
	}
}

func TestNormalizeSquareCancels(t *testing.T) {
	// M2·M2 = 1 and M3·M2·M2 = M3.
	nt := monomial{coeff: 2, indices: []int{2, 2}}.normalize()
	if len(nt.Indices) != 0 || cmplx.Abs(nt.Coeff-2) > 1e-12 {
		t.Errorf("M2M2 = %v·%v", nt.Coeff, nt.Indices)
	}
	nt = monomial{coeff: 1, indices: []int{3, 2, 2}}.normalize()
	if len(nt.Indices) != 1 || nt.Indices[0] != 3 {
		t.Errorf("M3M2M2 = %v·%v", nt.Coeff, nt.Indices)
	}
	if cmplx.Abs(nt.Coeff-1) > 1e-12 {
		t.Errorf("M3M2M2 coeff = %v, want 1", nt.Coeff)
	}
	// M2·M3·M2 = −M3·M2·M2 = −M3.
	nt = monomial{coeff: 1, indices: []int{2, 3, 2}}.normalize()
	if len(nt.Indices) != 1 || nt.Indices[0] != 3 || cmplx.Abs(nt.Coeff+1) > 1e-12 {
		t.Errorf("M2M3M2 = %v·%v, want -1·[3]", nt.Coeff, nt.Indices)
	}
}

func TestNormalizeQuadruple(t *testing.T) {
	// M3M1M2M0 → sort to M0M1M2M3; permutation (3,1,2,0) has 5 inversions
	// → sign −1.
	nt := monomial{coeff: 1, indices: []int{3, 1, 2, 0}}.normalize()
	if cmplx.Abs(nt.Coeff+1) > 1e-12 {
		t.Errorf("coeff = %v, want -1", nt.Coeff)
	}
}

func TestAddHermitianHopping(t *testing.T) {
	h := Hop(2, 0.7, 0, 1)
	if h.NumTerms() != 2 {
		t.Fatalf("hop terms = %d, want 2", h.NumTerms())
	}
	m := h.Majorana(1e-14)
	if !m.IsHermitian(1e-12) {
		t.Error("hopping should be Hermitian")
	}
	// a†0a1 + a†1a0 = (i/2)(M0M3... ) — just check all coeffs are ±i/2·…
	// with total 4 quadratic monomials of imaginary coefficient.
	for _, term := range m.Terms {
		if len(term.Indices) != 2 {
			t.Errorf("unexpected monomial %v", term.Indices)
		}
	}
}

func TestAddHermitianSelfConjugateNotDoubled(t *testing.T) {
	// a†_j a_j is its own conjugate: AddHermitian must add it once.
	h := NewHamiltonian(1)
	h.AddHermitian(1, Op{0, true}, Op{0, false})
	if h.NumTerms() != 1 {
		t.Fatalf("self-conjugate term doubled: %d terms", h.NumTerms())
	}
	// A complex-coefficient diagonal term must still get its conjugate.
	h2 := NewHamiltonian(1)
	h2.AddHermitian(complex(0, 1), Op{0, true}, Op{0, false})
	if h2.NumTerms() != 2 {
		t.Fatalf("complex diagonal term not conjugated: %d terms", h2.NumTerms())
	}
}

func TestVanishingTermsCancel(t *testing.T) {
	// a_0 a_0 = 0 identically, so the Majorana expansion must cancel.
	h := NewHamiltonian(1)
	h.Add(1, Op{0, false}, Op{0, false})
	m := h.Majorana(1e-14)
	if len(m.Terms) != 0 {
		t.Errorf("a0·a0 should vanish, got %s", m)
	}
}

func TestAnticommutatorIdentity(t *testing.T) {
	// {a_i, a†_i} = 1: expand a_0 a†_0 + a†_0 a_0 and check it equals
	// the identity monomial with coefficient 1.
	h := NewHamiltonian(2)
	h.Add(1, Op{0, false}, Op{0, true})
	h.Add(1, Op{0, true}, Op{0, false})
	m := h.Majorana(1e-14)
	if len(m.Terms) != 1 || len(m.Terms[0].Indices) != 0 {
		t.Fatalf("anticommutator = %s, want identity", m)
	}
	if cmplx.Abs(m.Terms[0].Coeff-1) > 1e-12 {
		t.Fatalf("coeff = %v, want 1", m.Terms[0].Coeff)
	}
	// {a_0, a†_1} = 0 for distinct modes.
	h2 := NewHamiltonian(2)
	h2.Add(1, Op{0, false}, Op{1, true})
	h2.Add(1, Op{1, true}, Op{0, false})
	if m2 := h2.Majorana(1e-14); len(m2.Terms) != 0 {
		t.Fatalf("cross anticommutator = %s, want 0", m2)
	}
}

func TestExpansionTermCountProperty(t *testing.T) {
	// A single product of k distinct-mode operators expands into at most 2^k
	// monomials, all with k Majorana indices.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(4)
		k := 1 + r.Intn(3)
		perm := r.Perm(n)[:k]
		h := NewHamiltonian(n)
		ops := make([]Op, k)
		for i, mode := range perm {
			ops[i] = Op{Mode: mode, Dagger: r.Intn(2) == 0}
		}
		h.Add(1, ops...)
		m := h.Majorana(1e-14)
		if len(m.Terms) > 1<<k {
			return false
		}
		for _, term := range m.Terms {
			if len(term.Indices) != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMergeAndString(t *testing.T) {
	a := Number(2, 0)
	b := Number(2, 1)
	a.Merge(b)
	if a.NumTerms() != 2 {
		t.Fatalf("merged terms = %d", a.NumTerms())
	}
	if s := a.String(); s == "" || s == "0" {
		t.Errorf("String() = %q", s)
	}
	m := a.Majorana(1e-14)
	if s := m.String(); s == "" || s == "0" {
		t.Errorf("Majorana String() = %q", s)
	}
}

func TestModeRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range mode did not panic")
		}
	}()
	h := NewHamiltonian(2)
	h.Add(1, Op{5, true})
}
