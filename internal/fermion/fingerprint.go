package fermion

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a 128-bit content hash of the Majorana Hamiltonian
// as a 32-character hex string: the mode count plus every term's index
// set and coefficient, in term order, hashed with SHA-256 and truncated.
// Two Hamiltonians with equal fingerprints are, for all practical
// purposes, the same operator, which makes the fingerprint usable as a
// content-addressed cache key for compiled mappings (see internal/store).
//
// The encoding is self-delimiting (every index set is length-prefixed),
// so distinct term structures can never serialize identically.
func (m *MajoranaHamiltonian) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	put := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	put(uint64(m.Modes))
	for _, t := range m.Terms {
		put(uint64(len(t.Indices)))
		for _, i := range t.Indices {
			put(uint64(i))
		}
		put(math.Float64bits(real(t.Coeff)))
		put(math.Float64bits(imag(t.Coeff)))
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
