package lru

import "testing"

func TestEvictionOrder(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // a becomes MRU, b is now LRU
		t.Fatal("a missing")
	}
	if n := c.Put("c", 3); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU b not evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatal("recently used a evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestPutRefreshesInPlace(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if n := c.Put("a", 10); n != 0 {
		t.Fatalf("refresh evicted %d entries", n)
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("refresh lost the new value: %d", v)
	}
	// The refresh made a MRU; inserting evicts b.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been the LRU")
	}
}

func TestReset(t *testing.T) {
	c := New[int, int](4)
	for i := 0; i < 4; i++ {
		c.Put(i, i)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("len after reset = %d", c.Len())
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("entry survived reset")
	}
	c.Put(9, 9) // still usable at the same capacity
	if v, ok := c.Get(9); !ok || v != 9 {
		t.Fatal("cache unusable after reset")
	}
}

func TestCapacityOnePanicOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 accepted")
		}
	}()
	New[int, int](0)
}
