// Package lru is the one LRU implementation shared by every bounded
// cache in this repository (the core build memo, the mapping store's
// memory tier). It is deliberately minimal: a recency list plus an
// index, no locking — each caller already serializes access under its
// own mutex and layers its own semantics (single-flight, counters,
// disk tiers) on top.
package lru

import "container/list"

// Cache is a bounded map with least-recently-used eviction. Not safe
// for concurrent use; guard it with the owning cache's lock.
type Cache[K comparable, V any] struct {
	cap   int
	ll    *list.List // front = most recently used
	items map[K]*list.Element
}

type node[K comparable, V any] struct {
	key K
	val V
}

// New returns a cache bounded to capacity entries (capacity < 1 panics:
// an unbounded "LRU" is a bug at the call site).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		panic("lru: non-positive capacity")
	}
	return &Cache[K, V]{cap: capacity, ll: list.New(), items: make(map[K]*list.Element)}
}

// Get returns the value under k, marking it most recently used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*node[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Put stores v under k — refreshing in place if the key is resident —
// and evicts from the LRU tail past capacity, returning how many
// entries were evicted (0 or 1 in steady state).
func (c *Cache[K, V]) Put(k K, v V) (evicted int) {
	if el, ok := c.items[k]; ok {
		el.Value.(*node[K, V]).val = v
		c.ll.MoveToFront(el)
		return 0
	}
	c.items[k] = c.ll.PushFront(&node[K, V]{key: k, val: v})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*node[K, V]).key)
		evicted++
	}
	return evicted
}

// Len returns the resident entry count.
func (c *Cache[K, V]) Len() int { return c.ll.Len() }

// Reset empties the cache, keeping its capacity.
func (c *Cache[K, V]) Reset() {
	c.ll = list.New()
	c.items = make(map[K]*list.Element)
}
