// Package taper implements Z₂-symmetry qubit tapering (Bravyi, Gambetta,
// Mezzacapo & Temme, "Tapering off qubits to simulate fermionic
// Hamiltonians" — reference [4] of the paper). Qubit Hamiltonians produced
// by fermion-to-qubit mappings carry global symmetries (particle-number
// parity per spin species, etc.); each independent symmetry lets one qubit
// be removed after a Clifford rotation, shrinking every mapping's circuits
// for free. This is the reduction machinery behind the paper's
// freeze-core-style workflow variants.
package taper

import (
	"context"
	"fmt"
	"math"

	"repro/internal/pauli"
)

// Symmetry is one tapered Z₂ generator: Tau commutes with every
// Hamiltonian term; after the Clifford rotation it becomes X on Qubit,
// whose eigenvalue Sector (±1) labels the symmetry block.
type Symmetry struct {
	Tau    pauli.String
	Qubit  int
	Sector int
}

// FindSymmetries returns a maximal set of independent, pairwise-commuting,
// non-identity Pauli strings that commute with every term of h: the GF(2)
// kernel of the term matrix under the symplectic form, greedily filtered
// to a mutually commuting subset.
func FindSymmetries(h *pauli.Hamiltonian) []pauli.String {
	n := h.N()
	terms := h.Terms()
	// Constraint: for candidate τ with bit vector v = (z_τ | x_τ):
	// Σ_q x_i(q)·z_τ(q) + z_i(q)·x_τ(q) ≡ 0 for every term i.
	cols := 2 * n
	var rows [][]uint64
	words := (cols + 63) / 64
	for _, t := range terms {
		if t.S.IsIdentity() {
			continue
		}
		row := make([]uint64, words)
		for q := 0; q < n; q++ {
			switch t.S.Letter(q) {
			case pauli.X:
				row[q/64] |= 1 << uint(q%64) // multiplies z_τ(q)
			case pauli.Z:
				row[(n+q)/64] |= 1 << uint((n+q)%64) // multiplies x_τ(q)
			case pauli.Y:
				row[q/64] |= 1 << uint(q%64)
				row[(n+q)/64] |= 1 << uint((n+q)%64)
			}
		}
		rows = append(rows, row)
	}
	kernel := gf2Kernel(rows, cols)
	// Reconstruct strings: v = (z | x).
	var cands []pauli.String
	for _, v := range kernel {
		s := pauli.Identity(n)
		for q := 0; q < n; q++ {
			zbit := v[q/64]>>uint(q%64)&1 == 1
			xbit := v[(n+q)/64]>>uint((n+q)%64)&1 == 1
			switch {
			case xbit && zbit:
				s.SetLetter(q, pauli.Y)
			case xbit:
				s.SetLetter(q, pauli.X)
			case zbit:
				s.SetLetter(q, pauli.Z)
			}
		}
		if !s.IsIdentity() {
			cands = append(cands, s)
		}
	}
	// Keep a pairwise-commuting subset (kernel vectors need not commute
	// with each other).
	var out []pauli.String
	for _, c := range cands {
		ok := true
		for _, o := range out {
			if !c.Commutes(o) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// gf2Kernel returns a basis of {v : A·v = 0} over GF(2).
func gf2Kernel(rows [][]uint64, cols int) [][]uint64 {
	words := (cols + 63) / 64
	// Row-reduce A, tracking pivot columns.
	a := make([][]uint64, len(rows))
	for i := range rows {
		a[i] = append([]uint64{}, rows[i]...)
	}
	pivotOfCol := make([]int, cols)
	for i := range pivotOfCol {
		pivotOfCol[i] = -1
	}
	rank := 0
	for c := 0; c < cols && rank < len(a); c++ {
		sel := -1
		for r := rank; r < len(a); r++ {
			if a[r][c/64]>>uint(c%64)&1 == 1 {
				sel = r
				break
			}
		}
		if sel < 0 {
			continue
		}
		a[rank], a[sel] = a[sel], a[rank]
		for r := 0; r < len(a); r++ {
			if r != rank && a[r][c/64]>>uint(c%64)&1 == 1 {
				for w := 0; w < words; w++ {
					a[r][w] ^= a[rank][w]
				}
			}
		}
		pivotOfCol[c] = rank
		rank++
	}
	// Free columns generate the kernel.
	var kernel [][]uint64
	for c := 0; c < cols; c++ {
		if pivotOfCol[c] != -1 {
			continue
		}
		v := make([]uint64, words)
		v[c/64] |= 1 << uint(c%64)
		// Back-substitute: for each pivot column p with row r, bit p of v
		// equals a[r]'s entry at column c.
		for p := 0; p < cols; p++ {
			r := pivotOfCol[p]
			if r == -1 {
				continue
			}
			if a[r][c/64]>>uint(c%64)&1 == 1 {
				v[p/64] |= 1 << uint(p%64)
			}
		}
		kernel = append(kernel, v)
	}
	return kernel
}

// chooseQubits assigns each symmetry a distinct qubit where its letter
// anticommutes with X (Z or Y) and every other symmetry's letter commutes
// with X (I or X). Returns an error when no valid assignment exists.
func chooseQubits(taus []pauli.String) ([]int, error) {
	n := 0
	if len(taus) > 0 {
		n = taus[0].N()
	}
	qubits := make([]int, len(taus))
	used := make([]bool, n)
	for i, tau := range taus {
		found := -1
		for q := 0; q < n && found < 0; q++ {
			if used[q] {
				continue
			}
			l := tau.Letter(q)
			if l != pauli.Z && l != pauli.Y {
				continue
			}
			ok := true
			for j, other := range taus {
				if j == i {
					continue
				}
				if lo := other.Letter(q); lo == pauli.Z || lo == pauli.Y {
					ok = false
					break
				}
			}
			if ok {
				found = q
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("taper: no rotation qubit for symmetry %s", tau)
		}
		qubits[i] = found
		used[found] = true
	}
	return qubits, nil
}

// rotate conjugates h by U = (X_q + τ)/√2: terms commuting with X_q are
// unchanged; terms anticommuting with it map to −P·X_q·τ. The symmetry τ
// itself maps to +X_q.
func rotate(h *pauli.Hamiltonian, tau pauli.String, q int) *pauli.Hamiltonian {
	n := h.N()
	sigma := pauli.Identity(n)
	sigma.SetLetter(q, pauli.X)
	out := pauli.NewHamiltonian(n)
	for _, t := range h.Terms() {
		if t.S.Commutes(sigma) {
			out.Add(t.Coeff, t.S)
			continue
		}
		out.Add(-t.Coeff, t.S.Mul(sigma).Mul(tau))
	}
	return out
}

// Result bundles a tapering outcome.
type Result struct {
	Reduced    *pauli.Hamiltonian // on n − k qubits
	Symmetries []Symmetry
	// KeptQubits[i] is the original index of reduced qubit i.
	KeptQubits []int
}

// TaperSector rotates every symmetry onto its qubit, substitutes the given
// sector eigenvalues (±1), and drops the symmetry qubits. len(sectors)
// must equal the number of symmetries found; use FindSymmetries to inspect
// them first.
func TaperSector(h *pauli.Hamiltonian, taus []pauli.String, sectors []int) (*Result, error) {
	if len(sectors) != len(taus) {
		return nil, fmt.Errorf("taper: %d sectors for %d symmetries", len(sectors), len(taus))
	}
	qubits, err := chooseQubits(taus)
	if err != nil {
		return nil, err
	}
	n := h.N()
	cur := h
	for i, tau := range taus {
		cur = rotate(cur, tau, qubits[i])
	}
	// Substitute X_{q_i} → sector_i and drop those qubits.
	drop := make(map[int]int) // qubit -> symmetry index
	for i, q := range qubits {
		drop[q] = i
	}
	var kept []int
	for q := 0; q < n; q++ {
		if _, isSym := drop[q]; !isSym {
			kept = append(kept, q)
		}
	}
	newIdx := make(map[int]int)
	for i, q := range kept {
		newIdx[q] = i
	}
	red := pauli.NewHamiltonian(len(kept))
	for _, t := range cur.Terms() {
		c := t.Coeff
		s := pauli.Identity(len(kept))
		for _, q := range t.S.Support() {
			l := t.S.Letter(q)
			if si, isSym := drop[q]; isSym {
				if l != pauli.X {
					return nil, fmt.Errorf("taper: residual %v on symmetry qubit %d (term %s)", l, q, t.S)
				}
				if sectors[si] < 0 {
					c = -c
				}
				continue
			}
			s.SetLetter(newIdx[q], l)
		}
		red.Add(c, s)
	}
	red.Prune(1e-12)
	syms := make([]Symmetry, len(taus))
	for i := range taus {
		syms[i] = Symmetry{Tau: taus[i], Qubit: qubits[i], Sector: sectors[i]}
	}
	return &Result{Reduced: red, Symmetries: syms, KeptQubits: kept}, nil
}

// GroundSector runs GroundSectorCtx with a background context.
func GroundSector(h *pauli.Hamiltonian, groundEnergy func(*pauli.Hamiltonian) float64) (*Result, float64, error) {
	return GroundSectorCtx(context.Background(), h, groundEnergy)
}

// GroundSectorCtx tries every sector assignment (2^k, guarded to k ≤ 12)
// and returns the tapering whose reduced ground energy matches the global
// minimum, together with that energy. groundEnergy is a caller-provided
// oracle (e.g. linalg.GroundEnergy) so this package stays dependency-free.
// The context is checked before each sector's eigensolve; on cancellation
// the sweep stops and returns ctx.Err().
func GroundSectorCtx(ctx context.Context, h *pauli.Hamiltonian, groundEnergy func(*pauli.Hamiltonian) float64) (*Result, float64, error) {
	taus := FindSymmetries(h)
	if len(taus) == 0 {
		return nil, 0, fmt.Errorf("taper: no symmetries found")
	}
	if len(taus) > 12 {
		return nil, 0, fmt.Errorf("taper: %d symmetries exceed the sector-sweep guard", len(taus))
	}
	bestE := math.Inf(1)
	var best *Result
	for bitsV := 0; bitsV < 1<<uint(len(taus)); bitsV++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		sectors := make([]int, len(taus))
		for i := range sectors {
			if bitsV>>uint(i)&1 == 1 {
				sectors[i] = -1
			} else {
				sectors[i] = 1
			}
		}
		res, err := TaperSector(h, taus, sectors)
		if err != nil {
			return nil, 0, err
		}
		if e := groundEnergy(res.Reduced); e < bestE {
			bestE = e
			best = res
		}
	}
	return best, bestE, nil
}
