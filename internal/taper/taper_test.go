package taper

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/pauli"
)

func TestFindSymmetriesCommute(t *testing.T) {
	hq := mapping.JordanWigner(4).ApplyFermionic(models.H2STO3G())
	taus := FindSymmetries(hq)
	if len(taus) == 0 {
		t.Fatal("H2/JW should have Z2 symmetries (spin parities)")
	}
	for _, tau := range taus {
		if tau.IsIdentity() {
			t.Fatal("identity returned as symmetry")
		}
		for _, term := range hq.Terms() {
			if !tau.Commutes(term.S) {
				t.Fatalf("symmetry %s does not commute with term %s", tau, term.S)
			}
		}
		// Pairwise commuting.
		for _, o := range taus {
			if !tau.Commutes(o) {
				t.Fatalf("symmetries %s and %s anticommute", tau, o)
			}
		}
	}
}

func TestRotatePreservesSpectrum(t *testing.T) {
	hq := mapping.JordanWigner(3).ApplyFermionic(fermion.Number(3, 1))
	// Use a simple diagonal Hamiltonian with symmetry Z on qubit 0.
	h := pauli.NewHamiltonian(3)
	h.Add(1, pauli.MustParse("ZZI"))
	h.Add(0.5, pauli.MustParse("IZZ"))
	tau := pauli.MustParse("ZII")
	rot := rotate(h, tau, 2)
	evA := linalg.EigenvaluesHermitian(linalg.Matrix(h))
	evB := linalg.EigenvaluesHermitian(linalg.Matrix(rot))
	if !linalg.SpectraClose(evA, evB, 1e-8) {
		t.Errorf("rotation changed spectrum:\n%v\n%v", evA, evB)
	}
	_ = hq
}

func TestTaperH2PreservesGroundEnergy(t *testing.T) {
	hq := mapping.JordanWigner(4).ApplyFermionic(models.H2STO3G())
	full := linalg.GroundEnergy(hq)
	res, e, err := GroundSector(hq, linalg.GroundEnergy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced.N() >= hq.N() {
		t.Fatalf("tapering removed no qubits: %d → %d", hq.N(), res.Reduced.N())
	}
	if math.Abs(e-full) > 1e-7 {
		t.Fatalf("tapered ground energy %v != full %v", e, full)
	}
	t.Logf("H2: %d qubits → %d qubits, E0 = %.6f", hq.N(), res.Reduced.N(), e)
}

func TestTaperSpectrumIsSubset(t *testing.T) {
	// Every eigenvalue of the tapered Hamiltonian must be an eigenvalue of
	// the full one (within tolerance).
	hq := mapping.BravyiKitaev(4).ApplyFermionic(models.H2STO3G())
	taus := FindSymmetries(hq)
	if len(taus) == 0 {
		t.Skip("no symmetries under BK for this instance")
	}
	sectors := make([]int, len(taus))
	for i := range sectors {
		sectors[i] = 1
	}
	res, err := TaperSector(hq, taus, sectors)
	if err != nil {
		t.Fatal(err)
	}
	evFull := linalg.EigenvaluesHermitian(linalg.Matrix(hq))
	evRed := linalg.EigenvaluesHermitian(linalg.Matrix(res.Reduced))
	for _, e := range evRed {
		found := false
		for _, f := range evFull {
			if math.Abs(e-f) < 1e-6 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("tapered eigenvalue %v not in full spectrum", e)
		}
	}
}

func TestTaperHubbardWithHATT(t *testing.T) {
	// Tapering composes with HATT: the HATT-mapped 1×2 Hubbard model has
	// spin-parity symmetries; tapering must preserve the ground energy.
	mh := models.FermiHubbard(1, 2, 1, 4).Majorana(1e-12)
	hq := core.Build(mh).Mapping.Apply(mh)
	full := linalg.GroundEnergy(hq)
	res, e, err := GroundSector(hq, linalg.GroundEnergy)
	if err != nil {
		t.Skipf("no tapering available: %v", err)
	}
	if math.Abs(e-full) > 1e-7 {
		t.Fatalf("tapered %v != full %v", e, full)
	}
	if res.Reduced.N() >= hq.N() {
		t.Fatal("no qubits removed")
	}
}

func TestTaperSectorValidation(t *testing.T) {
	h := pauli.NewHamiltonian(2)
	h.Add(1, pauli.MustParse("ZZ"))
	taus := FindSymmetries(h)
	if len(taus) == 0 {
		t.Fatal("ZZ has symmetries")
	}
	if _, err := TaperSector(h, taus, []int{}); err == nil {
		t.Error("sector count mismatch accepted")
	}
}

func TestGF2KernelBasics(t *testing.T) {
	// Matrix [1 1 0; 0 1 1] over GF(2): kernel = span{(1,1,1)}.
	rows := [][]uint64{{0b011}, {0b110}}
	k := gf2Kernel(rows, 3)
	if len(k) != 1 {
		t.Fatalf("kernel dim = %d, want 1", len(k))
	}
	if k[0][0] != 0b111 {
		t.Fatalf("kernel = %b, want 111", k[0][0])
	}
}
