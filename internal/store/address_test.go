package store

import (
	"strings"
	"testing"

	"repro/internal/mapping"
)

// TestAddressRoundTrip pins the address ⇄ Key bijection for every kind of
// content the three fields can carry, including separators and characters
// that would be unsafe in a raw URL path.
func TestAddressRoundTrip(t *testing.T) {
	keys := []Key{
		{},
		{Hamiltonian: "00112233445566778899aabbccddeeff", Spec: "hatt", Options: "v1;bw=0;vb=0"},
		{Hamiltonian: "ff", Spec: "beam:8", Options: "v1;bw=8;dev=grid:3x3"},
		{Hamiltonian: "deadbeef", Spec: "spec with spaces", Options: "semi;colons=and/slashes?query#frag"},
		{Hamiltonian: "a.b.c", Spec: "dots.in.fields", Options: "…unicode…"},
		{Hamiltonian: strings.Repeat("a", 1024), Spec: "x", Options: "y"},
	}
	seen := make(map[string]Key)
	for _, k := range keys {
		addr := k.Address()
		if strings.ContainsAny(addr, "/%?# ") {
			t.Errorf("Address(%+v) = %q contains URL-unsafe characters", k, addr)
		}
		got, err := ParseAddress(addr)
		if err != nil {
			t.Fatalf("ParseAddress(Address(%+v)): %v", k, err)
		}
		if got != k {
			t.Errorf("round trip mangled key: %+v -> %q -> %+v", k, addr, got)
		}
		if prev, dup := seen[addr]; dup {
			t.Errorf("address collision: %+v and %+v both map to %q", prev, k, addr)
		}
		seen[addr] = k
	}
}

// TestAddressDistinctKeysDistinctAddresses guards against ambiguous
// flattening (the classic "ab"+"c" vs "a"+"bc" bug).
func TestAddressDistinctKeysDistinctAddresses(t *testing.T) {
	a := Key{Hamiltonian: "ab", Spec: "c", Options: "d"}
	b := Key{Hamiltonian: "a", Spec: "bc", Options: "d"}
	if a.Address() == b.Address() {
		t.Fatalf("distinct keys share address %q", a.Address())
	}
}

func TestParseAddressMalformed(t *testing.T) {
	bad := []string{
		"",                      // no segments
		"onlyone",               // 1 segment
		"two.segments",          // 2 segments
		"a.b.c.d",               // 4 segments
		"!!!.YQ.YQ",             // invalid base64url alphabet
		"YQ==.YQ.YQ",            // padding is not RawURLEncoding
		"YQ.YQ.YQ/",             // '/' not in URL-safe alphabet
		"%2e%2e.YQ.YQ",          // percent escapes are not decoded
		strings.Repeat(".", 10), // empty segments beyond three
	}
	for _, s := range bad {
		if _, err := ParseAddress(s); err == nil {
			t.Errorf("ParseAddress(%q): want error, got nil", s)
		}
	}
}

// TestExportImportRoundTrip proves the peer cache-fill path end to end at
// the store layer: an entry Put on one store Exports to bytes that Import
// into a second store, which then serves a byte-identical mapping.
func TestExportImportRoundTrip(t *testing.T) {
	key := Key{Hamiltonian: "cafe", Spec: "jw", Options: "v1"}
	entry := &Entry{Method: "jw", Mapping: mapping.JordanWigner(3), PredictedWeight: 7, Visited: 42}

	a, err := Open(4, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Export(key); ok {
		t.Fatal("Export on an empty store reported an entry")
	}
	a.Put(key, entry)
	raw, ok := a.Export(key)
	if !ok {
		t.Fatal("Export after Put found nothing")
	}

	b, err := Open(4, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	imported, err := b.Import(key, raw)
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	if imported.Method != "jw" || imported.PredictedWeight != 7 || imported.Visited != 42 {
		t.Errorf("imported scalars mangled: %+v", imported)
	}
	got, ok := b.Get(key)
	if !ok {
		t.Fatal("Get after Import missed")
	}
	var want, have strings.Builder
	if err := entry.Mapping.WriteText(&want); err != nil {
		t.Fatal(err)
	}
	if err := got.Mapping.WriteText(&have); err != nil {
		t.Fatal(err)
	}
	if want.String() != have.String() {
		t.Errorf("mapping not byte-identical across Export/Import:\nwant %q\nhave %q", want.String(), have.String())
	}
	// The import persisted to b's disk tier too.
	if st := b.Stats(); st.DiskWrites != 1 {
		t.Errorf("Import disk_writes = %d, want 1", st.DiskWrites)
	}
}

// TestImportRejectsBadPayloads: a fill must never install garbage.
func TestImportRejectsBadPayloads(t *testing.T) {
	key := Key{Hamiltonian: "cafe", Spec: "jw", Options: "v1"}
	entry := &Entry{Method: "jw", Mapping: mapping.JordanWigner(2)}
	src, _ := Open(4, "")
	src.Put(key, entry)
	raw, _ := src.Export(key)

	dst, _ := Open(4, "")
	cases := map[string][]byte{
		"not json":      []byte("not json"),
		"empty":         nil,
		"truncated":     raw[:len(raw)/2],
		"mapping junk":  []byte(`{"hamiltonian":"cafe","spec":"jw","options":"v1","method":"jw","mapping":"junk"}`),
		"empty mapping": []byte(`{"hamiltonian":"cafe","spec":"jw","options":"v1","method":"jw","mapping":""}`),
	}
	for name, payload := range cases {
		if _, err := dst.Import(key, payload); err == nil {
			t.Errorf("Import(%s): want error, got nil", name)
		}
	}
	// Key mismatch: valid payload under the wrong address.
	other := Key{Hamiltonian: "beef", Spec: "jw", Options: "v1"}
	if _, err := dst.Import(other, raw); err == nil {
		t.Error("Import under mismatched key: want error, got nil")
	}
	if _, ok := dst.Get(key); ok {
		t.Error("a rejected Import still installed an entry")
	}
}

// TestExportServesDiskTier: Export must find entries that are only on
// disk (e.g. after a restart evicted the memory tier).
func TestExportServesDiskTier(t *testing.T) {
	dir := t.TempDir()
	key := Key{Hamiltonian: "cafe", Spec: "jw", Options: "v1"}
	first, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	first.Put(key, &Entry{Method: "jw", Mapping: mapping.JordanWigner(2)})

	reopened, err := Open(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := reopened.Export(key)
	if !ok {
		t.Fatal("Export missed a disk-resident entry")
	}
	if _, err := decodeEntry(raw, key); err != nil {
		t.Fatalf("disk-served export does not decode: %v", err)
	}
}
