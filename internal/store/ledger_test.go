package store

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLedgerRecordAndSnapshot(t *testing.T) {
	l, err := OpenLedger("", 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Record("m8.t10", "hatt", []string{"anneal", "beam"})
	l.Record("m8.t10", "hatt", []string{"anneal"})
	l.Record("m12.t20", "anneal", []string{"hatt"})

	snap := l.Snapshot()
	if snap.Plays != 3 {
		t.Fatalf("plays = %d, want 3", snap.Plays)
	}
	if snap.Persisted {
		t.Fatal("memory-only ledger reports Persisted")
	}
	if len(snap.Shapes) != 2 || snap.Shapes[0].Shape != "m12.t20" || snap.Shapes[1].Shape != "m8.t10" {
		t.Fatalf("shapes not sorted: %+v", snap.Shapes)
	}
	row := snap.Shapes[1]
	want := map[string]LedgerCell{
		"anneal": {Wins: 0, Losses: 2},
		"beam":   {Wins: 0, Losses: 1},
		"hatt":   {Wins: 2, Losses: 0},
	}
	if len(row.Methods) != len(want) {
		t.Fatalf("m8.t10 methods = %+v", row.Methods)
	}
	for _, m := range row.Methods {
		w := want[m.Method]
		if m.Wins != w.Wins || m.Losses != w.Losses {
			t.Errorf("m8.t10 %s = %d/%d, want %d/%d", m.Method, m.Wins, m.Losses, w.Wins, w.Losses)
		}
	}
}

// TestLedgerRankGreedy pins pure-exploitation ranking: unplayed specs
// lead (in given order), then win rate descending, with the given order
// breaking ties.
func TestLedgerRankGreedy(t *testing.T) {
	l, err := OpenLedger("", 0)
	if err != nil {
		t.Fatal(err)
	}
	shape := "m8.t10"
	for i := 0; i < 4; i++ {
		l.Record(shape, "anneal", []string{"hatt"})
	}
	l.Record(shape, "hatt", []string{"anneal"})

	got := l.Rank(shape, []string{"hatt", "beam:8", "anneal"})
	want := []string{"beam:8", "anneal", "hatt"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rank = %v, want %v", got, want)
		}
	}

	// Unknown shape: everything unplayed, given order preserved.
	got = l.Rank("m99.t99", []string{"hatt", "anneal"})
	if got[0] != "hatt" || got[1] != "anneal" {
		t.Fatalf("unknown shape Rank = %v", got)
	}

	// Rank must not mutate its argument.
	in := []string{"hatt", "beam:8", "anneal"}
	l.Rank(shape, in)
	if in[0] != "hatt" || in[1] != "beam:8" || in[2] != "anneal" {
		t.Fatalf("Rank mutated its input: %v", in)
	}
}

// TestLedgerRankDeterministic proves ranking is a pure function of
// ledger state: same state, same inputs, same order — even with
// exploration enabled.
func TestLedgerRankDeterministic(t *testing.T) {
	build := func() *Ledger {
		l, err := OpenLedger("", 1) // epsilon 1: explore on every rank
		if err != nil {
			t.Fatal(err)
		}
		l.Record("m8.t10", "hatt", []string{"anneal"})
		l.Record("m8.t10", "anneal", []string{"hatt"})
		return l
	}
	a, b := build(), build()
	specs := []string{"hatt", "beam:4", "anneal"}
	for i := 0; i < 10; i++ {
		ra := a.Rank("m8.t10", specs)
		rb := b.Rank("m8.t10", specs)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("iteration %d: %v vs %v", i, ra, rb)
			}
		}
	}
}

// TestLedgerRankExplores proves epsilon actually bites: across many
// ledger states, a fully-exploring ledger must sometimes front a spec
// the greedy order would not.
func TestLedgerRankExplores(t *testing.T) {
	l, err := OpenLedger("", 1)
	if err != nil {
		t.Fatal(err)
	}
	shape := "m8.t10"
	explored := false
	for i := 0; i < 40 && !explored; i++ {
		l.Record(shape, "hatt", []string{"anneal", "beam:4"})
		got := l.Rank(shape, []string{"hatt", "anneal", "beam:4"})
		if got[0] != "hatt" {
			explored = true
		}
	}
	if !explored {
		t.Fatal("epsilon=1 ledger never promoted a non-favorite across 40 states")
	}
}

func TestLedgerSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	l, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Record("m8.t10", "hatt", []string{"anneal"})
	l.Record("m8.t10", "anneal", []string{"hatt"})
	if snap := l.Snapshot(); !snap.Persisted {
		t.Fatal("disk ledger reports not persisted")
	}

	re, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := re.Snapshot()
	if snap.Plays != 2 {
		t.Fatalf("reopened plays = %d, want 2", snap.Plays)
	}
	if len(snap.Shapes) != 1 || len(snap.Shapes[0].Methods) != 2 {
		t.Fatalf("reopened snapshot = %+v", snap)
	}
	for _, m := range snap.Shapes[0].Methods {
		if m.Wins != 1 || m.Losses != 1 {
			t.Errorf("reopened %s = %d/%d, want 1/1", m.Method, m.Wins, m.Losses)
		}
	}
}

// TestLedgerToleratesCorruptFile: a mangled ledger file is quarantined,
// not fatal, and subsequent records re-create a valid file.
func TestLedgerToleratesCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatalf("corrupt ledger file should not fail open: %v", err)
	}
	if snap := l.Snapshot(); snap.Plays != 0 {
		t.Fatalf("corrupt ledger loaded plays = %d", snap.Plays)
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Fatalf("corrupt file not quarantined: %v", err)
	}
	l.Record("m8.t10", "hatt", nil)
	re, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap := re.Snapshot(); snap.Plays != 1 {
		t.Fatalf("post-recovery reopen plays = %d, want 1", snap.Plays)
	}
}

// TestLedgerWrongVersionStartsFresh: an unknown version is treated like
// corruption — quarantine and start over, never misread.
func TestLedgerWrongVersionStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"plays":7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if snap := l.Snapshot(); snap.Plays != 0 {
		t.Fatalf("future-version ledger loaded plays = %d", snap.Plays)
	}
}

func TestLedgerPersistenceFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "ledger.json")
	l, err := OpenLedger(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the ledger; Record must still
	// count, just flag persistence as failing.
	if err := os.RemoveAll(filepath.Dir(path)); err != nil {
		t.Fatal(err)
	}
	l.Record("m8.t10", "hatt", nil)
	snap := l.Snapshot()
	if snap.Plays != 1 {
		t.Fatalf("plays = %d, want 1", snap.Plays)
	}
	if snap.Persisted || snap.SaveFailures == 0 {
		t.Fatalf("failing disk not surfaced: %+v", snap)
	}
}
