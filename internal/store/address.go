package store

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/mapping"
)

// Address flattens the key into its URL-path form, the {address} segment
// of the fleet peer endpoint GET /v1/store/{address}. Each key field is
// base64url-encoded without padding and the three segments are joined
// with '.', so every field round-trips byte-exactly regardless of what
// characters a method spec or options digest contains, and the result is
// a single path segment (no '/', no percent-escaping needed).
func (k Key) Address() string {
	enc := base64.RawURLEncoding
	return enc.EncodeToString([]byte(k.Hamiltonian)) + "." +
		enc.EncodeToString([]byte(k.Spec)) + "." +
		enc.EncodeToString([]byte(k.Options))
}

// ParseAddress inverts Address. Anything that is not exactly three
// base64url segments joined by '.' — wrong segment count, padding,
// characters outside the URL-safe alphabet — is an error, which the
// service maps to a 4xx.
func ParseAddress(s string) (Key, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return Key{}, fmt.Errorf("store: address %q: want 3 dot-separated segments, got %d", s, len(parts))
	}
	var fields [3]string
	for i, p := range parts {
		raw, err := base64.RawURLEncoding.DecodeString(p)
		if err != nil {
			return Key{}, fmt.Errorf("store: address segment %d: %v", i, err)
		}
		fields[i] = string(raw)
	}
	return Key{Hamiltonian: fields[0], Spec: fields[1], Options: fields[2]}, nil
}

// Export returns the canonical wire encoding of the entry stored under
// key — the same JSON shape the disk tier persists — serving from the
// memory tier first and the disk tier second. It is what the
// /v1/store/{address} peer endpoint sends to a cache-filling node. The
// boolean reports whether the entry exists; Export never surfaces disk
// corruption (a bad file is a miss here exactly as it is in Get).
//
// Export deliberately does not touch the hit/miss counters: a peer
// pulling an entry is replication traffic, not demand, and the fleet
// layer accounts for it separately.
func (s *Store) Export(key Key) ([]byte, bool) {
	id := key.id()
	s.mu.Lock()
	resident, ok := s.mem.Get(id)
	s.mu.Unlock()
	if ok {
		raw, err := encodeEntry(key, resident)
		if err != nil {
			return nil, false
		}
		return raw, true
	}
	if s.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, false
	}
	// Validate before serving: a corrupt or mismatched file must degrade
	// to a 404 on the peer endpoint, never propagate bad bytes through
	// the fleet.
	if _, err := decodeEntry(raw, key); err != nil {
		s.diskErr.Add(1)
		s.quarantine(id)
		return nil, false
	}
	return raw, true
}

// Import parses a wire encoding produced by a peer's Export, validates it
// against key — the embedded key fields must match and the mapping must
// round-trip through the same algebra-verifying reader the disk tier
// uses — and stores the entry in this node's tiers. On success it returns
// the (private, mutation-safe) entry so the caller can serve it without a
// second lookup.
func (s *Store) Import(key Key, raw []byte) (*Entry, error) {
	e, err := decodeEntry(raw, key)
	if err != nil {
		return nil, err
	}
	s.insert(key.id(), e.clone())
	s.puts.Add(1)
	s.writeDisk(key.id(), key, e)
	return e, nil
}

// encodeEntry marshals one entry into the shared disk/wire JSON shape.
func encodeEntry(key Key, e *Entry) ([]byte, error) {
	var mt bytes.Buffer
	if err := e.Mapping.WriteText(&mt); err != nil {
		return nil, fmt.Errorf("store: encode mapping: %w", err)
	}
	return json.Marshal(diskEntry{
		Hamiltonian:     key.Hamiltonian,
		Spec:            key.Spec,
		Options:         key.Options,
		Method:          e.Method,
		PredictedWeight: e.PredictedWeight,
		Optimal:         e.Optimal,
		Visited:         e.Visited,
		Mapping:         mt.String(),
	})
}

// decodeEntry unmarshals and validates the shared disk/wire JSON shape
// against the key it is supposed to hold. Every failure is an error; the
// callers decide whether that means a tolerated miss (disk tier, Export)
// or a rejected fill (Import).
func decodeEntry(raw []byte, key Key) (*Entry, error) {
	var de diskEntry
	if err := json.Unmarshal(raw, &de); err != nil {
		return nil, fmt.Errorf("store: decode entry: %w", err)
	}
	if de.Hamiltonian != key.Hamiltonian || de.Spec != key.Spec || de.Options != key.Options {
		return nil, fmt.Errorf("store: entry key mismatch (have %q/%q/%q)", de.Hamiltonian, de.Spec, de.Options)
	}
	m, err := mapping.ReadText(strings.NewReader(de.Mapping))
	if err != nil {
		return nil, fmt.Errorf("store: entry mapping: %w", err)
	}
	return &Entry{
		Method:          de.Method,
		Mapping:         m,
		PredictedWeight: de.PredictedWeight,
		Optimal:         de.Optimal,
		Visited:         de.Visited,
	}, nil
}
