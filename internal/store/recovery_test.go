package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestDiskCrashRecovery drives the disk tier through the file states a
// crash (or torn write) can leave behind and asserts the self-healing
// contract: the tier opens, the damaged entry degrades to a miss, a
// corrupt file is quarantined out of the load path, and the next Put —
// the "recompile" in service terms — restores a servable copy.
func TestDiskCrashRecovery(t *testing.T) {
	k := key("crashed")
	for name, tc := range map[string]struct {
		damage         func(t *testing.T, dir, entryFile string)
		wantQuarantine bool
	}{
		"truncated entry": {
			damage: func(t *testing.T, dir, entryFile string) {
				raw, err := os.ReadFile(entryFile)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(entryFile, raw[:len(raw)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantQuarantine: true,
		},
		"zero-byte entry": {
			damage: func(t *testing.T, dir, entryFile string) {
				if err := os.WriteFile(entryFile, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantQuarantine: true,
		},
		"half-renamed temp": {
			// Crash between fsync and rename: the payload exists only
			// under the temp name. That is a plain miss — no final file,
			// nothing to quarantine — and the temp garbage is inert.
			damage: func(t *testing.T, dir, entryFile string) {
				raw, err := os.ReadFile(entryFile)
				if err != nil {
					t.Fatal(err)
				}
				base := filepath.Base(entryFile)
				tmp := filepath.Join(dir, strings.TrimSuffix(base, ".json")+".tmp-123456")
				if err := os.WriteFile(tmp, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.Remove(entryFile); err != nil {
					t.Fatal(err)
				}
			},
			wantQuarantine: false,
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(8, dir)
			if err != nil {
				t.Fatal(err)
			}
			s.Put(k, testEntry(t, 3))
			files, err := filepath.Glob(filepath.Join(dir, "*.json"))
			if err != nil || len(files) != 1 {
				t.Fatalf("glob: %v, files=%v", err, files)
			}
			tc.damage(t, dir, files[0])

			// A fresh process with a cold memory tier must open and serve.
			fresh, err := Open(8, dir)
			if err != nil {
				t.Fatalf("tier failed to load after crash: %v", err)
			}
			if _, ok := fresh.Get(k); ok {
				t.Fatal("damaged entry served as a hit")
			}
			st := fresh.Stats()
			if tc.wantQuarantine {
				if st.DiskQuarantines != 1 {
					t.Fatalf("stats = %+v, want 1 quarantine", st)
				}
				if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
					t.Fatalf("corrupt file still under its final name (err=%v)", err)
				}
				if q, _ := filepath.Glob(filepath.Join(dir, "*.quarantined")); len(q) != 1 {
					t.Fatalf("quarantined copy missing, glob=%v", q)
				}
			} else if st.DiskQuarantines != 0 {
				t.Fatalf("stats = %+v, want no quarantine for a missing file", st)
			}

			// "Recompile": the next Put heals the tier and the entry is
			// durable again for yet another cold start.
			fresh.Put(k, testEntry(t, 3))
			if !fresh.DiskHealthy() {
				t.Fatal("disk tier unhealthy after a successful rewrite")
			}
			again, err := Open(8, dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := again.Get(k); !ok {
				t.Fatal("healed entry not served after reopen")
			}
		})
	}
}

// TestTornWriteSelfHeals arms the real failpoint plan end-to-end: every
// disk persist is torn to half its bytes, exactly as the chaos smoke
// does, and the store must degrade to recompute-and-rewrite without
// ever serving bad bytes.
func TestTornWriteSelfHeals(t *testing.T) {
	defer fault.Disarm()
	dir := t.TempDir()
	k := key("torn")

	if err := fault.Arm("seed=3;store.disk.write=torn:0.5"); err != nil {
		t.Fatal(err)
	}
	s, err := Open(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(k, testEntry(t, 3))
	if _, ok := s.Get(k); !ok {
		t.Fatal("memory tier must mask the torn disk write")
	}
	if !s.DiskHealthy() {
		t.Fatal("a torn write is silent at write time; health flips on read")
	}

	// Cold restart, plan still armed: the torn file is quarantined, the
	// entry recompiles (Put), and the rewrite is torn again — memory
	// still serves.
	fresh, err := Open(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(k); ok {
		t.Fatal("torn disk entry served as a hit")
	}
	if st := fresh.Stats(); st.DiskQuarantines != 1 {
		t.Fatalf("stats = %+v, want 1 quarantine", st)
	}
	fresh.Put(k, testEntry(t, 3))

	// Plan disarmed (the fault heals): one more Put writes a good copy.
	fault.Disarm()
	fresh.Put(k, testEntry(t, 3))
	healed, err := Open(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := healed.Get(k); !ok {
		t.Fatal("store did not heal once the fault cleared")
	}
}

// TestInjectedWriteErrorFlipsHealth covers the ENOSPC-style failpoint:
// an injected write error marks the disk tier unhealthy for readiness
// reporting, and the first successful persist clears it.
func TestInjectedWriteErrorFlipsHealth(t *testing.T) {
	defer fault.Disarm()
	dir := t.TempDir()
	s, err := Open(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm("seed=1;store.disk.write=error*1"); err != nil {
		t.Fatal(err)
	}
	s.Put(key("a"), testEntry(t, 2))
	if s.DiskHealthy() {
		t.Fatal("failed persist left the tier healthy")
	}
	if st := s.Stats(); st.DiskErrors != 1 {
		t.Fatalf("stats = %+v, want 1 disk error", st)
	}
	s.Put(key("b"), testEntry(t, 2)) // burst exhausted: this one lands
	if !s.DiskHealthy() {
		t.Fatal("successful persist did not clear disk health")
	}
	// Memory-only stores are trivially healthy.
	mem, err := Open(8, "")
	if err != nil {
		t.Fatal(err)
	}
	if !mem.DiskHealthy() {
		t.Fatal("memory-only store reported an unhealthy disk tier")
	}
}
