// Package store is the content-addressed compiled-mapping store behind
// the compilation service. A compiled result is addressed by what went
// into it — the Majorana Hamiltonian's 128-bit content fingerprint, the
// method spec, and the canonical options digest — so any process that
// compiles the same problem with the same knobs hits the same entry,
// across goroutines, processes, and (with the disk tier) restarts.
//
// The store is two tiers. The memory tier is a bounded LRU map, always
// on. The disk tier is optional: one JSON file per entry, written with
// an atomic create-temp-fsync-rename so a crash can never leave a torn
// file under the final name, and loaded tolerantly — an unreadable,
// unparsable, mismatched, or algebra-violating file is treated as a miss
// (counted in Stats.DiskErrors), never an error surfaced to the caller.
// A file that exists but fails validation is additionally quarantined —
// renamed aside so it stops being re-read on every miss — and the next
// Put of that key rewrites a good copy, making the tier self-healing
// under torn writes (Stats.DiskQuarantines counts these).
// Mappings cross the disk boundary through the existing
// mapping.WriteText/ReadText round-trip, so every load re-verifies the
// anticommutation algebra before the entry is trusted.
//
// Get returns a deep copy and Put stores one: callers may freely mutate
// what they get back without corrupting the cache.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/lru"
	"repro/internal/mapping"
	"repro/internal/pauli"
)

// Key addresses one compiled result by content. All three fields are
// produced by stable canonical encoders — fermion.(*MajoranaHamiltonian).
// Fingerprint, the method spec string, and compiler.Options.Digest — so
// equal problems collide on purpose.
type Key struct {
	Hamiltonian string // 128-bit content fingerprint, hex
	Spec        string // method spec, e.g. "hatt" or "beam:8"
	Options     string // canonical options digest
}

// id flattens the key into the hex SHA-256 used as the map key and disk
// file name. Fields are length-prefixed so distinct keys can never
// serialize identically.
func (k Key) id() string {
	h := sha256.New()
	var buf [8]byte
	for _, f := range []string{k.Hamiltonian, k.Spec, k.Options} {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(f)))
		h.Write(buf[:])
		h.Write([]byte(f))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Entry is one stored compilation result: the mapping plus the scalar
// outcome fields worth reusing. Trees are not stored — a cached result
// serves the mapping, which is what every downstream stage consumes.
type Entry struct {
	Method          string
	Mapping         *mapping.Mapping
	PredictedWeight int
	Optimal         bool
	Visited         int64
}

// clone deep-copies the entry so cache internals never alias caller
// memory.
func (e *Entry) clone() *Entry {
	c := *e
	if e.Mapping != nil {
		m := *e.Mapping
		m.Majoranas = make([]pauli.String, len(e.Mapping.Majoranas))
		for i, s := range e.Mapping.Majoranas {
			m.Majoranas[i] = s.Clone()
		}
		c.Mapping = &m
	}
	return &c
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits            int64 `json:"hits"`             // Get served from memory or disk
	Misses          int64 `json:"misses"`           // Get found nothing
	Puts            int64 `json:"puts"`             // entries stored
	Evictions       int64 `json:"evictions"`        // memory-tier LRU evictions
	Entries         int   `json:"entries"`          // current memory-tier size
	Capacity        int   `json:"capacity"`         // memory-tier bound
	DiskHits        int64 `json:"disk_hits"`        // Gets promoted from the disk tier
	DiskWrites      int64 `json:"disk_writes"`      // entries persisted
	DiskErrors      int64 `json:"disk_errors"`      // unreadable/corrupt/mismatched files skipped
	DiskQuarantines int64 `json:"disk_quarantines"` // corrupt files renamed aside for later rewrite
}

// Store is the two-tier content-addressed store. Safe for concurrent
// use.
type Store struct {
	dir string // "" = memory only

	mu  sync.Mutex
	cap int
	mem *lru.Cache[string, *Entry]

	hits, misses, puts, evictions atomic.Int64
	diskHits, diskWrites, diskErr atomic.Int64
	diskQuarantines               atomic.Int64
	diskDown                      atomic.Bool // last write attempt failed
}

// DefaultCapacity bounds the memory tier when Open is given a
// non-positive capacity.
const DefaultCapacity = 1024

// Open creates a store with the given memory-tier capacity (≤ 0 means
// DefaultCapacity). A non-empty dir enables the disk tier rooted there,
// created if missing; entries already on disk from a previous process
// are served on demand — there is no startup scan to pay.
func Open(capacity int, dir string) (*Store, error) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		dir: dir,
		cap: capacity,
		mem: lru.New[string, *Entry](capacity),
	}, nil
}

// Get returns a deep copy of the entry stored under key, consulting the
// memory tier first and then (on a memory miss) the disk tier, promoting
// disk hits into memory. The boolean reports whether anything was found.
func (s *Store) Get(key Key) (*Entry, bool) {
	id := key.id()
	s.mu.Lock()
	resident, ok := s.mem.Get(id)
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
		// Clone outside the lock: entries are replaced wholesale on Put,
		// never mutated in place, so the pointer is safe to read here and
		// concurrent hits don't serialize on the deep copy.
		return resident.clone(), true
	}

	if e, ok := s.loadDisk(id, key); ok {
		s.insert(id, e) // promote; e is already our private copy
		s.hits.Add(1)
		s.diskHits.Add(1)
		return e.clone(), true
	}
	s.misses.Add(1)
	return nil, false
}

// Put stores a deep copy of entry under key in the memory tier and, when
// the disk tier is enabled, persists it. Entries without a mapping are
// ignored — there is nothing to serve from them.
func (s *Store) Put(key Key, entry *Entry) {
	if entry == nil || entry.Mapping == nil {
		return
	}
	e := entry.clone()
	id := key.id()
	s.insert(id, e)
	s.puts.Add(1)
	s.writeDisk(id, key, e)
}

// insert adds or refreshes a memory-tier entry, evicting from the LRU
// tail past capacity.
func (s *Store) insert(id string, e *Entry) {
	s.mu.Lock()
	evicted := s.mem.Put(id, e)
	s.mu.Unlock()
	s.evictions.Add(int64(evicted))
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries := s.mem.Len()
	capacity := s.cap
	s.mu.Unlock()
	return Stats{
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Puts:            s.puts.Load(),
		Evictions:       s.evictions.Load(),
		Entries:         entries,
		Capacity:        capacity,
		DiskHits:        s.diskHits.Load(),
		DiskWrites:      s.diskWrites.Load(),
		DiskErrors:      s.diskErr.Load(),
		DiskQuarantines: s.diskQuarantines.Load(),
	}
}

// DiskHealthy reports the write-path health of the disk tier: true when
// the tier is disabled (nothing to be unhealthy) or the most recent
// persist attempt succeeded. Readiness probes use it to report a node
// that can still serve but can no longer make results durable.
func (s *Store) DiskHealthy() bool {
	return s.dir == "" || !s.diskDown.Load()
}

// Dir returns the disk-tier root, or "" when the store is memory-only.
func (s *Store) Dir() string { return s.dir }

// diskEntry is the on-disk JSON shape. The key fields are stored
// alongside the payload so a load can confirm the file really holds the
// requested content (a renamed or hash-colliding file degrades to a
// miss, not a wrong answer).
type diskEntry struct {
	Hamiltonian     string `json:"hamiltonian"`
	Spec            string `json:"spec"`
	Options         string `json:"options"`
	Method          string `json:"method"`
	PredictedWeight int    `json:"predicted_weight"`
	Optimal         bool   `json:"optimal,omitempty"`
	Visited         int64  `json:"visited,omitempty"`
	Mapping         string `json:"mapping"` // mapping.WriteText serialization
}

func (s *Store) path(id string) string { return filepath.Join(s.dir, id+".json") }

// loadDisk reads, validates, and parses the disk entry for id. Every
// failure mode — missing file, bad JSON, key mismatch, mapping that
// fails to parse or verify — is a tolerated miss, and a file that is
// present but invalid is quarantined so the next Put heals it.
func (s *Store) loadDisk(id string, key Key) (*Entry, bool) {
	if s.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(id))
	if err == nil {
		if ferr := fault.Point("store.disk.read"); ferr != nil {
			err = ferr
		}
	}
	if err != nil {
		if !os.IsNotExist(err) {
			s.diskErr.Add(1)
		}
		return nil, false
	}
	raw = fault.Mutate("store.disk.read", raw) // short read
	e, err := decodeEntry(raw, key)
	if err != nil {
		s.diskErr.Add(1)
		s.quarantine(id)
		return nil, false
	}
	return e, true
}

// quarantine moves a corrupt entry file out of the load path. The
// content is kept under a .quarantined suffix for postmortems instead
// of deleted, and the final name is freed so the next Put of this key
// rewrites a verified copy. If even the rename fails the file is
// removed outright — a corrupt file must not be re-validated on every
// subsequent miss.
func (s *Store) quarantine(id string) {
	path := s.path(id)
	if err := os.Rename(path, path+".quarantined"); err != nil && !os.IsNotExist(err) {
		os.Remove(path)
	}
	s.diskQuarantines.Add(1)
	slog.Warn("store entry quarantined", "path", path)
}

// writeDisk persists an entry with create-temp-fsync-rename atomicity:
// the payload is durable before the final name exists, so a crash
// between the two leaves at worst an ignorable temp file. Failures are
// recorded in DiskErrors (and flip DiskHealthy off until a write
// succeeds again) but otherwise swallowed: the disk tier is an
// accelerator, never a correctness dependency.
func (s *Store) writeDisk(id string, key Key, e *Entry) {
	if s.dir == "" {
		return
	}
	if ferr := fault.Point("store.disk.write"); ferr != nil { // e.g. ENOSPC
		s.diskFail()
		return
	}
	raw, err := encodeEntry(key, e)
	if err != nil {
		s.diskFail()
		return
	}
	raw = fault.Mutate("store.disk.write", raw) // torn write: only a prefix lands
	tmp, err := os.CreateTemp(s.dir, id+".tmp-*")
	if err != nil {
		s.diskFail()
		return
	}
	_, werr := tmp.Write(raw)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.diskFail()
		return
	}
	if ferr := fault.Point("store.disk.rename"); ferr != nil {
		os.Remove(tmp.Name())
		s.diskFail()
		return
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		os.Remove(tmp.Name())
		s.diskFail()
		return
	}
	s.diskWrites.Add(1)
	s.diskDown.Store(false)
}

// diskFail records one failed persist attempt. The first failure of a
// streak logs (the transition is what an operator acts on); repeats
// only bump the counter, so a full disk cannot flood the log.
func (s *Store) diskFail() {
	s.diskErr.Add(1)
	if !s.diskDown.Swap(true) {
		slog.Warn("store disk tier failing writes", "dir", s.dir)
	}
}
