package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/pauli"
)

func testEntry(t *testing.T, modes int) *Entry {
	t.Helper()
	m := mapping.JordanWigner(modes)
	if err := m.Verify(); err != nil {
		t.Fatalf("test mapping invalid: %v", err)
	}
	return &Entry{Method: "jw", Mapping: m, PredictedWeight: 7}
}

func key(h string) Key { return Key{Hamiltonian: h, Spec: "hatt", Options: "o"} }

func TestKeyIDSelfDelimiting(t *testing.T) {
	a := Key{Hamiltonian: "ab", Spec: "c", Options: ""}
	b := Key{Hamiltonian: "a", Spec: "bc", Options: ""}
	if a.id() == b.id() {
		t.Fatal("shifting bytes across key fields must change the id")
	}
	if a.id() != a.id() {
		t.Fatal("id not deterministic")
	}
}

func TestMemoryTierHitMissAndCopySemantics(t *testing.T) {
	s, err := Open(4, "")
	if err != nil {
		t.Fatal(err)
	}
	k := key("h1")
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	e := testEntry(t, 3)
	s.Put(k, e)

	// Mutating what Put was given must not reach the store.
	e.Mapping.Majoranas[0] = pauli.MustParse("XXX")

	got, ok := s.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Mapping.Majoranas[0].Equal(pauli.MustParse("XXX")) {
		t.Fatal("store aliases the caller's Put entry")
	}
	// Mutating what Get returned must not reach the store either.
	got.Mapping.Majoranas[0] = pauli.MustParse("YYY")
	again, _ := s.Get(k)
	if again.Mapping.Majoranas[0].Equal(pauli.MustParse("YYY")) {
		t.Fatal("store aliases a previous Get result")
	}

	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 put / 1 entry", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := Open(2, "")
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, 2)
	s.Put(key("a"), e)
	s.Put(key("b"), e)
	if _, ok := s.Get(key("a")); !ok { // touch a → b becomes LRU
		t.Fatal("a missing")
	}
	s.Put(key("c"), e) // evicts b
	if _, ok := s.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := s.Get(key("a")); !ok {
		t.Fatal("recently used a was evicted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 entries", st)
	}
}

func TestDiskTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	k := key("persist")
	e := testEntry(t, 3)

	s1, err := Open(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(k, e)
	if st := s1.Stats(); st.DiskWrites != 1 {
		t.Fatalf("stats = %+v, want 1 disk write", st)
	}

	// A fresh store over the same dir — simulating a process restart —
	// serves the entry from disk and promotes it to memory.
	s2, err := Open(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok {
		t.Fatal("disk entry not served after reopen")
	}
	if got.Method != "jw" || got.PredictedWeight != 7 {
		t.Fatalf("disk round-trip lost fields: %+v", got)
	}
	for i := range e.Mapping.Majoranas {
		if !got.Mapping.Majoranas[i].Equal(e.Mapping.Majoranas[i]) {
			t.Fatalf("M%d differs after disk round-trip", i)
		}
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want the hit attributed to disk", st)
	}
	// Second Get is a memory hit, not another disk read.
	if _, ok := s2.Get(k); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Fatalf("stats = %+v, want promotion into the memory tier", st)
	}
}

func TestDiskCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	k := key("corrupt")
	s.Put(k, testEntry(t, 3))

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob: %v, files=%v", err, files)
	}

	for name, content := range map[string]string{
		"not json":         "{truncated",
		"wrong key":        `{"hamiltonian":"other","spec":"hatt","options":"o","method":"jw","mapping":""}`,
		"invalid mapping":  `{"hamiltonian":"corrupt","spec":"hatt","options":"o","method":"jw","mapping":"# mapping jw modes=2 qubits=2\nM0 XX\nM1 XX\nM2 XX\nM3 XX\n"}`,
		"empty file":       "",
		"mapping not text": `{"hamiltonian":"corrupt","spec":"hatt","options":"o","method":"jw","mapping":"garbage"}`,
	} {
		if err := os.WriteFile(files[0], []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, err := Open(8, dir) // cold memory tier, forced disk read
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := fresh.Get(k); ok {
			t.Fatalf("%s: corrupt disk entry served as a hit", name)
		}
		if st := fresh.Stats(); st.DiskErrors != 1 || st.Misses != 1 {
			t.Fatalf("%s: stats = %+v, want 1 disk error and 1 miss", name, st)
		}
	}
}

func TestDiskFilesAreAtomicallyNamed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key("x"), testEntry(t, 2))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range entries {
		if strings.Contains(de.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", de.Name())
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := Open(8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry(t, 3)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			k := key([]string{"a", "b", "c", "d"}[g%4])
			for i := 0; i < 50; i++ {
				s.Put(k, e)
				if got, ok := s.Get(k); ok {
					_ = got.Mapping.Qubits()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
