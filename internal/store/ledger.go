package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DefaultLedgerEpsilon is the exploration rate hattd attaches the
// portfolio ledger with: roughly one race in ten launches a
// non-favorite first.
const DefaultLedgerEpsilon = 0.1

// LedgerCell is one (model-shape, method) win/loss row.
type LedgerCell struct {
	Wins   int64 `json:"wins"`
	Losses int64 `json:"losses"`
}

// Ledger is the persistent portfolio ledger: per-(model-shape, method)
// win/loss rows recorded by completed portfolio races and consulted —
// epsilon-greedily — to order racer launch for future races. It
// implements the compiler's MethodLedger contract: ordering steers
// scheduling only, never the race's deterministic winner, so ledger
// state is deliberately excluded from the compile content address.
//
// With a path the ledger persists itself after every Record using the
// same atomic write discipline as the store's disk tier (temp file,
// fsync, rename) and tolerates a corrupt file on open by quarantining
// it and starting fresh. With an empty path it is memory-only.
type Ledger struct {
	mu        sync.Mutex
	path      string
	eps       float64
	plays     int64
	rows      map[string]map[string]*LedgerCell
	saveFails int64
	failing   bool
}

// ledgerFile is the on-disk JSON shape.
type ledgerFile struct {
	Version int                               `json:"version"`
	Plays   int64                             `json:"plays"`
	Shapes  map[string]map[string]*LedgerCell `json:"shapes"`
}

// OpenLedger opens (or creates) a portfolio ledger. An empty path keeps
// the ledger memory-only. epsilon is clamped to [0, 1]; 0 is pure
// exploitation. A corrupt ledger file is renamed aside with a
// ".quarantined" suffix and an empty ledger is returned rather than an
// error — the ledger is an optimizer, never a gatekeeper.
func OpenLedger(path string, epsilon float64) (*Ledger, error) {
	if epsilon < 0 {
		epsilon = 0
	}
	if epsilon > 1 {
		epsilon = 1
	}
	l := &Ledger{
		path: path,
		eps:  epsilon,
		rows: make(map[string]map[string]*LedgerCell),
	}
	if path == "" {
		return l, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: ledger dir: %w", err)
	}
	raw, err := os.ReadFile(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return l, nil
	case err != nil:
		return nil, fmt.Errorf("store: ledger read: %w", err)
	}
	var f ledgerFile
	if jerr := json.Unmarshal(raw, &f); jerr != nil || f.Version != 1 {
		q := path + ".quarantined"
		if rerr := os.Rename(path, q); rerr == nil {
			slog.Warn("ledger quarantined", "path", path, "quarantine", q, "err", jerr)
		}
		return l, nil
	}
	l.plays = f.Plays
	if f.Shapes != nil {
		for shape, methods := range f.Shapes {
			row := make(map[string]*LedgerCell, len(methods))
			for m, c := range methods {
				if c != nil {
					row[m] = &LedgerCell{Wins: c.Wins, Losses: c.Losses}
				}
			}
			l.rows[shape] = row
		}
	}
	return l, nil
}

// Path returns the backing file ("" for memory-only ledgers).
func (l *Ledger) Path() string { return l.path }

// Record logs one completed portfolio race: the winner gains a win and
// every loser a loss under the given model shape. Persistence is
// best-effort — a failing disk degrades the ledger to memory-only
// behavior (tracked in Snapshot) without failing the race.
func (l *Ledger) Record(shape, winner string, losers []string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.plays++
	l.cell(shape, winner).Wins++
	for _, m := range losers {
		l.cell(shape, m).Losses++
	}
	l.persistLocked()
}

func (l *Ledger) cell(shape, m string) *LedgerCell {
	row := l.rows[shape]
	if row == nil {
		row = make(map[string]*LedgerCell)
		l.rows[shape] = row
	}
	c := row[m]
	if c == nil {
		c = &LedgerCell{}
		row[m] = c
	}
	return c
}

// Rank orders the given specs for launch: unplayed specs first (in
// their given order — optimism drives exploration of new methods), then
// by win rate for this shape, descending; the given order breaks ties.
// With probability epsilon one deterministically-chosen spec is rotated
// to the front instead. The RNG is seeded from the play count and the
// shape, never from global randomness, so a fixed ledger state ranks
// reproducibly.
func (l *Ledger) Rank(shape string, specs []string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]string(nil), specs...)
	if len(out) < 2 {
		return out
	}
	row := l.rows[shape]
	rate := func(spec string) float64 {
		c := row[spec]
		if c == nil || c.Wins+c.Losses == 0 {
			return 2 // optimistic: ahead of any real win rate
		}
		return float64(c.Wins) / float64(c.Wins+c.Losses)
	}
	sort.SliceStable(out, func(i, j int) bool { return rate(out[i]) > rate(out[j]) })

	if l.eps > 0 {
		h := fnv.New64a()
		h.Write([]byte(shape))
		r := splitmix64(uint64(l.plays) ^ h.Sum64())
		if float64(r>>11)/(1<<53) < l.eps {
			pick := int(splitmix64(r) % uint64(len(out)))
			out[0], out[pick] = out[pick], out[0]
		}
	}
	return out
}

// splitmix64 is the standard SplitMix64 scramble: a full-period,
// allocation-free generator good enough for exploration dice.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// persistLocked writes the ledger file atomically (temp, fsync,
// rename). Callers hold l.mu. Failures flip the ledger into a failing
// state logged once per transition, mirroring the store disk tier.
func (l *Ledger) persistLocked() {
	if l.path == "" {
		return
	}
	f := ledgerFile{Version: 1, Plays: l.plays, Shapes: l.rows}
	raw, err := json.Marshal(f)
	if err == nil {
		err = writeLedgerFile(l.path, raw)
	}
	if err != nil {
		l.saveFails++
		if !l.failing {
			l.failing = true
			slog.Warn("ledger persistence failing", "path", l.path, "err", err)
		}
		return
	}
	if l.failing {
		l.failing = false
		slog.Info("ledger persistence recovered", "path", l.path)
	}
}

func writeLedgerFile(path string, raw []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// LedgerMethodStats is one method's row in a LedgerShapeStats.
type LedgerMethodStats struct {
	Method string `json:"method"`
	Wins   int64  `json:"wins"`
	Losses int64  `json:"losses"`
}

// LedgerShapeStats groups a shape's per-method rows.
type LedgerShapeStats struct {
	Shape   string              `json:"shape"`
	Methods []LedgerMethodStats `json:"methods"`
}

// LedgerSnapshot is the GET /v1/portfolio/stats payload: every
// (shape, method) win/loss row, sorted by shape then method.
type LedgerSnapshot struct {
	Plays        int64              `json:"plays"`
	Epsilon      float64            `json:"epsilon"`
	Persisted    bool               `json:"persisted"`
	SaveFailures int64              `json:"save_failures,omitempty"`
	Shapes       []LedgerShapeStats `json:"shapes"`
}

// Snapshot returns a sorted, deep copy of the ledger state.
func (l *Ledger) Snapshot() LedgerSnapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	snap := LedgerSnapshot{
		Plays:        l.plays,
		Epsilon:      l.eps,
		Persisted:    l.path != "" && !l.failing,
		SaveFailures: l.saveFails,
		Shapes:       make([]LedgerShapeStats, 0, len(l.rows)),
	}
	for shape, row := range l.rows {
		s := LedgerShapeStats{Shape: shape, Methods: make([]LedgerMethodStats, 0, len(row))}
		for m, c := range row {
			s.Methods = append(s.Methods, LedgerMethodStats{Method: m, Wins: c.Wins, Losses: c.Losses})
		}
		sort.Slice(s.Methods, func(i, j int) bool { return s.Methods[i].Method < s.Methods[j].Method })
		snap.Shapes = append(snap.Shapes, s)
	}
	sort.Slice(snap.Shapes, func(i, j int) bool { return snap.Shapes[i].Shape < snap.Shapes[j].Shape })
	return snap
}
