// Package prof wires the standard pprof profilers behind the CLI flags the
// commands expose, so hot-path regressions can be diagnosed with
// `go tool pprof` against any hattc or benchtab invocation.
package prof

import (
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (if non-empty) and returns a stop
// function that ends the CPU profile and, if memPath is non-empty, writes
// a GC-settled heap profile there. The stop function is safe to defer and
// reports problems to stderr rather than failing the run.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing cpu profile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof: creating heap profile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: writing heap profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "prof: closing heap profile:", err)
			}
		}
	}, nil
}

// Handler returns the net/http/pprof surface (/debug/pprof/ index,
// profile, heap, goroutine, trace, …) as a mux ready to serve. hattd
// mounts it on the separate -debug-addr listener only: live profiling
// endpoints never share the serving socket, so an operator can scrape a
// profile from localhost without exposing it to request traffic.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}
