// Package linalg provides the minimal dense linear algebra the repository
// needs: building the dense matrix of a Pauli-string Hamiltonian and
// computing eigenvalues of Hermitian matrices with the cyclic Jacobi method
// (via the standard embedding of an n×n complex Hermitian matrix into a
// 2n×2n real symmetric one).
//
// It exists because the evaluation needs "theoretical" system energies
// (ground states for Fig. 11) and because comparing full spectra across
// fermion-to-qubit mappings is the strongest correctness oracle available:
// all valid mappings of the same fermionic Hamiltonian are unitarily
// equivalent and must have identical spectra.
package linalg

import (
	"math"
	"sort"

	"repro/internal/pauli"
)

// Dense is a dense complex matrix in row-major order.
type Dense struct {
	N    int
	Data []complex128 // len N*N
}

// NewDense returns a zero N×N matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]complex128, n*n)}
}

// At returns element (r,c).
func (d *Dense) At(r, c int) complex128 { return d.Data[r*d.N+c] }

// Set assigns element (r,c).
func (d *Dense) Set(r, c int, v complex128) { d.Data[r*d.N+c] = v }

// AddAt accumulates v into element (r,c).
func (d *Dense) AddAt(r, c int, v complex128) { d.Data[r*d.N+c] += v }

// Matrix builds the 2^n × 2^n dense matrix of a Pauli Hamiltonian.
// Basis ordering: basis state index b has qubit q occupied iff bit q of b
// is set. Intended for small n (≤ ~12).
func Matrix(h *pauli.Hamiltonian) *Dense {
	n := h.N()
	dim := 1 << uint(n)
	m := NewDense(dim)
	for _, t := range h.Terms() {
		// Each Pauli string is a signed permutation matrix: column b maps
		// to row b^flip with a phase.
		var flip uint64
		for _, q := range t.S.Support() {
			l := t.S.Letter(q)
			if l == pauli.X || l == pauli.Y {
				flip |= 1 << uint(q)
			}
		}
		for b := 0; b < dim; b++ {
			amp := t.Coeff
			for _, q := range t.S.Support() {
				bit := uint64(b) >> uint(q) & 1
				switch t.S.Letter(q) {
				case pauli.Z:
					if bit == 1 {
						amp = -amp
					}
				case pauli.Y:
					// Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
					if bit == 0 {
						amp *= complex(0, 1)
					} else {
						amp *= complex(0, -1)
					}
				}
			}
			m.AddAt(b^int(flip), b, amp)
		}
	}
	return m
}

// EigenvaluesHermitian returns the sorted (ascending) eigenvalues of a
// Hermitian matrix using cyclic Jacobi on the real-symmetric embedding
// [[Re, −Im], [Im, Re]]; each eigenvalue of the original appears twice in
// the embedding, so duplicates are collapsed by taking every other value.
func EigenvaluesHermitian(d *Dense) []float64 {
	n := d.N
	m := 2 * n
	a := make([]float64, m*m)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			v := d.At(r, c)
			a[r*m+c] = real(v)
			a[(r+n)*m+c+n] = real(v)
			a[(r+n)*m+c] = imag(v)
			a[r*m+c+n] = -imag(v)
		}
	}
	ev := jacobiSymmetric(a, m)
	sort.Float64s(ev)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = (ev[2*i] + ev[2*i+1]) / 2 // average the degenerate pair
	}
	return out
}

// jacobiSymmetric destroys a (m×m row-major symmetric) and returns its
// eigenvalues via cyclic Jacobi rotations.
func jacobiSymmetric(a []float64, m int) []float64 {
	const maxSweeps = 100
	const tol = 1e-13
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for r := 0; r < m; r++ {
			for c := r + 1; c < m; c++ {
				off += a[r*m+c] * a[r*m+c]
			}
		}
		if math.Sqrt(off) < tol {
			break
		}
		for p := 0; p < m-1; p++ {
			for q := p + 1; q < m; q++ {
				apq := a[p*m+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := a[p*m+p], a[q*m+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation J(p,q,θ)ᵀ·A·J(p,q,θ).
				for k := 0; k < m; k++ {
					akp, akq := a[k*m+p], a[k*m+q]
					a[k*m+p] = c*akp - s*akq
					a[k*m+q] = s*akp + c*akq
				}
				for k := 0; k < m; k++ {
					apk, aqk := a[p*m+k], a[q*m+k]
					a[p*m+k] = c*apk - s*aqk
					a[q*m+k] = s*apk + c*aqk
				}
			}
		}
	}
	ev := make([]float64, m)
	for i := 0; i < m; i++ {
		ev[i] = a[i*m+i]
	}
	return ev
}

// GroundEnergy returns the smallest eigenvalue of the Hamiltonian.
func GroundEnergy(h *pauli.Hamiltonian) float64 {
	ev := EigenvaluesHermitian(Matrix(h))
	return ev[0]
}

// SpectraClose reports whether two sorted spectra agree within tol.
func SpectraClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}
