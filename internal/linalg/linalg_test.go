package linalg

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/pauli"
)

func TestMatrixSingleQubitPaulis(t *testing.T) {
	// Z matrix: diag(1,-1) in our ordering (|0⟩ index 0).
	h := pauli.NewHamiltonian(1)
	h.Add(1, pauli.MustParse("Z"))
	m := Matrix(h)
	if m.At(0, 0) != 1 || m.At(1, 1) != -1 || m.At(0, 1) != 0 {
		t.Errorf("Z matrix wrong: %v", m.Data)
	}
	// X matrix: off-diagonal ones.
	h2 := pauli.NewHamiltonian(1)
	h2.Add(1, pauli.MustParse("X"))
	m2 := Matrix(h2)
	if m2.At(0, 1) != 1 || m2.At(1, 0) != 1 || m2.At(0, 0) != 0 {
		t.Errorf("X matrix wrong: %v", m2.Data)
	}
	// Y matrix: [[0,-i],[i,0]].
	h3 := pauli.NewHamiltonian(1)
	h3.Add(1, pauli.MustParse("Y"))
	m3 := Matrix(h3)
	if m3.At(1, 0) != complex(0, 1) || m3.At(0, 1) != complex(0, -1) {
		t.Errorf("Y matrix wrong: %v", m3.Data)
	}
}

func TestEigenvaluesPauliZ(t *testing.T) {
	h := pauli.NewHamiltonian(1)
	h.Add(1, pauli.MustParse("Z"))
	ev := EigenvaluesHermitian(Matrix(h))
	if math.Abs(ev[0]+1) > 1e-9 || math.Abs(ev[1]-1) > 1e-9 {
		t.Errorf("Z eigenvalues = %v, want [-1, 1]", ev)
	}
}

func TestEigenvaluesTransverseField(t *testing.T) {
	// H = X has eigenvalues ±1; H = X + Z has ±√2.
	h := pauli.NewHamiltonian(1)
	h.Add(1, pauli.MustParse("X"))
	h.Add(1, pauli.MustParse("Z"))
	ev := EigenvaluesHermitian(Matrix(h))
	r2 := math.Sqrt2
	if math.Abs(ev[0]+r2) > 1e-9 || math.Abs(ev[1]-r2) > 1e-9 {
		t.Errorf("X+Z eigenvalues = %v, want ±√2", ev)
	}
}

func TestEigenvaluesYTerm(t *testing.T) {
	// Complex entries: H = Y ⇒ ±1.
	h := pauli.NewHamiltonian(1)
	h.Add(1, pauli.MustParse("Y"))
	ev := EigenvaluesHermitian(Matrix(h))
	if math.Abs(ev[0]+1) > 1e-9 || math.Abs(ev[1]-1) > 1e-9 {
		t.Errorf("Y eigenvalues = %v, want ±1", ev)
	}
}

func TestEigenvaluesTwoQubitHeisenberg(t *testing.T) {
	// H = XX + YY + ZZ: eigenvalues {1,1,1,-3} (singlet-triplet).
	h := pauli.NewHamiltonian(2)
	h.Add(1, pauli.MustParse("XX"))
	h.Add(1, pauli.MustParse("YY"))
	h.Add(1, pauli.MustParse("ZZ"))
	ev := EigenvaluesHermitian(Matrix(h))
	want := []float64{-3, 1, 1, 1}
	if !SpectraClose(ev, want, 1e-8) {
		t.Errorf("Heisenberg eigenvalues = %v, want %v", ev, want)
	}
}

func TestGroundEnergyTrace(t *testing.T) {
	// Sum of eigenvalues = 2^n · identity coefficient.
	r := rand.New(rand.NewSource(9))
	h := pauli.NewHamiltonian(3)
	letters := []pauli.Letter{pauli.I, pauli.X, pauli.Y, pauli.Z}
	for i := 0; i < 10; i++ {
		s := pauli.Identity(3)
		for q := 0; q < 3; q++ {
			s.SetLetter(q, letters[r.Intn(4)])
		}
		h.Add(complex(r.NormFloat64(), 0), s)
	}
	ev := EigenvaluesHermitian(Matrix(h))
	sum := 0.0
	for _, e := range ev {
		sum += e
	}
	wantTrace := real(h.Trace()) * 8
	if math.Abs(sum-wantTrace) > 1e-7 {
		t.Errorf("eigenvalue sum %v != trace %v", sum, wantTrace)
	}
	if GroundEnergy(h) != ev[0] {
		t.Error("GroundEnergy disagrees with min eigenvalue")
	}
}

func TestMatrixHermitian(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	h := pauli.NewHamiltonian(3)
	letters := []pauli.Letter{pauli.I, pauli.X, pauli.Y, pauli.Z}
	for i := 0; i < 12; i++ {
		s := pauli.Identity(3)
		for q := 0; q < 3; q++ {
			s.SetLetter(q, letters[r.Intn(4)])
		}
		h.Add(complex(r.NormFloat64(), 0), s)
	}
	m := Matrix(h)
	for a := 0; a < m.N; a++ {
		for b := 0; b < m.N; b++ {
			diff := m.At(a, b) - complexConj(m.At(b, a))
			if math.Abs(real(diff)) > 1e-12 || math.Abs(imag(diff)) > 1e-12 {
				t.Fatalf("matrix not Hermitian at (%d,%d)", a, b)
			}
		}
	}
}

func complexConj(c complex128) complex128 { return complex(real(c), -imag(c)) }

func TestSpectraClose(t *testing.T) {
	if !SpectraClose([]float64{1, 2}, []float64{1, 2 + 1e-12}, 1e-9) {
		t.Error("close spectra reported different")
	}
	if SpectraClose([]float64{1, 2}, []float64{1, 3}, 1e-9) {
		t.Error("different spectra reported close")
	}
	if SpectraClose([]float64{1}, []float64{1, 1}, 1e-9) {
		t.Error("length mismatch reported close")
	}
}
