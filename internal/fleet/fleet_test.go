package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mapping"
	"repro/internal/store"
)

// peerServer stands in for a remote hattd's /v1/store/{address} endpoint,
// serving Export straight off a backing store.
func peerServer(t *testing.T, st *store.Store) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		const prefix = "/v1/store/"
		if !strings.HasPrefix(r.URL.Path, prefix) {
			http.NotFound(w, r)
			return
		}
		key, err := store.ParseAddress(strings.TrimPrefix(r.URL.Path, prefix))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		raw, ok := st.Export(key)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func testKey(h string) store.Key {
	return store.Key{Hamiltonian: h, Spec: "jw", Options: "v1"}
}

func testEntry(n int) *store.Entry {
	return &store.Entry{Method: "jw", Mapping: mapping.JordanWigner(n), PredictedWeight: n}
}

func mustFleet(t *testing.T, local *store.Store, cfg Config) *Store {
	t.Helper()
	f, err := NewStore(local, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPeerCacheFill(t *testing.T) {
	remote, _ := store.Open(8, "")
	key := testKey("cafe")
	remote.Put(key, testEntry(3))
	peer := peerServer(t, remote)

	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{Self: "http://self", Peers: []string{"http://self", peer.URL}})

	e, ok := f.Get(key)
	if !ok {
		t.Fatal("fleet Get missed an entry the peer holds")
	}
	if e.Method != "jw" || e.Mapping.Qubits() != 3 {
		t.Errorf("filled entry mangled: %+v", e)
	}
	if st := f.Stats(); st.PeerHits != 1 || st.PeerMiss != 0 || st.PeerError != 0 {
		t.Errorf("stats after fill = %+v, want 1 peer hit", st)
	}
	// The fill installed locally: a second Get must not touch the peer.
	peer.Close()
	if _, ok := f.Get(key); !ok {
		t.Fatal("second Get missed — fill did not install locally")
	}
	if st := f.Stats(); st.PeerHits != 1 {
		t.Errorf("second Get went back to the peer: %+v", st)
	}
}

func TestPeerMissFallsThrough(t *testing.T) {
	remote, _ := store.Open(8, "")
	peer := peerServer(t, remote) // healthy but cold
	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{Peers: []string{peer.URL}})

	if _, ok := f.Get(testKey("beef")); ok {
		t.Fatal("Get reported a hit for an entry nobody holds")
	}
	st := f.Stats()
	if st.PeerMiss != 1 || st.PeerError != 0 {
		t.Errorf("cold-peer stats = %+v, want exactly one peer miss and no errors", st)
	}
}

func TestDeadPeerDegradesToLocal(t *testing.T) {
	// A listener that is already closed: connection refused, immediately.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{Peers: []string{deadURL}, Timeout: 200 * time.Millisecond, Retries: 1})

	key := testKey("dead")
	if _, ok := f.Get(key); ok {
		t.Fatal("Get hit against a dead fleet")
	}
	st := f.Stats()
	if st.PeerError != 2 { // 1 attempt + 1 retry
		t.Errorf("peer_errors = %d, want 2 (attempt + retry)", st.PeerError)
	}
	// Degraded mode: the node still works alone — Put locally, Get hits.
	f.Put(key, testEntry(2))
	if _, ok := f.Get(key); !ok {
		t.Fatal("local store stopped working because a peer is down")
	}
}

func TestCorruptPeerPayloadRejected(t *testing.T) {
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"hamiltonian":"cafe","spec":"jw","options":"v1","method":"jw","mapping":"garbage"}`))
	}))
	t.Cleanup(evil.Close)
	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{Peers: []string{evil.URL}})

	key := testKey("cafe")
	if _, ok := f.Get(key); ok {
		t.Fatal("a corrupt peer payload was served as a hit")
	}
	if st := f.Stats(); st.PeerError != 1 {
		t.Errorf("peer_errors = %d, want 1 for the rejected payload", st.PeerError)
	}
	if _, ok := local.Get(key); ok {
		t.Fatal("a corrupt peer payload was installed in the local store")
	}
}

func TestFillPrefersOwnerButFallsBack(t *testing.T) {
	// Two peers; only the second (whichever the ring ranks last) holds the
	// entry. The fill must still find it — any node can satisfy any hit.
	holderStore, _ := store.Open(8, "")
	key := testKey("fallback")
	holderStore.Put(key, testEntry(4))
	holder := peerServer(t, holderStore)
	coldStore, _ := store.Open(8, "")
	cold := peerServer(t, coldStore)

	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{Peers: []string{cold.URL, holder.URL}})
	if _, ok := f.Get(key); !ok {
		t.Fatal("fill gave up before consulting every peer")
	}
	if st := f.Stats(); st.PeerHits != 1 {
		t.Errorf("stats = %+v, want 1 peer hit", st)
	}
}

func TestNewStoreValidation(t *testing.T) {
	local, _ := store.Open(8, "")
	cases := []Config{
		{}, // no peers at all
		{Self: "http://a", Peers: []string{"http://a"}}, // only self
		{Peers: []string{"not a url %"}},
		{Peers: []string{"ftp://wrong-scheme"}},
		{Peers: []string{"http://"}},
	}
	for _, cfg := range cases {
		if _, err := NewStore(local, cfg); err == nil {
			t.Errorf("NewStore(%+v): want error, got nil", cfg)
		}
	}
	if _, err := NewStore(nil, Config{Peers: []string{"http://a:1"}}); err == nil {
		t.Error("NewStore(nil local): want error")
	}
}

func TestParsePeers(t *testing.T) {
	got := ParsePeers(" http://a:1, http://b:2 ,,http://c:3")
	want := []string{"http://a:1", "http://b:2", "http://c:3"}
	if len(got) != len(want) {
		t.Fatalf("ParsePeers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ParsePeers[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if ParsePeers("") != nil {
		t.Error("ParsePeers(\"\") should be nil")
	}
}

func TestLoadConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(path, []byte(`{"self":"http://a:1","peers":["http://a:1","http://b:2"],"timeout_ms":250,"retries":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Self != "http://a:1" || len(cfg.Peers) != 2 || cfg.Timeout != 250*time.Millisecond {
		t.Errorf("LoadConfigFile = %+v", cfg)
	}
	if cfg.Retries != -1 {
		t.Errorf("explicit retries:0 should normalize to -1 (meaning zero retries), got %d", cfg.Retries)
	}

	// Unknown fields fail loudly.
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"self":"http://a:1","peerz":["http://b:2"]}`), 0o644)
	if _, err := LoadConfigFile(bad); err == nil {
		t.Error("unknown config field accepted")
	}
	if _, err := LoadConfigFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing config file accepted")
	}
}

// TestCancelledContextAbortsFill covers the satellite fix: a peer fetch
// derives from the caller's context, so a client that hangs up stops
// the fan-out instead of riding out the full per-attempt timeout
// schedule against a slow peer.
func TestCancelledContextAbortsFill(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		http.NotFound(w, r)
	}))
	defer close(release)
	t.Cleanup(slow.Close)

	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{
		Self:    "http://self",
		Peers:   []string{slow.URL},
		Timeout: 10 * time.Second, // never the bound that fires here
		Retries: 3,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, ok := f.GetContext(ctx, testKey("feed")); ok {
		t.Fatal("cancelled fill produced an entry")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not abort the fill (took %v)", elapsed)
	}
	// The caller went away; the peer was never at fault.
	if st := f.Stats(); st.PeerError != 0 || st.PeerMiss != 0 {
		t.Errorf("cancelled fill blamed the peer: %+v", st)
	}
}

// TestBreakerTripsAndRecovers drives the full lifecycle over the wire:
// a peer that answers 500 until the breaker opens (shielding it from
// traffic), then heals; after the backoff a half-open probe closes the
// breaker and fills flow again.
func TestBreakerTripsAndRecovers(t *testing.T) {
	remote, _ := store.Open(8, "")
	key := testKey("beef")
	remote.Put(key, testEntry(3))

	var broken atomic.Bool
	broken.Store(true)
	var requests atomic.Int64
	inner := peerServer(t, remote)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		if broken.Load() {
			http.Error(w, "injected upstream failure", http.StatusInternalServerError)
			return
		}
		resp, err := http.Get(inner.URL + r.URL.Path)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	t.Cleanup(peer.Close)

	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{
		Self:             "http://self",
		Peers:            []string{peer.URL},
		Retries:          0,
		BreakerThreshold: 3,
		BreakerBackoff:   20 * time.Millisecond,
	})

	for i := 0; i < 3; i++ {
		if _, ok := f.Get(key); ok {
			t.Fatal("fill succeeded against a broken peer")
		}
	}
	st := f.Stats()
	bs := st.Breakers[peer.URL]
	if bs.Opens != 1 || st.PeerError != 3 {
		t.Fatalf("after threshold: %+v", st)
	}
	if got := f.OpenBreakers(); len(got) != 1 || got[0] != peer.URL {
		t.Fatalf("OpenBreakers = %v", got)
	}

	// While open, fills are refused locally: the peer sees no traffic.
	before := requests.Load()
	if _, ok := f.Get(key); ok {
		t.Fatal("open breaker produced a fill")
	}
	if requests.Load() != before {
		t.Fatal("open breaker still dialed the peer")
	}
	if st := f.Stats(); st.PeerSkips == 0 {
		t.Fatalf("no skips recorded: %+v", st)
	}

	// Peer heals; after the backoff one probe closes the breaker.
	broken.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := f.Get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after the peer healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	bs = f.Stats().Breakers[peer.URL]
	if bs.State != "closed" || bs.HalfOpens < 1 || bs.Closes != 1 {
		t.Fatalf("after recovery: %+v", bs)
	}
	if got := f.OpenBreakers(); len(got) != 0 {
		t.Fatalf("OpenBreakers after recovery = %v", got)
	}
}

// TestInjectedPeerFaultsDriveBreaker arms a real chaos plan — the same
// site the chaos smoke uses — and checks a synthetic 5xx burst opens
// the breaker and then lets it close once the burst is exhausted.
func TestInjectedPeerFaultsDriveBreaker(t *testing.T) {
	defer fault.Disarm()
	remote, _ := store.Open(8, "")
	key := testKey("fade")
	remote.Put(key, testEntry(3))
	peer := peerServer(t, remote)

	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{
		Self:             "http://self",
		Peers:            []string{peer.URL},
		Retries:          0,
		BreakerThreshold: 2,
		BreakerBackoff:   10 * time.Millisecond,
	})
	if err := fault.Arm("seed=5;fleet.peer.status=error*2"); err != nil {
		t.Fatal(err)
	}
	f.Get(key)
	f.Get(key)
	if bs := f.Stats().Breakers[peer.URL]; bs.Opens != 1 {
		t.Fatalf("synthetic 5xx burst did not open the breaker: %+v", bs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := f.Get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fill never recovered after the burst")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := fault.Stats()["fleet.peer.status"]; got != 2 {
		t.Fatalf("fault stats = %d firings, want 2", got)
	}
}

// TestTruncatedPeerPayloadRejected arms the torn-body failpoint: a
// truncated fill payload must fail verification and count as a peer
// error, never import.
func TestTruncatedPeerPayloadRejected(t *testing.T) {
	defer fault.Disarm()
	remote, _ := store.Open(8, "")
	key := testKey("dead")
	remote.Put(key, testEntry(3))
	peer := peerServer(t, remote)

	local, _ := store.Open(8, "")
	f := mustFleet(t, local, Config{Self: "http://self", Peers: []string{peer.URL}, Retries: 0})
	if err := fault.Arm("seed=5;fleet.peer.body=torn:0.6*1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Get(key); ok {
		t.Fatal("truncated payload imported")
	}
	if st := f.Stats(); st.PeerError != 1 {
		t.Fatalf("stats = %+v, want 1 peer error", st)
	}
	// Burst exhausted: the retry fills clean.
	if _, ok := f.Get(key); !ok {
		t.Fatal("fill failed after the torn burst ended")
	}
}
