package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func testBreaker(threshold int, base, max time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker("http://peer:7707", threshold, base, max)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Second, time.Minute)
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.onFailure()
	}
	if s := b.snapshot(); s.State != "closed" || s.ConsecutiveFailures != 2 {
		t.Fatalf("below threshold: %+v", s)
	}
	b.allow()
	b.onFailure() // third consecutive failure: trip
	if s := b.snapshot(); s.State != "open" || s.Opens != 1 {
		t.Fatalf("at threshold: %+v", s)
	}
	if b.allow() {
		t.Fatal("open breaker admitted traffic inside the backoff window")
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := testBreaker(3, time.Second, time.Minute)
	b.allow()
	b.onFailure()
	b.allow()
	b.onFailure()
	b.allow()
	b.onSuccess() // streak broken: consecutive, not cumulative
	b.allow()
	b.onFailure()
	if s := b.snapshot(); s.State != "closed" || s.ConsecutiveFailures != 1 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, clk := testBreaker(1, time.Second, time.Minute)
	b.allow()
	b.onFailure() // threshold 1: open immediately
	if b.allow() {
		t.Fatal("admitted during backoff")
	}
	clk.advance(2 * time.Second) // jitter is at most 1.25·base
	if !b.allow() {
		t.Fatal("expired backoff did not admit a probe")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted while half-open")
	}
	b.onSuccess()
	s := b.snapshot()
	if s.State != "closed" || s.Opens != 1 || s.HalfOpens != 1 || s.Closes != 1 {
		t.Fatalf("after successful probe: %+v", s)
	}
	if !b.allow() {
		t.Fatal("closed breaker refusing traffic")
	}
}

func TestBreakerFailedProbeReopensWithLongerBackoff(t *testing.T) {
	b, clk := testBreaker(1, time.Second, time.Minute)
	b.allow()
	b.onFailure()
	clk.advance(2 * time.Second)
	b.allow()     // probe
	b.onFailure() // probe fails: reopen, backoff doubles
	s := b.snapshot()
	if s.State != "open" || s.Opens != 2 || s.Closes != 0 {
		t.Fatalf("after failed probe: %+v", s)
	}
	if b.backoff != 2*time.Second {
		t.Fatalf("backoff = %v, want doubled to 2s", b.backoff)
	}
	// 1.5s is inside even the shortest jittered 2s window (0.75·2s).
	clk.advance(1499 * time.Millisecond)
	if b.allow() {
		t.Fatal("reopened breaker admitted traffic before the doubled backoff")
	}
	// The cap holds: repeated failed probes never exceed max.
	for i := 0; i < 20; i++ {
		clk.advance(2 * time.Minute)
		b.allow()
		b.onFailure()
	}
	if b.backoff > time.Minute {
		t.Fatalf("backoff %v exceeded the cap", b.backoff)
	}
}

func TestBreakerCancelReleasesProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Second, time.Minute)
	b.allow()
	b.onFailure()
	clk.advance(2 * time.Second)
	if !b.allow() {
		t.Fatal("probe not admitted")
	}
	b.onCancel() // caller went away: slot returns, no verdict
	if !b.allow() {
		t.Fatal("cancelled probe slot was not released")
	}
	b.onSuccess()
	if s := b.snapshot(); s.State != "closed" || s.Opens != 1 {
		t.Fatalf("after cancel+success: %+v", s)
	}
}

func TestBreakerJitterIsBoundedAndDeterministic(t *testing.T) {
	a := newBreaker("http://a:1", 1, time.Second, time.Minute)
	b := newBreaker("http://a:1", 1, time.Second, time.Minute)
	c := newBreaker("http://b:2", 1, time.Second, time.Minute)
	var sawDiff bool
	for i := 0; i < 64; i++ {
		ja, jb, jc := a.jittered(time.Second), b.jittered(time.Second), c.jittered(time.Second)
		if ja != jb {
			t.Fatalf("same peer, same step %d: %v != %v", i, ja, jb)
		}
		if ja < 750*time.Millisecond || ja >= 1250*time.Millisecond {
			t.Fatalf("jitter %v outside [0.75s, 1.25s)", ja)
		}
		if ja != jc {
			sawDiff = true
		}
	}
	if !sawDiff {
		t.Fatal("distinct peers share an identical jitter stream")
	}
}
