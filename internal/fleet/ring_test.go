package fleet

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	a := NewRing(peers)
	b := NewRing([]string{"http://c:1", "http://a:1", "http://b:1"}) // order must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("ring disagreement on %q: %q vs %q (peer order must not matter)", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	if got := NewRing(nil).Owner("x"); got != "" {
		t.Errorf("empty ring Owner = %q, want \"\"", got)
	}
	r := NewRing([]string{"http://a:1", "http://a:1", "", "http://b:1"})
	if n := len(r.Peers()); n != 2 {
		t.Errorf("duplicates not collapsed: %d peers", n)
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(peers)
	counts := make(map[string]int)
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("addr-%d", i))]++
	}
	for _, p := range peers {
		// Even split would be n/4; vnode hashing should keep every peer
		// within a loose 2× band — this guards against degenerate hashing,
		// not statistical perfection.
		if counts[p] < n/8 || counts[p] > n/2 {
			t.Errorf("peer %s owns %d of %d keys — ring badly unbalanced: %v", p, counts[p], n, counts)
		}
	}
}

func TestRingOwnersDistinctPreferenceOrder(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(peers)
	owners := r.Owners("some-address", 99)
	if len(owners) != len(peers) {
		t.Fatalf("Owners returned %d peers, want all %d", len(owners), len(peers))
	}
	seen := make(map[string]bool)
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("Owners repeated %q: %v", o, owners)
		}
		seen[o] = true
	}
	if owners[0] != r.Owner("some-address") {
		t.Errorf("Owners[0] = %q disagrees with Owner = %q", owners[0], r.Owner("some-address"))
	}
}

// TestRingStability: removing one peer must remap only the keys that peer
// owned — the consistent-hashing property the fleet's warm caches rely on.
func TestRingStability(t *testing.T) {
	full := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"})
	reduced := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"})
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("addr-%d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "http://d:1" {
			continue // had to move
		}
		if before != after {
			moved++
		}
	}
	if moved > 0 {
		t.Errorf("%d keys moved between surviving peers after removing one node; consistent hashing should move none", moved)
	}
}
