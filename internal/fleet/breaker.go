package fleet

import (
	"log/slog"
	"sync"
	"time"
)

// Circuit-breaker defaults for Config's zero fields.
const (
	// DefaultBreakerThreshold is how many consecutive failed attempts
	// against one peer open its breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerBackoff is the first open interval; each re-open
	// doubles it (with jitter) up to DefaultBreakerMaxBackoff.
	DefaultBreakerBackoff    = 500 * time.Millisecond
	DefaultBreakerMaxBackoff = 30 * time.Second
)

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	breakerClosed   breakerState = iota // traffic flows
	breakerOpen                         // refusing until the backoff deadline
	breakerHalfOpen                     // one probe in flight decides
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// BreakerStats is one peer's breaker snapshot, exported through the
// /v1/stats fleet block so chaos runs (and operators) can watch the
// open → half_open → closed lifecycle.
type BreakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               int64  `json:"opens"`      // closed/half_open → open transitions
	HalfOpens           int64  `json:"half_opens"` // open → half_open (probe admitted)
	Closes              int64  `json:"closes"`     // half_open → closed (probe succeeded)
}

// breaker guards one peer. Consecutive failures past the threshold open
// it; while open every attempt is refused without touching the network;
// once the jittered exponential backoff expires the next attempt is
// admitted as a half-open probe whose outcome either closes the breaker
// or re-opens it with a doubled backoff.
//
// The breaker never sleeps — "open" is a deadline compared against the
// clock on each attempt — so it adds no blocking to the fetch path and
// needs no background goroutine.
type breaker struct {
	peer      string // peer URL, for transition log lines
	threshold int
	base, max time.Duration
	now       func() time.Time // injectable clock for tests

	mu        sync.Mutex
	state     breakerState
	fails     int           // consecutive failures while closed
	backoff   time.Duration // current open interval (pre-jitter)
	openUntil time.Time
	probing   bool   // a half-open probe is in flight
	jitter    uint64 // deterministic jitter stream, seeded per peer

	opens, halfOpens, closes int64
}

func newBreaker(peer string, threshold int, base, max time.Duration) *breaker {
	return &breaker{
		peer:      peer,
		threshold: threshold,
		base:      base,
		max:       max,
		now:       time.Now,
		jitter:    fnv64(peer),
	}
}

// allow reports whether an attempt against this peer may proceed. It
// may transition open → half_open as a side effect; the caller must
// follow every admitted attempt with exactly one of onSuccess,
// onFailure, or onCancel.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Before(b.openUntil) {
			return false
		}
		b.state = breakerHalfOpen
		b.halfOpens++
		b.probing = true
		return true
	default: // half-open: exactly one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// onSuccess records a healthy exchange (2xx fill or a definitive 404)
// and closes a probing breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	closed := false
	if b.state != breakerClosed {
		b.state = breakerClosed
		b.backoff = 0
		b.closes++
		closed = true
	}
	b.mu.Unlock()
	if closed {
		slog.Info("breaker closed", "peer", b.peer)
	}
}

// onFailure records a failed attempt: transport error, 5xx, or an
// unverifiable payload. A failed half-open probe re-opens immediately
// with the next (doubled) backoff.
func (b *breaker) onFailure() {
	b.mu.Lock()
	var wait time.Duration
	opened := false
	b.probing = false
	switch b.state {
	case breakerHalfOpen:
		wait, opened = b.trip(), true
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			wait, opened = b.trip(), true
		}
	}
	b.mu.Unlock()
	if opened {
		slog.Warn("breaker opened", "peer", b.peer, "backoff_ms", wait.Milliseconds())
	}
}

// onCancel releases an admitted attempt whose caller went away before
// the peer answered. The peer is not blamed and a half-open probe slot
// is handed back.
func (b *breaker) onCancel() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// trip opens the breaker (mu held) with the next jittered deadline,
// returning the open interval so the caller can log it after unlocking.
func (b *breaker) trip() time.Duration {
	if b.backoff == 0 {
		b.backoff = b.base
	} else if b.backoff < b.max {
		b.backoff *= 2
		if b.backoff > b.max {
			b.backoff = b.max
		}
	}
	b.state = breakerOpen
	b.fails = 0
	b.opens++
	wait := b.jittered(b.backoff)
	b.openUntil = b.now().Add(wait)
	return wait
}

// jittered spreads a backoff across [0.75, 1.25)·d so a fleet of nodes
// that lost the same peer does not retry it in lockstep. The jitter
// stream is splitmix64 seeded by the peer name: deterministic per node
// (replays identically under test) but decorrelated across peers.
func (b *breaker) jittered(d time.Duration) time.Duration {
	b.jitter = splitmix64(b.jitter)
	frac := 0.75 + 0.5*float64(b.jitter%1024)/1024
	return time.Duration(float64(d) * frac)
}

// snapshot exports the breaker for Stats.
func (b *breaker) snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	state := b.state
	// An expired open interval is half-open in spirit: the next attempt
	// will be admitted as a probe. Report it as such so a quiesced node
	// (no traffic to trigger the lazy transition) still reads as
	// recovering rather than stuck open.
	if state == breakerOpen && !b.now().Before(b.openUntil) {
		state = breakerHalfOpen
	}
	return BreakerStats{
		State:               state.String(),
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		HalfOpens:           b.halfOpens,
		Closes:              b.closes,
	}
}

// fnv64 hashes a peer name (FNV-1a) to seed its jitter stream.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the shared deterministic mixer (same as hattload and
// internal/fault), used here for breaker jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
