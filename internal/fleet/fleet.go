// Package fleet turns a set of independent hattd nodes into a small
// compilation fleet. Each node remains a full router-and-worker — it
// accepts any request, compiles anything locally — but before paying for
// a search it consults its peers' content-addressed stores through the
// peer cache-fill protocol: a local store miss is routed, by consistent
// hash over the entry's store address, to the peers most likely to hold
// the entry, fetched via GET /v1/store/{address}, verified (the mapping
// algebra is re-checked on import exactly as it is for the disk tier),
// installed locally, and served as a cache hit.
//
// The fleet degrades, never fails: a down, slow, or cold peer costs one
// bounded fetch (Config.Timeout per attempt, Config.Retries extra
// attempts) and the node falls back to compiling locally. A peer that
// keeps failing trips a per-peer circuit breaker — consecutive failures
// past Config.BreakerThreshold stop the node dialing it at all, and a
// jittered exponential backoff with a single half-open probe decides
// when it may carry traffic again — so a dead peer costs a handful of
// timeouts once, not one per request. There is no membership protocol
// and no coordination traffic — the ring is derived deterministically
// from static configuration, so every node agrees on ownership from its
// flags alone.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/store"
)

// Defaults for Config's zero fields.
const (
	DefaultTimeout = 2 * time.Second
	DefaultRetries = 1
	// maxFillBytes bounds one peer response; a mapping entry is a few KB,
	// so anything near this is a misbehaving peer, not a big entry.
	maxFillBytes = 8 << 20
)

// Config describes one node's view of the fleet.
type Config struct {
	// Self is this node's own advertised base URL (e.g.
	// "http://10.0.0.1:7707"). It is excluded from fetch targets; a node
	// never dials itself.
	Self string
	// Peers are the base URLs of every fleet member (Self may be listed
	// or omitted — it is filtered out either way).
	Peers []string
	// Timeout bounds each individual peer fetch. Zero means
	// DefaultTimeout.
	Timeout time.Duration
	// Retries is how many additional attempts a failing fetch gets before
	// the next peer (or local compilation) takes over. Negative means 0;
	// zero means DefaultRetries.
	Retries int
	// BreakerThreshold is how many consecutive failures open a peer's
	// circuit breaker. Zero or negative means DefaultBreakerThreshold.
	BreakerThreshold int
	// BreakerBackoff is the first open interval; each re-open doubles it
	// (jittered) up to BreakerMaxBackoff. Zeros mean the defaults.
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
}

// fileConfig is the JSON shape of a -fleet-config file.
type fileConfig struct {
	Self                string   `json:"self"`
	Peers               []string `json:"peers"`
	TimeoutMS           int64    `json:"timeout_ms,omitempty"`
	Retries             *int     `json:"retries,omitempty"`
	BreakerThreshold    int      `json:"breaker_threshold,omitempty"`
	BreakerBackoffMS    int64    `json:"breaker_backoff_ms,omitempty"`
	BreakerMaxBackoffMS int64    `json:"breaker_max_backoff_ms,omitempty"`
}

// LoadConfigFile reads a fleet topology from a JSON file:
//
//	{"self": "http://10.0.0.1:7707",
//	 "peers": ["http://10.0.0.1:7707", "http://10.0.0.2:7707"],
//	 "timeout_ms": 2000, "retries": 1}
//
// Unknown fields are rejected so a typo fails loudly at startup instead
// of silently running solo.
func LoadConfigFile(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("fleet: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var fc fileConfig
	if err := dec.Decode(&fc); err != nil {
		return Config{}, fmt.Errorf("fleet: config %s: %w", path, err)
	}
	cfg := Config{
		Self:              fc.Self,
		Peers:             fc.Peers,
		Timeout:           time.Duration(fc.TimeoutMS) * time.Millisecond,
		BreakerThreshold:  fc.BreakerThreshold,
		BreakerBackoff:    time.Duration(fc.BreakerBackoffMS) * time.Millisecond,
		BreakerMaxBackoff: time.Duration(fc.BreakerMaxBackoffMS) * time.Millisecond,
	}
	if fc.Retries != nil {
		cfg.Retries = *fc.Retries
		if cfg.Retries <= 0 {
			cfg.Retries = -1 // explicit zero survives normalization
		}
	}
	return cfg, nil
}

// ParsePeers splits a comma-separated -peers flag value into base URLs,
// trimming whitespace and dropping empties.
func ParsePeers(csv string) []string {
	var peers []string
	for _, p := range strings.Split(csv, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// validatePeer rejects base URLs the client could not dial.
func validatePeer(p string) error {
	u, err := url.Parse(p)
	if err != nil {
		return fmt.Errorf("fleet: peer %q: %w", p, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("fleet: peer %q: scheme must be http or https", p)
	}
	if u.Host == "" {
		return fmt.Errorf("fleet: peer %q: missing host", p)
	}
	return nil
}

// Stats is a point-in-time snapshot of the fleet layer's counters.
type Stats struct {
	Self      string                  `json:"self,omitempty"`
	Peers     []string                `json:"peers"`
	PeerHits  int64                   `json:"peer_hits"`   // entries filled from a peer
	PeerMiss  int64                   `json:"peer_misses"` // fan-outs where no peer held the entry
	PeerError int64                   `json:"peer_errors"` // failed fetch attempts (timeouts, 5xx, bad payloads)
	PeerSkips int64                   `json:"peer_skips"`  // attempts refused locally by an open breaker
	Breakers  map[string]BreakerStats `json:"breakers"`    // per-peer circuit-breaker state
}

// Store wraps a node's local content-addressed store with peer
// cache-fill. It implements the same Get/Put surface as *store.Store
// (and therefore compiler.Store), so it drops into the job manager and
// the sync compile path unchanged:
//
//	Get: local tiers first; on a miss, fetch from peers in ring order and
//	     import the first verified payload. Only a fill failure on every
//	     candidate is a miss — which the compile layer answers by
//	     compiling locally (degraded mode).
//	Put: local only. Fill is pull-based; entries propagate to the nodes
//	     that actually see demand for them.
type Store struct {
	local    *store.Store
	ring     *Ring
	self     string
	client   *http.Client
	retries  int
	breakers map[string]*breaker // fixed key set after NewStore; values self-synchronize

	peerHits, peerMiss, peerErr, peerSkips atomic.Int64
}

// NewStore builds the fleet wrapper over a local store. An empty peer
// list (after removing Self) is an error — single-node daemons should
// use the local store directly.
func NewStore(local *store.Store, cfg Config) (*Store, error) {
	if local == nil {
		return nil, errors.New("fleet: nil local store")
	}
	var others []string
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			continue
		}
		if err := validatePeer(p); err != nil {
			return nil, err
		}
		others = append(others, p)
	}
	if len(others) == 0 {
		return nil, errors.New("fleet: no peers besides self")
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	retries := cfg.Retries
	switch {
	case retries < 0:
		retries = 0
	case retries == 0:
		retries = DefaultRetries
	}
	threshold := cfg.BreakerThreshold
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	backoff := cfg.BreakerBackoff
	if backoff <= 0 {
		backoff = DefaultBreakerBackoff
	}
	maxBackoff := cfg.BreakerMaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = DefaultBreakerMaxBackoff
	}
	if maxBackoff < backoff {
		maxBackoff = backoff
	}
	breakers := make(map[string]*breaker, len(others))
	for _, p := range others {
		breakers[p] = newBreaker(p, threshold, backoff, maxBackoff)
	}
	return &Store{
		local:    local,
		ring:     NewRing(others),
		self:     cfg.Self,
		client:   &http.Client{Timeout: timeout},
		retries:  retries,
		breakers: breakers,
	}, nil
}

// Local returns the wrapped single-node store (what the peer endpoint
// itself serves from — a node answers fleet traffic from its own tiers,
// never by re-fanning out).
func (f *Store) Local() *store.Store { return f.local }

// Get consults the local tiers, then the fleet. It satisfies the
// context-free compiler.Store surface; callers that hold a request
// context should use GetContext so a disconnecting client aborts the
// peer fan-out.
func (f *Store) Get(key store.Key) (*store.Entry, bool) {
	//hatt:lint-ignore ctxflow context-free compiler.Store entry point; GetContext is the ctx-aware path
	return f.GetContext(context.Background(), key)
}

// GetContext is Get with the caller's context threaded through the peer
// fan-out: every fetch runs under the per-attempt timeout layered onto
// ctx, so a cancelled request stops dialing peers immediately instead
// of finishing the fill on the caller's corpse.
func (f *Store) GetContext(ctx context.Context, key store.Key) (*store.Entry, bool) {
	if e, ok := f.local.Get(key); ok {
		return e, true
	}
	return f.fill(ctx, key)
}

// Put stores locally. (Pull-based fill: peers that want the entry will
// come and get it.)
func (f *Store) Put(key store.Key, entry *store.Entry) { f.local.Put(key, entry) }

// Stats snapshots the fleet counters, including each peer's breaker.
func (f *Store) Stats() Stats {
	breakers := make(map[string]BreakerStats, len(f.breakers))
	for peer, b := range f.breakers {
		breakers[peer] = b.snapshot()
	}
	return Stats{
		Self:      f.self,
		Peers:     f.ring.Peers(),
		PeerHits:  f.peerHits.Load(),
		PeerMiss:  f.peerMiss.Load(),
		PeerError: f.peerErr.Load(),
		PeerSkips: f.peerSkips.Load(),
		Breakers:  breakers,
	}
}

// OpenBreakers lists peers whose breaker is currently refusing traffic,
// for readiness reporting. A half-open (or backoff-expired) breaker is
// probing its way back and does not count as degraded.
func (f *Store) OpenBreakers() []string {
	var open []string
	for _, peer := range f.ring.Peers() {
		if f.breakers[peer].snapshot().State == "open" {
			open = append(open, peer)
		}
	}
	return open
}

// fill runs the peer cache-fill protocol for one key: candidates in
// consistent-hash preference order, each given 1+retries bounded
// attempts gated by its circuit breaker; the first verified payload is
// imported into the local store and returned. 404 means "that peer
// doesn't have it" and moves on immediately (no retry — and it counts
// as breaker success, since the peer answered definitively); transport
// errors, 5xx, and bad payloads count as peer errors and breaker
// failures. A cancelled caller context aborts the whole fan-out without
// blaming any peer.
func (f *Store) fill(ctx context.Context, key store.Key) (*store.Entry, bool) {
	addr := key.Address()
	for _, peer := range f.ring.Owners(addr, len(f.ring.Peers())) {
		br := f.breakers[peer]
		sctx, span := obs.StartSpan(ctx, "fleet.peer.fetch")
		span.SetAttr("peer", peer)
		outcome := "miss"
		for attempt := 0; attempt <= f.retries; attempt++ {
			if ctx.Err() != nil {
				span.SetAttr("outcome", "canceled")
				span.End()
				return nil, false // caller gone: not a peer miss, nobody's fault
			}
			if !br.allow() {
				f.peerSkips.Add(1)
				outcome = "skip"
				break // breaker open: next peer, no network touched
			}
			raw, status, err := f.fetch(sctx, peer, addr)
			switch {
			case err != nil:
				if ctx.Err() != nil {
					br.onCancel()
					span.SetAttr("outcome", "canceled")
					span.End()
					return nil, false
				}
				f.peerErr.Add(1)
				br.onFailure()
				obs.L(ctx).Warn("peer fetch failed", "peer", peer, "attempt", attempt, "error", err.Error())
				outcome = "error"
				continue // retry this peer
			case status == http.StatusNotFound:
				// Definitive answer from a healthy peer: move on.
				br.onSuccess()
			case status != http.StatusOK:
				f.peerErr.Add(1)
				br.onFailure()
				obs.L(ctx).Warn("peer fetch failed", "peer", peer, "attempt", attempt, "status", status)
				outcome = "error"
				continue
			default:
				e, ierr := f.local.Import(key, raw)
				if ierr != nil {
					// The peer served bytes that don't verify — treat the
					// peer as broken for this key, try the next one.
					f.peerErr.Add(1)
					br.onFailure()
					obs.L(ctx).Warn("peer payload failed verification", "peer", peer, "error", ierr.Error())
					outcome = "error"
				} else {
					br.onSuccess()
					f.peerHits.Add(1)
					span.SetAttr("outcome", "hit")
					span.End()
					return e, true
				}
			}
			break // 404 or bad payload: next peer
		}
		span.SetAttr("outcome", outcome)
		span.End()
	}
	f.peerMiss.Add(1)
	return nil, false
}

// fetch performs one bounded GET /v1/store/{address} against one peer:
// the caller's context with the configured per-attempt timeout layered
// on. The fleet.peer.* failpoints live here, on the client side of the
// exchange, so a chaos plan can stand in for a peer that is
// unreachable, answering 5xx, slow to stream, or truncating payloads —
// without needing a broken peer on the wire.
func (f *Store) fetch(ctx context.Context, peer, addr string) ([]byte, int, error) {
	ctx, cancel := context.WithTimeout(ctx, f.client.Timeout)
	defer cancel()
	if err := fault.PointCtx(ctx, "fleet.peer.dial"); err != nil {
		return nil, 0, err
	}
	if err := fault.PointCtx(ctx, "fleet.peer.status"); err != nil {
		// Synthetic upstream 5xx: exercises the same degradation path as
		// a peer answering 502.
		return nil, http.StatusBadGateway, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/store/"+addr, nil)
	if err != nil {
		return nil, 0, err
	}
	// Carry the originating request's trace across the node boundary so
	// the peer's spans and logs share its trace ID.
	obs.InjectTraceparent(ctx, req.Header)
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then report.
		io.CopyN(io.Discard, resp.Body, 1024)
		return nil, resp.StatusCode, nil
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxFillBytes))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if err := fault.PointCtx(ctx, "fleet.peer.body"); err != nil { // slow body
		return nil, resp.StatusCode, err
	}
	raw = fault.Mutate("fleet.peer.body", raw) // truncated payload
	return raw, resp.StatusCode, nil
}
