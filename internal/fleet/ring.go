package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// vnodesPerPeer is the number of virtual nodes each peer contributes to
// the ring. 128 keeps the load split within a few percent of even for
// small fleets while the ring stays tiny (N×128 uint64s).
const vnodesPerPeer = 128

// Ring is a consistent-hash ring over peer base URLs. Keys (store
// addresses) hash onto the same unit circle as the peers' virtual nodes;
// a key's owner is the first virtual node clockwise. Adding or removing
// one peer therefore remaps only ~1/N of the address space — the property
// that makes peer cache-fill stay mostly warm across topology changes.
//
// A Ring is immutable after New; it is safe for concurrent use.
type Ring struct {
	hashes []uint64          // sorted vnode positions
	owner  map[uint64]string // vnode position → peer
	peers  []string          // distinct peers, stable order
}

// NewRing builds a ring over the given peers. Duplicates are collapsed;
// an empty peer list yields an empty ring whose Owner is always "".
func NewRing(peers []string) *Ring {
	r := &Ring{owner: make(map[uint64]string)}
	seen := make(map[string]bool)
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		r.peers = append(r.peers, p)
		for i := 0; i < vnodesPerPeer; i++ {
			h := hashPoint(p, i)
			// On the (astronomically unlikely) collision the first peer
			// keeps the slot; dropping one vnode of 64 is harmless.
			if _, taken := r.owner[h]; taken {
				continue
			}
			r.owner[h] = p
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	return r
}

// Peers returns the distinct peers on the ring in insertion order.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// Owner returns the peer owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct peers in preference order for key: the
// owner first, then each next distinct peer clockwise. This is the fetch
// order for peer cache-fill — if the owner is down or cold, the next
// peers are consulted, so any node holding the entry can satisfy the hit.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		p := r.owner[r.hashes[(start+i)%len(r.hashes)]]
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// hashPoint places one virtual node. SHA-256 of "peer#i" (truncated to
// 64 bits) is deterministic across processes — every fleet member must
// agree on the ring from configuration alone, with no coordination
// traffic — and mixes well enough that small fleets stay balanced.
func hashPoint(peer string, vnode int) uint64 {
	return hash64(peer + "#" + strconv.Itoa(vnode))
}

func hashKey(key string) uint64 { return hash64(key) }

func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
