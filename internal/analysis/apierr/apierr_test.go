package apierr_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/apierr"
)

func TestApierr(t *testing.T) {
	analysistest.Run(t, apierr.Analyzer, filepath.Join("testdata", "a"))
}
