// Package apierr holds the service boundary to its error contract:
// malformed or absurd input is always a structured 4xx, never a 500.
//
//  1. No 5xx status may be constructed in internal/service — as a call
//     argument (writeErr, http.Error, WriteHeader) or a struct field
//     value — outside the panic safety net. A function whose body (or
//     enclosing function literal) calls recover() IS the safety net and
//     is exempt; everything else must express failures as 4xx or return
//     an error for the net to classify.
//  2. fmt.Errorf with an error argument must wrap it with %w so
//     errors.Is/As keep seeing sentinel and typed errors through the
//     service's classification switch.
package apierr

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the apierr pass.
var Analyzer = &framework.Analyzer{
	Name:  "apierr",
	Doc:   "no 5xx construction outside the panic safety net; wrap errors with %w",
	Scope: []string{"repro/internal/service"},
	Run:   run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		// stack mirrors the Inspect traversal (one push per node, one pop
		// per post-order nil) so check5xx can find the enclosing function
		// nodes and excuse a 5xx whose function contains recover().
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch x := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, x)
				for _, arg := range x.Args {
					check5xx(pass, arg, stack)
				}
			case *ast.KeyValueExpr:
				check5xx(pass, x.Value, stack)
			}
			return true
		})
	}
	return nil
}

// check5xx flags expr when it is a constant HTTP 5xx status outside a
// recover()-bearing function.
func check5xx(pass *framework.Pass, expr ast.Expr, stack []ast.Node) {
	v, ok := pass.ConstInt(expr)
	if !ok || v < 500 || v > 599 {
		return
	}
	// Only integer-typed constants: a 5xx-valued float or duration is
	// not a status code.
	if t := pass.TypeOf(expr); t != nil {
		if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
			return
		}
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if pass.ContainsRecover(stack[i]) {
				return // inside the panic safety net
			}
		}
	}
	pass.Reportf(expr.Pos(), "5xx status %d constructed outside the panic safety net; the handler contract is structured 4xx or an error for recoverJSON", v)
}

// checkErrorf flags fmt.Errorf calls that format an error argument
// without %w.
func checkErrorf(pass *framework.Pass, call *ast.CallExpr) {
	if !pass.IsPkgCall(call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := pass.ConstString(call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(pass.TypeOf(arg)) {
			pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; wrapped errors must stay visible to errors.Is/As")
			return
		}
	}
}

// isErrorType reports whether t is the error interface or a concrete
// type implementing it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if types.Identical(t, errType) {
		return true
	}
	return types.Implements(t, errType.Underlying().(*types.Interface))
}
