// Package a is the apierr analysistest fixture.
package a

import (
	"errors"
	"fmt"
	"net/http"
)

var errBoom = errors.New("boom")

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	fmt.Fprintln(w, msg)
}

func Handler(w http.ResponseWriter) {
	writeErr(w, http.StatusBadRequest, "bad input")
	writeErr(w, http.StatusInternalServerError, "oops") // want `5xx status 500 constructed outside the panic safety net`
	writeErr(w, 503, "busy")                            // want `5xx status 503 constructed outside the panic safety net`
	w.WriteHeader(http.StatusBadGateway)                // want `5xx status 502 constructed outside the panic safety net`
}

type apiError struct {
	code int
	msg  string
}

func Build() apiError {
	return apiError{code: 502, msg: "bad gateway"} // want `5xx status 502 constructed outside the panic safety net`
}

func BuildOK() apiError {
	return apiError{code: 422, msg: "unprocessable"}
}

// Recovered is the panic safety net: a recover()-bearing function may
// turn a panic into a 500.
func Recovered(w http.ResponseWriter) {
	defer func() {
		if recover() != nil {
			writeErr(w, http.StatusInternalServerError, "internal error")
		}
	}()
	panic("kaboom")
}

func Wrap(err error) error {
	return fmt.Errorf("compile: %v", err) // want `fmt.Errorf formats an error without %w`
}

func WrapSentinel() error {
	return fmt.Errorf("state: %s", errBoom) // want `fmt.Errorf formats an error without %w`
}

func Wrapped(err error) error {
	return fmt.Errorf("compile: %w", err)
}

func NoErrArg(n int) error {
	return fmt.Errorf("bad count: %d", n)
}
