package ctxflow_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, filepath.Join("testdata", "a"))
}
