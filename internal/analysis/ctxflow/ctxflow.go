// Package ctxflow enforces the facade's cancellation contract in the
// packages that promise it (pkg/compiler, internal/core,
// internal/service, internal/fleet):
//
//  1. No context.Background() or context.TODO() in library code — a
//     detached context severs the caller's cancellation and deadline.
//     Code that must legitimately outlive a request derives from the
//     caller with context.WithoutCancel, which the pass accepts.
//  2. An exported function that blocks — channel operations outside a
//     select with default, select without default, sync.WaitGroup.Wait /
//     sync.Cond.Wait, time.Sleep, ranging over a channel — must accept
//     a context.Context so callers can bound it.
//
// Nested function literals are inspected independently of their
// enclosing declaration: a goroutine body blocking on a channel does
// not make the spawning function itself blocking.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the ctxflow pass.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "exported blocking APIs must accept a context; no context.Background/TODO in library paths",
	Scope: []string{
		"repro/pkg/compiler",
		"repro/internal/core",
		"repro/internal/service",
		"repro/internal/fleet",
	},
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if pass.IsPkgCall(call, "context", "Background", "TODO") {
					fn := pass.CalleeFunc(call)
					pass.Reportf(call.Pos(), "context.%s() detaches library code from caller cancellation; propagate a ctx parameter (or context.WithoutCancel to outlive it deliberately)", fn.Name())
				}
			}
			return true
		})
	}
	framework.EnclosingFuncs(pass.Files, func(fd *ast.FuncDecl) {
		checkExportedBlocking(pass, fd)
	})
	return nil
}

// checkExportedBlocking flags exported functions that block without a
// context parameter.
func checkExportedBlocking(pass *framework.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || pass.HasCtxParam(fd.Type) {
		return
	}
	// Methods on unexported types are not part of the public API.
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if !exportedRecv(pass.TypeOf(fd.Recv.List[0].Type)) {
			return
		}
	}
	if what := blockingOp(pass, fd.Body); what != "" {
		pass.Reportf(fd.Pos(), "exported %s blocks (%s) but takes no context.Context", fd.Name.Name, what)
	}
}

func exportedRecv(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Exported()
	}
	return true
}

// blockingOp returns a description of the first blocking operation in
// the body, skipping nested function literals, or "".
func blockingOp(pass *framework.Pass, body *ast.BlockStmt) string {
	found := ""
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !framework.SelectHasDefault(x) {
				found = "select without default"
			}
			return false // comm clauses inside are accounted for by the select
		case *ast.SendStmt:
			found = "channel send"
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = "channel receive"
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = "range over channel"
				}
			}
		case *ast.CallExpr:
			if pass.IsPkgCall(x, "time", "Sleep") {
				found = "time.Sleep"
				return false
			}
			if f := pass.CalleeFunc(x); f != nil && f.Name() == "Wait" && f.Pkg() != nil && f.Pkg().Path() == "sync" {
				found = "sync " + recvName(f) + ".Wait"
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}

func recvName(f *types.Func) string {
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name()
		}
	}
	return "?"
}
