// Package a is the ctxflow analysistest fixture.
package a

import (
	"context"
	"sync"
	"time"
)

func Detach() context.Context {
	_ = context.Background() // want `context.Background\(\) detaches library code`
	return context.TODO()    // want `context.TODO\(\) detaches library code`
}

// Rebase derives a detached-but-traceable context: the accepted idiom
// for work that must outlive its request.
func Rebase(ctx context.Context) context.Context {
	return context.WithoutCancel(ctx)
}

func Sleepy(d time.Duration) { // want `exported Sleepy blocks \(time.Sleep\) but takes no context.Context`
	time.Sleep(d)
}

func Recv(ch chan int) int { // want `exported Recv blocks \(channel receive\) but takes no context.Context`
	return <-ch
}

func Push(ch chan int, v int) { // want `exported Push blocks \(channel send\) but takes no context.Context`
	ch <- v
}

func Drain(ch chan int) int { // want `exported Drain blocks \(range over channel\) but takes no context.Context`
	n := 0
	for range ch {
		n++
	}
	return n
}

func WaitAll(wg *sync.WaitGroup) { // want `exported WaitAll blocks \(sync WaitGroup.Wait\) but takes no context.Context`
	wg.Wait()
}

func Gather(ch chan int) int { // want `exported Gather blocks \(select without default\) but takes no context.Context`
	select {
	case v := <-ch:
		return v
	}
}

// WithCtx blocks but accepts a context: the caller can bound it.
func WithCtx(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Poll never blocks: its select has a default clause.
func Poll(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// unexported helpers are internal plumbing, not API surface.
func unexported(ch chan int) int {
	return <-ch
}

type worker struct{ ch chan int }

// Run is exported, but its receiver type is not: not public API.
func (w *worker) Run() int {
	return <-w.ch
}

// Spawn only blocks inside a goroutine it launches; the call itself
// returns immediately.
func Spawn(ch chan int) {
	go func() {
		<-ch
	}()
}
