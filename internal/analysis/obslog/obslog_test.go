package obslog_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/obslog"
)

func TestObslog(t *testing.T) {
	analysistest.Run(t, obslog.Analyzer, filepath.Join("testdata", "a"))
}
