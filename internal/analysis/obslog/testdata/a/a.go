// Package a is the obslog analysistest fixture.
package a

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

func Events(n int) {
	fmt.Println("peer fetch failed")               // want `fmt.Println in service/fleet code`
	fmt.Printf("breaker opened after %d fails", n) // want `fmt.Printf in service/fleet code`
	fmt.Print("draining")                          // want `fmt.Print in service/fleet code`
	log.Printf("job %d finished", n)               // want `log.Printf in service/fleet code`
	log.Println("queue full")                      // want `log.Println in service/fleet code`
	log.Fatal("disk gone")                         // want `log.Fatal in service/fleet code`
	log.Panicf("bad state %d", n)                  // want `log.Panicf in service/fleet code`
}

func Allowed(n int) error {
	slog.Info("job finished", "jobs", n)
	slog.Warn("breaker opened", "fails", n)
	msg := fmt.Sprintf("job %d", n)          // building a value, not emitting a line
	fmt.Fprintf(os.Stderr, "usage: %s", msg) // explicit writer: CLI usage text, not a log
	return fmt.Errorf("compile failed: %s", msg)
}
