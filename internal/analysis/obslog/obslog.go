// Package obslog holds the service and fleet layers to the structured
// logging contract: every operational event goes through log/slog (the
// one sink -log-level and -log-format configure, and the only one that
// attaches trace_id/span_id correlation attrs), never through ad-hoc
// prints.
//
// Banned in scope: fmt.Print/Printf/Println (unstructured, no level, no
// trace correlation) and the whole legacy log package surface —
// log.Print*, log.Fatal* (which also exits the daemon from library
// code), and log.Panic*. fmt.Sprintf/Errorf/Fprintf remain fine: they
// build values rather than emit log lines. The hattd/hattc binaries
// stay out of scope on purpose — their few stdout lines (listen
// address, drain notices) are machine-read plain-text contracts, not
// logs.
package obslog

import (
	"go/ast"

	"repro/internal/analysis/framework"
)

// Analyzer is the obslog pass.
var Analyzer = &framework.Analyzer{
	Name:  "obslog",
	Doc:   "service and fleet code logs through log/slog only, never fmt.Print* or log.Print*",
	Scope: []string{"repro/internal/service", "repro/internal/fleet"},
	Run:   run,
}

// banned maps package path to the call names that emit unstructured
// output (or exit/panic from library code).
var banned = map[string][]string{
	"fmt": {"Print", "Printf", "Println"},
	"log": {"Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln"},
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for pkg, names := range banned {
				if pass.IsPkgCall(call, pkg, names...) {
					name := "Print"
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						name = sel.Sel.Name
					}
					pass.Reportf(call.Pos(),
						"%s.%s in service/fleet code; log through log/slog so the line is leveled, structured, and trace-correlated",
						pkg, name)
				}
			}
			return true
		})
	}
	return nil
}
