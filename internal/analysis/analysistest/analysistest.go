// Package analysistest runs one analyzer over a testdata package and
// compares its findings against expectations embedded in the source as
//
//	code() // want "regexp" "another regexp"
//
// comments: each finding on a line must be matched, in order, by the
// want regexps on that line, and every want must be consumed. It is the
// stdlib-only counterpart of golang.org/x/tools/go/analysis/analysistest,
// driving the same runner hattlint uses — so suppression directives and
// the "lintignore" hygiene findings behave in tests exactly as in CI.
package analysistest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// want is one expectation: a regexp anchored to a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	hit  bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseWants extracts the want expectations from every .go file in dir.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var wants []*want
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, pat := range splitQuoted(t, name, line, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", name, line, pat, err)
					}
					wants = append(wants, &want{file: name, line: line, re: re, src: pat})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("%s:%d: want expectation must be quoted regexps, got %q", file, line, s)
		}
		quote := s[0]
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			t.Fatalf("%s:%d: unterminated want string in %q", file, line, s)
		}
		lit := s[:end+1]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s:%d: cannot unquote %s: %v", file, line, lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// Run loads the package in dir, applies the analyzer through the shared
// runner, and reports any mismatch between findings and want comments.
func Run(t *testing.T, a *framework.Analyzer, dir string) {
	t.Helper()
	pkg, err := framework.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := framework.Run([]*framework.Package{pkg}, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := parseWants(t, dir)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.src)
		}
	}
}
