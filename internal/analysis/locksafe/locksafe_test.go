package locksafe_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, locksafe.Analyzer, filepath.Join("testdata", "a"))
}
