// Package a is the locksafe analysistest fixture.
package a

import (
	"context"
	"sync"

	"repro/internal/parallel"
)

type Q struct {
	mu sync.Mutex
	ch chan int
}

func (q *Q) BadSend(v int) {
	q.mu.Lock()
	q.ch <- v // want `channel send while q.mu is held in BadSend`
	q.mu.Unlock()
}

// GoodSend releases before the blocking operation.
func (q *Q) GoodSend(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

func (q *Q) DeferSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want `channel send while q.mu is held in DeferSend`
}

// TrySend is the blessed backpressure idiom: a non-blocking send under
// the lock via select-with-default.
func (q *Q) TrySend(v int) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
		return true
	default:
		return false
	}
}

func (q *Q) BadRecv() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want `channel receive while q.mu is held in BadRecv`
}

func (q *Q) BadSelect() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want `blocking select while q.mu is held in BadSelect`
	case v := <-q.ch:
		return v
	}
}

func (q *Q) BadWait(wg *sync.WaitGroup) {
	q.mu.Lock()
	defer q.mu.Unlock()
	wg.Wait() // want `sync Wait while q.mu is held in BadWait`
}

func (q *Q) BadFanout(ctx context.Context) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return parallel.ForEach(ctx, 8, 2, func(i int) error { return nil }) // want `call into internal/parallel while q.mu is held in BadFanout`
}

// CondLocked locks only inside a branch; the state does not leak out.
func (q *Q) CondLocked(b bool) {
	if b {
		q.mu.Lock()
		q.mu.Unlock()
	}
	q.ch <- 0
}

// SpawnUnderLock launches a goroutine under the lock; the goroutine
// body runs without it.
func (q *Q) SpawnUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- 1
	}()
}

type Guarded struct {
	mu sync.Mutex
	n  int
}

func (g Guarded) ValueRecv() int { // want `method ValueRecv copies its lock-containing receiver`
	return g.n
}

func (g *Guarded) PtrRecv() int {
	return g.n
}

func TakeByValue(g Guarded) int { // want `parameter of TakeByValue passes a lock-containing value`
	return g.n
}

func Deref(g *Guarded) {
	c := *g // want `copies a lock-containing value of type a.Guarded`
	_ = c.n
}

func Iterate(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range copies lock-containing values`
		total += g.n
	}
	return total
}

// IterateByIndex is the fix for Iterate.
func IterateByIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}
