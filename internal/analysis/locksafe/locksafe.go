// Package locksafe guards the service tier's concurrency discipline
// (internal/store, internal/service, internal/lru):
//
//  1. A mutex must not be held across a blocking channel send or
//     receive, a sync.WaitGroup.Wait, or a call into internal/parallel
//     — any of these under a lock can deadlock the daemon or serialize
//     the worker pool behind one critical section. Non-blocking channel
//     operations (inside a select with a default clause) are fine; they
//     are exactly how the job queue applies backpressure under its lock.
//  2. Lock-containing values (sync.Mutex, RWMutex, WaitGroup, Once,
//     Cond, Pool, Map — directly or embedded by value) must not be
//     copied: no value receivers, no by-value parameters, no
//     assignments from existing values, no by-value range variables.
//
// Lock tracking is a straight-line approximation: Lock()/Unlock() pairs
// are followed through nested blocks, a deferred Unlock holds to the
// end of the function, and branch-local state does not escape its
// branch. That is precise enough for the tier's lock idioms, which
// keep critical sections block-shaped.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the locksafe pass.
var Analyzer = &framework.Analyzer{
	Name: "locksafe",
	Doc:  "no blocking channel ops or parallel calls under a mutex; no lock-by-value copies",
	Scope: []string{
		"repro/internal/store",
		"repro/internal/service",
		"repro/internal/lru",
		"repro/internal/fleet",
	},
	Run: run,
}

func run(pass *framework.Pass) error {
	framework.EnclosingFuncs(pass.Files, func(fd *ast.FuncDecl) {
		checkHeldLocks(pass, fd)
	})
	checkCopies(pass)
	return nil
}

// --- rule 1: blocking work under a held mutex ---------------------------

// lockExpr renders the receiver of a Lock/Unlock call as a stable key
// ("m.mu", "j.mu", …).
func lockExpr(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return lockExpr(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return lockExpr(x.X)
	case *ast.IndexExpr:
		return lockExpr(x.X) + "[]"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// mutexMethod recognizes a call X.Lock/RLock/Unlock/RUnlock on a sync
// mutex and returns the lock key and method name.
func mutexMethod(pass *framework.Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	f, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch f.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return lockExpr(sel.X), f.Name(), true
	}
	return "", "", false
}

func checkHeldLocks(pass *framework.Pass, fd *ast.FuncDecl) {
	held := map[string]token.Pos{}
	scanStmts(pass, fd, fd.Body.List, held)
}

// scanStmts walks a statement list tracking the held-lock set.
// Branch bodies are scanned with a copy of the entry state.
func scanStmts(pass *framework.Pass, fd *ast.FuncDecl, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, method, ok := mutexMethod(pass, call); ok {
					switch method {
					case "Lock", "RLock":
						held[key] = call.Pos()
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
			}
			checkUnderLocks(pass, fd, s, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() holds the lock to function end: leave it
			// in the held set. Anything else deferred runs later; skip.
			continue
		case *ast.BlockStmt:
			scanStmts(pass, fd, s.List, held)
		case *ast.IfStmt:
			checkUnderLocks(pass, fd, s.Cond, held)
			scanStmts(pass, fd, s.Body.List, copyHeld(held))
			if s.Else != nil {
				scanStmts(pass, fd, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			scanStmts(pass, fd, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanStmts(pass, fd, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			checkUnderLocks(pass, fd, s, held)
		case *ast.SelectStmt:
			if len(held) > 0 && !framework.SelectHasDefault(s) {
				report(pass, fd, s.Pos(), "blocking select", held)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanStmts(pass, fd, cc.Body, copyHeld(held))
				}
			}
		default:
			checkUnderLocks(pass, fd, stmt, held)
		}
	}
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// checkUnderLocks flags blocking constructs inside node while any lock
// is held.
func checkUnderLocks(pass *framework.Pass, fd *ast.FuncDecl, node ast.Node, held map[string]token.Pos) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if !framework.SelectHasDefault(x) {
				report(pass, fd, x.Pos(), "blocking select", held)
			}
			return false
		case *ast.SendStmt:
			report(pass, fd, x.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				report(pass, fd, x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if pass.IsPkgCall(x, "repro/internal/parallel") {
				report(pass, fd, x.Pos(), "call into internal/parallel", held)
			} else if f := pass.CalleeFunc(x); f != nil && f.Name() == "Wait" && f.Pkg() != nil && f.Pkg().Path() == "sync" {
				report(pass, fd, x.Pos(), "sync Wait", held)
			}
		}
		return true
	})
}

func report(pass *framework.Pass, fd *ast.FuncDecl, pos token.Pos, what string, held map[string]token.Pos) {
	for key := range held {
		pass.Reportf(pos, "%s while %s is held in %s; shrink the critical section", what, key, fd.Name.Name)
		return // one representative lock keeps the message stable
	}
}

// --- rule 2: lock-by-value copies ---------------------------------------

func checkCopies(pass *framework.Pass) {
	framework.EnclosingFuncs(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Recv != nil && len(fd.Recv.List) == 1 {
			t := pass.TypeOf(fd.Recv.List[0].Type)
			if t != nil && !isPointer(t) && framework.ContainsLock(t) {
				pass.Reportf(fd.Recv.Pos(), "method %s copies its lock-containing receiver; use a pointer receiver", fd.Name.Name)
			}
		}
		for _, field := range fd.Type.Params.List {
			t := pass.TypeOf(field.Type)
			if t != nil && !isPointer(t) && framework.ContainsLock(t) {
				pass.Reportf(field.Pos(), "parameter of %s passes a lock-containing value; pass a pointer", fd.Name.Name)
			}
		}
	})
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					checkCopyExpr(pass, rhs)
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					t := pass.TypeOf(x.Value)
					// A `for _, v := range` value is a definition, not a use;
					// its type lives in Defs rather than the Types map.
					if t == nil {
						if id, ok := x.Value.(*ast.Ident); ok {
							if obj := pass.Info.Defs[id]; obj != nil {
								t = obj.Type()
							}
						}
					}
					if t != nil && framework.ContainsLock(t) {
						pass.Reportf(x.Value.Pos(), "range copies lock-containing values; iterate by index or pointer")
					}
				}
			case *ast.CallExpr:
				for _, arg := range x.Args {
					checkCopyExpr(pass, arg)
				}
			}
			return true
		})
	}
}

// checkCopyExpr flags expressions that copy an existing lock-containing
// value: a plain variable/field/deref read of such a type. Composite
// literals and calls construct fresh values and are fine.
func checkCopyExpr(pass *framework.Pass, expr ast.Expr) {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypeOf(expr)
	if t == nil || isPointer(t) {
		return
	}
	if framework.ContainsLock(t) {
		pass.Reportf(expr.Pos(), "copies a lock-containing value of type %s; use a pointer", t)
	}
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}
