//go:build race

package annotations

// RaceEnabled reports whether the binary was built with -race. The race
// runtime instruments every memory access and allocates shadow state,
// so allocation-gate tests over //hatt:noalloc functions must skip.
const RaceEnabled = true
