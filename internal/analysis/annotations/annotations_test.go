package annotations

import (
	"path/filepath"
	"slices"
	"testing"
)

func TestNoAllocFuncs(t *testing.T) {
	// The noalloc analyzer's fixture carries a known annotation set.
	got, err := NoAllocFuncs(filepath.Join("..", "noalloc", "testdata", "a"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bad", "capturing", "coldPath", "good"}
	if !slices.Equal(got, want) {
		t.Fatalf("NoAllocFuncs = %v, want %v", got, want)
	}
}

func TestNoAllocFuncsMethods(t *testing.T) {
	got, err := NoAllocFuncs(filepath.Join("..", "..", "pauli"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"Hamiltonian.Add", "Hamiltonian.Coeff", "String.MulAssign", "String.MulInto", "String.XorAssign"} {
		if !slices.Contains(got, fn) {
			t.Errorf("NoAllocFuncs(internal/pauli) = %v, missing %s", got, fn)
		}
	}
}
