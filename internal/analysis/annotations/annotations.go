// Package annotations gives runtime tests access to the same
// //hatt:noalloc contract the noalloc static pass enforces. An
// allocation-gate test (testing.AllocsPerRun) asserts the dynamic half
// of the contract; NoAllocFuncs lets such a test derive *which*
// functions are under contract from the annotations themselves instead
// of a hand-maintained list, and RaceEnabled tells it when the race
// runtime makes allocation counts meaningless.
package annotations

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Directive is the doc-comment marker for allocation-free functions,
// shared with the noalloc analyzer.
const Directive = "//hatt:noalloc"

// NoAllocFuncs parses the Go package rooted at dir (tests excluded) and
// returns the names of functions annotated //hatt:noalloc, sorted.
// Methods are reported as "Recv.Name" ("Hamiltonian.Add"), plain
// functions as "Name".
func NoAllocFuncs(dir string) ([]string, error) {
	pattern := filepath.Join(dir, "*.go")
	names, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []string
	for _, name := range names {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc) {
				continue
			}
			out = append(out, funcName(fd))
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == Directive || strings.HasPrefix(c.Text, Directive+" ") {
			return true
		}
	}
	return false
}

func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return fd.Name.Name
	}
	return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return recvTypeName(x.X)
	case *ast.IndexListExpr:
		return recvTypeName(x.X)
	default:
		return ""
	}
}
