//go:build !race

package annotations

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
