// Package b is documented; the pass has nothing to say.
package b

func Used() int { return 2 }
