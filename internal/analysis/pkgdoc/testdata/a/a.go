package a // want `package a has no package comment`

func Used() int { return 1 }
