package pkgdoc_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pkgdoc"
)

func TestPkgdocMissing(t *testing.T) {
	analysistest.Run(t, pkgdoc.Analyzer, filepath.Join("testdata", "a"))
}

func TestPkgdocPresent(t *testing.T) {
	analysistest.Run(t, pkgdoc.Analyzer, filepath.Join("testdata", "b"))
}
