// Package pkgdoc requires every package to carry a package comment: a
// doc comment on the package clause of at least one of its files. The
// package comment is the contract a reader meets first — godoc renders
// it as the package synopsis — so a missing one is a finding, enforced
// the same way as the behavioural invariants.
//
// The pass reports once per package (at the package clause of the
// lexicographically first file), not once per file: Go convention puts
// the comment in a single file, and any one file satisfies the check.
package pkgdoc

import (
	"go/ast"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the pkgdoc pass. Scope is empty: every package in the
// module must be documented, commands and test fixtures included.
var Analyzer = &framework.Analyzer{
	Name: "pkgdoc",
	Doc:  "every package carries a package comment (godoc synopsis)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	var first *ast.File
	var firstName string
	for _, f := range pass.Files {
		if hasPackageDoc(f) {
			return nil
		}
		name := pass.Fset.Position(f.Package).Filename
		if first == nil || name < firstName {
			first, firstName = f, name
		}
	}
	if first == nil {
		return nil // no files loaded (shouldn't happen)
	}
	pass.Reportf(first.Package, "package %s has no package comment; add a 'Package %s ...' doc comment to one file",
		pass.Pkg.Name(), pass.Pkg.Name())
	return nil
}

// hasPackageDoc reports whether the file carries a non-empty package
// doc comment. Directive-only comment groups (//go:build and friends)
// do not count — they are instructions to tools, not documentation.
func hasPackageDoc(f *ast.File) bool {
	if f.Doc == nil {
		return false
	}
	for _, c := range f.Doc.List {
		text := strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*")
		text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
		if text == "" {
			continue
		}
		if strings.HasPrefix(c.Text, "//go:") || strings.HasPrefix(text, "+build") {
			continue
		}
		return true
	}
	return false
}
