package noalloc_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, filepath.Join("testdata", "a"))
}
