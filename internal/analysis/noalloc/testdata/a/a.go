// Package a is the noalloc analysistest fixture.
package a

import (
	"fmt"
	"strings"
)

type point struct{ x, y int }

var global int

//hatt:noalloc
func bad(xs []int, s string, b []byte, sb *strings.Builder) {
	xs = append(xs, 1)   // want `append may grow its backing array`
	_ = make([]int, 4)   // want `make allocates`
	_ = new(int)         // want `new allocates`
	_ = map[string]int{} // want `map literal allocates`
	_ = []int{1, 2}      // want `slice literal allocates`
	_ = &point{1, 2}     // want `&composite literal escapes to the heap`
	_ = s + "x"          // want `string concatenation allocates`
	s += "y"             // want `string \+= allocates`
	fmt.Println(s)       // want `fmt call allocates`
	_ = string(b)        // want `string/slice conversion copies`
	_ = []byte(s)        // want `string/slice conversion copies`
	_ = any(global)      // want `conversion to interface boxes the value`
	sb.WriteString(s)    // want `strings.Builder call allocates`
	go nop()             // want `go statement allocates a goroutine`
	_ = xs
}

//hatt:noalloc
func capturing(n int) func() int {
	return func() int { return n } // want `closure captures n`
}

//hatt:noalloc
func good(xs []int, s string) int {
	// Safe constructs: indexing, arithmetic, non-capturing literals,
	// package-level variable access, plain calls, panic messages.
	total := 0
	for _, v := range xs {
		total += v
	}
	f := func(v int) int { return v * 2 }
	total = f(total)
	g := func() int { return global }
	total += g()
	if s == "" {
		panic(fmt.Sprintf("empty input %d", total))
	}
	nop()
	return total
}

// unannotated allocates freely: the directive opts a function in.
func unannotated(s string) string {
	m := map[string]int{"k": 1}
	return fmt.Sprint(s, m)
}

//hatt:noalloc
func coldPath(xs []int) []int {
	if cap(xs) == 0 {
		xs = make([]int, 0, 8) //hatt:lint-ignore noalloc deliberate cold-path growth before the warm loop
	}
	//hatt:lint-ignore noalloc spill map allocated once per collision
	spill := map[string]int{}
	_ = spill
	return xs
}

func nop() {}
