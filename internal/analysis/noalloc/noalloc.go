// Package noalloc enforces the repository's zero-allocation contract at
// compile time: a function whose doc comment carries the
//
//	//hatt:noalloc
//
// directive must not contain allocating constructs. The runtime
// testing.AllocsPerRun gates remain the ground truth for what actually
// allocates; this pass catches the textual regressions — a careless
// append, a closure, an fmt call — the moment they are written, instead
// of one flaky CI run later.
//
// Flagged inside an annotated function:
//   - append (may grow the backing array)
//   - make, new
//   - map, slice, and &composite literals
//   - function literals that capture local variables (closure escapes)
//   - string concatenation (+ / +=) and string ⇄ []byte/[]rune conversions
//   - conversions of non-interface values to interface types (boxing)
//   - calls into fmt and strings.Builder methods
//   - go statements (a goroutine allocates its closure and stack)
//
// Arguments of panic(...) are exempt: a panicking error path may build
// its message. Plain calls are NOT traced interprocedurally — deliberate
// cold-path allocation belongs behind a constructor call or an explicit
// //hatt:lint-ignore noalloc <reason> directive.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Directive is the annotation marking a function allocation-free.
const Directive = "hatt:noalloc"

// Analyzer is the noalloc pass. It has no package scope: the annotation
// itself opts a function in, wherever it lives.
var Analyzer = &framework.Analyzer{
	Name: "noalloc",
	Doc:  "flag allocating constructs inside //hatt:noalloc functions",
	Run:  run,
}

func run(pass *framework.Pass) error {
	framework.EnclosingFuncs(pass.Files, func(fd *ast.FuncDecl) {
		if framework.HasDirective(fd.Doc, Directive) {
			checkFunc(pass, fd)
		}
	})
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// A panic's arguments are the error path; building the message
			// there is fine.
			if pass.IsBuiltinCall(x, "panic") {
				return false
			}
			checkCall(pass, name, x)
		case *ast.CompositeLit:
			t := pass.TypeOf(x)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(x.Pos(), "map literal allocates in //%s function %s", Directive, name)
			case *types.Slice:
				pass.Reportf(x.Pos(), "slice literal allocates in //%s function %s", Directive, name)
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					pass.Reportf(x.Pos(), "&composite literal escapes to the heap in //%s function %s", Directive, name)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && pass.IsString(x.X) {
				pass.Reportf(x.Pos(), "string concatenation allocates in //%s function %s", Directive, name)
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && pass.IsString(x.Lhs[0]) {
				pass.Reportf(x.Pos(), "string += allocates in //%s function %s", Directive, name)
			}
		case *ast.FuncLit:
			if id := capturedVar(pass, x); id != nil {
				pass.Reportf(x.Pos(), "closure captures %s in //%s function %s", id.Name, Directive, name)
			}
			return false // a nested literal's body is its own scope
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "go statement allocates a goroutine in //%s function %s", Directive, name)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkCall(pass *framework.Pass, name string, call *ast.CallExpr) {
	switch {
	case pass.IsBuiltinCall(call, "append"):
		pass.Reportf(call.Pos(), "append may grow its backing array in //%s function %s", Directive, name)
	case pass.IsBuiltinCall(call, "make"):
		pass.Reportf(call.Pos(), "make allocates in //%s function %s", Directive, name)
	case pass.IsBuiltinCall(call, "new"):
		pass.Reportf(call.Pos(), "new allocates in //%s function %s", Directive, name)
	case pass.IsPkgCall(call, "fmt"):
		pass.Reportf(call.Pos(), "fmt call allocates in //%s function %s", Directive, name)
	default:
		if f := pass.CalleeFunc(call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "strings" {
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil &&
				framework.NamedIn(sig.Recv().Type(), "strings", "Builder") {
				pass.Reportf(call.Pos(), "strings.Builder call allocates in //%s function %s", Directive, name)
				return
			}
		}
		checkConversion(pass, name, call)
	}
}

func checkConversion(pass *framework.Pass, name string, call *ast.CallExpr) {
	target, ok := pass.IsConversion(call)
	if !ok || len(call.Args) != 1 {
		return
	}
	src := pass.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if types.IsInterface(target.Underlying()) && !types.IsInterface(src.Underlying()) {
		if b, isBasic := src.Underlying().(*types.Basic); !isBasic || b.Kind() != types.UntypedNil {
			pass.Reportf(call.Pos(), "conversion to interface boxes the value in //%s function %s", Directive, name)
		}
		return
	}
	srcStr := isStringy(src)
	dstStr := isStringy(target)
	srcBytes := isByteOrRuneSlice(src)
	dstBytes := isByteOrRuneSlice(target)
	if (srcStr && dstBytes) || (srcBytes && dstStr) {
		pass.Reportf(call.Pos(), "string/slice conversion copies in //%s function %s", Directive, name)
	}
}

func isStringy(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// capturedVar returns an identifier inside the function literal that
// refers to a local variable declared outside it (forcing a heap
// closure), or nil when the literal captures nothing.
func capturedVar(pass *framework.Pass, fl *ast.FuncLit) *ast.Ident {
	var bad *ast.Ident
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if bad != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are accessed directly, not captured.
		if v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			bad = id
		}
		return true
	})
	return bad
}
