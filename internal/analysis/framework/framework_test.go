package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// dummy flags every make call, giving the suppression machinery
// something deterministic to chew on.
var dummy = &Analyzer{
	Name: "dummy",
	Doc:  "flag every make call",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && pass.IsBuiltinCall(call, "make") {
					pass.Reportf(call.Pos(), "make call")
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressionAndHygiene(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "ignores"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}
	type exp struct {
		analyzer string
		line     int
		contains string
	}
	want := []exp{
		// alloc1's make is suppressed by a well-formed directive.
		{"lintignore", 9, "needs a pass name and a reason"},
		{"dummy", 10, "make call"}, // broken directives suppress nothing
		{"dummy", 14, "make call"}, // wrong-pass directives suppress nothing
		{"lintignore", 14, `unknown pass "nosuchpass"`},
		{"dummy", 20, "make call"}, // directive two lines up is out of range
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, w := range want {
		f := findings[i]
		if f.Analyzer != w.analyzer || f.Pos.Line != w.line || !strings.Contains(f.Message, w.contains) {
			t.Errorf("finding %d = %s; want [%s] line %d containing %q", i, f, w.analyzer, w.line, w.contains)
		}
	}
}

func TestInScope(t *testing.T) {
	scoped := &Analyzer{Scope: []string{"repro/internal/core"}}
	for path, want := range map[string]bool{
		"repro/internal/core": true,  // listed
		"repro/internal/sim":  false, // module package not listed
		"a":                   true,  // testdata fixtures always pass
	} {
		if got := scoped.inScope(path); got != want {
			t.Errorf("inScope(%q) = %v, want %v", path, got, want)
		}
	}
	open := &Analyzer{}
	if !open.inScope("repro/internal/sim") {
		t.Error("empty scope must match every package")
	}
}

func TestHasDirective(t *testing.T) {
	src := `package p

//hatt:noalloc
func a() {}

// hatt:noalloc (spaced: a comment about the directive, not one)
func b() {}

func c() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"a": true, "b": false, "c": false}
	for _, decl := range f.Decls {
		fd := decl.(*ast.FuncDecl)
		if got := HasDirective(fd.Doc, "hatt:noalloc"); got != want[fd.Name.Name] {
			t.Errorf("HasDirective(%s) = %v, want %v", fd.Name.Name, got, want[fd.Name.Name])
		}
	}
}
