// Package a exercises lint-ignore parsing, suppression, and hygiene.
package a

func alloc1() []int {
	return make([]int, 1) //hatt:lint-ignore dummy cold path, measured
}

func alloc2() []int {
	//hatt:lint-ignore
	return make([]int, 2)
}

func alloc3() []int {
	return make([]int, 3) //hatt:lint-ignore nosuchpass retired analyzer
}

func alloc4() []int {
	//hatt:lint-ignore dummy covers the very next line only
	_ = len("")
	return make([]int, 4)
}
