package framework

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// CalleeFunc resolves the *types.Func a call invokes, or nil for
// builtins, conversions, and dynamic calls through function values.
func (p *Pass) CalleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgCall reports whether call invokes one of the named package-level
// functions (or methods) of the package with the given import path. An
// empty names list matches any function of the package.
func (p *Pass) IsPkgCall(call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := p.CalleeFunc(call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// IsBuiltinCall reports whether call invokes the named builtin.
func (p *Pass) IsBuiltinCall(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

// IsConversion reports whether call is a type conversion, returning the
// target type.
func (p *Pass) IsConversion(call *ast.CallExpr) (types.Type, bool) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// ConstInt returns the value of expr when it is an integer constant.
func (p *Pass) ConstInt(expr ast.Expr) (int64, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// ConstString returns the value of expr when it is a string constant.
func (p *Pass) ConstString(expr ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// IsString reports whether expr has (possibly untyped) string type.
func (p *Pass) IsString(expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// TypeOf returns the type of expr, or nil.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	if tv, ok := p.Info.Types[expr]; ok {
		return tv.Type
	}
	return nil
}

// IsMapType reports whether expr ranges over / has a map type.
func (p *Pass) IsMapType(expr ast.Expr) bool {
	t := p.TypeOf(expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// NamedIn reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func NamedIn(t types.Type, pkgPath string, names ...string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return len(names) == 0
}

// ContainsLock reports whether a value of type t must not be copied:
// it is, or transitively contains by value, one of the sync types with
// internal state (Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map).
func ContainsLock(t types.Type) bool {
	return containsLock(t, make(map[types.Type]bool))
}

func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if NamedIn(t, "sync", "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map") {
		// Pointers were stripped by NamedIn, but a *sync.Mutex field is
		// fine to copy — only accept the bare named type here.
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// EnclosingFuncs walks the file and calls fn for every function
// declaration with a body.
func EnclosingFuncs(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// HasCtxParam reports whether the function type carries a
// context.Context parameter.
func (p *Pass) HasCtxParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if NamedIn(p.TypeOf(field.Type), "context", "Context") {
			return true
		}
	}
	return false
}

// SelectHasDefault reports whether a select statement has a default
// clause, i.e. its channel operations are non-blocking.
func SelectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// ContainsRecover reports whether the node's subtree (excluding nested
// function literals other than deferred ones' own bodies) calls
// recover(). Used to recognize panic safety nets.
func (p *Pass) ContainsRecover(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && p.IsBuiltinCall(call, "recover") {
			found = true
			return false
		}
		return true
	})
	return found
}
