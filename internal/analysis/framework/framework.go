// Package framework is a deliberately small, stdlib-only counterpart of
// golang.org/x/tools/go/analysis: an Analyzer is a named check over one
// type-checked package, a Pass is the per-package invocation, and Run
// drives a set of analyzers over loaded packages with uniform handling
// of the repository's suppression directive.
//
// The x/tools module is not vendored here (the repo is stdlib-only by
// policy), so this package reimplements the thin slice the hattlint
// passes need: syntax + full type information per package, positional
// diagnostics, and deterministic ordering. It does not implement facts,
// result dependencies between analyzers, or suggested fixes.
//
// # Suppression directive
//
// A finding is suppressed by a comment of the form
//
//	//hatt:lint-ignore <pass> <reason...>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory: a directive without one — or naming no pass —
// is itself reported (analyzer name "lintignore"), so every silenced
// diagnostic carries its justification in the tree. Directives naming
// a pass that is not part of the run are reported as stale.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePrefix is the import-path prefix of this repository's own
// packages. Analyzers scope themselves to module packages; packages
// outside the prefix (in practice: analysistest fixtures, which have
// single-segment paths) are always in scope so testdata exercises every
// rule without faking module paths.
const ModulePrefix = "repro/"

// IgnoreDirective is the comment prefix that suppresses one finding.
const IgnoreDirective = "//hatt:lint-ignore"

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the pass in output and in lint-ignore directives.
	Name string
	// Doc is a one-paragraph description of what the pass enforces.
	Doc string
	// Scope lists the module package paths the pass applies to. Empty
	// means every package. Non-module packages (testdata) always pass.
	Scope []string
	// Run reports findings for one package through pass.Report.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Report records a finding.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// Reportf records a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: position made concrete, analyzer
// name attached, suppression already applied.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// inScope reports whether an analyzer applies to a package path.
func (a *Analyzer) inScope(path string) bool {
	if len(a.Scope) == 0 || !strings.HasPrefix(path, ModulePrefix) && path != strings.TrimSuffix(ModulePrefix, "/") {
		return true
	}
	for _, s := range a.Scope {
		if path == s {
			return true
		}
	}
	return false
}

// ignore is one parsed suppression directive.
type ignore struct {
	pass   string
	reason string
	pos    token.Pos
	line   int
	file   string
	used   bool
	broken bool // malformed: missing pass or reason
}

// parseIgnores extracts every lint-ignore directive from a file.
func parseIgnores(fset *token.FileSet, f *ast.File) []*ignore {
	var out []*ignore
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnoreDirective) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, IgnoreDirective)
			pos := fset.Position(c.Pos())
			ig := &ignore{pos: c.Pos(), line: pos.Line, file: pos.Filename}
			fields := strings.Fields(rest)
			if len(fields) == 0 || len(fields) < 2 {
				ig.broken = true
			} else {
				ig.pass = fields[0]
				ig.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, ig)
		}
	}
	return out
}

// Run executes every analyzer over every package, applies suppression
// directives, checks directive hygiene, and returns all surviving
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		var ignores []*ignore
		for _, f := range pkg.Files {
			ignores = append(ignores, parseIgnores(pkg.Fset, f)...)
		}
		suppressed := func(name string, pos token.Position) bool {
			for _, ig := range ignores {
				if ig.broken || ig.pass != name || ig.file != pos.Filename {
					continue
				}
				// A directive covers its own line (trailing comment) and
				// the line directly below (standalone comment above).
				if pos.Line == ig.line || pos.Line == ig.line+1 {
					ig.used = true
					return true
				}
			}
			return false
		}
		for _, a := range analyzers {
			if !a.inScope(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		// Directive hygiene: malformed or stale directives are findings in
		// their own right — an unexplained or dangling ignore must not rot
		// silently in the tree.
		for _, ig := range ignores {
			pos := pkg.Fset.Position(ig.pos)
			switch {
			case ig.broken:
				findings = append(findings, Finding{
					Analyzer: "lintignore", Pos: pos,
					Message: "lint-ignore needs a pass name and a reason: //hatt:lint-ignore <pass> <reason>",
				})
			case !known[ig.pass]:
				findings = append(findings, Finding{
					Analyzer: "lintignore", Pos: pos,
					Message: fmt.Sprintf("lint-ignore names unknown pass %q", ig.pass),
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}

// HasDirective reports whether a doc comment group contains the given
// directive (e.g. "hatt:noalloc"), written as its own "//"-comment line
// with no space after the slashes, per Go directive convention.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
