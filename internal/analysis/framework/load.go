package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package: the unit a Pass sees.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir and decodes the
// JSON stream. The -export flag makes the go tool materialize compiled
// export data for every listed package in the build cache, which is
// what lets the loader type-check against dependencies without x/tools:
// imports resolve through gc export data exactly as the compiler would.
func goList(dir string, patterns ...string) ([]listEntry, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter builds a types.Importer that resolves every import
// through the export-data files `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// newInfo allocates the types.Info maps the passes rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists, parses, and type-checks the packages matching patterns,
// rooted at dir (any directory inside the module). Only the matched
// packages are returned; their dependencies — module-internal and
// stdlib alike — are consumed as export data.
func Load(dir string, patterns ...string) ([]*Package, error) {
	entries, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	exports := make(map[string]string, len(entries))
	var targets []listEntry
	for _, e := range entries {
		if e.Error != nil && !e.DepOnly {
			return nil, fmt.Errorf("%s: %s", e.ImportPath, e.Error.Err)
		}
		exports[e.ImportPath] = e.Export
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, e := range targets {
		if len(e.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		pkg, err := typecheck(fset, e.ImportPath, e.Dir, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir
// without consulting the module graph — the analysistest path, since
// testdata directories are invisible to the go tool. Imports must
// resolve outside dir (stdlib or module packages); their export data is
// listed on demand.
func LoadDir(dir string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
		for _, im := range f.Imports {
			p, err := strconv.Unquote(im.Path.Value)
			if err != nil {
				return nil, err
			}
			importSet[p] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		paths := make([]string, 0, len(importSet))
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		entries, err := goList(dir, paths...)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Error != nil {
				return nil, fmt.Errorf("%s: %s", e.ImportPath, e.Error.Err)
			}
			exports[e.ImportPath] = e.Export
		}
	}
	pkgName := parsed[0].Name.Name
	return typecheckParsed(fset, pkgName, dir, parsed, exportImporter(fset, exports))
}

// typecheck parses the named files and type-checks them as one package.
func typecheck(fset *token.FileSet, path, dir string, filenames []string, imp types.Importer) (*Package, error) {
	var parsed []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return typecheckParsed(fset, path, dir, parsed, imp)
}

func typecheckParsed(fset *token.FileSet, path, dir string, parsed []*ast.File, imp types.Importer) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: parsed, Types: tpkg, Info: info}, nil
}
