// Package detrand enforces the engine's determinism guarantee — same
// seed ⇒ byte-identical mapping at any worker count — as a lint rule
// over the packages that guarantee it (internal/core, internal/mapping,
// pkg/compiler). Three families of diagnostics:
//
//  1. Map-range iteration whose body feeds ordered output: appending to
//     a slice that is never sorted afterwards in the same function,
//     sending on a channel, writing to a writer, or concatenating a
//     string. Iterating a map to fill another map, count, or reduce
//     commutatively is fine and not flagged.
//  2. Unseeded math/rand: package-level rand.Intn/Float64/… draw from
//     the process-global source; deterministic code must thread a
//     rand.New(rand.NewSource(seed)).
//  3. Ambient state reachable from digest/key construction: any
//     function reachable (same-package static call graph) from a
//     Digest/deviceDigest/storeKey/fingerprint root must not call
//     time.Now or os.Getenv, and must not range over a map at all —
//     store keys and option digests must be pure functions of their
//     inputs.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the detrand pass.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc:  "flag nondeterminism sources (map order, global rand, ambient state) in determinism-critical packages",
	Scope: []string{
		"repro/internal/core",
		"repro/internal/mapping",
		"repro/pkg/compiler",
	},
	Run: run,
}

// digestRoots are the function names treated as digest/key entry
// points; everything they reach must be deterministic.
var digestRoots = map[string]bool{
	"Digest":       true,
	"deviceDigest": true,
	"storeKey":     true,
	"Fingerprint":  true,
	"fingerprint":  true,
}

// seededConstructors are the math/rand functions that build explicit
// sources rather than drawing from the global one.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *framework.Pass) error {
	reach := digestReachable(pass)
	framework.EnclosingFuncs(pass.Files, func(fd *ast.FuncDecl) {
		inDigest := false
		if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			inDigest = reach[obj]
		}
		checkFunc(pass, fd, inDigest)
	})
	return nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, inDigest bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if !pass.IsMapType(x.X) {
				return true
			}
			if inDigest {
				pass.Reportf(x.Pos(), "map iteration order reaches digest/key construction via %s; iterate sorted keys", fd.Name.Name)
				return true
			}
			checkMapRange(pass, fd, x)
		case *ast.CallExpr:
			checkCall(pass, x, fd.Name.Name, inDigest)
		}
		return true
	})
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, fn string, inDigest bool) {
	f := pass.CalleeFunc(call)
	if f == nil || f.Pkg() == nil {
		return
	}
	// Package-level math/rand draws (no receiver) use the global,
	// process-seeded source.
	switch f.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		sig, _ := f.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && !seededConstructors[f.Name()] {
			pass.Reportf(call.Pos(), "global math/rand.%s is process-seeded; thread a rand.New(rand.NewSource(seed))", f.Name())
		}
	case "time":
		if inDigest && f.Name() == "Now" {
			pass.Reportf(call.Pos(), "time.Now in digest/key path %s makes the content address unstable", fn)
		}
	case "os":
		if inDigest && f.Name() == "Getenv" {
			pass.Reportf(call.Pos(), "os.Getenv in digest/key path %s makes the content address environment-dependent", fn)
		}
	}
}

// checkMapRange flags a map range whose body feeds ordered output.
func checkMapRange(pass *framework.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	// Slice variables appended to inside the loop; ordered unless the
	// function later sorts them.
	appended := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(x.Pos(), "channel send inside map range leaks iteration order in %s", fd.Name.Name)
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !pass.IsBuiltinCall(call, "append") || i >= len(x.Lhs) {
					continue
				}
				if obj := rootObject(pass, x.Lhs[i]); obj != nil {
					appended[obj] = true
				}
			}
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && pass.IsString(x.Lhs[0]) {
				pass.Reportf(x.Pos(), "string concatenation inside map range leaks iteration order in %s", fd.Name.Name)
			}
		case *ast.CallExpr:
			if pass.IsPkgCall(x, "fmt", "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println") {
				pass.Reportf(x.Pos(), "write inside map range leaks iteration order in %s", fd.Name.Name)
				return true
			}
			if f := pass.CalleeFunc(x); f != nil {
				sig, _ := f.Type().(*types.Signature)
				if sig != nil && sig.Recv() != nil &&
					(f.Name() == "Write" || f.Name() == "WriteString" || f.Name() == "WriteByte" || f.Name() == "WriteRune") {
					pass.Reportf(x.Pos(), "write inside map range leaks iteration order in %s", fd.Name.Name)
				}
			}
		}
		return true
	})
	if len(appended) == 0 {
		return
	}
	// Absolve slices the function sorts after the loop.
	for obj := range appended {
		if sortedAfter(pass, fd, rng, obj) {
			delete(appended, obj)
		}
	}
	for obj := range appended {
		pass.Reportf(rng.Pos(), "map range appends to %s without sorting it; iteration order leaks into the result in %s", obj.Name(), fd.Name.Name)
	}
}

// rootObject resolves the base variable of an lvalue (x, x.f, x[i]).
func rootObject(pass *framework.Pass, expr ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return pass.Info.Uses[x]
		case *ast.SelectorExpr:
			return pass.Info.Uses[x.Sel]
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call after the range statement within the same function.
func sortedAfter(pass *framework.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		if !pass.IsPkgCall(call, "sort") && !pass.IsPkgCall(call, "slices") {
			return true
		}
		if rootObject(pass, call.Args[0]) == obj {
			found = true
		}
		return true
	})
	return found
}

// digestReachable computes the same-package functions reachable from
// the digest roots through static calls.
func digestReachable(pass *framework.Pass) map[*types.Func]bool {
	// Static call edges between functions declared in this package.
	edges := map[*types.Func][]*types.Func{}
	decls := map[*types.Func]*ast.FuncDecl{}
	framework.EnclosingFuncs(pass.Files, func(fd *ast.FuncDecl) {
		caller, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		decls[caller] = fd
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := pass.CalleeFunc(call)
			if callee != nil && callee.Pkg() == pass.Pkg {
				edges[caller] = append(edges[caller], callee)
			}
			return true
		})
	})
	reach := map[*types.Func]bool{}
	var queue []*types.Func
	for fn := range decls {
		if digestRoots[fn.Name()] {
			reach[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range edges[fn] {
			if !reach[callee] {
				reach[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return reach
}
