// Package a is the detrand analysistest fixture.
package a

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"
)

// Digest is a digest root: its whole static call closure must be a pure
// function of its inputs.
func Digest(m map[string]int) string {
	for k := range m { // want `map iteration order reaches digest/key construction via Digest`
		_ = k
	}
	helper()
	_ = time.Now()        // want `time.Now in digest/key path Digest`
	_ = os.Getenv("HOME") // want `os.Getenv in digest/key path Digest`
	return ""
}

// helper is reached from Digest, so its map range is flagged too.
func helper() {
	for range map[int]int{1: 1} { // want `map iteration order reaches digest/key construction via helper`
	}
}

// Keys leaks map order into a slice it never sorts.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map range appends to out without sorting it`
		out = append(out, k)
	}
	return out
}

// SortedKeys is the blessed idiom: append then sort.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Print(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `write inside map range leaks iteration order`
	}
}

func Send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside map range leaks iteration order`
	}
}

func Concat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation inside map range leaks iteration order`
	}
	return s
}

// Count reduces commutatively; map order cannot be observed.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Invert fills another map; order cannot be observed either.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func Roll() int {
	return rand.Intn(6) // want `global math/rand.Intn is process-seeded`
}

// Seeded threads an explicit source: deterministic for a fixed seed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
