package detrand_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, filepath.Join("testdata", "a"))
}
