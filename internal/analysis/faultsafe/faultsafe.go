// Package faultsafe keeps fault injection out of the zero-alloc hot
// path: no failpoint (repro/internal/fault) call may appear inside a
// //hatt:noalloc function. A disarmed failpoint is a single atomic load
// — but that is still a load and a branch the kernels must not pay, and
// an armed plan would make a "zero-cost" function allocate, sleep, or
// error. Chaos belongs at the service, store, and fleet seams, where
// failure is part of the contract; inside a kernel a failpoint is a
// correctness bug waiting for the first armed plan.
package faultsafe

import (
	"go/ast"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/noalloc"
)

// Analyzer is the faultsafe pass. Like noalloc it has no package scope:
// the //hatt:noalloc annotation is what brings a function into scope,
// wherever it lives.
var Analyzer = &framework.Analyzer{
	Name: "faultsafe",
	Doc:  "flag failpoint (internal/fault) calls inside //hatt:noalloc functions",
	Run:  run,
}

// faultPkg is the failpoint package whose calls are banned inside
// zero-alloc kernels.
const faultPkg = "repro/internal/fault"

func run(pass *framework.Pass) error {
	framework.EnclosingFuncs(pass.Files, func(fd *ast.FuncDecl) {
		if !framework.HasDirective(fd.Doc, noalloc.Directive) {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != faultPkg {
				return true
			}
			pass.Reportf(call.Pos(), "failpoint fault.%s called inside //hatt:noalloc %s; fault injection is banned in zero-alloc kernels",
				fn.Name(), fd.Name.Name)
			return true
		})
	})
	return nil
}
