// Package a is the faultsafe analysistest fixture.
package a

import (
	"context"

	"repro/internal/fault"
)

// Seam is ordinary service-layer code: failpoints are welcome here.
func Seam(ctx context.Context) error {
	if err := fault.Point("store.disk.write"); err != nil {
		return err
	}
	return fault.PointCtx(ctx, "fleet.peer.dial")
}

//hatt:noalloc
func Kernel(dst, src []uint64) {
	if err := fault.Point("kernel.xor"); err != nil { // want `failpoint fault.Point called inside //hatt:noalloc Kernel`
		return
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
	_ = fault.Mutate("kernel.xor", nil) // want `failpoint fault.Mutate called inside //hatt:noalloc Kernel`
}

//hatt:noalloc
func Clean(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}
