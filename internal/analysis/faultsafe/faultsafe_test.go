package faultsafe_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/faultsafe"
)

func TestFaultsafe(t *testing.T) {
	analysistest.Run(t, faultsafe.Analyzer, filepath.Join("testdata", "a"))
}
