package bench

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/models"
)

// WorkflowMetric is one (mapping, pass) outcome for Tables IV and V.
type WorkflowMetric struct {
	CNOTs int
	U3s   int
	Depth int
}

// Table4Row reports JW-vs-HATT after the tetris-lite routing pass on one
// device.
type Table4Row struct {
	Device string
	Case   string
	Modes  int
	JW     WorkflowMetric
	HATT   WorkflowMetric
}

// table45Catalog is the molecule subset used for the workflow tables:
// the extended catalog (6-31G and freeze-core variants, as in the paper's
// Tables IV/V) limited to sizes where routing over the 27-qubit Montreal
// fits.
func table45Catalog(opt Options) []models.Case {
	var out []models.Case
	for _, c := range models.ElectronicExtended() {
		if c.Modes > 20 {
			continue
		}
		if opt.MaxModes > 0 && c.Modes > opt.MaxModes {
			continue
		}
		out = append(out, c)
	}
	return out
}

func jwAndHATT(c models.Case) (*fermion.MajoranaHamiltonian, *mapping.Mapping, *mapping.Mapping) {
	mh := c.Build().Majorana(1e-12)
	return mh, mapping.JordanWigner(c.Modes), core.Build(mh).Mapping
}

// Table4 regenerates the Tetris-on-architecture comparison: circuits for
// the JW and HATT mappings are routed onto Manhattan, Sycamore, and
// Montreal with the tetris-lite pass.
func Table4(opt Options) ([]Table4Row, error) {
	devices := []*arch.Device{arch.Manhattan(), arch.Sycamore(), arch.Montreal()}
	var rows []Table4Row
	for _, c := range table45Catalog(opt) {
		mh, jw, hatt := jwAndHATT(c)
		for _, d := range devices {
			if c.Modes > d.N {
				continue
			}
			row := Table4Row{Device: d.Name, Case: c.Name, Modes: c.Modes}
			for i, m := range []*mapping.Mapping{jw, hatt} {
				logical := circuit.Compile(m.Apply(mh), circuit.OrderLexicographic)
				res, err := arch.Route(logical, d)
				if err != nil {
					return nil, err
				}
				wm := WorkflowMetric{
					CNOTs: res.Circuit.CNOTCount(),
					U3s:   res.Circuit.SingleCount(),
					Depth: res.Circuit.Depth(),
				}
				if i == 0 {
					row.JW = wm
				} else {
					row.HATT = wm
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintTable4 renders the routed-workflow comparison.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "== Table IV: tetris-lite routing on Manhattan / Sycamore / Montreal (JW vs HATT) ==")
	fmt.Fprintf(w, "%-10s %-16s %5s | %8s %8s | %8s %8s | %8s %8s\n",
		"Device", "Case", "Modes", "CX(JW)", "CX(HA)", "U3(JW)", "U3(HA)", "D(JW)", "D(HA)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-16s %5d | %8d %8d | %8d %8d | %8d %8d\n",
			r.Device, r.Case, r.Modes,
			r.JW.CNOTs, r.HATT.CNOTs, r.JW.U3s, r.HATT.U3s, r.JW.Depth, r.HATT.Depth)
	}
	fmt.Fprintln(w)
}

// Table5Row reports JW-vs-HATT under the rustiq-lite synthesis pass.
type Table5Row struct {
	Case  string
	Modes int
	JW    WorkflowMetric
	HATT  WorkflowMetric
}

// Table5 regenerates the Rustiq workflow comparison with the rustiq-lite
// balanced-tree synthesis.
func Table5(opt Options) []Table5Row {
	var rows []Table5Row
	for _, c := range table45Catalog(opt) {
		if c.Modes > 14 {
			continue // greedy chaining is quadratic in term count
		}
		mh, jw, hatt := jwAndHATT(c)
		row := Table5Row{Case: c.Name, Modes: c.Modes}
		for i, m := range []*mapping.Mapping{jw, hatt} {
			cc := circuit.SynthesizeRustiq(m.Apply(mh), 1.0)
			wm := WorkflowMetric{CNOTs: cc.CNOTCount(), U3s: cc.SingleCount(), Depth: cc.Depth()}
			if i == 0 {
				row.JW = wm
			} else {
				row.HATT = wm
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTable5 renders the rustiq-lite comparison.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "== Table V: rustiq-lite synthesis (JW vs HATT) ==")
	fmt.Fprintf(w, "%-16s %5s | %8s %8s | %8s %8s | %8s %8s\n",
		"Case", "Modes", "CX(JW)", "CX(HA)", "U3(JW)", "U3(HA)", "D(JW)", "D(HA)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %5d | %8d %8d | %8d %8d | %8d %8d\n",
			r.Case, r.Modes,
			r.JW.CNOTs, r.HATT.CNOTs, r.JW.U3s, r.HATT.U3s, r.JW.Depth, r.HATT.Depth)
	}
	fmt.Fprintln(w)
}
