package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quickOptions keeps the harness tests fast.
func quickOptions() Options {
	return Options{
		MaxModes:   8,
		FHMaxModes: 4,
		FHBudget:   200_000,
		Shots:      40,
		GridSteps:  2,
		MaxN:       5,
		FHMaxN:     3,
	}
}

func TestTable1Quick(t *testing.T) {
	rows := Table1(quickOptions())
	if len(rows) != 2 { // H2 (4) and LiH_frz (6)
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	h2 := rows[0]
	if h2.Case != "H2_sto3g" {
		t.Fatalf("first row = %s", h2.Case)
	}
	jw := h2.Metrics["JW"]
	if jw.Weight != 32 {
		t.Errorf("H2 JW weight = %d, want 32 (paper Table I)", jw.Weight)
	}
	hatt := h2.Metrics["HATT"]
	if hatt.Weight > jw.Weight {
		t.Errorf("HATT weight %d worse than JW %d on H2", hatt.Weight, jw.Weight)
	}
	fh := h2.Metrics["FH"]
	if fh.Skip {
		t.Error("FH should run on 4 modes")
	}
	if fh.Weight > hatt.Weight {
		t.Errorf("FH %d worse than HATT %d", fh.Weight, hatt.Weight)
	}
	var buf bytes.Buffer
	PrintRows(&buf, "Table I", rows, MappingNames)
	if !strings.Contains(buf.String(), "H2_sto3g") {
		t.Error("printout missing case name")
	}
}

func TestTable2Quick(t *testing.T) {
	rows := Table2(quickOptions())
	if len(rows) != 1 { // 2x2 only at ≤ 8 modes
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Case != "2x2" || r.Modes != 8 {
		t.Fatalf("row = %+v", r)
	}
	if r.Metrics["JW"].Weight != 80 {
		t.Errorf("2x2 JW weight = %d, want 80 (paper Table II)", r.Metrics["JW"].Weight)
	}
	if r.Metrics["HATT"].Weight >= r.Metrics["JW"].Weight {
		t.Errorf("HATT %d should beat JW %d on 2x2", r.Metrics["HATT"].Weight, r.Metrics["JW"].Weight)
	}
	if !r.Metrics["FH"].Skip {
		t.Error("FH should be skipped at 8 modes with FHMaxModes=4")
	}
}

func TestTable3Quick(t *testing.T) {
	opt := quickOptions()
	opt.MaxModes = 12
	rows := Table3(opt)
	if len(rows) != 1 { // 3x2F
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if !rows[0].Metrics["FH"].Skip {
		t.Error("FH must be skipped for all neutrino cases")
	}
	if rows[0].Metrics["HATT"].Weight >= rows[0].Metrics["JW"].Weight {
		t.Errorf("HATT should beat JW on 3x2F: %d vs %d",
			rows[0].Metrics["HATT"].Weight, rows[0].Metrics["JW"].Weight)
	}
}

func TestTable4Quick(t *testing.T) {
	opt := quickOptions()
	opt.MaxModes = 6
	rows, err := Table4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 2 molecules × 3 devices
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.JW.CNOTs <= 0 || r.HATT.CNOTs <= 0 {
			t.Errorf("%s/%s: empty metrics", r.Device, r.Case)
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "Manhattan") {
		t.Error("printout missing device")
	}
}

func TestTable5Quick(t *testing.T) {
	opt := quickOptions()
	opt.MaxModes = 6
	rows := Table5(opt)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.JW.CNOTs <= 0 || r.HATT.CNOTs <= 0 {
			t.Errorf("%s: empty metrics", r.Case)
		}
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty printout")
	}
}

func TestTable6Quick(t *testing.T) {
	rows := Table6(quickOptions())
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.VacuumOpt {
			t.Errorf("%s: optimized HATT must preserve vacuum", r.Case)
		}
		if r.UnoptWeight <= 0 || r.OptWeight <= 0 {
			t.Errorf("%s: zero weights", r.Case)
		}
		// The paper reports ~0.43%% average difference; allow a loose bound
		// per case.
		if r.RelDiffPct > 25 || r.RelDiffPct < -25 {
			t.Errorf("%s: unopt/opt differ by %.1f%%", r.Case, r.RelDiffPct)
		}
	}
	var buf bytes.Buffer
	PrintTable6(&buf, rows)
	if !strings.Contains(buf.String(), "Table VI") {
		t.Error("printout missing title")
	}
}

func TestFigure10Quick(t *testing.T) {
	opt := quickOptions()
	cells, err := Figure10(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 2 molecules × (4 mappings for H2 [FH runs at 4 modes] + 3+1 for LiH
	// [FH skipped at 6 modes? FHMaxModes=4 ⇒ 4 mappings for H2, 4 for LiH
	// without FH]) × 2×2 grid — just check shape loosely and sanity.
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range cells {
		if c.Variance < 0 {
			t.Errorf("negative variance in %+v", c)
		}
		if c.P1 < 1e-5-1e-12 || c.P2 > 1e-3+1e-12 {
			t.Errorf("grid point out of range: %+v", c)
		}
	}
	var buf bytes.Buffer
	PrintFigure10(&buf, cells)
	if !strings.Contains(buf.String(), "H2") {
		t.Error("printout missing molecule")
	}
}

func TestFigure11Quick(t *testing.T) {
	opt := quickOptions()
	res, err := Figure11(opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theoretical > -1.0 {
		t.Errorf("theoretical H2 energy = %v, want ≈ -1.137", res.Theoretical)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		// The noiseless circuit energy should be near the HF energy, well
		// below zero; the noisy mean should be within a loose band.
		if r.Ideal > -0.5 {
			t.Errorf("%s: noiseless energy %v suspicious", r.Mapping, r.Ideal)
		}
		if r.Variance < 0 {
			t.Errorf("%s: negative variance", r.Mapping)
		}
	}
	var buf bytes.Buffer
	PrintFigure11(&buf, res)
	if !strings.Contains(buf.String(), "IonQ") {
		t.Error("printout missing title")
	}
}

func TestFigure12Quick(t *testing.T) {
	rows := Figure12(quickOptions())
	if len(rows) != 4 { // N = 2..5
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Opt <= 0 || r.Unopt <= 0 {
			t.Errorf("N=%d: zero timings", r.Modes)
		}
		if r.Modes <= 3 && r.FH == 0 {
			t.Errorf("N=%d: FH skipped unexpectedly", r.Modes)
		}
	}
	var buf bytes.Buffer
	PrintFigure12(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 12") {
		t.Error("printout missing title")
	}
}
