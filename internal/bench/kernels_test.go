package bench

import (
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis/annotations"
)

// allocGatedKernels returns the kernels whose fast path is under the
// //hatt:noalloc contract, derived from KernelNoAlloc rather than a
// hand-maintained list, after verifying that every function the table
// names really carries the annotation in its package's source.
func allocGatedKernels(t *testing.T) []string {
	t.Helper()
	var kernels []string
	for kernel, ref := range KernelNoAlloc {
		pkgPath, fn, ok := strings.Cut(ref, ":")
		if !ok {
			t.Fatalf("KernelNoAlloc[%q] = %q: want \"import/path:Recv.Name\"", kernel, ref)
		}
		rel, ok := strings.CutPrefix(pkgPath, "repro/")
		if !ok {
			t.Fatalf("KernelNoAlloc[%q] names non-module package %q", kernel, pkgPath)
		}
		dir := filepath.Join("..", "..", filepath.FromSlash(rel))
		annotated, err := annotations.NoAllocFuncs(dir)
		if err != nil {
			t.Fatalf("scanning %s: %v", dir, err)
		}
		if !slices.Contains(annotated, fn) {
			t.Fatalf("KernelNoAlloc[%q] names %s:%s, which is not annotated %s (found: %v)",
				kernel, pkgPath, fn, annotations.Directive, annotated)
		}
		kernels = append(kernels, kernel)
	}
	sort.Strings(kernels)
	return kernels
}

// TestKernelSuiteBeforeAfter pins the PR's acceptance bar: every kernel is
// measured as a baseline/fast pair, the annotation-gated kernels drop to at
// least 5× fewer allocations per op, and the pruned BuildUnopt beats the
// exhaustive scan on the largest bundled molecule.
func TestKernelSuiteBeforeAfter(t *testing.T) {
	if annotations.RaceEnabled {
		t.Skip("allocation counts and kernel timing ratios are unreliable under -race")
	}
	gated := allocGatedKernels(t)
	ks := KernelSuite()
	byKernel := map[string]map[string]KernelRecord{}
	for _, k := range ks {
		if byKernel[k.Kernel] == nil {
			byKernel[k.Kernel] = map[string]KernelRecord{}
		}
		byKernel[k.Kernel][k.Impl] = k
	}
	for name, pair := range byKernel {
		if _, ok := pair["baseline"]; !ok {
			t.Fatalf("%s: missing baseline measurement", name)
		}
		if _, ok := pair["fast"]; !ok {
			t.Fatalf("%s: missing fast measurement", name)
		}
	}
	for _, name := range gated {
		pair, ok := byKernel[name]
		if !ok {
			t.Fatalf("kernel %s not measured", name)
		}
		base, fast := pair["baseline"], pair["fast"]
		if base.AllocsPerOp < 1 {
			t.Fatalf("%s: baseline unexpectedly allocation-free (%.2f/op)", name, base.AllocsPerOp)
		}
		if fast.AllocsPerOp > base.AllocsPerOp/5 {
			t.Fatalf("%s: fast path allocates %.2f/op vs baseline %.2f/op (want ≥5× fewer)",
				name, fast.AllocsPerOp, base.AllocsPerOp)
		}
	}
	unopt := byKernel["build_unopt_molecule14"]
	if unopt["fast"].NsPerOp >= unopt["baseline"].NsPerOp {
		t.Fatalf("build_unopt: prune is not a wall-time win (%.0f ns/op vs %.0f ns/op)",
			unopt["fast"].NsPerOp, unopt["baseline"].NsPerOp)
	}

	var tab strings.Builder
	PrintKernels(&tab, ks)
	if !strings.Contains(tab.String(), "apply_pauli_14q") {
		t.Fatal("PrintKernels output incomplete")
	}
}
