package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPerfSuiteRecordsAndJSON(t *testing.T) {
	opt := Options{MaxModes: 8} // h2 + hubbard:2x2, smoke scale
	rep := PerfSuite(opt, 2)
	if rep.Workers != 2 {
		t.Fatalf("workers = %d", rep.Workers)
	}
	// 2 models within the cap × 3 methods.
	if len(rep.Records) != 6 {
		t.Fatalf("got %d records, want 6", len(rep.Records))
	}
	for _, r := range rep.Records {
		if r.PauliWeight <= 0 {
			t.Fatalf("%s/%s: bad weight %d", r.Model, r.Method, r.PauliWeight)
		}
		if r.SequentialMS <= 0 || r.ParallelMS <= 0 {
			t.Fatalf("%s/%s: missing timings %+v", r.Model, r.Method, r)
		}
		if !r.Identical {
			t.Fatalf("%s/%s: parallel mapping differs from sequential", r.Model, r.Method)
		}
	}

	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back PerfReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Records) != len(rep.Records) {
		t.Fatalf("round-trip lost records: %d vs %d", len(back.Records), len(rep.Records))
	}
	if !strings.Contains(buf.String(), "\"pauli_weight\"") {
		t.Fatal("JSON missing pauli_weight field")
	}

	var tab strings.Builder
	PrintPerf(&tab, rep)
	if !strings.Contains(tab.String(), "hatt") || !strings.Contains(tab.String(), "speedup") {
		t.Fatal("PrintPerf output incomplete")
	}
}
