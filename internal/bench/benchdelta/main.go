// Command benchdelta is the CI bench-regression gate: it compares a
// freshly generated BENCH_perf.json against the committed baseline and
// fails (exit 1) if any hot-path kernel's fast/baseline time ratio or
// fast-path allocs/op regressed beyond the tolerance, printing a
// readable delta table either way.
//
// -fresh may be repeated: with several freshly measured files the gate
// compares the best (lowest) ratio per kernel across them, so transient
// runner noise — which can only inflate a ratio — needs to hit every
// run to cause a false failure.
//
//	go run ./internal/bench/benchdelta -baseline BENCH_perf.json \
//	    -fresh /tmp/fresh1.json -fresh /tmp/fresh2.json -tol 0.20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdelta:", err)
		os.Exit(1)
	}
}

func run() error {
	baselinePath := flag.String("baseline", "BENCH_perf.json", "committed baseline BENCH_perf.json")
	var freshPaths []string
	flag.Func("fresh", "freshly generated BENCH_perf.json to gate (repeatable; best ratio per kernel wins)",
		func(p string) error { freshPaths = append(freshPaths, p); return nil })
	tol := flag.Float64("tol", 0.20, "fractional regression tolerance")
	flag.Parse()
	if len(freshPaths) == 0 {
		return fmt.Errorf("need at least one -fresh")
	}

	read := func(path string) (bench.PerfReport, error) {
		f, err := os.Open(path)
		if err != nil {
			return bench.PerfReport{}, err
		}
		defer f.Close()
		return bench.ReadPerfJSON(f)
	}
	base, err := read(*baselinePath)
	if err != nil {
		return err
	}
	if len(base.Kernels) == 0 {
		return fmt.Errorf("baseline %s carries no kernel records", *baselinePath)
	}
	runs := make([][]bench.KernelRecord, 0, len(freshPaths))
	for _, p := range freshPaths {
		rep, err := read(p)
		if err != nil {
			return err
		}
		runs = append(runs, rep.Kernels)
	}
	fresh := bench.MergeKernelRuns(runs...)

	deltas, regressed := bench.CompareKernels(base.Kernels, fresh, *tol)
	fmt.Printf("kernel regression gate: %d kernels, tolerance %.0f%%\n", len(deltas), *tol*100)
	bench.PrintKernelDeltas(os.Stdout, deltas)
	if regressed {
		return fmt.Errorf("kernel performance regressed beyond %.0f%% (see table above)", *tol*100)
	}
	fmt.Println("no kernel regressions")
	return nil
}
