package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/pkg/compiler"
)

// RoutedRow is one (device, case, method) cell of the Table-IV-style
// hardware comparison, produced through the pkg/compiler facade's
// device-aware path (WithDevice) rather than by calling the router
// directly — so the table measures exactly what the public API serves.
type RoutedRow struct {
	Device string
	Case   string
	Modes  int
	Method string
	Weight int
	Swaps  int
	CNOTs  int
	U3s    int
	Depth  int
}

// DefaultRoutedDevices and DefaultRoutedMethods are the Table-IV axes.
var (
	DefaultRoutedDevices = []string{"manhattan", "sycamore", "montreal"}
	DefaultRoutedMethods = []string{"jw", "hatt"}
)

// RoutedComparison compiles every catalog case with each method and
// routes it onto each device via compiler.Compile + WithDevice. Cases
// that do not fit a device are skipped, mirroring Table4.
func RoutedComparison(opt Options, devices, methods []string) ([]RoutedRow, error) {
	ctx := context.Background()
	var rows []RoutedRow
	for _, c := range table45Catalog(opt) {
		mh := c.Build().Majorana(1e-12)
		for _, dev := range devices {
			d, err := arch.Lookup(dev)
			if err != nil {
				return nil, fmt.Errorf("bench: %w", err)
			}
			if c.Modes > d.N {
				continue
			}
			for _, method := range methods {
				res, err := compiler.Compile(ctx, method, mh, compiler.WithDevice(dev))
				if err != nil {
					return nil, fmt.Errorf("bench: %s/%s on %s: %w", c.Name, method, dev, err)
				}
				r := res.Routed
				if r == nil {
					return nil, fmt.Errorf("bench: %s/%s on %s: no routed metrics", c.Name, method, dev)
				}
				rows = append(rows, RoutedRow{
					Device: r.Device,
					Case:   c.Name,
					Modes:  c.Modes,
					Method: method,
					Weight: res.PredictedWeight,
					Swaps:  r.SwapsAdded,
					CNOTs:  r.CNOTs,
					U3s:    r.Singles,
					Depth:  r.Depth,
				})
			}
		}
	}
	return rows, nil
}

// PrintRouted renders the routed comparison grouped by device.
func PrintRouted(w io.Writer, rows []RoutedRow) {
	fmt.Fprintln(w, "== Routed comparison: tetris-lite via pkg/compiler WithDevice ==")
	fmt.Fprintf(w, "%-10s %-16s %5s %-10s | %8s %8s %8s %8s %8s\n",
		"Device", "Case", "Modes", "Method", "Weight", "Swaps", "CX", "U3", "Depth")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-16s %5d %-10s | %8d %8d %8d %8d %8d\n",
			r.Device, r.Case, r.Modes, r.Method, r.Weight, r.Swaps, r.CNOTs, r.U3s, r.Depth)
	}
	fmt.Fprintln(w)
}
