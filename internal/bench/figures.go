package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/sim"
)

// Figure10Cell is one heat-map cell: bias and variance of the noisy energy
// estimate for one (molecule, mapping, p1, p2) combination.
type Figure10Cell struct {
	Molecule string
	Mapping  string
	P1, P2   float64
	Bias     float64
	Variance float64
}

// figureMappings builds the Fig. 10/11 mapping set for a Hamiltonian.
func figureMappings(n int, mh *fermion.MajoranaHamiltonian, opt Options) []*mapping.Mapping {
	ms := []*mapping.Mapping{
		mapping.JordanWigner(n),
		mapping.BravyiKitaev(n),
		mapping.BalancedTernaryTree(n),
	}
	if opt.FHMaxModes == 0 || n <= opt.FHMaxModes {
		ms = append(ms, core.Exhaustive(mh, opt.FHBudget).Mapping)
	}
	ms = append(ms, core.Build(mh).Mapping)
	return ms
}

// figure10Case runs the noise grid for one molecule.
func figure10Case(name string, h *fermion.Hamiltonian, occupied []int, opt Options) ([]Figure10Cell, error) {
	mh := h.Majorana(1e-12)
	n := h.Modes
	var cells []Figure10Cell
	steps := opt.GridSteps
	if steps < 2 {
		steps = 2
	}
	for _, m := range figureMappings(n, mh, opt) {
		hq := m.Apply(mh)
		cc := circuit.Compile(hq, circuit.OrderLexicographic)
		init, err := sim.PrepareOccupied(m, occupied)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, m.Name, err)
		}
		for i := 0; i < steps; i++ {
			// Log-spaced 1e-5…1e-4 (p1) and 1e-4…1e-3 (p2).
			p1 := 1e-5 * pow10(float64(i)/float64(steps-1))
			for j := 0; j < steps; j++ {
				p2 := 1e-4 * pow10(float64(j)/float64(steps-1))
				nm := sim.NoiseModel{P1: p1, P2: p2}
				res := sim.EstimateFrom(init, cc, hq, nm, opt.Shots, int64(1000+i*steps+j))
				cells = append(cells, Figure10Cell{
					Molecule: name, Mapping: m.Name,
					P1: p1, P2: p2,
					Bias: res.Bias, Variance: res.Variance,
				})
			}
		}
	}
	return cells, nil
}

// pow10 returns 10^f, used for log-spaced noise grids.
func pow10(f float64) float64 { return math.Pow(10, f) }

// Figure10 regenerates the noisy-simulation heat maps for H₂ and
// LiH(frz): bias and variance per mapping over the depolarizing error
// grid, each cell from opt.Shots shots.
func Figure10(opt Options) ([]Figure10Cell, error) {
	var cells []Figure10Cell
	h2, err := figure10Case("H2", models.H2STO3G(), []int{0, 1}, opt)
	if err != nil {
		return nil, err
	}
	cells = append(cells, h2...)
	lih, err := figure10Case("LiH_frz", models.SyntheticMolecule("LiH_frz", 6, 101, 0.35), []int{0, 1}, opt)
	if err != nil {
		return nil, err
	}
	return append(cells, lih...), nil
}

// PrintFigure10 renders the heat-map cells as rows.
func PrintFigure10(w io.Writer, cells []Figure10Cell) {
	fmt.Fprintln(w, "== Figure 10: noisy simulation bias/variance (depolarizing grid) ==")
	fmt.Fprintf(w, "%-8s %-6s %10s %10s %12s %12s\n", "Molecule", "Map", "p1", "p2", "bias", "variance")
	for _, c := range cells {
		fmt.Fprintf(w, "%-8s %-6s %10.2e %10.2e %12.5f %12.5f\n",
			c.Molecule, c.Mapping, c.P1, c.P2, c.Bias, c.Variance)
	}
	fmt.Fprintln(w)
}

// Figure10ExactCell is one exact-noise heat-map cell computed with the
// density-matrix simulator: the bias has no Monte-Carlo shot noise, so
// mapping-vs-mapping orderings are exact.
type Figure10ExactCell struct {
	Molecule string
	Mapping  string
	P1, P2   float64
	Bias     float64
}

// Figure10Exact recomputes the Figure-10 bias surface exactly (H₂ only —
// the density simulator is quartic in state size).
func Figure10Exact(opt Options) ([]Figure10ExactCell, error) {
	h := models.H2STO3G()
	mh := h.Majorana(1e-12)
	steps := opt.GridSteps
	if steps < 2 {
		steps = 2
	}
	var cells []Figure10ExactCell
	for _, m := range figureMappings(4, mh, opt) {
		hq := m.Apply(mh)
		cc := circuit.Compile(hq, circuit.OrderLexicographic)
		init, err := sim.PrepareOccupied(m, []int{0, 1})
		if err != nil {
			return nil, fmt.Errorf("fig10exact %s: %w", m.Name, err)
		}
		idealState := init.Clone()
		idealState.ApplyCircuit(cc)
		ideal := idealState.Expectation(hq)
		for i := 0; i < steps; i++ {
			p1 := 1e-5 * pow10(float64(i)/float64(steps-1))
			for j := 0; j < steps; j++ {
				p2 := 1e-4 * pow10(float64(j)/float64(steps-1))
				e := sim.ExactNoisyEnergy(init, cc, hq, sim.NoiseModel{P1: p1, P2: p2})
				cells = append(cells, Figure10ExactCell{
					Molecule: "H2", Mapping: m.Name, P1: p1, P2: p2,
					Bias: math.Abs(e - ideal),
				})
			}
		}
	}
	return cells, nil
}

// PrintFigure10Exact renders the exact bias surface.
func PrintFigure10Exact(w io.Writer, cells []Figure10ExactCell) {
	fmt.Fprintln(w, "== Figure 10 (exact): density-matrix bias surface ==")
	fmt.Fprintf(w, "%-8s %-6s %10s %10s %12s\n", "Molecule", "Map", "p1", "p2", "bias")
	for _, c := range cells {
		fmt.Fprintf(w, "%-8s %-6s %10.2e %10.2e %12.6f\n", c.Molecule, c.Mapping, c.P1, c.P2, c.Bias)
	}
	fmt.Fprintln(w)
}

// Figure11Row is one bar of the IonQ real-system stand-in.
type Figure11Row struct {
	Mapping  string
	Mean     float64
	Variance float64
	Ideal    float64
}

// Figure11Result bundles the rows with the theoretical ground energy.
type Figure11Result struct {
	Rows        []Figure11Row
	Theoretical float64
}

// Figure11 regenerates the H₂ real-system study with the IonQ Forte 1
// noise profile: per mapping, the mean and variance of opt.Shots measured
// energies, against the exact ground energy.
func Figure11(opt Options) (Figure11Result, error) {
	hF := models.H2STO3G()
	mh := hF.Majorana(1e-12)
	theory := linalg.GroundEnergy(mapping.JordanWigner(4).Apply(mh))
	out := Figure11Result{Theoretical: theory}
	nm := sim.IonQForte1()
	for _, m := range figureMappings(4, mh, opt) {
		hq := m.Apply(mh)
		cc := circuit.Compile(hq, circuit.OrderLexicographic)
		init, err := sim.PrepareOccupied(m, []int{0, 1})
		if err != nil {
			return out, fmt.Errorf("fig11 %s: %w", m.Name, err)
		}
		res := sim.EstimateFrom(init, cc, hq, nm, opt.Shots, 77)
		out.Rows = append(out.Rows, Figure11Row{
			Mapping: m.Name, Mean: res.Mean, Variance: res.Variance, Ideal: res.Ideal,
		})
	}
	return out, nil
}

// PrintFigure11 renders the IonQ stand-in results.
func PrintFigure11(w io.Writer, res Figure11Result) {
	fmt.Fprintln(w, "== Figure 11: H2 energy on IonQ-Forte-1 noise profile ==")
	fmt.Fprintf(w, "theoretical ground energy = %.4f Ha\n", res.Theoretical)
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "Map", "mean", "variance", "noiseless")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-8s %12.4f %12.4f %12.4f\n", r.Mapping, r.Mean, r.Variance, r.Ideal)
	}
	fmt.Fprintln(w)
}

// Figure12Row is one scalability measurement on H_F = Σ_i M_i.
type Figure12Row struct {
	Modes     int
	FH        time.Duration // 0 when skipped
	FHOptimal bool
	Unopt     time.Duration // Algorithm 1, O(N⁴)
	Opt       time.Duration // Algorithms 2+3, O(N³)
}

// allMajoranaSum builds the paper's Fig. 12 benchmark Hamiltonian
// H_F = Σ_{i=0}^{2N−1} M_i directly in Majorana form.
func allMajoranaSum(n int) *fermion.MajoranaHamiltonian {
	mh := &fermion.MajoranaHamiltonian{Modes: n}
	for i := 0; i < 2*n; i++ {
		mh.Terms = append(mh.Terms, fermion.MajoranaTerm{Coeff: 1, Indices: []int{i}})
	}
	return mh
}

// Figure12 measures construction wall time for the exhaustive FH
// substitute, HATT without optimization (Algorithm 1), and optimized HATT
// (Algorithms 2+3) at increasing sizes.
func Figure12(opt Options) []Figure12Row {
	var rows []Figure12Row
	minOf3 := func(f func()) time.Duration {
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}
	for n := 2; n <= opt.MaxN; n++ {
		mh := allMajoranaSum(n)
		row := Figure12Row{Modes: n}
		if n <= opt.FHMaxN {
			t0 := time.Now()
			res := core.Exhaustive(mh, opt.FHBudget)
			row.FH = time.Since(t0)
			row.FHOptimal = res.Optimal
		}
		row.Unopt = minOf3(func() { core.BuildUnopt(mh) })
		// NoMemo: the scalability curve times the O(N^3) construction;
		// a memo replay would flatten it to O(N).
		row.Opt = minOf3(func() { core.BuildWithOptions(mh, core.BuildOptions{NoMemo: true}) })
		rows = append(rows, row)
	}
	return rows
}

// PrintFigure12 renders the scalability rows.
func PrintFigure12(w io.Writer, rows []Figure12Row) {
	fmt.Fprintln(w, "== Figure 12: construction time on H_F = Σ M_i ==")
	fmt.Fprintf(w, "%5s %14s %5s %14s %14s\n", "N", "FH", "opt?", "HATT(unopt)", "HATT")
	for _, r := range rows {
		fh := "–"
		if r.FH > 0 {
			fh = r.FH.String()
		}
		fmt.Fprintf(w, "%5d %14s %5v %14s %14s\n", r.Modes, fh, r.FHOptimal, r.Unopt, r.Opt)
	}
	fmt.Fprintln(w)
}
