package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoutedComparison(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxModes = 6
	rows, err := RoutedComparison(opt, []string{"montreal", "linear:8"}, []string{"jw", "hatt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	seenDevice := map[string]bool{}
	for _, r := range rows {
		seenDevice[r.Device] = true
		if r.CNOTs <= 0 || r.Depth <= 0 || r.Weight <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	if !seenDevice["Montreal"] || !seenDevice["linear:8"] {
		t.Errorf("devices covered: %v", seenDevice)
	}
	var buf bytes.Buffer
	PrintRouted(&buf, rows)
	if !strings.Contains(buf.String(), "Montreal") {
		t.Error("printout missing device column")
	}
}

func TestRoutedComparisonRejectsBadDevice(t *testing.T) {
	opt := DefaultOptions()
	opt.MaxModes = 4
	if _, err := RoutedComparison(opt, []string{"nope"}, []string{"jw"}); err == nil {
		t.Error("unknown device accepted")
	}
}
