// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§V). Each experiment has a function
// returning structured rows plus a printer, shared by cmd/benchtab and the
// root-level testing.B benchmarks.
package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/pkg/compiler"
)

// Metric bundles the per-mapping numbers the tables report.
type Metric struct {
	Weight int
	CNOTs  int
	Depth  int
	Approx bool // FH result was budget-limited (the paper's '*')
	Skip   bool // case too large for this method (the paper's '–')
}

// Row is one benchmark case across all mappings.
type Row struct {
	Case    string
	Modes   int
	Metrics map[string]Metric // keyed by mapping name
}

// MappingNames is the column order of Tables I–III.
var MappingNames = []string{"JW", "BK", "BTT", "FH", "HATT"}

// Options tunes experiment scale so the same harness serves quick
// smoke-runs (benchmarks) and full table regeneration (cmd/benchtab).
type Options struct {
	MaxModes   int   // skip catalog cases above this size (0 = no limit)
	FHMaxModes int   // largest case to run the exhaustive FH search on
	FHBudget   int64 // exhaustive search visit budget (0 = unlimited)
	Shots      int   // noisy-simulation shots
	GridSteps  int   // noise grid resolution per axis (Figure 10)
	MaxN       int   // Figure 12 maximum system size
	FHMaxN     int   // Figure 12 maximum size for the exhaustive search
}

// DefaultOptions mirrors the paper's scales where feasible.
func DefaultOptions() Options {
	return Options{
		FHMaxModes: 10,
		FHBudget:   2_000_000,
		Shots:      1000,
		GridSteps:  4,
		MaxN:       20,
		FHMaxN:     5,
	}
}

// tableSpecs maps the paper's table column names onto compiler registry
// specs.
var tableSpecs = map[string]string{
	"JW":         "jw",
	"BK":         "bk",
	"BTT":        "btt",
	"HATT":       "hatt",
	"HATT-unopt": "hatt-unopt",
	"FH":         "fh",
	"FH-anneal":  "anneal",
}

// buildMapping constructs one named mapping for an n-mode Hamiltonian via
// the pkg/compiler facade.
func buildMapping(name string, n int, mh *fermion.MajoranaHamiltonian, opt Options) (*mapping.Mapping, bool, bool) {
	spec, ok := tableSpecs[name]
	if !ok {
		panic("bench: unknown mapping " + name)
	}
	if spec == "fh" && opt.FHMaxModes > 0 && n > opt.FHMaxModes {
		return nil, false, true
	}
	res, err := compiler.Compile(context.Background(), spec, mh, compiler.WithVisitBudget(opt.FHBudget))
	if err != nil {
		panic("bench: " + name + ": " + err.Error())
	}
	approx := spec == "anneal" || (spec == "fh" && !res.Optimal)
	return res.Mapping, approx, false
}

// EvaluateCase computes the Table I–III metrics of one benchmark case.
func EvaluateCase(c models.Case, names []string, opt Options) Row {
	mh := c.Build().Majorana(1e-12)
	row := Row{Case: c.Name, Modes: c.Modes, Metrics: make(map[string]Metric)}
	for _, name := range names {
		m, approx, skip := buildMapping(name, c.Modes, mh, opt)
		if skip {
			row.Metrics[name] = Metric{Skip: true}
			continue
		}
		hq := m.Apply(mh)
		cc := circuit.Compile(hq, circuit.OrderLexicographic)
		row.Metrics[name] = Metric{
			Weight: hq.Weight(),
			CNOTs:  cc.CNOTCount(),
			Depth:  cc.Depth(),
			Approx: approx,
		}
	}
	return row
}

// RunTable evaluates a catalog under the options.
func RunTable(catalog []models.Case, opt Options) []Row {
	var rows []Row
	for _, c := range catalog {
		if opt.MaxModes > 0 && c.Modes > opt.MaxModes {
			continue
		}
		rows = append(rows, EvaluateCase(c, MappingNames, opt))
	}
	return rows
}

// Table1 regenerates the electronic-structure table.
func Table1(opt Options) []Row { return RunTable(models.Electronic(), opt) }

// Table2 regenerates the Fermi–Hubbard table.
func Table2(opt Options) []Row { return RunTable(models.Hubbard(), opt) }

// Table3 regenerates the neutrino-oscillation table. FH is skipped for all
// cases, as in the paper.
func Table3(opt Options) []Row {
	o := opt
	o.FHMaxModes = 1 // all neutrino cases exceed FH's reach
	return RunTable(models.Neutrino(), o)
}

// PrintRows renders rows in the paper's table layout.
func PrintRows(w io.Writer, title string, rows []Row, names []string) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-16s %5s |", "Case", "Modes")
	for _, sec := range []string{"Pauli Weight", "CNOT Count", "Circuit Depth"} {
		fmt.Fprintf(w, " %-*s |", 9*len(names), sec)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-16s %5s |", "", "")
	for range []int{0, 1, 2} {
		for _, n := range names {
			fmt.Fprintf(w, " %8s", n)
		}
		fmt.Fprintf(w, " |")
	}
	fmt.Fprintln(w)
	cell := func(m Metric, v int) string {
		if m.Skip {
			return "–"
		}
		s := fmt.Sprintf("%d", v)
		if m.Approx {
			s += "*"
		}
		return s
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %5d |", r.Case, r.Modes)
		for _, sel := range []func(Metric) int{
			func(m Metric) int { return m.Weight },
			func(m Metric) int { return m.CNOTs },
			func(m Metric) int { return m.Depth },
		} {
			for _, n := range names {
				m := r.Metrics[n]
				fmt.Fprintf(w, " %8s", cell(m, sel(m)))
			}
			fmt.Fprintf(w, " |")
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// Table6Row compares HATT(unopt) vs HATT Pauli weight.
type Table6Row struct {
	Case          string
	Modes         int
	UnoptWeight   int
	OptWeight     int
	RelDiffPct    float64
	VacuumUnopt   bool
	VacuumOpt     bool
	ConstructUsec int64
}

// Table6 regenerates the HATT(unopt)-vs-HATT comparison for every catalog
// case up to 24 modes, as in the paper.
func Table6(opt Options) []Table6Row {
	var rows []Table6Row
	catalog := append(append(models.Electronic(), models.Hubbard()...), models.Neutrino()...)
	for _, c := range catalog {
		if c.Modes > 24 {
			continue
		}
		if opt.MaxModes > 0 && c.Modes > opt.MaxModes {
			continue
		}
		mh := c.Build().Majorana(1e-12)
		t0 := time.Now()
		un := core.BuildUnopt(mh)
		// NoMemo: earlier tables compile the same catalog models through
		// the facade, so a memoized Build here would time a replay.
		op := core.BuildWithOptions(mh, core.BuildOptions{NoMemo: true})
		el := time.Since(t0).Microseconds()
		rel := 0.0
		if un.PredictedWeight > 0 {
			rel = 100 * float64(op.PredictedWeight-un.PredictedWeight) / float64(un.PredictedWeight)
		}
		rows = append(rows, Table6Row{
			Case:          c.Name,
			Modes:         c.Modes,
			UnoptWeight:   un.PredictedWeight,
			OptWeight:     op.PredictedWeight,
			RelDiffPct:    rel,
			VacuumUnopt:   un.Mapping.VacuumPreserved(),
			VacuumOpt:     op.Mapping.VacuumPreserved(),
			ConstructUsec: el,
		})
	}
	return rows
}

// PrintTable6 renders the Table VI comparison.
func PrintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintln(w, "== Table VI: HATT (unopt) vs HATT Pauli weight (≤ 24 modes) ==")
	fmt.Fprintf(w, "%-16s %5s %12s %10s %8s %11s %9s\n",
		"Case", "Modes", "HATT(unopt)", "HATT", "Δ%", "vac(unopt)", "vac(opt)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %5d %12d %10d %7.2f%% %11v %9v\n",
			r.Case, r.Modes, r.UnoptWeight, r.OptWeight, r.RelDiffPct, r.VacuumUnopt, r.VacuumOpt)
	}
	fmt.Fprintln(w)
}
