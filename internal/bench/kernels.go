package bench

import (
	"fmt"
	"io"
	"math/cmplx"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/mapping"
	"repro/internal/models"
	"repro/internal/pauli"
	"repro/internal/sim"
)

// KernelRecord is one hot-path microbenchmark measurement. Every kernel is
// measured twice — the pre-optimization reference implementation kept in
// the tree ("baseline") and the shipping fast path ("fast") — so each
// BENCH_*.json carries its own before/after evidence.
type KernelRecord struct {
	Kernel      string  `json:"kernel"`
	Impl        string  `json:"impl"` // "baseline" | "fast"
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// KernelNoAlloc names, for each kernel whose fast path must beat the
// baseline's allocation count, the //hatt:noalloc-annotated function it
// exercises, as "import/path:Recv.Name". The allocation-gate test
// derives its kernel list from this map and verifies each named
// function really carries the annotation, so the static noalloc pass,
// the runtime gate, and this table can never drift apart silently.
var KernelNoAlloc = map[string]string{
	"apply_pauli_14q":      "repro/internal/sim:State.ApplyPauli",
	"expectation_12q_40t":  "repro/internal/sim:State.Expectation",
	"mul_majorana_14q":     "repro/internal/pauli:String.MulInto",
	"hamiltonian_add_warm": "repro/internal/pauli:Hamiltonian.Add",
}

// measureKernel times f over iters runs on a quiesced heap and reports
// per-op wall time and allocation counts. It is deliberately lighter than
// testing.Benchmark (fixed iteration counts, one GC) so the whole kernel
// suite stays cheap enough for CI and unit tests. The timing window runs
// five times and the fastest wins — transient host noise only ever
// inflates a measurement, so the minimum is the stable estimate the CI
// bench-regression gate compares across runs; allocation counters are
// deterministic and come from the first window.
func measureKernel(iters int, f func()) (ns, allocs, bytes float64) {
	f() // warm caches and lazy initialization outside the window
	for rep := 0; rep < 5; rep++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		d := time.Since(t0)
		runtime.ReadMemStats(&m1)
		n := float64(iters)
		if w := float64(d.Nanoseconds()) / n; rep == 0 || w < ns {
			ns = w
		}
		if rep == 0 {
			allocs = float64(m1.Mallocs-m0.Mallocs) / n
			bytes = float64(m1.TotalAlloc-m0.TotalAlloc) / n
		}
	}
	return ns, allocs, bytes
}

func kernelPair(out []KernelRecord, kernel string, iters int, baseline, fast func()) []KernelRecord {
	ns, al, by := measureKernel(iters, baseline)
	out = append(out, KernelRecord{Kernel: kernel, Impl: "baseline", NsPerOp: ns, AllocsPerOp: al, BytesPerOp: by})
	ns, al, by = measureKernel(iters, fast)
	return append(out, KernelRecord{Kernel: kernel, Impl: "fast", NsPerOp: ns, AllocsPerOp: al, BytesPerOp: by})
}

// randomKernelPauli mirrors the simulators' workload: a dense random
// string on n qubits.
func randomKernelPauli(r *rand.Rand, n int) pauli.String {
	s := pauli.Identity(n)
	for q := 0; q < n; q++ {
		s.SetLetter(q, pauli.Letter(r.Intn(4)))
	}
	return s
}

// KernelSuite measures the four algebra/simulation kernels this
// repository's hot paths are built from — ApplyPauli, Hamiltonian
// expectation, string product, Hamiltonian.Add — plus the BuildUnopt
// construction on the largest bundled molecule, each as a
// baseline-vs-fast pair.
func KernelSuite() []KernelRecord {
	var out []KernelRecord
	r := rand.New(rand.NewSource(1))

	// ApplyPauli on a 14-qubit state (16384 amplitudes).
	st := sim.NewState(14)
	for i := range st.Amp {
		st.Amp[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	p14 := randomKernelPauli(r, 14)
	out = kernelPair(out, "apply_pauli_14q", 200,
		func() { st.ApplyPauliSlow(p14) },
		func() { st.ApplyPauli(p14) })

	// Hamiltonian expectation: 40 random terms on a 12-qubit state.
	st12 := sim.NewState(12)
	for i := range st12.Amp {
		st12.Amp[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	h12 := pauli.NewHamiltonian(12)
	for i := 0; i < 40; i++ {
		h12.Add(complex(r.NormFloat64(), 0), randomKernelPauli(r, 12))
	}
	out = kernelPair(out, "expectation_12q_40t", 30,
		func() {
			// Pre-mask path: clone the state per term.
			e := 0.0
			for _, t := range h12.Terms() {
				c := st12.Clone()
				c.ApplyPauliSlow(t.S)
				var te complex128
				for k := range st12.Amp {
					te += cmplx.Conj(st12.Amp[k]) * c.Amp[k]
				}
				e += real(t.Coeff * te)
			}
		},
		func() { _ = st12.Expectation(h12) })

	// String product over real Majorana strings (molecule:14 under JW,
	// weight up to 14 with long Z tails).
	mol, err := models.Resolve("molecule:14")
	if err != nil {
		panic("bench: " + err.Error())
	}
	jw := mapping.JordanWigner(mol.Modes)
	ma, mb := jw.Majorana(7), jw.Majorana(20)
	dst := pauli.Identity(mol.Modes)
	out = kernelPair(out, "mul_majorana_14q", 200_000,
		func() { _ = ma.Mul(mb) },
		func() { ma.MulInto(&dst, mb) })

	// Hamiltonian.Add on a warm map: the dedup path mapping.Apply hammers.
	strs := make([]pauli.String, 64)
	warm := pauli.NewHamiltonian(32)
	legacy := make(map[string]pauli.Term, 64)
	for i := range strs {
		strs[i] = randomKernelPauli(r, 32)
		warm.Add(1, strs[i])
		legacy[strs[i].Key()] = pauli.Term{Coeff: 1, S: strs[i]}
	}
	i := 0
	out = kernelPair(out, "hamiltonian_add_warm", 200_000,
		func() {
			// Pre-fingerprint semantics: build the Key string per call.
			s := strs[i%len(strs)]
			k := s.Key()
			t := legacy[k]
			t.Coeff += 0.5 * s.LetterCoeff()
			legacy[k] = t
			i++
		},
		func() {
			warm.Add(0.5, strs[i%len(strs)])
			i++
		})

	// BuildUnopt on the largest bundled molecule: the pairwise-delta
	// prune versus the exhaustive triple scan.
	mh := mol.Majorana(1e-12)
	out = kernelPair(out, "build_unopt_molecule14", 3,
		func() { core.BuildUnoptReference(mh) },
		func() { core.BuildUnopt(mh) })

	return out
}

// PrintKernels renders the kernel suite as a before/after table.
func PrintKernels(w io.Writer, ks []KernelRecord) {
	if len(ks) == 0 {
		return
	}
	fmt.Fprintln(w, "== Hot-path kernels: baseline vs fast ==")
	fmt.Fprintf(w, "%-24s %-9s %14s %12s %12s\n", "Kernel", "Impl", "ns/op", "allocs/op", "B/op")
	for _, k := range ks {
		fmt.Fprintf(w, "%-24s %-9s %14.0f %12.1f %12.0f\n",
			k.Kernel, k.Impl, k.NsPerOp, k.AllocsPerOp, k.BytesPerOp)
	}
	fmt.Fprintln(w)
}
