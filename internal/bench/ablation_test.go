package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestBeamAblation(t *testing.T) {
	opt := quickOptions()
	opt.MaxModes = 8
	rows := BeamAblation([]int{1, 2}, opt)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if len(r.Weights) != 2 || len(r.Times) != 2 {
			t.Fatalf("%s: malformed row %+v", r.Case, r)
		}
		// Beam(k) never loses to beam(1) thanks to the incumbent rule.
		if r.Weights[1] > r.Weights[0] {
			t.Errorf("%s: beam(2) %d worse than beam(1) %d", r.Case, r.Weights[1], r.Weights[0])
		}
	}
	var buf bytes.Buffer
	PrintBeamAblation(&buf, rows)
	if !strings.Contains(buf.String(), "beam width") {
		t.Error("printout missing title")
	}
}

func TestOrderingAblation(t *testing.T) {
	opt := quickOptions()
	opt.MaxModes = 8
	rows := OrderingAblation(opt)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if len(r.Orders) != 3 {
			t.Fatalf("%s: want 3 orderings", r.Case)
		}
		for i, c := range r.CNOTs {
			if c <= 0 || r.Depths[i] <= 0 {
				t.Errorf("%s/%s: empty metrics", r.Case, r.Orders[i])
			}
		}
	}
	var buf bytes.Buffer
	PrintOrderingAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty printout")
	}
}

func TestCacheAblation(t *testing.T) {
	opt := quickOptions()
	opt.MaxN = 8
	rows := CacheAblation(opt)
	if len(rows) != 2 { // N = 4, 8
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cached <= 0 || r.Uncached <= 0 {
			t.Errorf("N=%d: zero timings", r.Modes)
		}
	}
	var buf bytes.Buffer
	PrintCacheAblation(&buf, rows)
	if !strings.Contains(buf.String(), "Algorithm-3") {
		t.Error("printout missing title")
	}
}

func TestTieBreakAblation(t *testing.T) {
	opt := quickOptions()
	opt.MaxModes = 8
	rows := TieBreakAblation(opt)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if len(r.Policies) != 3 || len(r.Weights) != 3 || len(r.Depths) != 3 {
			t.Fatalf("%s: malformed row", r.Case)
		}
		for i := range r.Weights {
			if r.Weights[i] <= 0 || r.Depths[i] <= 0 {
				t.Errorf("%s/%s: zero metrics", r.Case, r.Policies[i])
			}
		}
	}
	var buf bytes.Buffer
	PrintTieBreakAblation(&buf, rows)
	if !strings.Contains(buf.String(), "tie-breaking") {
		t.Error("printout missing title")
	}
}

func TestFigure10Exact(t *testing.T) {
	opt := quickOptions()
	cells, err := Figure10Exact(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	// Exact bias must be monotone in p2 for fixed mapping and p1 on this
	// workload (depolarizing contraction).
	byKey := map[string][]Figure10ExactCell{}
	for _, c := range cells {
		k := c.Mapping
		byKey[k] = append(byKey[k], c)
	}
	for _, c := range cells {
		if c.Bias < 0 {
			t.Errorf("negative bias: %+v", c)
		}
	}
	var buf bytes.Buffer
	PrintFigure10Exact(&buf, cells)
	if !strings.Contains(buf.String(), "exact") {
		t.Error("printout missing title")
	}
}
