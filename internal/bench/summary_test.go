package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	rows := []Row{
		{
			Case: "a", Modes: 4,
			Metrics: map[string]Metric{
				"JW":   {Weight: 100, CNOTs: 200, Depth: 300},
				"BK":   {Weight: 90, CNOTs: 180, Depth: 280},
				"BTT":  {Weight: 95, CNOTs: 190, Depth: 290},
				"HATT": {Weight: 80, CNOTs: 150, Depth: 240},
			},
		},
	}
	s := Summarize("test", rows)
	if s.Cases != 1 {
		t.Fatalf("cases = %d", s.Cases)
	}
	r := s.Reduction["JW"]
	if r[0] != 20 || r[1] != 25 || r[2] != 20 {
		t.Errorf("JW reductions = %v", r)
	}
	var buf bytes.Buffer
	PrintSummary(&buf, []Summary{s})
	if !strings.Contains(buf.String(), "Headline") {
		t.Error("missing title")
	}
}

func TestHeadlineSummariesQuick(t *testing.T) {
	opt := quickOptions()
	opt.MaxModes = 8
	sums := HeadlineSummaries(opt)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d", len(sums))
	}
	// Hubbard at 2x2: HATT should show a nonnegative weight reduction vs
	// the worst baseline at least.
	hub := sums[1]
	if hub.Cases == 0 {
		t.Fatal("hubbard summary empty")
	}
}
