package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/pkg/compiler"
)

// PerfRecord is one machine-readable benchmark measurement: a (method,
// model) cell with its sequential and parallel wall times. CI uploads
// these as BENCH_*.json artifacts so the perf trajectory of every PR is
// recorded.
type PerfRecord struct {
	Model        string  `json:"model"`
	Modes        int     `json:"modes"`
	Method       string  `json:"method"`
	PauliWeight  int     `json:"pauli_weight"`
	SequentialMS float64 `json:"sequential_ms"` // WithParallelism(1)
	ParallelMS   float64 `json:"parallel_ms"`   // WithParallelism(workers)
	Speedup      float64 `json:"speedup"`       // sequential / parallel
	Identical    bool    `json:"identical"`     // mappings byte-identical across worker counts
}

// PerfReport is the full sequential-vs-parallel sweep plus the hot-path
// kernel microbenchmarks and the host facts needed to interpret them.
type PerfReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	Records    []PerfRecord   `json:"records"`
	Kernels    []KernelRecord `json:"kernels,omitempty"`
}

// perfModels is the model sweep; entries above opt.MaxModes are skipped.
var perfModels = []string{"h2", "hubbard:2x2", "hubbard:2x3"}

// perfSpecs is the method sweep: the three search methods the parallel
// engine accelerates (candidate scoring for hatt and beam, restart
// chains for anneal).
var perfSpecs = []string{"hatt", "beam:6", "anneal"}

// PerfSuite measures every (method, model) cell at WithParallelism(1)
// and WithParallelism(workers) — workers < 1 means GOMAXPROCS — and
// verifies the two runs produce byte-identical mappings (the engine's
// reproducibility guarantee). The build memo is reset around every timed
// run so each measurement is a full construction.
func PerfSuite(opt Options, workers int) PerfReport {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := PerfReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Workers: workers}
	ctx := context.Background()
	for _, model := range perfModels {
		h, err := models.Resolve(model)
		if err != nil {
			panic("bench: " + err.Error())
		}
		if opt.MaxModes > 0 && h.Modes > opt.MaxModes {
			continue
		}
		mh := h.Majorana(1e-12)
		for _, spec := range perfSpecs {
			run := func(par int) (*compiler.Result, time.Duration) {
				opts := []compiler.Option{
					compiler.WithParallelism(par),
					compiler.WithSeed(1),
					// Fixed restart count at every parallelism, so the
					// anneal rows compare equal work and equal results.
					compiler.WithAnnealRestarts(workers),
					compiler.WithAnnealSchedule(500, 0, 0),
				}
				var best time.Duration
				var res *compiler.Result
				for k := 0; k < 3; k++ {
					core.ResetBuildCache()
					t0 := time.Now()
					r, err := compiler.Compile(ctx, spec, mh, opts...)
					d := time.Since(t0)
					if err != nil {
						panic("bench: " + spec + ": " + err.Error())
					}
					if k == 0 || d < best {
						best = d
					}
					res = r
				}
				return res, best
			}
			seqRes, seqT := run(1)
			parRes, parT := run(workers)
			var a, b bytes.Buffer
			_ = seqRes.Mapping.WriteText(&a)
			_ = parRes.Mapping.WriteText(&b)
			speedup := 0.0
			if parT > 0 {
				speedup = float64(seqT) / float64(parT)
			}
			rep.Records = append(rep.Records, PerfRecord{
				Model:        model,
				Modes:        h.Modes,
				Method:       spec,
				PauliWeight:  parRes.PredictedWeight,
				SequentialMS: float64(seqT) / float64(time.Millisecond),
				ParallelMS:   float64(parT) / float64(time.Millisecond),
				Speedup:      speedup,
				Identical:    bytes.Equal(a.Bytes(), b.Bytes()),
			})
		}
	}
	rep.Kernels = KernelSuite()
	return rep
}

// WritePerfJSON serializes a PerfReport as indented JSON.
func WritePerfJSON(w io.Writer, rep PerfReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// PrintPerf renders the sweep as a human-readable table.
func PrintPerf(w io.Writer, rep PerfReport) {
	fmt.Fprintf(w, "== Parallel compilation: sequential vs %d workers (GOMAXPROCS %d) ==\n",
		rep.Workers, rep.GOMAXPROCS)
	fmt.Fprintf(w, "%-14s %5s %-8s %8s %12s %12s %8s %10s\n",
		"Model", "Modes", "Method", "Weight", "seq", "par", "speedup", "identical")
	for _, r := range rep.Records {
		fmt.Fprintf(w, "%-14s %5d %-8s %8d %12s %12s %7.2fx %10v\n",
			r.Model, r.Modes, r.Method, r.PauliWeight,
			time.Duration(r.SequentialMS*float64(time.Millisecond)).Round(time.Microsecond),
			time.Duration(r.ParallelMS*float64(time.Millisecond)).Round(time.Microsecond),
			r.Speedup, r.Identical)
	}
	fmt.Fprintln(w)
	PrintKernels(w, rep.Kernels)
}
