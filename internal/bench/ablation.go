package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/models"
)

// BeamAblationRow measures mapping quality vs beam width.
type BeamAblationRow struct {
	Case    string
	Modes   int
	Widths  []int
	Weights []int
	Times   []time.Duration
}

// BeamAblation sweeps the beam width of the HATT beam-search extension
// over a sample of catalog cases, quantifying the quality/time trade-off
// beyond the paper's greedy construction.
func BeamAblation(widths []int, opt Options) []BeamAblationRow {
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8}
	}
	sample := []models.Case{
		models.Hubbard()[0], // 2x2
		models.Hubbard()[1], // 2x3
		models.Neutrino()[0],
		models.Electronic()[1], // LiH frz
	}
	var rows []BeamAblationRow
	for _, c := range sample {
		if opt.MaxModes > 0 && c.Modes > opt.MaxModes {
			continue
		}
		mh := c.Build().Majorana(1e-12)
		row := BeamAblationRow{Case: c.Name, Modes: c.Modes, Widths: widths}
		for _, w := range widths {
			// Every width pays for its own greedy incumbent: a warm
			// build memo would make the wider runs look cheaper.
			core.ResetBuildCache()
			t0 := time.Now()
			res := core.BuildBeam(mh, w)
			row.Times = append(row.Times, time.Since(t0))
			row.Weights = append(row.Weights, res.PredictedWeight)
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintBeamAblation renders the beam sweep.
func PrintBeamAblation(w io.Writer, rows []BeamAblationRow) {
	fmt.Fprintln(w, "== Ablation: HATT beam width (weight @ time) ==")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %2d modes |", r.Case, r.Modes)
		for i, width := range r.Widths {
			fmt.Fprintf(w, "  k=%d: %d (%s)", width, r.Weights[i], r.Times[i].Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// OrderingAblationRow measures circuit metrics vs Trotter term ordering.
type OrderingAblationRow struct {
	Case   string
	Modes  int
	Orders []string
	CNOTs  []int
	Depths []int
}

// OrderingAblation compares the three term-ordering strategies of the
// synthesis pass on HATT-mapped Hamiltonians: the peephole optimizer can
// only cancel what the ordering puts next to each other.
func OrderingAblation(opt Options) []OrderingAblationRow {
	sample := []models.Case{
		models.Electronic()[0],
		models.Electronic()[1],
		models.Hubbard()[1],
		models.Neutrino()[0],
	}
	orders := []struct {
		name string
		ord  circuit.TermOrder
	}{
		{"natural", circuit.OrderNatural},
		{"lex", circuit.OrderLexicographic},
		{"greedy", circuit.OrderGreedyOverlap},
	}
	var rows []OrderingAblationRow
	for _, c := range sample {
		if opt.MaxModes > 0 && c.Modes > opt.MaxModes {
			continue
		}
		mh := c.Build().Majorana(1e-12)
		hq := core.Build(mh).Mapping.Apply(mh)
		row := OrderingAblationRow{Case: c.Name, Modes: c.Modes}
		for _, o := range orders {
			cc := circuit.Compile(hq, o.ord)
			row.Orders = append(row.Orders, o.name)
			row.CNOTs = append(row.CNOTs, cc.CNOTCount())
			row.Depths = append(row.Depths, cc.Depth())
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintOrderingAblation renders the ordering sweep.
func PrintOrderingAblation(w io.Writer, rows []OrderingAblationRow) {
	fmt.Fprintln(w, "== Ablation: Trotter term ordering (CNOTs / depth) ==")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %2d modes |", r.Case, r.Modes)
		for i, o := range r.Orders {
			fmt.Fprintf(w, "  %s: %d/%d", o, r.CNOTs[i], r.Depths[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// TieBreakAblationRow compares the greedy tie-breaking policies.
type TieBreakAblationRow struct {
	Case     string
	Modes    int
	Policies []string
	Weights  []int
	Depths   []int // tree depth (max string weight)
}

// TieBreakAblation sweeps the selection tie-breaking policy: total weight
// is the primary objective everywhere, so differences isolate how much
// the unspecified tie order matters (and whether the depth-aware policy
// buys shallower trees for free).
func TieBreakAblation(opt Options) []TieBreakAblationRow {
	sample := []models.Case{
		models.Hubbard()[0],
		models.Hubbard()[1],
		models.Neutrino()[0],
		models.Electronic()[1],
	}
	policies := []struct {
		name string
		tb   core.TieBreak
	}{
		{"first", core.TieFirst},
		{"depth", core.TieDepth},
		{"support", core.TieSupport},
	}
	var rows []TieBreakAblationRow
	for _, c := range sample {
		if opt.MaxModes > 0 && c.Modes > opt.MaxModes {
			continue
		}
		mh := c.Build().Majorana(1e-12)
		row := TieBreakAblationRow{Case: c.Name, Modes: c.Modes}
		for _, p := range policies {
			res := core.BuildWithOptions(mh, core.BuildOptions{TieBreak: p.tb})
			row.Policies = append(row.Policies, p.name)
			row.Weights = append(row.Weights, res.PredictedWeight)
			row.Depths = append(row.Depths, res.Tree.Depth())
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintTieBreakAblation renders the tie-break sweep.
func PrintTieBreakAblation(w io.Writer, rows []TieBreakAblationRow) {
	fmt.Fprintln(w, "== Ablation: greedy tie-breaking (weight / tree depth) ==")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %2d modes |", r.Case, r.Modes)
		for i, p := range r.Policies {
			fmt.Fprintf(w, "  %s: %d/%d", p, r.Weights[i], r.Depths[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// CacheAblationRow measures the Algorithm-3 cache speed-up.
type CacheAblationRow struct {
	Modes    int
	Cached   time.Duration
	Uncached time.Duration
}

// CacheAblation isolates the descZ/traverse-up cache (Algorithm 3) by
// timing Algorithm 2 with and without it on H_F = Σ M_i; both produce
// identical mappings (asserted in tests), so the delta is pure lookup
// cost.
func CacheAblation(opt Options) []CacheAblationRow {
	minTime := func(f func()) time.Duration {
		var best time.Duration
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			f()
			if d := time.Since(t0); rep == 0 || d < best {
				best = d
			}
		}
		return best
	}
	var rows []CacheAblationRow
	for n := 4; n <= opt.MaxN; n += 4 {
		mh := allMajoranaSum(n)
		rows = append(rows, CacheAblationRow{
			Modes: n,
			// NoMemo: this ablation times the Algorithm-3 descZ caches,
			// so every rep must run the full construction rather than
			// hit the build memo.
			Cached:   minTime(func() { core.BuildWithOptions(mh, core.BuildOptions{NoMemo: true}) }),
			Uncached: minTime(func() { core.BuildUncached(mh) }),
		})
	}
	return rows
}

// PrintCacheAblation renders the cache sweep.
func PrintCacheAblation(w io.Writer, rows []CacheAblationRow) {
	fmt.Fprintln(w, "== Ablation: Algorithm-3 caches (Alg. 2 with vs without) ==")
	fmt.Fprintf(w, "%5s %14s %14s\n", "N", "cached", "uncached")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d %14s %14s\n", r.Modes, r.Cached, r.Uncached)
	}
	fmt.Fprintln(w)
}
