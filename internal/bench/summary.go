package bench

import (
	"fmt"
	"io"
)

// Summary aggregates the headline claims of the paper's abstract: the
// average percentage reduction of HATT versus each baseline, per metric,
// across a table's rows.
type Summary struct {
	Table     string
	Baselines []string
	// Reduction[baseline][metric] is the mean percent reduction of HATT
	// relative to the baseline (positive = HATT better). Metrics indexed
	// 0: weight, 1: CNOTs, 2: depth.
	Reduction map[string][3]float64
	Cases     int
}

// Summarize computes HATT-vs-baseline average reductions over rows.
func Summarize(table string, rows []Row) Summary {
	baselines := []string{"JW", "BK", "BTT"}
	s := Summary{Table: table, Baselines: baselines, Reduction: make(map[string][3]float64)}
	for _, b := range baselines {
		var acc [3]float64
		n := 0
		for _, r := range rows {
			hm, ok := r.Metrics["HATT"]
			bm, ok2 := r.Metrics[b]
			if !ok || !ok2 || hm.Skip || bm.Skip {
				continue
			}
			if bm.Weight == 0 || bm.CNOTs == 0 || bm.Depth == 0 {
				continue
			}
			acc[0] += 100 * float64(bm.Weight-hm.Weight) / float64(bm.Weight)
			acc[1] += 100 * float64(bm.CNOTs-hm.CNOTs) / float64(bm.CNOTs)
			acc[2] += 100 * float64(bm.Depth-hm.Depth) / float64(bm.Depth)
			n++
		}
		if n > 0 {
			for i := range acc {
				acc[i] /= float64(n)
			}
		}
		s.Reduction[b] = acc
		s.Cases = n
	}
	return s
}

// PrintSummary renders the headline aggregate, mirroring the abstract's
// "5∼20% reduction in Pauli weight, gate count, and circuit depth" claim
// structure.
func PrintSummary(w io.Writer, summaries []Summary) {
	fmt.Fprintln(w, "== Headline summary: mean HATT reduction vs baselines ==")
	fmt.Fprintf(w, "%-12s %-6s | %10s %10s %10s\n", "Table", "vs", "weight", "CNOTs", "depth")
	for _, s := range summaries {
		for _, b := range s.Baselines {
			r := s.Reduction[b]
			fmt.Fprintf(w, "%-12s %-6s | %9.2f%% %9.2f%% %9.2f%%\n", s.Table, b, r[0], r[1], r[2])
		}
	}
	fmt.Fprintln(w)
}

// HeadlineSummaries runs Tables I–III and aggregates them.
func HeadlineSummaries(opt Options) []Summary {
	return []Summary{
		Summarize("electronic", Table1(opt)),
		Summarize("hubbard", Table2(opt)),
		Summarize("neutrino", Table3(opt)),
	}
}
