package bench

import (
	"bytes"
	"strings"
	"testing"
)

func kernelPairRecords(kernel string, baseNs, fastNs, fastAllocs float64) []KernelRecord {
	return []KernelRecord{
		{Kernel: kernel, Impl: "baseline", NsPerOp: baseNs},
		{Kernel: kernel, Impl: "fast", NsPerOp: fastNs, AllocsPerOp: fastAllocs},
	}
}

func TestCompareKernelsCleanRun(t *testing.T) {
	base := append(kernelPairRecords("apply", 1000, 40, 0), kernelPairRecords("expect", 500, 50, 0)...)
	// A fresh run on a slower machine, same ratios: no regression.
	fresh := append(kernelPairRecords("apply", 3000, 120, 0), kernelPairRecords("expect", 1500, 150, 0)...)
	deltas, regressed := CompareKernels(base, fresh, 0.20)
	if regressed {
		t.Fatalf("clean run flagged: %+v", deltas)
	}
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
}

// TestCompareKernelsCatchesInjectedRegression is the "demonstrably
// fails" half of the CI contract: a 30% ratio slip or a new allocation
// must trip the 20% gate.
func TestCompareKernelsCatchesInjectedRegression(t *testing.T) {
	base := kernelPairRecords("apply", 1000, 40, 0)

	// Injected: fast path 30% slower relative to its baseline.
	slower := kernelPairRecords("apply", 1000, 52, 0)
	deltas, regressed := CompareKernels(base, slower, 0.20)
	if !regressed || !deltas[0].Regressed {
		t.Fatalf("30%% ratio regression not caught: %+v", deltas)
	}
	if !strings.Contains(deltas[0].Reason, "time ratio") {
		t.Errorf("reason = %q", deltas[0].Reason)
	}

	// Injected: the zero-allocation path starts allocating.
	allocs := kernelPairRecords("apply", 1000, 40, 2)
	deltas, regressed = CompareKernels(base, allocs, 0.20)
	if !regressed {
		t.Fatalf("allocation regression not caught: %+v", deltas)
	}
	if !strings.Contains(deltas[0].Reason, "allocs/op") {
		t.Errorf("reason = %q", deltas[0].Reason)
	}

	// Injected: a kernel vanishes from the fresh sweep.
	deltas, regressed = CompareKernels(base, nil, 0.20)
	if !regressed || !strings.Contains(deltas[0].Reason, "missing") {
		t.Fatalf("missing kernel not caught: %+v", deltas)
	}

	// Injected: a fresh kernel with no committed baseline — coverage
	// loss in the other direction — must fail until the baseline is
	// regenerated.
	fresh := append(kernelPairRecords("apply", 1000, 40, 0), kernelPairRecords("brand_new", 800, 80, 0)...)
	deltas, regressed = CompareKernels(base, fresh, 0.20)
	if !regressed {
		t.Fatalf("baseline-less kernel not caught: %+v", deltas)
	}
	found := false
	for _, d := range deltas {
		if d.Kernel == "brand_new" && d.Regressed && strings.Contains(d.Reason, "baseline") {
			found = true
		}
	}
	if !found {
		t.Errorf("no delta flags the baseline-less kernel: %+v", deltas)
	}
}

func TestCompareKernelsToleratesNoise(t *testing.T) {
	base := kernelPairRecords("apply", 1000, 40, 0)
	// 15% ratio drift and fractional alloc jitter stay under the gate.
	noisy := kernelPairRecords("apply", 1000, 46, 0.3)
	if _, regressed := CompareKernels(base, noisy, 0.20); regressed {
		t.Error("within-tolerance drift flagged")
	}
}

func TestMergeKernelRunsKeepsBestRatio(t *testing.T) {
	run1 := append(kernelPairRecords("apply", 1000, 60, 0), kernelPairRecords("expect", 500, 40, 0)...)
	run2 := append(kernelPairRecords("apply", 1000, 45, 0), kernelPairRecords("expect", 500, 55, 0)...)
	merged := MergeKernelRuns(run1, run2)
	if len(merged) != 4 {
		t.Fatalf("merged %d records, want 4", len(merged))
	}
	got := map[string]float64{}
	for _, r := range merged {
		if r.Impl == "fast" {
			got[r.Kernel] = r.NsPerOp
		}
	}
	if got["apply"] != 45 || got["expect"] != 40 {
		t.Errorf("merged fast ns = %v, want apply:45 expect:40", got)
	}
	// A noisy run that would trip the gate alone passes once merged with
	// a clean one.
	base := kernelPairRecords("apply", 1000, 40, 0)
	noisy := kernelPairRecords("apply", 1000, 55, 0) // +37% alone
	clean := kernelPairRecords("apply", 1000, 42, 0) // +5% alone
	if _, regressed := CompareKernels(base, MergeKernelRuns(noisy, clean), 0.20); regressed {
		t.Error("best-of-N merge did not absorb one noisy run")
	}
	// But a genuine regression present in every run still fails.
	if _, regressed := CompareKernels(base, MergeKernelRuns(noisy, noisy), 0.20); !regressed {
		t.Error("regression present in all runs slipped through")
	}
}

func TestReadPerfJSONRoundTrip(t *testing.T) {
	rep := PerfReport{
		GOMAXPROCS: 4, Workers: 2,
		Kernels: kernelPairRecords("apply", 1000, 40, 0),
	}
	var buf bytes.Buffer
	if err := WritePerfJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPerfJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Kernels) != 2 || back.GOMAXPROCS != 4 {
		t.Errorf("round trip = %+v", back)
	}
	if _, err := ReadPerfJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestPrintKernelDeltas(t *testing.T) {
	base := kernelPairRecords("apply", 1000, 40, 0)
	fresh := kernelPairRecords("apply", 1000, 60, 0)
	deltas, _ := CompareKernels(base, fresh, 0.20)
	var buf bytes.Buffer
	PrintKernelDeltas(&buf, deltas)
	out := buf.String()
	if !strings.Contains(out, "apply") || !strings.Contains(out, "REGRESSED") {
		t.Errorf("delta table:\n%s", out)
	}
}
