package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// KernelDelta compares one kernel's committed-baseline measurement
// against a fresh run. The quantity under the gate is the fast/baseline
// time ratio (lower is better): both implementations run on the same
// machine moments apart, so the ratio cancels host speed and is the
// noise-robust signal a CI runner can actually hold steady. Allocation
// counts are deterministic and compared directly.
type KernelDelta struct {
	Kernel string
	// Ratio is fast ns/op ÷ baseline ns/op for the same BENCH file.
	BaselineRatio float64
	FreshRatio    float64
	// Allocs is the fast implementation's allocs/op.
	BaselineAllocs float64
	FreshAllocs    float64
	Regressed      bool
	Reason         string
}

// allocSlack absorbs measurement jitter in the averaged allocation
// counter (measureKernel divides totals by iterations, so background
// runtime allocations can leak fractions into the per-op number).
const allocSlack = 0.5

// CompareKernels gates a fresh kernel sweep against the committed
// baseline: any kernel whose fast/baseline time ratio or fast-path
// allocs/op regresses by more than tol (fractional, e.g. 0.20) fails,
// as does a kernel that disappeared from the fresh run. Returns the
// per-kernel deltas (sorted by kernel) and whether anything regressed.
func CompareKernels(baseline, fresh []KernelRecord, tol float64) ([]KernelDelta, bool) {
	bi, fi := indexKernels(baseline), indexKernels(fresh)

	var names []string
	for k, p := range bi {
		if p.base != nil && p.fast != nil {
			names = append(names, k)
		}
	}
	sort.Strings(names)

	var out []KernelDelta
	anyRegressed := false
	for _, k := range names {
		bp, fp := bi[k], fi[k]
		d := KernelDelta{
			Kernel:         k,
			BaselineRatio:  bp.fast.NsPerOp / bp.base.NsPerOp,
			BaselineAllocs: bp.fast.AllocsPerOp,
		}
		switch {
		case fp.base == nil || fp.fast == nil:
			d.Regressed = true
			d.Reason = "kernel missing from fresh run"
		default:
			d.FreshRatio = fp.fast.NsPerOp / fp.base.NsPerOp
			d.FreshAllocs = fp.fast.AllocsPerOp
			if d.FreshRatio > d.BaselineRatio*(1+tol) {
				d.Regressed = true
				d.Reason = fmt.Sprintf("time ratio %.4f exceeds baseline %.4f by more than %.0f%%",
					d.FreshRatio, d.BaselineRatio, tol*100)
			}
			if d.FreshAllocs > d.BaselineAllocs*(1+tol)+allocSlack {
				d.Regressed = true
				if d.Reason != "" {
					d.Reason += "; "
				}
				d.Reason += fmt.Sprintf("allocs/op %.2f exceeds baseline %.2f",
					d.FreshAllocs, d.BaselineAllocs)
			}
		}
		anyRegressed = anyRegressed || d.Regressed
		out = append(out, d)
	}
	// Kernels measured fresh but absent from the committed baseline have
	// no regression coverage — fail loudly so adding a kernel forces the
	// baseline to be regenerated in the same change.
	var extra []string
	for k, p := range fi {
		if _, known := bi[k]; !known && p.base != nil && p.fast != nil {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		p := fi[k]
		out = append(out, KernelDelta{
			Kernel:      k,
			FreshRatio:  p.fast.NsPerOp / p.base.NsPerOp,
			FreshAllocs: p.fast.AllocsPerOp,
			Regressed:   true,
			Reason:      "kernel missing from committed baseline (regenerate BENCH_perf.json)",
		})
		anyRegressed = true
	}
	return out, anyRegressed
}

// kernelPairIndex groups a kernel sweep's records by kernel name into
// baseline/fast pairs — the matching logic CompareKernels and
// MergeKernelRuns share.
type kernelPairIndex struct{ base, fast *KernelRecord }

func indexKernels(recs []KernelRecord) map[string]kernelPairIndex {
	m := make(map[string]kernelPairIndex)
	for i := range recs {
		r := &recs[i]
		p := m[r.Kernel]
		switch r.Impl {
		case "baseline":
			p.base = r
		case "fast":
			p.fast = r
		}
		m[r.Kernel] = p
	}
	return m
}

// MergeKernelRuns combines several fresh kernel sweeps into one by
// keeping, per kernel, the run with the lowest fast/baseline time ratio
// — the run least distorted by transient host noise. Comparing the
// best-of-N fresh ratio against the committed baseline makes the 20%
// gate robust on shared CI runners: noise can only push a ratio up, so
// the minimum across runs is the honest estimate.
func MergeKernelRuns(runs ...[]KernelRecord) []KernelRecord {
	best := make(map[string]kernelPairIndex)
	var order []string
	for _, run := range runs {
		for k, p := range indexKernels(run) {
			if p.base == nil || p.fast == nil || p.base.NsPerOp <= 0 {
				continue
			}
			cur, seen := best[k]
			if !seen {
				best[k] = p
				order = append(order, k)
				continue
			}
			if p.fast.NsPerOp/p.base.NsPerOp < cur.fast.NsPerOp/cur.base.NsPerOp {
				best[k] = p
			}
		}
	}
	sort.Strings(order)
	out := make([]KernelRecord, 0, 2*len(order))
	for _, k := range order {
		out = append(out, *best[k].base, *best[k].fast)
	}
	return out
}

// ReadPerfJSON parses a BENCH_perf.json artifact.
func ReadPerfJSON(r io.Reader) (PerfReport, error) {
	var rep PerfReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return PerfReport{}, fmt.Errorf("bench: parsing perf JSON: %w", err)
	}
	return rep, nil
}

// PrintKernelDeltas renders the regression gate's readable delta table.
func PrintKernelDeltas(w io.Writer, deltas []KernelDelta) {
	fmt.Fprintf(w, "%-22s %14s %14s %9s %12s %12s  %s\n",
		"Kernel", "ratio(base)", "ratio(fresh)", "Δratio", "allocs(base)", "allocs(fresh)", "verdict")
	for _, d := range deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED: " + d.Reason
		}
		change := 0.0
		if d.BaselineRatio > 0 {
			change = (d.FreshRatio - d.BaselineRatio) / d.BaselineRatio * 100
		}
		fmt.Fprintf(w, "%-22s %14.4f %14.4f %+8.1f%% %12.2f %12.2f  %s\n",
			d.Kernel, d.BaselineRatio, d.FreshRatio, change,
			d.BaselineAllocs, d.FreshAllocs, verdict)
	}
}
