package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tree"
)

// Whole-construction invariants, property-checked over random Hamiltonians.

func TestBuildInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(4)
		mh := randomFermionic(n, 6+r.Intn(10), seed)
		if len(mh.Terms) == 0 {
			return true
		}
		res := Build(mh)
		if err := res.Mapping.Verify(); err != nil {
			return false
		}
		if err := res.Mapping.VerifyIndependent(); err != nil {
			return false
		}
		if !res.Mapping.VacuumPreserved() {
			return false
		}
		if err := res.Tree.Validate(); err != nil {
			return false
		}
		return res.Mapping.Apply(mh).Weight() == res.PredictedWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOptimizerChainProperty(t *testing.T) {
	// Exhaustive ≤ beam ≤ greedy-unopt is not guaranteed (vacuum
	// constraints differ), but exhaustive must beat or match everything
	// when complete.
	f := func(seed int64) bool {
		mh := randomFermionic(3, 6, seed)
		if len(mh.Terms) == 0 {
			return true
		}
		ex := Exhaustive(mh, 0)
		if !ex.Optimal {
			return false
		}
		for _, w := range []int{
			Build(mh).PredictedWeight,
			BuildUnopt(mh).PredictedWeight,
			BuildBeam(mh, 4).PredictedWeight,
			Anneal(mh, AnnealOptions{Iters: 300, Seed: seed + 1}).PredictedWeight,
		} {
			if ex.PredictedWeight > w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestEvaluateTreeLowerBoundedByExhaustive(t *testing.T) {
	// Any random complete ternary tree scores at least the exhaustive
	// optimum.
	r := rand.New(rand.NewSource(17))
	mh := randomFermionic(4, 10, 17)
	ex := Exhaustive(mh, 0)
	for trial := 0; trial < 20; trial++ {
		tr := randomCompleteTree(r, 4)
		if w := EvaluateTree(mh, tr); w < ex.PredictedWeight {
			t.Fatalf("random tree weight %d beats proven optimum %d", w, ex.PredictedWeight)
		}
	}
}

// randomCompleteTree mirrors the tree-package test helper (bottom-up
// random merges).
func randomCompleteTree(r *rand.Rand, n int) *tree.Tree {
	t := &tree.Tree{N: n, Leaves: make([]*tree.Node, 2*n+1)}
	pool := make([]*tree.Node, 2*n+1)
	for i := range pool {
		leaf := &tree.Node{ID: i}
		pool[i] = leaf
		t.Leaves[i] = leaf
	}
	for i := 0; i < n; i++ {
		r.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		parent := &tree.Node{ID: 2*n + 1 + i, Qubit: i}
		parent.SetChildren(pool[0], pool[1], pool[2])
		pool = append(pool[3:], parent)
	}
	t.Root = pool[0]
	return t
}

func TestConstructionsDeterministic(t *testing.T) {
	mh := randomFermionic(5, 14, 9)
	for name, build := range map[string]func() int{
		"Build":      func() int { return Build(mh).PredictedWeight },
		"BuildUnopt": func() int { return BuildUnopt(mh).PredictedWeight },
		"Beam4":      func() int { return BuildBeam(mh, 4).PredictedWeight },
		"Exhaustive": func() int { return Exhaustive(mh, 10000).PredictedWeight },
		"TieSupport": func() int { return BuildWithOptions(mh, BuildOptions{TieBreak: TieSupport}).PredictedWeight },
	} {
		a, b := build(), build()
		if a != b {
			t.Errorf("%s nondeterministic: %d vs %d", name, a, b)
		}
	}
}

func TestSingleModeSystems(t *testing.T) {
	// Degenerate n=1: one merge of the three leaves; everything must hold.
	mh := randomFermionic(1, 3, 2)
	for _, res := range []*Result{Build(mh), BuildUnopt(mh), BuildBeam(mh, 2)} {
		if err := res.Mapping.Verify(); err != nil {
			t.Fatal(err)
		}
		if res.Tree.N != 1 {
			t.Fatal("wrong tree size")
		}
	}
	ex := Exhaustive(mh, 0)
	if !ex.Optimal {
		t.Fatal("n=1 exhaustive must complete")
	}
}

func TestEmptyHamiltonian(t *testing.T) {
	// A Hamiltonian with no terms still yields a valid mapping (any tree
	// works; weight 0).
	mh := randomFermionic(3, 0, 1)
	res := Build(mh)
	if res.PredictedWeight != 0 {
		t.Errorf("weight = %d, want 0", res.PredictedWeight)
	}
	if err := res.Mapping.Verify(); err != nil {
		t.Fatal(err)
	}
}
