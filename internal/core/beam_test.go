package core

import (
	"testing"
)

func TestBeamWidth1MatchesGreedy(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		mh := randomFermionic(5, 12, seed)
		g := Build(mh)
		b := BuildBeam(mh, 1)
		if g.PredictedWeight != b.PredictedWeight {
			t.Errorf("seed %d: beam(1) %d != greedy %d", seed, b.PredictedWeight, g.PredictedWeight)
		}
	}
}

func TestBeamNeverWorseThanGreedy(t *testing.T) {
	// Beam search is not monotone in width, but the incumbent rule
	// guarantees it never loses to the greedy construction.
	for seed := int64(1); seed <= 6; seed++ {
		mh := randomFermionic(5, 15, seed)
		w1 := BuildBeam(mh, 1).PredictedWeight
		for _, width := range []int{2, 4, 8} {
			if w := BuildBeam(mh, width).PredictedWeight; w > w1 {
				t.Errorf("seed %d: beam(%d) %d worse than greedy %d", seed, width, w, w1)
			}
		}
	}
}

func TestBeamPreservesVacuumAndVerifies(t *testing.T) {
	mh := randomFermionic(6, 18, 3)
	res := BuildBeam(mh, 6)
	if err := res.Mapping.Verify(); err != nil {
		t.Fatal(err)
	}
	if !res.Mapping.VacuumPreserved() {
		t.Error("beam mapping lost vacuum preservation")
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if actual := res.Mapping.Apply(mh).Weight(); actual != res.PredictedWeight {
		t.Errorf("beam predicted %d, actual %d", res.PredictedWeight, actual)
	}
}

func TestBeamFindsExhaustiveOptimumSometimes(t *testing.T) {
	// On the motivation example a modest beam should reach the
	// vacuum-preserving optimum found by exhaustive search restricted to
	// the same candidate rule — at minimum it must beat or match greedy.
	mh := motivation()
	greedy := Build(mh).PredictedWeight
	beam := BuildBeam(mh, 16).PredictedWeight
	if beam > greedy {
		t.Errorf("beam %d worse than greedy %d", beam, greedy)
	}
}

func TestBeamEq3(t *testing.T) {
	res := BuildBeam(eq3(), 4)
	if actual := res.Mapping.Apply(eq3()).Weight(); actual != res.PredictedWeight {
		t.Errorf("predicted %d != actual %d", res.PredictedWeight, actual)
	}
}
