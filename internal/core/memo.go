package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/fermion"
	"repro/internal/lru"
	"repro/internal/mapping"
)

// The build memo caches completed HATT constructions so repeated
// compilations of the same Hamiltonian — the common case for batch and
// multi-tenant serving, where many requests name the same model — skip
// the O(N³) greedy search. Only the merge schedule is cached: every hit
// replays it through a fresh builder (O(N) merges), so callers always
// receive their own Tree and Mapping and may mutate them freely. The memo
// is guarded by a RWMutex and safe for concurrent Build calls.
//
// Entries are keyed by a content fingerprint of the Hamiltonian (modes
// plus every monomial index set, FNV-1a) and the tie-break policy, the
// only two inputs the construction depends on; the worker count changes
// wall time, never the schedule.
//
// Concurrent misses on the same key are single-flighted: the first
// caller runs the search while the rest wait and replay its stored
// schedule, so a batch of identical requests really does pay for one
// construction. If the leader fails (cancellation), a waiter takes over.

type buildMemoKey struct {
	fp uint64
	tb TieBreak
}

type buildMemoEntry struct {
	// canon is the canonical key material the fingerprint was computed
	// over; hits verify it so a 64-bit hash collision degrades to a miss
	// instead of silently serving another Hamiltonian's schedule.
	canon  []int
	merges [][3]int
}

// buildMemoLimit bounds the entry count. Eviction is LRU, one entry at a
// time: under sustained batch workloads that cycle through more than
// buildMemoLimit distinct Hamiltonians, the hot ones stay resident
// instead of being wiped wholesale whenever the map fills. Entries are
// tiny — 3N ints — so the bound is generous.
const buildMemoLimit = 256

var buildMemo = struct {
	sync.Mutex
	c *lru.Cache[buildMemoKey, buildMemoEntry]
}{c: lru.New[buildMemoKey, buildMemoEntry](buildMemoLimit)}

// inflight tracks keys whose construction is currently running; the
// channel closes when the leader finishes (successfully or not).
var inflight = struct {
	sync.Mutex
	m map[buildMemoKey]chan struct{}
}{m: make(map[buildMemoKey]chan struct{})}

// buildSearches counts full constructions (misses that ran the search);
// tests use it to assert single-flight behavior.
var buildSearches atomic.Int64

// ResetBuildCache empties the build memo. Benchmarks that time the
// construction itself call this between runs; production callers never
// need to.
func ResetBuildCache() {
	buildMemo.Lock()
	buildMemo.c.Reset()
	buildMemo.Unlock()
}

// canonicalKey flattens the inputs the HATT construction reads — the
// mode count and the monomial index sets, in term order — into one
// self-delimiting slice (each set is prefixed with its length).
func canonicalKey(mh *fermion.MajoranaHamiltonian) []int {
	out := []int{mh.Modes}
	for _, t := range mh.Terms {
		if len(t.Indices) == 0 {
			continue // identity monomials are invisible to the oracle
		}
		out = append(out, len(t.Indices))
		out = append(out, t.Indices...)
	}
	return out
}

// fingerprint hashes a canonical key (FNV-1a).
func fingerprint(canon []int) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range canon {
		u := uint64(v)
		for s := 0; s < 64; s += 8 {
			h ^= (u >> s) & 0xff
			h *= prime
		}
	}
	return h
}

func canonEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memoLookup returns the cached merge schedule for (key, canon), if any,
// marking the entry most-recently-used; a fingerprint collision with
// different canonical material is a miss.
func memoLookup(key buildMemoKey, canon []int) (buildMemoEntry, bool) {
	buildMemo.Lock()
	e, ok := buildMemo.c.Get(key)
	buildMemo.Unlock()
	if ok && !canonEqual(e.canon, canon) {
		return buildMemoEntry{}, false
	}
	return e, ok
}

// memoAcquire resolves a key to either a cached entry (hit true) or
// leadership of its construction: the caller must run the search and
// call release once the result is stored (or the search failed).
// Concurrent misses block until the leader releases, then re-check the
// memo — or take over if the leader failed without storing.
func memoAcquire(ctx context.Context, key buildMemoKey, canon []int) (e buildMemoEntry, hit bool, release func(), err error) {
	for {
		if e, ok := memoLookup(key, canon); ok {
			return e, true, nil, nil
		}
		inflight.Lock()
		if ch, running := inflight.m[key]; running {
			inflight.Unlock()
			select {
			case <-ch:
				continue // leader finished; re-check the memo
			case <-ctx.Done():
				return buildMemoEntry{}, false, nil, ctx.Err()
			}
		}
		ch := make(chan struct{})
		inflight.m[key] = ch
		inflight.Unlock()
		return buildMemoEntry{}, false, func() {
			inflight.Lock()
			delete(inflight.m, key)
			inflight.Unlock()
			close(ch)
		}, nil
	}
}

// memoStore records a completed construction, evicting the
// least-recently-used entry when the memo is at capacity. A fingerprint
// collision overwrites the colliding entry (one-entry bucket semantics).
func memoStore(key buildMemoKey, canon []int, log [][3]int) {
	merges := make([][3]int, len(log))
	copy(merges, log)
	buildMemo.Lock()
	buildMemo.c.Put(key, buildMemoEntry{canon: canon, merges: merges})
	buildMemo.Unlock()
}

// replay reconstructs a Result from a cached merge schedule through a
// fresh builder, so each caller gets an independent tree and mapping.
func (e buildMemoEntry) replay(mh *fermion.MajoranaHamiltonian) *Result {
	b := newBuilder(newProblem(mh))
	for i, m := range e.merges {
		b.merge(i, m[0], m[1], m[2])
	}
	t := b.finish()
	return &Result{
		Mapping:         mapping.FromTreeByLeafID("HATT", t),
		Tree:            t,
		PredictedWeight: b.predicted,
	}
}
