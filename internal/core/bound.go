package core

import (
	"errors"
	"math"
	"sync/atomic"
)

// ErrBounded reports that a search was abandoned because the shared
// incumbent bound proved it could not win its portfolio race. It is a
// clean early exit, not a failure: the abandoned search would have lost
// the deterministic winner reduction no matter how it finished.
var ErrBounded = errors.New("core: search abandoned by incumbent bound")

// boundPosBits is the width reserved for the racer position in the
// packed bound word. Portfolios hold a handful of racers; 16 bits is
// generous and leaves 47 bits for the weight.
const (
	boundPosBits = 16
	boundPosMask = (1 << boundPosBits) - 1
)

// Bound is the shared incumbent of a portfolio race: the lexicographic
// minimum of (weight, racer position) over every achieved result offered
// so far, packed into one atomic word so workers can consult it without
// locks. Racers offer completed (and, for anytime searches, improved
// best-so-far) weights via Offer and consult Unbeatable to abandon
// searches that can no longer win.
//
// Determinism: the final bound value is a commutative minimum over the
// same offer set regardless of timing, and Unbeatable is calibrated so
// the eventual winner — the racer whose (final weight, position) is the
// lexicographic minimum — can never observe itself as unbeatable (its
// monotone partial lower bound never exceeds its final weight, which
// every bound value dominates). Abandonment is therefore free to fire at
// different moments on different runs without changing the winner.
//
// A nil *Bound is valid and inert: Offer is a no-op and Unbeatable
// always reports false, so search code can consult an optional bound
// unconditionally.
type Bound struct {
	packed atomic.Int64
}

// NewBound returns a bound holding no incumbent yet.
func NewBound() *Bound {
	b := &Bound{}
	b.packed.Store(math.MaxInt64)
	return b
}

// packBound encodes (weight, pos) so that integer order on the packed
// word is lexicographic order on the pair.
func packBound(weight, pos int) int64 {
	return int64(weight)<<boundPosBits | int64(pos&boundPosMask)
}

// Offer publishes an achieved weight from the racer at the given
// canonical position, lowering the bound if (weight, pos) improves on
// the current incumbent lexicographically.
func (b *Bound) Offer(weight, pos int) {
	if b == nil {
		return
	}
	v := packBound(weight, pos)
	for {
		cur := b.packed.Load()
		if cur <= v || b.packed.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Unbeatable reports whether a search at racer position pos whose final
// weight is provably at least lowerBound can no longer win the
// lexicographic (weight, position) winner reduction. lowerBound must be
// a true lower bound that only grows as the search progresses (e.g. the
// accumulated settled weight of a bottom-up construction); under that
// contract the eventual winner never observes true here.
func (b *Bound) Unbeatable(lowerBound, pos int) bool {
	if b == nil {
		return false
	}
	return packBound(lowerBound, pos) > b.packed.Load()
}

// Best returns the current incumbent (weight, racer position), with
// ok=false while no offer has been made yet.
func (b *Bound) Best() (weight, pos int, ok bool) {
	if b == nil {
		return 0, 0, false
	}
	cur := b.packed.Load()
	if cur == math.MaxInt64 {
		return 0, 0, false
	}
	return int(cur >> boundPosBits), int(cur & boundPosMask), true
}
