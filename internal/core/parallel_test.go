package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/fermion"
)

// mappingBytes serializes a result's mapping for byte-identity checks.
func mappingBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Mapping.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestBuildWithOptionsMatchesBuildAtAnyWorkerCount(t *testing.T) {
	ResetBuildCache()
	for seed := int64(1); seed <= 3; seed++ {
		mh := randomFermionic(5, 15, seed)
		want := BuildWithOptions(mh, BuildOptions{NoMemo: true})
		for _, workers := range []int{1, 2, 8} {
			got := BuildWithOptions(mh, BuildOptions{Workers: workers, NoMemo: true})
			if got.PredictedWeight != want.PredictedWeight {
				t.Fatalf("seed %d workers %d: weight %d, want %d",
					seed, workers, got.PredictedWeight, want.PredictedWeight)
			}
			if !bytes.Equal(mappingBytes(t, got), mappingBytes(t, want)) {
				t.Fatalf("seed %d workers %d: mapping differs from sequential", seed, workers)
			}
		}
	}
}

func TestBuildBeamDeterministicAcrossWorkerCounts(t *testing.T) {
	ResetBuildCache()
	ctx := context.Background()
	for seed := int64(1); seed <= 3; seed++ {
		mh := randomFermionic(5, 15, seed)
		want, err := BuildBeamOpts(ctx, mh, BeamOptions{Width: 4, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := BuildBeamOpts(ctx, mh, BeamOptions{Width: 4, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got.PredictedWeight != want.PredictedWeight ||
				!bytes.Equal(mappingBytes(t, got), mappingBytes(t, want)) {
				t.Fatalf("seed %d workers %d: beam result differs from sequential", seed, workers)
			}
		}
	}
}

func TestBuildBeamOptsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mh := randomFermionic(5, 15, 1)
	if _, err := BuildBeamOpts(ctx, mh, BeamOptions{Width: 4, Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnnealRestartsDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	mh := randomFermionic(4, 10, 1)
	base := AnnealOptions{Iters: 400, Seed: 7, Restarts: 4}
	want, err := AnnealCtx(ctx, mh, func() AnnealOptions { o := base; o.Workers = 1; return o }())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		o := base
		o.Workers = workers
		got, err := AnnealCtx(ctx, mh, o)
		if err != nil {
			t.Fatal(err)
		}
		if got.PredictedWeight != want.PredictedWeight ||
			!bytes.Equal(mappingBytes(t, got), mappingBytes(t, want)) {
			t.Fatalf("workers %d: anneal result differs from sequential", workers)
		}
	}
}

func TestAnnealSingleRestartMatchesLegacySeed(t *testing.T) {
	// Restarts=1 must reproduce the pre-restart behavior: one chain with
	// the caller's seed.
	ctx := context.Background()
	mh := randomFermionic(4, 10, 2)
	a, err := AnnealCtx(ctx, mh, AnnealOptions{Iters: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnnealCtx(ctx, mh, AnnealOptions{Iters: 300, Seed: 5, Restarts: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mappingBytes(t, a), mappingBytes(t, b)) {
		t.Fatal("Restarts=1 does not reproduce the single-chain result")
	}
}

func TestAnnealRestartsNeverWorseThanSingleChain(t *testing.T) {
	ctx := context.Background()
	mh := randomFermionic(4, 12, 3)
	single, err := AnnealCtx(ctx, mh, AnnealOptions{Iters: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := AnnealCtx(ctx, mh, AnnealOptions{Iters: 400, Seed: 1, Restarts: 6, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if multi.PredictedWeight > single.PredictedWeight {
		t.Fatalf("restarts made the result worse: %d > %d (chain 0 is included)",
			multi.PredictedWeight, single.PredictedWeight)
	}
}

func TestAnnealRestartsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mh := randomFermionic(4, 10, 1)
	if _, err := AnnealCtx(ctx, mh, AnnealOptions{Iters: 400, Restarts: 4, Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBuildMemoConcurrentAccess(t *testing.T) {
	// Hammer Build from many goroutines over a small set of Hamiltonians:
	// results must agree with a fresh (memo-bypassing) construction, and
	// each caller must get its own tree — memo hits replay, never share.
	ResetBuildCache()
	seeds := []int64{1, 2, 3}
	mhs := make([]*fermion.MajoranaHamiltonian, len(seeds))
	wants := make([][]byte, len(seeds))
	weights := make([]int, len(seeds))
	for i, seed := range seeds {
		mhs[i] = randomFermionic(5, 15, seed)
		ref := BuildWithOptions(mhs[i], BuildOptions{NoMemo: true})
		wants[i] = mappingBytes(t, ref)
		weights[i] = ref.PredictedWeight
	}

	const goroutines = 16
	const iters = 20
	var wg sync.WaitGroup
	results := make([][]*Result, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				results[g] = append(results[g], Build(mhs[(g+it)%len(mhs)]))
			}
		}(g)
	}
	wg.Wait()

	seen := make(map[*Result]bool)
	for g := 0; g < goroutines; g++ {
		for it, res := range results[g] {
			i := (g + it) % len(mhs)
			if res.PredictedWeight != weights[i] {
				t.Fatalf("goroutine %d case %d: weight %d, want %d", g, i, res.PredictedWeight, weights[i])
			}
			if !bytes.Equal(mappingBytes(t, res), wants[i]) {
				t.Fatalf("goroutine %d case %d: mapping differs under concurrency", g, i)
			}
			if seen[res] {
				t.Fatal("memo returned a shared *Result; hits must replay")
			}
			seen[res] = true
		}
	}
}

func TestBuildMemoSingleFlight(t *testing.T) {
	// Concurrent misses on the same Hamiltonian must run the search once:
	// one leader constructs, the waiters replay its stored schedule.
	ResetBuildCache()
	mh := randomFermionic(5, 15, 9)
	before := buildSearches.Load()
	var wg sync.WaitGroup
	results := make([]*Result, 8)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = Build(mh)
		}(g)
	}
	wg.Wait()
	if got := buildSearches.Load() - before; got != 1 {
		t.Fatalf("%d searches ran for one key, want 1 (single-flight)", got)
	}
	want := mappingBytes(t, results[0])
	for g, r := range results[1:] {
		if !bytes.Equal(mappingBytes(t, r), want) {
			t.Fatalf("goroutine %d: mapping differs", g+1)
		}
	}
}

func TestBuildMemoHitReplaysFreshTree(t *testing.T) {
	ResetBuildCache()
	mh := randomFermionic(4, 10, 1)
	a := Build(mh)
	b := Build(mh) // memo hit
	if a.Tree == b.Tree || a.Mapping == b.Mapping {
		t.Fatal("memo hit shared a tree or mapping with an earlier caller")
	}
	if !bytes.Equal(mappingBytes(t, a), mappingBytes(t, b)) {
		t.Fatal("memo hit produced a different mapping")
	}
	// Mutating one caller's result must not leak into the next hit.
	b.Mapping.Name = "mutated"
	c := Build(mh)
	if c.Mapping.Name != "HATT" {
		t.Fatalf("memo served a mutated mapping (name %q)", c.Mapping.Name)
	}
}

func TestBuildMemoCollisionDegradesToMiss(t *testing.T) {
	// Two Hamiltonians colliding on the 64-bit fingerprint must not share
	// a schedule: a hit requires the canonical key material to match.
	ResetBuildCache()
	key := buildMemoKey{fp: 42}
	memoStore(key, []int{1, 2, 3}, [][3]int{{0, 1, 2}})
	if _, ok := memoLookup(key, []int{9, 9}); ok {
		t.Fatal("colliding fingerprint with different canonical key served a hit")
	}
	if _, ok := memoLookup(key, []int{1, 2, 3}); !ok {
		t.Fatal("matching canonical key missed")
	}
}

func TestBuildMemoDistinguishesTieBreaks(t *testing.T) {
	ResetBuildCache()
	mh := randomFermionic(5, 15, 4)
	first := BuildWithOptions(mh, BuildOptions{TieBreak: TieFirst})
	depth := BuildWithOptions(mh, BuildOptions{TieBreak: TieDepth})
	wantFirst := BuildWithOptions(mh, BuildOptions{TieBreak: TieFirst, NoMemo: true})
	wantDepth := BuildWithOptions(mh, BuildOptions{TieBreak: TieDepth, NoMemo: true})
	if !bytes.Equal(mappingBytes(t, first), mappingBytes(t, wantFirst)) {
		t.Fatal("TieFirst memo entry corrupted")
	}
	if !bytes.Equal(mappingBytes(t, depth), mappingBytes(t, wantDepth)) {
		t.Fatal("TieDepth memo entry collided with TieFirst")
	}
}
