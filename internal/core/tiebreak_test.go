package core

import (
	"testing"

	"repro/internal/fermion"
	"repro/internal/models"
)

func TestBuildWithOptionsDefaultMatchesBuild(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		mh := randomFermionic(5, 14, seed)
		a := Build(mh)
		b := BuildWithOptions(mh, BuildOptions{})
		if a.PredictedWeight != b.PredictedWeight {
			t.Fatalf("seed %d: default tie-break diverges: %d vs %d",
				seed, a.PredictedWeight, b.PredictedWeight)
		}
		for j := range a.Mapping.Majoranas {
			if !a.Mapping.Majoranas[j].Equal(b.Mapping.Majoranas[j]) {
				t.Fatalf("seed %d: M%d differs under default tie-break", seed, j)
			}
		}
	}
}

func TestTieBreakPoliciesStayValid(t *testing.T) {
	mh := models.FermiHubbard(2, 3, 1, 4).Majorana(1e-12)
	base := Build(mh).PredictedWeight
	for _, tb := range []TieBreak{TieFirst, TieDepth, TieSupport} {
		res := BuildWithOptions(mh, BuildOptions{TieBreak: tb})
		if err := res.Mapping.Verify(); err != nil {
			t.Fatalf("tiebreak %d: %v", tb, err)
		}
		if !res.Mapping.VacuumPreserved() {
			t.Fatalf("tiebreak %d: lost vacuum preservation", tb)
		}
		if actual := res.Mapping.Apply(mh).Weight(); actual != res.PredictedWeight {
			t.Fatalf("tiebreak %d: predicted %d, actual %d", tb, res.PredictedWeight, actual)
		}
		// Ties only: the primary objective (total weight) must not regress
		// dramatically — same greedy trajectory class. Allow equality or
		// small wobble since different ties change the future landscape.
		if res.PredictedWeight > base*3/2 {
			t.Errorf("tiebreak %d: weight %d blew up vs %d", tb, res.PredictedWeight, base)
		}
	}
}

func TestTieDepthReducesTreeDepth(t *testing.T) {
	// On the unconstrained all-Majorana Hamiltonian the weight landscape
	// is full of ties; the depth tie-break should never yield a deeper
	// tree than the first-found policy.
	n := 8
	mh := &fermion.MajoranaHamiltonian{Modes: n}
	for i := 0; i < 2*n; i++ {
		mh.Terms = append(mh.Terms, fermion.MajoranaTerm{Coeff: 1, Indices: []int{i}})
	}
	first := BuildWithOptions(mh, BuildOptions{TieBreak: TieFirst})
	depth := BuildWithOptions(mh, BuildOptions{TieBreak: TieDepth})
	if depth.Tree.Depth() > first.Tree.Depth() {
		t.Errorf("TieDepth gave deeper tree: %d vs %d", depth.Tree.Depth(), first.Tree.Depth())
	}
}
