// Package core implements the paper's primary contribution: the
// Hamiltonian-Adaptive Ternary Tree (HATT) construction of fermion-to-qubit
// mappings, in both the unoptimized form (Algorithm 1, O(N⁴), no vacuum
// guarantee) and the optimized form (Algorithms 2+3: vacuum-state
// preservation through operator pairing plus O(1) Z-descendant caches,
// O(N³) total). It also provides the Fermihedral stand-ins used as the
// optimal/approximate baselines: an exhaustive branch-and-bound search over
// the ternary-tree mapping space and a simulated-annealing local search.
package core

import (
	"math/bits"

	"repro/internal/fermion"
	"repro/internal/tree"
)

// termBits is a bitset over Hamiltonian terms: bit t set means "this node's
// Pauli string participates in term t".
type termBits []uint64

func newTermBits(words int) termBits { return make(termBits, words) }

func (b termBits) clone() termBits {
	c := make(termBits, len(b))
	copy(c, b)
	return c
}

func (b termBits) set(t int) { b[t/64] |= 1 << uint(t%64) }

func (b termBits) xorInto(dst termBits, other termBits) {
	for i := range dst {
		dst[i] = b[i] ^ other[i]
	}
}

// scoreFanoutCutoff is the candidate count below which the search
// methods keep scoring sequential: dispatching a pool over a few dozen
// settledWeight calls costs more than the calls themselves. Above it,
// the per-chunk work dwarfs the dispatch.
const scoreFanoutCutoff = 256

// settledWeight computes the Pauli weight contributed on one qubit when
// nodes with term-membership bitsets bx, by, bz become its X, Y, Z
// children: a term's operator on that qubit is non-identity iff exactly one
// or two of the three nodes appear in it (all three multiply to X·Y·Z ∝ I).
func settledWeight(bx, by, bz termBits) int {
	w := 0
	for i := range bx {
		union := bx[i] | by[i] | bz[i]
		all := bx[i] & by[i] & bz[i]
		w += bits.OnesCount64(union &^ all)
	}
	return w
}

// symDiffWeight is the pairwise lower bound feeding the unopt triple-loop
// prune: |aΔb| = |a∪b| − |a∩b| ≤ |a∪b∪c| − |a∩b∩c| = settledWeight(a,b,c)
// for every third set c, since the union only grows and the intersection
// only shrinks.
func symDiffWeight(a, b termBits) int {
	w := 0
	for i := range a {
		w += bits.OnesCount64(a[i] ^ b[i])
	}
	return w
}

// problem is the preprocessed optimization instance shared by every
// construction in this package: one bitset per Majorana leaf recording the
// Hamiltonian terms that contain it.
type problem struct {
	n      int // modes
	nTerms int
	words  int
	// leafBits[id] for id in 0..2n (leaf 2n exists but never appears in a
	// term: Majorana indices are 0..2n-1).
	leafBits []termBits
}

// newProblem preprocesses a Majorana Hamiltonian (Algorithm 1 line 1):
// identity monomials are dropped; every remaining monomial becomes one term
// bit on each of its Majorana indices.
func newProblem(mh *fermion.MajoranaHamiltonian) *problem {
	n := mh.Modes
	sets := mh.IndexSets()
	p := &problem{n: n, nTerms: len(sets), words: (len(sets) + 63) / 64}
	if p.words == 0 {
		p.words = 1
	}
	p.leafBits = make([]termBits, 2*n+1)
	for id := range p.leafBits {
		p.leafBits[id] = newTermBits(p.words)
	}
	for t, idx := range sets {
		for _, m := range idx {
			p.leafBits[m].set(t)
		}
	}
	return p
}

// EvaluateTree returns the Pauli weight the qubit Hamiltonian will have
// under the mapping defined by t with leaf-ID-to-Majorana-index assignment
// (leaf i realizes M_i), computed purely combinatorially: for each internal
// node, count the terms in which exactly one or two of its children's
// subtree parities are odd.
func EvaluateTree(mh *fermion.MajoranaHamiltonian, t *tree.Tree) int {
	p := newProblem(mh)
	return p.evaluateTree(t)
}

func (p *problem) evaluateTree(t *tree.Tree) int {
	total := 0
	var walk func(n *tree.Node) termBits
	walk = func(n *tree.Node) termBits {
		if n.IsLeaf() {
			return p.leafBits[n.ID]
		}
		bx := walk(n.Child[tree.BX])
		by := walk(n.Child[tree.BY])
		bz := walk(n.Child[tree.BZ])
		total += settledWeight(bx, by, bz)
		out := newTermBits(p.words)
		for i := range out {
			out[i] = bx[i] ^ by[i] ^ bz[i]
		}
		return out
	}
	walk(t.Root)
	return total
}

// builder holds the mutable bottom-up construction state shared by
// Algorithm 1 and Algorithm 2+3.
type builder struct {
	p     *problem
	bits  []termBits   // node ID -> term bitset (active and historical)
	nodes []*tree.Node // node ID -> node
	u     []int        // active node IDs, ascending
	// Z-descendant caches (Algorithm 3).
	mdown []int // node ID -> descZ leaf ID
	mup   []int // leaf ID -> its ancestor in U
	// predicted accumulates the settled weight over all steps; it equals
	// the Pauli weight of the final qubit Hamiltonian.
	predicted int
	// log records the merge triples in step order.
	log [][3]int
}

func newBuilder(p *problem) *builder {
	n := p.n
	b := &builder{
		p:     p,
		bits:  make([]termBits, 3*n+1),
		nodes: make([]*tree.Node, 3*n+1),
		u:     make([]int, 2*n+1),
		mdown: make([]int, 3*n+1),
		mup:   make([]int, 2*n+1),
	}
	for id := 0; id <= 2*n; id++ {
		b.bits[id] = p.leafBits[id].clone()
		b.nodes[id] = &tree.Node{ID: id}
		b.u[id] = id
		b.mdown[id] = id
		b.mup[id] = id
	}
	return b
}

// removeFromU deletes one ID from the active set, preserving order.
func (b *builder) removeFromU(id int) {
	for i, v := range b.u {
		if v == id {
			b.u = append(b.u[:i], b.u[i+1:]...)
			return
		}
	}
	panic("core: node not in U")
}

// merge performs the step-i update (Algorithm 1 lines 13–16 plus the
// Algorithm 3 cache update): ox, oy, oz become the X, Y, Z children of the
// new internal node for qubit i, and the Hamiltonian reduces by settling
// qubit i.
func (b *builder) merge(i, ox, oy, oz int) {
	n := b.p.n
	pid := 2*n + 1 + i
	parent := &tree.Node{ID: pid, Qubit: i}
	parent.SetChildren(b.nodes[ox], b.nodes[oy], b.nodes[oz])
	b.nodes[pid] = parent

	b.predicted += settledWeight(b.bits[ox], b.bits[oy], b.bits[oz])

	pb := newTermBits(b.p.words)
	for w := range pb {
		pb[w] = b.bits[ox][w] ^ b.bits[oy][w] ^ b.bits[oz][w]
	}
	b.bits[pid] = pb

	b.removeFromU(ox)
	b.removeFromU(oy)
	b.removeFromU(oz)
	b.u = append(b.u, pid) // pid exceeds all current members: stays sorted

	// O(1) cache update: the parent inherits the Z child's Z-descendant.
	zd := b.mdown[oz]
	b.mdown[pid] = zd
	b.mup[zd] = pid

	b.log = append(b.log, [3]int{ox, oy, oz})
}

// finish assembles the completed tree once U has collapsed to the root.
func (b *builder) finish() *tree.Tree {
	if len(b.u) != 1 {
		panic("core: construction incomplete")
	}
	n := b.p.n
	t := &tree.Tree{N: n, Root: b.nodes[b.u[0]], Leaves: make([]*tree.Node, 2*n+1)}
	copy(t.Leaves, b.nodes[:2*n+1])
	return t
}
