package core

import (
	"context"

	"repro/internal/fermion"
	"repro/internal/mapping"
)

// ExhaustiveResult reports the outcome of the Fermihedral-substitute
// exhaustive search.
type ExhaustiveResult struct {
	Result
	// Optimal is true when the search space was fully explored (possibly
	// with branch-and-bound pruning, which never discards an optimum);
	// false when the visit budget was exhausted first, in which case the
	// result is the best mapping found so far — the analogue of
	// Fermihedral's '*' approximately-optimal solutions.
	Optimal bool
	Visited int64
}

// Exhaustive runs ExhaustiveCtx with a background context; it never fails.
func Exhaustive(mh *fermion.MajoranaHamiltonian, maxVisits int64) *ExhaustiveResult {
	//hatt:lint-ignore ctxflow compat wrapper: the Ctx variant is the library API
	res, _ := ExhaustiveCtx(context.Background(), mh, maxVisits)
	return res
}

// ExhaustiveCtx searches the entire ternary-tree fermion-to-qubit mapping
// space for the Hamiltonian-minimal Pauli weight, standing in for the
// Fermihedral SAT baseline. It explores all sequences of 3-subset merges
// with branch-and-bound on the accumulated settled weight, plus sibling
// deduplication (candidates whose term bitsets coincide are
// interchangeable). Complexity is super-exponential in N — by design: the
// scalability wall is part of what Figure 12 reproduces. maxVisits bounds
// the number of explored merge states (≤ 0 means unlimited).
//
// The context is checked on every visited search state; on cancellation
// the recursion unwinds within one state expansion and (nil, ctx.Err())
// is returned.
func ExhaustiveCtx(ctx context.Context, mh *fermion.MajoranaHamiltonian, maxVisits int64) (*ExhaustiveResult, error) {
	p := newProblem(mh)
	n := p.n
	s := &exhaustiveState{
		ctx:       ctx,
		p:         p,
		bits:      make([]termBits, 3*n+1),
		u:         make([]int, 2*n+1),
		merges:    make([][3]int, n),
		best:      int(^uint(0) >> 1),
		maxVisits: maxVisits,
	}
	for id := 0; id <= 2*n; id++ {
		s.bits[id] = p.leafBits[id].clone()
		s.u[id] = id
	}
	// Seed with the greedy Algorithm-1 solution: guarantees a result even
	// under a visit budget and tightens the branch-and-bound from the start.
	seed := buildUnoptBuilder(newProblem(mh))
	s.best = seed.predicted + 1 // strict bound: keep seed unless beaten
	s.bestMerges = make([][3]int, len(seed.log))
	copy(s.bestMerges, seed.log)
	s.dfs(0, 0)
	if s.cancelled {
		return nil, ctx.Err()
	}
	s.complete = !s.exhausted

	// Rebuild the best merge sequence into a tree via the shared builder.
	b := newBuilder(p)
	for i, m := range s.bestMerges {
		b.merge(i, m[0], m[1], m[2])
	}
	t := b.finish()
	name := "FH"
	if !s.complete {
		name = "FH*"
	}
	return &ExhaustiveResult{
		Result: Result{
			Mapping:         mapping.FromTreeByLeafID(name, t),
			Tree:            t,
			PredictedWeight: b.predicted,
		},
		Optimal: s.complete,
		Visited: s.visited,
	}, nil
}

type exhaustiveState struct {
	ctx        context.Context
	p          *problem
	bits       []termBits
	u          []int
	merges     [][3]int
	best       int
	bestMerges [][3]int
	visited    int64
	maxVisits  int64
	complete   bool
	exhausted  bool
	cancelled  bool
}

func (s *exhaustiveState) dfs(step, acc int) {
	if s.exhausted || s.cancelled {
		return
	}
	if s.ctx.Err() != nil {
		s.cancelled = true
		return
	}
	s.visited++
	if s.maxVisits > 0 && s.visited > s.maxVisits {
		s.exhausted = true
		return
	}
	n := s.p.n
	if step == n {
		if acc < s.best {
			s.best = acc
			s.bestMerges = make([][3]int, n)
			copy(s.bestMerges, s.merges)
		}
		return
	}
	u := s.u
	pid := 2*n + 1 + step
	for ai := 0; ai < len(u); ai++ {
		if ai > 0 && bitsEqual(s.bits[u[ai]], s.bits[u[ai-1]]) {
			continue // interchangeable with the previous first pick
		}
		for bi := ai + 1; bi < len(u); bi++ {
			if bi > ai+1 && bitsEqual(s.bits[u[bi]], s.bits[u[bi-1]]) {
				continue
			}
			for ci := bi + 1; ci < len(u); ci++ {
				if ci > bi+1 && bitsEqual(s.bits[u[ci]], s.bits[u[ci-1]]) {
					continue
				}
				ox, oy, oz := u[ai], u[bi], u[ci]
				w := settledWeight(s.bits[ox], s.bits[oy], s.bits[oz])
				if acc+w >= s.best {
					continue // bound: settled weight only grows
				}
				// Apply merge.
				pb := newTermBits(s.p.words)
				for k := range pb {
					pb[k] = s.bits[ox][k] ^ s.bits[oy][k] ^ s.bits[oz][k]
				}
				s.bits[pid] = pb
				s.merges[step] = [3]int{ox, oy, oz}
				newU := make([]int, 0, len(u)-2)
				for _, v := range u {
					if v != ox && v != oy && v != oz {
						newU = append(newU, v)
					}
				}
				newU = append(newU, pid)
				s.u = newU
				s.dfs(step+1, acc+w)
				s.u = u
				if s.exhausted || s.cancelled {
					return
				}
			}
		}
	}
}

func bitsEqual(a, b termBits) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
