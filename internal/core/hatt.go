package core

import (
	"context"

	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/tree"
)

// Result bundles a constructed mapping with its tree and the Pauli weight
// the construction predicted (which equals the weight of the mapped qubit
// Hamiltonian).
type Result struct {
	Mapping         *mapping.Mapping
	Tree            *tree.Tree
	PredictedWeight int
}

// BuildUnopt runs Algorithm 1: the plain Hamiltonian-adaptive bottom-up
// construction. At each of the N steps it examines every 3-subset of the
// active node set (the X/Y/Z role split does not affect the settled weight,
// so unordered subsets suffice — the paper's permutation enumeration visits
// the same candidates six times each) and merges the subset minimizing the
// Pauli weight settled on that step's qubit. O(N⁴) overall. The resulting
// mapping is *not* vacuum-state preserving in general.
func BuildUnopt(mh *fermion.MajoranaHamiltonian) *Result {
	//hatt:lint-ignore ctxflow compat wrapper: the Ctx variant is the library API
	res, err := BuildUnoptCtx(context.Background(), mh, UnoptOptions{})
	if err != nil {
		panic(err)
	}
	return res
}

// UnoptOptions configures BuildUnoptCtx.
type UnoptOptions struct {
	// Bound, when non-nil, is a shared portfolio incumbent consulted once
	// per construction step: the scan returns ErrBounded as soon as the
	// accumulated settled weight proves the final mapping cannot win the
	// lexicographic (weight, BoundPos) race. Abandonment is all-or-nothing
	// — the pairwise-delta prune and triple selection are untouched — so
	// the portfolio winner stays byte-identical at any timing.
	Bound *Bound
	// BoundPos is this search's position in the portfolio's canonical
	// racer order, the tie-break key of the (weight, position) race.
	BoundPos int
}

// BuildUnoptCtx is BuildUnopt with context cancellation (checked once per
// construction step) and optional portfolio-bound abandonment.
func BuildUnoptCtx(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts UnoptOptions) (*Result, error) {
	b, err := buildUnoptScan(ctx, newProblem(mh), opts)
	if err != nil {
		return nil, err
	}
	t := b.finish()
	return &Result{
		Mapping:         mapping.FromTreeByLeafID("HATT-unopt", t),
		Tree:            t,
		PredictedWeight: b.predicted,
	}, nil
}

// buildUnoptBuilder is the context-free pruned scan, kept for callers
// with no cancellation surface (differential tests, the exhaustive-search
// seed). It cannot fail: with no context and no bound there is no early
// exit.
func buildUnoptBuilder(p *problem) *builder {
	//hatt:lint-ignore ctxflow compat wrapper: the ctx-aware scan is the library path
	b, err := buildUnoptScan(context.Background(), p, UnoptOptions{})
	if err != nil {
		panic(err)
	}
	return b
}

func buildUnoptScan(ctx context.Context, p *problem, opts UnoptOptions) (*builder, error) {
	b := newBuilder(p)
	n := p.n
	// Pairwise symmetric-difference popcounts over all node IDs, filled
	// once for the leaves and extended by one row per merge. For any third
	// node c, settledWeight(a,b,c) ≥ delta[a][b] (see symDiffWeight), so
	// the table prunes candidate triples below the incumbent without
	// touching their bitsets. The selection is identical to the unpruned
	// scan: pruned triples can never satisfy the strict w < bestW update.
	ids := 3*n + 1
	delta := make([]int32, ids*ids)
	for ai := 0; ai <= 2*n; ai++ {
		for bi := ai + 1; bi <= 2*n; bi++ {
			d := int32(symDiffWeight(b.bits[ai], b.bits[bi]))
			delta[ai*ids+bi] = d
			delta[bi*ids+ai] = d
		}
	}
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// b.predicted only grows, so once it proves the race lost the
		// whole scan is abandoned.
		if opts.Bound.Unbeatable(b.predicted, opts.BoundPos) {
			return nil, ErrBounded
		}
		bestW := int(^uint(0) >> 1)
		var bx, by, bz int
		u := b.u
		for ai := 0; ai < len(u); ai++ {
			da := delta[u[ai]*ids:]
			for bi := ai + 1; bi < len(u); bi++ {
				if int(da[u[bi]]) >= bestW {
					continue // no third node can beat the incumbent
				}
				db := delta[u[bi]*ids:]
				for ci := bi + 1; ci < len(u); ci++ {
					if int(da[u[ci]]) >= bestW || int(db[u[ci]]) >= bestW {
						continue
					}
					w := settledWeight(b.bits[u[ai]], b.bits[u[bi]], b.bits[u[ci]])
					if w < bestW {
						bestW = w
						bx, by, bz = u[ai], u[bi], u[ci]
					}
				}
			}
		}
		b.merge(i, bx, by, bz)
		pid := 2*n + 1 + i
		for _, id := range b.u {
			if id == pid {
				continue
			}
			d := int32(symDiffWeight(b.bits[pid], b.bits[id]))
			delta[pid*ids+id] = d
			delta[id*ids+pid] = d
		}
	}
	return b, nil
}

// buildUnoptReference is the unpruned Algorithm 1 scan, kept as the
// differential oracle for the prune (tests assert merge-schedule equality)
// and as the before-side of the BuildUnopt benchmark.
func buildUnoptReference(p *problem) *builder {
	b := newBuilder(p)
	n := p.n
	for i := 0; i < n; i++ {
		bestW := int(^uint(0) >> 1)
		var bx, by, bz int
		u := b.u
		for ai := 0; ai < len(u); ai++ {
			for bi := ai + 1; bi < len(u); bi++ {
				for ci := bi + 1; ci < len(u); ci++ {
					w := settledWeight(b.bits[u[ai]], b.bits[u[bi]], b.bits[u[ci]])
					if w < bestW {
						bestW = w
						bx, by, bz = u[ai], u[bi], u[ci]
					}
				}
			}
		}
		b.merge(i, bx, by, bz)
	}
	return b
}

// BuildUnoptReference runs BuildUnopt without the pairwise-delta prune.
// It exists for differential tests and before/after benchmarks; use
// BuildUnopt everywhere else.
func BuildUnoptReference(mh *fermion.MajoranaHamiltonian) *Result {
	b := buildUnoptReference(newProblem(mh))
	t := b.finish()
	return &Result{
		Mapping:         mapping.FromTreeByLeafID("HATT-unopt", t),
		Tree:            t,
		PredictedWeight: b.predicted,
	}
}

// Build runs the optimized HATT construction (Algorithms 2 and 3): at each
// step only (O_X, O_Z) pairs are enumerated, with O_Y derived from the
// Z-descendant caches so that the X child's Z-descendant leaf 2l pairs with
// leaf 2l+1 under the Y child. This guarantees every Majorana pair
// (M_2l, M_2l+1) shares an (X,Y) letter pair on one qubit and acts
// |0⟩-equivalently elsewhere — vacuum-state preservation — while keeping
// the greedy weight minimization. O(N³) overall.
//
// Candidate enumeration detail: the paper iterates ordered (O_X, O_Z) pairs
// and swaps roles when descZ(O_X) is odd; the swapped triple coincides with
// the triple generated directly from the even-descendant partner, so this
// implementation enumerates only nodes with even Z-descendants (≠ 2N) as
// O_X, visiting the same candidate set once.
// Build memoizes completed constructions (see memo.go): repeated calls
// on an identical Hamiltonian replay the cached merge schedule instead of
// re-running the greedy search, returning a fresh tree and mapping each
// time. BuildUncached additionally skips the memo.
func Build(mh *fermion.MajoranaHamiltonian) *Result {
	return BuildWithOptions(mh, BuildOptions{})
}

// BuildUncached runs Algorithm 2 *without* the Algorithm 3 caches: the
// Z-descendant and ancestor lookups walk the tree explicitly, giving the
// O(N⁴) variant whose runtime Figure 12 compares against. The produced
// mapping is identical to Build's.
func BuildUncached(mh *fermion.MajoranaHamiltonian) *Result {
	p := newProblem(mh)
	b := newBuilder(p)
	n := p.n
	inU := make([]bool, 3*n+1)
	for _, id := range b.u {
		inU[id] = true
	}
	for i := 0; i < n; i++ {
		bestW := int(^uint(0) >> 1)
		var bx, by, bz int
		found := false
		for _, ox := range b.u {
			x := b.nodes[ox].DescZ().ID // O(depth) walk down
			if x%2 == 1 || x == 2*n {
				continue
			}
			// O(depth) walk up from leaf x+1 to its ancestor in U.
			anc := b.nodes[x+1]
			for !inU[anc.ID] {
				anc = anc.Parent
			}
			oy := anc.ID
			if oy == ox {
				continue
			}
			for _, oz := range b.u {
				if oz == ox || oz == oy {
					continue
				}
				w := settledWeight(b.bits[ox], b.bits[oy], b.bits[oz])
				if w < bestW {
					bestW = w
					bx, by, bz = ox, oy, oz
					found = true
				}
			}
		}
		if !found {
			panic("core: no valid vacuum-preserving selection (invariant violated)")
		}
		inU[bx], inU[by], inU[bz] = false, false, false
		inU[2*n+1+i] = true
		b.merge(i, bx, by, bz)
	}
	t := b.finish()
	return &Result{
		Mapping:         mapping.FromTreeByLeafID("HATT-uncached", t),
		Tree:            t,
		PredictedWeight: b.predicted,
	}
}
