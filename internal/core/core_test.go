package core

import (
	"math/rand"
	"testing"

	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/mapping"
)

// eq3 is the paper's running example (Equation 3):
// HF = a†0 a0 + 2 a†1 a†2 a1 a2.
func eq3() *fermion.MajoranaHamiltonian {
	h := fermion.NewHamiltonian(3)
	h.Add(1, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 0})
	h.Add(2, fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 2, Dagger: true},
		fermion.Op{Mode: 1}, fermion.Op{Mode: 2})
	return h.Majorana(1e-14)
}

// motivation is the Fig. 4 toy Hamiltonian HF = c1·M0M5 + c2·M1M3, built
// from a fermionic form that expands to exactly those monomials is awkward;
// tests use the index sets directly through a crafted MajoranaHamiltonian.
func motivation() *fermion.MajoranaHamiltonian {
	return &fermion.MajoranaHamiltonian{
		Modes: 3,
		Terms: []fermion.MajoranaTerm{
			{Coeff: complex(0, 0.3), Indices: []int{0, 5}},
			{Coeff: complex(0, 0.7), Indices: []int{1, 3}},
		},
	}
}

// randomFermionic builds a seeded random Hermitian fermionic Hamiltonian.
func randomFermionic(n int, terms int, seed int64) *fermion.MajoranaHamiltonian {
	r := rand.New(rand.NewSource(seed))
	h := fermion.NewHamiltonian(n)
	for k := 0; k < terms; k++ {
		p, q := r.Intn(n), r.Intn(n)
		switch r.Intn(3) {
		case 0:
			h.AddHermitian(complex(r.NormFloat64(), 0),
				fermion.Op{Mode: p, Dagger: true}, fermion.Op{Mode: q})
		case 1:
			h.Add(complex(r.Float64()+0.1, 0),
				fermion.Op{Mode: p, Dagger: true}, fermion.Op{Mode: p})
		default:
			s, t := r.Intn(n), r.Intn(n)
			h.AddHermitian(complex(r.NormFloat64(), 0),
				fermion.Op{Mode: p, Dagger: true}, fermion.Op{Mode: q, Dagger: true},
				fermion.Op{Mode: s}, fermion.Op{Mode: t})
		}
	}
	return h.Majorana(1e-14)
}

func TestBuildEq3FirstMergeMatchesPaper(t *testing.T) {
	// The paper's first step picks O0, O1, O6 with settled weight 1.
	res := Build(eq3())
	b := res.Tree
	// Qubit-0 internal node is ID 2N+1 = 7; its children must be leaves
	// 0 (X), 1 (Y), 6 (Z).
	var q0 = b.Leaves[0].Parent
	if q0.Qubit != 0 {
		t.Fatalf("leaf 0's parent is qubit %d, want 0", q0.Qubit)
	}
	if q0.Child[0].ID != 0 || q0.Child[1].ID != 1 || q0.Child[2].ID != 6 {
		t.Fatalf("first merge = (%d,%d,%d), want (0,1,6)",
			q0.Child[0].ID, q0.Child[1].ID, q0.Child[2].ID)
	}
}

func TestPredictedWeightMatchesActual(t *testing.T) {
	cases := []*fermion.MajoranaHamiltonian{
		eq3(),
		motivation(),
		randomFermionic(4, 8, 1),
		randomFermionic(5, 12, 2),
		randomFermionic(6, 20, 3),
	}
	for ci, mh := range cases {
		for _, build := range []func(*fermion.MajoranaHamiltonian) *Result{Build, BuildUnopt, BuildUncached} {
			res := build(mh)
			actual := res.Mapping.Apply(mh).Weight()
			if res.PredictedWeight != actual {
				t.Errorf("case %d %s: predicted %d, actual %d",
					ci, res.Mapping.Name, res.PredictedWeight, actual)
			}
		}
	}
}

func TestBuildVerifiesAndPreservesVacuum(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		mh := randomFermionic(3+int(seed), 10, seed)
		res := Build(mh)
		if err := res.Mapping.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.Mapping.VacuumPreserved() {
			t.Fatalf("seed %d: Build mapping not vacuum preserving", seed)
		}
		if err := res.Tree.Validate(); err != nil {
			t.Fatalf("seed %d: tree invalid: %v", seed, err)
		}
	}
}

func TestBuildUnoptVerifies(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		mh := randomFermionic(4, 10, seed)
		res := BuildUnopt(mh)
		if err := res.Mapping.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Tree.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestBuildUncachedIdenticalToBuild(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		mh := randomFermionic(5, 15, seed)
		a := Build(mh)
		b := BuildUncached(mh)
		if a.PredictedWeight != b.PredictedWeight {
			t.Fatalf("seed %d: weights differ %d vs %d", seed, a.PredictedWeight, b.PredictedWeight)
		}
		for j := range a.Mapping.Majoranas {
			if !a.Mapping.Majoranas[j].Equal(b.Mapping.Majoranas[j]) {
				t.Fatalf("seed %d: M%d differs: %s vs %s", seed, j,
					a.Mapping.Majoranas[j], b.Mapping.Majoranas[j])
			}
		}
	}
}

func TestMotivationExampleBeatsBalanced(t *testing.T) {
	// Fig. 4: balanced tree gives weight 6; an adaptive tree achieves ≤ 3.
	mh := motivation()
	btt := mapping.BalancedTernaryTree(3)
	bttW := btt.Apply(mh).Weight()
	res := BuildUnopt(mh)
	if res.PredictedWeight > 3 {
		t.Errorf("HATT-unopt weight %d, want ≤ 3 (paper's unbalanced tree)", res.PredictedWeight)
	}
	if res.PredictedWeight >= bttW {
		t.Errorf("HATT-unopt weight %d not better than BTT %d", res.PredictedWeight, bttW)
	}
	// The vacuum-preserving variant may pay a small penalty but must stay
	// at or below the balanced tree.
	resV := Build(mh)
	if resV.PredictedWeight > bttW {
		t.Errorf("HATT weight %d worse than BTT %d", resV.PredictedWeight, bttW)
	}
}

func TestEvaluateTreeConsistency(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		mh := randomFermionic(5, 12, seed)
		res := Build(mh)
		if w := EvaluateTree(mh, res.Tree); w != res.PredictedWeight {
			t.Errorf("seed %d: EvaluateTree %d != predicted %d", seed, w, res.PredictedWeight)
		}
	}
}

func TestExhaustiveOptimalOnSmallCases(t *testing.T) {
	for _, mh := range []*fermion.MajoranaHamiltonian{eq3(), motivation(), randomFermionic(3, 6, 7)} {
		ex := Exhaustive(mh, 0)
		if !ex.Optimal {
			t.Fatal("unbudgeted exhaustive search should complete")
		}
		if err := ex.Mapping.Verify(); err != nil {
			t.Fatal(err)
		}
		// Optimal must be at least as good as both greedy variants.
		if g := Build(mh); ex.PredictedWeight > g.PredictedWeight {
			t.Errorf("exhaustive %d worse than greedy %d", ex.PredictedWeight, g.PredictedWeight)
		}
		if g := BuildUnopt(mh); ex.PredictedWeight > g.PredictedWeight {
			t.Errorf("exhaustive %d worse than greedy-unopt %d", ex.PredictedWeight, g.PredictedWeight)
		}
		if actual := ex.Mapping.Apply(mh).Weight(); actual != ex.PredictedWeight {
			t.Errorf("exhaustive predicted %d, actual %d", ex.PredictedWeight, actual)
		}
	}
}

func TestExhaustiveMotivationOptimum(t *testing.T) {
	// For HF = c1·M0M5 + c2·M1M3 the optimum is weight 2 (each term can
	// settle to a single-qubit Pauli).
	ex := Exhaustive(motivation(), 0)
	if ex.PredictedWeight != 2 {
		t.Errorf("optimum = %d, want 2", ex.PredictedWeight)
	}
}

func TestExhaustiveBudgetFallsBackToGreedy(t *testing.T) {
	mh := randomFermionic(4, 10, 11)
	ex := Exhaustive(mh, 5) // tiny budget
	if ex.Optimal {
		t.Error("tiny budget should not prove optimality")
	}
	greedy := BuildUnopt(mh)
	if ex.PredictedWeight > greedy.PredictedWeight {
		t.Errorf("budgeted exhaustive %d worse than its greedy seed %d",
			ex.PredictedWeight, greedy.PredictedWeight)
	}
	if err := ex.Mapping.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealImprovesOrMatchesGreedy(t *testing.T) {
	mh := randomFermionic(5, 15, 4)
	greedy := BuildUnopt(mh)
	an := Anneal(mh, AnnealOptions{Iters: 3000, Seed: 3})
	if an.PredictedWeight > greedy.PredictedWeight {
		t.Errorf("anneal %d worse than greedy start %d", an.PredictedWeight, greedy.PredictedWeight)
	}
	if err := an.Mapping.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := an.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if actual := an.Mapping.Apply(mh).Weight(); actual != an.PredictedWeight {
		t.Errorf("anneal predicted %d, actual %d", an.PredictedWeight, actual)
	}
}

func TestSpectrumInvarianceHATTvsJW(t *testing.T) {
	h := fermion.NewHamiltonian(3)
	h.AddHermitian(1.0, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1})
	h.AddHermitian(-0.4, fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 2})
	h.Add(0.9, fermion.Op{Mode: 2, Dagger: true}, fermion.Op{Mode: 2})
	h.Add(1.7,
		fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 2, Dagger: true},
		fermion.Op{Mode: 0}, fermion.Op{Mode: 2})
	mh := h.Majorana(1e-14)
	jw := mapping.JordanWigner(3).Apply(mh)
	hatt := Build(mh).Mapping.Apply(mh)
	evJW := linalg.EigenvaluesHermitian(linalg.Matrix(jw))
	evHA := linalg.EigenvaluesHermitian(linalg.Matrix(hatt))
	if !linalg.SpectraClose(evJW, evHA, 1e-7) {
		t.Errorf("spectra differ:\nJW   %v\nHATT %v", evJW, evHA)
	}
}

func TestHATTBeatsOrMatchesBaselinesOnRandom(t *testing.T) {
	// HATT is Hamiltonian-aware: across seeds it should never lose to the
	// best baseline by more than a whisker, and should usually win. Assert
	// the weaker sound property: HATT ≤ max(JW, BK, BTT) for every seed
	// and HATT < best baseline on at least one seed.
	wins := false
	for seed := int64(1); seed <= 8; seed++ {
		n := 4 + int(seed)%3
		mh := randomFermionic(n, 14, seed)
		hatt := Build(mh).PredictedWeight
		jw := mapping.JordanWigner(n).Apply(mh).Weight()
		bk := mapping.BravyiKitaev(n).Apply(mh).Weight()
		btt := mapping.BalancedTernaryTree(n).Apply(mh).Weight()
		worst := jw
		if bk > worst {
			worst = bk
		}
		if btt > worst {
			worst = btt
		}
		best := jw
		if bk < best {
			best = bk
		}
		if btt < best {
			best = btt
		}
		if hatt > worst {
			t.Errorf("seed %d: HATT %d worse than worst baseline %d", seed, hatt, worst)
		}
		if hatt < best {
			wins = true
		}
	}
	if !wins {
		t.Error("HATT never beat the best baseline on any seed")
	}
}

func TestLeafBitsShape(t *testing.T) {
	mh := eq3()
	p := newProblem(mh)
	if p.n != 3 || p.nTerms != 4 {
		t.Fatalf("problem shape n=%d terms=%d", p.n, p.nTerms)
	}
	// Leaf 6 participates in no term.
	for _, w := range p.leafBits[6] {
		if w != 0 {
			t.Fatal("leaf 2N should be term-free")
		}
	}
}

func TestSettledWeightTruthTable(t *testing.T) {
	// Single term; enumerate membership patterns.
	mk := func(x, y, z bool) (termBits, termBits, termBits) {
		bx, by, bz := newTermBits(1), newTermBits(1), newTermBits(1)
		if x {
			bx.set(0)
		}
		if y {
			by.set(0)
		}
		if z {
			bz.set(0)
		}
		return bx, by, bz
	}
	cases := []struct {
		x, y, z bool
		want    int
	}{
		{false, false, false, 0}, // k=0 → I
		{true, false, false, 1},  // k=1 → single Pauli
		{true, true, false, 1},   // k=2 → product of two ≠ I
		{true, true, true, 0},    // k=3 → X·Y·Z ∝ I
		{false, true, true, 1},
		{false, false, true, 1},
	}
	for _, c := range cases {
		bx, by, bz := mk(c.x, c.y, c.z)
		if got := settledWeight(bx, by, bz); got != c.want {
			t.Errorf("settledWeight(%v,%v,%v) = %d, want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}
