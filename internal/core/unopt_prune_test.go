package core

import (
	"testing"

	"repro/internal/models"
)

// TestUnoptPruneMatchesReference asserts that the pairwise-delta prune in
// buildUnoptBuilder is invisible: on every model it must produce exactly
// the merge schedule and settled weight of the exhaustive triple scan.
func TestUnoptPruneMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"eq3", ""},
		{"h2", "h2"},
		{"hubbard2x2", "hubbard:2x2"},
		{"hubbard2x3", "hubbard:2x3"},
		{"neutrino3x2", "neutrino:3x2"},
		{"molecule8", "molecule:8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mh := eq3()
			if tc.spec != "" {
				h, err := models.Resolve(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				mh = h.Majorana(1e-12)
			}
			pruned := buildUnoptBuilder(newProblem(mh))
			ref := buildUnoptReference(newProblem(mh))
			if pruned.predicted != ref.predicted {
				t.Fatalf("predicted weight %d, reference %d", pruned.predicted, ref.predicted)
			}
			if len(pruned.log) != len(ref.log) {
				t.Fatalf("merge count %d, reference %d", len(pruned.log), len(ref.log))
			}
			for i := range pruned.log {
				if pruned.log[i] != ref.log[i] {
					t.Fatalf("step %d: merge %v, reference %v", i, pruned.log[i], ref.log[i])
				}
			}
		})
	}
}

// TestBuildUnoptReferenceExported keeps the exported reference wrapper in
// lockstep with BuildUnopt.
func TestBuildUnoptReferenceExported(t *testing.T) {
	mh := eq3()
	a, b := BuildUnopt(mh), BuildUnoptReference(mh)
	if a.PredictedWeight != b.PredictedWeight {
		t.Fatalf("weights diverge: %d vs %d", a.PredictedWeight, b.PredictedWeight)
	}
	for j := range a.Mapping.Majoranas {
		if !a.Mapping.Majoranas[j].Equal(b.Mapping.Majoranas[j]) {
			t.Fatalf("Majorana %d diverges", j)
		}
	}
}
