package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/models"
)

func mappingText(t *testing.T, m *mapping.Mapping) string {
	t.Helper()
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func boundTestModel(t *testing.T, spec string) *fermion.MajoranaHamiltonian {
	t.Helper()
	h, err := models.Resolve(spec)
	if err != nil {
		t.Fatal(err)
	}
	return h.Majorana(1e-12)
}

func TestBoundPackingLexOrder(t *testing.T) {
	b := NewBound()
	if _, _, ok := b.Best(); ok {
		t.Fatal("fresh bound should hold no incumbent")
	}
	if b.Unbeatable(1<<40, 0) {
		t.Fatal("empty bound must beat nothing")
	}
	b.Offer(10, 2)
	if w, p, ok := b.Best(); !ok || w != 10 || p != 2 {
		t.Fatalf("Best = (%d,%d,%v), want (10,2,true)", w, p, ok)
	}
	// Same weight, earlier position wins lexicographically.
	b.Offer(10, 1)
	if w, p, _ := b.Best(); w != 10 || p != 1 {
		t.Fatalf("Best = (%d,%d), want (10,1)", w, p)
	}
	// Worse offers are ignored.
	b.Offer(10, 3)
	b.Offer(11, 0)
	if w, p, _ := b.Best(); w != 10 || p != 1 {
		t.Fatalf("Best after worse offers = (%d,%d), want (10,1)", w, p)
	}
	// A search at position 0 with partial weight 10 could still tie-win.
	if b.Unbeatable(10, 0) {
		t.Fatal("(10,0) is lexicographically ahead of the incumbent (10,1)")
	}
	// The incumbent itself is never unbeatable by its own bound.
	if b.Unbeatable(10, 1) {
		t.Fatal("the incumbent must not abandon itself")
	}
	// Equal weight, later position loses the tie.
	if !b.Unbeatable(10, 2) {
		t.Fatal("(10,2) cannot beat (10,1)")
	}
	if !b.Unbeatable(11, 0) {
		t.Fatal("(11,0) cannot beat (10,1)")
	}
	b.Offer(3, 5)
	if w, p, _ := b.Best(); w != 3 || p != 5 {
		t.Fatalf("Best = (%d,%d), want (3,5)", w, p)
	}
}

func TestBoundNilIsInert(t *testing.T) {
	var b *Bound
	b.Offer(1, 0)
	if b.Unbeatable(0, 0) {
		t.Fatal("nil bound must never abandon")
	}
	if _, _, ok := b.Best(); ok {
		t.Fatal("nil bound holds nothing")
	}
}

func TestBoundConcurrentOffersConverge(t *testing.T) {
	b := NewBound()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.Offer(100+(i+g)%50, g)
			}
		}(g)
	}
	wg.Wait()
	// The minimum offered weight is 100, first offered by several racers;
	// the packed CAS-min must land on weight 100 regardless of timing.
	if w, _, _ := b.Best(); w != 100 {
		t.Fatalf("converged weight %d, want 100", w)
	}
}

// TestBoundedSearchesAbandon pins the whole-search abandonment contract:
// under a bound no search can beat, every bounded construction returns
// ErrBounded (and anneal, which has no monotone lower bound, returns its
// best-so-far instead).
func TestBoundedSearchesAbandon(t *testing.T) {
	mh := boundTestModel(t, "molecule:6")
	ctx := context.Background()

	tight := NewBound()
	tight.Offer(1, 0) // no real mapping reaches weight 1

	if _, err := BuildWithOptionsCtx(ctx, mh, BuildOptions{
		NoMemo: true, Bound: tight, BoundPos: 1,
	}); !errors.Is(err, ErrBounded) {
		t.Fatalf("hatt under a tight bound: err = %v, want ErrBounded", err)
	}
	if _, err := BuildUnoptCtx(ctx, mh, UnoptOptions{Bound: tight, BoundPos: 1}); !errors.Is(err, ErrBounded) {
		t.Fatalf("unopt scan under a tight bound: err = %v, want ErrBounded", err)
	}
	if _, err := BuildBeamOpts(ctx, mh, BeamOptions{Width: 3, Bound: tight, BoundPos: 1}); !errors.Is(err, ErrBounded) {
		t.Fatalf("beam under a tight bound: err = %v, want ErrBounded", err)
	}
	res, err := AnnealCtx(ctx, mh, AnnealOptions{Iters: 5000, Bound: tight, BoundPos: 1})
	if err != nil || res == nil {
		t.Fatalf("bounded anneal must still return its best-so-far, got (%v, %v)", res, err)
	}
	if got := EvaluateTree(mh, res.Tree); got != res.PredictedWeight {
		t.Fatalf("bounded anneal result inconsistent: evaluate %d, predicted %d", got, res.PredictedWeight)
	}
}

// TestBoundedSearchesIdenticalWhenWinning pins the determinism story:
// a search racing under a bound it ultimately beats selects exactly the
// merges the unbounded search selects.
func TestBoundedSearchesIdenticalWhenWinning(t *testing.T) {
	mh := boundTestModel(t, "molecule:8")
	ctx := context.Background()

	plain, err := BuildWithOptionsCtx(ctx, mh, BuildOptions{NoMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	loose := NewBound()
	loose.Offer(plain.PredictedWeight+100, 3) // beatable incumbent
	bounded, err := BuildWithOptionsCtx(ctx, mh, BuildOptions{
		NoMemo: true, Bound: loose, BoundPos: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mappingText(t, plain.Mapping) != mappingText(t, bounded.Mapping) {
		t.Fatal("winning bounded search diverged from the unbounded construction")
	}

	plainBeam, err := BuildBeamOpts(ctx, mh, BeamOptions{Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	loose2 := NewBound()
	loose2.Offer(plainBeam.PredictedWeight+100, 3)
	boundedBeam, err := BuildBeamOpts(ctx, mh, BeamOptions{Width: 3, Bound: loose2, BoundPos: 0})
	if err != nil {
		t.Fatal(err)
	}
	if mappingText(t, plainBeam.Mapping) != mappingText(t, boundedBeam.Mapping) {
		t.Fatal("winning bounded beam diverged from the unbounded beam")
	}
}

// TestAnnealOnImprove pins the anytime surface: improvements arrive
// monotonically non-increasing per chain, every delivered tree evaluates
// to its reported weight, and the final result is at least as good as
// the last delivery.
func TestAnnealOnImprove(t *testing.T) {
	mh := boundTestModel(t, "molecule:8")
	var mu sync.Mutex
	var weights []int
	res, err := AnnealCtx(context.Background(), mh, AnnealOptions{
		Iters: 20000,
		Seed:  7,
		OnImprove: func(r *Result) {
			mu.Lock()
			defer mu.Unlock()
			if got := EvaluateTree(mh, r.Tree); got != r.PredictedWeight {
				t.Errorf("improvement weight %d, tree evaluates to %d", r.PredictedWeight, got)
			}
			weights = append(weights, r.PredictedWeight)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(weights) == 0 {
		t.Fatal("expected at least the start-tree improvement")
	}
	for i := 1; i < len(weights); i++ {
		if weights[i] >= weights[i-1] {
			t.Fatalf("improvements not strictly decreasing: %v", weights)
		}
	}
	if res.PredictedWeight > weights[len(weights)-1] {
		t.Fatalf("final weight %d worse than last improvement %d", res.PredictedWeight, weights[len(weights)-1])
	}
}
