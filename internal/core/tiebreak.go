package core

import (
	"context"
	"math/bits"

	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/parallel"
)

// TieBreak selects the secondary objective used when several candidate
// merges settle the same Pauli weight on the current qubit. The paper's
// algorithm leaves ties unspecified; the default reproduces
// first-in-enumeration-order. The alternatives are the ablation axes
// DESIGN.md calls out.
type TieBreak int

const (
	// TieFirst keeps the first minimal candidate in enumeration order
	// (the behavior of Build).
	TieFirst TieBreak = iota
	// TieDepth prefers the merge whose new subtree is shallowest, pushing
	// toward balanced trees (lower maximum string weight, hence shallower
	// circuits) among equal-weight choices.
	TieDepth
	// TieSupport prefers the merge whose parent participates in the fewest
	// remaining Hamiltonian terms, preserving flexibility for future
	// cancellation.
	TieSupport
)

// BuildOptions configures BuildWithOptions / BuildWithOptionsCtx.
type BuildOptions struct {
	TieBreak TieBreak
	// Workers fans candidate scoring out over a bounded pool; values
	// below 2 keep the scan sequential. The selected merge — and hence
	// the mapping — is identical at every worker count.
	Workers int
	// NoMemo bypasses the build memo, forcing a full construction. Used
	// by benchmarks that time the search itself.
	NoMemo bool
	// Bound, when non-nil, is a shared portfolio incumbent consulted once
	// per construction step: the search returns ErrBounded as soon as the
	// accumulated settled weight proves the final mapping cannot win the
	// lexicographic (weight, BoundPos) race. Abandonment is all-or-nothing
	// — it never alters which merges a surviving search selects — so the
	// portfolio winner stays byte-identical at any worker count or timing.
	Bound *Bound
	// BoundPos is this search's position in the portfolio's canonical
	// racer order, the tie-break key of the (weight, position) race.
	BoundPos int
}

// BuildWithOptions is BuildWithOptionsCtx with a background context. It
// never returns an error: with no cancellable context the only failure
// is a panic inside a pool worker, which is re-raised rather than
// silently returning nil.
func BuildWithOptions(mh *fermion.MajoranaHamiltonian, opts BuildOptions) *Result {
	//hatt:lint-ignore ctxflow compat wrapper: the Ctx variant is the library API
	res, err := BuildWithOptionsCtx(context.Background(), mh, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// BuildWithOptionsCtx is Build (Algorithms 2+3) with a configurable
// tie-breaking policy and parallel candidate scoring.
// BuildWithOptionsCtx(ctx, mh, BuildOptions{}) selects exactly the merges
// Build selects.
//
// Completed constructions are memoized (see memo.go) unless NoMemo is
// set; the context is checked once per construction step, so
// cancellation returns (nil, ctx.Err()) within one step.
func BuildWithOptionsCtx(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts BuildOptions) (*Result, error) {
	canon := canonicalKey(mh)
	key := buildMemoKey{fp: fingerprint(canon), tb: opts.TieBreak}
	if !opts.NoMemo {
		e, hit, release, err := memoAcquire(ctx, key, canon)
		if err != nil {
			return nil, err
		}
		if hit {
			return e.replay(mh), nil
		}
		defer release()
	}
	buildSearches.Add(1)
	p := newProblem(mh)
	b := newBuilder(p)
	n := p.n
	depth := make([]int, 3*n+1) // leaves depth 0
	type cand struct{ ox, oy, oz int }
	var cands []cand
	var scores []int
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// b.predicted only grows, so once it proves the race lost the whole
		// search is abandoned (never stored in the memo: the release above
		// wakes any waiter to take over the construction).
		if opts.Bound.Unbeatable(b.predicted, opts.BoundPos) {
			return nil, ErrBounded
		}
		// Enumerate the vacuum-preserving candidate triples in the same
		// order as Build (cheap index work, kept sequential)...
		cands = cands[:0]
		for _, ox := range b.u {
			x := b.mdown[ox]
			if x%2 == 1 || x == 2*n {
				continue
			}
			oy := b.mup[x+1]
			if oy == ox {
				continue
			}
			for _, oz := range b.u {
				if oz == ox || oz == oy {
					continue
				}
				cands = append(cands, cand{ox, oy, oz})
			}
		}
		if len(cands) == 0 {
			panic("core: no valid vacuum-preserving selection (invariant violated)")
		}
		// ...score them in parallel (settledWeight dominates the step and
		// only reads builder state)...
		if cap(scores) < len(cands) {
			scores = make([]int, len(cands))
		}
		scores = scores[:len(cands)]
		workers := max(1, opts.Workers)
		if len(cands) < scoreFanoutCutoff {
			workers = 1 // dispatch would cost more than the scoring
		}
		if err := parallel.ForEachChunk(ctx, len(cands), workers, func(lo, hi int) error {
			for j := lo; j < hi; j++ {
				c := cands[j]
				scores[j] = settledWeight(b.bits[c.ox], b.bits[c.oy], b.bits[c.oz])
			}
			return nil
		}); err != nil {
			return nil, err
		}
		// ...and reduce in enumeration order, so ties resolve exactly as
		// the sequential scan would at any worker count.
		bestW := int(^uint(0) >> 1)
		bestTie := int(^uint(0) >> 1)
		bestIdx := -1
		for j, c := range cands {
			w := scores[j]
			if w > bestW {
				continue
			}
			tie := 0
			switch opts.TieBreak {
			case TieDepth:
				tie = 1 + max3(depth[c.ox], depth[c.oy], depth[c.oz])
			case TieSupport:
				tie = parentSupport(b.bits[c.ox], b.bits[c.oy], b.bits[c.oz])
			}
			if w < bestW || tie < bestTie {
				bestW, bestTie, bestIdx = w, tie, j
			}
		}
		c := cands[bestIdx]
		pid := 2*n + 1 + i
		depth[pid] = 1 + max3(depth[c.ox], depth[c.oy], depth[c.oz])
		b.merge(i, c.ox, c.oy, c.oz)
	}
	if !opts.NoMemo {
		memoStore(key, canon, b.log)
	}
	t := b.finish()
	return &Result{
		Mapping:         mapping.FromTreeByLeafID("HATT", t),
		Tree:            t,
		PredictedWeight: b.predicted,
	}, nil
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// parentSupport counts the terms the merged parent would still touch.
func parentSupport(bx, by, bz termBits) int {
	s := 0
	for i := range bx {
		s += bits.OnesCount64(bx[i] ^ by[i] ^ bz[i])
	}
	return s
}
