package core

import (
	"math/bits"

	"repro/internal/fermion"
	"repro/internal/mapping"
)

// TieBreak selects the secondary objective used when several candidate
// merges settle the same Pauli weight on the current qubit. The paper's
// algorithm leaves ties unspecified; the default reproduces
// first-in-enumeration-order. The alternatives are the ablation axes
// DESIGN.md calls out.
type TieBreak int

const (
	// TieFirst keeps the first minimal candidate in enumeration order
	// (the behavior of Build).
	TieFirst TieBreak = iota
	// TieDepth prefers the merge whose new subtree is shallowest, pushing
	// toward balanced trees (lower maximum string weight, hence shallower
	// circuits) among equal-weight choices.
	TieDepth
	// TieSupport prefers the merge whose parent participates in the fewest
	// remaining Hamiltonian terms, preserving flexibility for future
	// cancellation.
	TieSupport
)

// BuildOptions configures BuildWithOptions.
type BuildOptions struct {
	TieBreak TieBreak
}

// BuildWithOptions is Build (Algorithms 2+3) with a configurable
// tie-breaking policy. BuildWithOptions(mh, BuildOptions{}) is equivalent
// to Build(mh).
func BuildWithOptions(mh *fermion.MajoranaHamiltonian, opts BuildOptions) *Result {
	p := newProblem(mh)
	b := newBuilder(p)
	n := p.n
	depth := make([]int, 3*n+1) // leaves depth 0
	for i := 0; i < n; i++ {
		bestW := int(^uint(0) >> 1)
		bestTie := int(^uint(0) >> 1)
		var bx, by, bz int
		found := false
		for _, ox := range b.u {
			x := b.mdown[ox]
			if x%2 == 1 || x == 2*n {
				continue
			}
			oy := b.mup[x+1]
			if oy == ox {
				continue
			}
			for _, oz := range b.u {
				if oz == ox || oz == oy {
					continue
				}
				w := settledWeight(b.bits[ox], b.bits[oy], b.bits[oz])
				if w > bestW {
					continue
				}
				tie := 0
				switch opts.TieBreak {
				case TieDepth:
					tie = 1 + max3(depth[ox], depth[oy], depth[oz])
				case TieSupport:
					tie = parentSupport(b.bits[ox], b.bits[oy], b.bits[oz])
				}
				if w < bestW || (w == bestW && tie < bestTie) {
					bestW, bestTie = w, tie
					bx, by, bz = ox, oy, oz
					found = true
				}
			}
		}
		if !found {
			panic("core: no valid vacuum-preserving selection (invariant violated)")
		}
		pid := 2*n + 1 + i
		depth[pid] = 1 + max3(depth[bx], depth[by], depth[bz])
		b.merge(i, bx, by, bz)
	}
	t := b.finish()
	return &Result{
		Mapping:         mapping.FromTreeByLeafID("HATT", t),
		Tree:            t,
		PredictedWeight: b.predicted,
	}
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

// parentSupport counts the terms the merged parent would still touch.
func parentSupport(bx, by, bz termBits) int {
	s := 0
	for i := range bx {
		s += bits.OnesCount64(bx[i] ^ by[i] ^ bz[i])
	}
	return s
}
