package core

import (
	"context"
	"errors"
	"sort"

	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/parallel"
	"repro/internal/tree"
)

// BuildBeam runs BuildBeamCtx with a background context. It never
// returns an error: a panic inside a pool worker is re-raised rather
// than silently returning nil.
func BuildBeam(mh *fermion.MajoranaHamiltonian, width int) *Result {
	//hatt:lint-ignore ctxflow compat wrapper: the Ctx variant is the library API
	res, err := BuildBeamCtx(context.Background(), mh, width)
	if err != nil {
		panic(err)
	}
	return res
}

// BeamOptions configures BuildBeamOpts.
type BeamOptions struct {
	// Width is the number of partial trees kept per step (minimum 1).
	Width int
	// Workers fans candidate scoring out over a bounded pool; values
	// below 2 keep the scan sequential. The search result is identical
	// at every worker count.
	Workers int
	// Bound, when non-nil, is a shared portfolio incumbent consulted once
	// per construction step against the minimum accumulated weight across
	// the live beam (a lower bound on every completion this beam can still
	// reach). On abandonment the greedy incumbent path is still attempted
	// under the same bound, because beam pruning may have discarded the
	// greedy trajectory; if that too is unbeatable the search returns
	// ErrBounded. Abandonment is whole-search only — the bound never
	// perturbs candidate scoring or beam composition — so the portfolio
	// winner stays byte-identical at any worker count or timing.
	Bound *Bound
	// BoundPos is this search's position in the portfolio's canonical
	// racer order, the tie-break key of the (weight, position) race.
	BoundPos int
}

// BuildBeamCtx generalizes the optimized HATT construction from greedy
// (beam width 1, equivalent to Build) to beam search: at every step the
// `width` best partial trees by accumulated settled weight are kept, each
// expanded through the same vacuum-preserving candidate enumeration as
// Algorithm 2. This explores the future-work axis the paper leaves open —
// trading construction time (×width) for mapping quality — while keeping
// vacuum-state preservation. Ties collapse deterministically.
//
// The context is checked before each beam state is expanded; on
// cancellation the search stops within one state expansion and
// (nil, ctx.Err()) is returned.
func BuildBeamCtx(ctx context.Context, mh *fermion.MajoranaHamiltonian, width int) (*Result, error) {
	return BuildBeamOpts(ctx, mh, BeamOptions{Width: width})
}

// BuildBeamOpts is BuildBeamCtx with candidate scoring fanned out over a
// bounded worker pool. Candidates are enumerated in a deterministic order
// and scored into an index-addressed slice, and the beam is pruned with a
// stable sort, so the search — and the returned mapping — is byte-
// identical at every Workers value.
func BuildBeamOpts(ctx context.Context, mh *fermion.MajoranaHamiltonian, opt BeamOptions) (*Result, error) {
	width := opt.Width
	if width < 1 {
		width = 1
	}
	p := newProblem(mh)
	n := p.n
	beams := []*beamState{newBeamState(p)}
	type cand struct {
		parent     *beamState
		ox, oy, oz int
		acc        int
	}
	var cands []cand
	bounded := false
	for i := 0; i < n; i++ {
		// The minimum accumulated weight across the live beam bounds every
		// completion still reachable from it; once that loses the race the
		// whole beam is abandoned (the greedy incumbent below still runs).
		minAcc := beams[0].acc
		for _, st := range beams[1:] {
			if st.acc < minAcc {
				minAcc = st.acc
			}
		}
		if opt.Bound.Unbeatable(minAcc, opt.BoundPos) {
			bounded = true
			break
		}
		// Enumerate expansions sequentially (cheap index work, fixes the
		// candidate order)...
		cands = cands[:0]
		for _, st := range beams {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, ox := range st.u {
				x := st.mdown[ox]
				if x%2 == 1 || x == 2*n {
					continue
				}
				oy := st.mup[x+1]
				if oy == ox {
					continue
				}
				for _, oz := range st.u {
					if oz == ox || oz == oy {
						continue
					}
					cands = append(cands, cand{st, ox, oy, oz, 0})
				}
			}
		}
		// ...then score them in parallel: settledWeight over the term
		// bitsets is the hot loop, and each task only reads beam state.
		workers := max(1, opt.Workers)
		if len(cands) < scoreFanoutCutoff {
			workers = 1 // dispatch would cost more than the scoring
		}
		if err := parallel.ForEachChunk(ctx, len(cands), workers, func(lo, hi int) error {
			for j := lo; j < hi; j++ {
				c := &cands[j]
				st := c.parent
				c.acc = st.acc + settledWeight(st.bits[c.ox], st.bits[c.oy], st.bits[c.oz])
			}
			return nil
		}); err != nil {
			return nil, err
		}
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].acc < cands[b].acc })
		if len(cands) > width {
			cands = cands[:width]
		}
		next := make([]*beamState, 0, len(cands))
		for _, c := range cands {
			child := c.parent.clone()
			child.merge(p, i, c.ox, c.oy, c.oz)
			next = append(next, child)
		}
		beams = next
	}
	if bounded && width == 1 {
		return nil, ErrBounded
	}
	var best *beamState
	if !bounded {
		best = beams[0]
		for _, st := range beams[1:] {
			if st.acc < best.acc {
				best = st
			}
		}
	}
	// Beam search can prune the greedy path (it keeps the global top-k by
	// accumulated weight, which need not contain greedy's trajectory), so
	// keep the greedy result as an incumbent: BuildBeam never returns a
	// worse mapping than Build. The incumbent shares this search's
	// context, worker pool, and portfolio bound.
	if width > 1 {
		greedy, err := BuildWithOptionsCtx(ctx, mh, BuildOptions{
			Workers: opt.Workers, Bound: opt.Bound, BoundPos: opt.BoundPos,
		})
		switch {
		case errors.Is(err, ErrBounded):
			// The greedy incumbent lost the race on its own; if the beam
			// was abandoned too there is nothing left worth returning.
			if bounded {
				return nil, ErrBounded
			}
		case err != nil:
			return nil, err
		case bounded || greedy.PredictedWeight < best.acc:
			greedy.Mapping.Name = "HATT-beam"
			return greedy, nil
		}
	}
	t := best.buildTree(p)
	return &Result{
		Mapping:         mapping.FromTreeByLeafID("HATT-beam", t),
		Tree:            t,
		PredictedWeight: best.acc,
	}, nil
}

// beamState is an immutable-by-convention partial construction: cloned
// before every merge.
type beamState struct {
	bits   map[int]termBits
	u      []int
	mdown  map[int]int
	mup    map[int]int
	merges [][3]int
	acc    int
}

func newBeamState(p *problem) *beamState {
	st := &beamState{
		bits:  make(map[int]termBits, 2*p.n+1),
		u:     make([]int, 2*p.n+1),
		mdown: make(map[int]int, 3*p.n+1),
		mup:   make(map[int]int, 2*p.n+1),
	}
	for id := 0; id <= 2*p.n; id++ {
		st.bits[id] = p.leafBits[id]
		st.u[id] = id
		st.mdown[id] = id
		st.mup[id] = id
	}
	return st
}

func (st *beamState) clone() *beamState {
	c := &beamState{
		bits:   make(map[int]termBits, len(st.bits)),
		u:      append([]int{}, st.u...),
		mdown:  make(map[int]int, len(st.mdown)),
		mup:    make(map[int]int, len(st.mup)),
		merges: append([][3]int{}, st.merges...),
		acc:    st.acc,
	}
	for k, v := range st.bits {
		c.bits[k] = v // shared until replaced (bitsets are never mutated)
	}
	for k, v := range st.mdown {
		c.mdown[k] = v
	}
	for k, v := range st.mup {
		c.mup[k] = v
	}
	return c
}

func (st *beamState) merge(p *problem, step, ox, oy, oz int) {
	pid := 2*p.n + 1 + step
	st.acc += settledWeight(st.bits[ox], st.bits[oy], st.bits[oz])
	pb := newTermBits(p.words)
	for w := range pb {
		pb[w] = st.bits[ox][w] ^ st.bits[oy][w] ^ st.bits[oz][w]
	}
	st.bits[pid] = pb
	delete(st.bits, ox)
	delete(st.bits, oy)
	delete(st.bits, oz)
	nu := st.u[:0:0]
	for _, v := range st.u {
		if v != ox && v != oy && v != oz {
			nu = append(nu, v)
		}
	}
	st.u = append(nu, pid)
	zd := st.mdown[oz]
	st.mdown[pid] = zd
	st.mup[zd] = pid
	st.merges = append(st.merges, [3]int{ox, oy, oz})
}

func (st *beamState) buildTree(p *problem) *tree.Tree {
	n := p.n
	nodes := make([]*tree.Node, 3*n+1)
	for id := 0; id <= 2*n; id++ {
		nodes[id] = &tree.Node{ID: id}
	}
	for i, m := range st.merges {
		pid := 2*n + 1 + i
		parent := &tree.Node{ID: pid, Qubit: i}
		parent.SetChildren(nodes[m[0]], nodes[m[1]], nodes[m[2]])
		nodes[pid] = parent
	}
	t := &tree.Tree{N: n, Root: nodes[3*n], Leaves: make([]*tree.Node, 2*n+1)}
	copy(t.Leaves, nodes[:2*n+1])
	return t
}
