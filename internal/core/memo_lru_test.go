package core

import (
	"context"
	"testing"

	"repro/internal/fermion"
)

func memoLen() int {
	buildMemo.Lock()
	defer buildMemo.Unlock()
	return buildMemo.c.Len()
}

func TestBuildMemoLRUEviction(t *testing.T) {
	ResetBuildCache()
	defer ResetBuildCache()

	canonOf := func(i int) []int { return []int{i} }
	keyOf := func(i int) buildMemoKey { return buildMemoKey{fp: uint64(i), tb: TieFirst} }

	// Fill to capacity, then keep entry 0 hot while overflowing.
	for i := 0; i < buildMemoLimit; i++ {
		memoStore(keyOf(i), canonOf(i), [][3]int{{i, i, i}})
	}
	if n := memoLen(); n != buildMemoLimit {
		t.Fatalf("memo holds %d entries, want %d", n, buildMemoLimit)
	}
	if _, ok := memoLookup(keyOf(0), canonOf(0)); !ok {
		t.Fatal("entry 0 missing at capacity")
	}
	// Entry 1 is now the LRU; the next store must evict it — and only it.
	memoStore(keyOf(buildMemoLimit), canonOf(buildMemoLimit), nil)
	if n := memoLen(); n != buildMemoLimit {
		t.Fatalf("memo holds %d entries after overflow, want %d", n, buildMemoLimit)
	}
	if _, ok := memoLookup(keyOf(1), canonOf(1)); ok {
		t.Fatal("LRU entry 1 not evicted")
	}
	if _, ok := memoLookup(keyOf(0), canonOf(0)); !ok {
		t.Fatal("recently used entry 0 was evicted instead of the LRU")
	}
	if _, ok := memoLookup(keyOf(2), canonOf(2)); !ok {
		t.Fatal("entry 2 evicted even though capacity allowed keeping it")
	}

	// Re-storing an existing key refreshes in place, no eviction.
	memoStore(keyOf(2), canonOf(2), [][3]int{{9, 9, 9}})
	if n := memoLen(); n != buildMemoLimit {
		t.Fatalf("refresh grew the memo to %d entries", n)
	}
	if e, ok := memoLookup(keyOf(2), canonOf(2)); !ok || len(e.merges) != 1 || e.merges[0] != [3]int{9, 9, 9} {
		t.Fatalf("refresh did not replace the schedule: %+v ok=%v", e, ok)
	}

	ResetBuildCache()
	if n := memoLen(); n != 0 {
		t.Fatalf("ResetBuildCache left %d entries", n)
	}
	if _, ok := memoLookup(keyOf(0), canonOf(0)); ok {
		t.Fatal("ResetBuildCache left entry 0 resident")
	}
}

func TestBuildMemoHitAfterEvictionChurn(t *testing.T) {
	// End to end: a construction stays memoized across unrelated stores.
	ResetBuildCache()
	defer ResetBuildCache()

	h := fermion.NewHamiltonian(3)
	h.AddHermitian(1, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1})
	h.AddHermitian(1, fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 2})
	mh := h.Majorana(1e-12)

	before := buildSearches.Load()
	if _, err := BuildWithOptionsCtx(context.Background(), mh, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	// Churn the memo without filling it: the real entry must survive.
	for i := 0; i < buildMemoLimit/2; i++ {
		memoStore(buildMemoKey{fp: ^uint64(i), tb: TieFirst}, []int{-i - 1}, nil)
	}
	if _, err := BuildWithOptionsCtx(context.Background(), mh, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := buildSearches.Load() - before; got != 1 {
		t.Fatalf("ran %d searches, want 1 (second build must hit the memo)", got)
	}
}
