package core

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/fermion"
	"repro/internal/mapping"
	"repro/internal/parallel"
	"repro/internal/tree"
)

// AnnealOptions configures the simulated-annealing search. Zero values get
// sensible defaults.
type AnnealOptions struct {
	Iters  int     // mutation attempts per chain (default 2000·N)
	TStart float64 // initial temperature (default 2.0)
	TEnd   float64 // final temperature (default 0.01)
	Seed   int64   // RNG seed (default 1)
	// Restarts runs that many independent annealing chains (default 1);
	// chain k is seeded with Seed+k and the lowest-weight result wins,
	// earliest chain on ties. The winner depends only on Seed, Restarts,
	// and the schedule — never on Workers.
	Restarts int
	// Workers bounds how many chains run concurrently; values below 2
	// run the chains sequentially, matching the zero-value semantics of
	// BuildOptions.Workers and BeamOptions.Workers. It has no effect on
	// the result.
	Workers int
	// Progress, when non-nil, is invoked periodically (roughly every 1% of
	// the schedule) with the current iteration, the total iteration count,
	// and the best weight found so far. With Restarts > 1 only the first
	// chain reports, keeping the callback single-goroutine.
	Progress func(iter, iters, bestWeight int)
	// OnImprove, when non-nil, receives a freshly assembled Result each
	// time a chain's best weight has improved at a progress stride. The
	// delivered tree is the chain's retired best snapshot — it is never
	// mutated afterwards — so callers may hold it indefinitely. With
	// Restarts > 1 every chain reports concurrently and improvements are
	// only monotone per chain, so the callback must be safe for concurrent
	// use and must tolerate non-improving deliveries across chains.
	OnImprove func(*Result)
	// Bound, when non-nil, is a shared portfolio incumbent. Annealing has
	// no nontrivial lower bound on its final weight — the best-so-far only
	// decreases — so the only sound abandonment uses the universal floor
	// (one Pauli letter per non-identity Hamiltonian term): a chain stops
	// early iff even a floor-weight mapping could no longer win the
	// lexicographic (weight, BoundPos) race. Stopped chains return their
	// best-so-far result, which by construction cannot win, leaving the
	// portfolio winner untouched.
	Bound *Bound
	// BoundPos is this search's position in the portfolio's canonical
	// racer order, the tie-break key of the (weight, position) race.
	BoundPos int
}

// Anneal runs AnnealCtx with a background context. It never returns an
// error: a panic inside a restart chain is re-raised rather than
// silently returning nil.
func Anneal(mh *fermion.MajoranaHamiltonian, opts AnnealOptions) *Result {
	//hatt:lint-ignore ctxflow compat wrapper: the Ctx variant is the library API
	res, err := AnnealCtx(context.Background(), mh, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// AnnealCtx refines the greedy HATT-unopt tree by simulated annealing over
// tree space: the mutation swaps two random non-root nodes that are not in
// ancestor/descendant relation, which reaches every complete ternary tree
// shape and leaf placement. It stands in for Fermihedral's approximate
// ('*') solutions at sizes where the exhaustive search is infeasible.
// The result keeps the leaf-ID-to-Majorana assignment, so like Fermihedral
// it does not guarantee vacuum-state preservation.
//
// The context is checked on every mutation attempt; on cancellation the
// search stops within one iteration and returns (nil, ctx.Err()).
//
// With Restarts > 1 the chains run concurrently over a bounded worker
// pool (Workers wide) and the best result is selected deterministically,
// so a fixed Seed yields a byte-identical mapping at any Workers value.
func AnnealCtx(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts AnnealOptions) (*Result, error) {
	if opts.Iters == 0 {
		opts.Iters = 2000 * mh.Modes
	}
	if opts.TStart == 0 {
		opts.TStart = 2.0
	}
	if opts.TEnd == 0 {
		opts.TEnd = 0.01
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Restarts < 1 {
		opts.Restarts = 1
	}
	if opts.Restarts == 1 {
		return annealChain(ctx, mh, opts)
	}
	results, err := parallel.Map(ctx, opts.Restarts, max(1, opts.Workers), func(k int) (*Result, error) {
		chain := opts
		chain.Seed = opts.Seed + int64(k)
		if k != 0 {
			chain.Progress = nil
		}
		return annealChain(ctx, mh, chain)
	})
	if err != nil {
		return nil, err
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.PredictedWeight < best.PredictedWeight {
			best = r
		}
	}
	return best, nil
}

// annealChain runs one simulated-annealing chain to completion (or to
// bound-driven early exit).
func annealChain(ctx context.Context, mh *fermion.MajoranaHamiltonian, opts AnnealOptions) (*Result, error) {
	p := newProblem(mh)
	ub, err := buildUnoptScan(ctx, newProblem(mh), UnoptOptions{})
	if err != nil {
		return nil, err
	}
	cur := ub.finish()
	curW := p.evaluateTree(cur)
	best := cloneTree(cur)
	bestW := curW
	// Every non-identity term settles at least one Pauli letter under any
	// tree, so nTerms floors every weight this chain could ever reach.
	floor := p.nTerms
	emitted := int(^uint(0) >> 1) // emit the start tree at the first stride

	r := rand.New(rand.NewSource(opts.Seed))
	all := collectNodes(cur)
	cool := math.Pow(opts.TEnd/opts.TStart, 1/math.Max(1, float64(opts.Iters-1)))
	temp := opts.TStart
	stride := opts.Iters / 100
	if stride < 1 {
		stride = 1
	}
	for it := 0; it < opts.Iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if it%stride == 0 {
			if opts.Progress != nil {
				opts.Progress(it, opts.Iters, bestW)
			}
			if opts.OnImprove != nil && bestW < emitted {
				emitted = bestW
				opts.OnImprove(annealResult(best, bestW))
			}
			if opts.Bound.Unbeatable(floor, opts.BoundPos) {
				break // cannot win even at the floor; best-so-far stands
			}
		}
		a := all[r.Intn(len(all))]
		b := all[r.Intn(len(all))]
		if a == b || a.Parent == nil || b.Parent == nil || related(a, b) {
			temp *= cool
			continue
		}
		swapNodes(a, b)
		w := p.evaluateTree(cur)
		delta := float64(w - curW)
		if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
			curW = w
			if w < bestW {
				bestW = w
				best = cloneTree(cur)
			}
		} else {
			swapNodes(a, b) // revert
		}
		temp *= cool
	}
	if opts.Progress != nil {
		opts.Progress(opts.Iters, opts.Iters, bestW)
	}
	return annealResult(best, bestW), nil
}

// annealResult assembles a Result around a retired best-so-far snapshot.
// The tree is never mutated after it was cloned into place, so the
// mapping and the Result may outlive the chain.
func annealResult(best *tree.Tree, bestW int) *Result {
	return &Result{
		Mapping:         mapping.FromTreeByLeafID("FH-anneal", best),
		Tree:            best,
		PredictedWeight: bestW,
	}
}

// related reports whether one node is an ancestor of the other.
func related(a, b *tree.Node) bool {
	for n := a; n != nil; n = n.Parent {
		if n == b {
			return true
		}
	}
	for n := b; n != nil; n = n.Parent {
		if n == a {
			return true
		}
	}
	return false
}

// swapNodes exchanges the tree positions of two unrelated non-root nodes.
func swapNodes(a, b *tree.Node) {
	pa, ba := a.Parent, a.PBranch
	pb, bb := b.Parent, b.PBranch
	pa.Child[ba] = b
	b.Parent, b.PBranch = pa, ba
	pb.Child[bb] = a
	a.Parent, a.PBranch = pb, bb
}

// collectNodes returns all nodes of the tree.
func collectNodes(t *tree.Tree) []*tree.Node {
	var out []*tree.Node
	var walk func(n *tree.Node)
	walk = func(n *tree.Node) {
		out = append(out, n)
		if n.IsLeaf() {
			return
		}
		for _, c := range n.Child {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// cloneTree deep-copies a tree, preserving IDs, qubits, and leaf indexing.
func cloneTree(t *tree.Tree) *tree.Tree {
	c := &tree.Tree{N: t.N, Leaves: make([]*tree.Node, len(t.Leaves))}
	var walk func(n *tree.Node) *tree.Node
	walk = func(n *tree.Node) *tree.Node {
		nn := &tree.Node{ID: n.ID, Qubit: n.Qubit, PBranch: n.PBranch}
		if n.IsLeaf() {
			c.Leaves[n.ID] = nn
			return nn
		}
		for i, ch := range n.Child {
			cc := walk(ch)
			nn.Child[i] = cc
			cc.Parent = nn
		}
		return nn
	}
	c.Root = walk(t.Root)
	return c
}
