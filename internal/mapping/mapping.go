// Package mapping defines fermion-to-qubit mappings and implements the
// constructive baselines the paper compares against: Jordan–Wigner (JW),
// Bravyi–Kitaev (BK, via Fenwick trees), and the balanced ternary tree
// (BTT) of Jiang et al. The HATT mappings produced by internal/core are
// returned as the same Mapping type, so the whole evaluation pipeline is
// mapping-agnostic.
//
// A mapping assigns to each of the 2N Majorana operators a Pauli string on
// N qubits such that the strings pairwise anticommute and each squares to
// +1 — exactly the condition for {M_i, M_j} = 2δ_ij.
package mapping

import (
	"fmt"

	"repro/internal/fermion"
	"repro/internal/pauli"
	"repro/internal/tree"
)

// Mapping is a concrete fermion-to-qubit mapping: 2N Majorana Pauli
// strings on N qubits, indexed by Majorana operator index.
type Mapping struct {
	Name      string
	Modes     int
	Majoranas []pauli.String
}

// Qubits returns the number of qubits the mapping targets.
func (m *Mapping) Qubits() int {
	if len(m.Majoranas) == 0 {
		return 0
	}
	return m.Majoranas[0].N()
}

// Majorana returns the Pauli string of Majorana operator j.
func (m *Mapping) Majorana(j int) pauli.String {
	return m.Majoranas[j]
}

// Verify checks the defining algebra: exactly 2·Modes strings, all on the
// same qubit count, pairwise anticommuting, each Hermitian (letter phase
// real) and hence squaring to +1.
func (m *Mapping) Verify() error {
	if len(m.Majoranas) != 2*m.Modes {
		return fmt.Errorf("mapping %s: %d Majoranas, want %d", m.Name, len(m.Majoranas), 2*m.Modes)
	}
	n := m.Qubits()
	for i, s := range m.Majoranas {
		if s.N() != n {
			return fmt.Errorf("mapping %s: M%d on %d qubits, want %d", m.Name, i, s.N(), n)
		}
		if p := s.LetterPhase(); p != 0 && p != 2 {
			return fmt.Errorf("mapping %s: M%d not Hermitian (phase i^%d)", m.Name, i, p)
		}
		if s.IsIdentity() {
			return fmt.Errorf("mapping %s: M%d is the identity", m.Name, i)
		}
	}
	for i := range m.Majoranas {
		for j := i + 1; j < len(m.Majoranas); j++ {
			if !m.Majoranas[i].Anticommutes(m.Majoranas[j]) {
				return fmt.Errorf("mapping %s: M%d and M%d commute", m.Name, i, j)
			}
		}
	}
	return nil
}

// Apply maps a Majorana-form fermionic Hamiltonian to the qubit
// Hamiltonian by substituting each Majorana index with its Pauli string and
// multiplying out each monomial with exact phases.
//
//hatt:noalloc
func (m *Mapping) Apply(mh *fermion.MajoranaHamiltonian) *pauli.Hamiltonian {
	if mh.Modes != m.Modes {
		panic(fmt.Sprintf("mapping %s: Hamiltonian on %d modes, mapping on %d", m.Name, mh.Modes, m.Modes))
	}
	h := pauli.NewHamiltonian(m.Qubits())
	// One reused accumulator string per call: each monomial is multiplied
	// out in place and handed to the fingerprint-keyed Add, so the
	// substitution allocates only when a new term is first stored.
	s := pauli.Identity(m.Qubits())
	for _, t := range mh.Terms {
		s.Reset()
		for _, idx := range t.Indices {
			s.MulAssign(m.Majoranas[idx])
		}
		h.Add(t.Coeff, s)
	}
	h.Prune(1e-12)
	return h
}

// ApplyFermionic is a convenience wrapper: second-quantized Hamiltonian in,
// qubit Hamiltonian out.
func (m *Mapping) ApplyFermionic(h *fermion.Hamiltonian) *pauli.Hamiltonian {
	return m.Apply(h.Majorana(1e-14))
}

// VacuumPreserved reports whether the mapping sends the fermionic vacuum to
// |0…0⟩: for every mode j, a_j |0…0⟩ = 0, i.e. (S_{2j} + i·S_{2j+1})
// annihilates the all-zero state. Both strings must flip the same set of
// qubits and their amplitudes on |0…0⟩ must cancel.
func (m *Mapping) VacuumPreserved() bool {
	for j := 0; j < m.Modes; j++ {
		a1, f1 := actionOnZero(m.Majoranas[2*j])
		a2, f2 := actionOnZero(m.Majoranas[2*j+1])
		if f1 != f2 {
			return false
		}
		if s := a1 + complex(0, 1)*a2; real(s)*real(s)+imag(s)*imag(s) > 1e-20 {
			return false
		}
	}
	return true
}

// actionOnZero returns the amplitude and flip mask of s|0…0⟩ = amp·|mask⟩.
// Requires N ≤ 64 qubits for the mask; amplitudes are exact. In the
// symplectic form s = i^Phase·X^x·Z^z the Z factor fixes |0…0⟩, so the
// amplitude is exactly i^Phase and the mask is the X bitset (each Y
// letter's i from Y|0⟩ = i|1⟩ is already folded into Phase).
func actionOnZero(s pauli.String) (complex128, uint64) {
	x, _ := s.Masks64()
	return s.PhaseCoeff(), x
}

// HamiltonianWeight is the paper's primary metric: the total Pauli weight
// of the qubit Hamiltonian obtained from this mapping.
func (m *Mapping) HamiltonianWeight(mh *fermion.MajoranaHamiltonian) int {
	return m.Apply(mh).Weight()
}

// FromTreePaired builds a mapping from any complete ternary tree using the
// canonical vacuum-preserving leaf pairing (used by the BTT baseline).
func FromTreePaired(name string, t *tree.Tree) *Mapping {
	assign := t.MajoranaAssignment(t.CanonicalPairing())
	ss := t.AllStrings()
	mj := make([]pauli.String, 2*t.N)
	for i, leafID := range assign {
		mj[i] = ss[leafID]
	}
	return &Mapping{Name: name, Modes: t.N, Majoranas: mj}
}

// FromTreeByLeafID builds a mapping whose Majorana index j is realized by
// the string of leaf ID j, discarding leaf 2N. This is HATT's convention:
// the construction fixes leaf IDs to Majorana indices up front.
func FromTreeByLeafID(name string, t *tree.Tree) *Mapping {
	ss := t.AllStrings()
	mj := make([]pauli.String, 2*t.N)
	copy(mj, ss[:2*t.N])
	return &Mapping{Name: name, Modes: t.N, Majoranas: mj}
}
