package mapping

import (
	"testing"

	"repro/internal/fermion"
	"repro/internal/linalg"
)

func TestParityVerifies(t *testing.T) {
	for n := 1; n <= 10; n++ {
		m := Parity(n)
		if err := m.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := m.VerifyIndependent(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestParityKnownStrings(t *testing.T) {
	// n=2: M0 = XX, M1 = XY, M2 = XZ (X1 Z0), M3 = YI.
	m := Parity(2)
	want := []string{"XX", "XY", "XZ", "YI"}
	for i, w := range want {
		if got := m.Majorana(i).String(); got != w {
			t.Errorf("Parity M%d = %s, want %s", i, got, w)
		}
	}
}

func TestParityNumberOperatorIsLocal(t *testing.T) {
	// Under the parity mapping, n_j = a†_j a_j maps to an operator on at
	// most qubits {j-1, j}: weight ≤ 2 per term.
	m := Parity(5)
	for j := 0; j < 5; j++ {
		hq := m.ApplyFermionic(fermion.Number(5, j))
		for _, term := range hq.Terms() {
			if term.S.Weight() > 2 {
				t.Errorf("parity n_%d term %s has weight > 2", j, term.S)
			}
		}
	}
}

func TestParitySpectrumMatchesJW(t *testing.T) {
	h := fermion.NewHamiltonian(3)
	h.AddHermitian(0.9, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 2})
	h.Add(1.2, fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 1})
	mh := h.Majorana(1e-14)
	evP := linalg.EigenvaluesHermitian(linalg.Matrix(Parity(3).Apply(mh)))
	evJ := linalg.EigenvaluesHermitian(linalg.Matrix(JordanWigner(3).Apply(mh)))
	if !linalg.SpectraClose(evP, evJ, 1e-7) {
		t.Errorf("parity spectrum differs from JW:\n%v\n%v", evP, evJ)
	}
}

func TestVerifyIndependentCatchesDependence(t *testing.T) {
	// Replace M3 with M0·M1·M2 (times a letter-phase fix): still
	// anticommutes with nothing consistent — construct instead a rank
	// failure directly: M3 = M0 gives both an anticommutation failure and
	// a rank failure, so build a subtler case: 2 modes with
	// M3 = M0·M1·M2 — it anticommutes with each of M0, M1, M2 (product of
	// three anticommuting strings) but is linearly dependent.
	m := JordanWigner(2)
	dep := m.Majoranas[0].Mul(m.Majoranas[1]).Mul(m.Majoranas[2])
	m.Majoranas[3] = dep
	if err := m.VerifyIndependent(); err == nil {
		t.Error("dependent Majorana set accepted")
	}
}

func TestAllMappingsIndependent(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for _, m := range []*Mapping{JordanWigner(n), BravyiKitaev(n), BalancedTernaryTree(n), Parity(n)} {
			if err := m.VerifyIndependent(); err != nil {
				t.Errorf("%s(%d): %v", m.Name, n, err)
			}
		}
	}
}
