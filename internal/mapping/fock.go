package mapping

import (
	"fmt"
	"math/cmplx"

	"repro/internal/pauli"
)

// FockMask returns the computational-basis state realizing the Fock state
// with the given occupied modes: |mask⟩ ∝ Π_j a†_j |0…0⟩. For
// vacuum-preserving mappings every Fock basis state maps to a single
// computational basis state, so state preparation is a layer of X gates on
// the mask bits. Returns an error if the mapping scatters the Fock state
// over several basis states (possible for non-vacuum-preserving mappings)
// or annihilates it (repeated modes).
func (m *Mapping) FockMask(occupied []int) (uint64, error) {
	if m.Qubits() > 64 {
		return 0, fmt.Errorf("mapping %s: FockMask supports ≤ 64 qubits", m.Name)
	}
	seen := make(map[int]bool)
	for _, j := range occupied {
		if j < 0 || j >= m.Modes {
			return 0, fmt.Errorf("mapping %s: mode %d out of range", m.Name, j)
		}
		if seen[j] {
			return 0, fmt.Errorf("mapping %s: mode %d occupied twice", m.Name, j)
		}
		seen[j] = true
	}
	var mask uint64
	for _, j := range occupied {
		// a†_j = (S_2j − i·S_2j+1)/2. Acting on a basis state, both
		// strings flip a fixed set of qubits; for the state to stay a
		// basis state they must flip the same set with amplitudes that
		// add rather than cancel.
		a1, f1 := stringActionOnBasis(m.Majoranas[2*j], mask)
		a2, f2 := stringActionOnBasis(m.Majoranas[2*j+1], mask)
		if f1 != f2 {
			return 0, fmt.Errorf("mapping %s: a†_%d scatters the Fock state", m.Name, j)
		}
		amp := (a1 - complex(0, 1)*a2) / 2
		if cmplx.Abs(amp) < 1e-12 {
			return 0, fmt.Errorf("mapping %s: a†_%d annihilates the Fock state", m.Name, j)
		}
		if d := cmplx.Abs(amp) - 1; d > 1e-9 || d < -1e-9 {
			return 0, fmt.Errorf("mapping %s: a†_%d non-unit amplitude %v", m.Name, j, amp)
		}
		mask = f1
	}
	return mask, nil
}

// stringActionOnBasis computes s|b⟩ = amp·|mask⟩.
func stringActionOnBasis(s pauli.String, b uint64) (complex128, uint64) {
	amp := s.LetterCoeff()
	mask := b
	for _, q := range s.Support() {
		bit := b >> uint(q) & 1
		switch s.Letter(q) {
		case pauli.X:
			mask ^= 1 << uint(q)
		case pauli.Y:
			mask ^= 1 << uint(q)
			if bit == 0 {
				amp *= complex(0, 1)
			} else {
				amp *= complex(0, -1)
			}
		case pauli.Z:
			if bit == 1 {
				amp = -amp
			}
		}
	}
	return amp, mask
}

// OccupationOperator returns the mapped number operator
// n_j = a†_j a_j = (1 + i·S_2j·S_2j+1)/2 as a qubit Hamiltonian, useful
// for reading occupations out of simulated states without re-expanding the
// fermionic form.
func (m *Mapping) OccupationOperator(j int) *pauli.Hamiltonian {
	h := pauli.NewHamiltonian(m.Qubits())
	h.Add(0.5, pauli.Identity(m.Qubits()))
	prod := m.Majoranas[2*j].Mul(m.Majoranas[2*j+1])
	h.Add(complex(0, 0.5), prod)
	return h
}
