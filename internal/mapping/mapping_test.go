package mapping

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/fermion"
	"repro/internal/linalg"
	"repro/internal/pauli"
	"repro/internal/tree"
)

func allMappings(n int) []*Mapping {
	return []*Mapping{JordanWigner(n), BravyiKitaev(n), BalancedTernaryTree(n)}
}

func TestMappingsVerify(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for _, m := range allMappings(n) {
			if err := m.Verify(); err != nil {
				t.Errorf("n=%d: %v", n, err)
			}
		}
	}
}

func TestMappingsVacuumPreserved(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for _, m := range allMappings(n) {
			if !m.VacuumPreserved() {
				t.Errorf("%s(%d) not vacuum preserving", m.Name, n)
			}
		}
	}
}

func TestJordanWignerMatchesPaper(t *testing.T) {
	// Paper §II-C: M0 = IX, M1 = IY, M2 = XZ, M3 = YZ for n = 2.
	m := JordanWigner(2)
	want := []string{"IX", "IY", "XZ", "YZ"}
	for i, w := range want {
		if got := m.Majorana(i).String(); got != w {
			t.Errorf("M%d = %s, want %s", i, got, w)
		}
	}
}

func TestJWPaperExampleHamiltonian(t *testing.T) {
	// Equation (1) with the JW mapping must produce
	// HQ = (2c0+2c1-c2)/4·II + (c2-2c0)/4·IZ + (c2-2c1)/4·ZI − c2/4·ZZ.
	c0, c1, c2 := 1.0, 2.0, 3.0
	h := fermion.NewHamiltonian(2)
	h.Add(complex(c0, 0), fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 0})
	h.Add(complex(c1, 0), fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 1})
	h.Add(complex(c2, 0), fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1, Dagger: true},
		fermion.Op{Mode: 0}, fermion.Op{Mode: 1})
	hq := JordanWigner(2).ApplyFermionic(h)
	checks := map[string]float64{
		"II": (2*c0 + 2*c1 - c2) / 4,
		"IZ": (c2 - 2*c0) / 4,
		"ZI": (c2 - 2*c1) / 4,
		"ZZ": -c2 / 4,
	}
	for s, want := range checks {
		got := hq.Coeff(pauli.MustParse(s))
		if cmplx.Abs(got-complex(want, 0)) > 1e-12 {
			t.Errorf("coeff(%s) = %v, want %v", s, got, want)
		}
	}
	if hq.Len() != 4 {
		t.Errorf("HQ has %d terms, want 4: %s", hq.Len(), hq)
	}
}

func TestBKFenwickSetsSmall(t *testing.T) {
	// n = 2: root 1 with child 0.
	f := NewFenwickTree(2)
	if got := f.UpdateSet(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("U(0) = %v, want [1]", got)
	}
	if got := f.ParitySet(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("P(1) = %v, want [0]", got)
	}
	if got := f.RemainderSet(1); len(got) != 0 {
		t.Errorf("C(1) = %v, want []", got)
	}
	// n = 4 (power of two): root 3; children of 3 are {1, 2}; child of 1
	// is {0}.
	f4 := NewFenwickTree(4)
	if got := f4.UpdateSet(0); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("U(0) = %v, want [1 3]", got)
	}
	if got := f4.ParitySet(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("P(2) = %v, want [1]", got)
	}
	if got := f4.RemainderSet(2); len(got) != 1 || got[0] != 1 {
		t.Errorf("C(2) = %v, want [1]", got)
	}
}

func TestBKKnownStrings(t *testing.T) {
	// Known BK n=2 Majoranas: M0 = XX, M1 = XY, M2 = XZ... M2 has X on
	// qubit 1 with Z parity of qubit 0: "XZ"; M3 = YI → "YI".
	m := BravyiKitaev(2)
	want := []string{"XX", "XY", "XZ", "YI"}
	for i, w := range want {
		if got := m.Majorana(i).String(); got != w {
			t.Errorf("BK M%d = %s, want %s", i, got, w)
		}
	}
}

func TestBKWeightIsLogarithmic(t *testing.T) {
	// BK strings have O(log n) weight; for n = 32 every Majorana should be
	// well below the JW worst case of n.
	m := BravyiKitaev(32)
	for i, s := range m.Majoranas {
		if s.Weight() > 12 {
			t.Errorf("BK M%d weight %d too large", i, s.Weight())
		}
	}
}

func TestBTTWeightMatchesTheory(t *testing.T) {
	// Balanced ternary tree: max string weight = ceil(log3(2n+1)).
	for _, n := range []int{1, 4, 13, 20, 40} {
		m := BalancedTernaryTree(n)
		want := int(math.Ceil(math.Log(float64(2*n+1)) / math.Log(3)))
		for i, s := range m.Majoranas {
			if s.Weight() > want {
				t.Errorf("BTT(%d) M%d weight %d > %d", n, i, s.Weight(), want)
			}
		}
	}
}

func TestSpectraAgreeAcrossMappings(t *testing.T) {
	// The strongest oracle: all valid mappings give unitarily equivalent
	// qubit Hamiltonians, so spectra must match exactly.
	h := fermion.NewHamiltonian(3)
	h.AddHermitian(1.0, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1})
	h.AddHermitian(0.5, fermion.Op{Mode: 1, Dagger: true}, fermion.Op{Mode: 2})
	h.Add(2.0, fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 0})
	h.Add(0.7,
		fermion.Op{Mode: 0, Dagger: true}, fermion.Op{Mode: 1, Dagger: true},
		fermion.Op{Mode: 0}, fermion.Op{Mode: 1})
	var ref []float64
	for _, m := range allMappings(3) {
		hq := m.ApplyFermionic(h)
		if !hq.IsHermitian(1e-10) {
			t.Fatalf("%s: qubit Hamiltonian not Hermitian", m.Name)
		}
		ev := linalg.EigenvaluesHermitian(linalg.Matrix(hq))
		if ref == nil {
			ref = ev
			continue
		}
		if !linalg.SpectraClose(ref, ev, 1e-7) {
			t.Errorf("%s spectrum differs: %v vs %v", m.Name, ev, ref)
		}
	}
}

func TestNumberOperatorExpectation(t *testing.T) {
	// ⟨0…0| mapped(a†_j a_j) |0…0⟩ = 0 for vacuum-preserving mappings, and
	// the mapped operator must have trace 2^{n-1} (half-filling).
	for _, m := range allMappings(4) {
		for j := 0; j < 4; j++ {
			hq := m.ApplyFermionic(fermion.Number(4, j))
			if e := hq.ExpectationOnBasis(0); cmplx.Abs(e) > 1e-10 {
				t.Errorf("%s: ⟨0|n_%d|0⟩ = %v, want 0", m.Name, j, e)
			}
			if tr := hq.Trace(); cmplx.Abs(tr-0.5) > 1e-10 {
				t.Errorf("%s: tr(n_%d)/2^n = %v, want 0.5", m.Name, j, tr)
			}
		}
	}
}

func TestFromTreeByLeafID(t *testing.T) {
	tr := tree.Balanced(3)
	m := FromTreeByLeafID("tree", tr)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if m.Qubits() != 3 || len(m.Majoranas) != 6 {
		t.Fatalf("unexpected shape")
	}
}

func TestVerifyCatchesBrokenMapping(t *testing.T) {
	m := JordanWigner(3)
	// Duplicate a string: breaks anticommutation.
	m.Majoranas[1] = m.Majoranas[0]
	if err := m.Verify(); err == nil {
		t.Error("Verify accepted duplicated Majorana")
	}
	// Identity string.
	m2 := JordanWigner(2)
	m2.Majoranas[0] = pauli.Identity(2)
	if err := m2.Verify(); err == nil {
		t.Error("Verify accepted identity Majorana")
	}
}

func TestVacuumViolationDetected(t *testing.T) {
	// Swap the (X,Y) roles of a JW pair: a_j becomes a†_j on |0⟩ and
	// vacuum preservation must fail.
	m := JordanWigner(2)
	m.Majoranas[0], m.Majoranas[1] = m.Majoranas[1], m.Majoranas[0]
	if m.VacuumPreserved() {
		t.Error("swapped pair should break vacuum preservation")
	}
}

func TestHamiltonianWeightMetric(t *testing.T) {
	h := fermion.Number(2, 0)
	mh := h.Majorana(1e-14)
	// JW: a†0a0 → (II − IZ)/2: weight 1.
	if w := JordanWigner(2).HamiltonianWeight(mh); w != 1 {
		t.Errorf("JW weight = %d, want 1", w)
	}
}
