package mapping

import "repro/internal/tree"

// BalancedTernaryTree returns the balanced ternary tree mapping of Jiang
// et al. on n modes, with the canonical vacuum-preserving Majorana
// assignment (strings are re-assigned to Majorana operators by pairing, as
// the paper notes the vanilla BTT does).
func BalancedTernaryTree(n int) *Mapping {
	m := FromTreePaired("BTT", tree.Balanced(n))
	return m
}
