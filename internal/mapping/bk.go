package mapping

import "repro/internal/pauli"

// FenwickTree is the partial-sum tree underlying the Bravyi–Kitaev
// transformation, built with the recursive construction of Seeley,
// Richard & Love for arbitrary n (not just powers of two).
type FenwickTree struct {
	n      int
	parent []int   // parent[i] = parent node index, -1 for the root
	child  [][]int // direct children, each smaller than the node
}

// NewFenwickTree constructs the Fenwick tree on n nodes: FENWICK(0, n-1)
// attaches mid = ⌊(l+r)/2⌋ as a child of r, then recurses into [l, mid]
// and [mid+1, r].
func NewFenwickTree(n int) *FenwickTree {
	f := &FenwickTree{n: n, parent: make([]int, n), child: make([][]int, n)}
	for i := range f.parent {
		f.parent[i] = -1
	}
	var build func(l, r int)
	build = func(l, r int) {
		if l >= r {
			return
		}
		mid := (l + r) / 2
		f.parent[mid] = r
		f.child[r] = append(f.child[r], mid)
		build(l, mid)
		build(mid+1, r)
	}
	build(0, n-1)
	return f
}

// UpdateSet returns the ancestors of j: the qubits whose stored partial
// sums include mode j (all must flip when mode j's occupation flips).
func (f *FenwickTree) UpdateSet(j int) []int {
	var out []int
	for p := f.parent[j]; p != -1; p = f.parent[p] {
		out = append(out, p)
	}
	return out
}

// Children returns the direct children of j (the F(j) flip set).
func (f *FenwickTree) Children(j int) []int {
	return f.child[j]
}

// RemainderSet returns C(j): children of ancestors of j with index < j.
// Together with F(j) it forms the parity set P(j) = F(j) ∪ C(j), the qubits
// storing the parity of modes 0 … j−1.
func (f *FenwickTree) RemainderSet(j int) []int {
	var out []int
	for p := f.parent[j]; p != -1; p = f.parent[p] {
		for _, c := range f.child[p] {
			if c < j {
				out = append(out, c)
			}
		}
	}
	return out
}

// ParitySet returns P(j) = F(j) ∪ C(j).
func (f *FenwickTree) ParitySet(j int) []int {
	out := append([]int{}, f.child[j]...)
	return append(out, f.RemainderSet(j)...)
}

// BravyiKitaev returns the Bravyi–Kitaev transformation on n modes:
//
//	M_{2j}   = X_{U(j)} · X_j · Z_{P(j)}
//	M_{2j+1} = X_{U(j)} · Y_j · Z_{C(j)}
//
// with U, P, C the Fenwick-tree update, parity, and remainder sets.
func BravyiKitaev(n int) *Mapping {
	f := NewFenwickTree(n)
	mj := make([]pauli.String, 2*n)
	for j := 0; j < n; j++ {
		even := pauli.Identity(n)
		odd := pauli.Identity(n)
		for _, u := range f.UpdateSet(j) {
			even.SetLetter(u, pauli.X)
			odd.SetLetter(u, pauli.X)
		}
		even.SetLetter(j, pauli.X)
		odd.SetLetter(j, pauli.Y)
		for _, p := range f.ParitySet(j) {
			even.SetLetter(p, pauli.Z)
		}
		for _, c := range f.RemainderSet(j) {
			odd.SetLetter(c, pauli.Z)
		}
		mj[2*j] = even
		mj[2*j+1] = odd
	}
	return &Mapping{Name: "BK", Modes: n, Majoranas: mj}
}
