package mapping

import "repro/internal/pauli"

// JordanWigner returns the Jordan–Wigner transformation on n modes:
//
//	M_{2j}   = X_j · Z_{j-1} ⋯ Z_0
//	M_{2j+1} = Y_j · Z_{j-1} ⋯ Z_0
//
// matching the paper's 2-mode example (M0 = IX, M1 = IY, M2 = XZ, M3 = YZ).
func JordanWigner(n int) *Mapping {
	mj := make([]pauli.String, 2*n)
	for j := 0; j < n; j++ {
		even := pauli.Identity(n)
		odd := pauli.Identity(n)
		for k := 0; k < j; k++ {
			even.SetLetter(k, pauli.Z)
			odd.SetLetter(k, pauli.Z)
		}
		even.SetLetter(j, pauli.X)
		odd.SetLetter(j, pauli.Y)
		mj[2*j] = even
		mj[2*j+1] = odd
	}
	return &Mapping{Name: "JW", Modes: n, Majoranas: mj}
}
