package mapping

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/pauli"
)

// WriteText serializes the mapping as a plain-text table:
//
//	# mapping <name> modes=<N> qubits=<Q>
//	M0 <string>
//	M1 <string>
//	...
//
// The string column uses the paper's N-length form (qubit N−1 leftmost).
// Mappings serialized this way can be stored alongside compiled circuits
// and re-verified on load.
func (m *Mapping) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# mapping %s modes=%d qubits=%d\n", m.Name, m.Modes, m.Qubits()); err != nil {
		return err
	}
	for j, s := range m.Majoranas {
		if _, err := fmt.Fprintf(w, "M%d %s\n", j, s); err != nil {
			return err
		}
	}
	return nil
}

// ReadText parses a mapping serialized by WriteText and verifies it.
func ReadText(r io.Reader) (*Mapping, error) {
	sc := bufio.NewScanner(r)
	var m *Mapping
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if m != nil {
				return nil, fmt.Errorf("mapping: duplicate header at line %d", line)
			}
			var name string
			var modes, qubits int
			if _, err := fmt.Sscanf(text, "# mapping %s modes=%d qubits=%d", &name, &modes, &qubits); err != nil {
				return nil, fmt.Errorf("mapping: bad header at line %d: %v", line, err)
			}
			m = &Mapping{Name: name, Modes: modes, Majoranas: make([]pauli.String, 2*modes)}
			continue
		}
		if m == nil {
			return nil, fmt.Errorf("mapping: missing header before line %d", line)
		}
		var idx int
		var str string
		if _, err := fmt.Sscanf(text, "M%d %s", &idx, &str); err != nil {
			return nil, fmt.Errorf("mapping: bad row at line %d: %v", line, err)
		}
		if idx < 0 || idx >= len(m.Majoranas) {
			return nil, fmt.Errorf("mapping: index M%d out of range at line %d", idx, line)
		}
		s, err := pauli.Parse(str)
		if err != nil {
			return nil, fmt.Errorf("mapping: line %d: %v", line, err)
		}
		m.Majoranas[idx] = s
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("mapping: empty input")
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("mapping: loaded mapping invalid: %w", err)
	}
	return m, nil
}
