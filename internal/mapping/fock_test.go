package mapping

import (
	"math/cmplx"
	"testing"

	"repro/internal/fermion"
	"repro/internal/pauli"
)

func TestFockMaskJW(t *testing.T) {
	// Jordan–Wigner: occupation of mode j is qubit j directly.
	m := JordanWigner(4)
	cases := []struct {
		occ  []int
		want uint64
	}{
		{nil, 0},
		{[]int{0}, 1},
		{[]int{1, 3}, 0b1010},
		{[]int{0, 1, 2, 3}, 0b1111},
	}
	for _, c := range cases {
		got, err := m.FockMask(c.occ)
		if err != nil {
			t.Fatalf("occ %v: %v", c.occ, err)
		}
		if got != c.want {
			t.Errorf("occ %v: mask %04b, want %04b", c.occ, got, c.want)
		}
	}
}

func TestFockMaskErrors(t *testing.T) {
	m := JordanWigner(3)
	if _, err := m.FockMask([]int{1, 1}); err == nil {
		t.Error("double occupation accepted")
	}
	if _, err := m.FockMask([]int{7}); err == nil {
		t.Error("out-of-range mode accepted")
	}
}

func TestFockMaskConsistentWithNumberOperators(t *testing.T) {
	// For every vacuum-preserving mapping: the masked basis state must
	// have occupation expectation 1 on occupied modes and 0 elsewhere.
	for _, m := range []*Mapping{JordanWigner(4), BravyiKitaev(4), Parity(4), BalancedTernaryTree(4)} {
		occ := []int{1, 2}
		mask, err := m.FockMask(occ)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for j := 0; j < 4; j++ {
			nOp := m.ApplyFermionic(fermion.Number(4, j))
			e := real(nOp.ExpectationOnBasis(mask))
			want := 0.0
			if j == 1 || j == 2 {
				want = 1.0
			}
			if diff := e - want; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s: ⟨n_%d⟩ on mask %04b = %v, want %v", m.Name, j, mask, e, want)
			}
		}
	}
}

func TestOccupationOperatorMatchesFermionic(t *testing.T) {
	for _, m := range []*Mapping{JordanWigner(3), BravyiKitaev(3)} {
		for j := 0; j < 3; j++ {
			direct := m.OccupationOperator(j)
			viaFermion := m.ApplyFermionic(fermion.Number(3, j))
			// The two must be identical term-by-term.
			for _, term := range viaFermion.Terms() {
				if c := direct.Coeff(term.S) - term.Coeff; cmplx.Abs(c) > 1e-10 {
					t.Errorf("%s n_%d: coeff mismatch on %s", m.Name, j, term.S)
				}
			}
			if direct.Len() != viaFermion.Len() {
				t.Errorf("%s n_%d: term count %d vs %d", m.Name, j, direct.Len(), viaFermion.Len())
			}
		}
	}
}

func TestStringActionOnBasis(t *testing.T) {
	// X1 on |00⟩ gives |10⟩ amp 1; Y0 on |01⟩ gives −i|00⟩.
	s := pauli.MustParse("XI")
	amp, mask := stringActionOnBasis(s, 0)
	if mask != 0b10 || cmplx.Abs(amp-1) > 1e-12 {
		t.Errorf("X1|00⟩ = %v|%02b⟩", amp, mask)
	}
	s2 := pauli.MustParse("IY")
	amp2, mask2 := stringActionOnBasis(s2, 1)
	if mask2 != 0 || cmplx.Abs(amp2-complex(0, -1)) > 1e-12 {
		t.Errorf("Y0|01⟩ = %v|%02b⟩, want -i|00⟩", amp2, mask2)
	}
}
