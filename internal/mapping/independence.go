package mapping

import (
	"fmt"

	"repro/internal/pauli"
)

// VerifyIndependent strengthens Verify with the Fermihedral-style linear
// algebra check: viewed as vectors over GF(2) in the symplectic (X|Z)
// representation, the 2N Majorana strings must be linearly independent —
// otherwise some product of them would be a global phase times identity
// and the mapping could not represent all Fock operators faithfully.
func (m *Mapping) VerifyIndependent() error {
	if err := m.Verify(); err != nil {
		return err
	}
	n := m.Qubits()
	cols := 2 * n // x bits then z bits
	words := (cols + 63) / 64
	rows := make([][]uint64, 0, len(m.Majoranas))
	for _, s := range m.Majoranas {
		row := make([]uint64, words)
		for q := 0; q < n; q++ {
			switch s.Letter(q) {
			case pauli.X:
				setBit(row, q)
			case pauli.Z:
				setBit(row, n+q)
			case pauli.Y:
				setBit(row, q)
				setBit(row, n+q)
			}
		}
		rows = append(rows, row)
	}
	if rank := gf2Rank(rows, cols); rank != len(m.Majoranas) {
		return fmt.Errorf("mapping %s: Majorana strings have GF(2) rank %d, want %d",
			m.Name, rank, len(m.Majoranas))
	}
	return nil
}

func setBit(row []uint64, i int) { row[i/64] |= 1 << uint(i%64) }

func getBit(row []uint64, i int) bool { return row[i/64]>>uint(i%64)&1 == 1 }

// gf2Rank computes the rank of a bit matrix by Gaussian elimination.
func gf2Rank(rows [][]uint64, cols int) int {
	rank := 0
	for c := 0; c < cols && rank < len(rows); c++ {
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if getBit(rows[r], c) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < len(rows); r++ {
			if r != rank && getBit(rows[r], c) {
				for w := range rows[r] {
					rows[r][w] ^= rows[rank][w]
				}
			}
		}
		rank++
	}
	return rank
}
