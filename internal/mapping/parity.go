package mapping

import "repro/internal/pauli"

// Parity returns the parity transformation on n modes (Bravyi et al.,
// "Tapering off qubits"): qubit j stores the parity of modes 0…j, the
// dual of Jordan–Wigner. Majorana operators are
//
//	M_{2j}   = X_{n-1} ⋯ X_j · Z_{j-1}
//	M_{2j+1} = X_{n-1} ⋯ X_{j+1} · Y_j
//
// (an occupation flip of mode j flips every parity qubit from j upward).
func Parity(n int) *Mapping {
	mj := make([]pauli.String, 2*n)
	for j := 0; j < n; j++ {
		even := pauli.Identity(n)
		odd := pauli.Identity(n)
		for k := j + 1; k < n; k++ {
			even.SetLetter(k, pauli.X)
			odd.SetLetter(k, pauli.X)
		}
		even.SetLetter(j, pauli.X)
		odd.SetLetter(j, pauli.Y)
		if j > 0 {
			even.SetLetter(j-1, pauli.Z)
		}
		mj[2*j] = even
		mj[2*j+1] = odd
	}
	return &Mapping{Name: "Parity", Modes: n, Majoranas: mj}
}
