package mapping

import (
	"bytes"
	"strings"
	"testing"
)

func TestMappingTextRoundTrip(t *testing.T) {
	for _, m := range []*Mapping{JordanWigner(3), BravyiKitaev(4), BalancedTernaryTree(5)} {
		var buf bytes.Buffer
		if err := m.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if back.Name != m.Name || back.Modes != m.Modes {
			t.Fatalf("%s: header mismatch", m.Name)
		}
		for j := range m.Majoranas {
			if !back.Majoranas[j].Equal(m.Majoranas[j]) {
				t.Fatalf("%s: M%d mismatch: %s vs %s", m.Name, j, back.Majoranas[j], m.Majoranas[j])
			}
		}
	}
}

func TestReadTextRejectsInvalid(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"M0 XX\n",                               // missing header
		"# mapping x modes=2 qubits=2\nM9 XX\n", // index out of range
		"# mapping x modes=2 qubits=2\nM0 XQ\n", // bad letter
		// Valid shape but fails algebraic verification (missing strings).
		"# mapping x modes=2 qubits=2\nM0 XX\n",
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("accepted invalid input %q", c)
		}
	}
}
