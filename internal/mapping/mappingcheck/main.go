// Command mappingcheck is the independent mapping auditor the CI
// portfolio-smoke job runs: it reads Majorana Pauli strings (one per
// line, in M0..M{2N-1} order — e.g. `jq -r '.partial.mapping[]'` over a
// job's partial block) and re-runs the same algebra validation the
// compiler and the fleet fill enforce: pairwise anticommutation, and
// algebraic independence of the derived mode operators. It exits
// non-zero on any violation, so
//
//	curl .../v1/jobs/job-000001?include_partial=true \
//	  | jq -r '.partial.mapping[]' | go run ./internal/mapping/mappingcheck
//
// is a one-line validity gate on an anytime partial result.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/mapping"
	"repro/internal/pauli"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mappingcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	input := flag.String("input", "-", "file of Pauli strings, one per line in M0.. order ('-' = stdin)")
	name := flag.String("name", "audited", "mapping name used in the report line")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	var strs []pauli.String
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := pauli.Parse(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", len(strs)+1, err)
		}
		strs = append(strs, s)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(strs) == 0 || len(strs)%2 != 0 {
		return fmt.Errorf("read %d Pauli strings, want a positive even count (2 per mode)", len(strs))
	}

	m := &mapping.Mapping{Name: *name, Modes: len(strs) / 2, Majoranas: strs}
	if err := m.Verify(); err != nil {
		return fmt.Errorf("anticommutation: %w", err)
	}
	if err := m.VerifyIndependent(); err != nil {
		return fmt.Errorf("independence: %w", err)
	}
	fmt.Printf("mappingcheck: %s OK — %d modes, %d qubits, anticommutation and independence verified (vacuum=%v)\n",
		*name, m.Modes, m.Qubits(), m.VacuumPreserved())
	return nil
}
